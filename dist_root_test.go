package avgi

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"avgi/internal/journal"
)

func distStudy(t *testing.T, journalDir, owner string) *Study {
	t.Helper()
	w, err := WorkloadByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	cfg := StudyConfig{
		Machine:            ConfigA72(),
		Workloads:          []Workload{w},
		Structures:         []string{"RF"},
		FaultsPerStructure: 16,
		Workers:            2,
		JournalDir:         journalDir,
		Resume:             true,
		Fsync:              SyncEvery,
	}
	if owner != "" {
		cfg.Dist = &DistConfig{Fleet: 4, Owner: owner, LeaseTTL: 2 * time.Second}
	}
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// distShard locates the canonical shard a study's RF/crc32 HVF campaign
// journals to, for byte-level comparisons.
func distShard(t *testing.T, s *Study, dir string) (journal.Key, journal.Binding, string) {
	t.Helper()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := journal.Key{Structure: "RF", Workload: "crc32", Mode: ModeHVF.String()}
	bind := journal.Binding{
		Machine:     s.Cfg.Machine.Name,
		Variant:     s.Cfg.Machine.Variant.String(),
		ProgramHash: journal.HashProgram(s.Runner("crc32").Prog),
		Seed:        s.Cfg.SeedBase,
		Faults:      s.Cfg.FaultsPerStructure,
	}
	return key, bind, filepath.Join(dir, filepath.FromSlash(j.ShardID(key, bind)))
}

// TestStudyDistTwoNodes drives the distributed layer through the public
// Study API: two studies (two "processes") sharing one journal directory
// split a campaign via file leases, both return the exact single-process
// results, and the merged canonical shard is byte-identical to the one a
// plain journalled study writes.
func TestStudyDistTwoNodes(t *testing.T) {
	// Result reference: a plain (non-distributed) journalled study. Its
	// shard bytes are NOT the byte-identity reference — a live journal
	// appends chunks in completion order, which is timing-dependent; only
	// merged canonical shards are canonicalised into fault-index order.
	want := distStudy(t, t.TempDir(), "").Campaign("RF", "crc32", ModeHVF, 0)

	// Byte reference: a single-node fleet over its own journal directory.
	refDir := t.TempDir()
	ref := distStudy(t, refDir, "ref-node")
	if res := ref.Campaign("RF", "crc32", ModeHVF, 0); !reflect.DeepEqual(res, want) {
		t.Fatal("single-node fleet diverges from the plain study")
	}
	_, _, refShard := distShard(t, ref, refDir)
	refBytes, err := os.ReadFile(refShard)
	if err != nil {
		t.Fatal(err)
	}

	// Fleet: two dist-mode studies over one shared journal directory.
	dir := t.TempDir()
	nodes := [2]*Study{distStudy(t, dir, "node-0"), distStudy(t, dir, "node-1")}
	var got [2][]CampaignResult
	var wg sync.WaitGroup
	for i, s := range nodes {
		wg.Add(1)
		go func(i int, s *Study) {
			defer wg.Done()
			got[i] = s.Campaign("RF", "crc32", ModeHVF, 0)
		}(i, s)
	}
	wg.Wait()

	for i := range got {
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("node %d: distributed results diverge from the single-process run", i)
		}
	}
	key, bind, shardPath := distShard(t, nodes[0], dir)
	data, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatalf("merged canonical shard: %v", err)
	}
	if !bytes.Equal(data, refBytes) {
		t.Errorf("merged canonical shard (%d bytes) is not byte-identical to the single-process shard (%d bytes)",
			len(data), len(refBytes))
	}
	j, _ := journal.Open(dir)
	if hasParts, err := j.HasParts(key, bind); err != nil || hasParts {
		t.Errorf("after merge: hasParts=%v err=%v, want no part shards left", hasParts, err)
	}

	// A third node arriving late finds everything journalled: pure load.
	late := distStudy(t, dir, "node-late")
	if res := late.Campaign("RF", "crc32", ModeHVF, 0); !reflect.DeepEqual(res, want) {
		t.Error("late node: journal-served distributed results diverge")
	}
}

// TestServiceDistAssess drives the distributed layer through the Service:
// a dist-configured service answers an assessment via a one-node fleet and
// the next identical request is a pure cache hit.
func TestServiceDistAssess(t *testing.T) {
	dir := t.TempDir()
	s, err := NewService(ServiceConfig{
		Workers:    2,
		JournalDir: dir,
		Fsync:      SyncEvery,
		Dist:       &DistConfig{Fleet: 2, Owner: "svc-node", LeaseTTL: 2 * time.Second},
		Obs:        NewObserver(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Assess(svcRequest())
	if err != nil {
		t.Fatal(err)
	}
	if first.Meta.JournalHit {
		t.Fatalf("first dist assessment reported a journal hit: %+v", first.Meta)
	}
	second, err := s.Assess(svcRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Meta.JournalHit {
		t.Errorf("repeat dist assessment meta %+v, want a hit", second.Meta)
	}
	if resultBytes(t, first) != resultBytes(t, second) {
		t.Error("dist-served payloads are not byte-identical across requests")
	}

	// The distributed path must match a plain service's answer exactly.
	plain := newTestService(t, t.TempDir())
	ref, err := plain.Assess(svcRequest())
	if err != nil {
		t.Fatal(err)
	}
	if resultBytes(t, first) != resultBytes(t, ref) {
		t.Error("distributed assessment payload diverges from the plain service's")
	}
}
