// Package ace implements the ACE-analysis baseline the paper compares
// against in Fig. 1: an Architecturally Correct Execution liveness analysis
// for the physical register file. ACE analysis runs over the fault-free
// execution only (one run, no injections) and conservatively marks
// register-bit-cycles whose corruption could affect the program; its
// characteristic weakness — and the reason the paper's Fig. 1 shows it
// 1.2x–3x above SFI — is that it cannot see hardware or logical masking,
// so it systematically overestimates AVF.
package ace

import (
	"avgi/internal/isa"
	"avgi/internal/trace"
)

// Result is the output of an ACE register-file analysis.
type Result struct {
	// AVF is the estimated architectural vulnerability factor of the
	// physical register file.
	AVF float64
	// ACECycles is the accumulated ACE register-cycles (numerator).
	ACECycles uint64
	// TotalCycles is the execution length used as the denominator.
	TotalCycles uint64
	// PhysRegs is the register file size used as the denominator.
	PhysRegs int
}

// AnalyzeRF performs a conservative ACE liveness analysis of the register
// file over a committed instruction trace. An interval from a register's
// definition to its redefinition (or end of execution) counts as ACE if
// the register is read at least once in that interval; the conservative
// step — counting to the redefinition instead of the last use, and
// counting every bit of a live register — is what produces ACE's
// systematic overestimation relative to fault injection.
func AnalyzeRF(golden []trace.Record, v isa.Variant, physRegs int) Result {
	if len(golden) == 0 || physRegs == 0 {
		return Result{PhysRegs: physRegs}
	}
	n := v.NumArchRegs()
	defCycle := make([]uint64, n) // cycle of the live definition
	used := make([]bool, n)       // read since that definition
	defined := make([]bool, n)

	// The stack pointer is architecturally initialised before execution.
	defined[14] = true

	var ace uint64
	end := golden[len(golden)-1].Cycle

	closeInterval := func(r uint8, at uint64) {
		if defined[r] && used[r] && at > defCycle[r] {
			ace += at - defCycle[r]
		}
	}

	for _, rec := range golden {
		inst := isa.Decode(rec.Word, v)
		for _, src := range sourceRegs(inst) {
			if src != 0 {
				used[src] = true
			}
		}
		if d, ok := destReg(inst); ok && d != 0 {
			closeInterval(d, rec.Cycle)
			defined[d] = true
			defCycle[d] = rec.Cycle
			used[d] = false
		}
	}
	for r := 1; r < n; r++ {
		closeInterval(uint8(r), end)
	}

	return Result{
		AVF:         float64(ace) / (float64(physRegs) * float64(end)),
		ACECycles:   ace,
		TotalCycles: end,
		PhysRegs:    physRegs,
	}
}

// sourceRegs returns the architectural registers an instruction reads.
func sourceRegs(in isa.Inst) []uint8 {
	if in.Illegal != isa.IllegalNone {
		return nil
	}
	switch isa.OpFormat(in.Op) {
	case isa.FmtR:
		return []uint8{in.Rs1, in.Rs2}
	case isa.FmtI, isa.FmtL:
		return []uint8{in.Rs1}
	case isa.FmtS:
		return []uint8{in.Rs1, in.Rd} // the value register rides in rd
	case isa.FmtB:
		return []uint8{in.Rd, in.Rs1}
	}
	return nil
}

// destReg returns the architectural destination register, if any.
func destReg(in isa.Inst) (uint8, bool) {
	if in.Illegal != isa.IllegalNone {
		return 0, false
	}
	switch isa.Classify(in) {
	case isa.ClassALU, isa.ClassMul, isa.ClassLoad, isa.ClassJump:
		return in.Rd, true
	}
	return 0, false
}
