package ace

import (
	"testing"

	"avgi/internal/campaign"
	"avgi/internal/core"
	"avgi/internal/cpu"
	"avgi/internal/isa"
	"avgi/internal/prog"
	"avgi/internal/trace"
)

func rec(cycle uint64, in isa.Inst) trace.Record {
	return trace.Record{Cycle: cycle, Word: isa.Encode(in)}
}

func TestAnalyzeRFSimpleLiveness(t *testing.T) {
	// r1 defined at cycle 10, read at cycle 20, redefined at cycle 30:
	// the interval [10,30) is ACE (20 cycles). The second definition is
	// never read: not ACE.
	g := []trace.Record{
		rec(10, isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 5}),
		rec(20, isa.Inst{Op: isa.OpADD, Rd: 2, Rs1: 1, Rs2: 1}),
		rec(30, isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 9}),
		rec(40, isa.Inst{Op: isa.OpNOP}),
	}
	res := AnalyzeRF(g, isa.V64, 10)
	// r1: 30-10 = 20 ACE cycles. r2 defined at 20, never read: 0.
	if res.ACECycles != 20 {
		t.Errorf("ACE cycles = %d, want 20", res.ACECycles)
	}
	want := 20.0 / (10 * 40)
	if res.AVF != want {
		t.Errorf("AVF = %f, want %f", res.AVF, want)
	}
}

func TestAnalyzeRFDeadValueNotACE(t *testing.T) {
	g := []trace.Record{
		rec(10, isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 5}),
		rec(50, isa.Inst{Op: isa.OpNOP}),
	}
	if res := AnalyzeRF(g, isa.V64, 10); res.ACECycles != 0 {
		t.Errorf("dead def counted as ACE: %d", res.ACECycles)
	}
}

func TestAnalyzeRFLiveToEnd(t *testing.T) {
	g := []trace.Record{
		rec(10, isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 5}),
		rec(20, isa.Inst{Op: isa.OpADD, Rd: 2, Rs1: 1, Rs2: 1}),
		rec(60, isa.Inst{Op: isa.OpNOP}),
	}
	// r1 used and never redefined: ACE to end (60-10=50).
	if res := AnalyzeRF(g, isa.V64, 10); res.ACECycles != 50 {
		t.Errorf("ACE cycles = %d, want 50", res.ACECycles)
	}
}

func TestAnalyzeRFStoreAndBranchSources(t *testing.T) {
	g := []trace.Record{
		rec(10, isa.Inst{Op: isa.OpADDI, Rd: 3, Rs1: 0, Imm: 5}),
		rec(20, isa.Inst{Op: isa.OpSW, Rd: 3, Rs1: 0, Imm: 0}), // store reads r3
		rec(30, isa.Inst{Op: isa.OpADDI, Rd: 3, Rs1: 0, Imm: 0}),
	}
	if res := AnalyzeRF(g, isa.V64, 10); res.ACECycles != 20 {
		t.Errorf("store source not seen: %d", res.ACECycles)
	}
	g2 := []trace.Record{
		rec(10, isa.Inst{Op: isa.OpADDI, Rd: 4, Rs1: 0, Imm: 5}),
		rec(25, isa.Inst{Op: isa.OpBEQ, Rd: 4, Rs1: 0, Imm: 2}), // branch reads r4
		rec(40, isa.Inst{Op: isa.OpADDI, Rd: 4, Rs1: 0, Imm: 0}),
	}
	if res := AnalyzeRF(g2, isa.V64, 10); res.ACECycles != 30 {
		t.Errorf("branch source not seen: %d", res.ACECycles)
	}
}

func TestAnalyzeRFEmpty(t *testing.T) {
	if res := AnalyzeRF(nil, isa.V64, 10); res.AVF != 0 {
		t.Error("empty trace AVF")
	}
}

// TestACEOverestimatesSFI reproduces the Fig. 1 relationship on a real
// workload: ACE-estimated register-file AVF must be at least the SFI
// ground truth.
func TestACEOverestimatesSFI(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	cfg := cpu.ConfigA72()
	w, err := prog.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	r, err := campaign.NewRunner(cfg, w.Build(cfg.Variant))
	if err != nil {
		t.Fatal(err)
	}
	aceRes := AnalyzeRF(r.Golden.Trace, cfg.Variant, cfg.PhysRegs)
	results := r.Run(r.FaultList("RF", 150, 11), campaign.ModeExhaustive, 0, 0)
	sfi := core.AVFFromEffects(campaign.Summarize(results))
	if aceRes.AVF < sfi.Total() {
		t.Errorf("ACE %.4f below SFI %.4f — ACE must overestimate", aceRes.AVF, sfi.Total())
	}
	if aceRes.AVF > 20*sfi.Total()+0.5 {
		t.Errorf("ACE %.4f implausibly far above SFI %.4f", aceRes.AVF, sfi.Total())
	}
}
