package cliflags

import (
	"flag"
	"testing"
	"time"

	"avgi/internal/campaign"
)

func TestRegisterDefaultsAndParse(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs, 3)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Fork != "cursor" || c.Workers != 3 || c.Log != "text" {
		t.Fatalf("unexpected defaults: %+v", c)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	c = Register(fs, 0)
	err := fs.Parse([]string{
		"-fork", "snapshot", "-ckpt-interval", "5000", "-workers", "8",
		"-journal", "/tmp/j", "-resume", "-progress",
		"-metrics-addr", "localhost:9090", "-forensics", "-log", "json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fork != "snapshot" || c.CkptInterval != 5000 || c.Workers != 8 ||
		c.Journal != "/tmp/j" || !c.Resume || !c.Progress ||
		c.MetricsAddr != "localhost:9090" || !c.Forensics || c.Log != "json" {
		t.Fatalf("parsed values wrong: %+v", c)
	}
}

func TestForkPolicy(t *testing.T) {
	cases := map[string]campaign.ForkPolicy{
		"cursor":   campaign.ForkCursor,
		"snapshot": campaign.ForkSnapshot,
		"clone":    campaign.ForkLegacyClone,
	}
	for name, want := range cases {
		c := &Common{Fork: name}
		got, err := c.ForkPolicy()
		if err != nil || got != want {
			t.Errorf("ForkPolicy(%q) = %v, %v", name, got, err)
		}
	}
	c := &Common{Fork: "bogus"}
	if _, err := c.ForkPolicy(); err == nil {
		t.Error("bogus fork policy accepted")
	}
}

func TestStartProfilesNoop(t *testing.T) {
	c := &Common{}
	stop, err := c.StartProfiles(func(string) { t.Error("unexpected error log") })
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent
}

func TestRegisterServerDefaults(t *testing.T) {
	fs := flag.NewFlagSet("avgid", flag.ContinueOnError)
	s := RegisterServer(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s.Addr == "" || s.Journal == "" || s.Log != "text" {
		t.Errorf("server defaults: %+v", s)
	}
	if s.DrainTimeout <= 0 {
		t.Errorf("drain timeout default %v must be positive", s.DrainTimeout)
	}
	if err := fs.Parse([]string{"-addr", ":0", "-journal", "", "-tenant-workers", "3", "-drain-timeout", "5s"}); err != nil {
		t.Fatal(err)
	}
	if s.Addr != ":0" || s.Journal != "" || s.TenantWorkers != 3 || s.DrainTimeout != 5*time.Second {
		t.Errorf("server flags not parsed: %+v", s)
	}
}
