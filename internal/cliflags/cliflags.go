// Package cliflags holds the flag set and startup helpers shared by the
// avgi and avgisim commands: campaign tuning (fork policy, checkpoint
// interval, worker budget), telemetry (progress, metrics endpoint,
// forensics, log format), durable journalling, and pprof profile capture.
// Each command registers these once and adds its own tool-specific flags on
// top, so the two CLIs cannot drift apart in spelling, defaults or help
// text for the options they share.
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"avgi/internal/campaign"
	"avgi/internal/journal"
)

// Common is the flag state shared by both commands, populated by Register
// and read after flag.Parse.
type Common struct {
	Fork         string
	CkptInterval uint64
	Workers      int

	CPUProfile string
	MemProfile string

	Journal string
	Resume  bool
	Fsync   string

	DistRole    string
	DistOwner   string
	Coordinator string
	LeaseTTL    time.Duration

	Progress    bool
	MetricsAddr string

	Forensics bool
	Log       string

	EarlyExit bool
}

// Register installs the shared flags on fs (normally flag.CommandLine) and
// returns the struct they populate. workersDefault is the one shared flag
// whose default legitimately differs per tool: the avgi study harness wants
// all CPUs (0), the avgisim single-shot tool wants 1.
func Register(fs *flag.FlagSet, workersDefault int) *Common {
	c := &Common{}
	fs.StringVar(&c.Fork, "fork", "cursor",
		"per-fault fork policy: cursor (golden cursor + dirty-delta), snapshot (checkpoint store) or clone (legacy deep copy)")
	fs.Uint64Var(&c.CkptInterval, "ckpt-interval", 0,
		"checkpoint spacing in cycles for the cursor/snapshot fork policies (0 = derive from golden length)")
	fs.IntVar(&c.Workers, "workers", workersDefault,
		"worker budget shared by all concurrent campaigns (0 = all CPUs; see docs/SCHEDULING.md)")

	fs.StringVar(&c.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile of the run to this file (see docs/OBSERVABILITY.md)")
	fs.StringVar(&c.MemProfile, "memprofile", "",
		"write a pprof heap profile at exit to this file")

	fs.StringVar(&c.Journal, "journal", "",
		"append completed per-fault results as durable NDJSON shards under this directory (see docs/ROBUSTNESS.md)")
	fs.BoolVar(&c.Resume, "resume", false,
		"with -journal: reuse journalled results instead of re-simulating")
	fs.StringVar(&c.Fsync, "fsync", "chunk",
		"journal shard fsync cadence: chunk (default, per completed chunk), every (per fault result; the distributed-worker setting) or off (flush only; see docs/ROBUSTNESS.md)")

	registerDist(fs, &c.DistRole, &c.DistOwner, &c.Coordinator, &c.LeaseTTL,
		"\"\" (single process) or worker (join a distributed fleet sharding this run's campaigns; -workers then means the fleet-wide count and -journal must point at the shared journal directory, see docs/DISTRIBUTED.md)")

	fs.BoolVar(&c.Progress, "progress", false,
		"print live campaign progress lines to stderr")
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "",
		"serve /metrics (Prometheus) and /progress.json on this address for the duration of the run")

	fs.BoolVar(&c.Forensics, "forensics", false,
		"attribute sampled faults' fates (masking source, first divergence); see docs/OBSERVABILITY.md")
	fs.BoolVar(&c.EarlyExit, "early-exit", true,
		"end AVGI faulty windows as soon as the fault is provably dead (classification-identical; -early-exit=false forces full ERT windows, see docs/PERFORMANCE.md)")
	fs.StringVar(&c.Log, "log", "text",
		"stderr log format: text (classic prefixed lines) or json")
	return c
}

// Server is the flag state of the avgid assessment server, populated by
// RegisterServer and read after flag.Parse.
type Server struct {
	Addr          string
	Journal       string
	Workers       int
	TenantWorkers int
	DrainTimeout  time.Duration
	Log           string

	Fsync      string
	ShardCache int

	DistRole    string
	DistOwner   string
	Coordinator string
	LeaseTTL    time.Duration
}

// registerDist installs the distributed-campaign flag cluster with a
// per-tool -dist-role help string (the legal roles differ: batch tools can
// only be workers, the server can also coordinate).
func registerDist(fs *flag.FlagSet, role, owner, coordinator *string, ttl *time.Duration, roleHelp string) {
	fs.StringVar(role, "dist-role", "", "distributed campaign role: "+roleHelp)
	fs.StringVar(owner, "dist-owner", "",
		"stable node identity for leases and part shards (default <hostname>-<pid>; set it to survive restarts under the same identity)")
	fs.StringVar(coordinator, "coordinator", "",
		"lease-endpoint base URL of an avgid -dist-role=coordinator (empty coordinates through lease files under the shared journal directory)")
	fs.DurationVar(ttl, "lease-ttl", 10*time.Second,
		"how long a silent node keeps its claimed chunks before the fleet takes them over")
}

// RegisterServer installs the avgid flags on fs. The server shares the
// -workers/-journal/-log spellings with the batch tools but has its own
// defaults (journalling is the point of a cache server, so -journal
// defaults on) and deliberately omits the one-shot flags (profiles,
// progress tickers) that make no sense for a daemon.
func RegisterServer(fs *flag.FlagSet) *Server {
	s := &Server{}
	fs.StringVar(&s.Addr, "addr", "localhost:8080",
		"address to serve the assessment API and telemetry on (use :0 for an ephemeral port)")
	fs.StringVar(&s.Journal, "journal", "avgid-journal",
		"durable result cache directory: fully journalled requests are answered without simulating (empty disables caching)")
	fs.IntVar(&s.Workers, "workers", 0,
		"global worker budget shared by all tenants (0 = all CPUs)")
	fs.IntVar(&s.TenantWorkers, "tenant-workers", 0,
		"per-tenant worker cap carved from the global budget (0 = 3/4 of workers, always leaving at least one slot for other tenants)")
	fs.DurationVar(&s.DrainTimeout, "drain-timeout", 30*time.Second,
		"how long a SIGTERM/SIGINT shutdown waits for in-flight requests before dropping them")
	fs.StringVar(&s.Log, "log", "text",
		"stderr log format: text (classic prefixed lines) or json")
	fs.StringVar(&s.Fsync, "fsync", "chunk",
		"journal shard fsync cadence: chunk (default), every (per fault result) or off (flush only; see docs/ROBUSTNESS.md)")
	fs.IntVar(&s.ShardCache, "shard-cache", 0,
		"in-memory decoded-shard LRU entries in front of the journal (0 = default 64, negative disables)")
	registerDist(fs, &s.DistRole, &s.DistOwner, &s.Coordinator, &s.LeaseTTL,
		"\"\" (standalone), coordinator (arbitrate leases and fan campaigns out on /v1/dist/*) or worker (poll a -coordinator's feed and run its campaigns against the shared journal; see docs/DISTRIBUTED.md)")
	return s
}

// SyncPolicy resolves the -fsync flag.
func (c *Common) SyncPolicy() (journal.SyncPolicy, error) {
	return journal.ParseSyncPolicy(c.Fsync)
}

// SyncPolicy resolves the server's -fsync flag.
func (s *Server) SyncPolicy() (journal.SyncPolicy, error) {
	return journal.ParseSyncPolicy(s.Fsync)
}

// ValidateDist checks the batch tools' distributed flag cluster: the only
// legal role is worker, and distribution needs the shared journal.
func (c *Common) ValidateDist() error {
	switch c.DistRole {
	case "":
		return nil
	case "worker":
		if c.Journal == "" {
			return fmt.Errorf("-dist-role=worker requires -journal DIR (the fleet's shared coordination substrate)")
		}
		return nil
	}
	return fmt.Errorf("unknown -dist-role %q (batch tools support only worker)", c.DistRole)
}

// ValidateDist checks the server's distributed flag cluster.
func (s *Server) ValidateDist() error {
	switch s.DistRole {
	case "", "coordinator":
		return nil
	case "worker":
		if s.Coordinator == "" {
			return fmt.Errorf("-dist-role=worker requires -coordinator URL (the feed to poll)")
		}
		if s.Journal == "" {
			return fmt.Errorf("-dist-role=worker requires -journal DIR shared with the fleet")
		}
		return nil
	}
	return fmt.Errorf("unknown -dist-role %q (want coordinator or worker)", s.DistRole)
}

// ForkPolicy resolves the -fork flag.
func (c *Common) ForkPolicy() (campaign.ForkPolicy, error) {
	switch c.Fork {
	case "cursor":
		return campaign.ForkCursor, nil
	case "snapshot":
		return campaign.ForkSnapshot, nil
	case "clone":
		return campaign.ForkLegacyClone, nil
	}
	return 0, fmt.Errorf("unknown -fork policy %q (want cursor, snapshot or clone)", c.Fork)
}

// StartProfiles begins CPU profiling and arms a heap-profile dump per the
// -cpuprofile/-memprofile flags. The returned stop function is idempotent
// and must run before process exit for either profile to be complete;
// logErr receives any error encountered while writing the heap profile at
// stop time (the CPU-profile path fails fast instead).
func (c *Common) StartProfiles(logErr func(msg string)) (func(), error) {
	var cpuFile *os.File
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				logErr("memprofile: " + err.Error())
				return
			}
			runtime.GC() // materialize final live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				logErr("memprofile: " + err.Error())
			}
			f.Close()
		}
	}, nil
}
