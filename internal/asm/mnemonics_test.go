package asm

import (
	"testing"

	"avgi/internal/isa"
)

// TestMnemonicWrappers exercises every mnemonic helper and checks the
// opcode each one encodes.
func TestMnemonicWrappers(t *testing.T) {
	b := NewBuilder("mn", isa.V64)
	if b.Variant() != isa.V64 {
		t.Fatal("Variant accessor")
	}
	type step struct {
		emit func()
		op   isa.Op
	}
	steps := []step{
		{func() { b.Nop() }, isa.OpNOP},
		{func() { b.Add(1, 2, 3) }, isa.OpADD},
		{func() { b.Sub(1, 2, 3) }, isa.OpSUB},
		{func() { b.And(1, 2, 3) }, isa.OpAND},
		{func() { b.Or(1, 2, 3) }, isa.OpOR},
		{func() { b.Xor(1, 2, 3) }, isa.OpXOR},
		{func() { b.Sll(1, 2, 3) }, isa.OpSLL},
		{func() { b.Srl(1, 2, 3) }, isa.OpSRL},
		{func() { b.Sra(1, 2, 3) }, isa.OpSRA},
		{func() { b.Mul(1, 2, 3) }, isa.OpMUL},
		{func() { b.Mulh(1, 2, 3) }, isa.OpMULH},
		{func() { b.Div(1, 2, 3) }, isa.OpDIV},
		{func() { b.Rem(1, 2, 3) }, isa.OpREM},
		{func() { b.Slt(1, 2, 3) }, isa.OpSLT},
		{func() { b.Sltu(1, 2, 3) }, isa.OpSLTU},
		{func() { b.Addi(1, 2, 5) }, isa.OpADDI},
		{func() { b.Andi(1, 2, 5) }, isa.OpANDI},
		{func() { b.Ori(1, 2, 5) }, isa.OpORI},
		{func() { b.Xori(1, 2, 5) }, isa.OpXORI},
		{func() { b.Slli(1, 2, 5) }, isa.OpSLLI},
		{func() { b.Srli(1, 2, 5) }, isa.OpSRLI},
		{func() { b.Srai(1, 2, 5) }, isa.OpSRAI},
		{func() { b.Slti(1, 2, 5) }, isa.OpSLTI},
		{func() { b.Mov(1, 2) }, isa.OpADDI},
		{func() { b.Lb(1, 2, 0) }, isa.OpLB},
		{func() { b.Lbu(1, 2, 0) }, isa.OpLBU},
		{func() { b.Lh(1, 2, 0) }, isa.OpLH},
		{func() { b.Lhu(1, 2, 0) }, isa.OpLHU},
		{func() { b.Lw(1, 2, 0) }, isa.OpLW},
		{func() { b.Sb(1, 2, 0) }, isa.OpSB},
		{func() { b.Sh(1, 2, 0) }, isa.OpSH},
		{func() { b.Sw(1, 2, 0) }, isa.OpSW},
		{func() { b.Jalr(1, 2, 0) }, isa.OpJALR},
		{func() { b.Halt() }, isa.OpHALT},
	}
	for _, s := range steps {
		s.emit()
	}
	// Branch family via labels.
	b.Label("x")
	branchOps := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
	b.Beq(1, 2, "x")
	b.Bne(1, 2, "x")
	b.Blt(1, 2, "x")
	b.Bge(1, 2, "x")
	b.Bltu(1, 2, "x")
	b.Bgeu(1, 2, "x")

	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range steps {
		got := isa.Decode(p.Text[i], isa.V64).Op
		if got != s.op {
			t.Errorf("step %d: opcode %s, want %s", i, isa.OpName(got), isa.OpName(s.op))
		}
	}
	for i, op := range branchOps {
		got := isa.Decode(p.Text[len(steps)+i], isa.V64).Op
		if got != op {
			t.Errorf("branch %d: opcode %s, want %s", i, isa.OpName(got), isa.OpName(op))
		}
	}
}

func TestDataAddrUnknownLabel(t *testing.T) {
	b := NewBuilder("t", isa.V64)
	b.DataAddr("missing")
	b.Halt()
	if _, err := b.Assemble(); err == nil {
		t.Fatal("expected unknown data label error")
	}
}
