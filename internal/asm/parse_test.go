package asm

import (
	"strings"
	"testing"

	"avgi/internal/isa"
)

const sampleSrc = `
; sum the data words and emit the total
.words input 10, 20, 30, 12
.reserve scratch 16
.align 8

	li r1, input
	li r2, 0        # sum
	li r3, 0        # i
	li r4, 4
loop:
	slli r5, r3, 3
	add r5, r5, r1
	loadw r6, 0(r5)
	add r2, r2, r6
	addi r3, r3, 1
	blt r3, r4, loop
	li r7, 0x40000
	storew r2, 0(r7)
	li r8, 0x3FFF8
	li r9, 8
	storew r9, 0(r8)
	halt
`

func TestParseAndAssemble(t *testing.T) {
	p, err := Parse("sum", sampleSrc, isa.V64)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) == 0 || len(p.Data) < 4*8 {
		t.Fatalf("text %d data %d", len(p.Text), len(p.Data))
	}
	// First data word is 10 little-endian.
	if p.Data[0] != 10 {
		t.Errorf("data[0] = %d", p.Data[0])
	}
	// Branch resolves backwards.
	found := false
	for _, w := range p.Text {
		in := isa.Decode(w, isa.V64)
		if in.Op == isa.OpBLT && in.Imm < 0 {
			found = true
		}
	}
	if !found {
		t.Error("no backward blt found")
	}
}

func TestParseCallRetJumpAliases(t *testing.T) {
	src := `
	call fn
	jump end
fn:	ret
end: halt
`
	p, err := Parse("t", src, isa.V32)
	if err != nil {
		t.Fatal(err)
	}
	if got := isa.Decode(p.Text[0], isa.V32); got.Op != isa.OpJAL || got.Rd != LR {
		t.Errorf("call: %+v", got)
	}
	if got := isa.Decode(p.Text[1], isa.V32); got.Op != isa.OpJAL || got.Rd != Zero {
		t.Errorf("jump: %+v", got)
	}
	if got := isa.Decode(p.Text[2], isa.V32); got.Op != isa.OpJALR {
		t.Errorf("ret: %+v", got)
	}
}

func TestParseRegisterAliases(t *testing.T) {
	src := `
	mov sp, zero
	addi lr, sp, 4
	halt
`
	p, err := Parse("t", src, isa.V64)
	if err != nil {
		t.Fatal(err)
	}
	if got := isa.Decode(p.Text[0], isa.V64); got.Rd != SP || got.Rs1 != Zero {
		t.Errorf("aliases: %+v", got)
	}
	if got := isa.Decode(p.Text[1], isa.V64); got.Rd != LR {
		t.Errorf("lr alias: %+v", got)
	}
}

func TestParseWidthSpecificOps(t *testing.T) {
	if _, err := Parse("t", "ld r1, 0(r2)\nhalt", isa.V64); err != nil {
		t.Errorf("ld on V64: %v", err)
	}
	if _, err := Parse("t", "ld r1, 0(r2)\nhalt", isa.V32); err == nil {
		t.Error("ld on V32 should fail")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  "frobnicate r1, r2",
		"bad register":      "add r1, r2, rX",
		"bad mem operand":   "lw r1, r2",
		"unknown directive": ".bogus x 1",
		"bad byte":          ".bytes x 999",
		"bad alignment":     ".align zero",
		"jal link":          "jal r5, somewhere",
		"missing label":     "jump nowhere",
		"bad jalr":          "jalr r1, r2",
		"bad li":            "li r1",
	}
	for name, src := range cases {
		if _, err := Parse("t", src+"\nhalt", isa.V64); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		}
	}
	// Errors carry line numbers.
	_, err := Parse("t", "nop\nfrobnicate\nhalt", isa.V64)
	if err == nil || !strings.Contains(err.Error(), "t:2:") {
		t.Errorf("line number missing: %v", err)
	}
}

func TestParseRoundTripThroughDisasm(t *testing.T) {
	// Parsing, assembling and disassembling the sample program must not
	// produce any illegal encodings.
	p, err := Parse("sum", sampleSrc, isa.V64)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Text {
		if in := isa.Decode(w, isa.V64); in.Illegal != isa.IllegalNone {
			t.Errorf("word %d illegal: %s", i, isa.DisasmWord(w, isa.V64))
		}
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Arbitrary junk must return errors, not panic.
	junk := []string{
		"add", "add r1", ".words", ".reserve x", "li r1, 99999999999999999999",
		"lw r1, (r2", "beq r1, r2", ":", "r1: r2: r3:", "\x00\x01\x02",
		"jalr r1 r2 r3 r4 r5", ".align -8", "call", "sw r1, 4096(r99)",
	}
	for _, src := range junk {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse("junk", src, isa.V64)
		}()
	}
}

func TestParseLabelWithInstruction(t *testing.T) {
	p, err := Parse("t", "start: addi r1, r0, 7\nhalt", isa.V64)
	if err != nil {
		t.Fatal(err)
	}
	if got := isa.Decode(p.Text[0], isa.V64); got.Op != isa.OpADDI || got.Imm != 7 {
		t.Errorf("%+v", got)
	}
}
