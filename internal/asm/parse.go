package asm

import (
	"fmt"
	"strconv"
	"strings"

	"avgi/internal/isa"
)

// Parse assembles textual AVG assembly into a Program, so workloads and
// experiments can be written as .s files as well as through the Builder
// API (cmd/avgisim -run consumes this).
//
// Syntax, one statement per line (';' or '#' start a comment):
//
//	label:                     code label
//	add r1, r2, r3             register-register ops
//	addi r1, r2, -5            register-immediate ops
//	li r1, 0x12345             pseudo: load arbitrary constant
//	mov r1, r2                 pseudo: register copy
//	lw r1, 8(r2)               loads (lb lbu lh lhu lw lwu ld)
//	sw r1, 8(r2)               stores (sb sh sw sd)
//	loadw/storew r1, 8(r2)     natural-width pseudo (ld/sd or lw/sw)
//	beq r1, r2, label          branches (beq bne blt bge bltu bgeu)
//	jump label                 pseudo: unconditional jump
//	call label / ret           pseudo: JAL r13 / JALR r0, r13
//	jal r1, label              jump and link
//	jalr r1, r2, 0             indirect jump
//	nop / halt
//
// Data directives:
//
//	.bytes name 1, 2, 0xFF     labelled bytes
//	.words name 1, 2, 3        labelled natural-width words
//	.reserve name 64           labelled zeroed region
//	.align 8                   alignment padding
//
// Data labels are referenced as immediate operands of li: "li r1, name".
//
// Parse assembles src for variant v. The program is named name.
func Parse(name, src string, v isa.Variant) (*Program, error) {
	b := NewBuilder(name, v)
	lines := strings.Split(src, "\n")

	// Pass 1: data directives, so "li rX, label" can resolve addresses
	// during the code pass regardless of order.
	for ln, raw := range lines {
		f, err := fields(raw)
		if err != nil {
			return nil, lineErr(name, ln, err)
		}
		if len(f) == 0 || !strings.HasPrefix(f[0], ".") {
			continue
		}
		if err := dataDirective(b, f); err != nil {
			return nil, lineErr(name, ln, err)
		}
	}

	// Pass 2: instructions and labels.
	for ln, raw := range lines {
		f, err := fields(raw)
		if err != nil {
			return nil, lineErr(name, ln, err)
		}
		if len(f) == 0 || strings.HasPrefix(f[0], ".") {
			continue
		}
		if err := statement(b, f); err != nil {
			return nil, lineErr(name, ln, err)
		}
	}
	return b.Assemble()
}

func lineErr(name string, ln int, err error) error {
	return fmt.Errorf("%s:%d: %w", name, ln+1, err)
}

// fields tokenises one line: strips comments, splits on whitespace and
// commas, and lowercases mnemonics.
func fields(line string) ([]string, error) {
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		line = line[:i]
	}
	line = strings.ReplaceAll(line, ",", " ")
	raw := strings.Fields(line)
	return raw, nil
}

func dataDirective(b *Builder, f []string) error {
	switch strings.ToLower(f[0]) {
	case ".align":
		if len(f) != 2 {
			return fmt.Errorf(".align wants one operand")
		}
		n, err := parseInt(f[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad alignment %q", f[1])
		}
		b.Align(int(n))
	case ".bytes":
		if len(f) < 3 {
			return fmt.Errorf(".bytes wants a name and values")
		}
		var data []byte
		for _, s := range f[2:] {
			v, err := parseInt(s)
			if err != nil || v < 0 || v > 255 {
				return fmt.Errorf("bad byte %q", s)
			}
			data = append(data, byte(v))
		}
		b.DataBytes(f[1], data)
	case ".words":
		if len(f) < 3 {
			return fmt.Errorf(".words wants a name and values")
		}
		var vals []uint64
		for _, s := range f[2:] {
			v, err := parseInt(s)
			if err != nil {
				return fmt.Errorf("bad word %q", s)
			}
			vals = append(vals, uint64(v))
		}
		b.DataWords(f[1], vals)
	case ".reserve":
		if len(f) != 3 {
			return fmt.Errorf(".reserve wants a name and a size")
		}
		n, err := parseInt(f[2])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad size %q", f[2])
		}
		b.Reserve(f[1], int(n))
	default:
		return fmt.Errorf("unknown directive %s", f[0])
	}
	return nil
}

// rrr maps three-register mnemonics to opcodes.
var rrr = map[string]isa.Op{
	"add": isa.OpADD, "sub": isa.OpSUB, "and": isa.OpAND, "or": isa.OpOR,
	"xor": isa.OpXOR, "sll": isa.OpSLL, "srl": isa.OpSRL, "sra": isa.OpSRA,
	"mul": isa.OpMUL, "mulh": isa.OpMULH, "div": isa.OpDIV, "rem": isa.OpREM,
	"slt": isa.OpSLT, "sltu": isa.OpSLTU,
}

// rri maps register-immediate mnemonics to opcodes.
var rri = map[string]isa.Op{
	"addi": isa.OpADDI, "andi": isa.OpANDI, "ori": isa.OpORI, "xori": isa.OpXORI,
	"slli": isa.OpSLLI, "srli": isa.OpSRLI, "srai": isa.OpSRAI, "slti": isa.OpSLTI,
}

// memOps maps load/store mnemonics to opcodes.
var memOps = map[string]isa.Op{
	"lb": isa.OpLB, "lbu": isa.OpLBU, "lh": isa.OpLH, "lhu": isa.OpLHU,
	"lw": isa.OpLW, "lwu": isa.OpLWU, "ld": isa.OpLD,
	"sb": isa.OpSB, "sh": isa.OpSH, "sw": isa.OpSW, "sd": isa.OpSD,
}

// branches maps branch mnemonics to builder methods.
var branches = map[string]func(b *Builder, ra, rb uint8, label string){
	"beq":  (*Builder).Beq,
	"bne":  (*Builder).Bne,
	"blt":  (*Builder).Blt,
	"bge":  (*Builder).Bge,
	"bltu": (*Builder).Bltu,
	"bgeu": (*Builder).Bgeu,
}

func statement(b *Builder, f []string) error {
	head := f[0]
	if strings.HasSuffix(head, ":") {
		b.Label(strings.TrimSuffix(head, ":"))
		if len(f) > 1 {
			return statement(b, f[1:])
		}
		return nil
	}
	m := strings.ToLower(head)
	switch {
	case m == "nop":
		b.Nop()
	case m == "halt":
		b.Halt()
	case m == "ret":
		b.Ret()
	case m == "jump" || m == "j":
		if len(f) != 2 {
			return fmt.Errorf("jump wants a label")
		}
		b.Jump(f[1])
	case m == "call":
		if len(f) != 2 {
			return fmt.Errorf("call wants a label")
		}
		b.Call(f[1])
	case m == "jal":
		if len(f) != 3 {
			return fmt.Errorf("jal wants rd, label")
		}
		rd, err := reg(f[1])
		if err != nil {
			return err
		}
		if rd == LR {
			b.Call(f[2])
		} else if rd == Zero {
			b.Jump(f[2])
		} else {
			return fmt.Errorf("jal link register must be r13 or r0")
		}
	case m == "jalr":
		if len(f) != 4 {
			return fmt.Errorf("jalr wants rd, rs1, imm")
		}
		rd, err1 := reg(f[1])
		rs, err2 := reg(f[2])
		imm, err3 := parseInt(f[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad jalr operands")
		}
		b.Jalr(rd, rs, int32(imm))
	case m == "mov":
		if len(f) != 3 {
			return fmt.Errorf("mov wants rd, rs")
		}
		rd, err1 := reg(f[1])
		rs, err2 := reg(f[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad mov operands")
		}
		b.Mov(rd, rs)
	case m == "li":
		if len(f) != 3 {
			return fmt.Errorf("li wants rd, value")
		}
		rd, err := reg(f[1])
		if err != nil {
			return err
		}
		if v, err := parseInt(f[2]); err == nil {
			b.Li(rd, uint64(v))
		} else {
			// Data-label reference (pass 1 defined them all).
			b.Li(rd, b.DataAddr(f[2]))
		}
	case rrr[m] != isa.OpInvalid:
		if len(f) != 4 {
			return fmt.Errorf("%s wants rd, rs1, rs2", m)
		}
		rd, err1 := reg(f[1])
		r1, err2 := reg(f[2])
		r2, err3 := reg(f[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad %s operands", m)
		}
		b.R(rrr[m], rd, r1, r2)
	case rri[m] != isa.OpInvalid:
		if len(f) != 4 {
			return fmt.Errorf("%s wants rd, rs1, imm", m)
		}
		rd, err1 := reg(f[1])
		r1, err2 := reg(f[2])
		imm, err3 := parseInt(f[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad %s operands", m)
		}
		b.I(rri[m], rd, r1, int32(imm))
	case m == "loadw" || m == "storew":
		r, base, off, err := memOperands(f)
		if err != nil {
			return err
		}
		if m == "loadw" {
			b.LoadW(r, base, off)
		} else {
			b.StoreW(r, base, off)
		}
	case memOps[m] != isa.OpInvalid:
		r, base, off, err := memOperands(f)
		if err != nil {
			return err
		}
		op := memOps[m]
		if !isa.ValidOp(op, b.Variant()) {
			return fmt.Errorf("%s is not valid on %s", m, b.Variant())
		}
		b.mem(op, r, base, off)
	case branches[m] != nil:
		if len(f) != 4 {
			return fmt.Errorf("%s wants ra, rb, label", m)
		}
		ra, err1 := reg(f[1])
		rb, err2 := reg(f[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad %s operands", m)
		}
		branches[m](b, ra, rb, f[3])
	default:
		return fmt.Errorf("unknown mnemonic %q", head)
	}
	return nil
}

// memOperands parses "op rX, off(rY)".
func memOperands(f []string) (r, base uint8, off int32, err error) {
	if len(f) != 3 {
		return 0, 0, 0, fmt.Errorf("%s wants r, off(base)", f[0])
	}
	r, err = reg(f[1])
	if err != nil {
		return
	}
	s := f[2]
	lp := strings.IndexByte(s, '(')
	rp := strings.IndexByte(s, ')')
	if lp < 0 || rp < lp {
		return 0, 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	o := int64(0)
	if lp > 0 {
		o, err = parseInt(s[:lp])
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bad offset in %q", s)
		}
	}
	base, err = reg(s[lp+1 : rp])
	if err != nil {
		return
	}
	return r, base, int32(o), nil
}

// reg parses "rN" (also accepting the sp/lr/zero aliases).
func reg(s string) (uint8, error) {
	switch strings.ToLower(s) {
	case "zero":
		return Zero, nil
	case "sp":
		return SP, nil
	case "lr":
		return LR, nil
	}
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 63 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

// parseInt accepts decimal and 0x-hex with optional sign.
func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}
