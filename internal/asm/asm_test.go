package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"avgi/internal/isa"
)

func TestLabelsAndBranches(t *testing.T) {
	b := NewBuilder("t", isa.V64)
	b.Label("top")
	b.Addi(1, 1, 1)
	b.Bne(1, 2, "top")
	b.Jump("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	bne := isa.Decode(p.Text[1], isa.V64)
	if bne.Op != isa.OpBNE || bne.Imm != -1 {
		t.Errorf("bne = %+v, want offset -1", bne)
	}
	jmp := isa.Decode(p.Text[2], isa.V64)
	if jmp.Op != isa.OpJAL || jmp.Imm != 2 || jmp.Rd != Zero {
		t.Errorf("jump = %+v, want jal r0, +2", jmp)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder("t", isa.V64)
	b.Jump("nowhere")
	if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("expected undefined label error, got %v", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder("t", isa.V64)
	b.Label("x")
	b.Label("x")
	b.Halt()
	if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("expected duplicate label error, got %v", err)
	}
}

func TestRegisterRangeCheck(t *testing.T) {
	b := NewBuilder("t", isa.V32)
	b.Addi(20, 0, 1) // r20 invalid on V32
	if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected register range error, got %v", err)
	}
	b64 := NewBuilder("t", isa.V64)
	b64.Addi(20, 0, 1)
	b64.Halt()
	if _, err := b64.Assemble(); err != nil {
		t.Fatalf("r20 should be valid on V64: %v", err)
	}
}

func TestDataSection(t *testing.T) {
	b := NewBuilder("t", isa.V64)
	a1 := b.DataBytes("buf", []byte{1, 2, 3})
	b.Align(8)
	a2 := b.DataWords("words", []uint64{0x1122334455667788, 42})
	a3 := b.DataWords32("w32", []uint32{0xDEADBEEF})
	a4 := b.Reserve("scratch", 16)
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if a1 != DefaultDataBase {
		t.Errorf("first data at %#x", a1)
	}
	if a2%8 != 0 {
		t.Errorf("aligned words at %#x", a2)
	}
	if b.DataAddr("w32") != a3 || b.DataAddr("scratch") != a4 {
		t.Error("DataAddr mismatch")
	}
	off := a2 - DefaultDataBase
	if p.Data[off] != 0x88 || p.Data[off+7] != 0x11 {
		t.Errorf("little-endian word layout wrong: % x", p.Data[off:off+8])
	}
	off32 := a3 - DefaultDataBase
	if p.Data[off32] != 0xEF || p.Data[off32+3] != 0xDE {
		t.Errorf("32-bit word layout wrong: % x", p.Data[off32:off32+4])
	}
	for i := uint64(0); i < 16; i++ {
		if p.Data[a4-DefaultDataBase+i] != 0 {
			t.Error("Reserve should zero-fill")
		}
	}
}

func TestDataWordsVariantWidth(t *testing.T) {
	b := NewBuilder("t", isa.V32)
	b.DataWords("w", []uint64{0xAABBCCDD, 1})
	b.Halt()
	p := b.MustAssemble()
	if len(p.Data) != 8 { // two 4-byte words on V32
		t.Fatalf("V32 DataWords size = %d, want 8", len(p.Data))
	}
	if p.Data[0] != 0xDD || p.Data[3] != 0xAA {
		t.Errorf("layout: % x", p.Data[:4])
	}
}

// runLi simulates the Li sequence with a simple interpreter to verify the
// constant materialisation logic without the full machine model.
func runLi(t *testing.T, v isa.Variant, value uint64) uint64 {
	t.Helper()
	b := NewBuilder("li", v)
	b.Li(1, value)
	b.Halt()
	p := b.MustAssemble()
	var regs [64]uint64
	for _, w := range p.Text {
		in := isa.Decode(w, v)
		switch in.Op {
		case isa.OpHALT:
			return regs[1]
		case isa.OpADDI:
			regs[in.Rd] = isa.EvalALU(in.Op, regs[in.Rs1], uint64(int64(in.Imm)), v)
		case isa.OpSLLI, isa.OpORI:
			regs[in.Rd] = isa.EvalALU(in.Op, regs[in.Rs1], uint64(uint32(in.Imm)), v)
		default:
			t.Fatalf("unexpected op in Li expansion: %s", isa.OpName(in.Op))
		}
	}
	t.Fatal("no halt")
	return 0
}

func TestLiMaterialisesConstants(t *testing.T) {
	cases := []uint64{
		0, 1, 2047, 2048, 4095, 0xFFFF, 0x10000, 0x3FFF8, 0x40000,
		0xDEADBEEF, 0xFFFFFFFF, ^uint64(0), 1 << 63, 0x123456789ABCDEF0,
	}
	for _, c := range cases {
		if got := runLi(t, isa.V64, c); got != c {
			t.Errorf("V64 Li(%#x) = %#x", c, got)
		}
		want := c & isa.V32.Mask()
		if got := runLi(t, isa.V32, c); got != want {
			t.Errorf("V32 Li(%#x) = %#x, want %#x", c, got, want)
		}
	}
}

func TestLiProperty(t *testing.T) {
	f := func(c uint64, which bool) bool {
		v := isa.V64
		if which {
			v = isa.V32
		}
		return runLi(t, v, c) == c&v.Mask()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLiShortFormForSmallConstants(t *testing.T) {
	b := NewBuilder("t", isa.V64)
	b.Li(1, 100)
	b.Li(2, ^uint64(0)) // -1 fits in a single signed ADDI
	b.Halt()
	p := b.MustAssemble()
	if len(p.Text) != 3 {
		t.Fatalf("expected 2 single-instruction Li + halt, got %d words", len(p.Text))
	}
}

func TestLoadStoreWidthSelection(t *testing.T) {
	for _, tc := range []struct {
		v    isa.Variant
		l, s isa.Op
	}{{isa.V64, isa.OpLD, isa.OpSD}, {isa.V32, isa.OpLW, isa.OpSW}} {
		b := NewBuilder("t", tc.v)
		b.LoadW(1, 2, 8)
		b.StoreW(1, 2, 8)
		b.Halt()
		p := b.MustAssemble()
		if op := isa.Decode(p.Text[0], tc.v).Op; op != tc.l {
			t.Errorf("%s LoadW -> %s, want %s", tc.v, isa.OpName(op), isa.OpName(tc.l))
		}
		if op := isa.Decode(p.Text[1], tc.v).Op; op != tc.s {
			t.Errorf("%s StoreW -> %s, want %s", tc.v, isa.OpName(op), isa.OpName(tc.s))
		}
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder("t", isa.V64)
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Ret()
	p := b.MustAssemble()
	call := isa.Decode(p.Text[0], isa.V64)
	if call.Op != isa.OpJAL || call.Rd != LR || call.Imm != 2 {
		t.Errorf("call = %+v", call)
	}
	ret := isa.Decode(p.Text[2], isa.V64)
	if ret.Op != isa.OpJALR || ret.Rs1 != LR || ret.Rd != Zero {
		t.Errorf("ret = %+v", ret)
	}
}

func TestWordShift(t *testing.T) {
	if NewBuilder("t", isa.V64).WordShift() != 3 || NewBuilder("t", isa.V32).WordShift() != 2 {
		t.Error("WordShift wrong")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b := NewBuilder("t", isa.V64)
	b.Jump("missing")
	b.MustAssemble()
}

func TestProgramLayout(t *testing.T) {
	b := NewBuilder("layout", isa.V64)
	b.Halt()
	p := b.MustAssemble()
	if p.TextBase != DefaultTextBase || p.DataBase != DefaultDataBase ||
		p.OutBase != DefaultOutBase || p.OutLenAddr != DefaultOutLenAddr ||
		p.RAMSize != DefaultRAMSize {
		t.Errorf("unexpected layout: %+v", p)
	}
	if p.TextBytes() != 4 {
		t.Errorf("TextBytes = %d", p.TextBytes())
	}
	if p.Name != "layout" {
		t.Errorf("Name = %q", p.Name)
	}
}
