// Package asm provides a programmatic assembler for the AVG ISA. Workloads
// are written as Go code against the Builder API; Assemble resolves labels
// and produces a Program image that the machine model loads directly.
//
// The memory layout convention shared with the machine model is:
//
//	TextBase   0x1000   instruction words
//	DataBase   0x10000  initialised data
//	OutLenAddr 0x3FFF8  the program stores its output byte count here
//	OutBase    0x40000  output region, drained by DMA at halt
//	stack      grows down from the top of RAM
//
// Register conventions used by the bundled workloads: r0 is hard-wired zero,
// r13 is the link register, r14 the stack pointer. Portable workloads use
// only r0–r15 so they assemble for both ISA variants.
package asm

import (
	"fmt"

	"avgi/internal/isa"
)

// Register aliases used by the bundled workloads.
const (
	Zero uint8 = 0
	LR   uint8 = 13
	SP   uint8 = 14
)

// Default memory layout constants.
const (
	DefaultTextBase   uint64 = 0x1000
	DefaultDataBase   uint64 = 0x10000
	DefaultOutLenAddr uint64 = 0x3FFF8
	DefaultOutBase    uint64 = 0x40000
	DefaultRAMSize    uint64 = 1 << 20 // 1 MiB
)

// Program is an assembled workload image.
type Program struct {
	Name    string
	Variant isa.Variant

	TextBase uint64
	Text     []uint32

	DataBase uint64
	Data     []byte

	OutBase    uint64
	OutLenAddr uint64
	RAMSize    uint64
}

// TextBytes returns the size of the text segment in bytes.
func (p *Program) TextBytes() uint64 { return uint64(len(p.Text)) * 4 }

// Builder accumulates instructions and data for a workload.
type Builder struct {
	name    string
	variant isa.Variant

	text   []isa.Inst
	fixups []fixup // label references to resolve

	labels map[string]int // label -> instruction index

	data       []byte
	dataLabels map[string]uint64 // data label -> absolute address

	err error
}

type fixupKind uint8

const (
	fixBranch fixupKind = iota // imm12 word offset from the instruction
	fixJump                    // imm18 word offset from the instruction
)

type fixup struct {
	index int // instruction index in text
	label string
	kind  fixupKind
}

// NewBuilder returns a Builder for a workload named name targeting variant v.
func NewBuilder(name string, v isa.Variant) *Builder {
	return &Builder{
		name:       name,
		variant:    v,
		labels:     make(map[string]int),
		dataLabels: make(map[string]uint64),
	}
}

// Variant returns the ISA variant the builder targets.
func (b *Builder) Variant() isa.Variant { return b.variant }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm(%s): %s", b.name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) emit(inst isa.Inst) {
	b.text = append(b.text, inst)
}

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.text)
}

// --- data section ---

// DataBytes appends raw bytes to the data section under a label and returns
// the absolute address the bytes will load at.
func (b *Builder) DataBytes(label string, bytes []byte) uint64 {
	addr := DefaultDataBase + uint64(len(b.data))
	if label != "" {
		if _, dup := b.dataLabels[label]; dup {
			b.fail("duplicate data label %q", label)
		}
		b.dataLabels[label] = addr
	}
	b.data = append(b.data, bytes...)
	return addr
}

// DataWords appends values as natural-width words (4 or 8 bytes each,
// little-endian) and returns the start address.
func (b *Builder) DataWords(label string, values []uint64) uint64 {
	wb := int(b.variant.WordBytes())
	buf := make([]byte, len(values)*wb)
	for i, v := range values {
		putUint(buf[i*wb:], v, wb)
	}
	return b.DataBytes(label, buf)
}

// DataWords32 appends values as 32-bit words regardless of variant.
func (b *Builder) DataWords32(label string, values []uint32) uint64 {
	buf := make([]byte, len(values)*4)
	for i, v := range values {
		putUint(buf[i*4:], uint64(v), 4)
	}
	return b.DataBytes(label, buf)
}

// Reserve appends n zero bytes to the data section under a label and
// returns the start address. Used for scratch arrays.
func (b *Builder) Reserve(label string, n int) uint64 {
	return b.DataBytes(label, make([]byte, n))
}

// Align pads the data section to a multiple of n bytes.
func (b *Builder) Align(n int) {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
}

// DataAddr returns the address of a previously defined data label.
func (b *Builder) DataAddr(label string) uint64 {
	addr, ok := b.dataLabels[label]
	if !ok {
		b.fail("unknown data label %q", label)
	}
	return addr
}

func putUint(dst []byte, v uint64, n int) {
	for i := 0; i < n; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

// --- instruction helpers ---

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Inst{Op: isa.OpNOP}) }

// Halt emits the halt instruction that terminates execution and triggers
// the DMA output drain.
func (b *Builder) Halt() { b.emit(isa.Inst{Op: isa.OpHALT}) }

// R emits a register-register ALU instruction.
func (b *Builder) R(op isa.Op, rd, rs1, rs2 uint8) {
	b.checkRegs(rd, rs1, rs2)
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// I emits a register-immediate instruction (ADDI/ANDI/.../JALR).
func (b *Builder) I(op isa.Op, rd, rs1 uint8, imm int32) {
	b.checkRegs(rd, rs1)
	b.checkImm12(op, imm)
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// checkImm12 validates a 12-bit immediate under the opcode's extension
// rule, turning out-of-range values into assembly errors instead of
// Encode panics (the text parser feeds arbitrary user input here).
func (b *Builder) checkImm12(op isa.Op, imm int32) {
	switch op {
	case isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
		if imm < 0 || imm > 4095 {
			b.fail("unsigned immediate %d out of range for %s", imm, isa.OpName(op))
		}
	default:
		if imm < -2048 || imm > 2047 {
			b.fail("immediate %d out of range for %s", imm, isa.OpName(op))
		}
	}
}

// Add etc. — thin mnemonic wrappers for readability in workload sources.
func (b *Builder) Add(rd, rs1, rs2 uint8)  { b.R(isa.OpADD, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 uint8)  { b.R(isa.OpSUB, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 uint8)  { b.R(isa.OpAND, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 uint8)   { b.R(isa.OpOR, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 uint8)  { b.R(isa.OpXOR, rd, rs1, rs2) }
func (b *Builder) Sll(rd, rs1, rs2 uint8)  { b.R(isa.OpSLL, rd, rs1, rs2) }
func (b *Builder) Srl(rd, rs1, rs2 uint8)  { b.R(isa.OpSRL, rd, rs1, rs2) }
func (b *Builder) Sra(rd, rs1, rs2 uint8)  { b.R(isa.OpSRA, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 uint8)  { b.R(isa.OpMUL, rd, rs1, rs2) }
func (b *Builder) Mulh(rd, rs1, rs2 uint8) { b.R(isa.OpMULH, rd, rs1, rs2) }
func (b *Builder) Div(rd, rs1, rs2 uint8)  { b.R(isa.OpDIV, rd, rs1, rs2) }
func (b *Builder) Rem(rd, rs1, rs2 uint8)  { b.R(isa.OpREM, rd, rs1, rs2) }
func (b *Builder) Slt(rd, rs1, rs2 uint8)  { b.R(isa.OpSLT, rd, rs1, rs2) }
func (b *Builder) Sltu(rd, rs1, rs2 uint8) { b.R(isa.OpSLTU, rd, rs1, rs2) }

func (b *Builder) Addi(rd, rs1 uint8, imm int32) { b.I(isa.OpADDI, rd, rs1, imm) }
func (b *Builder) Andi(rd, rs1 uint8, imm int32) { b.I(isa.OpANDI, rd, rs1, imm) }
func (b *Builder) Ori(rd, rs1 uint8, imm int32)  { b.I(isa.OpORI, rd, rs1, imm) }
func (b *Builder) Xori(rd, rs1 uint8, imm int32) { b.I(isa.OpXORI, rd, rs1, imm) }
func (b *Builder) Slli(rd, rs1 uint8, imm int32) { b.I(isa.OpSLLI, rd, rs1, imm) }
func (b *Builder) Srli(rd, rs1 uint8, imm int32) { b.I(isa.OpSRLI, rd, rs1, imm) }
func (b *Builder) Srai(rd, rs1 uint8, imm int32) { b.I(isa.OpSRAI, rd, rs1, imm) }
func (b *Builder) Slti(rd, rs1 uint8, imm int32) { b.I(isa.OpSLTI, rd, rs1, imm) }

// Mov copies rs1 into rd.
func (b *Builder) Mov(rd, rs1 uint8) { b.Addi(rd, rs1, 0) }

// Li loads an arbitrary constant into rd, emitting the shortest sequence of
// ADDI/SLLI/ORI instructions (at most 7 on V64). The value is interpreted in
// the variant's width.
func (b *Builder) Li(rd uint8, value uint64) {
	v := value & b.variant.Mask()
	if sv := b.variant.SignExtend(v); sv >= -2048 && sv <= 2047 {
		b.Addi(rd, Zero, int32(sv))
		return
	}
	// Decompose into 11-bit chunks from the most significant end.
	nbits := 64 - leadingZeros(v)
	chunkBits := 11
	n := (nbits + chunkBits - 1) / chunkBits
	top := (n - 1) * chunkBits
	b.Addi(rd, Zero, int32(v>>top))
	for i := n - 2; i >= 0; i-- {
		b.Slli(rd, rd, int32(chunkBits))
		chunk := int32((v >> (i * chunkBits)) & ((1 << chunkBits) - 1))
		if chunk != 0 {
			b.Ori(rd, rd, chunk)
		}
	}
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0 && v&(1<<uint(i)) == 0; i-- {
		n++
	}
	return n
}

// Load/store helpers. The natural-width forms map to LD/SD on V64 and
// LW/SW on V32, so portable workloads manipulate word arrays with them.

func (b *Builder) Lb(rd, base uint8, off int32)  { b.mem(isa.OpLB, rd, base, off) }
func (b *Builder) Lbu(rd, base uint8, off int32) { b.mem(isa.OpLBU, rd, base, off) }
func (b *Builder) Lh(rd, base uint8, off int32)  { b.mem(isa.OpLH, rd, base, off) }
func (b *Builder) Lhu(rd, base uint8, off int32) { b.mem(isa.OpLHU, rd, base, off) }
func (b *Builder) Lw(rd, base uint8, off int32)  { b.mem(isa.OpLW, rd, base, off) }
func (b *Builder) Sb(rv, base uint8, off int32)  { b.mem(isa.OpSB, rv, base, off) }
func (b *Builder) Sh(rv, base uint8, off int32)  { b.mem(isa.OpSH, rv, base, off) }
func (b *Builder) Sw(rv, base uint8, off int32)  { b.mem(isa.OpSW, rv, base, off) }

// LoadW loads a natural-width word.
func (b *Builder) LoadW(rd, base uint8, off int32) {
	if b.variant == isa.V32 {
		b.mem(isa.OpLW, rd, base, off)
	} else {
		b.mem(isa.OpLD, rd, base, off)
	}
}

// StoreW stores a natural-width word.
func (b *Builder) StoreW(rv, base uint8, off int32) {
	if b.variant == isa.V32 {
		b.mem(isa.OpSW, rv, base, off)
	} else {
		b.mem(isa.OpSD, rv, base, off)
	}
}

func (b *Builder) mem(op isa.Op, r, base uint8, off int32) {
	b.checkRegs(r, base)
	b.checkImm12(op, off)
	b.emit(isa.Inst{Op: op, Rd: r, Rs1: base, Imm: off})
}

// WordShift returns log2 of the natural word size (3 on V64, 2 on V32),
// for index scaling in portable workloads.
func (b *Builder) WordShift() int32 {
	if b.variant == isa.V32 {
		return 2
	}
	return 3
}

// Branch helpers take label names resolved at Assemble time.

func (b *Builder) Beq(ra, rb uint8, label string)  { b.branch(isa.OpBEQ, ra, rb, label) }
func (b *Builder) Bne(ra, rb uint8, label string)  { b.branch(isa.OpBNE, ra, rb, label) }
func (b *Builder) Blt(ra, rb uint8, label string)  { b.branch(isa.OpBLT, ra, rb, label) }
func (b *Builder) Bge(ra, rb uint8, label string)  { b.branch(isa.OpBGE, ra, rb, label) }
func (b *Builder) Bltu(ra, rb uint8, label string) { b.branch(isa.OpBLTU, ra, rb, label) }
func (b *Builder) Bgeu(ra, rb uint8, label string) { b.branch(isa.OpBGEU, ra, rb, label) }

func (b *Builder) branch(op isa.Op, ra, rb uint8, label string) {
	b.checkRegs(ra, rb)
	b.fixups = append(b.fixups, fixup{index: len(b.text), label: label, kind: fixBranch})
	b.emit(isa.Inst{Op: op, Rd: ra, Rs1: rb})
}

// Jump emits an unconditional jump (JAL with the zero register as link).
func (b *Builder) Jump(label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.text), label: label, kind: fixJump})
	b.emit(isa.Inst{Op: isa.OpJAL, Rd: Zero})
}

// Call emits a call: JAL with r13 (LR) as the link register.
func (b *Builder) Call(label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.text), label: label, kind: fixJump})
	b.emit(isa.Inst{Op: isa.OpJAL, Rd: LR})
}

// Ret returns to the address in LR.
func (b *Builder) Ret() { b.I(isa.OpJALR, Zero, LR, 0) }

// Jalr emits an indirect jump-and-link.
func (b *Builder) Jalr(rd, rs1 uint8, imm int32) { b.I(isa.OpJALR, rd, rs1, imm) }

func (b *Builder) checkRegs(regs ...uint8) {
	n := uint8(b.variant.NumArchRegs())
	for _, r := range regs {
		if r >= n {
			b.fail("register r%d out of range for %s", r, b.variant)
		}
	}
}

// Assemble resolves labels and produces the final Program.
func (b *Builder) Assemble() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, fx := range b.fixups {
		target, ok := b.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("asm(%s): undefined label %q", b.name, fx.label)
		}
		off := int32(target - fx.index)
		switch fx.kind {
		case fixBranch:
			if off < -2048 || off > 2047 {
				return nil, fmt.Errorf("asm(%s): branch to %q out of range (%d words)", b.name, fx.label, off)
			}
		case fixJump:
			if off < -(1<<17) || off >= 1<<17 {
				return nil, fmt.Errorf("asm(%s): jump to %q out of range (%d words)", b.name, fx.label, off)
			}
		}
		b.text[fx.index].Imm = off
	}
	if uint64(len(b.data)) > DefaultOutLenAddr-DefaultDataBase {
		return nil, fmt.Errorf("asm(%s): data section too large (%d bytes)", b.name, len(b.data))
	}
	if DefaultTextBase+uint64(len(b.text))*4 > DefaultDataBase {
		return nil, fmt.Errorf("asm(%s): text section too large (%d instructions)", b.name, len(b.text))
	}
	words := make([]uint32, len(b.text))
	for i, inst := range b.text {
		words[i] = isa.Encode(inst)
	}
	return &Program{
		Name:       b.name,
		Variant:    b.variant,
		TextBase:   DefaultTextBase,
		Text:       words,
		DataBase:   DefaultDataBase,
		Data:       append([]byte(nil), b.data...),
		OutBase:    DefaultOutBase,
		OutLenAddr: DefaultOutLenAddr,
		RAMSize:    DefaultRAMSize,
	}, nil
}

// MustAssemble is Assemble that panics on error; workload definitions are
// static so an error is a programming bug caught by the test suite.
func (b *Builder) MustAssemble() *Program {
	p, err := b.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}
