package asm

import (
	"testing"

	"avgi/internal/isa"
)

// TestParseRejectsOutOfRangeImmediates: the text parser must turn
// out-of-range immediates into errors, not Encode panics.
func TestParseRejectsOutOfRangeImmediates(t *testing.T) {
	for _, src := range []string{
		"sw r1, 4096(r2)\nhalt",
		"lw r1, -3000(r2)\nhalt",
		"addi r1, r2, 99999\nhalt",
		"ori r1, r2, -1\nhalt",
		"slli r1, r2, 5000\nhalt",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic for %q: %v", src, r)
				}
			}()
			if _, err := Parse("t", src, isa.V64); err == nil {
				t.Errorf("no error for %q", src)
			}
		}()
	}
}
