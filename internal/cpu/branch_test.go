package cpu

import (
	"testing"

	"avgi/internal/asm"
)

// TestBimodalPredictorLearnsLoop: after warm-up, a steady loop branch must
// stop mispredicting, so total mispredicts stay far below iterations.
func TestBimodalPredictorLearnsLoop(t *testing.T) {
	m, res := run(t, ConfigA72(), func(b *asm.Builder) {
		b.Li(1, 0)
		b.Li(2, 500)
		b.Label("loop")
		b.Addi(1, 1, 1)
		b.Blt(1, 2, "loop")
		b.Halt()
	})
	if res.Status != StatusHalted {
		t.Fatal(res.Status)
	}
	if m.Stats.Branches < 500 {
		t.Fatalf("branches %d", m.Stats.Branches)
	}
	// One warm-up mispredict plus the final fall-through: the steady
	// state must predict correctly.
	if m.Stats.Mispredicts > 5 {
		t.Errorf("mispredicts = %d for a steady loop", m.Stats.Mispredicts)
	}
}

// TestBTBLearnsIndirectTarget: repeated calls through the same JALR (ret)
// train the BTB, so later returns don't mispredict.
func TestBTBLearnsIndirectTarget(t *testing.T) {
	m, res := run(t, ConfigA72(), func(b *asm.Builder) {
		b.Li(1, 0)
		b.Li(2, 100)
		b.Label("loop")
		b.Call("fn")
		b.Addi(1, 1, 1)
		b.Blt(1, 2, "loop")
		b.Halt()
		b.Label("fn")
		b.Ret()
	})
	if res.Status != StatusHalted {
		t.Fatal(res.Status)
	}
	// The ret target is identical every iteration: after the first call
	// the BTB supplies it. Allow warm-up noise from the loop branch.
	perCall := float64(m.Stats.Mispredicts) / 100
	if perCall > 0.2 {
		t.Errorf("mispredicts per call = %.2f; BTB not learning", perCall)
	}
}

// TestAlternatingBranchMispredicts: a strictly alternating branch defeats
// a bimodal predictor — mispredict rate must be substantial, which is what
// keeps wrong-path masking (squashes) exercised in campaigns.
func TestAlternatingBranchMispredicts(t *testing.T) {
	m, res := run(t, ConfigA72(), func(b *asm.Builder) {
		b.Li(1, 0)   // i
		b.Li(2, 400) // n
		b.Li(3, 0)   // acc
		b.Label("loop")
		b.Andi(4, 1, 1)
		b.Beq(4, 0, "even")
		b.Addi(3, 3, 1)
		b.Jump("next")
		b.Label("even")
		b.Addi(3, 3, 2)
		b.Label("next")
		b.Addi(1, 1, 1)
		b.Blt(1, 2, "loop")
		b.Halt()
	})
	if res.Status != StatusHalted {
		t.Fatal(res.Status)
	}
	if m.ArchReg(3) != 200*1+200*2 {
		t.Errorf("acc = %d", m.ArchReg(3))
	}
	if m.Stats.Squashed == 0 {
		t.Error("alternating branch produced no squashes")
	}
}
