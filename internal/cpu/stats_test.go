package cpu

import (
	"strings"
	"testing"

	"avgi/internal/asm"
)

func TestStatsReport(t *testing.T) {
	m, res := run(t, ConfigA72(), func(b *asm.Builder) {
		b.Li(1, 0x8000)
		b.Li(2, 42)
		b.StoreW(2, 1, 0)
		b.LoadW(3, 1, 0)
		b.Li(4, 0)
		b.Label("loop")
		b.Addi(4, 4, 1)
		b.Slti(5, 4, 10)
		b.Bne(5, 0, "loop")
		b.Halt()
	})
	if res.Status != StatusHalted {
		t.Fatal(res.Status)
	}
	rep := m.StatsReport()
	for _, want := range []string{"cycles", "commits", "IPC", "branches", "L1I", "L1D", "L2", "ITLB", "DTLB", "loads/stores"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// The loop ran 10 branches; they must be counted.
	if m.Stats.Branches < 10 {
		t.Errorf("branches = %d", m.Stats.Branches)
	}
}

func TestOutputProfileSampling(t *testing.T) {
	cfg := ConfigA72()
	b := asm.NewBuilder("t", cfg.Variant)
	// Write output bytes early, then spin long enough for samples.
	b.Li(1, asm.DefaultOutBase)
	b.Li(2, 0xAB)
	for i := int32(0); i < 64; i++ {
		b.Sb(2, 1, i)
	}
	b.Li(3, asm.DefaultOutLenAddr)
	b.Li(4, 64)
	b.StoreW(4, 3, 0)
	b.Li(5, 0)
	b.Li(6, 3000)
	b.Label("spin")
	b.Addi(5, 5, 1)
	b.Blt(5, 6, "spin")
	b.Halt()
	p := b.MustAssemble()
	m := New(cfg, p)
	m.EnableOutputProfiling(p.OutLenAddr, p.RAMSize, 64)
	if res := m.Run(RunOptions{MaxCycles: 1_000_000}); res.Status != StatusHalted {
		t.Fatal(res.Status)
	}
	cycles, l1d, l2 := m.OutputProfile()
	if len(cycles) == 0 || len(l1d) != len(cycles) || len(l2) != len(cycles) {
		t.Fatalf("profile shapes: %d %d %d", len(cycles), len(l1d), len(l2))
	}
	// The output line stays dirty through the spin: most samples after
	// the writes must see at least one dirty output line in L1D.
	dirtySamples := 0
	for _, n := range l1d {
		if n > 0 {
			dirtySamples++
		}
	}
	if dirtySamples < len(l1d)/2 {
		t.Errorf("dirty output visible in only %d/%d samples", dirtySamples, len(l1d))
	}
	// A clone must not inherit the profiling hook.
	c := m.Clone()
	if cc, _, _ := c.OutputProfile(); cc != nil {
		t.Error("clone inherited output profile")
	}
}
