package cpu

import (
	"avgi/internal/isa"
	"avgi/internal/mem"
)

// operandReady reports whether an operand's value is available this cycle.
func (m *Machine) operandReady(op operand) bool {
	return !op.isReg || m.prfReadyAt[op.phys] <= m.cycle
}

// operandValue reads an operand (physical register or constant).
func (m *Machine) operandValue(op operand) uint64 {
	if op.isReg {
		return m.prf[op.phys] & m.Cfg.Variant.Mask()
	}
	return op.con & m.Cfg.Variant.Mask()
}

// issueStage selects up to IssueWidth ready instructions from the issue
// queue in program order and executes them. Branch mispredictions are
// resolved here with execute-time recovery.
func (m *Machine) issueStage() {
	issued := 0
	for i := 0; i < len(m.iq) && issued < m.Cfg.IssueWidth; i++ {
		idx := m.iq[i]
		e := m.robAt(idx)
		if !e.used || e.issued {
			// Stale IQ slot after a squash; drop it.
			m.iq = append(m.iq[:i], m.iq[i+1:]...)
			i--
			continue
		}
		if !m.operandReady(e.src[0]) || !m.operandReady(e.src[1]) {
			continue
		}
		ok, squashed := m.execute(idx, e)
		if !ok {
			continue // memory-ordering stall; retry next cycle
		}
		e.issued = true
		issued++
		m.iq = append(m.iq[:i], m.iq[i+1:]...)
		i--
		if squashed {
			// The IQ was rebuilt; indices beyond this point are
			// invalid.
			return
		}
	}
}

// execute performs one instruction. It returns ok=false if the instruction
// must retry later (load blocked by an unresolved older store), and
// squashed=true if a misprediction rewound the pipeline.
func (m *Machine) execute(idx int, e *robEntry) (ok, squashed bool) {
	v := m.Cfg.Variant
	a := m.operandValue(e.src[0])
	b := m.operandValue(e.src[1])
	if m.probe != nil {
		m.probe.onOperandRead(e)
	}
	lat := m.Cfg.LatALU

	switch e.class {
	case isa.ClassALU, isa.ClassMul:
		e.result = isa.EvalALU(e.inst.Op, a, b, v)
		switch e.inst.Op {
		case isa.OpMUL, isa.OpMULH:
			lat = m.Cfg.LatMul
		case isa.OpDIV, isa.OpREM:
			lat = m.Cfg.LatDiv
		}

	case isa.ClassLoad:
		return m.executeLoad(idx, e)

	case isa.ClassStore:
		vaddr := (a + uint64(int64(e.inst.Imm))) & v.Mask()
		size := isa.MemBytes(e.inst.Op)
		e.effAddr = vaddr
		e.result = b & sizeMask(size)
		if vaddr%size != 0 {
			e.exc = excAlign
		} else if _, _, fault := m.Mem.TranslateData(vaddr); fault != mem.FaultNone {
			e.exc = excPage
		}
		s := &m.sqs[e.sq]
		s.addr = vaddr
		s.size = size
		s.data = e.result
		s.known = true
		m.Stats.Stores++

	case isa.ClassBranch:
		taken := isa.BranchTaken(e.inst.Op, a, b, v)
		target := e.pc + uint64(int64(e.inst.Imm))*4
		m.Stats.Branches++
		// Update the bimodal predictor.
		bi := m.bpIndex(e.pc)
		m.touchBimodal(bi)
		if taken {
			if m.bimodal[bi] < 3 {
				m.bimodal[bi]++
			}
		} else if m.bimodal[bi] > 0 {
			m.bimodal[bi]--
		}
		actualNext := e.pc + 4
		if taken {
			actualNext = target
		}
		predNext := e.pc + 4
		if e.predTaken {
			predNext = e.predTarget
		}
		e.done = true
		e.readyAt = m.cycle + lat
		if actualNext != predNext {
			m.Stats.Mispredicts++
			m.squashAfter(idx, actualNext)
			return true, true
		}
		return true, false

	case isa.ClassJump:
		e.result = (e.pc + 4) & v.Mask()
		if e.inst.Op == isa.OpJALR {
			target := (a + uint64(int64(e.inst.Imm))) & v.Mask() &^ uint64(3)
			bti := m.btbIndex(e.pc)
			m.touchBTB(bti)
			m.btb[bti] = target
			m.finishDest(e, lat)
			if target != e.predTarget {
				m.Stats.Mispredicts++
				m.squashAfter(idx, target)
				return true, true
			}
			return true, false
		}
		// JAL: target was computed at fetch; never mispredicts.
	}

	m.finishDest(e, lat)
	return true, false
}

// finishDest writes the result to the destination register (if any) and
// marks the entry complete after lat cycles.
func (m *Machine) finishDest(e *robEntry, lat uint64) {
	if e.hasDest {
		if m.probe != nil {
			m.probe.regWrite(e.destPhys)
		}
		m.prf[e.destPhys] = e.result & m.Cfg.Variant.Mask()
		m.prfReadyAt[e.destPhys] = m.cycle + lat
	}
	e.done = true
	e.readyAt = m.cycle + lat
}

// executeLoad handles address generation, store-to-load forwarding and the
// cache access for a load. Conservative memory ordering: a load waits until
// every older store's address is known.
func (m *Machine) executeLoad(idx int, e *robEntry) (ok, squashed bool) {
	v := m.Cfg.Variant
	base := m.operandValue(e.src[0])
	vaddr := (base + uint64(int64(e.inst.Imm))) & v.Mask()
	size := isa.MemBytes(e.inst.Op)

	// Scan older stores (youngest first) for forwarding or conflicts.
	var fwd *sqEntry
	for n, j := 0, (m.sqTail-1+len(m.sqs))%len(m.sqs); n < m.sqCnt; n, j = n+1, (j-1+len(m.sqs))%len(m.sqs) {
		s := &m.sqs[j]
		if !s.used || s.seq > e.seq {
			continue
		}
		if !s.known {
			return false, false // unresolved older store: wait
		}
		if s.addr < vaddr+size && vaddr < s.addr+s.size {
			if s.addr == vaddr && s.size >= size {
				fwd = s
			} else {
				// Partial overlap: wait until the store drains.
				return false, false
			}
			break
		}
	}

	e.effAddr = vaddr
	l := &m.lqs[e.lq]
	l.addr = vaddr
	l.size = size
	l.known = true
	m.Stats.Loads++

	if vaddr%size != 0 {
		e.exc = excAlign
		e.done = true
		e.readyAt = m.cycle
		return true, false
	}

	var raw uint64
	lat := m.Cfg.LatALU
	if fwd != nil {
		raw = fwd.data & sizeMask(size)
		lat = 1
	} else {
		var fault mem.Fault
		raw, lat, fault = m.Mem.Load(vaddr, size)
		if fault != mem.FaultNone {
			e.exc = excPage
			e.done = true
			e.readyAt = m.cycle + lat
			return true, false
		}
		if lat == 0 {
			lat = 1
		}
	}
	e.result = extendLoad(e.inst.Op, raw, v)
	m.finishDest(e, lat)
	return true, false
}

// extendLoad applies the opcode's sign/zero extension to a raw loaded value.
func extendLoad(op isa.Op, raw uint64, v isa.Variant) uint64 {
	var x uint64
	switch op {
	case isa.OpLB:
		x = uint64(int64(int8(raw)))
	case isa.OpLH:
		x = uint64(int64(int16(raw)))
	case isa.OpLW:
		x = uint64(int64(int32(raw)))
	case isa.OpLBU, isa.OpLHU, isa.OpLWU, isa.OpLD:
		x = raw
	default:
		x = raw
	}
	return x & v.Mask()
}

func sizeMask(n uint64) uint64 {
	if n >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*n) - 1
}

// squashAfter discards every instruction younger than the entry at ROB
// index idx, undoing its rename effects by walking the ROB from the tail
// backwards, and redirects fetch to next.
func (m *Machine) squashAfter(idx int, next uint64) {
	bound := m.robAt(idx).seq
	for m.robCount > 0 {
		last := (m.robTail - 1 + len(m.rob)) % len(m.rob)
		e := m.robAt(last)
		if e.seq <= bound {
			break
		}
		if m.probe != nil {
			m.probe.queueSquash(probeROB, last)
			if e.lq >= 0 {
				m.probe.queueSquash(probeLQ, e.lq)
			}
			if e.sq >= 0 {
				m.probe.queueSquash(probeSQ, e.sq)
			}
		}
		if e.hasDest {
			m.renameMap[e.destArch] = e.oldPhys
			m.freePush(e.destPhys)
		}
		if e.lq >= 0 {
			m.lqs[e.lq].used = false
			m.lqTail = e.lq
			m.lqCnt--
		}
		if e.sq >= 0 {
			m.sqs[e.sq].used = false
			m.sqTail = e.sq
			m.sqCnt--
		}
		e.used = false
		m.robTail = last
		m.robCount--
		m.Stats.Squashed++
	}
	// Rebuild the issue queue with surviving entries only.
	kept := m.iq[:0]
	for _, i := range m.iq {
		e := m.robAt(i)
		if e.used && e.seq <= bound && !e.issued {
			kept = append(kept, i)
		}
	}
	m.iq = kept
	// Reset the front end.
	m.fq = m.fq[:0]
	m.fetchPC = next
	m.fetchHalted = false
	m.fetchStallUntil = 0
}
