package cpu

import (
	"fmt"
	"strings"
)

// Target is a fault-injectable hardware structure: a named array of bits.
// The twelve structures of the paper's study all implement it.
type Target interface {
	Name() string
	BitCount() uint64
	FlipBit(i uint64)
}

// Structure bit-surface widths for the queue structures. The surfaces model
// the control fields GeFIN injects into: program counter and rename tags for
// ROB entries, address/size/sequence tags for LQ entries, and
// address/size/data/sequence for SQ entries.
const (
	robEntryBits = 36 // pc(20) destArch(6) destPhys(7) flags(3)
	lqEntryBits  = 32 // addr(20) size(4) robTag(8)
)

// sqEntryBits returns the SQ surface width, which includes the store data
// and therefore depends on the variant width.
func (m *Machine) sqEntryBits() uint64 {
	return 32 + uint64(m.Cfg.Variant.Width())
}

// PRFTarget exposes the physical register file's value array.
type PRFTarget struct{ m *Machine }

// Name implements Target.
func (t *PRFTarget) Name() string { return "RF" }

// BitCount implements Target.
func (t *PRFTarget) BitCount() uint64 {
	return uint64(t.m.Cfg.PhysRegs) * uint64(t.m.Cfg.Variant.Width())
}

// FlipBit flips one bit of one physical register's value. The corruption
// propagates architecturally: dependent instructions read the flipped value.
func (t *PRFTarget) FlipBit(i uint64) {
	w := uint64(t.m.Cfg.Variant.Width())
	t.m.prf[i/w] ^= 1 << (i % w)
	t.m.Stats.FlipsArmed++
}

// ROBTarget exposes the reorder buffer's control-field surface. A flip on a
// live entry is detected by the shadow integrity check when the entry
// commits (machine check / PRE); flips on free slots are overwritten at the
// next allocation (hardware masking).
type ROBTarget struct{ m *Machine }

// Name implements Target.
func (t *ROBTarget) Name() string { return "ROB" }

// BitCount implements Target.
func (t *ROBTarget) BitCount() uint64 { return uint64(len(t.m.rob)) * robEntryBits }

// FlipBit implements Target.
func (t *ROBTarget) FlipBit(i uint64) {
	e := &t.m.rob[i/robEntryBits]
	if e.used {
		e.injected = true
		t.m.Stats.FlipsArmed++
	} else {
		t.m.Stats.FlipsMasked++
	}
}

// LQTarget exposes the load queue's control-field surface.
type LQTarget struct{ m *Machine }

// Name implements Target.
func (t *LQTarget) Name() string { return "LQ" }

// BitCount implements Target.
func (t *LQTarget) BitCount() uint64 { return uint64(len(t.m.lqs)) * lqEntryBits }

// FlipBit implements Target.
func (t *LQTarget) FlipBit(i uint64) {
	e := &t.m.lqs[i/lqEntryBits]
	if e.used {
		e.injected = true
		t.m.Stats.FlipsArmed++
	} else {
		t.m.Stats.FlipsMasked++
	}
}

// SQTarget exposes the store queue's control-field surface.
type SQTarget struct{ m *Machine }

// Name implements Target.
func (t *SQTarget) Name() string { return "SQ" }

// BitCount implements Target.
func (t *SQTarget) BitCount() uint64 {
	return uint64(len(t.m.sqs)) * t.m.sqEntryBits()
}

// FlipBit implements Target.
func (t *SQTarget) FlipBit(i uint64) {
	e := &t.m.sqs[i/t.m.sqEntryBits()]
	if e.used {
		e.injected = true
		t.m.Stats.FlipsArmed++
	} else {
		t.m.Stats.FlipsMasked++
	}
}

// StructureNames lists the twelve fault-target structures in the order the
// paper's Table II presents them.
var StructureNames = []string{
	"RF",
	"DTLB",
	"ITLB",
	"L1I (Data)",
	"L1D (Tag)",
	"ROB",
	"SQ",
	"LQ",
	"L1I (Tag)",
	"L2 (Tag)",
	"L1D (Data)",
	"L2 (Data)",
}

// countingTarget wraps a memory-system target so FlipBit feeds the
// machine's masking-source counters. SRAM arrays hold live data for the
// whole run, so every flip counts as armed.
type countingTarget struct {
	m *Machine
	Target
}

// FlipBit implements Target.
func (t countingTarget) FlipBit(i uint64) {
	t.m.Stats.FlipsArmed++
	t.Target.FlipBit(i)
}

// Targets returns the machine's twelve fault-injectable structures keyed by
// name.
func (m *Machine) Targets() map[string]Target {
	return map[string]Target{
		"RF":         &PRFTarget{m},
		"ROB":        &ROBTarget{m},
		"LQ":         &LQTarget{m},
		"SQ":         &SQTarget{m},
		"ITLB":       countingTarget{m, m.Mem.ITLB},
		"DTLB":       countingTarget{m, m.Mem.DTLB},
		"L1I (Tag)":  countingTarget{m, m.Mem.L1I.TagArray()},
		"L1I (Data)": countingTarget{m, m.Mem.L1I.DataArray()},
		"L1D (Tag)":  countingTarget{m, m.Mem.L1D.TagArray()},
		"L1D (Data)": countingTarget{m, m.Mem.L1D.DataArray()},
		"L2 (Tag)":   countingTarget{m, m.Mem.L2.TagArray()},
		"L2 (Data)":  countingTarget{m, m.Mem.L2.DataArray()},
	}
}

// Target returns one structure by name, or nil if unknown. The lookup is a
// direct switch rather than a Targets() map build: campaigns resolve a
// target once per fault, on the hot path.
func (m *Machine) Target(name string) Target {
	switch name {
	case "RF":
		return &PRFTarget{m}
	case "ROB":
		return &ROBTarget{m}
	case "LQ":
		return &LQTarget{m}
	case "SQ":
		return &SQTarget{m}
	case "ITLB":
		return countingTarget{m, m.Mem.ITLB}
	case "DTLB":
		return countingTarget{m, m.Mem.DTLB}
	case "L1I (Tag)":
		return countingTarget{m, m.Mem.L1I.TagArray()}
	case "L1I (Data)":
		return countingTarget{m, m.Mem.L1I.DataArray()}
	case "L1D (Tag)":
		return countingTarget{m, m.Mem.L1D.TagArray()}
	case "L1D (Data)":
		return countingTarget{m, m.Mem.L1D.DataArray()}
	case "L2 (Tag)":
		return countingTarget{m, m.Mem.L2.TagArray()}
	case "L2 (Data)":
		return countingTarget{m, m.Mem.L2.DataArray()}
	}
	return nil
}

// SplitCoreTarget parses a per-core structure name of the form
// "c<k>/<structure>" (e.g. "c1/RF") as used by cluster fault targets. ok is
// false when name carries no well-formed core prefix.
func SplitCoreTarget(name string) (core int, structure string, ok bool) {
	prefix, rest, found := strings.Cut(name, "/")
	if !found || len(prefix) < 2 || prefix[0] != 'c' {
		return 0, "", false
	}
	for _, r := range prefix[1:] {
		if r < '0' || r > '9' {
			return 0, "", false
		}
		core = core*10 + int(r-'0')
	}
	return core, rest, true
}

// ValidateStructure returns a descriptive error for structure names that
// are not one of the twelve Table II fault targets, optionally carrying a
// cluster core prefix ("c0/RF" validates like "RF").
func ValidateStructure(name string) error {
	base := name
	if _, rest, ok := SplitCoreTarget(name); ok {
		base = rest
	}
	for _, s := range StructureNames {
		if s == base {
			return nil
		}
	}
	return fmt.Errorf("unknown structure %q (known: %s, each optionally behind a c<k>/ core prefix)",
		name, strings.Join(StructureNames, ", "))
}

// SharedAcrossCores reports whether structure (without its core prefix)
// names an array that is physically shared in a cluster — the L2 arrays,
// which Cluster.Targets aliases under every core's prefix.
func SharedAcrossCores(structure string) bool {
	return structure == "L2 (Tag)" || structure == "L2 (Data)"
}

// CanonicalTarget maps a cluster fault-target name onto its canonical
// physical-array name: the shared-L2 aliases collapse onto the c0/ prefix,
// so enumerating a cluster's targets through this function visits each
// physical array exactly once. Every other name (non-shared structures,
// and unprefixed single-core names) maps to itself. "c1/L2 (Tag)" remains
// a perfectly valid *injection* name — the aliases flip the same bits —
// but population sums (AVF denominators, bit×cycle spaces) must count the
// one physical array once, not once per core.
func CanonicalTarget(name string) string {
	core, base, ok := SplitCoreTarget(name)
	if !ok || core == 0 || !SharedAcrossCores(base) {
		return name
	}
	return "c0/" + base
}
