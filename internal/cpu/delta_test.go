package cpu

import (
	"bytes"
	"math/rand"
	"testing"

	"avgi/internal/prog"
	"avgi/internal/trace"
)

// TestMachineDeltaSyncCursorLifecycle drives a machine through the exact
// lifecycle of a cursor worker — advance, delta-capture, run a faulty
// window with real bit flips across all twelve structures, delta-rewind —
// and proves the rewound machine finishes the workload bit-identically to
// an uninterrupted reference run. This is the machine-level dirty-delta
// property test: if any touched state escaped tracking, the post-rewind
// run diverges in trace, output, stats or final cycle.
func TestMachineDeltaSyncCursorLifecycle(t *testing.T) {
	for _, cfg := range []Config{ConfigA72(), ConfigA15()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			w, err := prog.ByName("sha")
			if err != nil {
				t.Fatal(err)
			}
			p := w.Build(cfg.Variant)

			ref := New(cfg, p)
			var refTrace trace.Capture
			ref.SetSink(&refTrace)
			ref.Run(RunOptions{MaxCycles: snapTestMaxCycles})

			m := New(cfg, p)
			m.Run(RunOptions{StopAtCycle: ref.Cycle() / 8, MaxCycles: snapTestMaxCycles})
			m.BeginDeltaTracking()
			snap := m.Snapshot(nil)

			rng := rand.New(rand.NewSource(11))
			step := ref.Cycle() / 16
			for round := 0; round < 10; round++ {
				// Golden advance to the next "injection cycle".
				m.Run(RunOptions{StopAtCycle: m.Cycle() + step, MaxCycles: snapTestMaxCycles})
				m.SyncSnapshot(snap)

				// Faulty window: flip bits in several structures and run on.
				for i := 0; i < 4; i++ {
					name := StructureNames[rng.Intn(len(StructureNames))]
					tgt := m.Target(name)
					tgt.FlipBit(uint64(rng.Int63n(int64(tgt.BitCount()))))
				}
				m.Run(RunOptions{StopAtCycle: m.Cycle() + step/2, MaxCycles: snapTestMaxCycles})
				m.SyncRestore(snap)
			}

			// The cursor machine now resumes the golden run from its last
			// sync point; everything downstream must match the reference.
			var tail trace.Capture
			m.SetSink(&tail)
			prefix := int(m.Stats.Commits)
			m.Run(RunOptions{MaxCycles: snapTestMaxCycles})

			if m.Status() != ref.Status() || m.Crash() != ref.Crash() {
				t.Errorf("status %v/%v, want %v/%v", m.Status(), m.Crash(), ref.Status(), ref.Crash())
			}
			if m.Cycle() != ref.Cycle() {
				t.Errorf("final cycle %d, want %d", m.Cycle(), ref.Cycle())
			}
			if m.Stats != ref.Stats {
				t.Errorf("stats diverged:\n got %+v\nwant %+v", m.Stats, ref.Stats)
			}
			if !bytes.Equal(m.Output(), ref.Output()) {
				t.Errorf("output diverged (%d vs %d bytes)", len(m.Output()), len(ref.Output()))
			}
			for i, rec := range tail.Records {
				if !rec.Same(refTrace.Records[prefix+i]) {
					t.Fatalf("trace record %d differs:\n got %+v\nwant %+v",
						prefix+i, rec, refTrace.Records[prefix+i])
				}
			}
		})
	}
}

// TestMachineSyncSnapshotGeometryGuards pins the misuse panics of the
// delta-sync pair: syncing without tracking, and syncing against a
// snapshot from a different machine geometry.
func TestMachineSyncSnapshotGeometryGuards(t *testing.T) {
	w, err := prog.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	m72 := New(ConfigA72(), w.Build(ConfigA72().Variant))
	snap := m72.Snapshot(nil)

	mustPanic := func(label string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", label)
			}
		}()
		f()
	}
	mustPanic("SyncSnapshot without tracking", func() { m72.SyncSnapshot(snap) })
	mustPanic("SyncRestore without tracking", func() { m72.SyncRestore(snap) })

	m15 := New(ConfigA15(), w.Build(ConfigA15().Variant))
	m15.BeginDeltaTracking()
	mustPanic("cross-geometry sync", func() { m15.SyncSnapshot(snap) })
}
