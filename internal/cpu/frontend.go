package cpu

import (
	"avgi/internal/isa"
	"avgi/internal/mem"
)

const readyNever = ^uint64(0)

// bpIndex maps a PC to a bimodal predictor slot.
func (m *Machine) bpIndex(pc uint64) int {
	return int(pc>>2) & (len(m.bimodal) - 1)
}

// btbIndex maps a PC to a BTB slot.
func (m *Machine) btbIndex(pc uint64) int {
	return int(pc>>2) % len(m.btb)
}

// fetchStage fetches up to FetchWidth instruction words per cycle into the
// fetch queue, following predicted control flow. An instruction-cache miss
// stalls fetch until the line arrives.
func (m *Machine) fetchStage() {
	if m.fetchHalted || m.cycle < m.fetchStallUntil {
		return
	}
	hitLat := m.Cfg.Mem.L1I.HitLat
	for i := 0; i < m.Cfg.FetchWidth; i++ {
		if len(m.fq) >= m.Cfg.FetchQueue {
			return
		}
		pc := m.fetchPC
		if pc%uint64(m.Cfg.Mem.L1I.LineBytes) == 0 {
			// Entering a new line: the next-line prefetcher starts
			// on the following one.
			m.Mem.PrefetchI(pc + uint64(m.Cfg.Mem.L1I.LineBytes))
		}
		word, lat, fault := m.Mem.FetchWord(pc)
		if fault != mem.FaultNone {
			exc := excPage
			if fault == mem.FaultAlign {
				exc = excAlign
			}
			m.fq = append(m.fq, fqEntry{pc: pc, readyAt: m.cycle + lat + 1, fetchExc: exc})
			m.fetchHalted = true
			return
		}
		inst := isa.Decode(word, m.Cfg.Variant)
		e := fqEntry{pc: pc, word: word, inst: inst, readyAt: m.cycle + lat}
		next := pc + 4
		switch isa.Classify(inst) {
		case isa.ClassBranch:
			if m.bimodal[m.bpIndex(pc)] >= 2 {
				e.predTaken = true
				e.predTarget = pc + uint64(int64(inst.Imm))*4
				next = e.predTarget
			}
		case isa.ClassJump:
			e.predTaken = true
			if inst.Op == isa.OpJAL {
				e.predTarget = pc + uint64(int64(inst.Imm))*4
			} else {
				// JALR: predict via the BTB; an empty slot
				// predicts fall-through and will mispredict.
				e.predTarget = m.btb[m.btbIndex(pc)]
				if e.predTarget == 0 {
					e.predTarget = pc + 4
				}
			}
			next = e.predTarget
		case isa.ClassHalt:
			m.fq = append(m.fq, e)
			m.fetchHalted = true
			return
		}
		m.fq = append(m.fq, e)
		m.fetchPC = next
		if lat > hitLat {
			// Miss: the remainder of the fetch group waits for the
			// fill.
			m.fetchStallUntil = m.cycle + lat
			return
		}
	}
}

// renameStage decodes, renames and dispatches up to DecodeWidth
// instructions from the fetch queue into the ROB, IQ and LQ/SQ.
func (m *Machine) renameStage() {
	for n := 0; n < m.Cfg.DecodeWidth; n++ {
		if len(m.fq) == 0 || m.fq[0].readyAt > m.cycle {
			return
		}
		if m.robCount == len(m.rob) {
			return
		}
		fe := m.fq[0]

		inst := fe.inst
		class := isa.Classify(inst)
		if fe.fetchExc != excNone {
			class = isa.ClassIllegal // routed through the exception path
		}

		needsIQ := class != isa.ClassNop && class != isa.ClassHalt && class != isa.ClassIllegal && fe.fetchExc == excNone
		if needsIQ && len(m.iq) >= m.Cfg.IQSize {
			return
		}
		if class == isa.ClassLoad && m.lqCnt == len(m.lqs) {
			return
		}
		if class == isa.ClassStore && m.sqCnt == len(m.sqs) {
			return
		}
		hasDest := false
		var destArch uint8
		switch class {
		case isa.ClassALU, isa.ClassMul, isa.ClassLoad:
			hasDest = inst.Rd != 0
			destArch = inst.Rd
		case isa.ClassJump:
			hasDest = inst.Rd != 0
			destArch = inst.Rd
		}
		if hasDest && m.freeTop == 0 {
			return // no free physical register
		}

		idx := m.robTail
		e := m.robAt(idx)
		if m.probe != nil {
			m.probe.queueAlloc(probeROB, idx)
		}
		*e = robEntry{
			used:  true,
			seq:   m.seqNext,
			pc:    fe.pc,
			word:  fe.word,
			inst:  inst,
			class: class,
			lq:    -1,
			sq:    -1,
		}
		m.seqNext++

		if fe.fetchExc != excNone {
			e.exc = fe.fetchExc
			e.done = true
			e.readyAt = m.cycle
		} else {
			switch class {
			case isa.ClassIllegal:
				e.exc = excIllegal
				e.done = true
				e.readyAt = m.cycle
			case isa.ClassNop, isa.ClassHalt:
				e.done = true
				e.readyAt = m.cycle
			default:
				m.renameOperands(e)
				e.predTaken = fe.predTaken
				e.predTarget = fe.predTarget
			}
		}

		if hasDest {
			e.hasDest = true
			e.destArch = destArch
			e.oldPhys = m.renameMap[destArch]
			newPhys := m.freePop()
			e.destPhys = newPhys
			m.renameMap[destArch] = newPhys
			m.prfReadyAt[newPhys] = readyNever
		}

		if class == isa.ClassLoad {
			e.lq = m.lqTail
			if m.probe != nil {
				m.probe.queueAlloc(probeLQ, m.lqTail)
			}
			m.lqs[m.lqTail] = lqEntry{used: true, rob: idx, seq: e.seq}
			m.lqTail = (m.lqTail + 1) % len(m.lqs)
			m.lqCnt++
		}
		if class == isa.ClassStore {
			e.sq = m.sqTail
			if m.probe != nil {
				m.probe.queueAlloc(probeSQ, m.sqTail)
			}
			m.sqs[m.sqTail] = sqEntry{used: true, rob: idx, seq: e.seq}
			m.sqTail = (m.sqTail + 1) % len(m.sqs)
			m.sqCnt++
		}

		if needsIQ {
			m.iq = append(m.iq, idx)
		}

		m.robTail = m.robNext(m.robTail)
		m.robCount++
		m.fq = m.fq[1:]
	}
}

// renameOperands resolves an instruction's source operands into renamed
// physical registers or constants.
func (m *Machine) renameOperands(e *robEntry) {
	srcReg := func(r uint8) operand {
		if r == 0 {
			return operand{} // hard-wired zero
		}
		return operand{isReg: true, phys: m.renameMap[r]}
	}
	in := e.inst
	switch e.class {
	case isa.ClassALU, isa.ClassMul:
		switch isa.OpFormat(in.Op) {
		case isa.FmtR:
			e.src[0] = srcReg(in.Rs1)
			e.src[1] = srcReg(in.Rs2)
		case isa.FmtI:
			e.src[0] = srcReg(in.Rs1)
			e.src[1] = operand{con: immValue(in)}
		case isa.FmtU:
			e.src[0] = operand{}
			e.src[1] = operand{con: uint64(int64(in.Imm))}
		}
	case isa.ClassLoad:
		e.src[0] = srcReg(in.Rs1)
		e.src[1] = operand{con: uint64(int64(in.Imm))}
	case isa.ClassStore:
		e.src[0] = srcReg(in.Rs1) // base
		e.src[1] = srcReg(in.Rd)  // value register travels in the rd slot
	case isa.ClassBranch:
		e.src[0] = srcReg(in.Rd)  // first compare operand
		e.src[1] = srcReg(in.Rs1) // second compare operand
	case isa.ClassJump:
		if in.Op == isa.OpJALR {
			e.src[0] = srcReg(in.Rs1)
		}
	}
}

// immValue returns the operand value of an immediate under the opcode's
// extension rule (already applied by Decode; logical immediates decode
// non-negative).
func immValue(in isa.Inst) uint64 {
	return uint64(int64(in.Imm))
}

// freePop removes the top free physical register.
func (m *Machine) freePop() uint16 {
	m.freeTop--
	return m.freeList[m.freeTop]
}

// freePush returns a physical register to the free list.
func (m *Machine) freePush(p uint16) {
	m.freeList[m.freeTop] = p
	m.freeTop++
}
