package cpu

import (
	"runtime"
	"testing"
	"time"

	"avgi/internal/prog"
)

// BenchmarkEngineOverheadGuard measures the cost of driving the machine
// through the event engine (Run registers the machine on a fresh
// engine.Engine) against the pre-refactor shape — a direct Step loop with
// the same stop conditions — in the same process, and fails the benchmark
// if the engine path is more than 5% slower. Comparing the two paths
// in-process makes the guard portable: it holds on any host regardless of
// absolute speed, unlike the recorded numbers in BENCH_engine.json.
//
//	go test -run='^$' -bench=EngineOverheadGuard ./internal/cpu/
func BenchmarkEngineOverheadGuard(b *testing.B) {
	w, err := prog.ByName("sha")
	if err != nil {
		b.Fatal(err)
	}
	cfg := ConfigA72()
	p := w.Build(cfg.Variant)

	// The guard compares the fastest observed trial of each path rather
	// than totals: on a shared host a single descheduled trial can inflate
	// one path's total by 10%+, while the per-path minimum converges on the
	// undisturbed cost. Trials alternate which path runs first (heap layout
	// and frequency state differ between the first and second run of a
	// pair), GC runs before every timed section so collection triggered by
	// one run's allocations is not billed to the next, and at least
	// minTrials pairs run regardless of b.N.
	const maxCycles = 50_000_000
	const minTrials = 8
	trials := b.N
	if trials < minTrials {
		trials = minTrials
	}

	// The old driving shape: the raw tick loop, no engine.
	stepRun := func() (time.Duration, uint64) {
		m := New(cfg, p)
		runtime.GC()
		t0 := time.Now()
		for m.Status() == StatusRunning && m.Cycle() < maxCycles {
			m.Step()
		}
		return time.Since(t0), m.Cycle()
	}
	// The shipped path: Run drives a fresh engine.
	engineRun := func() (time.Duration, uint64) {
		m := New(cfg, p)
		runtime.GC()
		t0 := time.Now()
		res := m.Run(RunOptions{MaxCycles: maxCycles})
		return time.Since(t0), res.Cycles
	}

	stepBest, engineBest := time.Duration(1<<62), time.Duration(1<<62)
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < trials; i++ {
		var sd, ed time.Duration
		var sc, ec uint64
		if i%2 == 0 {
			sd, sc = stepRun()
			ed, ec = engineRun()
		} else {
			ed, ec = engineRun()
			sd, sc = stepRun()
		}
		if sd < stepBest {
			stepBest = sd
		}
		if ed < engineBest {
			engineBest = ed
		}
		cycles = ec
		if sc != ec {
			b.Fatalf("paths diverged: step %d cycles vs engine %d", sc, ec)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/engineBest.Seconds(), "engine-cycles/s")
	b.ReportMetric(float64(cycles)/stepBest.Seconds(), "step-cycles/s")
	overhead := engineBest.Seconds()/stepBest.Seconds() - 1
	b.ReportMetric(overhead*100, "overhead-%")
	if overhead > 0.05 {
		b.Errorf("engine-driven run is %.1f%% slower than the direct Step loop (budget 5%%)", overhead*100)
	}
}
