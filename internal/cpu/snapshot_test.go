package cpu

import (
	"bytes"
	"testing"

	"avgi/internal/prog"
	"avgi/internal/trace"
)

const snapTestMaxCycles = 50_000_000

// TestSnapshotRestoreBitIdentical is the correctness bar for the checkpoint
// subsystem: capturing a machine mid-run, dirtying an unrelated scratch
// machine, restoring the snapshot into it and running to completion must
// produce a commit trace (including cycle numbers), output, statistics and
// final status byte-identical to the uninterrupted reference run — across
// all 13 workloads on both ISA variants.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	workloads := prog.All()
	if testing.Short() {
		workloads = workloads[:3]
	}
	for _, cfg := range []Config{ConfigA72(), ConfigA15()} {
		for _, w := range workloads {
			w := w
			cfg := cfg
			t.Run(w.Name+"/"+cfg.Variant.String(), func(t *testing.T) {
				t.Parallel()
				p := w.Build(cfg.Variant)

				// Reference: one uninterrupted run.
				ref := New(cfg, p)
				var refTrace trace.Capture
				ref.SetSink(&refTrace)
				ref.Run(RunOptions{MaxCycles: snapTestMaxCycles})
				if ref.Status() != StatusHalted {
					t.Fatalf("reference run ended %v", ref.Status())
				}

				// Snapshot a second machine halfway through.
				mid := ref.Cycle() / 2
				m := New(cfg, p)
				var mTrace trace.Capture
				m.SetSink(&mTrace)
				m.Run(RunOptions{StopAtCycle: mid, MaxCycles: snapTestMaxCycles})
				snap := m.Snapshot(nil)
				if snap.Cycle() != m.Cycle() {
					t.Fatalf("snap cycle %d, machine at %d", snap.Cycle(), m.Cycle())
				}
				if snap.Bytes() == 0 {
					t.Error("snapshot reports zero bytes")
				}
				prefix := len(mTrace.Records)

				// The source machine keeps running after the capture and
				// must still match the reference (COW must not corrupt it).
				m.Run(RunOptions{MaxCycles: snapTestMaxCycles})
				if !bytes.Equal(m.Output(), ref.Output()) {
					t.Error("source output diverged after snapshot")
				}

				// Dirty an unrelated scratch machine, then rewind it.
				scratch := New(cfg, p)
				scratch.Run(RunOptions{StopAtCycle: ref.Cycle() / 3, MaxCycles: snapTestMaxCycles})
				scratch.Restore(snap)
				if scratch.Cycle() != mid && scratch.Cycle() != snap.Cycle() {
					t.Fatalf("restored cycle %d", scratch.Cycle())
				}
				var sTrace trace.Capture
				scratch.SetSink(&sTrace)
				scratch.Run(RunOptions{MaxCycles: snapTestMaxCycles})

				if scratch.Status() != ref.Status() || scratch.Crash() != ref.Crash() {
					t.Errorf("status %v/%v, want %v/%v",
						scratch.Status(), scratch.Crash(), ref.Status(), ref.Crash())
				}
				if scratch.Cycle() != ref.Cycle() {
					t.Errorf("final cycle %d, want %d", scratch.Cycle(), ref.Cycle())
				}
				if scratch.Stats != ref.Stats {
					t.Errorf("stats diverged:\n got %+v\nwant %+v", scratch.Stats, ref.Stats)
				}
				if !bytes.Equal(scratch.Output(), ref.Output()) {
					t.Errorf("output diverged (%d vs %d bytes)",
						len(scratch.Output()), len(ref.Output()))
				}

				// Full trace = source prefix up to the capture + the
				// restored machine's tail, bit-identical to the reference.
				got := append(append([]trace.Record(nil), mTrace.Records[:prefix]...), sTrace.Records...)
				if len(got) != len(refTrace.Records) {
					t.Fatalf("trace length %d, want %d", len(got), len(refTrace.Records))
				}
				for i := range got {
					if !got[i].Same(refTrace.Records[i]) {
						t.Fatalf("trace record %d differs:\n got %+v\nwant %+v",
							i, got[i], refTrace.Records[i])
					}
				}
			})
		}
	}
}

// TestSnapshotReuseAcrossCaptures verifies that re-capturing into the same
// Snapshot buffers yields correct state each time.
func TestSnapshotReuseAcrossCaptures(t *testing.T) {
	cfg := ConfigA72()
	w, err := prog.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(cfg.Variant)

	ref := New(cfg, p)
	ref.Run(RunOptions{MaxCycles: snapTestMaxCycles})

	m := New(cfg, p)
	scratch := New(cfg, p)
	var snap *Snapshot
	for _, frac := range []uint64{4, 2} {
		m.Run(RunOptions{StopAtCycle: ref.Cycle() / frac, MaxCycles: snapTestMaxCycles})
		snap = m.Snapshot(snap)
		scratch.Restore(snap)
		scratch.Run(RunOptions{MaxCycles: snapTestMaxCycles})
		if !bytes.Equal(scratch.Output(), ref.Output()) {
			t.Fatalf("restore from reused snapshot at 1/%d diverged", frac)
		}
	}
	// Restoring again from the final snapshot still works: the snapshot
	// must not have been perturbed by the previous restore-and-run.
	scratch.Restore(snap)
	scratch.Run(RunOptions{MaxCycles: snapTestMaxCycles})
	if !bytes.Equal(scratch.Output(), ref.Output()) {
		t.Fatal("second restore from same snapshot diverged")
	}
}
