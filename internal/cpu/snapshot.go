package cpu

import (
	"unsafe"

	"avgi/internal/mem"
)

// In-memory entry sizes, for snapshot byte accounting only.
const (
	robEntrySize = unsafe.Sizeof(robEntry{})
	lqEntrySize  = unsafe.Sizeof(lqEntry{})
	sqEntrySize  = unsafe.Sizeof(sqEntry{})
	fqEntrySize  = unsafe.Sizeof(fqEntry{})
)

// Snapshot is an immutable capture of a machine's complete state, the cheap
// half of the fork primitive the campaign layer builds checkpoints from.
// Where Clone allocates a whole independent machine per fork, a Snapshot
// captures core state into reusable buffers and RAM as a copy-on-write
// fork, and Restore rewinds an existing scratch machine in place — so a
// worker allocates one machine and reuses it for every fault.
//
// A snapshot is never mutated after Snapshot returns; any number of
// machines may Restore from it concurrently.
type Snapshot struct {
	// m is a value copy of the source machine with every slice field
	// replaced by a private deep copy and the Mem/sink/profile pointers
	// cleared. Holding the whole struct means scalar fields added to
	// Machine later are captured automatically.
	m   Machine
	mem mem.HierarchySnap
}

// Snapshot captures the machine into s, reusing its buffers when non-nil,
// and returns it. The machine keeps running afterwards; its RAM privatizes
// pages copy-on-write as it diverges from the capture.
func (m *Machine) Snapshot(s *Snapshot) *Snapshot {
	if s == nil {
		s = &Snapshot{}
	}
	m.Mem.Snapshot(&s.mem)

	// Preserve the snapshot's existing slice buffers across the struct
	// copy so repeated captures into the same Snapshot do not allocate.
	prf := append(s.m.prf[:0], m.prf...)
	prfReadyAt := append(s.m.prfReadyAt[:0], m.prfReadyAt...)
	renameMap := append(s.m.renameMap[:0], m.renameMap...)
	committedMap := append(s.m.committedMap[:0], m.committedMap...)
	freeList := append(s.m.freeList[:0], m.freeList...)
	rob := append(s.m.rob[:0], m.rob...)
	iq := append(s.m.iq[:0], m.iq...)
	lqs := append(s.m.lqs[:0], m.lqs...)
	sqs := append(s.m.sqs[:0], m.sqs...)
	fq := append(s.m.fq[:0], m.fq...)
	bimodal := append(s.m.bimodal[:0], m.bimodal...)
	btb := append(s.m.btb[:0], m.btb...)
	output := append(s.m.output[:0], m.output...)

	s.m = *m
	s.m.Mem = nil
	s.m.sink = nil
	s.m.profile = nil // exposure profiling is a golden-run concern
	s.m.probe = nil   // fault probes never outlive their faulty run
	s.m.clearDeltaTracking()
	if m.deltaTrack {
		// A full capture leaves machine == snapshot: a fresh sync point.
		m.resetDeltaTouched()
	}

	s.m.prf = prf
	s.m.prfReadyAt = prfReadyAt
	s.m.renameMap = renameMap
	s.m.committedMap = committedMap
	s.m.freeList = freeList
	s.m.rob = rob
	s.m.iq = iq
	s.m.lqs = lqs
	s.m.sqs = sqs
	s.m.fq = fq
	s.m.bimodal = bimodal
	s.m.btb = btb
	s.m.output = output
	return s
}

// Restore rewinds the machine to a snapshot in place. The machine must
// share the snapshot's configuration (same geometry and program); memory
// restore panics otherwise. Object identity — the Mem hierarchy and the
// core's slice buffers — is preserved, so a restore allocates nothing
// beyond the rare fq regrowth. The trace sink and output profile are
// cleared; the caller installs fresh ones as needed.
func (m *Machine) Restore(s *Snapshot) {
	memSys := m.Mem
	deltaTrack := m.deltaTrack
	bimTouched, bimMarked := m.bimTouched, m.bimMarked
	btbTouched, btbMarked := m.btbTouched, m.btbMarked

	prf := append(m.prf[:0], s.m.prf...)
	prfReadyAt := append(m.prfReadyAt[:0], s.m.prfReadyAt...)
	renameMap := append(m.renameMap[:0], s.m.renameMap...)
	committedMap := append(m.committedMap[:0], s.m.committedMap...)
	freeList := append(m.freeList[:0], s.m.freeList...)
	rob := append(m.rob[:0], s.m.rob...)
	iq := append(m.iq[:0], s.m.iq...)
	lqs := append(m.lqs[:0], s.m.lqs...)
	sqs := append(m.sqs[:0], s.m.sqs...)
	fq := append(m.fq[:0], s.m.fq...)
	bimodal := append(m.bimodal[:0], s.m.bimodal...)
	btb := append(m.btb[:0], s.m.btb...)
	output := append(m.output[:0], s.m.output...)

	*m = s.m
	m.Mem = memSys
	m.Mem.Restore(&s.mem)

	// Tracking state belongs to the machine, not the captured state; a
	// full restore re-establishes machine == snapshot, so the delta
	// restarts empty from here.
	m.deltaTrack = deltaTrack
	m.bimTouched, m.bimMarked = bimTouched, bimMarked
	m.btbTouched, m.btbMarked = btbTouched, btbMarked
	if m.deltaTrack {
		m.resetDeltaTouched()
	}

	m.prf = prf
	m.prfReadyAt = prfReadyAt
	m.renameMap = renameMap
	m.committedMap = committedMap
	m.freeList = freeList
	m.rob = rob
	m.iq = iq
	m.lqs = lqs
	m.sqs = sqs
	m.fq = fq
	m.bimodal = bimodal
	m.btb = btb
	m.output = output
}

// BeginDeltaTracking starts dirty-delta tracking across the whole machine
// — predictor arrays on the core side, caches and TLBs in the memory
// system — establishing the current state as a sync point. While tracking,
// SyncSnapshot/SyncRestore move only the delta touched since the last sync
// point instead of the whole machine image.
func (m *Machine) BeginDeltaTracking() {
	if m.bimMarked == nil {
		m.bimMarked = make([]bool, len(m.bimodal))
		m.btbMarked = make([]bool, len(m.btb))
	}
	m.resetDeltaTouched()
	m.deltaTrack = true
	m.Mem.BeginDeltaTracking()
}

// EndDeltaTracking stops dirty-delta tracking everywhere (the fork pool
// calls this before recycling a machine so a later user is never handed a
// stale delta lineage).
func (m *Machine) EndDeltaTracking() {
	if m.deltaTrack {
		m.resetDeltaTouched()
		m.deltaTrack = false
	}
	m.Mem.EndDeltaTracking()
}

func (m *Machine) touchBimodal(i int) {
	if !m.deltaTrack || m.bimMarked[i] {
		return
	}
	m.bimMarked[i] = true
	m.bimTouched = append(m.bimTouched, int32(i))
}

func (m *Machine) touchBTB(i int) {
	if !m.deltaTrack || m.btbMarked[i] {
		return
	}
	m.btbMarked[i] = true
	m.btbTouched = append(m.btbTouched, int32(i))
}

func (m *Machine) resetDeltaTouched() {
	for _, i := range m.bimTouched {
		m.bimMarked[i] = false
	}
	for _, i := range m.btbTouched {
		m.btbMarked[i] = false
	}
	m.bimTouched = m.bimTouched[:0]
	m.btbTouched = m.btbTouched[:0]
}

// clearDeltaTracking drops tracking state from a captured machine value so
// a snapshot never aliases the source machine's touch lists.
func (m *Machine) clearDeltaTracking() {
	m.deltaTrack = false
	m.bimTouched, m.bimMarked = nil, nil
	m.btbTouched, m.btbMarked = nil, nil
}

// coreSyncBytes is the byte volume of the always-copied core arrays, for
// delta accounting.
func (m *Machine) coreSyncBytes() uint64 {
	return uint64(len(m.prf))*8 + uint64(len(m.prfReadyAt))*8 +
		uint64(len(m.renameMap))*2 + uint64(len(m.committedMap))*2 +
		uint64(len(m.freeList))*2 +
		uint64(len(m.rob))*uint64(robEntrySize) +
		uint64(len(m.iq))*8 +
		uint64(len(m.lqs))*uint64(lqEntrySize) +
		uint64(len(m.sqs))*uint64(sqEntrySize) +
		uint64(len(m.fq))*uint64(fqEntrySize) +
		uint64(len(m.output))
}

// SyncSnapshot re-captures the machine into s copying only the dirty delta
// accumulated since the last sync point: touched predictor entries, cache
// sets and TLB entries, a copy-on-write RAM re-fork, and the (small,
// fully-churning) pipeline arrays. s must have been fully captured from
// this machine under the current tracking lineage — SyncSnapshot after a
// full Snapshot(s), or after a SyncSnapshot/SyncRestore against the same s.
// The result is bit-identical to a full Snapshot. Returns the bytes copied,
// for telemetry.
func (m *Machine) SyncSnapshot(s *Snapshot) uint64 {
	if !m.deltaTrack {
		panic("cpu: SyncSnapshot without BeginDeltaTracking")
	}
	if len(s.m.prf) != len(m.prf) || len(s.m.bimodal) != len(m.bimodal) {
		panic("cpu: SyncSnapshot into a snapshot of another machine")
	}
	bytes := m.Mem.SyncSnapshot(&s.mem)

	for _, i := range m.bimTouched {
		s.m.bimodal[i] = m.bimodal[i]
	}
	for _, i := range m.btbTouched {
		s.m.btb[i] = m.btb[i]
	}
	bytes += uint64(len(m.bimTouched)) + uint64(len(m.btbTouched))*8

	prf := append(s.m.prf[:0], m.prf...)
	prfReadyAt := append(s.m.prfReadyAt[:0], m.prfReadyAt...)
	renameMap := append(s.m.renameMap[:0], m.renameMap...)
	committedMap := append(s.m.committedMap[:0], m.committedMap...)
	freeList := append(s.m.freeList[:0], m.freeList...)
	rob := append(s.m.rob[:0], m.rob...)
	iq := append(s.m.iq[:0], m.iq...)
	lqs := append(s.m.lqs[:0], m.lqs...)
	sqs := append(s.m.sqs[:0], m.sqs...)
	fq := append(s.m.fq[:0], m.fq...)
	output := append(s.m.output[:0], m.output...)
	bimodal := s.m.bimodal
	btb := s.m.btb

	s.m = *m
	s.m.Mem = nil
	s.m.sink = nil
	s.m.profile = nil
	s.m.probe = nil
	s.m.clearDeltaTracking()

	s.m.prf = prf
	s.m.prfReadyAt = prfReadyAt
	s.m.renameMap = renameMap
	s.m.committedMap = committedMap
	s.m.freeList = freeList
	s.m.rob = rob
	s.m.iq = iq
	s.m.lqs = lqs
	s.m.sqs = sqs
	s.m.fq = fq
	s.m.bimodal = bimodal
	s.m.btb = btb
	s.m.output = output

	m.resetDeltaTouched()
	return bytes + m.coreSyncBytes()
}

// SyncRestore rewinds the machine to s copying only the dirty delta
// accumulated since the last sync point (see SyncSnapshot); bit-identical
// to a full Restore under the sync invariant. The trace sink is cleared.
// Returns the bytes copied, for telemetry.
func (m *Machine) SyncRestore(s *Snapshot) uint64 {
	if !m.deltaTrack {
		panic("cpu: SyncRestore without BeginDeltaTracking")
	}
	if len(s.m.prf) != len(m.prf) || len(s.m.bimodal) != len(m.bimodal) {
		panic("cpu: SyncRestore from a snapshot of another machine")
	}
	bytes := m.Mem.SyncRestore(&s.mem)

	for _, i := range m.bimTouched {
		m.bimodal[i] = s.m.bimodal[i]
	}
	for _, i := range m.btbTouched {
		m.btb[i] = s.m.btb[i]
	}
	bytes += uint64(len(m.bimTouched)) + uint64(len(m.btbTouched))*8

	memSys := m.Mem
	bimTouched, bimMarked := m.bimTouched, m.bimMarked
	btbTouched, btbMarked := m.btbTouched, m.btbMarked

	prf := append(m.prf[:0], s.m.prf...)
	prfReadyAt := append(m.prfReadyAt[:0], s.m.prfReadyAt...)
	renameMap := append(m.renameMap[:0], s.m.renameMap...)
	committedMap := append(m.committedMap[:0], s.m.committedMap...)
	freeList := append(m.freeList[:0], s.m.freeList...)
	rob := append(m.rob[:0], s.m.rob...)
	iq := append(m.iq[:0], s.m.iq...)
	lqs := append(m.lqs[:0], s.m.lqs...)
	sqs := append(m.sqs[:0], s.m.sqs...)
	fq := append(m.fq[:0], s.m.fq...)
	output := append(m.output[:0], s.m.output...)
	bimodal := m.bimodal
	btb := m.btb

	*m = s.m
	m.Mem = memSys
	m.deltaTrack = true
	m.bimTouched, m.bimMarked = bimTouched, bimMarked
	m.btbTouched, m.btbMarked = btbTouched, btbMarked

	m.prf = prf
	m.prfReadyAt = prfReadyAt
	m.renameMap = renameMap
	m.committedMap = committedMap
	m.freeList = freeList
	m.rob = rob
	m.iq = iq
	m.lqs = lqs
	m.sqs = sqs
	m.fq = fq
	m.bimodal = bimodal
	m.btb = btb
	m.output = output

	m.resetDeltaTouched()
	return bytes + m.coreSyncBytes()
}

// Cycle returns the machine cycle at which the snapshot was captured.
func (s *Snapshot) Cycle() uint64 { return s.m.cycle }

// Bytes returns the captured state size in bytes — the core's copied
// arrays plus the memory snapshot's accounting — for checkpoint telemetry.
func (s *Snapshot) Bytes() uint64 {
	core := uint64(len(s.m.prf))*8 + uint64(len(s.m.prfReadyAt))*8 +
		uint64(len(s.m.renameMap))*2 + uint64(len(s.m.committedMap))*2 +
		uint64(len(s.m.freeList))*2 +
		uint64(len(s.m.rob))*uint64(robEntrySize) +
		uint64(len(s.m.iq))*8 +
		uint64(len(s.m.lqs))*uint64(lqEntrySize) +
		uint64(len(s.m.sqs))*uint64(sqEntrySize) +
		uint64(len(s.m.fq))*uint64(fqEntrySize) +
		uint64(len(s.m.bimodal)) + uint64(len(s.m.btb))*8 +
		uint64(len(s.m.output))
	return core + s.mem.Bytes()
}
