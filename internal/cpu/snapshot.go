package cpu

import (
	"unsafe"

	"avgi/internal/mem"
)

// In-memory entry sizes, for snapshot byte accounting only.
const (
	robEntrySize = unsafe.Sizeof(robEntry{})
	lqEntrySize  = unsafe.Sizeof(lqEntry{})
	sqEntrySize  = unsafe.Sizeof(sqEntry{})
	fqEntrySize  = unsafe.Sizeof(fqEntry{})
)

// Snapshot is an immutable capture of a machine's complete state, the cheap
// half of the fork primitive the campaign layer builds checkpoints from.
// Where Clone allocates a whole independent machine per fork, a Snapshot
// captures core state into reusable buffers and RAM as a copy-on-write
// fork, and Restore rewinds an existing scratch machine in place — so a
// worker allocates one machine and reuses it for every fault.
//
// A snapshot is never mutated after Snapshot returns; any number of
// machines may Restore from it concurrently.
type Snapshot struct {
	// m is a value copy of the source machine with every slice field
	// replaced by a private deep copy and the Mem/sink/profile pointers
	// cleared. Holding the whole struct means scalar fields added to
	// Machine later are captured automatically.
	m   Machine
	mem mem.HierarchySnap
}

// Snapshot captures the machine into s, reusing its buffers when non-nil,
// and returns it. The machine keeps running afterwards; its RAM privatizes
// pages copy-on-write as it diverges from the capture.
func (m *Machine) Snapshot(s *Snapshot) *Snapshot {
	if s == nil {
		s = &Snapshot{}
	}
	m.Mem.Snapshot(&s.mem)

	// Preserve the snapshot's existing slice buffers across the struct
	// copy so repeated captures into the same Snapshot do not allocate.
	prf := append(s.m.prf[:0], m.prf...)
	prfReadyAt := append(s.m.prfReadyAt[:0], m.prfReadyAt...)
	renameMap := append(s.m.renameMap[:0], m.renameMap...)
	committedMap := append(s.m.committedMap[:0], m.committedMap...)
	freeList := append(s.m.freeList[:0], m.freeList...)
	rob := append(s.m.rob[:0], m.rob...)
	iq := append(s.m.iq[:0], m.iq...)
	lqs := append(s.m.lqs[:0], m.lqs...)
	sqs := append(s.m.sqs[:0], m.sqs...)
	fq := append(s.m.fq[:0], m.fq...)
	bimodal := append(s.m.bimodal[:0], m.bimodal...)
	btb := append(s.m.btb[:0], m.btb...)
	output := append(s.m.output[:0], m.output...)

	s.m = *m
	s.m.Mem = nil
	s.m.sink = nil
	s.m.profile = nil // exposure profiling is a golden-run concern

	s.m.prf = prf
	s.m.prfReadyAt = prfReadyAt
	s.m.renameMap = renameMap
	s.m.committedMap = committedMap
	s.m.freeList = freeList
	s.m.rob = rob
	s.m.iq = iq
	s.m.lqs = lqs
	s.m.sqs = sqs
	s.m.fq = fq
	s.m.bimodal = bimodal
	s.m.btb = btb
	s.m.output = output
	return s
}

// Restore rewinds the machine to a snapshot in place. The machine must
// share the snapshot's configuration (same geometry and program); memory
// restore panics otherwise. Object identity — the Mem hierarchy and the
// core's slice buffers — is preserved, so a restore allocates nothing
// beyond the rare fq regrowth. The trace sink and output profile are
// cleared; the caller installs fresh ones as needed.
func (m *Machine) Restore(s *Snapshot) {
	memSys := m.Mem

	prf := append(m.prf[:0], s.m.prf...)
	prfReadyAt := append(m.prfReadyAt[:0], s.m.prfReadyAt...)
	renameMap := append(m.renameMap[:0], s.m.renameMap...)
	committedMap := append(m.committedMap[:0], s.m.committedMap...)
	freeList := append(m.freeList[:0], s.m.freeList...)
	rob := append(m.rob[:0], s.m.rob...)
	iq := append(m.iq[:0], s.m.iq...)
	lqs := append(m.lqs[:0], s.m.lqs...)
	sqs := append(m.sqs[:0], s.m.sqs...)
	fq := append(m.fq[:0], s.m.fq...)
	bimodal := append(m.bimodal[:0], s.m.bimodal...)
	btb := append(m.btb[:0], s.m.btb...)
	output := append(m.output[:0], s.m.output...)

	*m = s.m
	m.Mem = memSys
	m.Mem.Restore(&s.mem)

	m.prf = prf
	m.prfReadyAt = prfReadyAt
	m.renameMap = renameMap
	m.committedMap = committedMap
	m.freeList = freeList
	m.rob = rob
	m.iq = iq
	m.lqs = lqs
	m.sqs = sqs
	m.fq = fq
	m.bimodal = bimodal
	m.btb = btb
	m.output = output
}

// Cycle returns the machine cycle at which the snapshot was captured.
func (s *Snapshot) Cycle() uint64 { return s.m.cycle }

// Bytes returns the captured state size in bytes — the core's copied
// arrays plus the memory snapshot's accounting — for checkpoint telemetry.
func (s *Snapshot) Bytes() uint64 {
	core := uint64(len(s.m.prf))*8 + uint64(len(s.m.prfReadyAt))*8 +
		uint64(len(s.m.renameMap))*2 + uint64(len(s.m.committedMap))*2 +
		uint64(len(s.m.freeList))*2 +
		uint64(len(s.m.rob))*uint64(robEntrySize) +
		uint64(len(s.m.iq))*8 +
		uint64(len(s.m.lqs))*uint64(lqEntrySize) +
		uint64(len(s.m.sqs))*uint64(sqEntrySize) +
		uint64(len(s.m.fq))*uint64(fqEntrySize) +
		uint64(len(s.m.bimodal)) + uint64(len(s.m.btb))*8 +
		uint64(len(s.m.output))
	return core + s.mem.Bytes()
}
