// Package cpu models a detailed out-of-order microprocessor core in the
// style of gem5's O3 model: decoupled fetch with branch prediction,
// register renaming over a physical register file, an issue queue, a
// load/store queue with store-to-load forwarding, and a reorder buffer with
// in-order commit and precise exceptions.
//
// The microarchitectural storage the paper injects faults into — the
// physical register file, ROB, LQ and SQ — is exposed as bit-addressable
// state. Control-field corruption in ROB/LQ/SQ entries is detected by
// shadow integrity checks at use/commit time, modelling the internal
// assertion checks of a detailed simulator (the paper's observation that
// such faults manifest ~100% as pre-software crashes, Section III.B).
package cpu

import (
	"avgi/internal/isa"
	"avgi/internal/mem"
)

// Config describes one machine model.
type Config struct {
	Name    string
	Variant isa.Variant

	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	CommitWidth int

	ROBSize  int
	IQSize   int
	LQSize   int
	SQSize   int
	PhysRegs int

	FetchQueue int // decoupling buffer between fetch and rename

	BPBits     int // log2 of bimodal predictor entries
	BTBEntries int // direct-mapped BTB for indirect jumps

	LatALU uint64
	LatMul uint64
	LatDiv uint64

	Mem mem.HierarchyConfig

	// WatchdogCommitGap crashes the machine if no instruction commits
	// for this many cycles (hung pipeline, runaway wrong-path fetch).
	WatchdogCommitGap uint64
}

// ConfigA72 returns the 64-bit machine model, standing in for the paper's
// Arm Cortex-A72-like CPU (Armv8). Cache geometry is scaled with the
// workload footprints (see DESIGN.md §5) while keeping the paper's
// structure mix and relative sizes.
func ConfigA72() Config {
	return Config{
		Name:        "A72-like",
		Variant:     isa.V64,
		FetchWidth:  4,
		DecodeWidth: 4,
		IssueWidth:  4,
		CommitWidth: 4,
		ROBSize:     128,
		IQSize:      48,
		LQSize:      32,
		SQSize:      32,
		PhysRegs:    96,
		FetchQueue:  16,
		BPBits:      10,
		BTBEntries:  256,
		LatALU:      1,
		LatMul:      3,
		LatDiv:      12,
		Mem: mem.HierarchyConfig{
			RAMSize: 1 << 20,
			// Cache capacities are scaled with the workload
			// footprints (DESIGN.md §5) so the live fraction of
			// each array — and therefore the benign-fault ratio —
			// stays in the regime the paper reports.
			L1I:         mem.CacheConfig{Name: "L1I", Sets: 8, Ways: 2, LineBytes: 64, HitLat: 1, AddrBits: 20},
			L1D:         mem.CacheConfig{Name: "L1D", Sets: 32, Ways: 2, LineBytes: 64, HitLat: 2, AddrBits: 20},
			L2:          mem.CacheConfig{Name: "L2", Sets: 128, Ways: 8, LineBytes: 64, HitLat: 12, AddrBits: 20},
			ITLBEntries: 16,
			DTLBEntries: 16,
			WalkLat:     20,
			DRAMLat:     60,
		},
		WatchdogCommitGap: 20000,
	}
}

// ConfigA15 returns the 32-bit machine model, standing in for the paper's
// Arm Cortex-A15-like CPU (Armv7) used in the Section VI case study.
func ConfigA15() Config {
	return Config{
		Name:        "A15-like",
		Variant:     isa.V32,
		FetchWidth:  2,
		DecodeWidth: 2,
		IssueWidth:  2,
		CommitWidth: 2,
		ROBSize:     64,
		IQSize:      24,
		LQSize:      16,
		SQSize:      16,
		PhysRegs:    48,
		FetchQueue:  8,
		BPBits:      9,
		BTBEntries:  128,
		LatALU:      1,
		LatMul:      4,
		LatDiv:      16,
		Mem: mem.HierarchyConfig{
			RAMSize:     1 << 20,
			L1I:         mem.CacheConfig{Name: "L1I", Sets: 16, Ways: 1, LineBytes: 64, HitLat: 1, AddrBits: 20},
			L1D:         mem.CacheConfig{Name: "L1D", Sets: 16, Ways: 2, LineBytes: 64, HitLat: 2, AddrBits: 20},
			L2:          mem.CacheConfig{Name: "L2", Sets: 64, Ways: 8, LineBytes: 64, HitLat: 10, AddrBits: 20},
			ITLBEntries: 8,
			DTLBEntries: 8,
			WalkLat:     24,
			DRAMLat:     70,
		},
		WatchdogCommitGap: 20000,
	}
}
