package cpu

import (
	"testing"

	"avgi/internal/asm"
	"avgi/internal/trace"
)

func TestAccessors(t *testing.T) {
	m, res := run(t, ConfigA72(), func(b *asm.Builder) {
		b.Li(1, 7)
		b.Halt()
	})
	if m.Cycle() != res.Cycles || m.Cycle() == 0 {
		t.Errorf("Cycle() = %d, res %d", m.Cycle(), res.Cycles)
	}
	if m.Crash() != CrashNone {
		t.Errorf("Crash() = %v", m.Crash())
	}
	if len(m.Output()) != 0 {
		t.Errorf("no-output program drained %d bytes", len(m.Output()))
	}
}

func TestQueueFlipOnFreeSlotIsMasked(t *testing.T) {
	// A bit flip on a ROB/LQ/SQ slot that is not currently allocated is
	// overwritten by the next allocation — hardware masking. Flipping
	// every bit of the empty queues before the run must not perturb it.
	cfg := ConfigA72()
	b := asm.NewBuilder("t", cfg.Variant)
	b.Li(1, 123)
	b.Halt()
	p := b.MustAssemble()
	m := New(cfg, p)
	for _, name := range []string{"ROB", "LQ", "SQ"} {
		tg := m.Target(name)
		for i := uint64(0); i < tg.BitCount(); i += 7 {
			tg.FlipBit(i)
		}
	}
	res := m.Run(RunOptions{MaxCycles: 100000})
	if res.Status != StatusHalted {
		t.Fatalf("flips on free queue slots crashed the machine: %v/%v", res.Status, res.Crash)
	}
	if m.ArchReg(1) != 123 {
		t.Errorf("r1 = %d", m.ArchReg(1))
	}
}

func TestQueueFlipOnLiveEntryMachineChecks(t *testing.T) {
	// Position a long-running machine mid-flight, flip a live ROB entry,
	// and expect a machine-check crash (the PRE path).
	cfg := ConfigA72()
	b := asm.NewBuilder("t", cfg.Variant)
	b.Li(1, 0)
	b.Li(2, 20000)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	m := New(cfg, b.MustAssemble())
	m.Run(RunOptions{StopAtCycle: 500})
	if m.Status() != StatusRunning {
		t.Fatalf("machine not mid-flight: %v", m.Status())
	}
	// The ROB must have live entries in a tight loop; flip all slots to
	// guarantee hitting one.
	tg := m.Target("ROB")
	for i := uint64(0); i < tg.BitCount(); i += robEntryBits {
		tg.FlipBit(i)
	}
	res := m.Run(RunOptions{MaxCycles: 200000})
	if res.Status != StatusCrashed || res.Crash != CrashMachineCheck {
		t.Fatalf("expected machine check, got %v/%v", res.Status, res.Crash)
	}
}

type stopAfter struct{ n int }

func (s *stopAfter) OnCommit(trace.Record) bool {
	s.n--
	return s.n > 0
}

func TestSinkStopsRun(t *testing.T) {
	cfg := ConfigA72()
	b := asm.NewBuilder("t", cfg.Variant)
	for i := 0; i < 50; i++ {
		b.Addi(1, 1, 1)
	}
	b.Halt()
	m := New(cfg, b.MustAssemble())
	m.SetSink(&stopAfter{n: 10})
	res := m.Run(RunOptions{MaxCycles: 100000})
	if res.Status != StatusStopped {
		t.Fatalf("status %v", res.Status)
	}
	if res.Commits > 12 {
		t.Errorf("committed %d after stop at 10", res.Commits)
	}
}

func TestFetchFaultCrashes(t *testing.T) {
	// Jump beyond RAM: the fetch page-faults and the machine crashes
	// with a precise exception rather than hanging.
	cfg := ConfigA72()
	b := asm.NewBuilder("t", cfg.Variant)
	b.Li(1, 8<<20) // 8 MiB: inside the 16 MiB virtual space, beyond RAM
	b.Jalr(0, 1, 0)
	b.Halt()
	m := New(cfg, b.MustAssemble())
	res := m.Run(RunOptions{MaxCycles: 100000})
	if res.Status != StatusCrashed || res.Crash != CrashPageFault {
		t.Fatalf("%v/%v", res.Status, res.Crash)
	}
}

func TestWatchdogFiresOnCommitStall(t *testing.T) {
	// Craft a machine with a tiny watchdog and a fault that wedges the
	// pipeline: flip a live SQ entry so the head store machine-checks...
	// instead verify the watchdog path directly by stalling commit with
	// an artificial sink is not possible, so use a load that forwards
	// from an unresolvable... simplest: the watchdog is exercised by
	// fault campaigns; here just check the configuration plumbing.
	cfg := ConfigA72()
	cfg.WatchdogCommitGap = 50
	b := asm.NewBuilder("t", cfg.Variant)
	b.Li(1, 0x8000)
	b.Lw(2, 1, 0) // cold miss chain longer than 50 cycles
	b.Halt()
	m := New(cfg, b.MustAssemble())
	res := m.Run(RunOptions{MaxCycles: 100000})
	// Either the run completes (commit gap under 50) or the watchdog
	// fires; both are legal, but the machine must terminate.
	if res.Status == StatusRunning || res.Status == StatusCycleLimit {
		t.Fatalf("machine did not terminate: %v", res.Status)
	}
}

func TestROBFullBackpressure(t *testing.T) {
	// A long dependency chain through the divider keeps the ROB busy;
	// the frontend must stall rather than overflow.
	cfg := ConfigA72()
	cfg.ROBSize = 8
	cfg.IQSize = 4
	m, res := run(t, cfg, func(b *asm.Builder) {
		b.Li(1, 1000000)
		b.Li(2, 3)
		for i := 0; i < 40; i++ {
			b.Div(1, 1, 2)
		}
		b.Halt()
	})
	if res.Status != StatusHalted {
		t.Fatalf("%v/%v", res.Status, res.Crash)
	}
	if m.robCount != 0 {
		t.Error("ROB not drained at halt")
	}
}

func TestLQSQFullBackpressure(t *testing.T) {
	cfg := ConfigA72()
	cfg.LQSize = 2
	cfg.SQSize = 2
	_, res := run(t, cfg, func(b *asm.Builder) {
		b.Li(1, 0x8000)
		for i := int32(0); i < 30; i++ {
			b.StoreW(1, 1, i%16*8)
			b.LoadW(2, 1, i%16*8)
		}
		b.Halt()
	})
	if res.Status != StatusHalted {
		t.Fatalf("%v/%v", res.Status, res.Crash)
	}
}

func TestPartialStoreForwardStall(t *testing.T) {
	// A word load overlapping a byte store must wait for the store to
	// drain and then read the merged bytes from the cache.
	for _, cfg := range configs() {
		m, res := run(t, cfg, func(b *asm.Builder) {
			b.Li(1, 0x8000)
			b.Li(2, 0)
			b.StoreW(2, 1, 0) // zero the word
			b.Li(3, 0xAB)
			b.Sb(3, 1, 1) // partial overlap
			b.Lw(4, 1, 0) // must see 0x0000AB00
			b.Halt()
		})
		if res.Status != StatusHalted {
			t.Fatalf("%s: %v/%v", cfg.Name, res.Status, res.Crash)
		}
		if m.ArchReg(4) != 0xAB00 {
			t.Errorf("%s: r4 = %#x, want 0xab00", cfg.Name, m.ArchReg(4))
		}
	}
}

func TestPRFTargetBitCountScalesWithWidth(t *testing.T) {
	b64 := asm.NewBuilder("t", ConfigA72().Variant)
	b64.Halt()
	m64 := New(ConfigA72(), b64.MustAssemble())
	b32 := asm.NewBuilder("t", ConfigA15().Variant)
	b32.Halt()
	m32 := New(ConfigA15(), b32.MustAssemble())
	if m64.Target("RF").BitCount() != 96*64 {
		t.Errorf("A72 RF bits = %d", m64.Target("RF").BitCount())
	}
	if m32.Target("RF").BitCount() != 48*32 {
		t.Errorf("A15 RF bits = %d", m32.Target("RF").BitCount())
	}
	if m64.Target("SQ").BitCount() != 32*(32+64) {
		t.Errorf("A72 SQ bits = %d", m64.Target("SQ").BitCount())
	}
}
