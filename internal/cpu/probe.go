package cpu

import (
	"strings"

	"avgi/internal/mem"
)

// Fault-forensics probe for the core-side structures, and the machine-wide
// front door for arming one on any of the twelve fault targets. A probe is
// pure observation: it watches the array entries covered by one injected
// fault and records every event that consumes or erases the corrupted
// state, so the forensics layer (internal/forensics) can attribute the
// fault's fate. With m.probe nil every pipeline stage runs the exact
// pre-forensics code — the hooks are single nil checks.
//
// Lifecycle: the campaign arms the probe immediately after FlipBit and
// clears it before the faulty machine is rewound, so snapshots and
// restores never observe one; Clone and Snapshot drop it defensively.

// probeKind selects which core array a FaultProbe watches.
type probeKind uint8

const (
	probeMem probeKind = iota // cache or TLB; events arrive via mem.ProbeSink
	probeReg
	probeROB
	probeLQ
	probeSQ
)

// ProbeFacts is the raw observation record a probe accumulates over one
// faulty run. The forensics layer turns it into a cause attribution.
type ProbeFacts struct {
	// InjectCycle is the machine cycle at which the fault was injected.
	InjectCycle uint64
	// Sites is the number of watched array entries (a multi-bit fault can
	// straddle entry boundaries).
	Sites int
	// LiveSites is how many of them held reachable state at injection —
	// zero means the flip landed entirely on free/invalid entries.
	LiveSites int
	// Killed is how many live sites were later erased (overwritten,
	// squashed or evicted) before the run ended.
	Killed int

	// Reads counts consumptions of live corrupted state: operand or
	// commit-time register reads, cache tag compares, data-byte reads,
	// TLB hits, and dirty writebacks (corruption propagating downstream).
	Reads     uint64
	FirstRead uint64 // cycle of the first consumption (0 = none)

	// Per-mechanism erasure tallies, and the first/last erasure cycles.
	Overwrites  uint64
	Squashes    uint64
	EvictsClean uint64
	Writebacks  uint64
	FirstKill   uint64
	LastKill    uint64
}

// FaultProbe watches the array entries covered by one injected fault.
type FaultProbe struct {
	m    *Machine
	kind probeKind

	// Watched index range and per-site death flags for the core arrays
	// (registers or queue slots). A site dies on its first erasure;
	// events from dead sites are dropped so each site attributes once.
	lo, hi int
	dead   []bool

	facts ProbeFacts

	// Memory-side probes (cache/TLB structures) feed events back through
	// the ProbeEvent method; the pointers let ClearProbe detach them.
	cache *mem.Cache
	tlb   *mem.TLB

	// stopOnConverge arms the early-exit termination oracle: the machine
	// stops (StatusStopped) at the end of the first cycle whose facts
	// prove convergence (see Converged). Only set for eligible structures.
	stopOnConverge bool
	// eligible marks structures whose probe coverage is complete enough
	// for the oracle to be sound. TLBs are excluded: a corrupted entry
	// perturbs translation by *missing* (golden hit turns into a walk
	// plus refill) without any probe event firing, so erased-and-unread
	// facts cannot prove the timing stayed golden.
	eligible bool
}

// Facts returns the accumulated observations.
func (p *FaultProbe) Facts() ProbeFacts { return p.facts }

// EnableConvergenceStop arms the early-exit termination oracle on this
// probe: the machine stops with StatusStopped at the end of the first
// cycle whose accumulated facts prove the faulty machine's state is
// bit-identical to the golden run's — every site that latched the flip has
// been erased by golden-valued writes (register writebacks, queue
// reallocations, line refills all carry the values the golden run wrote)
// and nothing consumed the corrupted state first. From that point no
// deviation is possible, so the run's classification equals the
// full-window one. No-op for structures whose probe coverage cannot prove
// convergence (TLBs).
func (p *FaultProbe) EnableConvergenceStop() {
	if p.eligible {
		p.stopOnConverge = true
	}
}

// Converged reports whether the probe facts prove the fault can no longer
// affect the run: no live corrupted site was ever consumed and every site
// that latched the flip has been erased. LiveSites == 0 (the flip landed
// entirely on free/invalid entries) converges trivially at arm time.
func (p *FaultProbe) Converged() bool {
	return p.facts.Reads == 0 && p.facts.Killed >= p.facts.LiveSites
}

// ArmProbe installs a fate probe for a fault of the given width injected
// at bit of structure (the same index spaces as Target.FlipBit — arm after
// flipping). It returns nil for unknown structure names.
func (m *Machine) ArmProbe(structure string, bit uint64, width int) *FaultProbe {
	p := &FaultProbe{m: m, facts: ProbeFacts{InjectCycle: m.cycle}}
	span := func(per uint64, limit int) {
		p.lo = int(bit / per)
		p.hi = int((bit + uint64(width) - 1) / per)
		if p.hi >= limit {
			p.hi = limit - 1
		}
		p.dead = make([]bool, p.hi-p.lo+1)
		p.facts.Sites = p.hi - p.lo + 1
	}
	// Queue slots that were free at injection never latched the flip
	// (FlipBit counted them FlipsMasked); they are born dead so later
	// allocations and squashes of the slot don't misattribute.
	queueLive := func(used func(i int) bool) {
		for i := p.lo; i <= p.hi; i++ {
			if used(i) {
				p.facts.LiveSites++
			} else {
				p.dead[i-p.lo] = true
			}
		}
	}
	switch structure {
	case "RF":
		p.kind = probeReg
		span(uint64(m.Cfg.Variant.Width()), len(m.prf))
		p.facts.LiveSites = p.facts.Sites // every register holds a value
	case "ROB":
		p.kind = probeROB
		span(robEntryBits, len(m.rob))
		queueLive(func(i int) bool { return m.rob[i].used })
	case "LQ":
		p.kind = probeLQ
		span(lqEntryBits, len(m.lqs))
		queueLive(func(i int) bool { return m.lqs[i].used })
	case "SQ":
		p.kind = probeSQ
		span(m.sqEntryBits(), len(m.sqs))
		queueLive(func(i int) bool { return m.sqs[i].used })
	case "ITLB":
		p.tlb = m.Mem.ITLB
	case "DTLB":
		p.tlb = m.Mem.DTLB
	case "L1I (Tag)", "L1I (Data)":
		p.cache = m.Mem.L1I
	case "L1D (Tag)", "L1D (Data)":
		p.cache = m.Mem.L1D
	case "L2 (Tag)", "L2 (Data)":
		p.cache = m.Mem.L2
	default:
		return nil
	}
	switch {
	case p.tlb != nil:
		tp := p.tlb.ArmProbe(bit, width, p)
		p.facts.Sites = tp.Sites()
		p.facts.LiveSites = tp.LiveSites()
	case p.cache != nil:
		var lp *mem.LineProbe
		if strings.HasSuffix(structure, "(Tag)") {
			lp = p.cache.ArmTagProbe(bit, width, p)
		} else {
			lp = p.cache.ArmDataProbe(bit, width, p)
		}
		p.facts.Sites = lp.Sites()
		p.facts.LiveSites = lp.LiveSites()
	}
	// Register and queue probes hook every consumption and erasure, and
	// cache probes fire a tag-compare read for any access resolving in a
	// watched live site's set — so a live site can never be refilled (the
	// only kill path) without a prior read blocking convergence. TLB probes
	// cannot make that promise (see the eligible field).
	p.eligible = p.tlb == nil
	m.probe = p
	return p
}

// ClearProbe detaches the machine's fate probe, including any memory-side
// probe it installed. Must be called before the faulty machine is rewound
// or recycled.
func (m *Machine) ClearProbe() {
	if p := m.probe; p != nil {
		if p.cache != nil {
			p.cache.ClearProbe()
		}
		if p.tlb != nil {
			p.tlb.ClearProbe()
		}
	}
	m.probe = nil
}

func (p *FaultProbe) noteRead(c uint64) {
	p.facts.Reads++
	if p.facts.FirstRead == 0 {
		p.facts.FirstRead = c
	}
}

func (p *FaultProbe) kill(c uint64) {
	p.facts.Killed++
	if p.facts.FirstKill == 0 {
		p.facts.FirstKill = c
	}
	if c > p.facts.LastKill {
		p.facts.LastKill = c
	}
}

// ProbeEvent implements mem.ProbeSink, stamping memory-side events with
// the current machine cycle. Per-site death is tracked inside the memory
// probes, so every event here is from a live site.
func (p *FaultProbe) ProbeEvent(ev mem.ProbeEvent) {
	c := p.m.cycle
	switch ev {
	case mem.ProbeRead:
		p.noteRead(c)
	case mem.ProbeWriteback:
		// The dirty line carried the corruption downstream — consumed.
		p.facts.Writebacks++
		p.noteRead(c)
	case mem.ProbeOverwrite:
		p.facts.Overwrites++
		p.kill(c)
	case mem.ProbeEvictClean:
		// The matching ProbeOverwrite from the refill does the kill.
		p.facts.EvictsClean++
	}
}

// regRead records a consumption of a watched live physical register
// (operand read at execute, or the commit-time destination read).
func (p *FaultProbe) regRead(phys uint16) {
	if p.kind != probeReg {
		return
	}
	i := int(phys)
	if i < p.lo || i > p.hi || p.dead[i-p.lo] {
		return
	}
	p.noteRead(p.m.cycle)
}

// onOperandRead records the register operand reads of one executing
// instruction. The kind test stays inlinable so non-register probes pay a
// single compare on this hottest hook; the source scan is out of line.
func (p *FaultProbe) onOperandRead(e *robEntry) {
	if p.kind == probeReg {
		p.operandReads(e)
	}
}

func (p *FaultProbe) operandReads(e *robEntry) {
	if e.src[0].isReg {
		p.regRead(e.src[0].phys)
	}
	if e.src[1].isReg {
		p.regRead(e.src[1].phys)
	}
}

// regWrite records a writeback erasing a watched live register.
func (p *FaultProbe) regWrite(phys uint16) {
	if p.kind != probeReg {
		return
	}
	i := int(phys)
	if i < p.lo || i > p.hi || p.dead[i-p.lo] {
		return
	}
	p.dead[i-p.lo] = true
	p.facts.Overwrites++
	p.kill(p.m.cycle)
}

// queueAlloc records a fresh allocation erasing a watched live slot of the
// given queue.
func (p *FaultProbe) queueAlloc(kind probeKind, idx int) {
	if p.kind != kind || idx < p.lo || idx > p.hi || p.dead[idx-p.lo] {
		return
	}
	p.dead[idx-p.lo] = true
	p.facts.Overwrites++
	p.kill(p.m.cycle)
}

// queueSquash records a misprediction squash discarding a watched live
// slot of the given queue.
func (p *FaultProbe) queueSquash(kind probeKind, idx int) {
	if p.kind != kind || idx < p.lo || idx > p.hi || p.dead[idx-p.lo] {
		return
	}
	p.dead[idx-p.lo] = true
	p.facts.Squashes++
	p.kill(p.m.cycle)
}
