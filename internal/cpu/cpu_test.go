package cpu

import (
	"bytes"
	"testing"

	"avgi/internal/asm"
	"avgi/internal/isa"
	"avgi/internal/trace"
)

// run assembles with b, runs to completion on cfg and returns the machine
// and result.
func run(t *testing.T, cfg Config, build func(b *asm.Builder)) (*Machine, Result) {
	t.Helper()
	b := asm.NewBuilder("test", cfg.Variant)
	build(b)
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg, p)
	res := m.Run(RunOptions{MaxCycles: 2_000_000})
	return m, res
}

func configs() []Config { return []Config{ConfigA72(), ConfigA15()} }

func TestHaltImmediately(t *testing.T) {
	for _, cfg := range configs() {
		m, res := run(t, cfg, func(b *asm.Builder) { b.Halt() })
		if res.Status != StatusHalted {
			t.Fatalf("%s: status %v (crash %v)", cfg.Name, res.Status, res.Crash)
		}
		if m.Stats.Commits != 1 {
			t.Errorf("%s: commits = %d", cfg.Name, m.Stats.Commits)
		}
	}
}

func TestArithmetic(t *testing.T) {
	for _, cfg := range configs() {
		m, res := run(t, cfg, func(b *asm.Builder) {
			b.Li(1, 20)
			b.Li(2, 22)
			b.Add(3, 1, 2)     // 42
			b.Mul(4, 3, 3)     // 1764
			b.Div(5, 4, 3)     // 42
			b.Rem(6, 4, 5)     // 0
			b.Sub(7, 3, 1)     // 22
			b.Xori(8, 3, 0xFF) // 42^255 = 213
			b.Halt()
		})
		if res.Status != StatusHalted {
			t.Fatalf("%s: %v/%v", cfg.Name, res.Status, res.Crash)
		}
		want := map[uint8]uint64{3: 42, 4: 1764, 5: 42, 6: 0, 7: 22, 8: 213}
		for r, w := range want {
			if got := m.ArchReg(r); got != w {
				t.Errorf("%s: r%d = %d, want %d", cfg.Name, r, got, w)
			}
		}
	}
}

func TestZeroRegister(t *testing.T) {
	for _, cfg := range configs() {
		m, res := run(t, cfg, func(b *asm.Builder) {
			b.Li(1, 99)
			b.Addi(0, 1, 1) // writes to r0 are discarded
			b.Add(2, 0, 0)  // r2 = 0
			b.Halt()
		})
		if res.Status != StatusHalted {
			t.Fatalf("%s: %v", cfg.Name, res.Status)
		}
		if m.ArchReg(0) != 0 || m.ArchReg(2) != 0 {
			t.Errorf("%s: r0=%d r2=%d", cfg.Name, m.ArchReg(0), m.ArchReg(2))
		}
	}
}

func TestLoopSum(t *testing.T) {
	for _, cfg := range configs() {
		// sum 1..100 = 5050 with a backward branch.
		m, res := run(t, cfg, func(b *asm.Builder) {
			b.Li(1, 0)   // sum
			b.Li(2, 1)   // i
			b.Li(3, 100) // n
			b.Label("loop")
			b.Add(1, 1, 2)
			b.Addi(2, 2, 1)
			b.Bge(3, 2, "loop")
			b.Halt()
		})
		if res.Status != StatusHalted {
			t.Fatalf("%s: %v/%v", cfg.Name, res.Status, res.Crash)
		}
		if got := m.ArchReg(1); got != 5050 {
			t.Errorf("%s: sum = %d", cfg.Name, got)
		}
		if m.Stats.Mispredicts == 0 {
			t.Errorf("%s: expected at least one mispredict", cfg.Name)
		}
	}
}

func TestMemoryLoadsStores(t *testing.T) {
	for _, cfg := range configs() {
		m, res := run(t, cfg, func(b *asm.Builder) {
			arr := b.DataWords("arr", []uint64{10, 20, 30, 40})
			b.Li(1, arr)
			sh := b.WordShift()
			b.LoadW(2, 1, 0)
			b.LoadW(3, 1, 1<<sh)
			b.Add(4, 2, 3) // 30
			b.StoreW(4, 1, 3<<sh)
			b.LoadW(5, 1, 3<<sh) // forwarded or from cache: 30
			b.Sb(5, 1, 0)        // low byte 30 over value 10
			b.Lbu(6, 1, 0)       // 30
			b.Halt()
		})
		if res.Status != StatusHalted {
			t.Fatalf("%s: %v/%v", cfg.Name, res.Status, res.Crash)
		}
		if m.ArchReg(4) != 30 || m.ArchReg(5) != 30 || m.ArchReg(6) != 30 {
			t.Errorf("%s: r4=%d r5=%d r6=%d", cfg.Name, m.ArchReg(4), m.ArchReg(5), m.ArchReg(6))
		}
	}
}

func TestSignExtendingLoads(t *testing.T) {
	for _, cfg := range configs() {
		mask := cfg.Variant.Mask()
		m, res := run(t, cfg, func(b *asm.Builder) {
			b.DataBytes("x", []byte{0xFF, 0xFF, 0x80, 0x00, 0xFE, 0xFF, 0xFF, 0xFF})
			addr := b.DataAddr("x")
			b.Li(1, addr)
			b.Lb(2, 1, 0)  // -1
			b.Lbu(3, 1, 0) // 255
			b.Lh(4, 1, 0)  // -1
			b.Lhu(5, 1, 2) // 0x0080
			b.Lw(6, 1, 4)  // -2
			b.Halt()
		})
		if res.Status != StatusHalted {
			t.Fatalf("%s: %v", cfg.Name, res.Status)
		}
		if m.ArchReg(2) != mask {
			t.Errorf("%s: lb = %#x", cfg.Name, m.ArchReg(2))
		}
		if m.ArchReg(3) != 255 {
			t.Errorf("%s: lbu = %d", cfg.Name, m.ArchReg(3))
		}
		if m.ArchReg(4) != mask {
			t.Errorf("%s: lh = %#x", cfg.Name, m.ArchReg(4))
		}
		if m.ArchReg(5) != 0x80 {
			t.Errorf("%s: lhu = %#x", cfg.Name, m.ArchReg(5))
		}
		if m.ArchReg(6) != mask-1 {
			t.Errorf("%s: lw = %#x", cfg.Name, m.ArchReg(6))
		}
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	for _, cfg := range configs() {
		m, res := run(t, cfg, func(b *asm.Builder) {
			b.Li(1, 0x8000)
			b.Li(2, 0x1234)
			b.StoreW(2, 1, 0)
			b.LoadW(3, 1, 0) // should forward 0x1234
			b.Halt()
		})
		if res.Status != StatusHalted {
			t.Fatalf("%s: %v", cfg.Name, res.Status)
		}
		if m.ArchReg(3) != 0x1234 {
			t.Errorf("%s: forwarded %#x", cfg.Name, m.ArchReg(3))
		}
	}
}

func TestCallReturn(t *testing.T) {
	for _, cfg := range configs() {
		m, res := run(t, cfg, func(b *asm.Builder) {
			b.Li(1, 5)
			b.Call("double")
			b.Call("double")
			b.Halt()
			b.Label("double")
			b.Add(1, 1, 1)
			b.Ret()
		})
		if res.Status != StatusHalted {
			t.Fatalf("%s: %v/%v", cfg.Name, res.Status, res.Crash)
		}
		if m.ArchReg(1) != 20 {
			t.Errorf("%s: r1 = %d", cfg.Name, m.ArchReg(1))
		}
	}
}

func TestOutputDrain(t *testing.T) {
	for _, cfg := range configs() {
		_, res := run(t, cfg, func(b *asm.Builder) {
			b.Li(1, asm.DefaultOutBase)
			b.Li(2, 'h')
			b.Sb(2, 1, 0)
			b.Li(2, 'i')
			b.Sb(2, 1, 1)
			b.Li(3, asm.DefaultOutLenAddr)
			b.Li(4, 2)
			b.StoreW(4, 3, 0)
			b.Halt()
		})
		if res.Status != StatusHalted {
			t.Fatalf("%s: %v/%v", cfg.Name, res.Status, res.Crash)
		}
		if !bytes.Equal(res.Output, []byte("hi")) {
			t.Errorf("%s: output %q", cfg.Name, res.Output)
		}
	}
}

func TestIllegalInstructionCrash(t *testing.T) {
	cfg := ConfigA72()
	b := asm.NewBuilder("ill", cfg.Variant)
	b.Nop()
	p := b.MustAssemble()
	p.Text = append(p.Text, 0xEE<<24) // undefined opcode
	m := New(cfg, p)
	var cap trace.Capture
	m.SetSink(&cap)
	res := m.Run(RunOptions{MaxCycles: 100000})
	if res.Status != StatusCrashed || res.Crash != CrashIllegal {
		t.Fatalf("status %v crash %v", res.Status, res.Crash)
	}
	// The corrupted encoding must appear in the commit trace.
	last := cap.Records[len(cap.Records)-1]
	if last.Word != 0xEE<<24 {
		t.Errorf("trace missing illegal word: %#x", last.Word)
	}
}

func TestPageFaultCrash(t *testing.T) {
	for _, cfg := range configs() {
		_, res := run(t, cfg, func(b *asm.Builder) {
			b.Li(1, 2<<20) // beyond 1 MiB RAM
			b.Lw(2, 1, 0)
			b.Halt()
		})
		if res.Status != StatusCrashed || res.Crash != CrashPageFault {
			t.Fatalf("%s: %v/%v", cfg.Name, res.Status, res.Crash)
		}
	}
}

func TestAlignFaultCrash(t *testing.T) {
	_, res := run(t, ConfigA72(), func(b *asm.Builder) {
		b.Li(1, 0x8001)
		b.Lw(2, 1, 0)
		b.Halt()
	})
	if res.Status != StatusCrashed || res.Crash != CrashAlignFault {
		t.Fatalf("%v/%v", res.Status, res.Crash)
	}
}

func TestWrongPathFaultIsSquashed(t *testing.T) {
	// A load behind a taken branch that would page-fault must never
	// crash the machine: it is squashed before commit.
	for _, cfg := range configs() {
		m, res := run(t, cfg, func(b *asm.Builder) {
			b.Li(1, 2<<20) // bogus address
			b.Li(2, 1)
			b.Label("top")
			b.Beq(2, 2, "skip") // always taken; predictor starts not-taken
			b.Lw(3, 1, 0)       // wrong-path page fault
			b.Label("skip")
			b.Halt()
		})
		if res.Status != StatusHalted {
			t.Fatalf("%s: wrong-path fault escaped: %v/%v", cfg.Name, res.Status, res.Crash)
		}
		if m.Stats.Squashed == 0 {
			t.Errorf("%s: expected squashed instructions", cfg.Name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	build := func(b *asm.Builder) {
		b.DataWords("arr", []uint64{7, 3, 9, 1, 8, 2, 6, 4})
		arr := b.DataAddr("arr")
		b.Li(1, arr)
		b.Li(2, 0) // sum
		b.Li(3, 0) // i
		b.Li(4, 8)
		sh := b.WordShift()
		b.Label("loop")
		b.Sll(5, 3, 0)
		b.Slli(5, 3, sh)
		b.Add(5, 5, 1)
		b.LoadW(6, 5, 0)
		b.Add(2, 2, 6)
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		b.Halt()
	}
	for _, cfg := range configs() {
		var cycles []uint64
		var commits []uint64
		for i := 0; i < 3; i++ {
			m, res := run(t, cfg, build)
			if res.Status != StatusHalted {
				t.Fatalf("%s: %v", cfg.Name, res.Status)
			}
			cycles = append(cycles, res.Cycles)
			commits = append(commits, m.Stats.Commits)
			if m.ArchReg(2) != 40 {
				t.Fatalf("%s: sum = %d", cfg.Name, m.ArchReg(2))
			}
		}
		if cycles[0] != cycles[1] || cycles[1] != cycles[2] {
			t.Errorf("%s: nondeterministic cycles %v", cfg.Name, cycles)
		}
		if commits[0] != commits[1] || commits[1] != commits[2] {
			t.Errorf("%s: nondeterministic commits %v", cfg.Name, commits)
		}
	}
}

func TestTraceCaptureAndCompare(t *testing.T) {
	cfg := ConfigA72()
	build := func(b *asm.Builder) {
		b.Li(1, 3)
		b.Li(2, 4)
		b.Add(3, 1, 2)
		b.Halt()
	}
	b := asm.NewBuilder("t", cfg.Variant)
	build(b)
	p := b.MustAssemble()

	m1 := New(cfg, p)
	var cap trace.Capture
	m1.SetSink(&cap)
	if res := m1.Run(RunOptions{}); res.Status != StatusHalted {
		t.Fatal(res.Status)
	}
	if len(cap.Records) == 0 {
		t.Fatal("no trace records")
	}

	m2 := New(cfg, p)
	cmp := &trace.Comparator{Golden: cap.Records}
	m2.SetSink(cmp)
	if res := m2.Run(RunOptions{}); res.Status != StatusHalted {
		t.Fatal(res.Status)
	}
	if cmp.Dev.Kind != trace.DevNone {
		t.Fatalf("identical run deviated: %+v", cmp.Dev)
	}
}

func TestCloneMidRunConverges(t *testing.T) {
	cfg := ConfigA72()
	b := asm.NewBuilder("t", cfg.Variant)
	b.Li(1, 0)
	b.Li(2, 1)
	b.Li(3, 2000)
	b.Label("loop")
	b.Add(1, 1, 2)
	b.Addi(2, 2, 1)
	b.Bge(3, 2, "loop")
	b.Li(4, asm.DefaultOutLenAddr)
	b.StoreW(1, 4, 0) // abuse: no output, just exercise stores
	b.Li(5, 0)
	b.StoreW(5, 4, 0)
	b.Halt()
	p := b.MustAssemble()

	ref := New(cfg, p)
	refRes := ref.Run(RunOptions{})
	if refRes.Status != StatusHalted {
		t.Fatal(refRes.Status)
	}

	m := New(cfg, p)
	m.Run(RunOptions{StopAtCycle: refRes.Cycles / 2})
	if m.Status() != StatusRunning {
		t.Fatalf("paused machine status %v", m.Status())
	}
	c := m.Clone()
	cRes := c.Run(RunOptions{})
	if cRes.Status != StatusHalted || cRes.Cycles != refRes.Cycles {
		t.Errorf("clone: %v in %d cycles, want halt in %d", cRes.Status, cRes.Cycles, refRes.Cycles)
	}
	if c.ArchReg(1) != ref.ArchReg(1) {
		t.Errorf("clone r1 = %d, ref %d", c.ArchReg(1), ref.ArchReg(1))
	}
	// The paused original continues independently to the same end.
	mRes := m.Run(RunOptions{})
	if mRes.Status != StatusHalted || mRes.Cycles != refRes.Cycles {
		t.Errorf("original after clone: %v in %d", mRes.Status, mRes.Cycles)
	}
}

func TestWatchdogOnInfiniteLoop(t *testing.T) {
	cfg := ConfigA72()
	cfg.WatchdogCommitGap = 2000
	_, res := run(t, cfg, func(b *asm.Builder) {
		b.Label("spin")
		b.Jump("spin")
	})
	// An infinite loop commits forever, so the watchdog does not fire —
	// the cycle budget does.
	if res.Status != StatusCycleLimit {
		t.Fatalf("spin loop: %v/%v", res.Status, res.Crash)
	}
}

func TestTargetsComplete(t *testing.T) {
	for _, cfg := range configs() {
		b := asm.NewBuilder("t", cfg.Variant)
		b.Halt()
		m := New(cfg, b.MustAssemble())
		targets := m.Targets()
		if len(targets) != 12 {
			t.Fatalf("%s: %d targets", cfg.Name, len(targets))
		}
		for _, name := range StructureNames {
			tg, ok := targets[name]
			if !ok {
				t.Errorf("%s: missing target %q", cfg.Name, name)
				continue
			}
			if tg.Name() != name {
				t.Errorf("%s: target %q reports name %q", cfg.Name, name, tg.Name())
			}
			if tg.BitCount() == 0 {
				t.Errorf("%s: target %q has zero bits", cfg.Name, name)
			}
			// Flipping any bit must not panic.
			tg.FlipBit(0)
			tg.FlipBit(tg.BitCount() - 1)
		}
		if m.Target("nope") != nil {
			t.Error("unknown target should be nil")
		}
	}
}

func TestPRFFlipChangesValue(t *testing.T) {
	cfg := ConfigA72()
	b := asm.NewBuilder("t", cfg.Variant)
	b.Li(1, 0)
	b.Halt()
	m := New(cfg, b.MustAssemble())
	w := uint64(cfg.Variant.Width())
	before := m.prf[3]
	m.Target("RF").FlipBit(3*w + 5)
	if m.prf[3] != before^(1<<5) {
		t.Error("PRF flip did not change the value bit")
	}
}

func TestStatusAndCrashStrings(t *testing.T) {
	for _, s := range []Status{StatusRunning, StatusHalted, StatusCrashed, StatusStopped, StatusCycleLimit, Status(99)} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
	for _, k := range []CrashKind{CrashNone, CrashMachineCheck, CrashIllegal, CrashPageFault, CrashAlignFault, CrashWatchdog, CrashKind(99)} {
		if k.String() == "" {
			t.Error("empty crash string")
		}
	}
}

func TestVariantMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b := asm.NewBuilder("t", isa.V32)
	b.Halt()
	New(ConfigA72(), b.MustAssemble())
}

func TestIPCIsReasonable(t *testing.T) {
	// The OoO core should sustain an IPC well above a strict in-order
	// single-issue machine on independent arithmetic.
	cfg := ConfigA72()
	m, res := run(t, cfg, func(b *asm.Builder) {
		b.Li(1, 1)
		b.Li(2, 2)
		b.Li(3, 3)
		b.Li(4, 4)
		for i := 0; i < 200; i++ {
			b.Add(5, 1, 2)
			b.Add(6, 2, 3)
			b.Add(7, 3, 4)
			b.Add(8, 1, 4)
		}
		b.Halt()
	})
	if res.Status != StatusHalted {
		t.Fatal(res.Status)
	}
	ipc := float64(m.Stats.Commits) / float64(res.Cycles)
	if ipc < 1.2 {
		t.Errorf("IPC = %.2f, expected OoO core above 1.2", ipc)
	}
}
