package cpu

import (
	"avgi/internal/isa"
	"avgi/internal/mem"
	"avgi/internal/trace"
)

// commitStage retires up to CommitWidth completed instructions in program
// order, draining stores to memory, freeing rename resources, emitting
// commit-trace records and raising precise exceptions.
func (m *Machine) commitStage() {
	for n := 0; n < m.Cfg.CommitWidth; n++ {
		if m.robCount == 0 {
			return
		}
		e := m.robAt(m.robHead)
		if !e.done || e.readyAt > m.cycle {
			return
		}

		// Shadow integrity check: corrupted ROB/LQ/SQ control state
		// reaching commit is caught by the machine's internal
		// consistency assertions — the paper's pre-software crash
		// (PRE) path for deep-pipeline structures.
		if e.injected ||
			(e.lq >= 0 && m.lqs[e.lq].injected) ||
			(e.sq >= 0 && m.sqs[e.sq].injected) {
			m.crashNow(CrashMachineCheck)
			return
		}

		if e.exc != excNone {
			if e.exc == excIllegal {
				// The corrupted encoding became architecturally
				// visible: log it in the commit trace (so the
				// IMM classifier can see IRP/UNO deviations),
				// then take the undefined-instruction trap.
				m.emit(trace.Record{Cycle: m.cycle, PC: e.pc, Word: e.word})
				m.crashNow(CrashIllegal)
				return
			}
			if e.exc == excPage {
				m.crashNow(CrashPageFault)
			} else {
				m.crashNow(CrashAlignFault)
			}
			return
		}

		rec := trace.Record{Cycle: m.cycle, PC: e.pc, Word: e.word}

		switch e.class {
		case isa.ClassHalt:
			m.emit(rec)
			if m.status == StatusRunning {
				m.retire(e)
				m.halt()
			}
			return
		case isa.ClassStore:
			// Drain the store to memory at commit. The write
			// retranslates; a DTLB entry corrupted since execute
			// redirects the write exactly as hardware would.
			s := &m.sqs[e.sq]
			if _, fault := m.Mem.Store(s.addr, s.size, s.data); fault != mem.FaultNone {
				if fault == mem.FaultAlign {
					m.crashNow(CrashAlignFault)
				} else {
					m.crashNow(CrashPageFault)
				}
				return
			}
			rec.IsStore = true
			rec.Addr = s.addr
			rec.Value = s.data
		default:
			if e.hasDest {
				rec.HasDest = true
				rec.Dest = e.destArch
				// Read the physical register at commit time so
				// value corruption between writeback and commit
				// is architecturally visible (DCR).
				if m.probe != nil {
					m.probe.regRead(e.destPhys)
				}
				rec.Value = m.prf[e.destPhys] & m.Cfg.Variant.Mask()
			}
		}

		m.retire(e)
		m.emit(rec)
		if m.status != StatusRunning {
			return
		}
	}
}

// retire frees the head entry's resources and advances the ROB head.
func (m *Machine) retire(e *robEntry) {
	if e.hasDest {
		m.committedMap[e.destArch] = e.destPhys
		m.freePush(e.oldPhys)
	}
	if e.lq >= 0 {
		m.lqs[e.lq].used = false
		m.lqHead = (m.lqHead + 1) % len(m.lqs)
		m.lqCnt--
	}
	if e.sq >= 0 {
		m.sqs[e.sq].used = false
		m.sqHead = (m.sqHead + 1) % len(m.sqs)
		m.sqCnt--
	}
	e.used = false
	m.robHead = m.robNext(m.robHead)
	m.robCount--
	m.Stats.Commits++
	m.lastCommitCycle = m.cycle
}

// emit delivers a record to the trace sink; a false return stops the run.
func (m *Machine) emit(rec trace.Record) {
	if m.sink == nil {
		return
	}
	if !m.sink.OnCommit(rec) {
		if m.status == StatusRunning {
			m.status = StatusStopped
		}
	}
}

// ArchReg returns the committed architectural value of register r, for
// tests and debugging.
func (m *Machine) ArchReg(r uint8) uint64 {
	if r == 0 {
		return 0
	}
	return m.prf[m.committedMap[r]] & m.Cfg.Variant.Mask()
}
