package cpu

import (
	"fmt"
	"strings"

	"avgi/internal/mem"
)

// StatsReport renders the machine's performance counters as a multi-line
// human-readable summary (used by cmd/avgisim).
func (m *Machine) StatsReport() string {
	var b strings.Builder
	s := m.Stats
	ipc := 0.0
	if m.cycle > 0 {
		ipc = float64(s.Commits) / float64(m.cycle)
	}
	fmt.Fprintf(&b, "cycles        %d\n", m.cycle)
	fmt.Fprintf(&b, "commits       %d (IPC %.2f)\n", s.Commits, ipc)
	fmt.Fprintf(&b, "loads/stores  %d / %d\n", s.Loads, s.Stores)
	mr := 0.0
	if s.Branches > 0 {
		mr = float64(s.Mispredicts) / float64(s.Branches)
	}
	fmt.Fprintf(&b, "branches      %d (%.1f%% mispredicted, %d squashed)\n",
		s.Branches, mr*100, s.Squashed)
	cache := func(name string, c *mem.Cache) {
		rate := 0.0
		if c.Accesses > 0 {
			rate = float64(c.Misses) / float64(c.Accesses)
		}
		fmt.Fprintf(&b, "%-13s %d accesses, %.1f%% miss, %d writebacks\n",
			name, c.Accesses, rate*100, c.Writebacks)
	}
	cache("L1I", m.Mem.L1I)
	cache("L1D", m.Mem.L1D)
	cache("L2", m.Mem.L2)
	tlb := func(name string, t *mem.TLB) {
		rate := 0.0
		if t.Accesses > 0 {
			rate = float64(t.Misses) / float64(t.Accesses)
		}
		fmt.Fprintf(&b, "%-13s %d accesses, %.2f%% miss\n", name, t.Accesses, rate*100)
	}
	tlb("ITLB", m.Mem.ITLB)
	tlb("DTLB", m.Mem.DTLB)
	return b.String()
}
