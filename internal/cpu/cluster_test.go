package cpu

import (
	"bytes"
	"testing"

	"avgi/internal/asm"
)

// clusterProg builds a small output-producing program: writes a tag byte
// sequence to the output region and halts.
func clusterProg(t *testing.T, cfg Config) *asm.Program {
	t.Helper()
	b := asm.NewBuilder("cluster-test", cfg.Variant)
	b.Li(1, asm.DefaultOutBase)
	for i, ch := range []byte("multicore") {
		b.Li(2, uint64(ch))
		b.Sb(2, 1, int32(i))
	}
	b.Li(3, asm.DefaultOutLenAddr)
	b.Li(4, 9)
	b.StoreW(4, 3, 0)
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClusterRunsWorkload(t *testing.T) {
	for _, cfg := range configs() {
		p := clusterProg(t, cfg)

		single := New(cfg, p)
		sres := single.Run(RunOptions{MaxCycles: 2_000_000})
		if sres.Status != StatusHalted {
			t.Fatalf("%s: single-core status %v/%v", cfg.Name, sres.Status, sres.Crash)
		}

		cl := NewCluster(cfg, p, 2)
		res := cl.Run(RunOptions{MaxCycles: 2_000_000})
		if res.Status != StatusHalted {
			t.Fatalf("%s: cluster status %v/%v", cfg.Name, res.Status, res.Crash)
		}
		// Both cores run the same program in disjoint windows: the
		// cluster output is two copies of the single-core output, and
		// commits double.
		want := append(append([]byte(nil), sres.Output...), sres.Output...)
		if !bytes.Equal(res.Output, want) {
			t.Fatalf("%s: cluster output %q, want %q", cfg.Name, res.Output, want)
		}
		if res.Commits != 2*sres.Commits {
			t.Fatalf("%s: cluster commits %d, want %d", cfg.Name, res.Commits, 2*sres.Commits)
		}
		// Engine telemetry: two ticking components, named by index.
		if len(res.Engine.Components) != 2 ||
			res.Engine.Components[0].Name != "c0" || res.Engine.Components[1].Name != "c1" {
			t.Fatalf("%s: engine components %+v", cfg.Name, res.Engine.Components)
		}
	}
}

func TestClusterSameSeedTwiceIsIdentical(t *testing.T) {
	cfg := ConfigA72()
	p := clusterProg(t, cfg)
	run := func() Result {
		return NewCluster(cfg, p, 2).Run(RunOptions{MaxCycles: 2_000_000})
	}
	a, b := run(), run()
	if a.Status != b.Status || a.Cycles != b.Cycles || a.Commits != b.Commits ||
		!bytes.Equal(a.Output, b.Output) {
		t.Fatalf("cluster runs diverged: %+v vs %+v", a, b)
	}
}

func TestClusterCloneResumesIdentically(t *testing.T) {
	cfg := ConfigA72()
	p := clusterProg(t, cfg)

	golden := NewCluster(cfg, p, 2).Run(RunOptions{MaxCycles: 2_000_000})

	// The mother-cluster pattern: advance partway, clone, finish the clone.
	mother := NewCluster(cfg, p, 2)
	mother.Run(RunOptions{MaxCycles: 2_000_000, StopAtCycle: golden.Cycles / 2})
	if got := mother.Cycle(); got < golden.Cycles/2 {
		t.Fatalf("mother stopped at %d, want >= %d", got, golden.Cycles/2)
	}
	clone := mother.Clone()
	res := clone.Run(RunOptions{MaxCycles: 2_000_000})
	if res.Status != golden.Status || res.Cycles != golden.Cycles ||
		res.Commits != golden.Commits || !bytes.Equal(res.Output, golden.Output) {
		t.Fatalf("clone result %+v diverged from golden %+v", res, golden)
	}

	// The mother, resumed directly, also matches (clone didn't disturb it).
	mres := mother.Run(RunOptions{MaxCycles: 2_000_000})
	if mres.Cycles != golden.Cycles || !bytes.Equal(mres.Output, golden.Output) {
		t.Fatalf("mother result %+v diverged from golden %+v", mres, golden)
	}
}

func TestClusterTargetsAndValidate(t *testing.T) {
	cfg := ConfigA72()
	p := clusterProg(t, cfg)
	cl := NewCluster(cfg, p, 2)

	targets := cl.Targets()
	if len(targets) != 2*len(StructureNames) {
		t.Fatalf("cluster targets = %d, want %d", len(targets), 2*len(StructureNames))
	}
	for _, name := range []string{"c0/RF", "c1/RF", "c0/L2 (Tag)", "c1/ROB"} {
		if cl.Target(name) == nil {
			t.Errorf("Target(%q) = nil", name)
		}
		if err := ValidateStructure(name); err != nil {
			t.Errorf("ValidateStructure(%q): %v", name, err)
		}
	}
	if cl.Target("c2/RF") != nil {
		t.Error("Target(c2/RF) resolved on a 2-core cluster")
	}
	if cl.Target("RF") != nil {
		t.Error("unprefixed Target(RF) resolved on a cluster")
	}
	for _, bad := range []string{"c0/NOPE", "cX/RF", "RFX"} {
		if err := ValidateStructure(bad); err == nil {
			t.Errorf("ValidateStructure(%q) accepted", bad)
		}
	}
	// Plain single-core names still validate.
	for _, name := range StructureNames {
		if err := ValidateStructure(name); err != nil {
			t.Errorf("ValidateStructure(%q): %v", name, err)
		}
	}

	// Per-core RF targets are independent arrays...
	if &cl.Core(0).prf[0] == &cl.Core(1).prf[0] {
		t.Fatal("per-core register files alias")
	}
	// ...but the shared L2's arrays are one physical structure.
	c0l2 := cl.Target("c0/L2 (Data)")
	before := cl.Core(1).Mem.L2.DataArray()
	_ = before
	c0l2.FlipBit(0)
	probe := cl.Core(1).Mem.L2.DataArray()
	probe.FlipBit(0) // flipping back through c1's view restores the bit
	c0l2.FlipBit(0)
	probe.FlipBit(0)
	// If the two views aliased different arrays the double round-trip
	// would leave state changed; verify via a fresh cluster comparison run.
	res := cl.Run(RunOptions{MaxCycles: 2_000_000})
	fresh := NewCluster(cfg, p, 2).Run(RunOptions{MaxCycles: 2_000_000})
	if !bytes.Equal(res.Output, fresh.Output) || res.Cycles != fresh.Cycles {
		t.Fatalf("L2 flip round-trip left residue: %+v vs %+v", res, fresh)
	}
}

func TestSplitCoreTarget(t *testing.T) {
	cases := []struct {
		in   string
		core int
		rest string
		ok   bool
	}{
		{"c0/RF", 0, "RF", true},
		{"c12/L2 (Tag)", 12, "L2 (Tag)", true},
		{"RF", 0, "", false},
		{"c/RF", 0, "", false},
		{"cX/RF", 0, "", false},
		{"d0/RF", 0, "", false},
	}
	for _, c := range cases {
		core, rest, ok := SplitCoreTarget(c.in)
		if core != c.core && c.ok || rest != c.rest || ok != c.ok {
			t.Errorf("SplitCoreTarget(%q) = (%d, %q, %v), want (%d, %q, %v)",
				c.in, core, rest, ok, c.core, c.rest, c.ok)
		}
	}
}
