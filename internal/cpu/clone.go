package cpu

// Clone deep-copies the machine's entire state — core and memory system —
// producing an independent machine positioned at the same cycle. Campaigns
// use this as the checkpoint mechanism: the golden run advances to each
// fault's injection cycle and forks a clone to inject into, which matches
// the checkpoint-based acceleration both the paper's baseline SFI flow and
// the AVGI flow share (Section IV.B).
//
// The trace sink is not cloned; the caller installs a fresh sink on the
// clone with SetSink.
func (m *Machine) Clone() *Machine {
	c := m.cloneCore()
	c.Mem = m.Mem.Clone()
	return c
}

// cloneCore deep-copies the core-private state only, leaving Mem aliased to
// the source's hierarchy; the caller rebinds it. Cluster clones use this to
// rebind every core onto one cloned shared-memory spine instead of cloning
// the shared L2 and RAM once per core.
func (m *Machine) cloneCore() *Machine {
	c := &Machine{}
	*c = *m
	c.sink = nil
	c.profile = nil // exposure profiling is a golden-run concern
	c.probe = nil   // fault probes never outlive their faulty run
	c.clearDeltaTracking()

	c.prf = append([]uint64(nil), m.prf...)
	c.prfReadyAt = append([]uint64(nil), m.prfReadyAt...)
	c.renameMap = append([]uint16(nil), m.renameMap...)
	c.committedMap = append([]uint16(nil), m.committedMap...)
	c.freeList = append([]uint16(nil), m.freeList...)

	c.rob = append([]robEntry(nil), m.rob...)
	c.iq = append([]int(nil), m.iq...)
	c.lqs = append([]lqEntry(nil), m.lqs...)
	c.sqs = append([]sqEntry(nil), m.sqs...)
	c.fq = append([]fqEntry(nil), m.fq...)

	c.bimodal = append([]uint8(nil), m.bimodal...)
	c.btb = append([]uint64(nil), m.btb...)

	c.output = append([]byte(nil), m.output...)
	return c
}
