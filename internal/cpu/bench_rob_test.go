package cpu

import (
	"testing"

	"avgi/internal/prog"
)

// The pair below justifies the wrap-compare in Machine.robNext: ring
// traversal with an integer modulo per step versus the shipped
// increment-and-compare. The ROB is walked every cycle by dispatch,
// writeback, commit and squash, so the div unit's latency shows up
// directly in golden-run throughput (numbers in BENCH_faultpath.json).

//go:noinline
func robNextModulo(i, n int) int { return (i + 1) % n }

func BenchmarkROBNextModulo(b *testing.B) {
	n := ConfigA72().ROBSize
	i := 0
	for k := 0; k < b.N; k++ {
		i = robNextModulo(i, n)
	}
	sinkInt = i
}

func BenchmarkROBNextWrap(b *testing.B) {
	w, err := prog.ByName("crc32")
	if err != nil {
		b.Fatal(err)
	}
	m := New(ConfigA72(), w.Build(ConfigA72().Variant))
	i := 0
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		i = m.robNext(i)
	}
	sinkInt = i
}

var sinkInt int
