package cpu

import (
	"fmt"

	"avgi/internal/asm"
	"avgi/internal/engine"
	"avgi/internal/mem"
	"avgi/internal/trace"
)

// Cluster is a multi-core machine: n cores with private L1s and TLBs over a
// shared L2 and RAM (see mem.SharedMem), each running its own copy of the
// program in its own physical window. The cores are driven by one serial
// engine and tick in index order every cycle, so same-cycle activity at the
// shared L2 arbitrates deterministically: core 0 always accesses shared
// state before core 1 within a cycle.
//
// This is the first machine shape the old monolithic Machine.Step loop
// could not express — it exists to let faults propagate across cores
// through the shared L2 (a flip in c0's window can be written back where
// c1's output DMA reads it).
type Cluster struct {
	Cfg    Config
	Prog   *asm.Program
	Shared *mem.SharedMem

	cores []*Machine
	cycle uint64
}

// NewCluster builds an n-core cluster for cfg and loads the program into
// every core's window.
func NewCluster(cfg Config, prog *asm.Program, n int) *Cluster {
	shared := mem.NewSharedMem(cfg.Mem, n)
	cl := &Cluster{Cfg: cfg, Prog: prog, Shared: shared}
	for k := 0; k < n; k++ {
		m := NewWithMem(cfg, prog, shared.CoreHierarchy(k))
		m.name = fmt.Sprintf("c%d", k)
		cl.cores = append(cl.cores, m)
	}
	return cl
}

// Cores returns the number of cores.
func (cl *Cluster) Cores() int { return len(cl.cores) }

// Core returns core k.
func (cl *Cluster) Core(k int) *Machine { return cl.cores[k] }

// Cycle returns the cluster clock (cycles executed by the engine; a halted
// core's private counter freezes while the cluster clock keeps running).
func (cl *Cluster) Cycle() uint64 { return cl.cycle }

// SetSink installs a commit-trace sink on core k.
func (cl *Cluster) SetSink(k int, s trace.Sink) { cl.cores[k].SetSink(s) }

// Status aggregates the per-core lifecycle states: any crashed core crashes
// the cluster (shared memory makes its state suspect everywhere), any
// sink-stopped core stops it (the observer has seen what it needs), and the
// cluster halts only when every core has halted.
func (cl *Cluster) Status() Status {
	halted := 0
	for _, m := range cl.cores {
		switch m.status {
		case StatusCrashed:
			return StatusCrashed
		case StatusStopped:
			return StatusStopped
		case StatusCycleLimit:
			return StatusCycleLimit
		case StatusHalted:
			halted++
		}
	}
	if halted == len(cl.cores) {
		return StatusHalted
	}
	return StatusRunning
}

// Crash returns the crash kind of the first crashed core (index order), or
// CrashNone.
func (cl *Cluster) Crash() CrashKind {
	for _, m := range cl.cores {
		if m.status == StatusCrashed {
			return m.crash
		}
	}
	return CrashNone
}

// Output concatenates the drained outputs of halted cores in index order —
// the cluster's observable result. A fault that crosses cores through the
// shared L2 shows up as a change in another core's section.
func (cl *Cluster) Output() []byte {
	var out []byte
	for _, m := range cl.cores {
		out = append(out, m.output...)
	}
	return out
}

// Commits sums committed instructions across cores.
func (cl *Cluster) Commits() uint64 {
	var n uint64
	for _, m := range cl.cores {
		n += m.Stats.Commits
	}
	return n
}

// Run advances the cluster until it halts, crashes, is stopped by a sink,
// or exhausts the cycle budget. Like Machine.Run it drives a fresh serial
// engine per call, with the cores registered in index order.
func (cl *Cluster) Run(opts RunOptions) Result {
	eng := engine.New()
	for _, m := range cl.cores {
		eng.Register(m)
	}
	max := opts.MaxCycles
	if max == 0 {
		max = 100_000_000
	}
	status := cl.Status()
	for status == StatusRunning {
		if cl.cycle >= max {
			status = StatusCycleLimit
			break
		}
		if opts.StopAtCycle > 0 && cl.cycle >= opts.StopAtCycle {
			break
		}
		eng.RunCycle()
		cl.cycle++
		status = cl.Status()
	}
	return Result{
		Status:  status,
		Crash:   cl.Crash(),
		Cycles:  cl.cycle,
		Commits: cl.Commits(),
		Output:  cl.Output(),
		Engine:  eng.Stats(),
	}
}

// Clone deep-copies the whole cluster: the shared memory spine is cloned
// once and every core is rebound onto it.
func (cl *Cluster) Clone() *Cluster {
	c := &Cluster{Cfg: cl.Cfg, Prog: cl.Prog, cycle: cl.cycle}
	c.Shared = cl.Shared.Clone()
	for k, m := range cl.cores {
		cm := m.cloneCore()
		cm.Mem = c.Shared.CoreHierarchy(k)
		c.cores = append(c.cores, cm)
	}
	return c
}

// Targets returns every core's fault-injectable structures keyed by
// prefixed name ("c0/RF", "c1/L2 (Tag)", ...). The shared L2's arrays
// appear under every core's prefix — there is one physical L2, so
// "c0/L2 (Tag)" and "c1/L2 (Tag)" name the same bits.
func (cl *Cluster) Targets() map[string]Target {
	out := make(map[string]Target, 12*len(cl.cores))
	for k, m := range cl.cores {
		for name, t := range m.Targets() {
			out[fmt.Sprintf("c%d/%s", k, name)] = t
		}
	}
	return out
}

// Target resolves one prefixed structure name ("c1/RF"), or nil if the
// prefix or structure is unknown.
func (cl *Cluster) Target(name string) Target {
	k, base, ok := SplitCoreTarget(name)
	if !ok || k >= len(cl.cores) {
		return nil
	}
	return cl.cores[k].Target(base)
}
