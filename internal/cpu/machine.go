package cpu

import (
	"fmt"

	"avgi/internal/asm"
	"avgi/internal/engine"
	"avgi/internal/isa"
	"avgi/internal/mem"
	"avgi/internal/trace"
)

// excKind is a precise exception recorded in a ROB entry and raised when the
// entry reaches the commit head.
type excKind uint8

const (
	excNone excKind = iota
	excIllegal
	excPage
	excAlign
)

// CrashKind explains why a run crashed.
type CrashKind uint8

const (
	CrashNone CrashKind = iota
	// CrashMachineCheck is a shadow-integrity (simulator assertion)
	// failure: corrupted ROB/LQ/SQ control state was about to be used.
	CrashMachineCheck
	// CrashIllegal is an undefined-instruction exception at commit.
	CrashIllegal
	// CrashPageFault is an access to an unmapped page.
	CrashPageFault
	// CrashAlignFault is a misaligned access.
	CrashAlignFault
	// CrashWatchdog fires when no instruction commits for the configured
	// gap or the cycle limit is exceeded.
	CrashWatchdog
)

func (k CrashKind) String() string {
	switch k {
	case CrashNone:
		return "none"
	case CrashMachineCheck:
		return "machine check"
	case CrashIllegal:
		return "illegal instruction"
	case CrashPageFault:
		return "page fault"
	case CrashAlignFault:
		return "alignment fault"
	case CrashWatchdog:
		return "watchdog"
	}
	return fmt.Sprintf("crash(%d)", uint8(k))
}

// Status is the lifecycle state of a machine.
type Status uint8

const (
	StatusRunning Status = iota
	// StatusHalted means the program executed HALT; output was drained.
	StatusHalted
	// StatusCrashed means a catastrophic event ended the run.
	StatusCrashed
	// StatusStopped means the trace sink asked the run to stop early.
	StatusStopped
	// StatusCycleLimit means the run hit the caller's cycle budget.
	StatusCycleLimit
)

func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusHalted:
		return "halted"
	case StatusCrashed:
		return "crashed"
	case StatusStopped:
		return "stopped"
	case StatusCycleLimit:
		return "cycle limit"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

const noReg = ^uint16(0)

// operand is a renamed source operand: either a physical register or a
// constant resolved at rename time (the zero register and immediates).
type operand struct {
	isReg bool
	phys  uint16
	con   uint64
}

// robEntry is one reorder-buffer slot with all in-flight state.
type robEntry struct {
	used bool
	seq  uint64

	pc    uint64
	word  uint32
	inst  isa.Inst
	class isa.Class

	hasDest  bool
	destArch uint8
	destPhys uint16
	oldPhys  uint16

	src [2]operand

	issued  bool
	done    bool
	readyAt uint64

	exc excKind

	// Branch state. Mispredict recovery walks the ROB back from the
	// tail, undoing rename effects, so no checkpoint is stored.
	predTaken  bool
	predTarget uint64

	// Memory state.
	lq int
	sq int

	result  uint64
	effAddr uint64

	// injected marks surface corruption from fault injection; the shadow
	// integrity check fires when the entry commits.
	injected bool
}

type fqEntry struct {
	pc         uint64
	word       uint32
	inst       isa.Inst // pre-decoded at fetch; rename reuses it
	readyAt    uint64
	predTaken  bool
	predTarget uint64
	fetchExc   excKind
}

type lqEntry struct {
	used     bool
	rob      int
	seq      uint64
	addr     uint64
	size     uint64
	known    bool
	injected bool
}

type sqEntry struct {
	used     bool
	rob      int
	seq      uint64
	addr     uint64
	size     uint64
	data     uint64
	known    bool
	injected bool
}

// Stats accumulates run statistics (protected state).
type Stats struct {
	Commits     uint64
	Branches    uint64
	Mispredicts uint64
	Squashed    uint64
	Loads       uint64
	Stores      uint64

	// Masking-source counters for fault injection: FlipsArmed counts
	// FlipBit calls that landed on live state (the fault is in play);
	// FlipsMasked counts flips that hit a free queue slot and were
	// overwritten at the next allocation — masked at the injection site
	// before ever reaching the software layer.
	FlipsArmed  uint64
	FlipsMasked uint64
}

// Machine is one simulated CPU attached to a memory hierarchy with a loaded
// program.
type Machine struct {
	Cfg  Config
	Prog *asm.Program
	Mem  *mem.Hierarchy

	// Physical register file: the value array is a fault target.
	prf        []uint64
	prfReadyAt []uint64

	renameMap    []uint16 // speculative map (protected)
	committedMap []uint16 // architectural map (protected)
	freeList     []uint16 // LIFO stack of free physical registers
	freeTop      int

	rob      []robEntry
	robHead  int
	robTail  int
	robCount int
	seqNext  uint64

	iq []int // ROB indices waiting to issue, program order

	lqs    []lqEntry
	lqHead int
	lqTail int
	lqCnt  int

	sqs    []sqEntry
	sqHead int
	sqTail int
	sqCnt  int

	fq []fqEntry

	fetchPC         uint64
	fetchHalted     bool
	fetchStallUntil uint64

	bimodal []uint8  // 2-bit counters
	btb     []uint64 // indirect-branch targets, direct-mapped by PC

	// Dirty-delta tracking (cursor forks): predictor entries written since
	// the last snapshot/restore sync point. Only the predictor arrays are
	// worth tracking on the core side — they are large, cold and mostly
	// stable, while the pipeline queues and register file churn completely
	// within any fault window and are always copied whole.
	deltaTrack bool
	bimTouched []int32
	bimMarked  []bool
	btbTouched []int32
	btbMarked  []bool

	cycle           uint64
	lastCommitCycle uint64

	status Status
	crash  CrashKind

	sink trace.Sink

	Stats Stats

	output []byte

	// profile, when non-nil, samples the dirty-output-line occupancy of
	// the data caches during the run (golden runs only; clones drop it).
	profile *outputProfile

	// probe, when non-nil, observes the fate of an injected fault's
	// corrupted state (see probe.go). Armed after the flip and cleared
	// before the faulty machine is rewound; a nil probe keeps every
	// pipeline stage on the exact pre-forensics code.
	probe *FaultProbe

	// name is the engine component name ("" reads as "core"; cluster
	// cores are "c0", "c1", ...).
	name string
}

// outputProfile records how much of each cache array holds dirty data
// destined for the program output — the exposure that makes ESC faults
// possible (Section IV.D). Sampled every interval cycles as a time series
// so the campaign runner can weight each sample by how much of the output
// is already in its final state.
type outputProfile struct {
	lo, hi   uint64
	interval uint64

	cycles []uint64
	l1d    []uint32 // dirty output lines in L1D per sample
	l2     []uint32
}

// New builds a machine for cfg and loads the program image.
func New(cfg Config, prog *asm.Program) *Machine {
	return NewWithMem(cfg, prog, mem.NewHierarchy(cfg.Mem))
}

// NewWithMem builds a machine over an externally assembled memory system —
// the cluster path, where per-core hierarchies share an L2 and RAM (see
// NewCluster). The program image is loaded into the hierarchy's physical
// window.
func NewWithMem(cfg Config, prog *asm.Program, h *mem.Hierarchy) *Machine {
	if prog.Variant != cfg.Variant {
		panic(fmt.Sprintf("cpu: program %s assembled for %s but machine is %s",
			prog.Name, prog.Variant, cfg.Variant))
	}
	m := &Machine{Cfg: cfg, Prog: prog}
	m.Mem = h

	// Load the program image into physical memory.
	text := make([]byte, len(prog.Text)*4)
	for i, w := range prog.Text {
		text[i*4] = byte(w)
		text[i*4+1] = byte(w >> 8)
		text[i*4+2] = byte(w >> 16)
		text[i*4+3] = byte(w >> 24)
	}
	base := h.Base()
	m.Mem.RAM.WriteBlock(base+prog.TextBase, text)
	m.Mem.RAM.WriteBlock(base+prog.DataBase, prog.Data)

	n := cfg.Variant.NumArchRegs()
	m.prf = make([]uint64, cfg.PhysRegs)
	m.prfReadyAt = make([]uint64, cfg.PhysRegs)
	m.renameMap = make([]uint16, n)
	m.committedMap = make([]uint16, n)
	// Architectural registers start mapped to physical 0..n-1 (all zero);
	// the rest go on the free list.
	for i := 0; i < n; i++ {
		m.renameMap[i] = uint16(i)
		m.committedMap[i] = uint16(i)
	}
	m.freeList = make([]uint16, cfg.PhysRegs)
	for p := n; p < cfg.PhysRegs; p++ {
		m.freeList[m.freeTop] = uint16(p)
		m.freeTop++
	}

	// Initialise the stack pointer convention: SP = top of RAM.
	sp := cfg.Mem.RAMSize - 16
	m.prf[m.renameMap[asm.SP]] = sp & cfg.Variant.Mask()

	m.rob = make([]robEntry, cfg.ROBSize)
	m.lqs = make([]lqEntry, cfg.LQSize)
	m.sqs = make([]sqEntry, cfg.SQSize)
	m.iq = make([]int, 0, cfg.IQSize)
	m.fq = make([]fqEntry, 0, cfg.FetchQueue)
	m.bimodal = make([]uint8, 1<<cfg.BPBits)
	for i := range m.bimodal {
		m.bimodal[i] = 1 // weakly not-taken
	}
	m.btb = make([]uint64, cfg.BTBEntries)

	m.fetchPC = prog.TextBase
	return m
}

// SetSink installs the commit-trace sink.
func (m *Machine) SetSink(s trace.Sink) { m.sink = s }

// Cycle returns the current cycle number.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Status returns the machine's lifecycle state.
func (m *Machine) Status() Status { return m.status }

// Crash returns the crash kind for StatusCrashed machines.
func (m *Machine) Crash() CrashKind { return m.crash }

// Output returns the DMA-drained output of a halted machine (nil
// otherwise).
func (m *Machine) Output() []byte { return m.output }

// EnableOutputProfiling turns on dirty-output-exposure sampling over the
// address range [lo, hi) every interval cycles. Campaign golden runs use
// it to feed the ESC predictor; it is pure observation and does not change
// timing or state.
func (m *Machine) EnableOutputProfiling(lo, hi, interval uint64) {
	if interval == 0 {
		interval = 64
	}
	m.profile = &outputProfile{lo: lo, hi: hi, interval: interval}
}

// OutputProfile returns the sampled dirty-output-line time series: sample
// cycles and, per sample, the dirty output lines in L1D and L2. The
// campaign runner folds these into per-structure exposure fractions.
func (m *Machine) OutputProfile() (cycles []uint64, l1d, l2 []uint32) {
	p := m.profile
	if p == nil {
		return nil, nil, nil
	}
	return p.cycles, p.l1d, p.l2
}

// Name implements engine.Component: "core" for a single-core machine,
// "c<k>" for cluster cores.
func (m *Machine) Name() string {
	if m.name == "" {
		return "core"
	}
	return m.name
}

// CaptureState implements engine.StateCapturer, mapping the machine's
// buffer-reusing Snapshot machinery onto per-component capture. The token
// is a *Snapshot; passing a prior token back reuses its buffers. (Cluster
// cores share an L2 and RAM, so their capture path is the cluster-level
// Clone, not per-component snapshots.)
func (m *Machine) CaptureState(prior any) any {
	var s *Snapshot
	if prior != nil {
		s = prior.(*Snapshot)
	}
	return m.Snapshot(s)
}

// RestoreState implements engine.StateCapturer.
func (m *Machine) RestoreState(state any) {
	m.Restore(state.(*Snapshot))
}

// Step advances the machine one clock cycle. It is a thin wrapper over Tick
// for callers that drive the machine directly rather than through an
// engine (tests, the campaign cursor's single-cycle seeks).
func (m *Machine) Step() {
	m.Tick(m.cycle + 1)
}

// Tick implements engine.Ticker: one clock cycle of the core. Stages run in
// reverse pipeline order so that a cycle's results are visible to earlier
// stages only on the next cycle. The machine keeps its own cycle counter
// (the engine's clock and m.cycle coincide only when the machine starts at
// cycle 0, which is all the engine needs — ordering, not absolute time).
func (m *Machine) Tick(uint64) {
	if m.status != StatusRunning {
		return
	}
	m.cycle++
	if p := m.profile; p != nil && m.cycle%p.interval == 0 {
		p.cycles = append(p.cycles, m.cycle)
		p.l1d = append(p.l1d, uint32(m.Mem.L1D.DirtyLinesInRange(p.lo, p.hi)))
		p.l2 = append(p.l2, uint32(m.Mem.L2.DirtyLinesInRange(p.lo, p.hi)))
	}
	m.commitStage()
	if m.status != StatusRunning {
		return
	}
	m.issueStage()
	m.renameStage()
	m.fetchStage()

	if m.cycle-m.lastCommitCycle > m.Cfg.WatchdogCommitGap {
		m.crashNow(CrashWatchdog)
	}
	// Early-exit oracle: with a convergence-armed probe, stop the faulty
	// run the moment its facts prove the machine state is golden again
	// (campaign classifies StatusStopped with a clean trace as Benign,
	// exactly as a full-window expiry would). One nil check when no probe
	// is armed, matching the cost promise of the other probe hooks.
	if p := m.probe; p != nil && p.stopOnConverge && m.status == StatusRunning && p.Converged() {
		m.status = StatusStopped
	}
}

// crashNow terminates the run with the given crash kind.
func (m *Machine) crashNow(k CrashKind) {
	m.status = StatusCrashed
	m.crash = k
}

// halt completes a successful run: caches are flushed and the DMA engine
// drains the output region from physical memory.
func (m *Machine) halt() {
	m.status = StatusHalted
	out := m.Mem.DrainOutput(m.Prog.OutBase, m.Prog.OutLenAddr, m.Cfg.Variant.WordBytes())
	m.output = append([]byte(nil), out...)
}

// RunOptions controls a Run invocation.
type RunOptions struct {
	// MaxCycles is the absolute cycle budget (0 means a generous default
	// of 100M cycles).
	MaxCycles uint64
	// StopAtCycle pauses the run when the cycle counter reaches this
	// value (0 disables). Used to position checkpoints.
	StopAtCycle uint64
}

// Result summarises a completed run.
type Result struct {
	Status  Status
	Crash   CrashKind
	Cycles  uint64
	Commits uint64
	Output  []byte

	// Engine holds the event-engine activity counters of the Run call
	// that produced this result (telemetry; not machine state).
	Engine engine.Stats
}

// Run advances the machine until it halts, crashes, is stopped by the sink,
// or exhausts the cycle budget. Each Run drives a fresh serial engine with
// the machine registered as its only ticking component; the engine is
// per-call state, so snapshots, clones and restores of the machine never
// carry scheduler state with them.
func (m *Machine) Run(opts RunOptions) Result {
	eng := engine.New()
	eng.Register(m)
	max := opts.MaxCycles
	if max == 0 {
		max = 100_000_000
	}
	for m.status == StatusRunning {
		if m.cycle >= max {
			m.status = StatusCycleLimit
			break
		}
		if opts.StopAtCycle > 0 && m.cycle >= opts.StopAtCycle {
			break
		}
		eng.RunCycle()
	}
	return Result{
		Status:  m.status,
		Crash:   m.crash,
		Cycles:  m.cycle,
		Commits: m.Stats.Commits,
		Output:  m.output,
		Engine:  eng.Stats(),
	}
}

// robAt returns the entry at ring index i.
func (m *Machine) robAt(i int) *robEntry { return &m.rob[i] }

// robNext returns the ring index after i. A wrap-compare instead of the
// modulo spares the hot commit/rename loops an integer division (the ROB
// size is fixed per config but not a compile-time constant the compiler
// could strength-reduce).
func (m *Machine) robNext(i int) int {
	if i++; i == len(m.rob) {
		return 0
	}
	return i
}
