package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "Demo", Columns: []string{"Structure", "AVF", "Speedup"}}
	t.AddRow("RF", "12.5%", "330.8x")
	t.AddRow("L2 (Data)", "40.0%", "0.5x")
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	sample().Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== Demo ==") {
		t.Errorf("title line %q", lines[0])
	}
	// Column alignment: "AVF" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "AVF")
	for _, l := range lines[3:] {
		if !strings.Contains(l[idx:], "%") {
			t.Errorf("misaligned row %q", l)
		}
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	tab := sample()
	tab.AddRow(`tricky,"cell"`, "1", "2")
	tab.CSV(&buf)
	out := buf.String()
	if !strings.Contains(out, "# Demo") {
		t.Error("missing title comment")
	}
	if !strings.Contains(out, `"tricky,""cell"""`) {
		t.Errorf("quoting broken:\n%s", out)
	}
	if !strings.Contains(out, "Structure,AVF,Speedup") {
		t.Error("missing header")
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "IMM", []string{"OFS", "IRP", "ETE"}, []float64{0.6, 0.3, 0.0}, 10)
	out := buf.String()
	if !strings.Contains(out, "-- IMM --") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "##########") {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[1], "60.0%") {
		t.Errorf("value missing: %q", lines[1])
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero bar should be empty: %q", lines[3])
	}
	// Degenerate inputs must not panic.
	Bars(&buf, "", []string{"x"}, []float64{0}, 0)
}

func TestFormatters(t *testing.T) {
	if Pct(0.1234) != "12.3%" {
		t.Errorf("Pct: %s", Pct(0.1234))
	}
	if F2(3.14159) != "3.14" {
		t.Errorf("F2: %s", F2(3.14159))
	}
	if F1x(6.25) != "6.2x" {
		t.Errorf("F1x: %s", F1x(6.25))
	}
	if Cycles(1_500_000) != "1.5M" || Cycles(50_000) != "50k" || Cycles(999) != "999" {
		t.Errorf("Cycles: %s %s %s", Cycles(1_500_000), Cycles(50_000), Cycles(999))
	}
}
