package report_test

import (
	"os"

	"avgi/internal/report"
)

// ExampleTable_Render shows the aligned-ASCII rendering the harness uses.
func ExampleTable_Render() {
	t := &report.Table{
		Title:   "Demo",
		Columns: []string{"Structure", "AVF"},
	}
	t.AddRow("RF", report.Pct(0.125))
	t.AddRow("L2 (Data)", report.Pct(0.4))
	t.Render(os.Stdout)
	// Output:
	// == Demo ==
	// Structure  AVF
	// ---------  -----
	// RF         12.5%
	// L2 (Data)  40.0%
}
