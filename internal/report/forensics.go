package report

import (
	"fmt"
	"sort"

	"avgi/internal/forensics"
)

// causeHeaders are compact column titles for the attribution causes, in
// forensics.Causes order.
var causeHeaders = [forensics.NumCauses]string{
	"Overwrit", "Squashed", "EvictCln", "LogMask", "NeverRead", "Visible",
}

// MaskingSources renders the forensics explorer's breakdown as one
// per-structure table: cause counts as percentages of the sampled faults
// (aggregated across workloads and modes), plus the mean injection-to-
// divergence latency of the visible ones.
func MaskingSources(entries []forensics.Entry) *Table {
	type agg struct {
		faults, sampled  uint64
		causes           [forensics.NumCauses]uint64
		divCount, divSum uint64
	}
	byStruct := make(map[string]*agg)
	for _, e := range entries {
		a := byStruct[e.Structure]
		if a == nil {
			a = &agg{}
			byStruct[e.Structure] = a
		}
		a.faults += e.Faults
		a.sampled += e.Sampled
		for _, c := range forensics.Causes {
			a.causes[c] += e.Causes[c.String()]
		}
		a.divCount += e.DivCount
		a.divSum += e.DivSum
	}
	structs := make([]string, 0, len(byStruct))
	for s := range byStruct {
		structs = append(structs, s)
	}
	sort.Strings(structs)

	t := &Table{
		Title:   "Masking sources (forensic attribution of sampled faults)",
		Columns: append([]string{"Structure", "Faults", "Sampled"}, causeHeaders[:]...),
	}
	t.Columns = append(t.Columns, "DivMean")
	for _, s := range structs {
		a := byStruct[s]
		row := []string{s,
			fmt.Sprintf("%d", a.faults),
			fmt.Sprintf("%d", a.sampled)}
		for _, c := range forensics.Causes {
			if a.sampled == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, Pct(float64(a.causes[c])/float64(a.sampled)))
		}
		if a.divCount > 0 {
			row = append(row, Cycles(a.divSum/a.divCount))
		} else {
			row = append(row, "-")
		}
		t.AddRow(row...)
	}
	return t
}
