// Package report renders the experiment harness's tables and figure series
// as aligned ASCII (for the terminal) and CSV (for plotting).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values with the title as a
// comment line.
func (t *Table) CSV(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	fmt.Fprintln(w, strings.Join(quoteAll(t.Columns), ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(quoteAll(row), ","))
	}
}

func quoteAll(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		out[i] = c
	}
	return out
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bars renders a horizontal bar chart: one row per label, bars scaled so
// the maximum value spans width characters. Values render alongside as
// percentages. Used by cmd/avgi to visualise distribution figures in the
// terminal.
func Bars(w io.Writer, title string, labels []string, values []float64, width int) {
	if width <= 0 {
		width = 40
	}
	if title != "" {
		fmt.Fprintf(w, "-- %s --\n", title)
	}
	var max float64
	lw := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > lw {
			lw = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v/max*float64(width) + 0.5)
		}
		fmt.Fprintf(w, "%s  %s%s %s\n", pad(labels[i], lw),
			strings.Repeat("#", n), strings.Repeat(".", width-n), Pct(v))
	}
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// F2 formats a float with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// F1x formats a speedup ("6.2x").
func F1x(x float64) string { return fmt.Sprintf("%.1fx", x) }

// Cycles formats a cycle count compactly ("1.2M", "50k").
func Cycles(c uint64) string {
	switch {
	case c >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(c)/1e6)
	case c >= 1_000:
		return fmt.Sprintf("%.0fk", float64(c)/1e3)
	default:
		return fmt.Sprintf("%d", c)
	}
}
