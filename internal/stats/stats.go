// Package stats implements the statistical machinery of SFI campaigns: the
// Leveugle et al. sample-size and error-margin formulas the paper uses to
// justify its 2,000-fault samples (2.88% error at 99% confidence), plus
// the mean/standard-deviation summaries behind the uniformity claims of
// Section III.
package stats

import "math"

// Z-scores for the confidence levels used in SFI literature.
const (
	Z90 = 1.645
	Z95 = 1.960
	Z99 = 2.576
)

// SampleSize returns the number of faults to inject for a population of N
// possible faults, margin of error e (fraction, e.g. 0.0288), confidence
// z-score t, and estimated proportion p (0.5 is the conservative maximum).
// This is equation (1) of Leveugle et al., DATE 2009.
func SampleSize(n uint64, e, t, p float64) uint64 {
	N := float64(n)
	num := N
	den := 1 + e*e*(N-1)/(t*t*p*(1-p))
	s := math.Ceil(num / den)
	if s > N {
		return n
	}
	return uint64(s)
}

// ErrorMargin returns the margin of error achieved by a sample of size
// sample drawn from a population of n faults at confidence t with
// proportion p.
func ErrorMargin(sample, n uint64, t, p float64) float64 {
	if sample == 0 || n <= 1 {
		return 1
	}
	N := float64(n)
	s := float64(sample)
	if s > N {
		s = N
	}
	return t * math.Sqrt(p*(1-p)/s*(N-s)/(N-1))
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MaxAbsDiff returns the largest absolute pairwise difference between two
// equal-length series — used for the accuracy comparisons of Section V.C.
func MaxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Pearson returns the correlation coefficient between two equal-length
// series (0 if degenerate) — used for the ESC-prediction accuracy of
// Fig. 7.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var sab, sa, sb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		sa += da * da
		sb += db * db
	}
	if sa == 0 || sb == 0 {
		return 0
	}
	return sab / math.Sqrt(sa*sb)
}
