package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleSizePaperNumbers(t *testing.T) {
	// The paper's setting: 2,000 samples give ~2.88% margin at 99%
	// confidence for a large fault population.
	n := SampleSize(1<<30, 0.0288, Z99, 0.5)
	if n < 1900 || n > 2100 {
		t.Errorf("sample size = %d, expected ~2000", n)
	}
	e := ErrorMargin(2000, 1<<30, Z99, 0.5)
	if e < 0.027 || e > 0.030 {
		t.Errorf("error margin = %f, expected ~0.0288", e)
	}
}

func TestSampleSizeClampsToPopulation(t *testing.T) {
	if n := SampleSize(50, 0.001, Z99, 0.5); n != 50 {
		t.Errorf("tiny population: %d", n)
	}
}

func TestErrorMarginEdges(t *testing.T) {
	if ErrorMargin(0, 100, Z95, 0.5) != 1 {
		t.Error("zero sample should return 1")
	}
	if ErrorMargin(100, 1, Z95, 0.5) != 1 {
		t.Error("degenerate population should return 1")
	}
	if e := ErrorMargin(100, 100, Z95, 0.5); e != 0 {
		t.Errorf("census should have zero margin, got %f", e)
	}
}

func TestErrorMarginMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		s1, s2 := uint64(a)%5000+10, uint64(b)%5000+10
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return ErrorMargin(s2, 1<<30, Z99, 0.5) <= ErrorMargin(s1, 1<<30, Z99, 0.5)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("mean = %f", m)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-element stddev")
	}
	sd := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(sd-2) > 1e-9 {
		t.Errorf("stddev = %f, want 2", sd)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float64{1, 5, 3}, []float64{1.5, 4, 3}); d != 1 {
		t.Errorf("MaxAbsDiff = %f", d)
	}
	if MaxAbsDiff(nil, nil) != 0 {
		t.Error("empty diff")
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if r := Pearson(a, b); math.Abs(r-1) > 1e-9 {
		t.Errorf("perfect correlation = %f", r)
	}
	c := []float64{10, 8, 6, 4, 2}
	if r := Pearson(a, c); math.Abs(r+1) > 1e-9 {
		t.Errorf("perfect anticorrelation = %f", r)
	}
	if Pearson(a, []float64{1}) != 0 {
		t.Error("length mismatch should be 0")
	}
	if Pearson(a, []float64{3, 3, 3, 3, 3}) != 0 {
		t.Error("constant series should be 0")
	}
}
