package stats_test

import (
	"fmt"

	"avgi/internal/stats"
)

// ExampleSampleSize reproduces the paper's fault-sample calculation: for
// an effectively unbounded fault population, ~2,000 samples give a 2.88%
// error margin at 99% confidence (Leveugle et al., DATE 2009).
func ExampleSampleSize() {
	n := stats.SampleSize(1<<40, 0.0288, stats.Z99, 0.5)
	fmt.Println(n)
	// Output: 2001
}
