package engine

import "fmt"

// Port is a named message endpoint on a component. Ports come in connected
// pairs: Send on one side schedules a delivery into the peer's inbound
// queue after a latency, and the peer Retrieves messages in delivery order.
// Delivery order is fully deterministic — messages arriving the same cycle
// are queued in the order their delivery events were scheduled.
//
// This is the request/response idiom of gem5 and akita: a cache component
// exposes a "Top" port for the core side and a "Bottom" port toward the
// next level, latencies travel as event delays rather than return values,
// and components never call into each other directly.
type Port struct {
	name  string
	owner Component
	eng   *Engine
	peer  *Port

	inbound []any
}

// NewPort creates a port named name on owner, managed by eng.
func NewPort(eng *Engine, owner Component, name string) *Port {
	return &Port{name: name, owner: owner, eng: eng}
}

// Name returns the port's name qualified by its owner, e.g. "L2.Top".
func (p *Port) Name() string {
	if p.owner != nil {
		return p.owner.Name() + "." + p.name
	}
	return p.name
}

// Owner returns the component the port belongs to.
func (p *Port) Owner() Component { return p.owner }

// Peer returns the connected far end (nil before Connect).
func (p *Port) Peer() *Port { return p.peer }

// Connect wires two ports together. Each port may be connected once.
func Connect(a, b *Port) {
	if a.peer != nil || b.peer != nil {
		panic(fmt.Sprintf("engine: reconnecting port %s <-> %s", a.Name(), b.Name()))
	}
	if a.eng != b.eng {
		panic(fmt.Sprintf("engine: ports %s and %s live on different engines", a.Name(), b.Name()))
	}
	a.peer = b
	b.peer = a
}

// Send delivers msg to the peer port after delay cycles (0 delivers at the
// start of the next cycle — a component never observes its own cycle's
// sends, matching the stage-visibility rule of the tick machines).
func (p *Port) Send(msg any, delay uint64) {
	if p.peer == nil {
		panic(fmt.Sprintf("engine: send on unconnected port %s", p.Name()))
	}
	dst := p.peer
	if delay == 0 {
		delay = 1
	}
	p.eng.ScheduleDelta(delay, func(uint64) {
		dst.inbound = append(dst.inbound, msg)
	})
}

// Retrieve pops the oldest delivered message, or nil if none is pending.
func (p *Port) Retrieve() any {
	if len(p.inbound) == 0 {
		return nil
	}
	msg := p.inbound[0]
	copy(p.inbound, p.inbound[1:])
	p.inbound[len(p.inbound)-1] = nil
	p.inbound = p.inbound[:len(p.inbound)-1]
	return msg
}

// Pending returns the number of delivered-but-unretrieved messages.
func (p *Port) Pending() int { return len(p.inbound) }
