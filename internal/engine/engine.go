// Package engine is the deterministic event/tick engine the machine models
// run on — the component/port abstraction of gem5-class simulators (and of
// mgpusim/akita in Go), scaled down to this reproduction's needs.
//
// The engine is strictly serial and strictly deterministic:
//
//   - Components register once, up front; ticking components are ticked
//     every cycle in registration order. A multi-core machine registers its
//     cores in index order, so core 0 always observes shared state (the L2,
//     RAM) before core 1 within a cycle — the fixed arbitration order.
//   - Discrete events are fired in (cycle, schedule-order) order: two
//     events scheduled for the same cycle fire in the order they were
//     scheduled, never in map/heap-dependent order.
//
// Those two rules are what make the determinism acceptance gate possible:
// building the same machine twice and running both must produce identical
// final cycle counts, commit counts and outputs, byte for byte (see the
// mgpusim acceptance tests in SNIPPETS.md for the idiom this ports).
//
// State capture is a per-component concern: components that own
// checkpointable state implement StateCapturer, mapping the existing
// Snapshot/Restore machinery (copy-on-write RAM forks, buffer-reusing cache
// snaps, dirty-delta sync) onto the engine's component graph. CaptureAll
// and RestoreAll walk the registered capturers in registration order.
package engine

import "fmt"

// Component is anything that lives on the engine: a core, a cache, a TLB,
// an arbiter. The only universal requirement is a stable name (used by
// telemetry and error messages).
type Component interface {
	Name() string
}

// Ticker is a component driven by the clock: Tick is called exactly once
// per engine cycle, in registration order. cycle is the number of the cycle
// being executed (the first RunCycle call delivers cycle 1).
type Ticker interface {
	Component
	Tick(cycle uint64)
}

// StateCapturer is a component whose state can be checkpointed. The capture
// token is opaque to the engine; components hand back their own snapshot
// types (cpu.Snapshot, mem.HierarchySnap, ...) and accept them again on
// restore. prior, when non-nil, is a token from an earlier capture of the
// same component whose buffers may be reused — the zero-allocation
// re-capture discipline of the checkpoint subsystem.
type StateCapturer interface {
	Component
	CaptureState(prior any) any
	RestoreState(state any)
}

// Handler is an event callback. It runs at the cycle the event was
// scheduled for, before that cycle's ticks.
type Handler func(cycle uint64)

// event is one scheduled callback. seq breaks ties between events scheduled
// for the same cycle: earlier scheduling fires first.
type event struct {
	at  uint64
	seq uint64
	fn  Handler
}

// Stats is a snapshot of the engine's activity counters, consumed by the
// telemetry layer (see obs.PublishEngineStats).
type Stats struct {
	// Cycles is the number of RunCycle calls executed.
	Cycles uint64
	// Events is the number of discrete events fired.
	Events uint64
	// Components holds one entry per registered component, in registration
	// order.
	Components []ComponentStats
}

// ComponentStats is one component's activity: Ticks counts Tick calls
// delivered (zero for non-ticking components).
type ComponentStats struct {
	Name  string
	Ticks uint64
}

// Engine is the serial scheduler. It is not safe for concurrent use; every
// machine (or cluster) owns its own engine, which is what lets thousands of
// campaign workers run engines in parallel without sharing.
type Engine struct {
	now uint64
	seq uint64

	// queue is a binary min-heap of pending events ordered by (at, seq).
	queue []event

	components []Component
	tickers    []Ticker
	capturers  []StateCapturer

	events uint64
}

// New returns an empty engine at cycle 0.
func New() *Engine {
	return &Engine{}
}

// Register adds a component to the engine. Registration order is the
// deterministic tie-break everywhere: tick order, capture order, and the
// arbitration order of same-cycle activity. Registering after the first
// RunCycle is a programming error.
func (e *Engine) Register(c Component) {
	if e.now != 0 {
		panic(fmt.Sprintf("engine: component %s registered after cycle %d", c.Name(), e.now))
	}
	e.components = append(e.components, c)
	if t, ok := c.(Ticker); ok {
		e.tickers = append(e.tickers, t)
	}
	if s, ok := c.(StateCapturer); ok {
		e.capturers = append(e.capturers, s)
	}
}

// Now returns the current cycle (the cycle most recently executed).
func (e *Engine) Now() uint64 { return e.now }

// Schedule enqueues fn to run at cycle at. Events scheduled for the current
// cycle or earlier fire at the start of the next RunCycle (the engine never
// re-runs a cycle). Same-cycle events fire in scheduling order.
func (e *Engine) Schedule(at uint64, fn Handler) {
	ev := event{at: at, seq: e.seq, fn: fn}
	e.seq++
	e.queue = append(e.queue, ev)
	e.up(len(e.queue) - 1)
}

// ScheduleDelta enqueues fn to run delta cycles after the current cycle.
func (e *Engine) ScheduleDelta(delta uint64, fn Handler) {
	e.Schedule(e.now+delta, fn)
}

// RunCycle advances the clock one cycle: due events fire first (in (cycle,
// schedule-order) order), then every ticking component ticks in
// registration order. This mirrors the pre-engine machine loop, where a
// cycle's memory responses were visible to the stages ticked in that cycle.
func (e *Engine) RunCycle() {
	e.now++
	for len(e.queue) > 0 && e.queue[0].at <= e.now {
		fn := e.queue[0].fn
		e.pop()
		e.events++
		fn(e.now)
	}
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
}

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// Components returns the registered components in registration order.
func (e *Engine) Components() []Component { return e.components }

// CaptureAll captures every StateCapturer component in registration order.
// prior, when non-nil, must be a slice returned by an earlier CaptureAll on
// an engine with the same registration sequence; its tokens are offered
// back to each component for buffer reuse.
func (e *Engine) CaptureAll(prior []any) []any {
	out := prior
	if out == nil {
		out = make([]any, len(e.capturers))
	}
	if len(out) != len(e.capturers) {
		panic(fmt.Sprintf("engine: CaptureAll with %d prior tokens for %d capturers",
			len(out), len(e.capturers)))
	}
	for i, c := range e.capturers {
		out[i] = c.CaptureState(out[i])
	}
	return out
}

// RestoreAll rewinds every StateCapturer component from a CaptureAll
// result, in registration order.
func (e *Engine) RestoreAll(states []any) {
	if len(states) != len(e.capturers) {
		panic(fmt.Sprintf("engine: RestoreAll with %d tokens for %d capturers",
			len(states), len(e.capturers)))
	}
	for i, c := range e.capturers {
		c.RestoreState(states[i])
	}
}

// Stats returns the engine's activity counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Cycles:     e.now,
		Events:     e.events,
		Components: make([]ComponentStats, len(e.components)),
	}
	for i, c := range e.components {
		// Every ticker ticks exactly once per RunCycle (the component set
		// is frozen at start), so per-component tick counts are derived
		// rather than counted in the hot loop.
		var ticks uint64
		if _, ok := c.(Ticker); ok {
			ticks = e.now
		}
		st.Components[i] = ComponentStats{Name: c.Name(), Ticks: ticks}
	}
	return st
}

// heap helpers: a hand-rolled binary heap over (at, seq) keeps the hot
// RunCycle path free of interface calls and container/heap allocations.

func (e *Engine) less(i, j int) bool {
	a, b := e.queue[i], e.queue[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			return
		}
		e.queue[i], e.queue[parent] = e.queue[parent], e.queue[i]
		i = parent
	}
}

func (e *Engine) pop() {
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue[n] = event{}
	e.queue = e.queue[:n]
	if n > 0 {
		e.down(0)
	}
}

func (e *Engine) down(i int) {
	n := len(e.queue)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && e.less(l, smallest) {
			smallest = l
		}
		if r < n && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		e.queue[i], e.queue[smallest] = e.queue[smallest], e.queue[i]
		i = smallest
	}
}
