package engine

import (
	"fmt"
	"reflect"
	"testing"
)

// recorder is a minimal ticking component that logs its ticks into a shared
// trace so tests can assert global ordering.
type recorder struct {
	name  string
	trace *[]string
	state int
}

func (r *recorder) Name() string { return r.name }

func (r *recorder) Tick(cycle uint64) {
	*r.trace = append(*r.trace, fmt.Sprintf("%s@%d", r.name, cycle))
}

func (r *recorder) CaptureState(prior any) any { return r.state }

func (r *recorder) RestoreState(state any) { r.state = state.(int) }

func TestSameCycleEventsFireInScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	// Schedule out of push order on purpose: insertion sequence, not heap
	// layout, must decide same-cycle ordering.
	e.Schedule(3, func(uint64) { got = append(got, 0) })
	e.Schedule(3, func(uint64) { got = append(got, 1) })
	e.Schedule(2, func(uint64) { got = append(got, 2) })
	e.Schedule(3, func(uint64) { got = append(got, 3) })
	for i := 0; i < 3; i++ {
		e.RunCycle()
	}
	want := []int{2, 0, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event order = %v, want %v", got, want)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", e.Pending())
	}
}

func TestEventsFireBeforeTicksAndTickersInRegistrationOrder(t *testing.T) {
	e := New()
	var trace []string
	a := &recorder{name: "a", trace: &trace}
	b := &recorder{name: "b", trace: &trace}
	e.Register(a)
	e.Register(b)
	e.Schedule(1, func(cycle uint64) { trace = append(trace, fmt.Sprintf("ev@%d", cycle)) })
	e.RunCycle()
	e.RunCycle()
	want := []string{"ev@1", "a@1", "b@1", "a@2", "b@2"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestLateEventFiresNextCycle(t *testing.T) {
	e := New()
	var fired []uint64
	e.RunCycle()                                                       // now = 1
	e.Schedule(1, func(cycle uint64) { fired = append(fired, cycle) }) // already past
	e.Schedule(0, func(cycle uint64) { fired = append(fired, cycle) })
	e.RunCycle() // now = 2: both overdue events fire here
	if !reflect.DeepEqual(fired, []uint64{2, 2}) {
		t.Fatalf("fired = %v, want [2 2]", fired)
	}
}

func TestRegisterAfterStartPanics(t *testing.T) {
	e := New()
	e.RunCycle()
	defer func() {
		if recover() == nil {
			t.Fatal("Register after RunCycle did not panic")
		}
	}()
	var trace []string
	e.Register(&recorder{name: "late", trace: &trace})
}

func TestPortRoundTrip(t *testing.T) {
	e := New()
	var trace []string
	a := &recorder{name: "a", trace: &trace}
	b := &recorder{name: "b", trace: &trace}
	pa := NewPort(e, a, "Out")
	pb := NewPort(e, b, "In")
	Connect(pa, pb)

	if pa.Name() != "a.Out" || pb.Name() != "b.In" {
		t.Fatalf("port names = %q, %q", pa.Name(), pb.Name())
	}
	if pa.Peer() != pb || pb.Peer() != pa {
		t.Fatal("ports not peered")
	}

	pa.Send("req", 3)
	if pb.Pending() != 0 {
		t.Fatal("message visible before latency elapsed")
	}
	e.RunCycle()
	e.RunCycle()
	if pb.Pending() != 0 {
		t.Fatalf("message arrived early at cycle %d", e.Now())
	}
	e.RunCycle() // cycle 3: delivery
	if pb.Pending() != 1 {
		t.Fatalf("Pending() = %d at delivery cycle", pb.Pending())
	}
	if got := pb.Retrieve(); got != "req" {
		t.Fatalf("Retrieve() = %v, want req", got)
	}
	if pb.Retrieve() != nil {
		t.Fatal("Retrieve() on empty port != nil")
	}

	// Zero-delay send delivers next cycle, never same-cycle.
	pb.Send("resp", 0)
	if pa.Pending() != 0 {
		t.Fatal("zero-delay send visible same cycle")
	}
	e.RunCycle()
	if got := pa.Retrieve(); got != "resp" {
		t.Fatalf("Retrieve() = %v, want resp", got)
	}
}

func TestPortFIFOOrder(t *testing.T) {
	e := New()
	var trace []string
	a := &recorder{name: "a", trace: &trace}
	b := &recorder{name: "b", trace: &trace}
	pa := NewPort(e, a, "Out")
	pb := NewPort(e, b, "In")
	Connect(pa, pb)

	// Different latencies interleave: arrival order, then send order.
	pa.Send("late", 2)
	pa.Send("early", 1)
	pa.Send("also-early", 1)
	e.RunCycle()
	e.RunCycle()
	var got []any
	for pb.Pending() > 0 {
		got = append(got, pb.Retrieve())
	}
	want := []any{"early", "also-early", "late"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delivery order = %v, want %v", got, want)
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	e := New()
	var trace []string
	a := &recorder{name: "a", trace: &trace, state: 10}
	b := &recorder{name: "b", trace: &trace, state: 20}
	e.Register(a)
	e.Register(b)

	snap := e.CaptureAll(nil)
	a.state, b.state = 99, 98
	snap = e.CaptureAll(snap) // re-capture with buffer reuse path
	a.state, b.state = 1, 2
	e.RestoreAll(snap)
	if a.state != 99 || b.state != 98 {
		t.Fatalf("restored state = %d, %d; want 99, 98", a.state, b.state)
	}
}

func TestStatsCountCyclesEventsTicks(t *testing.T) {
	e := New()
	var trace []string
	a := &recorder{name: "a", trace: &trace}
	e.Register(a)
	e.Schedule(1, func(uint64) {})
	e.Schedule(2, func(uint64) {})
	for i := 0; i < 4; i++ {
		e.RunCycle()
	}
	st := e.Stats()
	if st.Cycles != 4 || st.Events != 2 {
		t.Fatalf("Stats = %+v, want Cycles 4 Events 2", st)
	}
	if len(st.Components) != 1 || st.Components[0].Name != "a" || st.Components[0].Ticks != 4 {
		t.Fatalf("component stats = %+v", st.Components)
	}
}

// TestEngineDeterminism is the in-package half of the mgpusim-style gate:
// the same build+run sequence executed twice must produce identical
// observable traces.
func TestEngineDeterminism(t *testing.T) {
	run := func() []string {
		e := New()
		var trace []string
		comps := make([]*recorder, 5)
		for i := range comps {
			comps[i] = &recorder{name: fmt.Sprintf("c%d", i), trace: &trace}
			e.Register(comps[i])
		}
		// A self-rescheduling event chain mixed with ticks.
		var chain Handler
		chain = func(cycle uint64) {
			trace = append(trace, fmt.Sprintf("chain@%d", cycle))
			if cycle < 40 {
				e.Schedule(cycle+3, chain)
			}
		}
		e.Schedule(2, chain)
		for i := 0; i < 50; i++ {
			e.RunCycle()
		}
		return trace
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("identical engine runs diverged")
	}
}
