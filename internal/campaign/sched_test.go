package campaign

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"avgi/internal/cpu"
	"avgi/internal/fault"
	"avgi/internal/obs"
	"avgi/internal/prog"
	"avgi/internal/trace"
)

func newTestRunner(t *testing.T, cfg cpu.Config, workload string) *Runner {
	t.Helper()
	w, err := prog.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(cfg, w.Build(cfg.Variant))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBudgetCapAndOccupancy(t *testing.T) {
	b := NewBudget(3)
	if b.Cap() != 3 || b.InUse() != 0 {
		t.Fatalf("fresh budget: cap %d inUse %d", b.Cap(), b.InUse())
	}
	b.Acquire()
	b.Acquire()
	if b.InUse() != 2 {
		t.Fatalf("inUse = %d after two acquires", b.InUse())
	}
	b.Release()
	b.Release()
	if b.InUse() != 0 {
		t.Fatalf("inUse = %d after release", b.InUse())
	}
	if NewBudget(0).Cap() < 1 {
		t.Error("workers <= 0 must default to at least one CPU")
	}
}

// TestBudgetGaugeRaceFree is the regression test for the stale-gauge race:
// Acquire/Release used to compute n and Set(n) non-atomically, so an
// interleaved release's stale value could overwrite a newer one and leave
// the busy gauge permanently wrong after the budget drained. With atomic
// gauge deltas the final value must be exactly zero under any
// interleaving.
func TestBudgetGaugeRaceFree(t *testing.T) {
	b := NewBudget(4)
	g := &obs.Gauge{}
	b.SetGauge(g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Acquire()
				b.Release()
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Errorf("busy gauge = %v after the budget drained, want exactly 0", v)
	}
	if b.InUse() != 0 {
		t.Errorf("inUse = %d after drain", b.InUse())
	}
}

// TestBudgetCarveCapsShare proves the carve invariants: a carved child can
// never hold more than its own cap of the parent, the parent's capacity
// bounds the sum over children, and draining a child returns every slot to
// both levels.
func TestBudgetCarveCapsShare(t *testing.T) {
	parent := NewBudget(4)
	a := parent.Carve(3)
	if a.Cap() != 3 {
		t.Fatalf("carved cap = %d, want 3", a.Cap())
	}
	if c := parent.Carve(0).Cap(); c != 4 {
		t.Errorf("Carve(0) cap = %d, want full parent capacity 4", c)
	}
	if c := parent.Carve(99).Cap(); c != 4 {
		t.Errorf("Carve(99) cap = %d, want clamped to parent capacity 4", c)
	}
	a.Acquire()
	a.Acquire()
	a.Acquire()
	if a.InUse() != 3 || parent.InUse() != 3 {
		t.Fatalf("after saturating the child: child %d / parent %d in use", a.InUse(), parent.InUse())
	}
	// The fourth child acquire must block (child cap), even though the
	// parent still has a free slot; probe without deadlocking the test.
	acquired := make(chan struct{})
	go func() { a.Acquire(); close(acquired) }()
	select {
	case <-acquired:
		t.Fatal("child acquired past its carved cap")
	case <-time.After(50 * time.Millisecond):
	}
	a.Release()
	<-acquired // the blocked acquire claims the freed slot
	for i := 0; i < 3; i++ {
		a.Release()
	}
	if a.InUse() != 0 || parent.InUse() != 0 {
		t.Errorf("after drain: child %d / parent %d in use", a.InUse(), parent.InUse())
	}
}

// TestBudgetCarveNoStarvation is the fairness acceptance test: with the
// global budget saturated by one tenant's long-running campaign, a second
// tenant's carved budget must still make progress, because the first
// tenant's carve cap leaves at least one global slot unclaimable by it.
func TestBudgetCarveNoStarvation(t *testing.T) {
	global := NewBudget(2)
	big := global.Carve(1)   // the 100k-fault tenant: at most 1 of 2 slots
	small := global.Carve(1) // the cache-miss tenant

	// Tenant "big" saturates its carve and keeps the slot for the whole
	// test — the worst case short of a leak.
	big.Acquire()
	// More queued work from the same tenant blocks on its own carve, not
	// on the global budget.
	blocked := make(chan struct{})
	go func() { big.Acquire(); close(blocked) }()

	// The small tenant must acquire promptly despite the pressure.
	done := make(chan struct{})
	go func() {
		small.Acquire()
		small.Release()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("small tenant starved: big tenant's queued work blocked the global budget")
	}
	select {
	case <-blocked:
		t.Fatal("big tenant exceeded its carved share")
	default:
	}
	big.Release() // unblock the queued acquire so the goroutine exits
	<-blocked
	big.Release()
}

// TestRunBudgetCarvedByteIdentical runs a campaign under a carved tenant
// budget and checks results are byte-identical to a plain serial run —
// chunk geometry follows the carved cap, and geometry never changes
// outcomes.
func TestRunBudgetCarvedByteIdentical(t *testing.T) {
	r := newTestRunner(t, cpu.ConfigA72(), "crc32")
	faults := r.FaultList("RF", 24, 5)
	serial := r.Run(faults, ModeHVF, 0, 1)
	global := NewBudget(4)
	carved := global.Carve(2)
	got := r.RunBudget(faults, ModeHVF, 0, carved)
	if !reflect.DeepEqual(serial, got) {
		t.Error("carved-budget results diverge from serial execution")
	}
	if carved.InUse() != 0 || global.InUse() != 0 {
		t.Errorf("budgets not drained: carved %d global %d", carved.InUse(), global.InUse())
	}
}

// TestRunBudgetSharedAcrossCampaigns drives two campaigns of one runner
// concurrently through a single shared budget and checks both that the
// combined worker count never exceeds the budget and that results are
// byte-identical to plain serial Run calls — the determinism guarantee the
// study scheduler relies on.
func TestRunBudgetSharedAcrossCampaigns(t *testing.T) {
	cfg := cpu.ConfigA72()
	r := newTestRunner(t, cfg, "sha")
	rf := r.FaultList("RF", 40, 3)
	rob := r.FaultList("ROB", 40, 3)

	serialRF := r.Run(rf, ModeHVF, 0, 2)
	serialROB := r.Run(rob, ModeHVF, 0, 2)

	b := NewBudget(2)
	var concRF, concROB []Result
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); concRF = r.RunBudget(rf, ModeHVF, 0, b) }()
	go func() { defer wg.Done(); concROB = r.RunBudget(rob, ModeHVF, 0, b) }()
	wg.Wait()

	if b.InUse() != 0 {
		t.Errorf("budget not drained: %d in use", b.InUse())
	}
	if !reflect.DeepEqual(serialRF, concRF) {
		t.Error("RF results diverge between serial Run and shared-budget RunBudget")
	}
	if !reflect.DeepEqual(serialROB, concROB) {
		t.Error("ROB results diverge between serial Run and shared-budget RunBudget")
	}
}

// TestMultiBitBoundaryNoWrap is the regression test for the wrap-around
// injection bug: a multi-bit fault whose start bit sits at the very top of
// the array must flip only in-array neighbours (never bit 0), on both the
// 64-bit and 32-bit machine models.
func TestMultiBitBoundaryNoWrap(t *testing.T) {
	for _, cfg := range []cpu.Config{cpu.ConfigA72(), cpu.ConfigA15()} {
		r := newTestRunner(t, cfg, "bitcount")
		for _, structure := range []string{"RF", "ROB", "L1D (Data)"} {
			const width = 4
			bits := r.BitCounts[structure]
			// Generated lists must respect the cap...
			for _, f := range r.MultiBitFaultList(structure, 200, width, 11) {
				if f.Bit+uint64(f.Bits()) > bits {
					t.Fatalf("%s/%s: generated fault %s wraps (array %d bits)",
						cfg.Name, structure, f, bits)
				}
			}
			// ...and the extreme legal placement must inject cleanly.
			top := fault.Fault{
				Structure: structure,
				Bit:       bits - width,
				Cycle:     r.Golden.Cycles / 2,
				Width:     width,
			}
			res := r.Run([]fault.Fault{top}, ModeHVF, 0, 1)
			if len(res) != 1 {
				t.Fatalf("%s/%s: boundary fault produced %d results", cfg.Name, structure, len(res))
			}
		}
	}
}

func TestInjectWrappingFaultPanics(t *testing.T) {
	r := newTestRunner(t, cpu.ConfigA72(), "bitcount")
	bits := r.BitCounts["RF"]
	wrap := fault.Fault{Structure: "RF", Bit: bits - 1, Cycle: 100, Width: 2}
	// Call the injection half directly (not via Run, whose worker
	// goroutine would turn the panic into a process abort).
	m := cpu.New(r.Cfg, r.Prog)
	defer func() {
		if recover() == nil {
			t.Error("injecting a wrapping multi-bit fault must panic")
		}
	}()
	var cmp trace.Comparator
	cmp.Golden = r.Golden.Trace
	r.injectAndObserve(m, wrap, ModeHVF, 0, &cmp)
}
