package campaign

import (
	"bytes"
	"testing"

	"avgi/internal/cpu"
	"avgi/internal/imm"
	"avgi/internal/prog"
)

func shaClusterRunner(t *testing.T, cores int) *Runner {
	t.Helper()
	w, err := prog.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.ConfigA72()
	r, err := NewRunnerCores(cfg, w.Build(cfg.Variant), cores)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestClusterRunnerGolden(t *testing.T) {
	single := shaRunner(t)
	r := shaClusterRunner(t, 2)

	if r.Cores != 2 {
		t.Fatalf("Cores = %d", r.Cores)
	}
	// Cluster output is both cores' sha digests back to back.
	want := append(append([]byte(nil), single.Golden.Output...), single.Golden.Output...)
	if !bytes.Equal(r.Golden.Output, want) {
		t.Fatalf("cluster golden output %d bytes, want %d matching two digests",
			len(r.Golden.Output), len(want))
	}
	if r.Golden.Commits != 2*single.Golden.Commits {
		t.Errorf("cluster commits %d, want %d", r.Golden.Commits, 2*single.Golden.Commits)
	}
	// Targets are core-prefixed: 12 structures per core.
	if len(r.BitCounts) != 24 {
		t.Errorf("bit counts for %d structures, want 24", len(r.BitCounts))
	}
	if r.BitCounts["c0/RF"] == 0 || r.BitCounts["c1/RF"] == 0 {
		t.Error("missing per-core RF bit counts")
	}
	// Per-core goldens carry each core's own trace and output.
	if len(r.CoreGolden) != 2 {
		t.Fatalf("CoreGolden len %d", len(r.CoreGolden))
	}
	for k, g := range r.CoreGolden {
		if len(g.Trace) != int(g.Commits) {
			t.Errorf("core %d: trace %d records, commits %d", k, len(g.Trace), g.Commits)
		}
		if !bytes.Equal(g.Output, single.Golden.Output) {
			t.Errorf("core %d golden output differs from single-core run", k)
		}
	}
}

func TestClusterRunnerDelegatesSingleCore(t *testing.T) {
	w, err := prog.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.ConfigA72()
	r, err := NewRunnerCores(cfg, w.Build(cfg.Variant), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 0 || r.Golden.Trace == nil || r.CoreGolden != nil {
		t.Fatalf("cores=1 should build a plain single-core runner, got Cores=%d", r.Cores)
	}
}

func TestClusterCampaignInjectsEitherCore(t *testing.T) {
	r := shaClusterRunner(t, 2)
	for _, structure := range []string{"c0/RF", "c1/RF"} {
		fs := r.FaultList(structure, 25, 1)
		results := r.Run(fs, ModeExhaustive, 0, 4)
		s := Summarize(results)
		if s.Total != 25 {
			t.Fatalf("%s: total %d", structure, s.Total)
		}
		if s.ByEffect[imm.Masked]+s.ByEffect[imm.SDC]+s.ByEffect[imm.Crash] != 25 {
			t.Errorf("%s: effects don't partition: %v", structure, s.ByEffect)
		}
		for _, res := range results {
			if res.Quarantined {
				t.Fatalf("%s: quarantined fault %s: %s", structure, res.Fault, res.Err)
			}
			if !res.HasEffect {
				t.Fatalf("%s: exhaustive result without effect", structure)
			}
		}
	}
}

func TestClusterCampaignSharedL2Fault(t *testing.T) {
	r := shaClusterRunner(t, 2)
	// The L2 is one physical structure aliased under both core prefixes, so
	// the same fault list injected through either prefix must classify
	// identically (only the watched core's commit comparator differs, and
	// L2 data corruption becomes architecturally visible the same way).
	f0 := r.FaultList("c0/L2 (Data)", 20, 5)
	s0 := Summarize(r.Run(f0, ModeExhaustive, 0, 2))
	if s0.Total != 20 || s0.Quarantined != 0 {
		t.Fatalf("c0/L2 campaign: %+v", s0)
	}
	f1 := r.FaultList("c1/L2 (Data)", 20, 5)
	s1 := Summarize(r.Run(f1, ModeExhaustive, 0, 2))
	if s1.Total != 20 || s1.Quarantined != 0 {
		t.Fatalf("c1/L2 campaign: %+v", s1)
	}
	// Final effects are decided from the whole-cluster output, which is the
	// same physical experiment under either prefix.
	if s0.ByEffect[imm.SDC] != s1.ByEffect[imm.SDC] ||
		s0.ByEffect[imm.Crash] != s1.ByEffect[imm.Crash] {
		t.Errorf("aliased L2 fault lists diverged: c0 %v vs c1 %v", s0.ByEffect, s1.ByEffect)
	}
}

func TestClusterCampaignDeterministicAcrossWorkers(t *testing.T) {
	r := shaClusterRunner(t, 2)
	fs := r.FaultList("c1/RF", 16, 2)
	a := r.Run(fs, ModeExhaustive, 0, 1)
	b := r.Run(fs, ModeExhaustive, 0, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs across worker counts:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestClusterCampaignHVFMode(t *testing.T) {
	r := shaClusterRunner(t, 2)
	fs := r.FaultList("c0/RF", 16, 3)
	ex := Summarize(r.Run(fs, ModeExhaustive, 0, 0))
	hv := Summarize(r.Run(fs, ModeHVF, 0, 0))
	if hv.SimCycles > ex.SimCycles {
		t.Errorf("HVF simulated more cycles (%d) than exhaustive (%d)", hv.SimCycles, ex.SimCycles)
	}
	// Stopping at the first deviation must not change what the deviation
	// was, per-core comparator or not.
	for _, c := range imm.Classes {
		if c == imm.ESC || c == imm.Benign {
			continue
		}
		if hv.ByIMM[c] != ex.ByIMM[c] {
			t.Errorf("IMM %v differs: hvf %d vs exhaustive %d", c, hv.ByIMM[c], ex.ByIMM[c])
		}
	}
}
