package campaign

import (
	"io"
	"sync"
	"testing"

	"avgi/internal/cpu"
	"avgi/internal/forensics"
	"avgi/internal/obs"
	"avgi/internal/prog"
)

// The benchmark pair below quantifies the telemetry overhead the PR
// budgets at <3%: BenchmarkCampaignRun is the nil-observer hot path,
// BenchmarkCampaignRunObserved the fully instrumented one. Compare with
//
//	go test -run=^$ -bench=BenchmarkCampaignRun ./internal/campaign/
//
// The golden run is shared across iterations; each iteration executes a
// full 64-fault AVGI-mode campaign on one worker so the per-fault
// instrumentation cost is not hidden by parallelism.

var (
	benchOnce   sync.Once
	benchRunner *Runner
)

func sharedBenchRunner(b *testing.B) *Runner {
	b.Helper()
	benchOnce.Do(func() {
		w, err := prog.ByName("sha")
		if err != nil {
			return
		}
		cfg := cpu.ConfigA72()
		benchRunner, _ = NewRunner(cfg, w.Build(cfg.Variant))
	})
	if benchRunner == nil {
		b.Fatal("bench runner setup failed")
	}
	return benchRunner
}

func benchCampaign(b *testing.B, o *obs.Observer) {
	r := sharedBenchRunner(b)
	faults := r.FaultList("RF", 64, 1)
	r.Obs = o
	defer func() { r.Obs = nil }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(faults, ModeAVGI, 2000, 1)
	}
}

func BenchmarkCampaignRun(b *testing.B) {
	benchCampaign(b, nil)
}

func BenchmarkCampaignRunObserved(b *testing.B) {
	benchCampaign(b, obs.New(io.Discard))
}

// BenchmarkCampaignRunForensics quantifies the fault-probe overhead the PR
// budgets at ≤5% with every fault probed (sample=1); compare against
// BenchmarkCampaignRun, whose nil-probe hot path must stay at 0%:
//
//	go test -run=^$ -bench='BenchmarkCampaignRun($|Forensics)' ./internal/campaign/
func BenchmarkCampaignRunForensics(b *testing.B) {
	r := sharedBenchRunner(b)
	faults := r.FaultList("RF", 64, 1)
	r.Forensics = forensics.NewExplorer()
	r.ForensicsSample = 1
	defer func() { r.Forensics = nil; r.ForensicsSample = 0 }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(faults, ModeAVGI, 2000, 1)
	}
}
