package campaign

import (
	"testing"

	"avgi/internal/cpu"
	"avgi/internal/forensics"
	"avgi/internal/imm"
)

// With -forensics at sample 1, every non-quarantined fault must carry an
// attribution, the cause counts must partition the campaign total, and the
// visible cause must coincide exactly with the architectural verdict.
func TestForensicsCoverageAndPartition(t *testing.T) {
	r := shaRunner(t)
	for _, structure := range []string{"RF", "ROB", "LQ", "SQ", "L1D (Data)", "L1D (Tag)", "DTLB"} {
		t.Run(structure, func(t *testing.T) {
			ex := forensics.NewExplorer()
			r.Forensics = ex
			r.ForensicsSample = 1
			defer func() { r.Forensics = nil; r.ForensicsSample = 0 }()
			fs := r.FaultList(structure, 40, 1)
			results := r.Run(fs, ModeExhaustive, 0, 4)

			var causes [forensics.NumCauses]uint64
			for _, res := range results {
				if res.Quarantined {
					continue
				}
				rec := res.Forensics
				if rec == nil {
					t.Fatalf("fault %v: no attribution at sample 1", res.Fault)
				}
				causes[rec.Cause]++
				visible := res.Manifested || res.IMM == imm.ESC
				if (rec.Cause == forensics.CauseVisible) != visible {
					t.Errorf("fault %v: cause %v but manifested=%v imm=%v",
						res.Fault, rec.Cause, res.Manifested, res.IMM)
				}
				if rec.Cause == forensics.CauseVisible && rec.Divergence == nil {
					t.Errorf("fault %v: visible without divergence capture", res.Fault)
				}
			}
			var sum uint64
			for _, n := range causes {
				sum += n
			}
			if sum != uint64(len(results)) {
				t.Errorf("causes sum to %d, want %d: %v", sum, len(results), causes)
			}

			// The explorer (fed by Run) must agree with the per-result tally.
			for _, e := range ex.Snapshot() {
				if e.Structure != structure {
					continue
				}
				if e.Faults != uint64(len(results)) || e.Sampled != sum {
					t.Errorf("explorer entry %+v, want faults=%d sampled=%d", e, len(results), sum)
				}
				var esum uint64
				for _, n := range e.Causes {
					esum += n
				}
				if esum != sum {
					t.Errorf("explorer causes sum %d, want %d", esum, sum)
				}
			}
		})
	}
}

// The sampling stride keys off the stable fault ID: only every Nth fault
// carries an attribution, independent of worker count.
func TestForensicsSampleStride(t *testing.T) {
	r := shaRunner(t)
	r.Forensics = forensics.NewExplorer()
	r.ForensicsSample = 3
	defer func() { r.Forensics = nil; r.ForensicsSample = 0 }()
	fs := r.FaultList("RF", 30, 1)
	results := r.Run(fs, ModeExhaustive, 0, 4)
	for _, res := range results {
		want := res.Fault.ID%3 == 0
		if got := res.Forensics != nil; got != want {
			t.Errorf("fault #%d: attribution %v, want %v", res.Fault.ID, got, want)
		}
	}
}

// With forensics off the results must be byte-identical to a forensics-on
// campaign with the attribution stripped, across fork policies: the probe
// is observation-only and the nil path is untouched.
func TestForensicsDifferentialAcrossForkPolicies(t *testing.T) {
	r := shaRunner(t)
	fs := r.FaultList("RF", 30, 5)
	for _, policy := range []ForkPolicy{ForkCursor, ForkSnapshot, ForkLegacyClone} {
		r.ForkPolicy = policy
		base := r.Run(fs, ModeExhaustive, 0, 2)

		r.Forensics = forensics.NewExplorer()
		r.ForensicsSample = 1
		probed := r.Run(fs, ModeExhaustive, 0, 2)
		r.Forensics = nil
		r.ForensicsSample = 0

		for i := range base {
			stripped := probed[i]
			stripped.Forensics = nil
			if stripped != base[i] {
				t.Errorf("policy %v fault %d: results differ\noff: %+v\non:  %+v",
					policy, i, base[i], probed[i])
			}
		}
	}
	r.ForkPolicy = ForkCursor
}

// ESC faults (corruption escaping through a dirty line without a commit
// deviation) must attribute as visible with an "escape" divergence. The
// escProgram scenario (esc_test.go) guarantees escapes in the sample.
func TestForensicsESCAttribution(t *testing.T) {
	cfg := cpu.ConfigA72()
	r, err := NewRunner(cfg, escProgram(cfg))
	if err != nil {
		t.Fatal(err)
	}
	r.Forensics = forensics.NewExplorer()
	r.ForensicsSample = 1
	results := r.Run(r.FaultList("L1D (Data)", 200, 77), ModeExhaustive, 0, 0)
	var escs int
	for _, res := range results {
		if res.IMM != imm.ESC {
			continue
		}
		escs++
		rec := res.Forensics
		if rec == nil || rec.Cause != forensics.CauseVisible {
			t.Fatalf("ESC fault %v attributed %+v", res.Fault, rec)
		}
		if rec.Divergence == nil || rec.Divergence.Kind != "escape" {
			t.Errorf("ESC fault %v divergence %+v", res.Fault, rec.Divergence)
		}
	}
	if escs == 0 {
		t.Fatal("no ESC faults in the escProgram sample")
	}
}
