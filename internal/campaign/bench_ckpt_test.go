package campaign

import (
	"testing"

	"avgi/internal/cpu"
)

// The benchmarks below quantify the checkpoint subsystem against the
// legacy deep-clone fork path it replaced (see docs/CHECKPOINTING.md).
// The first pair isolates the fork primitive itself — bytes allocated
// and time per fork — and the second pair measures the end-to-end
// campaign throughput difference in faults per second:
//
//	go test -run=^$ -bench='Fork|CampaignPRF' -benchmem ./internal/campaign/
//
// Numbers from this machine are recorded in BENCH_checkpoint.json at the
// repo root.

// BenchmarkForkLegacyClone measures the old per-fault fork: a full deep
// copy of a mid-run mother machine, including its RAM image, caches,
// TLBs and every pipeline structure.
func BenchmarkForkLegacyClone(b *testing.B) {
	r := sharedBenchRunner(b)
	mother := cpu.New(r.Cfg, r.Prog)
	mother.Run(cpu.RunOptions{StopAtCycle: r.Golden.Cycles / 2, MaxCycles: r.RunawayLimit()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mother.Clone()
		_ = m
	}
}

// BenchmarkForkSnapshot measures the new per-fault fork: rewinding one
// pooled scratch machine from a shared snapshot. The scratch machine's
// buffers are reused across restores and the snapshot's RAM pages are
// shared copy-on-write, so the steady-state fork is nearly allocation
// free.
func BenchmarkForkSnapshot(b *testing.B) {
	r := sharedBenchRunner(b)
	src := cpu.New(r.Cfg, r.Prog)
	src.Run(cpu.RunOptions{StopAtCycle: r.Golden.Cycles / 2, MaxCycles: r.RunawayLimit()})
	snap := src.Snapshot(nil)
	scratch := cpu.New(r.Cfg, r.Prog)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Restore(snap)
	}
}

// benchCampaignPRF runs a full register-file campaign under one fork
// policy and reports end-to-end throughput in faults per second. The
// checkpoint store is built once per runner (sync.Once), so like real
// studies the snapshot numbers amortize recording across campaigns.
func benchCampaignPRF(b *testing.B, policy ForkPolicy) {
	r := sharedBenchRunner(b)
	prev := r.ForkPolicy
	r.ForkPolicy = policy
	defer func() { r.ForkPolicy = prev }()
	const perIter = 256
	faults := r.FaultList("RF", perIter, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(faults, ModeExhaustive, 0, 4)
	}
	b.StopTimer()
	b.ReportMetric(float64(perIter*b.N)/b.Elapsed().Seconds(), "faults/s")
}

func BenchmarkCampaignPRFOld(b *testing.B) { benchCampaignPRF(b, ForkLegacyClone) }

func BenchmarkCampaignPRFNew(b *testing.B) { benchCampaignPRF(b, ForkSnapshot) }
