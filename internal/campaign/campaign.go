// Package campaign executes statistical fault-injection campaigns over the
// machine model: the golden (fault-free) reference run, and per-fault runs
// in the three observation modes the paper compares —
//
//   - ModeExhaustive: the traditional accelerated SFI flow; every run
//     continues to the end of the program so Masked/SDC/Crash can be
//     decided from the output (Section IV.B baseline).
//   - ModeHVF: stop at the first commit-trace deviation (the HVF
//     measurement of Section III used to extract IMM distributions —
//     the paper's Insights 1&2).
//   - ModeAVGI: stop at the first deviation or at the structure's
//     effective-residency-time window, whichever is first (Insight 3).
//
// All modes share the same checkpointing acceleration, selected by the
// runner's ForkPolicy. The default (ForkSnapshot) records interval
// checkpoints along the golden run into a shared read-only ckpt.Store;
// each worker rewinds a pooled scratch machine to the nearest checkpoint
// at or before a fault's injection cycle, so pre-injection simulation is
// amortized across the whole campaign. ForkLegacyClone keeps the previous
// flow — a per-worker golden "mother" machine advancing monotonically
// through the (cycle-sorted) fault list with a deep clone per fault — and
// exists as the differential-testing baseline.
package campaign

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"avgi/internal/asm"
	"avgi/internal/ckpt"
	"avgi/internal/cpu"
	"avgi/internal/fault"
	"avgi/internal/imm"
	"avgi/internal/obs"
	"avgi/internal/trace"
)

// Mode selects how far a faulty run is simulated.
type Mode uint8

const (
	// ModeExhaustive runs to the end of the program (traditional SFI).
	ModeExhaustive Mode = iota
	// ModeHVF stops at the first commit-trace deviation.
	ModeHVF
	// ModeAVGI stops at the first deviation or the ERT window.
	ModeAVGI
)

func (m Mode) String() string {
	switch m {
	case ModeExhaustive:
		return "exhaustive"
	case ModeHVF:
		return "hvf"
	case ModeAVGI:
		return "avgi"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ForkPolicy selects how a faulty run is forked off the golden prefix.
type ForkPolicy uint8

const (
	// ForkSnapshot (the default) seeks a shared interval checkpoint and
	// rewinds a pooled scratch machine in place.
	ForkSnapshot ForkPolicy = iota
	// ForkLegacyClone deep-copies a per-worker mother machine per fault
	// (the pre-checkpoint-subsystem flow, kept as a baseline).
	ForkLegacyClone
)

func (p ForkPolicy) String() string {
	switch p {
	case ForkSnapshot:
		return "snapshot"
	case ForkLegacyClone:
		return "clone"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Runaway guard for faulty runs: a corrupted machine can livelock (e.g. a
// clobbered loop counter that never reaches its bound), so every faulty
// run carries an absolute cycle budget of
//
//	RunawayFactor × golden cycles + RunawayGraceCycles.
//
// The factor covers slowdowns proportional to program length (extra
// misses, mispredicted paths); the additive grace covers short programs
// whose doubled golden length would still be tiny. Runs that hit the
// budget are classified as crashes (StatusCycleLimit), matching the
// hang/timeout detector of real injection rigs.
const (
	// DefaultRunawayFactor multiplies the golden cycle count.
	DefaultRunawayFactor = 2
	// RunawayGraceCycles is the additive slack on top of the factor.
	RunawayGraceCycles = 100_000
)

// Golden holds the fault-free reference run.
type Golden struct {
	Trace   []trace.Record
	Cycles  uint64
	Commits uint64
	Output  []byte
}

// Result is the outcome of one injected fault.
type Result struct {
	Fault fault.Fault

	// IMM is the manifestation class (Benign if the fault never became
	// architecturally visible within the observed window).
	IMM imm.IMM

	// Effect is the end-to-end fault effect; valid only when HasEffect
	// (ModeExhaustive runs).
	Effect    imm.Effect
	HasEffect bool

	// Manifested reports a commit-trace deviation; ManifestLatency is
	// the distance in cycles from injection to that deviation.
	Manifested      bool
	ManifestLatency uint64

	// SimCycles is the number of post-injection cycles simulated — the
	// cost this fault contributes to the campaign under the run's mode.
	SimCycles uint64

	// Crash records how a crashed run died.
	Crash cpu.CrashKind
}

// Runner executes campaigns for one (machine config, workload) pair.
type Runner struct {
	Cfg  cpu.Config
	Prog *asm.Program

	Golden Golden

	// BitCounts maps structure name to its injectable bit count.
	BitCounts map[string]uint64

	// OutputExposure is the golden run's dirty-output occupancy fraction
	// per ESC-capable cache array — the runtime profile the ESC
	// predictor consumes (Section IV.D's "fast runtime profiling").
	OutputExposure map[string]float64

	// Obs, when non-nil, receives telemetry from every campaign run: a
	// span per campaign, per-fault sim-cycle and wall-time histograms,
	// machine-stat counters, and live progress events. Nil (the default)
	// keeps the hot path entirely uninstrumented.
	Obs *obs.Observer

	// ForkPolicy selects the fork mechanism (default ForkSnapshot).
	ForkPolicy ForkPolicy

	// CheckpointInterval is the spacing in cycles between golden-run
	// checkpoints under ForkSnapshot; 0 derives it from the golden length
	// (ckpt.DefaultInterval).
	CheckpointInterval uint64

	// RunawayFactor overrides DefaultRunawayFactor for the faulty-run
	// cycle budget; 0 uses the default.
	RunawayFactor uint64

	// ckptOnce lazily records the checkpoint store on first snapshot-mode
	// Run, so legacy-only and fault-list-only uses never pay for it.
	ckptOnce sync.Once
	store    *ckpt.Store
	pool     *ckpt.Pool
}

// RunawayLimit returns the absolute cycle budget for faulty runs (see
// DefaultRunawayFactor).
func (r *Runner) RunawayLimit() uint64 {
	factor := r.RunawayFactor
	if factor == 0 {
		factor = DefaultRunawayFactor
	}
	return r.Golden.Cycles*factor + RunawayGraceCycles
}

// checkpoints lazily records the shared checkpoint store and fork pool.
func (r *Runner) checkpoints() (*ckpt.Store, *ckpt.Pool) {
	r.ckptOnce.Do(func() {
		r.store = ckpt.Record(r.Cfg, r.Prog, r.Golden.Cycles, r.CheckpointInterval)
		r.pool = ckpt.NewPool(r.Cfg, r.Prog)
		if r.Obs.Enabled() && r.Obs.Metrics != nil {
			lb := map[string]string{"workload": r.Prog.Name, "machine": r.Cfg.Name}
			r.Obs.Metrics.Gauge("avgi_ckpt_checkpoints",
				"interval checkpoints recorded along the golden run", lb).
				Set(float64(r.store.Count()))
			r.Obs.Metrics.Gauge("avgi_ckpt_snapshot_bytes",
				"total bytes captured across the checkpoint store", lb).
				Set(float64(r.store.Bytes()))
			r.Obs.Metrics.Gauge("avgi_ckpt_interval_cycles",
				"checkpoint spacing in cycles", lb).
				Set(float64(r.store.Interval()))
		}
	})
	return r.store, r.pool
}

// NewRunner performs the golden run and prepares the campaign state.
func NewRunner(cfg cpu.Config, p *asm.Program) (*Runner, error) {
	m := cpu.New(cfg, p)
	var cap trace.Capture
	m.SetSink(&cap)
	m.EnableOutputProfiling(p.OutLenAddr, p.RAMSize, 64)
	res := m.Run(cpu.RunOptions{MaxCycles: 50_000_000})
	if res.Status != cpu.StatusHalted {
		return nil, fmt.Errorf("campaign: golden run of %s ended %v (crash %v) after %d cycles",
			p.Name, res.Status, res.Crash, res.Cycles)
	}
	bits := make(map[string]uint64)
	for name, tg := range m.Targets() {
		bits[name] = tg.BitCount()
	}
	r := &Runner{
		Cfg:  cfg,
		Prog: p,
		Golden: Golden{
			Trace:   cap.Records,
			Cycles:  res.Cycles,
			Commits: res.Commits,
			Output:  res.Output,
		},
		BitCounts: bits,
	}
	r.OutputExposure = r.computeExposure(m)
	return r, nil
}

// computeExposure folds the golden run's dirty-output time series into one
// exposure fraction per ESC-capable cache array. Each sample's dirty-line
// occupancy is weighted by the fraction of output locations already in
// their final state at that cycle — corruption of output data that will
// still be overwritten cannot escape, which matters for workloads (like
// qsort) that compute in place inside the output region.
func (r *Runner) computeExposure(m *cpu.Machine) map[string]float64 {
	exposure := map[string]float64{
		"L1D (Tag)": 0, "L1D (Data)": 0, "L2 (Tag)": 0, "L2 (Data)": 0,
	}
	cycles, l1d, l2 := m.OutputProfile()
	if len(cycles) == 0 {
		return exposure
	}
	// Final-store cycle per output location, from the golden trace.
	finals := make(map[uint64]uint64)
	for _, rec := range r.Golden.Trace {
		if rec.IsStore && rec.Addr >= r.Prog.OutLenAddr {
			finals[rec.Addr] = rec.Cycle
		}
	}
	finalCycles := make([]uint64, 0, len(finals))
	for _, c := range finals {
		finalCycles = append(finalCycles, c)
	}
	sort.Slice(finalCycles, func(i, j int) bool { return finalCycles[i] < finalCycles[j] })

	// w(t) = fraction of output locations final by cycle t.
	w := func(t uint64) float64 {
		if len(finalCycles) == 0 {
			return 0
		}
		idx := sort.Search(len(finalCycles), func(i int) bool { return finalCycles[i] > t })
		return float64(idx) / float64(len(finalCycles))
	}

	var sumL1D, sumL2 float64
	for i, t := range cycles {
		wt := w(t)
		sumL1D += float64(l1d[i]) * wt
		sumL2 += float64(l2[i]) * wt
	}
	n := float64(len(cycles))
	fracL1D := sumL1D / n / float64(m.Mem.L1D.Lines())
	fracL2 := sumL2 / n / float64(m.Mem.L2.Lines())
	exposure["L1D (Tag)"] = fracL1D
	exposure["L1D (Data)"] = fracL1D
	exposure["L2 (Tag)"] = fracL2
	exposure["L2 (Data)"] = fracL2
	return exposure
}

// mustStructure panics with a descriptive message for structure names the
// machine cannot inject into. Before this check, a misspelt name silently
// produced a zero bit count and therefore an empty fault list.
func (r *Runner) mustStructure(structure string) {
	if _, ok := r.BitCounts[structure]; ok {
		return
	}
	if err := cpu.ValidateStructure(structure); err != nil {
		panic("campaign: " + err.Error())
	}
	panic(fmt.Sprintf("campaign: structure %q has no injectable bits on machine %s",
		structure, r.Cfg.Name))
}

// FaultList generates the statistical fault list for one structure using
// the runner's golden cycle count as the temporal population. It panics on
// unknown structure names.
func (r *Runner) FaultList(structure string, n int, seedBase int64) []fault.Fault {
	r.mustStructure(structure)
	faults := fault.List(structure, n, r.BitCounts[structure], r.Golden.Cycles,
		fault.Seed(structure, r.Prog.Name, seedBase))
	r.assertTemporal(faults)
	return faults
}

// MultiBitFaultList generates a statistical list of spatial multi-bit
// faults (width adjacent bits) for one structure. It panics on unknown
// structure names.
func (r *Runner) MultiBitFaultList(structure string, n, width int, seedBase int64) []fault.Fault {
	r.mustStructure(structure)
	faults := fault.ListMultiBit(structure, n, width, r.BitCounts[structure], r.Golden.Cycles,
		fault.Seed(structure, r.Prog.Name, seedBase))
	r.assertTemporal(faults)
	return faults
}

// assertTemporal enforces the temporal-sampling invariant: every injection
// cycle lies in [1, golden cycles]. A cycle outside the population would
// silently inject into a halted (or never-reached) machine state and bias
// the campaign, so it is a programming error, not a recoverable condition.
func (r *Runner) assertTemporal(faults []fault.Fault) {
	for _, f := range faults {
		if f.Cycle < 1 || f.Cycle > r.Golden.Cycles {
			panic(fmt.Sprintf("campaign: fault %d cycle %d outside golden population [1, %d]",
				f.ID, f.Cycle, r.Golden.Cycles))
		}
	}
}

// Run executes a fault list in the given mode. ert is the
// effective-residency-time stop window in cycles (ModeAVGI only; ignored
// otherwise). workers <= 0 uses all CPUs. Results are returned in fault
// list order and are deterministic regardless of worker count.
func (r *Runner) Run(faults []fault.Fault, mode Mode, ert uint64, workers int) []Result {
	return r.RunBudget(faults, mode, ert, NewBudget(workers))
}

// RunBudget executes a fault list like Run, but draws its workers from a
// shared Budget instead of a private per-call count. Concurrent campaigns
// handed the same budget interleave at chunk granularity: a campaign whose
// tail is draining releases slots that the next campaign's dispatch loop
// (blocked in Acquire) claims immediately. Results are identical to Run
// with workers = budget.Cap() — each chunk is a fixed contiguous slice of
// the (deterministic) fault list, so only scheduling changes, never
// outcomes.
func (r *Runner) RunBudget(faults []fault.Fault, mode Mode, ert uint64, budget *Budget) []Result {
	results := make([]Result, len(faults))
	if len(faults) == 0 {
		return results
	}
	workers := budget.Cap()
	if workers > len(faults) {
		workers = len(faults)
	}
	ro := r.newRunObs(faults, mode)
	var store *ckpt.Store
	var pool *ckpt.Pool
	if r.ForkPolicy == ForkSnapshot {
		store, pool = r.checkpoints()
	}
	// Contiguous chunks keep each worker's forks advancing monotonically
	// through its cycle-sorted slice (and, under ForkLegacyClone, its
	// mother machine strictly forward). Chunk geometry depends only on the
	// list length and the budget capacity — never on timing — which is
	// what keeps results byte-identical under any interleaving.
	chunk := (len(faults) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(faults); lo += chunk {
		hi := lo + chunk
		if hi > len(faults) {
			hi = len(faults)
		}
		budget.Acquire()
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer budget.Release()
			runOne := r.cloneWorker()
			if r.ForkPolicy == ForkSnapshot {
				m, reused := pool.Get()
				defer pool.Put(m)
				ro.poolGet(reused)
				runOne = r.snapshotWorker(m, store)
			}
			if ro == nil {
				for i := lo; i < hi; i++ {
					results[i], _, _ = runOne(faults[i], mode, ert)
				}
				return
			}
			local := make(map[string]*structAgg, 1)
			for i := lo; i < hi; i++ {
				t0 := nowFn()
				res, delta, fm := runOne(faults[i], mode, ert)
				results[i] = res
				ro.fault(local, faults[i], &res, nowFn().Sub(t0), delta, fm)
			}
			ro.merge(local)
		}(lo, hi)
	}
	wg.Wait()
	ro.finish()
	return results
}

// forkMeta is the per-fault checkpoint telemetry: how far the worker had
// to re-simulate from the seeked checkpoint and how many RAM pages the
// fork privatized by copy-on-write. Zero under ForkLegacyClone.
type forkMeta struct {
	restored   bool
	seekCycles uint64
	cowPages   uint64
}

// workerFn runs one fault and returns its result, the faulty run's own
// machine-stat delta, and the fork telemetry.
type workerFn func(f fault.Fault, mode Mode, ert uint64) (Result, cpu.Stats, forkMeta)

// cloneWorker builds the legacy per-worker flow: a private mother machine
// advances to each injection cycle and is deep-cloned per fault.
func (r *Runner) cloneWorker() workerFn {
	mother := cpu.New(r.Cfg, r.Prog)
	return func(f fault.Fault, mode Mode, ert uint64) (Result, cpu.Stats, forkMeta) {
		if mother.Cycle() < f.Cycle && mother.Status() == cpu.StatusRunning {
			mother.Run(cpu.RunOptions{StopAtCycle: f.Cycle, MaxCycles: r.Golden.Cycles + 1})
		}
		m := mother.Clone()
		res, delta := r.injectAndObserve(m, f, mode, ert)
		return res, delta, forkMeta{}
	}
}

// snapshotWorker builds the checkpoint flow: per fault, seek the nearest
// checkpoint at or before the injection cycle, rewind the pooled scratch
// machine in place, and re-simulate at most one interval.
func (r *Runner) snapshotWorker(m *cpu.Machine, store *ckpt.Store) workerFn {
	return func(f fault.Fault, mode Mode, ert uint64) (Result, cpu.Stats, forkMeta) {
		snap, dist := store.Seek(f.Cycle)
		m.Restore(snap)
		cowBase := m.Mem.RAM.CowPrivatized()
		if dist > 0 && m.Status() == cpu.StatusRunning {
			m.Run(cpu.RunOptions{StopAtCycle: f.Cycle, MaxCycles: r.Golden.Cycles + 1})
		}
		res, delta := r.injectAndObserve(m, f, mode, ert)
		return res, delta, forkMeta{
			restored:   true,
			seekCycles: dist,
			cowPages:   m.Mem.RAM.CowPrivatized() - cowBase,
		}
	}
}

// injectAndObserve flips the fault's bits on a machine positioned at the
// injection cycle and observes the outcome under mode — the half of the
// per-fault flow shared by both fork policies. The second return value is
// the faulty run's own contribution to the machine statistics (post-fork
// delta), consumed by the telemetry layer.
func (r *Runner) injectAndObserve(m *cpu.Machine, f fault.Fault, mode Mode, ert uint64) (Result, cpu.Stats) {
	statsAtFork := m.Stats
	tg := m.Target(f.Structure)
	if tg == nil {
		panic("campaign: unknown structure " + f.Structure)
	}
	// Width > 1 models a spatial multi-bit upset: adjacent bits of the
	// same array flip together (Section VII.A). The range must lie inside
	// the array — wrapping to bit 0 would flip a non-neighbour, so a
	// fault list that allows it is a programming error (fault.ListMultiBit
	// caps start bits at bitCount-width).
	width := uint64(f.Bits())
	if f.Bit+width > tg.BitCount() {
		panic(fmt.Sprintf("campaign: fault %s wraps past the end of %s (%d bits)",
			f, f.Structure, tg.BitCount()))
	}
	for i := uint64(0); i < width; i++ {
		tg.FlipBit(f.Bit + i)
	}

	cmp := &trace.Comparator{Golden: r.Golden.Trace}
	cmp.StartAt(int(m.Stats.Commits))
	switch mode {
	case ModeHVF:
		cmp.StopAtFirst = true
	case ModeAVGI:
		cmp.StopAtFirst = true
		cmp.StopCycle = f.Cycle + ert
	}
	m.SetSink(cmp)
	res := m.Run(cpu.RunOptions{MaxCycles: r.RunawayLimit()})

	crashed := res.Status == cpu.StatusCrashed || res.Status == cpu.StatusCycleLimit
	produced := res.Status == cpu.StatusHalted
	matches := produced && bytes.Equal(res.Output, r.Golden.Output)

	out := Result{
		Fault:     f,
		SimCycles: res.Cycles - f.Cycle,
		Crash:     res.Crash,
	}
	switch {
	case cmp.Dev.Kind != trace.DevNone:
		out.Manifested = true
		if cmp.Dev.Cycle > f.Cycle {
			out.ManifestLatency = cmp.Dev.Cycle - f.Cycle
		}
		out.IMM = imm.Classify(imm.Inputs{Dev: cmp.Dev, Variant: r.Cfg.Variant})
	case res.Status == cpu.StatusStopped:
		// The ERT window expired with a clean commit trace.
		out.IMM = imm.Benign
	default:
		out.IMM = imm.Classify(imm.Inputs{
			Crashed:        crashed,
			OutputProduced: produced,
			OutputMatches:  matches,
		})
		if out.IMM == imm.PRE {
			// A pre-software crash is a manifestation too: the
			// residency analysis needs the injection-to-crash
			// latency (this is what makes the ROB/LQ/SQ windows
			// of Table II derivable rather than assumed).
			out.Manifested = true
			out.ManifestLatency = res.Cycles - f.Cycle
		}
	}
	if mode == ModeExhaustive {
		out.Effect = imm.FinalEffect(crashed, produced, matches)
		out.HasEffect = true
	}
	return out, statsDelta(m.Stats, statsAtFork)
}

// statsDelta subtracts the fork-time snapshot from a clone's final stats.
func statsDelta(after, before cpu.Stats) cpu.Stats {
	return cpu.Stats{
		Commits:     after.Commits - before.Commits,
		Branches:    after.Branches - before.Branches,
		Mispredicts: after.Mispredicts - before.Mispredicts,
		Squashed:    after.Squashed - before.Squashed,
		Loads:       after.Loads - before.Loads,
		Stores:      after.Stores - before.Stores,
		FlipsArmed:  after.FlipsArmed - before.FlipsArmed,
		FlipsMasked: after.FlipsMasked - before.FlipsMasked,
	}
}

// Summary aggregates a campaign's results.
type Summary struct {
	Total     int
	ByIMM     map[imm.IMM]int
	ByEffect  map[imm.Effect]int
	SimCycles uint64
	// Corruptions counts faults that became architecturally visible in
	// the commit trace. ESC faults count as Benign here: by definition
	// they never pass through the program trace (Section IV.D), which is
	// why phase 3 of the methodology cannot identify them.
	Corruptions int
	// Benign counts faults with no commit-trace deviation within the
	// observed window (including ESC).
	Benign int
}

// String renders a compact one-line digest — total, corruptions, benign
// and the non-zero IMM tallies in Table I order — for progress lines and
// CLI output.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d faults: %d corruptions, %d benign", s.Total, s.Corruptions, s.Benign)
	var tallies []string
	for _, c := range imm.Classes {
		if n := s.ByIMM[c]; n > 0 {
			tallies = append(tallies, fmt.Sprintf("%s %d", c, n))
		}
	}
	if len(tallies) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(tallies, ", "))
		b.WriteString(")")
	}
	if s.SimCycles > 0 {
		fmt.Fprintf(&b, ", %d sim cycles", s.SimCycles)
	}
	return b.String()
}

// Summarize folds results into a Summary.
func Summarize(results []Result) Summary {
	s := Summary{
		ByIMM:    make(map[imm.IMM]int),
		ByEffect: make(map[imm.Effect]int),
	}
	for _, r := range results {
		s.Total++
		s.ByIMM[r.IMM]++
		if r.IMM == imm.Benign || r.IMM == imm.ESC {
			s.Benign++
		} else {
			s.Corruptions++
		}
		if r.HasEffect {
			s.ByEffect[r.Effect]++
		}
		s.SimCycles += r.SimCycles
	}
	return s
}

// IMMFractions returns the IMM distribution over corruptions only (the
// paper's Fig. 3 normalisation); zero corruptions yields an empty map.
func (s Summary) IMMFractions() map[imm.IMM]float64 {
	out := make(map[imm.IMM]float64)
	if s.Corruptions == 0 {
		return out
	}
	for _, c := range imm.Classes {
		if c == imm.ESC {
			continue // not identifiable in the commit trace
		}
		out[c] = float64(s.ByIMM[c]) / float64(s.Corruptions)
	}
	return out
}

// EffectFractions returns the final-effect distribution over all faults
// (the AVF view: Masked includes benign faults).
func (s Summary) EffectFractions() map[imm.Effect]float64 {
	out := make(map[imm.Effect]float64)
	if s.Total == 0 {
		return out
	}
	for _, e := range imm.Effects {
		out[e] = float64(s.ByEffect[e]) / float64(s.Total)
	}
	return out
}
