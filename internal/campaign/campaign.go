// Package campaign executes statistical fault-injection campaigns over the
// machine model: the golden (fault-free) reference run, and per-fault runs
// in the three observation modes the paper compares —
//
//   - ModeExhaustive: the traditional accelerated SFI flow; every run
//     continues to the end of the program so Masked/SDC/Crash can be
//     decided from the output (Section IV.B baseline).
//   - ModeHVF: stop at the first commit-trace deviation (the HVF
//     measurement of Section III used to extract IMM distributions —
//     the paper's Insights 1&2).
//   - ModeAVGI: stop at the first deviation or at the structure's
//     effective-residency-time window, whichever is first (Insight 3).
//
// All modes share the same checkpointing acceleration, selected by the
// runner's ForkPolicy. The default (ForkCursor) exploits the cycle-sorted
// fault list and contiguous worker chunks: each worker's pooled machine is
// a golden cursor advancing monotonically once through its chunk's cycle
// span, re-arming a worker-local snapshot at each injection cycle via
// dirty-delta copies and rewinding from it after the faulty run — golden
// replay is amortized to once per chunk and per-fault copy cost scales
// with the fault window's write footprint, not the machine size.
// ForkSnapshot records interval checkpoints along the golden run into a
// shared read-only ckpt.Store and rewinds a pooled scratch machine to the
// nearest checkpoint per fault (re-simulating up to one interval);
// ForkLegacyClone keeps the original flow — a per-worker golden "mother"
// machine with a deep clone per fault. All three are proven byte-identical
// by differential tests; the non-default policies exist as baselines.
package campaign

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"avgi/internal/asm"
	"avgi/internal/ckpt"
	"avgi/internal/cpu"
	"avgi/internal/engine"
	"avgi/internal/fault"
	"avgi/internal/forensics"
	"avgi/internal/imm"
	"avgi/internal/obs"
	"avgi/internal/trace"
)

// Mode selects how far a faulty run is simulated.
type Mode uint8

const (
	// ModeExhaustive runs to the end of the program (traditional SFI).
	ModeExhaustive Mode = iota
	// ModeHVF stops at the first commit-trace deviation.
	ModeHVF
	// ModeAVGI stops at the first deviation or the ERT window.
	ModeAVGI
)

func (m Mode) String() string {
	switch m {
	case ModeExhaustive:
		return "exhaustive"
	case ModeHVF:
		return "hvf"
	case ModeAVGI:
		return "avgi"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ForkPolicy selects how a faulty run is forked off the golden prefix.
type ForkPolicy uint8

const (
	// ForkCursor (the default) advances each worker's pooled machine
	// monotonically once through its chunk's cycle span, re-arming a
	// worker-local snapshot per fault with dirty-delta copies.
	ForkCursor ForkPolicy = iota
	// ForkSnapshot seeks a shared interval checkpoint and rewinds a
	// pooled scratch machine in place per fault.
	ForkSnapshot
	// ForkLegacyClone deep-copies a per-worker mother machine per fault
	// (the pre-checkpoint-subsystem flow, kept as a baseline).
	ForkLegacyClone
)

func (p ForkPolicy) String() string {
	switch p {
	case ForkCursor:
		return "cursor"
	case ForkSnapshot:
		return "snapshot"
	case ForkLegacyClone:
		return "clone"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Runaway guard for faulty runs: a corrupted machine can livelock (e.g. a
// clobbered loop counter that never reaches its bound), so every faulty
// run carries an absolute cycle budget of
//
//	RunawayFactor × golden cycles + RunawayGraceCycles.
//
// The factor covers slowdowns proportional to program length (extra
// misses, mispredicted paths); the additive grace covers short programs
// whose doubled golden length would still be tiny. Runs that hit the
// budget are classified as crashes (StatusCycleLimit), matching the
// hang/timeout detector of real injection rigs.
const (
	// DefaultRunawayFactor multiplies the golden cycle count.
	DefaultRunawayFactor = 2
	// RunawayGraceCycles is the additive slack on top of the factor.
	RunawayGraceCycles = 100_000
)

// Quarantine guard: a panicking injection (a simulator invariant trip on a
// corrupted machine, a malformed fault) is isolated to its own Result
// instead of killing the process — at the paper's scale (~726k injections
// over days of wall clock) partial failure is the normal case and one
// poisoned fault must not take down every in-flight campaign. A campaign
// whose freshly simulated faults exceed the limit fraction of quarantined
// results fails loudly with an aggregated error: at that rate the problem
// is systemic (bad config, broken build), not a stray corrupted state.
const (
	// DefaultQuarantineLimit is the tolerated fraction of quarantined
	// faults per campaign before it aborts with an aggregated error.
	DefaultQuarantineLimit = 0.25
)

// Golden holds the fault-free reference run.
type Golden struct {
	Trace   []trace.Record
	Cycles  uint64
	Commits uint64
	Output  []byte
}

// Result is the outcome of one injected fault.
type Result struct {
	Fault fault.Fault

	// IMM is the manifestation class (Benign if the fault never became
	// architecturally visible within the observed window).
	IMM imm.IMM

	// Effect is the end-to-end fault effect; valid only when HasEffect
	// (ModeExhaustive runs).
	Effect    imm.Effect
	HasEffect bool

	// Manifested reports a commit-trace deviation; ManifestLatency is
	// the distance in cycles from injection to that deviation.
	Manifested      bool
	ManifestLatency uint64

	// SimCycles is the number of post-injection cycles simulated — the
	// cost this fault contributes to the campaign under the run's mode.
	SimCycles uint64

	// Crash records how a crashed run died.
	Crash cpu.CrashKind

	// Runaway reports that the run died by exhausting the runaway cycle
	// budget (livelock) rather than a real machine crash event. The IMM
	// and final-effect classification treat both identically (a hang is a
	// crash to the injection rig), but summaries and the journal keep the
	// distinction.
	Runaway bool

	// Quarantined reports that simulating this fault panicked; the panic
	// was recovered, the worker's machine state discarded, and Err holds
	// the panic message. A quarantined Result carries no classification
	// and is excluded from every Summary tally except Quarantined.
	Quarantined bool

	// Err is the recovered panic message of a quarantined fault.
	Err string

	// Forensics is the per-fault fate attribution captured when the
	// runner's forensics mode sampled this fault (see internal/forensics);
	// nil otherwise. Persisted with the journal record as a
	// backward-compatible extension — old shards simply lack it.
	Forensics *forensics.Record `json:",omitempty"`
}

// Runner executes campaigns for one (machine config, workload) pair.
type Runner struct {
	Cfg  cpu.Config
	Prog *asm.Program

	// Cores is the machine shape: 0 or 1 is the single-core Machine, >= 2
	// the shared-L2 cluster (see cpu.NewCluster). On a cluster, fault
	// structures carry a core prefix ("c1/RF") and faulty runs fork the
	// whole cluster by deep clone (the cursor/checkpoint policies are
	// single-core machinery).
	Cores int

	// Golden is the fault-free reference. On a cluster, Cycles is the
	// cluster clock, Commits the sum over cores, Output the concatenation
	// of per-core outputs (which is what makes cross-core escapes through
	// the shared L2 observable), and Trace is nil — per-core traces live
	// in CoreGolden.
	Golden Golden

	// CoreGolden holds each core's own golden trace/commits/output on a
	// cluster runner (nil on single-core).
	CoreGolden []Golden

	// GoldenEngine is the event-engine telemetry of the golden run
	// (events fired, per-component tick counts), published with the
	// golden gauges by PublishGolden.
	GoldenEngine engine.Stats

	// BitCounts maps structure name to its injectable bit count.
	BitCounts map[string]uint64

	// OutputExposure is the golden run's dirty-output occupancy fraction
	// per ESC-capable cache array — the runtime profile the ESC
	// predictor consumes (Section IV.D's "fast runtime profiling").
	OutputExposure map[string]float64

	// Obs, when non-nil, receives telemetry from every campaign run: a
	// span per campaign, per-fault sim-cycle and wall-time histograms,
	// machine-stat counters, and live progress events. Nil (the default)
	// keeps the hot path entirely uninstrumented.
	Obs *obs.Observer

	// ForkPolicy selects the fork mechanism (default ForkCursor).
	ForkPolicy ForkPolicy

	// CheckpointInterval is the spacing in cycles between golden-run
	// checkpoints under ForkCursor/ForkSnapshot; 0 derives it from the
	// golden length (ckpt.DefaultInterval).
	CheckpointInterval uint64

	// RunawayFactor overrides DefaultRunawayFactor for the faulty-run
	// cycle budget; 0 uses the default.
	RunawayFactor uint64

	// QuarantineLimit overrides DefaultQuarantineLimit, the tolerated
	// fraction of quarantined (panicked) faults per campaign before the
	// campaign aborts with an aggregated error. 0 uses the default;
	// negative disables the limit entirely.
	QuarantineLimit float64

	// Forensics, when non-nil, enables per-fault fate attribution: each
	// sampled fault gets an observation probe for its faulty run, its
	// Result carries a forensics.Record, and every campaign's breakdown
	// is folded into this explorer. Nil (the default) leaves the machine
	// tick loop on the exact unprobed code.
	Forensics *forensics.Explorer

	// ForensicsSample is the sampling stride under Forensics: probe
	// faults whose ID is a multiple of N (stable across resumes and
	// worker layouts). 0 or 1 probes every fault.
	ForensicsSample int

	// EarlyExit arms the convergence termination oracle on ModeAVGI
	// faults: a fate probe watches every injected fault, and the faulty
	// window ends the moment the probe proves the machine state is
	// bit-identical to golden again (every latched site erased by
	// golden-valued writes, nothing consumed first) instead of running to
	// the full ERT horizon. Classification is identical to the full-window
	// run — only SimCycles shrinks (proven by TestEarlyExitDifferential).
	// Off by default so recorded SimCycles stay comparable; both CLIs turn
	// it on unless -early-exit=false. Single-core campaigns only; cluster
	// campaigns ignore it.
	EarlyExit bool

	// ckptOnce lazily records the checkpoint store on first snapshot-mode
	// Run, so legacy-only and fault-list-only uses never pay for it.
	ckptOnce sync.Once
	store    *ckpt.Store
	pool     *ckpt.Pool
}

// RunawayLimit returns the absolute cycle budget for faulty runs (see
// DefaultRunawayFactor).
func (r *Runner) RunawayLimit() uint64 {
	factor := r.RunawayFactor
	if factor == 0 {
		factor = DefaultRunawayFactor
	}
	return r.Golden.Cycles*factor + RunawayGraceCycles
}

// checkpoints lazily records the shared checkpoint store and fork pool.
func (r *Runner) checkpoints() (*ckpt.Store, *ckpt.Pool) {
	r.ckptOnce.Do(func() {
		r.store = ckpt.Record(r.Cfg, r.Prog, r.Golden.Cycles, r.CheckpointInterval)
		r.pool = ckpt.NewPool(r.Cfg, r.Prog)
		if r.Obs.Enabled() && r.Obs.Metrics != nil {
			lb := map[string]string{"workload": r.Prog.Name, "machine": r.Cfg.Name}
			r.Obs.Metrics.Gauge("avgi_ckpt_checkpoints",
				"interval checkpoints recorded along the golden run", lb).
				Set(float64(r.store.Count()))
			r.Obs.Metrics.Gauge("avgi_ckpt_snapshot_bytes",
				"total bytes captured across the checkpoint store", lb).
				Set(float64(r.store.Bytes()))
			r.Obs.Metrics.Gauge("avgi_ckpt_interval_cycles",
				"checkpoint spacing in cycles", lb).
				Set(float64(r.store.Interval()))
		}
	})
	return r.store, r.pool
}

// NewRunner performs the golden run and prepares the campaign state.
func NewRunner(cfg cpu.Config, p *asm.Program) (*Runner, error) {
	m := cpu.New(cfg, p)
	var cap trace.Capture
	m.SetSink(&cap)
	m.EnableOutputProfiling(p.OutLenAddr, p.RAMSize, 64)
	res := m.Run(cpu.RunOptions{MaxCycles: 50_000_000})
	if res.Status != cpu.StatusHalted {
		return nil, fmt.Errorf("campaign: golden run of %s ended %v (crash %v) after %d cycles",
			p.Name, res.Status, res.Crash, res.Cycles)
	}
	bits := make(map[string]uint64)
	for name, tg := range m.Targets() {
		bits[name] = tg.BitCount()
	}
	r := &Runner{
		Cfg:  cfg,
		Prog: p,
		Golden: Golden{
			Trace:   cap.Records,
			Cycles:  res.Cycles,
			Commits: res.Commits,
			Output:  res.Output,
		},
		BitCounts:    bits,
		GoldenEngine: res.Engine,
	}
	r.OutputExposure = r.computeExposure(m)
	return r, nil
}

// NewRunnerCores performs the golden run for an n-core shared-L2 cluster
// and prepares the campaign state. cores <= 1 delegates to NewRunner (the
// single-core Machine with its full fork-policy/checkpoint machinery); a
// cluster runner forks faults by whole-cluster clone and validates targets
// by core-prefixed name ("c1/RF").
func NewRunnerCores(cfg cpu.Config, p *asm.Program, cores int) (*Runner, error) {
	if cores <= 1 {
		return NewRunner(cfg, p)
	}
	cl := cpu.NewCluster(cfg, p, cores)
	caps := make([]trace.Capture, cores)
	for k := range caps {
		cl.SetSink(k, &caps[k])
	}
	res := cl.Run(cpu.RunOptions{MaxCycles: 50_000_000})
	if res.Status != cpu.StatusHalted {
		return nil, fmt.Errorf("campaign: golden run of %s on %d cores ended %v (crash %v) after %d cycles",
			p.Name, cores, res.Status, res.Crash, res.Cycles)
	}
	bits := make(map[string]uint64)
	for name, tg := range cl.Targets() {
		bits[name] = tg.BitCount()
	}
	r := &Runner{
		Cfg:   cfg,
		Prog:  p,
		Cores: cores,
		Golden: Golden{
			Cycles:  res.Cycles,
			Commits: res.Commits,
			Output:  res.Output,
		},
		BitCounts:    bits,
		GoldenEngine: res.Engine,
		// Output-exposure profiling (the ESC predictor's runtime input) is
		// a single-core analysis; a cluster campaign classifies escapes
		// from the output diff alone.
		OutputExposure: map[string]float64{
			"L1D (Tag)": 0, "L1D (Data)": 0, "L2 (Tag)": 0, "L2 (Data)": 0,
		},
	}
	for k := 0; k < cores; k++ {
		m := cl.Core(k)
		r.CoreGolden = append(r.CoreGolden, Golden{
			Trace:   caps[k].Records,
			Cycles:  m.Cycle(),
			Commits: m.Stats.Commits,
			Output:  append([]byte(nil), m.Output()...),
		})
	}
	return r, nil
}

// computeExposure folds the golden run's dirty-output time series into one
// exposure fraction per ESC-capable cache array. Each sample's dirty-line
// occupancy is weighted by the fraction of output locations already in
// their final state at that cycle — corruption of output data that will
// still be overwritten cannot escape, which matters for workloads (like
// qsort) that compute in place inside the output region.
func (r *Runner) computeExposure(m *cpu.Machine) map[string]float64 {
	exposure := map[string]float64{
		"L1D (Tag)": 0, "L1D (Data)": 0, "L2 (Tag)": 0, "L2 (Data)": 0,
	}
	cycles, l1d, l2 := m.OutputProfile()
	if len(cycles) == 0 {
		return exposure
	}
	// Final-store cycle per output location, from the golden trace.
	finals := make(map[uint64]uint64)
	for _, rec := range r.Golden.Trace {
		if rec.IsStore && rec.Addr >= r.Prog.OutLenAddr {
			finals[rec.Addr] = rec.Cycle
		}
	}
	finalCycles := make([]uint64, 0, len(finals))
	for _, c := range finals {
		finalCycles = append(finalCycles, c)
	}
	sort.Slice(finalCycles, func(i, j int) bool { return finalCycles[i] < finalCycles[j] })

	// w(t) = fraction of output locations final by cycle t.
	w := func(t uint64) float64 {
		if len(finalCycles) == 0 {
			return 0
		}
		idx := sort.Search(len(finalCycles), func(i int) bool { return finalCycles[i] > t })
		return float64(idx) / float64(len(finalCycles))
	}

	var sumL1D, sumL2 float64
	for i, t := range cycles {
		wt := w(t)
		sumL1D += float64(l1d[i]) * wt
		sumL2 += float64(l2[i]) * wt
	}
	n := float64(len(cycles))
	fracL1D := sumL1D / n / float64(m.Mem.L1D.Lines())
	fracL2 := sumL2 / n / float64(m.Mem.L2.Lines())
	exposure["L1D (Tag)"] = fracL1D
	exposure["L1D (Data)"] = fracL1D
	exposure["L2 (Tag)"] = fracL2
	exposure["L2 (Data)"] = fracL2
	return exposure
}

// mustStructure panics with a descriptive message for structure names the
// machine cannot inject into. Before this check, a misspelt name silently
// produced a zero bit count and therefore an empty fault list.
func (r *Runner) mustStructure(structure string) {
	if _, ok := r.BitCounts[structure]; ok {
		return
	}
	if err := cpu.ValidateStructure(structure); err != nil {
		panic("campaign: " + err.Error())
	}
	panic(fmt.Sprintf("campaign: structure %q has no injectable bits on machine %s",
		structure, r.Cfg.Name))
}

// FaultList generates the statistical fault list for one structure using
// the runner's golden cycle count as the temporal population. It panics on
// unknown structure names.
func (r *Runner) FaultList(structure string, n int, seedBase int64) []fault.Fault {
	r.mustStructure(structure)
	faults := fault.List(structure, n, r.BitCounts[structure], r.Golden.Cycles,
		fault.Seed(structure, r.Prog.Name, seedBase))
	r.assertTemporal(faults)
	return faults
}

// MultiBitFaultList generates a statistical list of spatial multi-bit
// faults (width adjacent bits) for one structure. It panics on unknown
// structure names.
func (r *Runner) MultiBitFaultList(structure string, n, width int, seedBase int64) []fault.Fault {
	r.mustStructure(structure)
	faults := fault.ListMultiBit(structure, n, width, r.BitCounts[structure], r.Golden.Cycles,
		fault.Seed(structure, r.Prog.Name, seedBase))
	r.assertTemporal(faults)
	return faults
}

// UniqueBitCounts returns the runner's injectable-bit populations with
// each physical array counted exactly once. On a cluster runner BitCounts
// aliases the shared-L2 arrays under every c<k>/ prefix (the aliases are
// real, equally valid injection names that flip the same physical bits),
// so summing BitCounts across structures would count the one physical L2
// once per core; here every non-canonical alias is dropped (only the c0/
// name survives, see cpu.CanonicalTarget). Single-core runners get a plain
// copy of BitCounts. Use this map — never raw BitCounts — for any
// population total spanning structures (AVF denominators, bit×cycle fault
// spaces, protection-coverage weighting).
func (r *Runner) UniqueBitCounts() map[string]uint64 {
	out := make(map[string]uint64, len(r.BitCounts))
	for name, n := range r.BitCounts {
		if cpu.CanonicalTarget(name) == name {
			out[name] = n
		}
	}
	return out
}

// assertTemporal enforces the temporal-sampling invariant: every injection
// cycle lies in [1, golden cycles]. A cycle outside the population would
// silently inject into a halted (or never-reached) machine state and bias
// the campaign, so it is a programming error, not a recoverable condition.
func (r *Runner) assertTemporal(faults []fault.Fault) {
	for _, f := range faults {
		if f.Cycle < 1 || f.Cycle > r.Golden.Cycles {
			panic(fmt.Sprintf("campaign: fault %d cycle %d outside golden population [1, %d]",
				f.ID, f.Cycle, r.Golden.Cycles))
		}
	}
}

// Run executes a fault list in the given mode. ert is the
// effective-residency-time stop window in cycles (ModeAVGI only; ignored
// otherwise). workers <= 0 uses all CPUs. Results are returned in fault
// list order and are deterministic regardless of worker count.
func (r *Runner) Run(faults []fault.Fault, mode Mode, ert uint64, workers int) []Result {
	return r.RunBudget(faults, mode, ert, NewBudget(workers))
}

// RunBudget executes a fault list like Run, but draws its workers from a
// shared Budget instead of a private per-call count. Concurrent campaigns
// handed the same budget interleave at chunk granularity: a campaign whose
// tail is draining releases slots that the next campaign's dispatch loop
// (blocked in Acquire) claims immediately. Results are identical to Run
// with workers = budget.Cap() — each chunk is a fixed contiguous slice of
// the (deterministic) fault list, so only scheduling changes, never
// outcomes.
func (r *Runner) RunBudget(faults []fault.Fault, mode Mode, ert uint64, budget *Budget) []Result {
	return r.RunBudgetResume(faults, mode, ert, budget, nil, nil)
}

// ChunkSink receives freshly completed result chunks while a campaign is
// still running — the hook the durable journal appends (and fsyncs)
// through, so a crash mid-campaign loses at most the in-flight chunks.
// ChunkDone is called concurrently from worker goroutines; implementations
// must synchronize internally and must only read results[lo:hi].
type ChunkSink interface {
	ChunkDone(lo, hi int, results []Result)
}

// ChunkClaimer arbitrates chunk ownership across the processes of one
// distributed campaign (see internal/dist). Claim is called serially from
// the dispatch loop for the chunk covering fault-list indices [lo, hi); ok
// false means another process owns — or has already completed — the chunk,
// and the caller skips it without simulating. On success, release is
// called exactly once, from the worker goroutine, after the chunk's fresh
// results have passed through the ChunkSink; done=false signals the
// results did not become durable (a failing journal disk) so the chunk
// must stay claimable by other processes.
type ChunkClaimer interface {
	Claim(lo, hi int) (release func(done bool), ok bool)
}

// ChunkSize is the campaign's chunk geometry: n faults planned across w
// workers yields contiguous chunks of this size. Every process of a
// distributed campaign derives the geometry independently from the shared
// (fault-list length, fleet worker count) pair — it depends on nothing
// local, which is what lets lease names like "chunk-lo-hi" mean the same
// fault indices on every node.
func ChunkSize(n, w int) int {
	if n == 0 {
		return 0
	}
	if w <= 0 {
		w = 1
	}
	if w > n {
		w = n
	}
	return (n + w - 1) / w
}

// RunSpec describes one campaign execution for RunCampaign — the
// superset of the Run/RunBudget/RunBudgetResume parameter lists plus the
// distributed-claim fields.
type RunSpec struct {
	Faults []fault.Fault
	Mode   Mode
	// Window is the effective-residency-time stop window in cycles
	// (ModeAVGI only; ignored otherwise).
	Window uint64
	// Budget bounds this process's worker concurrency; nil runs with a
	// private all-CPUs budget.
	Budget *Budget
	// Prior maps fault-list indices to already-known Results (loaded from
	// a journal); they are copied into the output instead of re-simulated.
	Prior map[int]Result
	// Sink, when non-nil, is notified after each chunk of fresh simulation.
	Sink ChunkSink
	// PlanWorkers fixes the chunk geometry independently of the local
	// budget: a distributed campaign passes the fleet-wide worker count so
	// every process derives identical chunk boundaries while its local
	// budget only bounds concurrency. 0 derives the geometry from the
	// budget capacity (the single-process behaviour).
	PlanWorkers int
	// Claimer arbitrates chunk ownership across processes; nil claims
	// every chunk locally.
	Claimer ChunkClaimer
}

// RunBudgetResume executes a fault list like RunBudget, resuming a
// partially completed campaign: prior maps fault-list indices to already
// known Results (loaded from a journal), which are copied into the output
// instead of re-simulated. sink, when non-nil, is notified after each
// chunk of fresh simulation completes. Chunk geometry is identical to a
// from-scratch run — it depends only on the list length and the budget
// capacity — so a resumed campaign's results are byte-identical to an
// uninterrupted one.
//
// Each fault is simulated under a panic guard: a panicking injection
// yields a quarantined Result (Quarantined, Err) instead of killing the
// process, and the panicking worker discards its possibly corrupted
// machine state — a pooled snapshot machine is dropped rather than
// recycled, a legacy mother machine is rebuilt from cycle 0. If more than
// QuarantineLimit of the freshly simulated faults quarantine, the campaign
// itself panics with an aggregated error (see DefaultQuarantineLimit).
func (r *Runner) RunBudgetResume(faults []fault.Fault, mode Mode, ert uint64, budget *Budget, prior map[int]Result, sink ChunkSink) []Result {
	results, _ := r.RunCampaign(RunSpec{
		Faults: faults, Mode: mode, Window: ert,
		Budget: budget, Prior: prior, Sink: sink,
	})
	return results
}

// RunCampaign executes a campaign described by spec — the full-generality
// entry point underlying Run/RunBudget/RunBudgetResume, and the one the
// distributed layer drives directly. The second return value counts the
// faults skipped because spec.Claimer refused their chunks (another
// process owns them); their Result slots hold whatever spec.Prior knew, or
// the zero Result. A distributed driver treats skipped > 0 as "not my
// work, not finished either" and reloads the journal for the rest.
func (r *Runner) RunCampaign(spec RunSpec) (results []Result, skippedFaults int) {
	faults, mode, ert, prior, sink := spec.Faults, spec.Mode, spec.Window, spec.Prior, spec.Sink
	results = make([]Result, len(faults))
	if len(faults) == 0 {
		return results, 0
	}
	budget := spec.Budget
	if budget == nil {
		budget = NewBudget(0)
	}
	workers := budget.Cap()
	if workers > len(faults) {
		workers = len(faults)
	}
	plan := spec.PlanWorkers
	if plan <= 0 {
		plan = workers
	}
	ro := r.newRunObs(faults, mode, prior)
	var store *ckpt.Store
	var pool *ckpt.Pool
	if r.Cores <= 1 && r.ForkPolicy != ForkLegacyClone {
		store, pool = r.checkpoints()
	}
	// Contiguous chunks keep each worker's forks advancing monotonically
	// through its cycle-sorted slice (and, under ForkLegacyClone, its
	// mother machine strictly forward). Chunk geometry depends only on the
	// list length and the planned worker count — never on timing — which
	// is what keeps results byte-identical under any interleaving, across
	// resumed runs, and across the processes of a distributed campaign.
	chunk := ChunkSize(len(faults), plan)
	var skipped [][2]int
	var wg sync.WaitGroup
	for lo := 0; lo < len(faults); lo += chunk {
		hi := lo + chunk
		if hi > len(faults) {
			hi = len(faults)
		}
		// A chunk fully covered by prior results needs no worker, no
		// budget slot, no claim and no sink notification (its results are
		// already durable).
		if allPrior(prior, lo, hi) {
			for i := lo; i < hi; i++ {
				results[i] = prior[i]
			}
			continue
		}
		// Budget before claim: holding a lease while queued for a local
		// worker slot would starve the processes that have slots free.
		budget.Acquire()
		var release func(bool)
		if spec.Claimer != nil {
			rel, ok := spec.Claimer.Claim(lo, hi)
			if !ok {
				budget.Release()
				skipped = append(skipped, [2]int{lo, hi})
				for i := lo; i < hi; i++ {
					if pr, ok := prior[i]; ok {
						results[i] = pr
					} else {
						skippedFaults++
					}
				}
				ro.skip(faults, lo, hi, prior)
				continue
			}
			release = rel
		}
		wg.Add(1)
		go func(lo, hi int, release func(bool)) {
			defer wg.Done()
			defer budget.Release()
			w := r.newWorker(mode, ert, store, pool, ro)
			defer w.close()
			if ro == nil {
				for i := lo; i < hi; i++ {
					if pr, ok := prior[i]; ok {
						results[i] = pr
						continue
					}
					results[i], _, _ = w.runGuarded(faults[i])
				}
			} else {
				local := make(map[string]*structAgg, 1)
				for i := lo; i < hi; i++ {
					if pr, ok := prior[i]; ok {
						results[i] = pr
						continue
					}
					t0 := nowFn()
					res, delta, fm := w.runGuarded(faults[i])
					results[i] = res
					ro.fault(local, faults[i], &res, nowFn().Sub(t0), delta, fm)
				}
				ro.merge(local)
			}
			if sink != nil {
				sink.ChunkDone(lo, hi, results)
			}
			if release != nil {
				release(true)
			}
		}(lo, hi, release)
	}
	wg.Wait()
	ro.finish()
	r.checkQuarantine(results, prior, skipped)
	if r.Forensics != nil {
		// Fold the whole campaign — fresh and journal-resumed results
		// alike — into the explorer, serially so the breakdown (and its
		// retained samples) is deterministic under any worker layout.
		// Skipped chunks are excluded: their slots hold no simulation.
		ms := mode.String()
		for i := range results {
			if results[i].Quarantined || skippedAt(skipped, prior, i) {
				continue
			}
			r.Forensics.Record(faults[i].Structure, r.Prog.Name, ms, faults[i], results[i].Forensics)
		}
	}
	return results, skippedFaults
}

// skippedAt reports whether index i fell in a claim-skipped chunk without
// a prior result — i.e. its Result slot is the meaningless zero value.
func skippedAt(skipped [][2]int, prior map[int]Result, i int) bool {
	for _, s := range skipped {
		if i >= s[0] && i < s[1] {
			_, ok := prior[i]
			return !ok
		}
	}
	return false
}

// allPrior reports whether every index in [lo, hi) has a prior result.
func allPrior(prior map[int]Result, lo, hi int) bool {
	if len(prior) == 0 {
		return false
	}
	for i := lo; i < hi; i++ {
		if _, ok := prior[i]; !ok {
			return false
		}
	}
	return true
}

// checkQuarantine fails the campaign loudly when the quarantined fraction
// of freshly simulated faults exceeds the runner's limit: isolated panics
// are survivable noise, but a systemic rate means the campaign's numbers
// would be statistically meaningless.
func (r *Runner) checkQuarantine(results []Result, prior map[int]Result, skipped [][2]int) {
	limit := r.QuarantineLimit
	if limit == 0 {
		limit = DefaultQuarantineLimit
	}
	if limit < 0 {
		return
	}
	var fresh, q int
	var sample []string
	for i, res := range results {
		if _, ok := prior[i]; ok {
			continue
		}
		if skippedAt(skipped, prior, i) {
			continue
		}
		fresh++
		if res.Quarantined {
			q++
			if len(sample) < 3 {
				sample = append(sample, fmt.Sprintf("%s: %s", res.Fault, res.Err))
			}
		}
	}
	if fresh == 0 || float64(q)/float64(fresh) <= limit {
		return
	}
	panic(fmt.Sprintf("campaign: %d of %d simulated faults quarantined (limit %.0f%%); first errors: %s",
		q, fresh, limit*100, strings.Join(sample, "; ")))
}

// forkMeta is the per-fault fork telemetry. Under ForkSnapshot, seekCycles
// is the checkpoint-to-injection re-simulation distance; under ForkCursor,
// advCycles is the golden distance the cursor advanced for this fault
// (amortized replay), deltaBytes the volume moved by the dirty-delta
// snapshot/restore pair, fullSync marks faults that paid a full capture
// (first fault after a cursor (re)build), and batched marks faults that
// reused the previous fault's snapshot outright (same injection cycle, no
// cursor advance, so the restored machine already matches it). Zero under
// ForkLegacyClone. earlyExit/cyclesSaved carry the window-oracle outcome
// regardless of policy.
type forkMeta struct {
	restored   bool
	seekCycles uint64
	cowPages   uint64

	cursor     bool
	advCycles  uint64
	deltaBytes uint64
	fullSync   bool
	batched    bool

	earlyExit   bool
	cyclesSaved uint64
}

// worker is one dispatch goroutine's simulation state: under
// ForkCursor/ForkSnapshot a pooled scratch machine rewound per fault,
// under ForkLegacyClone a golden "mother" machine advancing monotonically
// and deep-cloned per fault. Machines are acquired lazily so a quarantined
// worker can discard its poisoned state and transparently pick up a fresh
// machine for the next fault. The comparator is allocated once per worker
// and reset per fault.
type worker struct {
	r     *Runner
	mode  Mode
	ert   uint64
	ro    *runObs
	store *ckpt.Store
	pool  *ckpt.Pool

	m        *cpu.Machine  // ForkCursor/ForkSnapshot: pooled scratch machine
	mother   *cpu.Machine  // ForkLegacyClone: golden-prefix machine
	motherCl *cpu.Cluster  // cluster campaigns: golden-prefix cluster
	csnap    *cpu.Snapshot // ForkCursor: worker-local fault-point snapshot
	cmp      trace.Comparator
}

func (r *Runner) newWorker(mode Mode, ert uint64, store *ckpt.Store, pool *ckpt.Pool, ro *runObs) *worker {
	w := &worker{r: r, mode: mode, ert: ert, ro: ro, store: store, pool: pool}
	w.cmp.Golden = r.Golden.Trace
	return w
}

// close recycles the worker's scratch machine. A machine discarded by
// quarantine is nil here and never re-enters the pool.
func (w *worker) close() {
	if w.m != nil {
		w.pool.Put(w.m)
		w.m = nil
	}
}

// discard drops all machine state after a recovered panic: the pooled
// scratch machine must not be recycled (its invariants may be violated in
// ways a Restore cannot repair — Restore trusts buffer geometry), a cursor
// worker's local snapshot may have been captured from the poisoned machine
// and is dropped with it, and the legacy mother is rebuilt from cycle 0 on
// the next fault.
func (w *worker) discard() {
	w.m = nil
	w.mother = nil
	w.motherCl = nil
	w.csnap = nil
}

// runGuarded simulates one fault under the panic guard, converting a panic
// into a quarantined Result.
func (w *worker) runGuarded(f fault.Fault) (res Result, delta cpu.Stats, fm forkMeta) {
	defer func() {
		if p := recover(); p != nil {
			res = Result{Fault: f, Quarantined: true, Err: fmt.Sprint(p)}
			delta = cpu.Stats{}
			fm = forkMeta{}
			w.discard()
		}
	}()
	res, delta, fm = w.run(f)
	return
}

// run simulates one fault under the runner's fork policy.
func (w *worker) run(f fault.Fault) (Result, cpu.Stats, forkMeta) {
	if w.r.Cores > 1 {
		// Clusters always fork by whole-cluster clone: the cursor and
		// checkpoint subsystems capture single-core machine state.
		return w.runCluster(f)
	}
	switch w.r.ForkPolicy {
	case ForkSnapshot:
		return w.runSnapshot(f)
	case ForkLegacyClone:
		return w.runLegacy(f)
	default:
		return w.runCursor(f)
	}
}

// runCursor is the golden-cursor flow: the worker's pooled machine plays
// the golden run monotonically once across its chunk's cycle span. Per
// fault it advances to the injection cycle, re-arms the worker-local
// snapshot with a dirty-delta capture, runs the faulty simulation, and
// rewinds with a dirty-delta restore — two in-place copies of the fault
// window's write footprint replace the full-image restore plus up to one
// interval of golden re-simulation that ForkSnapshot pays per fault.
func (w *worker) runCursor(f fault.Fault) (Result, cpu.Stats, forkMeta) {
	r := w.r
	if w.m == nil {
		// (Re)build the cursor: seek the shared checkpoint nearest the
		// first fault, rewind a pooled machine onto it, and start a fresh
		// delta-tracking lineage. The local snapshot is captured in full
		// below (csnap == nil after a discard or on first use).
		m, reused := w.pool.Get()
		w.ro.poolGet(reused)
		snap, _ := w.store.Seek(f.Cycle)
		m.Restore(snap)
		m.BeginDeltaTracking()
		w.m = m
		w.csnap = nil
	}
	m := w.m
	var adv uint64
	if m.Cycle() < f.Cycle && m.Status() == cpu.StatusRunning {
		// The only golden replay in this flow: the cycle-sorted chunk
		// makes every advance monotonic, so across the whole chunk the
		// cursor simulates each golden cycle at most once.
		c0 := m.Cycle()
		m.Run(cpu.RunOptions{StopAtCycle: f.Cycle, MaxCycles: r.Golden.Cycles + 1})
		adv = m.Cycle() - c0
	}
	var deltaBytes uint64
	fullSync := w.csnap == nil
	batched := false
	switch {
	case fullSync:
		w.csnap = m.Snapshot(nil)
	case adv != 0:
		deltaBytes = m.SyncSnapshot(w.csnap)
	default:
		// Same-cycle batch: the previous fault's SyncRestore left the
		// machine bit-identical to csnap and the cursor did not advance,
		// so the snapshot is already current — one re-arm serves every
		// fault landing on this cursor cycle.
		batched = true
	}
	cowBase := m.Mem.RAM.CowPrivatized()
	res, delta, wm := r.injectAndObserve(m, f, w.mode, w.ert, &w.cmp)
	cow := m.Mem.RAM.CowPrivatized() - cowBase
	deltaBytes += m.SyncRestore(w.csnap)
	return res, delta, forkMeta{
		restored:    true,
		cowPages:    cow,
		cursor:      true,
		advCycles:   adv,
		deltaBytes:  deltaBytes,
		fullSync:    fullSync,
		batched:     batched,
		earlyExit:   wm.earlyExit,
		cyclesSaved: wm.cyclesSaved,
	}
}

// runSnapshot is the shared-checkpoint flow: seek the nearest checkpoint
// at or before the injection cycle, rewind the pooled scratch machine in
// place, and re-simulate at most one interval.
func (w *worker) runSnapshot(f fault.Fault) (Result, cpu.Stats, forkMeta) {
	r := w.r
	if w.m == nil {
		m, reused := w.pool.Get()
		w.m = m
		w.ro.poolGet(reused)
	}
	m := w.m
	snap, dist := w.store.Seek(f.Cycle)
	m.Restore(snap)
	cowBase := m.Mem.RAM.CowPrivatized()
	if dist > 0 && m.Status() == cpu.StatusRunning {
		m.Run(cpu.RunOptions{StopAtCycle: f.Cycle, MaxCycles: r.Golden.Cycles + 1})
	}
	res, delta, wm := r.injectAndObserve(m, f, w.mode, w.ert, &w.cmp)
	return res, delta, forkMeta{
		restored:    true,
		seekCycles:  dist,
		cowPages:    m.Mem.RAM.CowPrivatized() - cowBase,
		earlyExit:   wm.earlyExit,
		cyclesSaved: wm.cyclesSaved,
	}
}

// runLegacy is the original flow: a private mother machine advances to
// each injection cycle and is deep-cloned per fault.
func (w *worker) runLegacy(f fault.Fault) (Result, cpu.Stats, forkMeta) {
	r := w.r
	if w.mother == nil {
		w.mother = cpu.New(r.Cfg, r.Prog)
	}
	mother := w.mother
	if mother.Cycle() < f.Cycle && mother.Status() == cpu.StatusRunning {
		mother.Run(cpu.RunOptions{StopAtCycle: f.Cycle, MaxCycles: r.Golden.Cycles + 1})
	}
	m := mother.Clone()
	res, delta, wm := r.injectAndObserve(m, f, w.mode, w.ert, &w.cmp)
	return res, delta, forkMeta{earlyExit: wm.earlyExit, cyclesSaved: wm.cyclesSaved}
}

// runCluster is the multi-core flow, shaped like runLegacy: a per-worker
// golden mother cluster advances monotonically through the chunk's
// cycle-sorted faults and is deep-cloned per fault (the shared memory spine
// is cloned once per fault, every core rebound onto it).
func (w *worker) runCluster(f fault.Fault) (Result, cpu.Stats, forkMeta) {
	r := w.r
	if w.motherCl == nil {
		w.motherCl = cpu.NewCluster(r.Cfg, r.Prog, r.Cores)
	}
	mother := w.motherCl
	if mother.Cycle() < f.Cycle && mother.Status() == cpu.StatusRunning {
		mother.Run(cpu.RunOptions{StopAtCycle: f.Cycle, MaxCycles: r.Golden.Cycles + 1})
	}
	cl := mother.Clone()
	res, delta := r.injectAndObserveCluster(cl, f, w.mode, w.ert, &w.cmp)
	return res, delta, forkMeta{}
}

// winMeta is the per-fault window-oracle telemetry: whether the early-exit
// oracle ended the faulty window, and an estimate of the cycles it saved
// against the full ERT horizon (capped at the golden halt — a converged
// machine replays the golden run, so it could never have run further).
type winMeta struct {
	earlyExit   bool
	cyclesSaved uint64
}

// injectAndObserve flips the fault's bits on a machine positioned at the
// injection cycle and observes the outcome under mode — the half of the
// per-fault flow shared by all fork policies. cmp is the caller's
// comparator, reset and rearmed here so a worker allocates one comparator
// for its whole chunk instead of one per fault. The second return value is
// the faulty run's own contribution to the machine statistics (post-fork
// delta), consumed by the telemetry layer.
func (r *Runner) injectAndObserve(m *cpu.Machine, f fault.Fault, mode Mode, ert uint64, cmp *trace.Comparator) (Result, cpu.Stats, winMeta) {
	statsAtFork := m.Stats
	tg := m.Target(f.Structure)
	if tg == nil {
		panic("campaign: unknown structure " + f.Structure)
	}
	// Width > 1 models a spatial multi-bit upset: adjacent bits of the
	// same array flip together (Section VII.A). The range must lie inside
	// the array — wrapping to bit 0 would flip a non-neighbour, so a
	// fault list that allows it is a programming error (fault.ListMultiBit
	// caps start bits at bitCount-width).
	width := uint64(f.Bits())
	if f.Bit+width > tg.BitCount() {
		panic(fmt.Sprintf("campaign: fault %s wraps past the end of %s (%d bits)",
			f, f.Structure, tg.BitCount()))
	}
	for i := uint64(0); i < width; i++ {
		tg.FlipBit(f.Bit + i)
	}
	// The fate probe is armed after the flip and cleared before this
	// function returns, so the fork machinery around it (worker-local
	// sync snapshots before, restores after) never observes one. Under
	// the early-exit oracle every ModeAVGI fault is probed (one probe
	// serves both the oracle and, when sampled, forensics attribution).
	forens := r.forensicsOn(f)
	oracle := r.EarlyExit && mode == ModeAVGI
	var probe *cpu.FaultProbe
	if forens || oracle {
		probe = m.ArmProbe(f.Structure, f.Bit, int(width))
	}
	if oracle && probe != nil {
		probe.EnableConvergenceStop()
	}

	cmp.Reset()
	cmp.StartAt(int(m.Stats.Commits))
	switch mode {
	case ModeHVF:
		cmp.StopAtFirst = true
	case ModeAVGI:
		cmp.StopAtFirst = true
		cmp.StopCycle = f.Cycle + ert
	}
	m.SetSink(cmp)
	res := m.Run(cpu.RunOptions{MaxCycles: r.RunawayLimit()})

	var wm winMeta
	if oracle && res.Status == cpu.StatusStopped && !cmp.Stopped() {
		// The machine stopped but the comparator never asked it to: the
		// convergence oracle ended the window. Estimate the savings
		// against where the full window would have run to — the ERT
		// horizon, capped at the golden halt cycle (a converged machine
		// replays the golden run from here on).
		wm.earlyExit = true
		if full := min(f.Cycle+ert, r.Golden.Cycles); full > res.Cycles {
			wm.cyclesSaved = full - res.Cycles
		}
	}

	crashed := res.Status == cpu.StatusCrashed || res.Status == cpu.StatusCycleLimit
	produced := res.Status == cpu.StatusHalted
	matches := produced && bytes.Equal(res.Output, r.Golden.Output)

	out := Result{
		Fault:     f,
		SimCycles: res.Cycles - f.Cycle,
		Crash:     res.Crash,
		// A run that exhausts the runaway budget is classified exactly
		// like a real crash (a hang is a crash to the injection rig),
		// but keeps the livelock/crash distinction for summaries and
		// the journal.
		Runaway: res.Status == cpu.StatusCycleLimit,
	}
	switch {
	case cmp.Dev.Kind != trace.DevNone:
		out.Manifested = true
		if cmp.Dev.Cycle > f.Cycle {
			out.ManifestLatency = cmp.Dev.Cycle - f.Cycle
		}
		out.IMM = imm.Classify(imm.Inputs{Dev: cmp.Dev, Variant: r.Cfg.Variant})
	case res.Status == cpu.StatusStopped:
		// The ERT window expired with a clean commit trace — either at
		// the full horizon or because the convergence oracle proved the
		// machine state golden again (same verdict, shorter window).
		out.IMM = imm.Benign
	default:
		out.IMM = imm.Classify(imm.Inputs{
			Crashed:        crashed,
			OutputProduced: produced,
			OutputMatches:  matches,
		})
		if out.IMM == imm.PRE {
			// A pre-software crash is a manifestation too: the
			// residency analysis needs the injection-to-crash
			// latency (this is what makes the ROB/LQ/SQ windows
			// of Table II derivable rather than assumed).
			out.Manifested = true
			out.ManifestLatency = res.Cycles - f.Cycle
		}
	}
	if mode == ModeExhaustive {
		out.Effect = imm.FinalEffect(crashed, produced, matches)
		out.HasEffect = true
	}
	if probe != nil {
		m.ClearProbe()
		if forens {
			oc := forensics.Outcome{
				Visible:         out.Manifested,
				ManifestLatency: out.ManifestLatency,
				Dev:             cmp.Dev,
			}
			if out.IMM == imm.ESC {
				// An escape through a dirty line is architecturally visible
				// in the program output even though the commit trace never
				// deviates; the whole post-injection run is its latency.
				oc.Visible = true
				oc.Escaped = true
				oc.ManifestLatency = out.SimCycles
			}
			// An oracle-probed but unsampled fault carries no record, so
			// Results are identical whether or not the oracle was on.
			// Attribution itself is truncation-proof: a converged probe has
			// every site dead, so no further event could have amended the
			// facts in the cycles the exit skipped.
			rec := forensics.Attribute(probe.Facts(), oc)
			out.Forensics = &rec
		}
	}
	return out, statsDelta(m.Stats, statsAtFork), wm
}

// injectAndObserveCluster is injectAndObserve for a cluster fault: the
// structure name carries the injected core's prefix ("c1/RF"), the commit
// comparator watches the injected core against that core's own golden
// trace, and the final-output classification compares the whole cluster's
// concatenated output — which is exactly what lets a fault in c0's shared
// L2 lines manifest as an SDC or escape in c1's section of the output.
func (r *Runner) injectAndObserveCluster(cl *cpu.Cluster, f fault.Fault, mode Mode, ert uint64, cmp *trace.Comparator) (Result, cpu.Stats) {
	core, base, ok := cpu.SplitCoreTarget(f.Structure)
	if !ok || core >= cl.Cores() {
		panic(fmt.Sprintf("campaign: cluster fault structure %q needs a c<k>/ prefix with k < %d",
			f.Structure, cl.Cores()))
	}
	m := cl.Core(core)
	statsAtFork := m.Stats
	tg := cl.Target(f.Structure)
	if tg == nil {
		panic("campaign: unknown structure " + f.Structure)
	}
	width := uint64(f.Bits())
	if f.Bit+width > tg.BitCount() {
		panic(fmt.Sprintf("campaign: fault %s wraps past the end of %s (%d bits)",
			f, f.Structure, tg.BitCount()))
	}
	for i := uint64(0); i < width; i++ {
		tg.FlipBit(f.Bit + i)
	}
	var probe *cpu.FaultProbe
	if r.forensicsOn(f) {
		probe = m.ArmProbe(base, f.Bit, int(width))
	}

	// The worker's one comparator is re-aimed at the injected core's golden
	// trace; Reset keeps the Golden slice, so re-aim first.
	cmp.Golden = r.CoreGolden[core].Trace
	cmp.Reset()
	cmp.StartAt(int(m.Stats.Commits))
	switch mode {
	case ModeHVF:
		cmp.StopAtFirst = true
	case ModeAVGI:
		cmp.StopAtFirst = true
		cmp.StopCycle = f.Cycle + ert
	}
	cl.SetSink(core, cmp)
	res := cl.Run(cpu.RunOptions{MaxCycles: r.RunawayLimit()})

	crashed := res.Status == cpu.StatusCrashed || res.Status == cpu.StatusCycleLimit
	produced := res.Status == cpu.StatusHalted
	matches := produced && bytes.Equal(res.Output, r.Golden.Output)

	out := Result{
		Fault:     f,
		SimCycles: res.Cycles - f.Cycle,
		Crash:     res.Crash,
		Runaway:   res.Status == cpu.StatusCycleLimit,
	}
	switch {
	case cmp.Dev.Kind != trace.DevNone:
		out.Manifested = true
		if cmp.Dev.Cycle > f.Cycle {
			out.ManifestLatency = cmp.Dev.Cycle - f.Cycle
		}
		out.IMM = imm.Classify(imm.Inputs{Dev: cmp.Dev, Variant: r.Cfg.Variant})
	case res.Status == cpu.StatusStopped:
		out.IMM = imm.Benign
	default:
		out.IMM = imm.Classify(imm.Inputs{
			Crashed:        crashed,
			OutputProduced: produced,
			OutputMatches:  matches,
		})
		if out.IMM == imm.PRE {
			out.Manifested = true
			out.ManifestLatency = res.Cycles - f.Cycle
		}
	}
	if mode == ModeExhaustive {
		out.Effect = imm.FinalEffect(crashed, produced, matches)
		out.HasEffect = true
	}
	if probe != nil {
		m.ClearProbe()
		oc := forensics.Outcome{
			Visible:         out.Manifested,
			ManifestLatency: out.ManifestLatency,
			Dev:             cmp.Dev,
		}
		if out.IMM == imm.ESC {
			oc.Visible = true
			oc.Escaped = true
			oc.ManifestLatency = out.SimCycles
		}
		rec := forensics.Attribute(probe.Facts(), oc)
		out.Forensics = &rec
	}
	return out, statsDelta(m.Stats, statsAtFork)
}

// forensicsOn reports whether this fault is in the forensics sample. The
// stride keys off the fault's stable ID, so the sampled set is identical
// across resumes, fork policies and worker layouts.
func (r *Runner) forensicsOn(f fault.Fault) bool {
	if r.Forensics == nil {
		return false
	}
	if n := r.ForensicsSample; n > 1 {
		return f.ID%n == 0
	}
	return true
}

// statsDelta subtracts the fork-time snapshot from a clone's final stats.
func statsDelta(after, before cpu.Stats) cpu.Stats {
	return cpu.Stats{
		Commits:     after.Commits - before.Commits,
		Branches:    after.Branches - before.Branches,
		Mispredicts: after.Mispredicts - before.Mispredicts,
		Squashed:    after.Squashed - before.Squashed,
		Loads:       after.Loads - before.Loads,
		Stores:      after.Stores - before.Stores,
		FlipsArmed:  after.FlipsArmed - before.FlipsArmed,
		FlipsMasked: after.FlipsMasked - before.FlipsMasked,
	}
}

// Summary aggregates a campaign's results.
type Summary struct {
	// Total counts the classified faults. Quarantined results are
	// excluded from Total and every other tally below, so the AVF/IMM
	// fractions derived from a Summary stay unbiased by simulation
	// failures (a quarantined fault carries no classification at all).
	Total     int
	ByIMM     map[imm.IMM]int
	ByEffect  map[imm.Effect]int
	SimCycles uint64
	// Corruptions counts faults that became architecturally visible in
	// the commit trace. ESC faults count as Benign here: by definition
	// they never pass through the program trace (Section IV.D), which is
	// why phase 3 of the methodology cannot identify them.
	Corruptions int
	// Benign counts faults with no commit-trace deviation within the
	// observed window (including ESC).
	Benign int
	// Runaways counts classified faults whose run died by exhausting the
	// runaway cycle budget (livelock) rather than a real crash event;
	// they are included in the crash-side tallies above.
	Runaways int
	// Quarantined counts faults whose simulation panicked and was
	// isolated (see Result.Quarantined).
	Quarantined int
}

// String renders a compact one-line digest — total, corruptions, benign
// and the non-zero IMM tallies in Table I order — for progress lines and
// CLI output.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d faults: %d corruptions, %d benign", s.Total, s.Corruptions, s.Benign)
	if s.Runaways > 0 {
		fmt.Fprintf(&b, ", %d runaway", s.Runaways)
	}
	if s.Quarantined > 0 {
		fmt.Fprintf(&b, ", %d quarantined", s.Quarantined)
	}
	var tallies []string
	for _, c := range imm.Classes {
		if n := s.ByIMM[c]; n > 0 {
			tallies = append(tallies, fmt.Sprintf("%s %d", c, n))
		}
	}
	if len(tallies) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(tallies, ", "))
		b.WriteString(")")
	}
	if s.SimCycles > 0 {
		fmt.Fprintf(&b, ", %d sim cycles", s.SimCycles)
	}
	return b.String()
}

// Summarize folds results into a Summary.
func Summarize(results []Result) Summary {
	s := Summary{
		ByIMM:    make(map[imm.IMM]int),
		ByEffect: make(map[imm.Effect]int),
	}
	for _, r := range results {
		if r.Quarantined {
			s.Quarantined++
			continue
		}
		s.Total++
		s.ByIMM[r.IMM]++
		if r.IMM == imm.Benign || r.IMM == imm.ESC {
			s.Benign++
		} else {
			s.Corruptions++
		}
		if r.Runaway {
			s.Runaways++
		}
		if r.HasEffect {
			s.ByEffect[r.Effect]++
		}
		s.SimCycles += r.SimCycles
	}
	return s
}

// IMMFractions returns the IMM distribution over corruptions only (the
// paper's Fig. 3 normalisation); zero corruptions yields an empty map.
func (s Summary) IMMFractions() map[imm.IMM]float64 {
	out := make(map[imm.IMM]float64)
	if s.Corruptions == 0 {
		return out
	}
	for _, c := range imm.Classes {
		if c == imm.ESC {
			continue // not identifiable in the commit trace
		}
		out[c] = float64(s.ByIMM[c]) / float64(s.Corruptions)
	}
	return out
}

// EffectFractions returns the final-effect distribution over all faults
// (the AVF view: Masked includes benign faults).
func (s Summary) EffectFractions() map[imm.Effect]float64 {
	out := make(map[imm.Effect]float64)
	if s.Total == 0 {
		return out
	}
	for _, e := range imm.Effects {
		out[e] = float64(s.ByEffect[e]) / float64(s.Total)
	}
	return out
}
