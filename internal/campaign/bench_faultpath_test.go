package campaign

import (
	"testing"

	"avgi/internal/cpu"
)

// The benchmarks below quantify the golden-cursor fault path against the
// snapshot and legacy-clone paths on the standard windowed campaign shape:
// a 256-fault register-file list in the paper's AVGI mode (ERT 2000),
// 4 workers. This is the throughput configuration of real studies — short
// faulty windows, where per-fault fork overhead dominates — so it is where
// the cursor's amortized golden replay and dirty-delta copies pay off.
//
//	go test -run=^$ -bench='CampaignCursor|CampaignWindow|GoldenRun' ./internal/campaign/
//
// Numbers from this machine are recorded in BENCH_faultpath.json at the
// repo root; the cost model is derived in docs/PERFORMANCE.md.

// benchCampaignRFWindow runs the standard windowed RF campaign under one
// fork policy and reports end-to-end throughput in faults per second.
func benchCampaignRFWindow(b *testing.B, policy ForkPolicy) {
	r := sharedBenchRunner(b)
	prev := r.ForkPolicy
	r.ForkPolicy = policy
	defer func() { r.ForkPolicy = prev }()
	const perIter = 256
	faults := r.FaultList("RF", perIter, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(faults, ModeAVGI, 2000, 4)
	}
	b.StopTimer()
	b.ReportMetric(float64(perIter*b.N)/b.Elapsed().Seconds(), "faults/s")
}

func BenchmarkCampaignCursor(b *testing.B) { benchCampaignRFWindow(b, ForkCursor) }

// BenchmarkCampaignCursorEarlyExit is the cursor campaign with the
// convergence oracle armed: faults whose corruption is provably erased end
// their window at the erasure instead of simulating the full ERT. The gap
// to BenchmarkCampaignCursor is the early-exit payoff on the standard RF
// shape.
func BenchmarkCampaignCursorEarlyExit(b *testing.B) {
	r := sharedBenchRunner(b)
	prev := r.EarlyExit
	r.EarlyExit = true
	defer func() { r.EarlyExit = prev }()
	benchCampaignRFWindow(b, ForkCursor)
}

func BenchmarkCampaignWindowSnapshot(b *testing.B) { benchCampaignRFWindow(b, ForkSnapshot) }

func BenchmarkCampaignWindowClone(b *testing.B) { benchCampaignRFWindow(b, ForkLegacyClone) }

// BenchmarkGoldenRun measures bare-core simulation speed in cycles per
// second — the floor every fork policy's golden advance pays, and the
// denominator of the per-fault cost model in docs/PERFORMANCE.md.
func BenchmarkGoldenRun(b *testing.B) {
	r := sharedBenchRunner(b)
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m := cpu.New(r.Cfg, r.Prog)
		res := m.Run(cpu.RunOptions{MaxCycles: r.Golden.Cycles + 10})
		cycles += res.Cycles
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}
