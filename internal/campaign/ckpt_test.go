package campaign

import (
	"io"
	"testing"

	"avgi/internal/asm"
	"avgi/internal/cpu"
	"avgi/internal/fault"
	"avgi/internal/imm"
	"avgi/internal/obs"
	"avgi/internal/prog"
)

// TestForkPolicyDifferential is the correctness bar of the fork-path
// machinery at the campaign level: the same fault lists run through the
// cursor path, the snapshot path and the legacy clone path must produce
// bit-identical results — IMM labels, final effects, manifestation
// latencies, simulated cycles and crash kinds — on a ≥500-fault RF+L1D
// campaign, on both machine variants.
func TestForkPolicyDifferential(t *testing.T) {
	perStructure := 256
	if testing.Short() {
		perStructure = 40
	}
	for _, cfg := range []cpu.Config{cpu.ConfigA72(), cpu.ConfigA15()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			w, err := prog.ByName("sha")
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRunner(cfg, w.Build(cfg.Variant))
			if err != nil {
				t.Fatal(err)
			}
			for _, structure := range []string{"RF", "L1D (Data)"} {
				faults := r.FaultList(structure, perStructure, 7)

				r.ForkPolicy = ForkLegacyClone
				legacy := r.Run(faults, ModeExhaustive, 0, 4)
				for _, policy := range []ForkPolicy{ForkCursor, ForkSnapshot} {
					r.ForkPolicy = policy
					got := r.Run(faults, ModeExhaustive, 0, 4)
					for i := range got {
						if got[i] != legacy[i] {
							t.Fatalf("%s fault %d diverged under %v:\n  %v %+v\n  clone %+v",
								structure, i, policy, policy, got[i], legacy[i])
						}
					}
				}
			}
		})
	}
}

// TestForkPolicyDifferentialAVGIMode repeats the three-way differential
// check under the windowed AVGI mode, whose early stops are the most
// timing-sensitive consumers of the restored state, and under HVF mode,
// whose stop-at-first-deviation exits mid-window.
func TestForkPolicyDifferentialAVGIMode(t *testing.T) {
	r := shaRunner(t)
	for _, tc := range []struct {
		mode Mode
		ert  uint64
	}{
		{ModeAVGI, 2000},
		{ModeHVF, 0},
	} {
		faults := r.FaultList("RF", 60, 3)
		r.ForkPolicy = ForkLegacyClone
		legacy := r.Run(faults, tc.mode, tc.ert, 4)
		for _, policy := range []ForkPolicy{ForkCursor, ForkSnapshot} {
			r.ForkPolicy = policy
			got := r.Run(faults, tc.mode, tc.ert, 4)
			for i := range got {
				if got[i] != legacy[i] {
					t.Fatalf("%v fault %d diverged under %v: %+v vs clone %+v",
						tc.mode, i, policy, got[i], legacy[i])
				}
			}
		}
	}
}

// TestForkCursorResumeDifferential proves the cursor path stays
// byte-identical to the legacy clone path across a journal-style resume:
// prior results covering a whole chunk, chunk heads and scattered
// mid-chunk faults are handed to RunBudgetResume, so cursor workers skip
// arbitrary faults inside their chunks, and every freshly simulated result
// must still equal the uninterrupted clone campaign's.
func TestForkCursorResumeDifferential(t *testing.T) {
	r := shaRunner(t)
	faults := r.FaultList("RF", 64, 11)
	r.ForkPolicy = ForkLegacyClone
	legacy := r.Run(faults, ModeAVGI, 2000, 4)

	r.ForkPolicy = ForkCursor
	// 64 faults / 4 workers = 16-fault chunks: indices 0-15 cover chunk 0
	// entirely (the allPrior fast path); i%5 scatters holes through the
	// remaining chunks.
	prior := make(map[int]Result)
	for i := range faults {
		if i < 16 || i%5 == 0 {
			prior[i] = legacy[i]
		}
	}
	resumed := r.RunBudgetResume(faults, ModeAVGI, 2000, NewBudget(4), prior, nil)
	for i := range resumed {
		if resumed[i] != legacy[i] {
			t.Fatalf("fault %d diverged after resume: %+v vs clone %+v", i, resumed[i], legacy[i])
		}
	}
}

// livelockSrc counts to a bound held in a register: corrupting the bound
// upward makes the loop effectively infinite, which is exactly the hang
// class the runaway guard exists for.
const livelockSrc = `
	li r1, 0
	li r2, 64
loop:
	addi r1, r1, 1
	blt r1, r2, loop
	li r7, 0x40000
	storew r1, 0(r7)
	li r8, 0x3FFF8
	li r9, 8
	storew r9, 0(r8)
	halt
`

// TestRunawayLivelockTerminates proves the runaway guard bounds faulty
// runs: a register-file flip that raises the loop bound to ~2^62 livelocks
// the program, and the campaign still terminates, classifying the run as a
// crash after exactly RunawayLimit cycles.
func TestRunawayLivelockTerminates(t *testing.T) {
	cfg := cpu.ConfigA72()
	p, err := asm.Parse("livelock", livelockSrc, cfg.Variant)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(cfg, p)
	if err != nil {
		t.Fatal(err)
	}

	// Renaming decides which physical register holds the loop bound, so
	// sweep all of them, flipping a high-but-positive value bit. The
	// injection cycle matters too — the early cycles are cold-start fetch
	// misses with nothing renamed yet — so sweep several points across
	// the back half of the run, where the loop is in flight. Whichever
	// (cycle, register) combinations catch the live bound make it ~2^62,
	// and that run can only end via the runaway guard.
	width := r.BitCounts["RF"] / uint64(cfg.PhysRegs)
	var faults []fault.Fault
	for i, frac := range []uint64{2, 4, 8, 16} {
		cycle := r.Golden.Cycles - r.Golden.Cycles/frac
		for reg := 0; reg < cfg.PhysRegs; reg++ {
			faults = append(faults, fault.Fault{
				ID:        i*cfg.PhysRegs + reg,
				Structure: "RF",
				Bit:       uint64(reg)*width + width - 2,
				Cycle:     cycle,
			})
		}
	}
	results := r.Run(faults, ModeExhaustive, 0, 4)

	livelocked := 0
	for _, res := range results {
		budget := r.RunawayLimit() - res.Fault.Cycle
		if res.SimCycles > budget {
			t.Fatalf("fault %d ran %d cycles, past its %d budget", res.Fault.ID, res.SimCycles, budget)
		}
		if res.SimCycles == budget {
			livelocked++
			if res.Effect != imm.Crash {
				t.Errorf("runaway run classified %v, want crash", res.Effect)
			}
		}
	}
	if livelocked == 0 {
		t.Fatal("no fault livelocked; the guard was never exercised")
	}
}

func TestRunawayLimit(t *testing.T) {
	r := &Runner{Golden: Golden{Cycles: 1000}}
	if got := r.RunawayLimit(); got != 1000*DefaultRunawayFactor+RunawayGraceCycles {
		t.Errorf("default limit = %d", got)
	}
	r.RunawayFactor = 5
	if got := r.RunawayLimit(); got != 5000+RunawayGraceCycles {
		t.Errorf("factor-5 limit = %d", got)
	}
}

func TestAssertTemporalRejectsOutOfPopulation(t *testing.T) {
	r := &Runner{Golden: Golden{Cycles: 100}}
	for _, bad := range []uint64{0, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cycle %d outside [1, 100] not rejected", bad)
				}
			}()
			r.assertTemporal([]fault.Fault{{ID: 1, Structure: "RF", Cycle: bad}})
		}()
	}
	// The boundary cycles are part of the population.
	r.assertTemporal([]fault.Fault{{Cycle: 1}, {Cycle: 100}})
}

func TestCheckpointIntervalConfig(t *testing.T) {
	r := shaRunner(t)
	r.CheckpointInterval = 2000
	faults := r.FaultList("RF", 8, 1)
	r.Run(faults, ModeHVF, 0, 2)
	if r.store == nil || r.store.Interval() != 2000 {
		t.Fatalf("store interval = %v, want 2000", r.store.Interval())
	}
	want := int(r.Golden.Cycles/2000) + 1
	if r.store.Count() != want {
		t.Errorf("checkpoints = %d, want %d", r.store.Count(), want)
	}
}

// TestCkptMetricsPublished drives an observed snapshot-mode campaign and
// checks the checkpoint telemetry lands in the registry.
func TestCkptMetricsPublished(t *testing.T) {
	r := shaRunner(t)
	r.Obs = obs.New(io.Discard)
	// Pin the snapshot policy: its per-fault seek/restore accounting is
	// what this test asserts (the cursor path seeks once per worker).
	r.ForkPolicy = ForkSnapshot

	const n = 32
	faults := r.FaultList("RF", n, 1)
	r.Run(faults, ModeExhaustive, 0, 4)

	lb := map[string]string{"structure": "RF", "workload": "sha", "mode": "exhaustive"}
	restores := r.Obs.Metrics.Counter("avgi_ckpt_restores_total", "", lb).Value()
	if restores != n {
		t.Errorf("restores_total = %d, want %d", restores, n)
	}
	var wantSeek uint64
	for _, f := range faults {
		_, dist := r.store.Seek(f.Cycle)
		wantSeek += dist
	}
	if got := r.Obs.Metrics.Counter("avgi_ckpt_seek_cycles_total", "", lb).Value(); got != wantSeek {
		t.Errorf("seek_cycles_total = %d, want %d", got, wantSeek)
	}
	if got := r.Obs.Metrics.Counter("avgi_ckpt_cow_pages_total", "", lb).Value(); got == 0 {
		t.Error("cow_pages_total = 0; faulty runs never privatized a page")
	}

	pl := map[string]string{"workload": "sha", "mode": "exhaustive"}
	gets := r.Obs.Metrics.Counter("avgi_ckpt_pool_gets_total", "", pl).Value()
	if gets == 0 {
		t.Error("pool_gets_total = 0")
	}

	gl := map[string]string{"workload": "sha", "machine": r.Cfg.Name}
	if v := r.Obs.Metrics.Gauge("avgi_ckpt_checkpoints", "", gl).Value(); int(v) != r.store.Count() {
		t.Errorf("checkpoints gauge = %v, want %d", v, r.store.Count())
	}
	if v := r.Obs.Metrics.Gauge("avgi_ckpt_snapshot_bytes", "", gl).Value(); uint64(v) != r.store.Bytes() {
		t.Errorf("snapshot_bytes gauge = %v, want %d", v, r.store.Bytes())
	}

	// Pool reuse across campaigns: a second Run on the same runner checks
	// machines back out of the pool.
	r.Run(faults, ModeExhaustive, 0, 4)
	reuse := r.Obs.Metrics.Counter("avgi_ckpt_pool_reuse_total", "", pl).Value()
	if reuse == 0 {
		t.Error("pool_reuse_total = 0 after second campaign")
	}
}
