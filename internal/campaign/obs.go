package campaign

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"avgi/internal/cpu"
	"avgi/internal/fault"
	"avgi/internal/forensics"
	"avgi/internal/imm"
	"avgi/internal/obs"
)

// nowFn is the wall clock used for per-fault timing (a variable so tests
// can freeze it).
var nowFn = time.Now

// Histogram bucket bounds. Sim-cycle buckets span the short AVGI windows
// (~1k cycles) up to full end-to-end runs; wall-time buckets span 10µs to
// 10s per fault.
var (
	simCycleBuckets = []float64{1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8}
	wallSecBuckets  = []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10}
	// Divergence-latency buckets span same-window manifestations (a few
	// cycles) out to end-of-run escapes.
	divCycleBuckets = []float64{1, 3, 10, 30, 100, 300, 1e3, 3e3, 1e4, 3e4, 1e5, 1e6}
)

// structAgg accumulates one worker's per-structure telemetry locally so
// the hot loop touches no shared state beyond the progress reporter.
type structAgg struct {
	faults      uint64
	corruptions uint64
	quarantined uint64
	simCycles   uint64
	exhCycles   uint64
	stats       cpu.Stats

	// Checkpoint telemetry (ForkCursor/ForkSnapshot runs).
	restores   uint64
	seekCycles uint64
	cowPages   uint64

	// Cursor telemetry (ForkCursor runs only).
	cursorFaults uint64
	advCycles    uint64
	deltaBytes   uint64
	fullSyncs    uint64
	batched      uint64

	// Window-oracle telemetry (EarlyExit ModeAVGI runs).
	earlyExits  uint64
	cyclesSaved uint64

	// Forensics attribution tallies (faults the sampler probed).
	causes [forensics.NumCauses]uint64
}

// runObs is the per-Run instrumentation state. A nil *runObs (observer
// absent) keeps campaign execution on the exact pre-telemetry code path.
type runObs struct {
	o    *obs.Observer
	r    *Runner
	mode string
	span *obs.SpanRef

	simHist  *obs.Histogram
	wallHist *obs.Histogram
	divHist  *obs.Histogram // registered only when forensics is on

	mu  sync.Mutex
	agg map[string]*structAgg

	// Fork-pool accounting: one Get per worker, so contention is nil.
	poolGets   uint64
	poolReuses uint64
}

// poolGet records one pool checkout and whether it recycled a machine.
// Nil-safe.
func (ro *runObs) poolGet(reused bool) {
	if ro == nil {
		return
	}
	ro.mu.Lock()
	ro.poolGets++
	if reused {
		ro.poolReuses++
	}
	ro.mu.Unlock()
}

// newRunObs builds instrumentation for one Run call, announcing the
// campaign to the progress reporter and opening its span. prior marks
// fault-list indices resumed from a journal: they are not simulated, so
// they are excluded from the announced totals (the progress view counts
// work this run will actually do).
func (r *Runner) newRunObs(faults []fault.Fault, mode Mode, prior map[int]Result) *runObs {
	o := r.Obs
	if !o.Enabled() || len(faults) == 0 || len(prior) >= len(faults) {
		return nil
	}
	ro := &runObs{o: o, r: r, mode: mode.String(), agg: make(map[string]*structAgg)}
	// Fault lists are per-structure in practice, but stay correct for
	// mixed lists: announce each structure's share.
	perStructure := make(map[string]int)
	pending := 0
	for i, f := range faults {
		if _, ok := prior[i]; ok {
			continue
		}
		perStructure[f.Structure]++
		pending++
	}
	if p := o.Progress; p != nil {
		for s, n := range perStructure {
			p.StartCampaign(s, r.Prog.Name, ro.mode, n)
		}
	}
	if o.Metrics != nil {
		lb := map[string]string{"mode": ro.mode}
		ro.simHist = o.Metrics.Histogram("avgi_campaign_fault_sim_cycles",
			"post-injection cycles simulated per fault", simCycleBuckets, lb)
		ro.wallHist = o.Metrics.Histogram("avgi_campaign_fault_wall_seconds",
			"wall-clock seconds per fault (includes mother-machine advance)", wallSecBuckets, lb)
		if r.Forensics != nil {
			ro.divHist = o.Metrics.Histogram("avgi_divergence_latency_cycles",
				"injection-to-first-divergence latency of visible faults", divCycleBuckets, lb)
		}
	}
	attrs := map[string]string{
		"workload": r.Prog.Name,
		"mode":     ro.mode,
		"faults":   strconv.Itoa(pending),
	}
	// The span title and the "structure" attr must agree: for a
	// mixed-structure list the title names the structure count, not
	// whichever structure happens to sort first in the fault list.
	if len(perStructure) == 1 {
		for s := range perStructure {
			attrs["structure"] = s
		}
	} else {
		attrs["structure"] = fmt.Sprintf("%d structures", len(perStructure))
	}
	ro.span = o.Span("campaign "+ro.mode+" "+attrs["structure"]+" "+r.Prog.Name, "campaign", attrs)
	return ro
}

// skip retracts a claim-skipped chunk from the progress totals: the
// campaign announced its whole fresh fault list up front, but another
// process owns [lo, hi), so this run will never complete that share.
// Nil-safe.
func (ro *runObs) skip(faults []fault.Fault, lo, hi int, prior map[int]Result) {
	if ro == nil {
		return
	}
	p := ro.o.Progress
	if p == nil {
		return
	}
	per := make(map[string]int, 1)
	for i := lo; i < hi; i++ {
		if _, ok := prior[i]; ok {
			continue
		}
		per[faults[i].Structure]++
	}
	for s, n := range per {
		p.SkipFaults(s, ro.r.Prog.Name, ro.mode, n)
	}
}

// fault records one completed fault into the worker-local aggregate and
// the live telemetry (histograms + progress). Nil-safe.
func (ro *runObs) fault(local map[string]*structAgg, f fault.Fault, res *Result, wall time.Duration, delta cpu.Stats, fm forkMeta) {
	a := local[f.Structure]
	if a == nil {
		a = &structAgg{}
		local[f.Structure] = a
	}
	a.faults++
	if res.Quarantined {
		a.quarantined++
	} else if res.IMM != imm.Benign && res.IMM != imm.ESC {
		a.corruptions++
	}
	a.simCycles += res.SimCycles
	exh := ro.exhaustiveEstimate(f, res)
	a.exhCycles += exh
	addStats(&a.stats, delta)
	if fm.restored {
		a.restores++
		a.seekCycles += fm.seekCycles
		a.cowPages += fm.cowPages
	}
	if fm.cursor {
		a.cursorFaults++
		a.advCycles += fm.advCycles
		a.deltaBytes += fm.deltaBytes
		if fm.fullSync {
			a.fullSyncs++
		}
		if fm.batched {
			a.batched++
		}
	}
	if fm.earlyExit {
		a.earlyExits++
		a.cyclesSaved += fm.cyclesSaved
	}

	if fr := res.Forensics; fr != nil {
		a.causes[fr.Cause]++
		if ro.divHist != nil && fr.Divergence != nil {
			ro.divHist.Observe(float64(fr.Divergence.CycleDelta))
		}
	}

	if ro.simHist != nil {
		ro.simHist.Observe(float64(res.SimCycles))
		ro.wallHist.Observe(wall.Seconds())
	}
	if p := ro.o.Progress; p != nil {
		p.FaultDone(f.Structure, ro.r.Prog.Name, ro.mode, res.SimCycles, exh)
	}
}

// exhaustiveEstimate is the simulation cost the same fault would have had
// under end-to-end SFI: the remaining golden cycles after injection. For
// exhaustive runs the actual cost is the truth (speedup exactly 1); for
// the accelerated modes the estimate is floored at the cycles actually
// simulated so per-fault speedups never drop below 1.
func (ro *runObs) exhaustiveEstimate(f fault.Fault, res *Result) uint64 {
	if ro.mode == "exhaustive" {
		return res.SimCycles
	}
	var est uint64
	if ro.r.Golden.Cycles > f.Cycle {
		est = ro.r.Golden.Cycles - f.Cycle
	}
	if est < res.SimCycles {
		est = res.SimCycles
	}
	return est
}

func addStats(dst *cpu.Stats, d cpu.Stats) {
	dst.Commits += d.Commits
	dst.Branches += d.Branches
	dst.Mispredicts += d.Mispredicts
	dst.Squashed += d.Squashed
	dst.Loads += d.Loads
	dst.Stores += d.Stores
	dst.FlipsArmed += d.FlipsArmed
	dst.FlipsMasked += d.FlipsMasked
}

// merge folds a worker's local aggregates into the run-wide ones.
func (ro *runObs) merge(local map[string]*structAgg) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	for s, a := range local {
		dst := ro.agg[s]
		if dst == nil {
			dst = &structAgg{}
			ro.agg[s] = dst
		}
		dst.faults += a.faults
		dst.corruptions += a.corruptions
		dst.quarantined += a.quarantined
		dst.simCycles += a.simCycles
		dst.exhCycles += a.exhCycles
		addStats(&dst.stats, a.stats)
		dst.restores += a.restores
		dst.seekCycles += a.seekCycles
		dst.cowPages += a.cowPages
		dst.cursorFaults += a.cursorFaults
		dst.advCycles += a.advCycles
		dst.deltaBytes += a.deltaBytes
		dst.fullSyncs += a.fullSyncs
		dst.batched += a.batched
		dst.earlyExits += a.earlyExits
		dst.cyclesSaved += a.cyclesSaved
		for c, n := range a.causes {
			dst.causes[c] += n
		}
	}
}

// finish flushes the aggregates into the metrics registry and closes the
// campaign span. Nil-safe.
func (ro *runObs) finish() {
	if ro == nil {
		return
	}
	if reg := ro.o.Metrics; reg != nil {
		for s, a := range ro.agg {
			lb := map[string]string{"structure": s, "workload": ro.r.Prog.Name, "mode": ro.mode}
			reg.Counter("avgi_campaign_faults_total",
				"injected faults simulated", lb).Add(a.faults)
			reg.Counter("avgi_campaign_corruptions_total",
				"faults that became architecturally visible", lb).Add(a.corruptions)
			if a.quarantined > 0 {
				reg.Counter("avgi_faults_quarantined_total",
					"faults whose simulation panicked and was isolated", lb).Add(a.quarantined)
			}
			reg.Counter("avgi_campaign_sim_cycles_total",
				"post-injection cycles simulated", lb).Add(a.simCycles)
			reg.Counter("avgi_campaign_exhaustive_cycles_est_total",
				"estimated end-to-end SFI cost of the same faults", lb).Add(a.exhCycles)

			sl := map[string]string{"structure": s, "mode": ro.mode}
			reg.Counter("avgi_sim_commits_total", "instructions committed in faulty runs", sl).Add(a.stats.Commits)
			reg.Counter("avgi_sim_branches_total", "branches committed in faulty runs", sl).Add(a.stats.Branches)
			reg.Counter("avgi_sim_mispredicts_total", "branch mispredictions in faulty runs", sl).Add(a.stats.Mispredicts)
			reg.Counter("avgi_sim_squashed_total", "wrong-path instructions squashed in faulty runs", sl).Add(a.stats.Squashed)
			reg.Counter("avgi_sim_loads_total", "loads committed in faulty runs", sl).Add(a.stats.Loads)
			reg.Counter("avgi_sim_stores_total", "stores committed in faulty runs", sl).Add(a.stats.Stores)

			fl := map[string]string{"structure": s}
			reg.Counter("avgi_flips_armed_total",
				"bit flips that landed on live state", fl).Add(a.stats.FlipsArmed)
			reg.Counter("avgi_flips_masked_total",
				"bit flips masked at the injection site (free queue slots)", fl).Add(a.stats.FlipsMasked)

			if a.restores > 0 {
				reg.Counter("avgi_ckpt_restores_total",
					"scratch-machine rewinds from checkpoint snapshots", lb).Add(a.restores)
				reg.Counter("avgi_ckpt_seek_cycles_total",
					"cycles re-simulated between seeked checkpoint and injection", lb).Add(a.seekCycles)
				reg.Counter("avgi_ckpt_cow_pages_total",
					"RAM pages privatized copy-on-write by forked runs", lb).Add(a.cowPages)
			}
			if a.cursorFaults > 0 {
				reg.Counter("avgi_cursor_advance_cycles_total",
					"golden cycles worker cursors advanced (replay amortized to once per chunk)", lb).Add(a.advCycles)
				reg.Counter("avgi_cursor_delta_bytes_total",
					"bytes moved by dirty-delta snapshot/restore pairs", lb).Add(a.deltaBytes)
				reg.Counter("avgi_cursor_full_syncs_total",
					"cursor faults that paid a full local snapshot capture", lb).Add(a.fullSyncs)
				if a.batched > 0 {
					reg.Counter("avgi_cursor_batched_faults_total",
						"cursor faults that reused the previous same-cycle snapshot outright", lb).Add(a.batched)
				}
			}
			if a.earlyExits > 0 {
				reg.Counter("avgi_window_early_exit_total",
					"faulty windows ended early by the convergence oracle", lb).Add(a.earlyExits)
				reg.Counter("avgi_window_cycles_saved_total",
					"faulty-window cycles skipped by convergence early exits", lb).Add(a.cyclesSaved)
			}
			for _, c := range forensics.Causes {
				if n := a.causes[c]; n > 0 {
					cl := map[string]string{"cause": c.String(),
						"structure": s, "workload": ro.r.Prog.Name, "mode": ro.mode}
					reg.Counter("avgi_mask_cause_total",
						"sampled faults by attributed fate (forensics)", cl).Add(n)
				}
			}
		}
		if ro.poolGets > 0 {
			pl := map[string]string{"workload": ro.r.Prog.Name, "mode": ro.mode}
			reg.Counter("avgi_ckpt_pool_gets_total",
				"scratch machines checked out of the fork pool", pl).Add(ro.poolGets)
			reg.Counter("avgi_ckpt_pool_reuse_total",
				"fork-pool checkouts satisfied by a recycled machine", pl).Add(ro.poolReuses)
		}
	}
	ro.span.End()
}

// PublishGolden registers the runner's golden-run characteristics as
// gauges with the observer's registry; a no-op without an observer.
func (r *Runner) PublishGolden() {
	if r.Obs == nil || r.Obs.Metrics == nil {
		return
	}
	reg := r.Obs.Metrics
	lb := map[string]string{"workload": r.Prog.Name, "machine": r.Cfg.Name}
	reg.Gauge("avgi_golden_cycles", "golden run length in cycles", lb).Set(float64(r.Golden.Cycles))
	reg.Gauge("avgi_golden_commits", "golden run committed instructions", lb).Set(float64(r.Golden.Commits))
	reg.Gauge("avgi_golden_output_bytes", "golden run output size in bytes", lb).Set(float64(len(r.Golden.Output)))
	obs.PublishEngineStats(reg, lb, r.GoldenEngine)
}
