package campaign

import (
	"testing"

	"avgi/internal/asm"
	"avgi/internal/cpu"
	"avgi/internal/imm"
)

// escProgram writes a 2 KiB output early, then spins long enough that the
// dirty output lines sit exposed in the data caches, and halts without
// ever re-reading them. Faults striking those lines during the spin can
// only be observed at the output — the ESC scenario of Section IV.D.
func escProgram(cfg cpu.Config) *asm.Program {
	b := asm.NewBuilder("escdemo", cfg.Variant)
	const outBytes = 2048
	b.Li(1, asm.DefaultOutBase)
	b.Li(2, 0)
	b.Li(3, outBytes/8)
	b.Label("fill")
	// Pattern derived from the index so corruption is detectable.
	b.Slli(4, 2, 3)
	b.Addi(5, 2, 77)
	b.Mul(5, 5, 5)
	b.Add(6, 4, 1)
	b.StoreW(5, 6, 0)
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "fill")
	b.Li(4, asm.DefaultOutLenAddr)
	b.Li(5, outBytes)
	b.StoreW(5, 4, 0)
	// Spin without touching the output again.
	b.Li(2, 0)
	b.Li(3, 6000)
	b.Label("spin")
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "spin")
	b.Halt()
	return b.MustAssemble()
}

func TestESCFaultsObservedEndToEnd(t *testing.T) {
	cfg := cpu.ConfigA72()
	r, err := NewRunner(cfg, escProgram(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// The golden profile must see substantial dirty-output exposure.
	if exp := r.OutputExposure["L1D (Data)"]; exp < 0.05 {
		t.Fatalf("L1D exposure %.3f too low for the scenario", exp)
	}
	results := r.Run(r.FaultList("L1D (Data)", 200, 77), ModeExhaustive, 0, 0)
	s := Summarize(results)
	if s.ByIMM[imm.ESC] == 0 {
		t.Fatalf("no ESC faults observed: %v", s.ByIMM)
	}
	// Every ESC fault is an SDC with no commit-trace deviation.
	for _, res := range results {
		if res.IMM == imm.ESC {
			if res.Effect != imm.SDC {
				t.Errorf("ESC fault with effect %v", res.Effect)
			}
			if res.Manifested {
				t.Error("ESC fault must never deviate in the commit trace")
			}
		}
	}
	// And the zero-output control: a program with tiny output cannot
	// escape through it (the sha case of the paper).
	t.Logf("ESC faults: %d of %d (exposure %.3f)",
		s.ByIMM[imm.ESC], s.Total, r.OutputExposure["L1D (Data)"])
}

func TestExposureZeroForTinyOutput(t *testing.T) {
	cfg := cpu.ConfigA72()
	b := asm.NewBuilder("tiny", cfg.Variant)
	b.Li(1, asm.DefaultOutBase)
	b.Li(2, 42)
	b.Sb(2, 1, 0)
	b.Li(3, asm.DefaultOutLenAddr)
	b.Li(4, 1)
	b.StoreW(4, 3, 0)
	b.Halt()
	r, err := NewRunner(cfg, b.MustAssemble())
	if err != nil {
		t.Fatal(err)
	}
	// One output byte written immediately before halt: exposure is
	// essentially zero (at most a sample or two see the dirty line).
	if exp := r.OutputExposure["L1D (Data)"]; exp > 0.05 {
		t.Errorf("tiny output exposure %.3f", exp)
	}
}
