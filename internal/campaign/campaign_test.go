package campaign

import (
	"testing"

	"avgi/internal/cpu"
	"avgi/internal/imm"
	"avgi/internal/prog"
)

func shaRunner(t *testing.T) *Runner {
	t.Helper()
	w, err := prog.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.ConfigA72()
	r, err := NewRunner(cfg, w.Build(cfg.Variant))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGoldenRun(t *testing.T) {
	r := shaRunner(t)
	if r.Golden.Cycles == 0 || r.Golden.Commits == 0 {
		t.Fatal("empty golden run")
	}
	if len(r.Golden.Trace) != int(r.Golden.Commits) {
		t.Errorf("trace %d records, commits %d", len(r.Golden.Trace), r.Golden.Commits)
	}
	if len(r.Golden.Output) != 20 {
		t.Errorf("sha output %d bytes", len(r.Golden.Output))
	}
	if len(r.BitCounts) != 12 {
		t.Errorf("bit counts for %d structures", len(r.BitCounts))
	}
}

func TestFaultListUsesGoldenCycles(t *testing.T) {
	r := shaRunner(t)
	fs := r.FaultList("RF", 50, 1)
	if len(fs) != 50 {
		t.Fatalf("%d faults", len(fs))
	}
	for _, f := range fs {
		if f.Cycle > r.Golden.Cycles {
			t.Fatalf("fault cycle %d beyond golden %d", f.Cycle, r.Golden.Cycles)
		}
		if f.Bit >= r.BitCounts["RF"] {
			t.Fatalf("bit %d out of range", f.Bit)
		}
	}
}

func TestExhaustiveCampaignRF(t *testing.T) {
	r := shaRunner(t)
	fs := r.FaultList("RF", 60, 1)
	results := r.Run(fs, ModeExhaustive, 0, 4)
	s := Summarize(results)
	if s.Total != 60 {
		t.Fatalf("total %d", s.Total)
	}
	// Every exhaustive result must carry a final effect, and the effect
	// partition must cover all faults.
	if s.ByEffect[imm.Masked]+s.ByEffect[imm.SDC]+s.ByEffect[imm.Crash] != 60 {
		t.Errorf("effects don't partition: %v", s.ByEffect)
	}
	// Register-file faults on a small working set should be masked more
	// often than not, and at least one should be benign (free phys reg).
	if s.ByIMM[imm.Benign] == 0 {
		t.Error("expected some benign faults in the PRF")
	}
	// PRF corruptions should be dominated by DCR per Section III.B.
	if s.Corruptions > 5 && s.ByIMM[imm.DCR] == 0 {
		t.Errorf("no DCR among %d PRF corruptions: %v", s.Corruptions, s.ByIMM)
	}
	for _, res := range results {
		if !res.HasEffect {
			t.Fatal("exhaustive result without effect")
		}
		if res.Manifested && res.ManifestLatency == 0 {
			t.Error("manifested with zero latency")
		}
	}
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	r := shaRunner(t)
	fs := r.FaultList("RF", 40, 2)
	a := r.Run(fs, ModeExhaustive, 0, 1)
	b := r.Run(fs, ModeExhaustive, 0, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs across worker counts:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestHVFStopsEarlierThanExhaustive(t *testing.T) {
	r := shaRunner(t)
	fs := r.FaultList("RF", 40, 3)
	ex := Summarize(r.Run(fs, ModeExhaustive, 0, 0))
	hv := Summarize(r.Run(fs, ModeHVF, 0, 0))
	if hv.SimCycles > ex.SimCycles {
		t.Errorf("HVF simulated more cycles (%d) than exhaustive (%d)", hv.SimCycles, ex.SimCycles)
	}
	// The IMM distribution over corruptions must be identical: stopping
	// at the first deviation does not change what the deviation was.
	for _, c := range imm.Classes {
		if hv.ByIMM[c] != ex.ByIMM[c] && c != imm.ESC && c != imm.Benign {
			t.Errorf("IMM %v differs: hvf %d vs exhaustive %d", c, hv.ByIMM[c], ex.ByIMM[c])
		}
	}
}

func TestAVGIWindowCutsBenignCost(t *testing.T) {
	r := shaRunner(t)
	fs := r.FaultList("RF", 40, 4)
	hv := Summarize(r.Run(fs, ModeHVF, 0, 0))
	av := Summarize(r.Run(fs, ModeAVGI, 2000, 0))
	if av.SimCycles >= hv.SimCycles {
		t.Errorf("AVGI (%d cycles) should be cheaper than HVF (%d)", av.SimCycles, hv.SimCycles)
	}
	// Benign faults must cost at most the window.
	for _, res := range r.Run(fs, ModeAVGI, 2000, 0) {
		if res.IMM == imm.Benign && res.SimCycles > 2000+uint64(r.Cfg.WatchdogCommitGap) {
			t.Errorf("benign fault simulated %d cycles with a 2000-cycle window", res.SimCycles)
		}
	}
}

func TestROBFaultsManifestAsPREOrBenign(t *testing.T) {
	r := shaRunner(t)
	for _, structure := range []string{"ROB", "LQ", "SQ"} {
		fs := r.FaultList(structure, 30, 5)
		s := Summarize(r.Run(fs, ModeExhaustive, 0, 0))
		for _, c := range imm.Classes {
			if c != imm.PRE && s.ByIMM[c] != 0 {
				t.Errorf("%s: unexpected IMM %v x%d (want only PRE/Benign)", structure, c, s.ByIMM[c])
			}
		}
		if s.ByIMM[imm.PRE]+s.ByIMM[imm.Benign] != s.Total {
			t.Errorf("%s: PRE+Benign != total: %v", structure, s.ByIMM)
		}
	}
}

func TestSummaryFractions(t *testing.T) {
	results := []Result{
		{IMM: imm.DCR, Effect: imm.SDC, HasEffect: true},
		{IMM: imm.DCR, Effect: imm.Masked, HasEffect: true},
		{IMM: imm.Benign, Effect: imm.Masked, HasEffect: true},
		{IMM: imm.ESC, Effect: imm.SDC, HasEffect: true},
	}
	s := Summarize(results)
	if s.Corruptions != 2 || s.Benign != 2 {
		t.Errorf("corruptions %d benign %d", s.Corruptions, s.Benign)
	}
	fr := s.IMMFractions()
	if fr[imm.DCR] != 1.0 {
		t.Errorf("DCR fraction %f", fr[imm.DCR])
	}
	if _, ok := fr[imm.ESC]; ok {
		t.Error("ESC must not appear in commit-trace IMM fractions")
	}
	ef := s.EffectFractions()
	if ef[imm.SDC] != 0.5 || ef[imm.Masked] != 0.5 {
		t.Errorf("effect fractions %v", ef)
	}
}

func TestModeString(t *testing.T) {
	if ModeExhaustive.String() != "exhaustive" || ModeHVF.String() != "hvf" || ModeAVGI.String() != "avgi" {
		t.Error("mode strings")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode")
	}
}

func TestEmptyRun(t *testing.T) {
	r := shaRunner(t)
	if len(r.Run(nil, ModeExhaustive, 0, 4)) != 0 {
		t.Error("empty fault list should return empty results")
	}
}
