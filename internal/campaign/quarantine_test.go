package campaign

import (
	"reflect"
	"strings"
	"testing"

	"avgi/internal/cpu"
	"avgi/internal/fault"
	"avgi/internal/imm"
	"avgi/internal/obs"
)

// poisonFault builds a fault whose injection deterministically panics: its
// multi-bit range wraps past the end of the structure, which
// injectAndObserve asserts against.
func poisonFault(r *Runner, structure string, cycle uint64) fault.Fault {
	return fault.Fault{
		ID:        1 << 20,
		Structure: structure,
		Bit:       r.BitCounts[structure] - 1,
		Cycle:     cycle,
		Width:     2,
	}
}

// TestQuarantineIsolatesPoisonedFault proves the tentpole guarantee under
// all three fork policies: one panicking fault yields a quarantined Result
// and a completed campaign, and every other result is byte-identical to a
// campaign without the poisoned fault.
func TestQuarantineIsolatesPoisonedFault(t *testing.T) {
	for _, policy := range []ForkPolicy{ForkCursor, ForkSnapshot, ForkLegacyClone} {
		t.Run(policy.String(), func(t *testing.T) {
			r := newTestRunner(t, cpu.ConfigA72(), "sha")
			r.ForkPolicy = policy
			faults := r.FaultList("RF", 30, 5)
			clean := r.Run(faults, ModeHVF, 0, 2)

			// Insert the poison mid-list so the same worker chunk
			// continues past the panic.
			poison := poisonFault(r, "RF", r.Golden.Cycles/2)
			mixed := make([]fault.Fault, 0, len(faults)+1)
			mixed = append(mixed, faults[:15]...)
			mixed = append(mixed, poison)
			mixed = append(mixed, faults[15:]...)

			res := r.Run(mixed, ModeHVF, 0, 2)
			if len(res) != len(mixed) {
				t.Fatalf("campaign returned %d results for %d faults", len(res), len(mixed))
			}
			q := res[15]
			if !q.Quarantined || q.Fault != poison {
				t.Fatalf("poisoned fault not quarantined: %+v", q)
			}
			if !strings.Contains(q.Err, "wraps past the end") {
				t.Errorf("quarantined Err = %q, want the panic message", q.Err)
			}
			if q.IMM != imm.Benign || q.HasEffect || q.Manifested {
				t.Errorf("quarantined result must carry no classification: %+v", q)
			}
			// Byte-identity of every healthy result.
			healthy := append(append([]Result(nil), res[:15]...), res[16:]...)
			if !reflect.DeepEqual(healthy, clean) {
				t.Error("healthy results diverge from the poison-free campaign")
			}
		})
	}
}

// TestQuarantineDiscardsPooledMachine checks that a quarantined snapshot
// worker does not recycle its machine: the fault after the poison on the
// same worker must still classify exactly as in a clean campaign (proven
// byte-identically above), and the campaign telemetry must report the
// quarantine.
func TestQuarantineTelemetry(t *testing.T) {
	r := newTestRunner(t, cpu.ConfigA72(), "crc32")
	o := obs.New(nil)
	o.Progress = nil
	r.Obs = o
	faults := r.FaultList("RF", 10, 5)
	faults = append(faults, poisonFault(r, "RF", r.Golden.Cycles/2))
	res := r.Run(faults, ModeHVF, 0, 2)
	sum := Summarize(res)
	if sum.Quarantined != 1 || sum.Total != 10 {
		t.Fatalf("summary: %+v", sum)
	}
	var got uint64
	for _, fam := range o.Metrics.Snapshot() {
		if fam.Name == "avgi_faults_quarantined_total" {
			for _, s := range fam.Series {
				got += s.Value
			}
		}
	}
	if got != 1 {
		t.Errorf("avgi_faults_quarantined_total = %d, want 1", got)
	}
}

// TestQuarantineLimitAborts: a campaign drowning in quarantined faults
// must fail loudly with an aggregated error instead of silently returning
// statistically meaningless numbers.
func TestQuarantineLimitAborts(t *testing.T) {
	r := newTestRunner(t, cpu.ConfigA72(), "crc32")
	faults := r.FaultList("RF", 4, 5)
	for i := 0; i < 4; i++ {
		faults = append(faults, poisonFault(r, "RF", r.Golden.Cycles/2))
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("campaign above the quarantine limit must panic")
		}
		msg, ok := p.(string)
		if !ok || !strings.Contains(msg, "quarantined") || !strings.Contains(msg, "wraps past the end") {
			t.Errorf("aggregated error %v must name the quarantine count and a sample cause", p)
		}
	}()
	r.Run(faults, ModeHVF, 0, 2)
}

// TestQuarantineLimitDisabled: a negative limit tolerates any rate.
func TestQuarantineLimitDisabled(t *testing.T) {
	r := newTestRunner(t, cpu.ConfigA72(), "crc32")
	r.QuarantineLimit = -1
	faults := []fault.Fault{poisonFault(r, "RF", r.Golden.Cycles/2)}
	res := r.Run(faults, ModeHVF, 0, 1)
	if !res[0].Quarantined {
		t.Fatal("fault not quarantined")
	}
}

// TestRunBudgetNoObserverSnapshotRace drives the fully uninstrumented
// RunBudget path (nil *runObs) of a ForkSnapshot campaign with several
// workers — the hot path the telemetry layer promises to leave untouched —
// and checks determinism across runs. The verify recipe runs this package
// under -race, which is the actual point of the test.
func TestRunBudgetNoObserverSnapshotRace(t *testing.T) {
	r := newTestRunner(t, cpu.ConfigA72(), "sha")
	if r.Obs.Enabled() {
		t.Fatal("runner must have no observer for this test")
	}
	faults := r.FaultList("RF", 24, 9)
	res1 := r.Run(faults, ModeAVGI, 500, 4)
	res2 := r.Run(faults, ModeAVGI, 500, 4)
	if !reflect.DeepEqual(res1, res2) {
		t.Error("uninstrumented snapshot campaign is not deterministic")
	}
	for i, res := range res1 {
		if res.Quarantined {
			t.Errorf("fault %d spuriously quarantined: %s", i, res.Err)
		}
	}
}

// TestSummarizeRunaway checks the runaway/crash distinction rides through
// Summarize without touching the IMM- or effect-side tallies.
func TestSummarizeRunaway(t *testing.T) {
	results := []Result{
		{IMM: imm.PRE, Runaway: true, HasEffect: true, Effect: imm.Crash},
		{IMM: imm.PRE, HasEffect: true, Effect: imm.Crash, Crash: cpu.CrashPageFault},
		{IMM: imm.Benign},
		{Quarantined: true, Err: "boom"},
	}
	s := Summarize(results)
	if s.Total != 3 || s.Quarantined != 1 || s.Runaways != 1 {
		t.Fatalf("summary %+v", s)
	}
	if s.ByEffect[imm.Crash] != 2 {
		t.Errorf("runaway must still count as a Crash effect: %+v", s.ByEffect)
	}
	if s.Corruptions != 2 || s.Benign != 1 {
		t.Errorf("tallies %+v", s)
	}
	str := s.String()
	if !strings.Contains(str, "1 runaway") || !strings.Contains(str, "1 quarantined") {
		t.Errorf("String() = %q must surface runaway and quarantined counts", str)
	}
}
