package campaign

import (
	"runtime"
	"sync/atomic"

	"avgi/internal/obs"
)

// Budget is a study-wide worker pool: a counting semaphore shared by every
// campaign executing under one Study, so the number of live campaign
// workers across all concurrent campaigns never exceeds the machine's
// capacity. A campaign draining its tail releases slots that a queued
// campaign's head picks up immediately — that cross-campaign handoff is
// what keeps every core busy over a multi-pair study instead of idling
// between pairs (the paper's 726k-injection evaluation is throughput-bound
// on exactly this).
//
// A Budget is safe for concurrent use. Acquisition order between campaigns
// is not deterministic, but campaign results never depend on it: each
// worker owns a fixed contiguous chunk of the fault list, so results are
// byte-identical to a serial run regardless of scheduling.
type Budget struct {
	slots chan struct{}
	inUse atomic.Int64

	// parent, when non-nil, makes this budget a carved slice of a larger
	// one: every slot held here also holds a slot of the parent, so the
	// parent's global capacity bounds the sum of all carved children while
	// each child's own capacity caps one tenant's share (see Carve).
	parent *Budget

	// busy, when non-nil, tracks live occupancy as a gauge (set by the
	// owning study; see Study scheduler metrics in docs/SCHEDULING.md).
	busy *obs.Gauge
}

// NewBudget returns a budget of the given worker count; workers <= 0 uses
// all CPUs.
func NewBudget(workers int) *Budget {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Budget{slots: make(chan struct{}, workers)}
}

// Cap returns the budget's total worker count.
func (b *Budget) Cap() int { return cap(b.slots) }

// Carve returns a child budget of at most max workers drawing from b: a
// worker acquired from the child holds one child slot and one parent slot,
// so the child can never occupy more than max of the parent's capacity no
// matter how much work is queued on it. This is the per-tenant fairness
// primitive of the assessment service (docs/SERVICE.md): give each tenant
// a carved budget with max < b.Cap() and a tenant saturating its own slice
// still leaves parent slots that other tenants' requests can claim — one
// tenant's 100k-fault campaign cannot starve another's cache miss.
//
// max <= 0 or max > b.Cap() carves the full parent capacity (no per-child
// cap beyond the shared one). Carving from a carved budget chains: the
// acquire walks every ancestor.
func (b *Budget) Carve(max int) *Budget {
	if max <= 0 || max > b.Cap() {
		max = b.Cap()
	}
	return &Budget{slots: make(chan struct{}, max), parent: b}
}

// Acquire blocks until a worker slot is free in this budget and every
// ancestor it was carved from, and claims them all. Child slots are taken
// before parent slots so a tenant at its own cap queues on itself without
// holding shared capacity hostage while it waits.

// InUse returns the number of currently acquired workers.
func (b *Budget) InUse() int { return int(b.inUse.Load()) }

// SetGauge attaches an occupancy gauge updated on every acquire/release.
// Call before the budget is shared between goroutines.
func (b *Budget) SetGauge(g *obs.Gauge) { b.busy = g }

func (b *Budget) Acquire() {
	b.slots <- struct{}{}
	if b.parent != nil {
		b.parent.Acquire()
	}
	b.inUse.Add(1)
	if b.busy != nil {
		// Gauge.Add (atomic delta) rather than Set(inUse): computing n
		// and setting the gauge non-atomically lets an interleaved
		// release's stale n overwrite a newer value, leaving the gauge
		// permanently wrong once the budget drains.
		b.busy.Add(1)
	}
}

// Release returns a worker slot to the pool (and to every ancestor of a
// carved budget).
func (b *Budget) Release() {
	if b.parent != nil {
		b.parent.Release()
	}
	<-b.slots
	b.inUse.Add(-1)
	if b.busy != nil {
		b.busy.Add(-1)
	}
}
