package campaign

import (
	"runtime"
	"sync/atomic"

	"avgi/internal/obs"
)

// Budget is a study-wide worker pool: a counting semaphore shared by every
// campaign executing under one Study, so the number of live campaign
// workers across all concurrent campaigns never exceeds the machine's
// capacity. A campaign draining its tail releases slots that a queued
// campaign's head picks up immediately — that cross-campaign handoff is
// what keeps every core busy over a multi-pair study instead of idling
// between pairs (the paper's 726k-injection evaluation is throughput-bound
// on exactly this).
//
// A Budget is safe for concurrent use. Acquisition order between campaigns
// is not deterministic, but campaign results never depend on it: each
// worker owns a fixed contiguous chunk of the fault list, so results are
// byte-identical to a serial run regardless of scheduling.
type Budget struct {
	slots chan struct{}
	inUse atomic.Int64

	// busy, when non-nil, tracks live occupancy as a gauge (set by the
	// owning study; see Study scheduler metrics in docs/SCHEDULING.md).
	busy *obs.Gauge
}

// NewBudget returns a budget of the given worker count; workers <= 0 uses
// all CPUs.
func NewBudget(workers int) *Budget {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Budget{slots: make(chan struct{}, workers)}
}

// Cap returns the budget's total worker count.
func (b *Budget) Cap() int { return cap(b.slots) }

// InUse returns the number of currently acquired workers.
func (b *Budget) InUse() int { return int(b.inUse.Load()) }

// SetGauge attaches an occupancy gauge updated on every acquire/release.
// Call before the budget is shared between goroutines.
func (b *Budget) SetGauge(g *obs.Gauge) { b.busy = g }

// Acquire blocks until a worker slot is free and claims it.
func (b *Budget) Acquire() {
	b.slots <- struct{}{}
	b.inUse.Add(1)
	if b.busy != nil {
		// Gauge.Add (atomic delta) rather than Set(inUse): computing n
		// and setting the gauge non-atomically lets an interleaved
		// release's stale n overwrite a newer value, leaving the gauge
		// permanently wrong once the budget drains.
		b.busy.Add(1)
	}
}

// Release returns a worker slot to the pool.
func (b *Budget) Release() {
	<-b.slots
	b.inUse.Add(-1)
	if b.busy != nil {
		b.busy.Add(-1)
	}
}
