package campaign

import (
	"reflect"
	"sync"
	"testing"

	"avgi/internal/cpu"
)

func TestChunkSize(t *testing.T) {
	cases := []struct{ n, w, want int }{
		{0, 4, 0},
		{10, 1, 10},
		{10, 3, 4},
		{10, 4, 3},
		{10, 10, 1},
		{10, 99, 1}, // workers clamp to the list length
		{10, 0, 10}, // non-positive plan degenerates to one chunk
		{7, 2, 4},
	}
	for _, tc := range cases {
		if got := ChunkSize(tc.n, tc.w); got != tc.want {
			t.Errorf("ChunkSize(%d, %d) = %d, want %d", tc.n, tc.w, got, tc.want)
		}
	}
	// The invariant the lease protocol rests on: chunks tile [0, n).
	for _, tc := range cases {
		if tc.n == 0 {
			continue
		}
		covered := 0
		for lo := 0; lo < tc.n; lo += ChunkSize(tc.n, tc.w) {
			hi := lo + ChunkSize(tc.n, tc.w)
			if hi > tc.n {
				hi = tc.n
			}
			covered += hi - lo
		}
		if covered != tc.n {
			t.Errorf("ChunkSize(%d, %d): chunks cover %d faults", tc.n, tc.w, covered)
		}
	}
}

// stripeClaimer grants every chunk whose ordinal (by lo) satisfies
// ordinal % stride == phase — the unit-test model of two processes
// splitting one campaign.
type stripeClaimer struct {
	chunk  int
	stride int
	phase  int

	mu       sync.Mutex
	claimed  [][2]int
	released int
	failed   int
}

func (c *stripeClaimer) Claim(lo, hi int) (func(bool), bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if (lo/c.chunk)%c.stride != c.phase {
		return nil, false
	}
	c.claimed = append(c.claimed, [2]int{lo, hi})
	return func(done bool) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if done {
			c.released++
		} else {
			c.failed++
		}
	}, true
}

// TestRunCampaignClaimerStripes is the distributed split in miniature: two
// RunCampaign calls with complementary stripe claimers must each simulate
// only their own chunks, and the union of their results must equal a plain
// single-process run — the byte-identity guarantee at the Result level.
func TestRunCampaignClaimerStripes(t *testing.T) {
	r := newTestRunner(t, cpu.ConfigA72(), "crc32")
	faults := r.FaultList("RF", 24, 5)
	serial := r.Run(faults, ModeHVF, 0, 1)

	const plan = 4
	chunk := ChunkSize(len(faults), plan)
	var got [2][]Result
	var skipped [2]int
	claimers := [2]*stripeClaimer{
		{chunk: chunk, stride: 2, phase: 0},
		{chunk: chunk, stride: 2, phase: 1},
	}
	for p := 0; p < 2; p++ {
		got[p], skipped[p] = r.RunCampaign(RunSpec{
			Faults: faults, Mode: ModeHVF,
			Budget: NewBudget(2), PlanWorkers: plan,
			Claimer: claimers[p],
		})
	}
	if skipped[0]+skipped[1] != len(faults) {
		t.Errorf("skipped %d + %d faults across both halves, want %d total",
			skipped[0], skipped[1], len(faults))
	}
	for p, c := range claimers {
		if len(c.claimed) == 0 {
			t.Fatalf("claimer %d claimed nothing", p)
		}
		if c.released != len(c.claimed) || c.failed != 0 {
			t.Errorf("claimer %d: %d claims, %d done releases, %d failed releases",
				p, len(c.claimed), c.released, c.failed)
		}
	}
	// Union the two halves chunk-by-chunk and require equality with the
	// serial run; also require each half's claimed chunks to hold exactly
	// the serial results (zero slots only outside its claims).
	union := make([]Result, len(faults))
	for p, c := range claimers {
		for _, ch := range c.claimed {
			for i := ch[0]; i < ch[1]; i++ {
				if !reflect.DeepEqual(got[p][i], serial[i]) {
					t.Fatalf("half %d, fault %d: claimed result diverges from serial run", p, i)
				}
				union[i] = got[p][i]
			}
		}
	}
	if !reflect.DeepEqual(union, serial) {
		t.Error("union of the two striped halves diverges from the serial run")
	}
}

// TestRunCampaignPlanWorkersGeometry pins that the claimer sees chunk
// boundaries derived from PlanWorkers — the fleet-wide plan — not from the
// local budget capacity, so every process of a distributed campaign asks
// for the same [lo, hi) ranges whatever its local core count.
func TestRunCampaignPlanWorkersGeometry(t *testing.T) {
	r := newTestRunner(t, cpu.ConfigA72(), "crc32")
	faults := r.FaultList("RF", 24, 5)
	const plan = 6
	chunk := ChunkSize(len(faults), plan)
	c := &stripeClaimer{chunk: chunk, stride: 1, phase: 0} // claim everything
	res, skipped := r.RunCampaign(RunSpec{
		Faults: faults, Mode: ModeHVF,
		Budget: NewBudget(1), PlanWorkers: plan, Claimer: c,
	})
	if skipped != 0 {
		t.Fatalf("everything-claimer skipped %d faults", skipped)
	}
	var want [][2]int
	for lo := 0; lo < len(faults); lo += chunk {
		hi := lo + chunk
		if hi > len(faults) {
			hi = len(faults)
		}
		want = append(want, [2]int{lo, hi})
	}
	if !reflect.DeepEqual(c.claimed, want) {
		t.Errorf("claimed chunks %v, want plan-derived %v (budget cap must not shape geometry)",
			c.claimed, want)
	}
	if !reflect.DeepEqual(res, r.Run(faults, ModeHVF, 0, 1)) {
		t.Error("plan-worker results diverge from serial run")
	}
}

// TestRunCampaignPriorChunksBypassClaimer: a chunk fully journalled needs
// no lease — its results are durable, so claiming it would only make two
// processes fight over finished work.
func TestRunCampaignPriorChunksBypassClaimer(t *testing.T) {
	r := newTestRunner(t, cpu.ConfigA72(), "crc32")
	faults := r.FaultList("RF", 24, 5)
	serial := r.Run(faults, ModeHVF, 0, 1)
	const plan = 4
	chunk := ChunkSize(len(faults), plan)
	prior := make(map[int]Result)
	for i := 0; i < chunk; i++ { // exactly the first chunk
		prior[i] = serial[i]
	}
	c := &stripeClaimer{chunk: chunk, stride: 1, phase: 0}
	res, skipped := r.RunCampaign(RunSpec{
		Faults: faults, Mode: ModeHVF,
		Budget: NewBudget(2), Prior: prior, PlanWorkers: plan, Claimer: c,
	})
	if skipped != 0 {
		t.Fatalf("skipped %d faults", skipped)
	}
	for _, ch := range c.claimed {
		if ch[0] == 0 {
			t.Error("fully-journalled chunk was claimed")
		}
	}
	if !reflect.DeepEqual(res, serial) {
		t.Error("prior+claimed results diverge from serial run")
	}
}
