package campaign

import (
	"io"
	"strings"
	"testing"

	"avgi/internal/imm"
	"avgi/internal/obs"
)

// TestRunWithObserver drives a parallel campaign with full telemetry
// attached and checks the counters, progress and span agree with the
// results. Run under -race this is also the registry/progress concurrency
// test over the real workload path.
func TestRunWithObserver(t *testing.T) {
	r := shaRunner(t)
	o := obs.New(io.Discard)
	r.Obs = o
	r.PublishGolden()

	const n = 48
	faults := r.FaultList("RF", n, 1)
	results := r.Run(faults, ModeAVGI, 2000, 4)
	if len(results) != n {
		t.Fatalf("%d results", len(results))
	}
	sum := Summarize(results)

	get := func(name string, labels map[string]string) uint64 {
		return o.Metrics.Counter(name, "", labels).Value()
	}
	lb := map[string]string{"structure": "RF", "workload": "sha", "mode": "avgi"}
	if got := get("avgi_campaign_faults_total", lb); got != n {
		t.Errorf("faults_total %d, want %d", got, n)
	}
	if got := get("avgi_campaign_corruptions_total", lb); got != uint64(sum.Corruptions) {
		t.Errorf("corruptions_total %d, want %d", got, sum.Corruptions)
	}
	if got := get("avgi_campaign_sim_cycles_total", lb); got != sum.SimCycles {
		t.Errorf("sim_cycles_total %d, want %d", got, sum.SimCycles)
	}
	if exh := get("avgi_campaign_exhaustive_cycles_est_total", lb); exh < sum.SimCycles {
		t.Errorf("exhaustive estimate %d below actual %d", exh, sum.SimCycles)
	}
	// Every PRF flip lands on live state, so all n faults are armed.
	if got := get("avgi_flips_armed_total", map[string]string{"structure": "RF"}); got != n {
		t.Errorf("flips_armed_total %d, want %d", got, n)
	}

	h := o.Metrics.Histogram("avgi_campaign_fault_sim_cycles", "", nil,
		map[string]string{"mode": "avgi"})
	if got := h.Count(); got != n {
		t.Errorf("sim-cycle histogram count %d, want %d", got, n)
	}
	if got := uint64(h.Sum()); got != sum.SimCycles {
		t.Errorf("sim-cycle histogram sum %d, want %d", got, sum.SimCycles)
	}

	ps := o.Progress.Snapshot()
	if ps.FaultsDone != n || ps.FaultsTotal != n {
		t.Errorf("progress %d/%d, want %d/%d", ps.FaultsDone, ps.FaultsTotal, n, n)
	}
	if len(ps.Pairs) != 1 || ps.Pairs[0].Done != n || ps.Pairs[0].SimCycles != sum.SimCycles {
		t.Errorf("pair state %+v", ps.Pairs)
	}
	if ps.SpeedupVsExhaustive < 1 {
		t.Errorf("speedup %v < 1", ps.SpeedupVsExhaustive)
	}

	var campSpan *obs.Span
	for _, sp := range o.Trace.Spans() {
		if sp.Name == "campaign avgi RF sha" {
			s := sp
			campSpan = &s
		}
	}
	if campSpan == nil {
		t.Fatal("campaign span not recorded")
	}
	if campSpan.Attrs["faults"] != "48" || campSpan.Attrs["structure"] != "RF" {
		t.Errorf("span attrs %v", campSpan.Attrs)
	}

	// Golden gauges from PublishGolden.
	g := o.Metrics.Gauge("avgi_golden_cycles", "",
		map[string]string{"workload": "sha", "machine": r.Cfg.Name})
	if uint64(g.Value()) != r.Golden.Cycles {
		t.Errorf("golden cycles gauge %v, want %d", g.Value(), r.Golden.Cycles)
	}
}

// TestRunObservedMatchesUnobserved checks instrumentation does not change
// campaign results: the observed path must be bit-identical to the plain
// one.
func TestRunObservedMatchesUnobserved(t *testing.T) {
	r := shaRunner(t)
	faults := r.FaultList("ROB", 30, 1)
	plain := r.Run(faults, ModeHVF, 0, 2)

	r.Obs = obs.New(io.Discard)
	observed := r.Run(faults, ModeHVF, 0, 2)
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("result %d diverged: %+v vs %+v", i, plain[i], observed[i])
		}
	}
}

func TestFaultListUnknownStructurePanics(t *testing.T) {
	r := shaRunner(t)
	for _, fn := range []func(){
		func() { r.FaultList("L1D", 10, 1) }, // plausible misspelling of "L1D (Data)"
		func() { r.MultiBitFaultList("rf", 10, 2, 1) },
	} {
		func() {
			defer func() {
				msg, _ := recover().(string)
				if msg == "" {
					t.Fatal("no panic for unknown structure")
				}
				if !strings.Contains(msg, "unknown structure") || !strings.Contains(msg, "RF") {
					t.Errorf("panic message %q does not name the known structures", msg)
				}
			}()
			fn()
		}()
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{
		Total: 10, Corruptions: 4, Benign: 6, SimCycles: 1234,
		ByIMM: map[imm.IMM]int{imm.Benign: 6, imm.IFC: 1, imm.DCR: 3},
	}
	want := "10 faults: 4 corruptions, 6 benign (IFC 1, DCR 3), 1234 sim cycles"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}

	empty := Summary{}
	if got := empty.String(); got != "0 faults: 0 corruptions, 0 benign" {
		t.Errorf("empty String() = %q", got)
	}
}
