package campaign

import (
	"math"
	"testing"

	"avgi/internal/cpu"
	"avgi/internal/imm"
	"avgi/internal/prog"
)

// TestMultiBitFaultsIncreaseCorruption reproduces the Section VII.A
// discussion: spatial multi-bit upsets raise the corruption probability
// (and hence the final AVF) relative to single-bit upsets, while the
// methodology's observation machinery (IMM classification) applies
// unchanged.
func TestMultiBitFaultsIncreaseCorruption(t *testing.T) {
	cfg := cpu.ConfigA72()
	w, err := prog.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(cfg, w.Build(cfg.Variant))
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	single := Summarize(r.Run(r.FaultList("RF", n, 21), ModeExhaustive, 0, 0))
	quad := Summarize(r.Run(r.MultiBitFaultList("RF", n, 4, 21), ModeExhaustive, 0, 0))
	if quad.Corruptions < single.Corruptions {
		t.Errorf("4-bit upsets corrupt less (%d) than single-bit (%d)",
			quad.Corruptions, single.Corruptions)
	}
	// Multi-bit corruptions in the register file must still classify
	// into the same dominant class (DCR).
	if quad.Corruptions > 0 && quad.ByIMM[imm.DCR] == 0 {
		t.Errorf("4-bit RF corruptions missing DCR: %v", quad.ByIMM)
	}
	vSDCcrash := func(s Summary) int { return s.ByEffect[imm.SDC] + s.ByEffect[imm.Crash] }
	if vSDCcrash(quad) < vSDCcrash(single) {
		t.Errorf("4-bit visible effects %d below single-bit %d", vSDCcrash(quad), vSDCcrash(single))
	}
}

func TestMultiBitListWidth(t *testing.T) {
	cfg := cpu.ConfigA72()
	w, _ := prog.ByName("bitcount")
	r, err := NewRunner(cfg, w.Build(cfg.Variant))
	if err != nil {
		t.Fatal(err)
	}
	fs := r.MultiBitFaultList("ROB", 20, 3, 1)
	for _, f := range fs {
		if f.Bits() != 3 {
			t.Fatalf("width %d", f.Bits())
		}
	}
	// Deterministic across regenerations.
	fs2 := r.MultiBitFaultList("ROB", 20, 3, 1)
	for i := range fs {
		if fs[i] != fs2[i] {
			t.Fatal("nondeterministic multi-bit list")
		}
	}
}

// TestIMMDistributionInvariantAcrossMicroarchitectures reproduces the
// Section VII.B claim: for a given workload, changing the
// microarchitecture (here: a much weaker branch predictor, which raises
// misprediction rates and therefore hardware masking) changes the absolute
// number of benign faults but not the statistical distribution of IMMs
// over corruptions.
func TestIMMDistributionInvariantAcrossMicroarchitectures(t *testing.T) {
	if testing.Short() {
		t.Skip("two campaigns in -short mode")
	}
	w, err := prog.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}

	strong := cpu.ConfigA72()
	weak := cpu.ConfigA72()
	weak.Name = "A72-weak-bp"
	weak.BPBits = 2
	weak.BTBEntries = 2
	weak.IssueWidth = 2
	weak.CommitWidth = 2

	const n = 200
	dist := func(cfg cpu.Config, structure string) (map[imm.IMM]float64, Summary) {
		r, err := NewRunner(cfg, w.Build(cfg.Variant))
		if err != nil {
			t.Fatal(err)
		}
		s := Summarize(r.Run(r.FaultList(structure, n, 31), ModeExhaustive, 0, 0))
		return s.IMMFractions(), s
	}

	for _, structure := range []string{"RF", "L1I (Data)"} {
		dStrong, sStrong := dist(strong, structure)
		dWeak, sWeak := dist(weak, structure)
		if sStrong.Corruptions == 0 || sWeak.Corruptions == 0 {
			t.Fatalf("%s: no corruptions observed", structure)
		}
		for _, c := range imm.Classes {
			if c == imm.ESC {
				continue
			}
			if d := math.Abs(dStrong[c] - dWeak[c]); d > 0.25 {
				t.Errorf("%s/%v: IMM fraction diverges across microarchitectures: %.2f vs %.2f",
					structure, c, dStrong[c], dWeak[c])
			}
		}
		t.Logf("%s: corruptions strong=%d weak=%d (absolute counts may differ; distributions must not)",
			structure, sStrong.Corruptions, sWeak.Corruptions)
	}
}
