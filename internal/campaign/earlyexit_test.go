package campaign

import (
	"io"
	"reflect"
	"testing"

	"avgi/internal/cpu"
	"avgi/internal/fault"
	"avgi/internal/forensics"
	"avgi/internal/imm"
	"avgi/internal/obs"
)

// stripSimCycles zeroes the one field a convergence early exit legitimately
// changes: the simulated-cycle cost of the (now shorter) faulty window.
// Every classification field must survive the strip untouched.
func stripSimCycles(r Result) Result {
	r.SimCycles = 0
	return r
}

// TestEarlyExitDifferential proves the convergence oracle is
// classification-identical to full-ERT windows: for every fault, the
// early-exit run must agree with the full-window run on every Result field
// except SimCycles, and the campaign summaries (IMM distribution, AVF
// fractions) must match exactly. Runs four structures across two workloads
// so the register-file, queue, cache-data and cache-tag probe flavors are
// all exercised.
func TestEarlyExitDifferential(t *testing.T) {
	structures := []string{"RF", "ROB", "L1D (Data)", "L1D (Tag)"}
	exits := 0
	for _, workload := range []string{"sha", "crc32"} {
		r := newTestRunner(t, cpu.ConfigA72(), workload)
		for _, st := range structures {
			faults := r.FaultList(st, 72, 11)
			r.EarlyExit = false
			full := r.Run(faults, ModeAVGI, 2000, 4)
			r.EarlyExit = true
			fast := r.Run(faults, ModeAVGI, 2000, 4)
			for i := range full {
				if stripSimCycles(fast[i]) != stripSimCycles(full[i]) {
					t.Fatalf("%s/%s fault %d (%s): early exit changed the classification:\n  full %+v\n  fast %+v",
						workload, st, i, faults[i], full[i], fast[i])
				}
				if fast[i].SimCycles > full[i].SimCycles {
					t.Errorf("%s/%s fault %d: early exit lengthened the window (%d > %d cycles)",
						workload, st, i, fast[i].SimCycles, full[i].SimCycles)
				}
				if fast[i].SimCycles < full[i].SimCycles {
					exits++
				}
			}
			fs, ff := Summarize(fast), Summarize(full)
			if !reflect.DeepEqual(fs.ByIMM, ff.ByIMM) || fs.Corruptions != ff.Corruptions {
				t.Errorf("%s/%s: summaries diverged: %v vs %v", workload, st, fs.ByIMM, ff.ByIMM)
			}
			if !reflect.DeepEqual(fs.IMMFractions(), ff.IMMFractions()) {
				t.Errorf("%s/%s: IMM fractions diverged", workload, st)
			}
		}
	}
	// The oracle must actually fire somewhere, or this test proves nothing.
	if exits == 0 {
		t.Error("no fault ended its window early across 8 campaigns; oracle never fired")
	}
}

// TestEarlyExitForensicsIdentical pins that the probe facts an early exit
// freezes are the facts the full window would have recorded: once every
// site is dead and unread, no further probe event can fire, so the
// attribution must be bit-identical.
func TestEarlyExitForensicsIdentical(t *testing.T) {
	r := shaRunner(t)
	r.Forensics = forensics.NewExplorer()
	r.ForensicsSample = 1
	faults := r.FaultList("RF", 48, 7)
	r.EarlyExit = false
	full := r.Run(faults, ModeAVGI, 2000, 4)
	r.EarlyExit = true
	fast := r.Run(faults, ModeAVGI, 2000, 4)
	for i := range full {
		if !reflect.DeepEqual(full[i].Forensics, fast[i].Forensics) {
			t.Fatalf("fault %d: forensics diverged under early exit:\n  full %+v\n  fast %+v",
				i, full[i].Forensics, fast[i].Forensics)
		}
	}
}

// TestEarlyExitJournalResume re-runs an early-exit campaign through the
// resume path with a partial prior-result map: resumed results must be
// byte-identical (SimCycles included) to the uninterrupted run, so a study
// journal written with -early-exit resumes without reclassification drift.
func TestEarlyExitJournalResume(t *testing.T) {
	r := shaRunner(t)
	r.EarlyExit = true
	faults := r.FaultList("RF", 64, 11)
	base := r.Run(faults, ModeAVGI, 2000, 4)

	// 64 faults / 4 workers = 16-fault chunks: indices 0-15 cover chunk 0
	// entirely (the allPrior fast path); i%5 scatters holes elsewhere.
	prior := make(map[int]Result)
	for i := range faults {
		if i < 16 || i%5 == 0 {
			prior[i] = base[i]
		}
	}
	resumed := r.RunBudgetResume(faults, ModeAVGI, 2000, NewBudget(4), prior, nil)
	for i := range resumed {
		if resumed[i] != base[i] {
			t.Fatalf("fault %d diverged after resume: %+v vs %+v", i, resumed[i], base[i])
		}
	}
}

// TestAVGIWindowBoundary pins the faulty-window boundary on both machine
// variants: the window is [inject, inject+ert] inclusive, so a deviation
// landing exactly on the expiry cycle classifies as a deviation, while one
// cycle less of window makes the same fault Benign.
func TestAVGIWindowBoundary(t *testing.T) {
	for _, cfg := range []cpu.Config{cpu.ConfigA72(), cpu.ConfigA15()} {
		t.Run(cfg.Name, func(t *testing.T) {
			r := newTestRunner(t, cfg, "sha")
			faults := r.FaultList("RF", 200, 3)
			hvf := r.Run(faults, ModeHVF, 0, 4)
			pick := -1
			for i, res := range hvf {
				if res.Manifested && res.ManifestLatency >= 2 {
					pick = i
					break
				}
			}
			if pick < 0 {
				t.Fatal("no RF fault manifested with latency >= 2 under HVF")
			}
			one := []fault.Fault{faults[pick]}
			lat := hvf[pick].ManifestLatency
			for _, ee := range []bool{false, true} {
				r.EarlyExit = ee
				// ert = latency: the deviating commit lands exactly on the
				// window-expiry cycle and must still count.
				at := r.Run(one, ModeAVGI, lat, 1)[0]
				if !at.Manifested || at.ManifestLatency != lat {
					t.Errorf("early-exit=%v ert=%d: deviation on the expiry cycle dropped: %+v", ee, lat, at)
				}
				// One cycle short: the deviation is outside the window.
				before := r.Run(one, ModeAVGI, lat-1, 1)[0]
				if before.Manifested || before.IMM != imm.Benign {
					t.Errorf("early-exit=%v ert=%d: out-of-window deviation classified %v (manifested=%v)",
						ee, lat-1, before.IMM, before.Manifested)
				}
				// One cycle long: unambiguously inside.
				after := r.Run(one, ModeAVGI, lat+1, 1)[0]
				if !after.Manifested || after.ManifestLatency != lat {
					t.Errorf("early-exit=%v ert=%d: in-window deviation dropped: %+v", ee, lat+1, after)
				}
			}
		})
	}
}

// TestClusterSharedL2CountedOnce pins the shared-L2 aliasing semantics: the
// c<k>/L2 names are injection aliases for one physical array, so their
// populations are identical, the data array matches the single-core machine
// exactly, and UniqueBitCounts collapses the aliases so AVF denominators
// and bit-space sums count the shared array once.
func TestClusterSharedL2CountedOnce(t *testing.T) {
	single := shaRunner(t)
	cl := shaClusterRunner(t, 2)

	for _, st := range []string{"L2 (Tag)", "L2 (Data)"} {
		c0, c1 := cl.BitCounts["c0/"+st], cl.BitCounts["c1/"+st]
		if c0 == 0 || c0 != c1 {
			t.Errorf("%s alias populations differ: c0=%d c1=%d", st, c0, c1)
		}
	}
	// The shared data array is bit-for-bit the single-core one. The tag
	// array keeps the same line count but each entry widens by the
	// core-select address bits the shared L2 absorbs (mem/shared.go), so
	// it only grows — it never doubles per core.
	if d, s := cl.BitCounts["c0/L2 (Data)"], single.BitCounts["L2 (Data)"]; d != s {
		t.Errorf("shared L2 data population %d, want single-core %d", d, s)
	}
	if ct, st := cl.BitCounts["c0/L2 (Tag)"], single.BitCounts["L2 (Tag)"]; ct < st || ct >= 2*st {
		t.Errorf("shared L2 tag population %d vs single-core %d: want wider entries, not a per-core copy", ct, st)
	}

	u := cl.UniqueBitCounts()
	if len(u) != 22 {
		t.Errorf("UniqueBitCounts has %d entries for 2 cores, want 22 (24 targets minus 2 L2 aliases)", len(u))
	}
	for _, alias := range []string{"c1/L2 (Tag)", "c1/L2 (Data)"} {
		if _, ok := u[alias]; ok {
			t.Errorf("UniqueBitCounts still lists shared alias %q", alias)
		}
	}
	if u["c0/L2 (Data)"] != cl.BitCounts["c0/L2 (Data)"] {
		t.Error("UniqueBitCounts changed the canonical L2 population")
	}
	// Single-core names are their own canonical form.
	if su := single.UniqueBitCounts(); !reflect.DeepEqual(su, single.BitCounts) {
		t.Errorf("single-core UniqueBitCounts deviates from BitCounts: %v vs %v", su, single.BitCounts)
	}

	// Fault-list generation over an alias draws from the same bit space.
	for _, f := range cl.FaultList("c1/L2 (Data)", 40, 9) {
		if f.Bit >= cl.BitCounts["c0/L2 (Data)"] {
			t.Fatalf("alias fault bit %d beyond the shared array (%d bits)", f.Bit, cl.BitCounts["c0/L2 (Data)"])
		}
	}
}

// TestEarlyExitMetricsPublished asserts the window-oracle counters reach
// the metrics registry with the campaign's structure/workload/mode labels.
func TestEarlyExitMetricsPublished(t *testing.T) {
	r := shaRunner(t)
	r.Obs = obs.New(io.Discard)
	r.EarlyExit = true
	faults := r.FaultList("RF", 64, 5)
	r.Run(faults, ModeAVGI, 2000, 4)

	lb := map[string]string{"structure": "RF", "workload": "sha", "mode": "avgi"}
	exits := r.Obs.Metrics.Counter("avgi_window_early_exit_total", "", lb).Value()
	saved := r.Obs.Metrics.Counter("avgi_window_cycles_saved_total", "", lb).Value()
	if exits == 0 {
		t.Fatal("avgi_window_early_exit_total = 0; oracle never fired on an RF campaign")
	}
	if saved == 0 {
		t.Error("avgi_window_cycles_saved_total = 0 despite early exits")
	}
}

// TestCursorBatchingSameCycle pins the same-cycle fault batch: when
// consecutive cursor faults share an injection cycle, one cycle-aligned
// snapshot serves the whole batch and every fault after the first counts
// as batched (no SyncSnapshot re-arm).
func TestCursorBatchingSameCycle(t *testing.T) {
	r := shaRunner(t)
	r.Obs = obs.New(io.Discard)
	r.ForkPolicy = ForkCursor

	cyc := r.FaultList("RF", 1, 5)[0].Cycle
	faults := make([]fault.Fault, 6)
	for i := range faults {
		faults[i] = fault.Fault{ID: i, Structure: "RF", Bit: uint64(7*i + 1), Cycle: cyc}
	}
	// One worker, one chunk: fault 0 arms the snapshot, 1-5 batch on it.
	res := r.Run(faults, ModeAVGI, 500, 1)
	for i, rr := range res {
		if rr.Quarantined {
			t.Fatalf("fault %d quarantined: %s", i, rr.Err)
		}
	}
	lb := map[string]string{"structure": "RF", "workload": "sha", "mode": "avgi"}
	batched := r.Obs.Metrics.Counter("avgi_cursor_batched_faults_total", "", lb).Value()
	if batched != uint64(len(faults)-1) {
		t.Errorf("avgi_cursor_batched_faults_total = %d, want %d", batched, len(faults)-1)
	}
}
