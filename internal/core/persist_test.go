package core

import (
	"bytes"
	"strings"
	"testing"

	"avgi/internal/campaign"
	"avgi/internal/imm"
)

func sampleEstimator() *Estimator {
	return &Estimator{
		Weights: &Weights{
			P: map[string]map[imm.IMM]EffectProbs{
				"RF":         {imm.DCR: {0.7, 0.2, 0.1}},
				"L1I (Data)": {imm.OFS: {0.4, 0.3, 0.3}, imm.IRP: {0.1, 0.2, 0.7}},
			},
			Spread: map[string]map[imm.IMM]float64{
				"RF": {imm.DCR: 0.02},
			},
		},
		ESC: &ESCModel{C: map[string]float64{"L2 (Data)": 123.4}},
		ERT: map[string]ERT{
			"RF":  {Cycles: 1500},
			"ROB": {Frac: 0.04, Relative: true},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := sampleEstimator()
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p := got.Weights.Lookup("RF", imm.DCR); p != (EffectProbs{0.7, 0.2, 0.1}) {
		t.Errorf("weights: %v", p)
	}
	if p := got.Weights.Lookup("L1I (Data)", imm.IRP); p != (EffectProbs{0.1, 0.2, 0.7}) {
		t.Errorf("weights irp: %v", p)
	}
	if got.Weights.Spread["RF"][imm.DCR] != 0.02 {
		t.Error("spread lost")
	}
	if got.ESC.C["L2 (Data)"] != 123.4 {
		t.Error("esc lost")
	}
	if got.ERT["RF"] != (ERT{Cycles: 1500}) {
		t.Errorf("ert rf: %+v", got.ERT["RF"])
	}
	if got.ERT["ROB"] != (ERT{Frac: 0.04, Relative: true}) {
		t.Errorf("ert rob: %+v", got.ERT["ROB"])
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadEstimator(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadEstimator(strings.NewReader(`{"weights":{"RF":{"BOGUS":[1,0,0]}}}`)); err == nil {
		t.Error("unknown IMM class accepted")
	}
	// Invalid probability vectors are rejected by validation.
	if _, err := LoadEstimator(strings.NewReader(`{"weights":{"RF":{"DCR":[0.9,0.9,0.9]}}}`)); err == nil {
		t.Error("non-normalised weights accepted")
	}
}

func TestLoadEmptyEstimator(t *testing.T) {
	got, err := LoadEstimator(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	// Must be usable: lookups fall back, ESC predicts zero.
	if p := got.Weights.Lookup("RF", imm.Benign); p != (EffectProbs{1, 0, 0}) {
		t.Errorf("benign lookup: %v", p)
	}
	if got.ESC.Predict("L2 (Data)", 1024, 100, 50) != 0 {
		t.Error("empty ESC should predict zero")
	}
}

func TestDeriveERTMarginScales(t *testing.T) {
	d := map[string]map[string][]campaign.Result{
		"RF": {"a": {
			{Manifested: true, ManifestLatency: 400},
			{},
		}},
	}
	small := DeriveERTMargin(d, nil, 0.5)
	big := DeriveERTMargin(d, nil, 2.0)
	if small["RF"].Cycles != 200 || big["RF"].Cycles != 800 {
		t.Errorf("windows: %d, %d", small["RF"].Cycles, big["RF"].Cycles)
	}
	// Non-positive margin falls back to the default (1.25).
	def := DeriveERTMargin(d, nil, 0)
	if def["RF"].Cycles != 500 {
		t.Errorf("default margin window: %d", def["RF"].Cycles)
	}
}
