package core

import (
	"avgi/internal/campaign"
	"avgi/internal/imm"
)

// AVF is a final cross-layer vulnerability breakdown: the probability that
// a uniformly random single-bit fault in a structure is Masked, causes an
// SDC, or causes a Crash. Masked includes hardware-masked (benign) faults,
// so AVF = SDC + Crash.
type AVF struct {
	Masked float64
	SDC    float64
	Crash  float64
}

// Total returns SDC + Crash — the classical AVF scalar.
func (a AVF) Total() float64 { return a.SDC + a.Crash }

// AVFFromEffects converts exhaustive-campaign effect counts into an AVF.
func AVFFromEffects(s campaign.Summary) AVF {
	if s.Total == 0 {
		return AVF{}
	}
	t := float64(s.Total)
	return AVF{
		Masked: float64(s.ByEffect[imm.Masked]) / t,
		SDC:    float64(s.ByEffect[imm.SDC]) / t,
		Crash:  float64(s.ByEffect[imm.Crash]) / t,
	}
}

// Estimator is the trained AVGI methodology: IMM weights, the ESC model
// and the ERT windows. Train builds one from exhaustive campaigns on
// training workloads; Assess then evaluates new workloads with short AVGI
// runs only.
type Estimator struct {
	Weights *Weights
	ESC     *ESCModel
	ERT     map[string]ERT
}

// TrainingData bundles the exhaustive campaigns used for training.
type TrainingData struct {
	// Results[structure][workload] holds ModeExhaustive campaign
	// results.
	Results map[string]map[string][]campaign.Result
	// OutputSize maps workload name to golden output bytes.
	OutputSize map[string]int
	// TotalCycles maps workload name to golden cycle count.
	TotalCycles map[string]uint64
	// Exposure[structure][workload] is the golden run's dirty-output
	// occupancy fraction (campaign.Runner.OutputExposure).
	Exposure map[string]map[string]float64
}

// Train fits all three components from ground-truth campaigns.
func Train(td TrainingData) *Estimator {
	return TrainWithMargin(td, 0)
}

// TrainWithMargin is Train with an explicit ERT safety margin (0 uses the
// default), exposed for the accuracy-versus-speed ablation.
func TrainWithMargin(td TrainingData, margin float64) *Estimator {
	return &Estimator{
		Weights: TrainWeights(td.Results),
		ESC:     TrainESC(td.Results, td.Exposure),
		ERT:     DeriveERTMargin(td.Results, td.TotalCycles, margin),
	}
}

// Assessment is the output of the five-phase AVGI flow for one
// (structure, workload) pair.
type Assessment struct {
	Structure string
	Workload  string

	// Faults is the campaign size (no pruning — every sampled fault is
	// individually simulated, preserving statistical significance).
	Faults int

	// IMMCounts is the phase-3 classification (Benign included).
	IMMCounts map[imm.IMM]int

	// PredictedESC is the phase-4 escaped-fault estimate.
	PredictedESC float64

	// AVF is the phase-5 final cross-layer vulnerability.
	AVF AVF

	// SimCycles is the total post-injection simulated cycles consumed —
	// the cost the Table II speedups compare.
	SimCycles uint64

	// Window is the ERT stop window used.
	Window uint64
}

// Assess runs phases 1–5 of the methodology for one structure of one
// workload: generate the fault list (phase 1), simulate each fault on the
// detailed machine until its first software manifestation or the ERT stop
// (phase 2), classify manifestations into IMMs (phase 3), apply the
// per-structure weights and the ESC correction (phase 4), and produce the
// final AVF (phase 5).
func (e *Estimator) Assess(r *campaign.Runner, structure string, n int, seedBase int64, workers int) Assessment {
	faults := r.FaultList(structure, n, seedBase)
	window := e.windowFor(structure, r.Golden.Cycles)
	results := r.Run(faults, campaign.ModeAVGI, window, workers)
	return e.assessResults(r, structure, results, window)
}

// AssessResults applies phases 4 and 5 to already-simulated AVGI results
// (used when the caller wants the raw results too).
func (e *Estimator) AssessResults(r *campaign.Runner, structure string, results []campaign.Result, window uint64) Assessment {
	return e.assessResults(r, structure, results, window)
}

// WindowFor resolves the ERT stop window for a structure on a workload
// with the given golden length.
func (e *Estimator) WindowFor(structure string, goldenCycles uint64) uint64 {
	return e.windowFor(structure, goldenCycles)
}

func (e *Estimator) windowFor(structure string, goldenCycles uint64) uint64 {
	ert, ok := e.ERT[structure]
	if !ok {
		return goldenCycles // no window: degenerate to HVF
	}
	return ert.Window(goldenCycles)
}

func (e *Estimator) assessResults(r *campaign.Runner, structure string, results []campaign.Result, window uint64) Assessment {
	s := campaign.Summarize(results)
	a := Assessment{
		Structure: structure,
		Workload:  r.Prog.Name,
		Faults:    s.Total,
		IMMCounts: s.ByIMM,
		SimCycles: s.SimCycles,
		Window:    window,
	}
	if s.Total == 0 {
		return a
	}

	// Phase 4: effect classification through the per-structure weights.
	var masked, sdc, crash float64
	for class, count := range s.ByIMM {
		p := e.Weights.Lookup(structure, class)
		masked += float64(count) * p[imm.Masked]
		sdc += float64(count) * p[imm.SDC]
		crash += float64(count) * p[imm.Crash]
	}

	// Phase 4b: ESC correction — a predicted share of the benign faults
	// escaped through dirty output lines and become SDCs.
	esc := e.ESC.Predict(structure, r.OutputExposure[structure], s.Total, s.Benign)
	if esc > masked {
		esc = masked
	}
	a.PredictedESC = esc
	masked -= esc
	sdc += esc

	// Phase 5: final cross-layer AVF.
	t := float64(s.Total)
	a.AVF = AVF{Masked: masked / t, SDC: sdc / t, Crash: crash / t}
	return a
}
