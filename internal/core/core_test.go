package core

import (
	"math"
	"testing"

	"avgi/internal/campaign"
	"avgi/internal/cpu"
	"avgi/internal/imm"
	"avgi/internal/prog"
)

// fabricate builds an exhaustive result list with the given (imm, effect)
// counts.
func fabricate(counts map[imm.IMM]map[imm.Effect]int) []campaign.Result {
	var out []campaign.Result
	for class, effects := range counts {
		for eff, n := range effects {
			for i := 0; i < n; i++ {
				out = append(out, campaign.Result{IMM: class, Effect: eff, HasEffect: true, Manifested: class != imm.Benign && class != imm.ESC})
			}
		}
	}
	return out
}

func TestTrainWeightsMeansAcrossWorkloads(t *testing.T) {
	data := map[string]map[string][]campaign.Result{
		"L1I (Data)": {
			// Workload A: OFS is 40% masked, 60% crash.
			"a": fabricate(map[imm.IMM]map[imm.Effect]int{
				imm.OFS: {imm.Masked: 4, imm.Crash: 6},
			}),
			// Workload B: OFS is 60% masked, 40% crash.
			"b": fabricate(map[imm.IMM]map[imm.Effect]int{
				imm.OFS: {imm.Masked: 6, imm.Crash: 4},
			}),
		},
	}
	w := TrainWeights(data)
	p := w.Lookup("L1I (Data)", imm.OFS)
	if math.Abs(p[imm.Masked]-0.5) > 1e-9 || math.Abs(p[imm.Crash]-0.5) > 1e-9 {
		t.Errorf("OFS weights %v, want 0.5/0/0.5", p)
	}
	if err := w.Validate(); err != nil {
		t.Error(err)
	}
	if w.Spread["L1I (Data)"][imm.OFS] < 0.09 {
		t.Errorf("spread = %f, expected ~0.1", w.Spread["L1I (Data)"][imm.OFS])
	}
	if len(w.Structures()) != 1 {
		t.Error("structures")
	}
}

func TestWeightsLookupFallbacks(t *testing.T) {
	w := TrainWeights(nil)
	if p := w.Lookup("RF", imm.Benign); p != (EffectProbs{1, 0, 0}) {
		t.Errorf("benign: %v", p)
	}
	if p := w.Lookup("RF", imm.DCR); p != (EffectProbs{0, 0.5, 0.5}) {
		t.Errorf("unseen class prior: %v", p)
	}
}

func TestESCShapeProperties(t *testing.T) {
	// Larger output -> larger shape; more benign (same total+benign
	// denominator behaviour) -> smaller.
	if ESCShape(4096, 100, 50) <= ESCShape(1024, 100, 50) {
		t.Error("shape should grow with output size")
	}
	if ESCShape(1024, 100, 90) >= ESCShape(1024, 100, 10) {
		t.Error("shape should shrink as benign approaches total")
	}
	if ESCShape(1024, 0, 0) != 0 {
		t.Error("degenerate shape")
	}
}

func TestTrainESCAndPredict(t *testing.T) {
	// Build training data with a known ESC count and check the model
	// recovers it for the same exposure conditions.
	results := fabricate(map[imm.IMM]map[imm.Effect]int{
		imm.Benign: {imm.Masked: 80},
		imm.DCR:    {imm.SDC: 10},
		imm.ESC:    {imm.SDC: 10},
	})
	data := map[string]map[string][]campaign.Result{
		"L2 (Data)": {"blowfishy": results},
		"RF":        {"blowfishy": results},
	}
	exposure := map[string]map[string]float64{
		"L2 (Data)": {"blowfishy": 0.2},
		"RF":        {"blowfishy": 0.2},
	}
	m := TrainESC(data, exposure)
	if m.C["RF"] != 0 {
		t.Error("RF must not have an ESC constant")
	}
	got := m.Predict("L2 (Data)", 0.2, 100, 90)
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("self-prediction = %f, want 10", got)
	}
	// Prediction scales linearly with exposure.
	if p := m.Predict("L2 (Data)", 0.1, 100, 90); math.Abs(p-5) > 1e-9 {
		t.Errorf("half exposure = %f, want 5", p)
	}
	if m.Predict("RF", 0.2, 100, 90) != 0 {
		t.Error("RF prediction must be 0")
	}
	if m.Predict("L2 (Data)", 0, 100, 90) != 0 {
		t.Error("zero exposure must predict zero")
	}
	// Clamped to the benign population.
	if p := m.Predict("L2 (Data)", 1000, 100, 5); p > 5 {
		t.Errorf("prediction %f exceeds benign count", p)
	}
}

func TestDeriveERT(t *testing.T) {
	mk := func(lat ...uint64) []campaign.Result {
		var out []campaign.Result
		for _, l := range lat {
			out = append(out, campaign.Result{Manifested: true, ManifestLatency: l})
		}
		out = append(out, campaign.Result{}) // one benign
		return out
	}
	data := map[string]map[string][]campaign.Result{
		"RF":  {"a": mk(100, 400), "b": mk(300)},
		"ROB": {"a": mk(100), "b": mk(50)},
	}
	totals := map[string]uint64{"a": 10000, "b": 1000}
	ert := DeriveERT(data, totals)
	rf := ert["RF"]
	if rf.Relative {
		t.Error("RF must be absolute")
	}
	if rf.Cycles != uint64(400*ertSafety) {
		t.Errorf("RF window %d", rf.Cycles)
	}
	rob := ert["ROB"]
	if !rob.Relative {
		t.Fatal("ROB must be relative")
	}
	// Max fraction is 50/1000 = 5% from workload b.
	if math.Abs(rob.Frac-0.05*ertSafety) > 1e-9 {
		t.Errorf("ROB frac %f", rob.Frac)
	}
	if rob.Window(2000) != uint64(0.05*ertSafety*2000) {
		t.Errorf("window %d", rob.Window(2000))
	}
	// Defaults for unobserved structures.
	empty := DeriveERT(map[string]map[string][]campaign.Result{
		"LQ": {}, "DTLB": {},
	}, nil)
	if !empty["LQ"].Relative || empty["LQ"].Frac != 0.03 {
		t.Errorf("LQ default %+v", empty["LQ"])
	}
	if empty["DTLB"].Cycles != 1000 {
		t.Errorf("DTLB default %+v", empty["DTLB"])
	}
}

func TestLatencyPercentile(t *testing.T) {
	rs := []campaign.Result{
		{Manifested: true, ManifestLatency: 10},
		{Manifested: true, ManifestLatency: 20},
		{Manifested: true, ManifestLatency: 30},
		{Manifested: true, ManifestLatency: 1000},
		{},
	}
	if p := LatencyPercentile(rs, 0); p != 10 {
		t.Errorf("p0 = %d", p)
	}
	if p := LatencyPercentile(rs, 1); p != 1000 {
		t.Errorf("p100 = %d", p)
	}
	// With 4 samples, p50 must round UP to index 2 (30) like quantIdx —
	// the truncating int(p*(n-1)) would pick 20 and under-report the
	// latency the ERT derivation uses on small samples.
	if p := LatencyPercentile(rs, 0.5); p != 30 {
		t.Errorf("p50 = %d", p)
	}
	if LatencyPercentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
}

// TestLatencyPercentileMatchesQuantIdx pins LatencyPercentile to the same
// quantile rule the ERT derivation uses (quantIdx), across small sample
// sizes where truncating vs rounding up diverge.
func TestLatencyPercentileMatchesQuantIdx(t *testing.T) {
	for n := 1; n <= 7; n++ {
		var rs []campaign.Result
		for i := 0; i < n; i++ {
			rs = append(rs, campaign.Result{Manifested: true, ManifestLatency: uint64(100 * (i + 1))})
		}
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			want := uint64(100 * (quantIdx(n, p) + 1))
			if got := LatencyPercentile(rs, p); got != want {
				t.Errorf("n=%d p=%g: LatencyPercentile = %d, quantIdx sample = %d", n, p, got, want)
			}
		}
	}
}

func TestAVFFromEffects(t *testing.T) {
	s := campaign.Summarize(fabricate(map[imm.IMM]map[imm.Effect]int{
		imm.Benign: {imm.Masked: 5},
		imm.DCR:    {imm.SDC: 3, imm.Crash: 2},
	}))
	a := AVFFromEffects(s)
	if a.Masked != 0.5 || a.SDC != 0.3 || a.Crash != 0.2 {
		t.Errorf("%+v", a)
	}
	if math.Abs(a.Total()-0.5) > 1e-9 {
		t.Errorf("total %f", a.Total())
	}
	if (AVFFromEffects(campaign.Summary{})) != (AVF{}) {
		t.Error("empty AVF")
	}
}

func TestFIT(t *testing.T) {
	f := FITOf(AVF{SDC: 0.1, Crash: 0.2}, 1000)
	wantSDC := RawFITPerBit * 1000 * 0.1
	if math.Abs(f.SDC-wantSDC) > 1e-12 {
		t.Errorf("SDC FIT %g", f.SDC)
	}
	if math.Abs(f.Total()-RawFITPerBit*1000*0.3) > 1e-12 {
		t.Errorf("total FIT %g", f.Total())
	}
	sum := f.Add(f)
	if math.Abs(sum.Total()-2*f.Total()) > 1e-12 {
		t.Error("Add")
	}
}

func TestTimingRow(t *testing.T) {
	r := TimingRow{Structure: "RF", SFICycles: 1000000, HVFCycles: 160000, AVGICycles: 3000}
	if s := r.SpeedupInsight12(); math.Abs(s-6.25) > 1e-9 {
		t.Errorf("insight 1&2 %f", s)
	}
	if s := r.SpeedupInsight3(); math.Abs(s-333.33) > 0.01 {
		t.Errorf("insight 3 %f", s)
	}
	if o := r.OrdersOfMagnitude(); math.Abs(o-math.Log10(1000000.0/3000)) > 1e-9 {
		t.Errorf("orders %f", o)
	}
	if (TimingRow{}).SpeedupInsight3() != 0 {
		t.Error("zero division")
	}
	if (TimingRow{}).OrdersOfMagnitude() != 0 {
		t.Error("zero orders")
	}
}

func TestThroughputModel(t *testing.T) {
	m := ThroughputModel{CyclesPerSecond: 1e6, Cores: 10}
	// 864e9 cycles at 1e7 cycles/s aggregate = 86400 s = 1 day.
	if d := m.Days(864_000_000_000); math.Abs(d-1) > 1e-9 {
		t.Errorf("days %f", d)
	}
	if (ThroughputModel{}).Days(100) != 0 {
		t.Error("degenerate model")
	}
}

// TestEstimatorEndToEnd trains on one workload and assesses another,
// checking that the estimate lands near the exhaustive ground truth. This
// is a miniature of the paper's Fig. 10 accuracy evaluation.
func TestEstimatorEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow in -short mode")
	}
	cfg := cpu.ConfigA72()
	mkRunner := func(name string) *campaign.Runner {
		w, err := prog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := campaign.NewRunner(cfg, w.Build(cfg.Variant))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	train := mkRunner("sha")
	test := mkRunner("crc32")

	const n = 120
	trainResults := train.Run(train.FaultList("RF", n, 1), campaign.ModeExhaustive, 0, 0)
	td := TrainingData{
		Results:     map[string]map[string][]campaign.Result{"RF": {"sha": trainResults}},
		OutputSize:  map[string]int{"sha": len(train.Golden.Output)},
		TotalCycles: map[string]uint64{"sha": train.Golden.Cycles},
	}
	est := Train(td)

	assessment := est.Assess(test, "RF", n, 2, 0)
	truth := AVFFromEffects(campaign.Summarize(
		test.Run(test.FaultList("RF", n, 2), campaign.ModeExhaustive, 0, 0)))

	if assessment.Faults != n {
		t.Fatalf("faults %d", assessment.Faults)
	}
	// Cross-workload estimate within a loose tolerance (small samples).
	if d := math.Abs(assessment.AVF.Total() - truth.Total()); d > 0.25 {
		t.Errorf("estimated AVF %.3f vs truth %.3f (|d|=%.3f)", assessment.AVF.Total(), truth.Total(), d)
	}
	if s := assessment.AVF.Masked + assessment.AVF.SDC + assessment.AVF.Crash; math.Abs(s-1) > 1e-6 {
		t.Errorf("AVF not normalised: %f", s)
	}
	if assessment.Window == 0 || assessment.Window >= test.Golden.Cycles {
		t.Errorf("window %d vs golden %d", assessment.Window, test.Golden.Cycles)
	}
	// The AVGI assessment must be far cheaper than the exhaustive one.
	exCost := campaign.Summarize(test.Run(test.FaultList("RF", n, 2), campaign.ModeExhaustive, 0, 0)).SimCycles
	if assessment.SimCycles*2 > exCost {
		t.Errorf("AVGI cost %d not clearly below exhaustive %d", assessment.SimCycles, exCost)
	}
}
