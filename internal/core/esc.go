package core

import (
	"avgi/internal/campaign"
	"avgi/internal/imm"
)

// ESCStructures are the structures where escaped faults can occur: only
// cache arrays that hold data on its way to the program output
// (Section IV.D). Faults anywhere else always pass through the program
// trace before reaching the output.
var ESCStructures = map[string]bool{
	"L1D (Tag)":  true,
	"L1D (Data)": true,
	"L2 (Tag)":   true,
	"L2 (Data)":  true,
}

// ESCShape evaluates the paper's empirical equation without its
// calibration constant:
//
//	shape = (OutputSize/1KiB) × (Total − Benign) / (Total + Benign)²
//
// The paper derived it for its setup (multi-MB outputs over MB-scale
// caches), where output size is the dominant driver of escape
// probability. It is kept for reference and comparison; this
// reproduction's calibrated predictor below uses the golden run's
// measured dirty-output exposure instead, which is the same quantity the
// equation approximates (see DESIGN.md §5 and the esc tests).
func ESCShape(outputBytes int, total, benign int) float64 {
	if total+benign == 0 {
		return 0
	}
	outKB := float64(outputBytes) / 1024
	t, b := float64(total), float64(benign)
	return outKB * (t - b) / ((t + b) * (t + b))
}

// ESCModel predicts escaped-fault counts per structure from the golden
// run's output-exposure profile: the average fraction of the array holding
// dirty output-bound data. A uniform fault sample of size N is expected to
// land on in-flight output N×exposure times; the per-structure constant C
// calibrates how often such a hit survives to the output (not overwritten,
// not re-read) — learned from training workloads.
type ESCModel struct {
	// C is the calibration constant per structure (0 for structures
	// where ESC is impossible).
	C map[string]float64
}

// TrainESC fits the calibration constants. data[structure][workload]
// holds exhaustive results; exposure[structure][workload] the golden-run
// dirty-output occupancy fraction.
func TrainESC(data map[string]map[string][]campaign.Result, exposure map[string]map[string]float64) *ESCModel {
	m := &ESCModel{C: make(map[string]float64)}
	for structure, perWorkload := range data {
		if !ESCStructures[structure] {
			continue
		}
		var realSum, shapeSum float64
		for workload, results := range perWorkload {
			s := campaign.Summarize(results)
			realSum += float64(s.ByIMM[imm.ESC])
			shapeSum += exposure[structure][workload] * float64(s.Total)
		}
		if shapeSum > 0 {
			m.C[structure] = realSum / shapeSum
		}
	}
	return m
}

// Predict returns the expected number of ESC faults (which all manifest as
// SDC when they hit output data, Section IV.D) in a campaign of total
// faults given the workload's exposure fraction for this structure. The
// prediction is clamped to the benign count, since ESC faults are drawn
// from the benign population.
func (m *ESCModel) Predict(structure string, exposure float64, total, benign int) float64 {
	c, ok := m.C[structure]
	if !ok || c == 0 || exposure <= 0 {
		return 0
	}
	p := c * exposure * float64(total)
	if p < 0 {
		return 0
	}
	if p > float64(benign) {
		return float64(benign)
	}
	return p
}
