package core

import (
	"encoding/json"
	"fmt"
	"io"

	"avgi/internal/imm"
)

// The trained estimator — weights, ESC calibration, ERT windows — is the
// reusable artefact of the methodology: it is learned once per
// microarchitecture from exhaustive campaigns and then applied to any
// workload. Save/LoadEstimator persist it as JSON so a tool can train on a
// cluster and assess on a laptop.

type estimatorJSON struct {
	Weights map[string]map[string][3]float64 `json:"weights"`
	Spread  map[string]map[string]float64    `json:"spread"`
	ESC     map[string]float64               `json:"esc"`
	ERT     map[string]ertJSON               `json:"ert"`
}

type ertJSON struct {
	Cycles   uint64  `json:"cycles,omitempty"`
	Frac     float64 `json:"frac,omitempty"`
	Relative bool    `json:"relative,omitempty"`
}

var immByName = func() map[string]imm.IMM {
	m := make(map[string]imm.IMM)
	for _, c := range imm.Classes {
		m[c.String()] = c
	}
	m[imm.Benign.String()] = imm.Benign
	return m
}()

// Save writes the estimator as JSON.
func (e *Estimator) Save(w io.Writer) error {
	out := estimatorJSON{
		Weights: make(map[string]map[string][3]float64),
		Spread:  make(map[string]map[string]float64),
		ESC:     e.ESC.C,
		ERT:     make(map[string]ertJSON),
	}
	for s, per := range e.Weights.P {
		out.Weights[s] = make(map[string][3]float64)
		for c, p := range per {
			out.Weights[s][c.String()] = p
		}
	}
	for s, per := range e.Weights.Spread {
		out.Spread[s] = make(map[string]float64)
		for c, v := range per {
			out.Spread[s][c.String()] = v
		}
	}
	for s, ert := range e.ERT {
		out.ERT[s] = ertJSON{Cycles: ert.Cycles, Frac: ert.Frac, Relative: ert.Relative}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadEstimator reads an estimator previously written by Save.
func LoadEstimator(r io.Reader) (*Estimator, error) {
	var in estimatorJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding estimator: %w", err)
	}
	e := &Estimator{
		Weights: &Weights{
			P:      make(map[string]map[imm.IMM]EffectProbs),
			Spread: make(map[string]map[imm.IMM]float64),
		},
		ESC: &ESCModel{C: in.ESC},
		ERT: make(map[string]ERT),
	}
	if e.ESC.C == nil {
		e.ESC.C = make(map[string]float64)
	}
	for s, per := range in.Weights {
		e.Weights.P[s] = make(map[imm.IMM]EffectProbs)
		for name, p := range per {
			c, ok := immByName[name]
			if !ok {
				return nil, fmt.Errorf("core: unknown IMM class %q in weights", name)
			}
			e.Weights.P[s][c] = p
		}
	}
	for s, per := range in.Spread {
		e.Weights.Spread[s] = make(map[imm.IMM]float64)
		for name, v := range per {
			c, ok := immByName[name]
			if !ok {
				return nil, fmt.Errorf("core: unknown IMM class %q in spread", name)
			}
			e.Weights.Spread[s][c] = v
		}
	}
	for s, ert := range in.ERT {
		e.ERT[s] = ERT{Cycles: ert.Cycles, Frac: ert.Frac, Relative: ert.Relative}
	}
	if err := e.Weights.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}
