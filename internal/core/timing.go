package core

import "math"

// TimingRow is one row of the Table II reproduction: the simulated-cycle
// cost of assessing one structure across all workloads under the three
// flows, and the resulting speedups attributed to the paper's insights.
//
// Insight 1&2 (stop at the first commit-stage corruption, eliciting final
// effects through the IMM weights) is the exhaustive-to-HVF ratio; benign
// faults still run to completion there. Insight 3 (the ERT stop window)
// removes the benign tail as well, so the paper's "Insight 3" column is
// the full exhaustive-to-AVGI ratio.
type TimingRow struct {
	Structure string

	// WindowDesc describes the ERT stop rule ("1.2M cycles" or "3%").
	WindowDesc string

	// Simulated post-injection cycles summed over all workloads' fault
	// campaigns.
	SFICycles  uint64
	HVFCycles  uint64
	AVGICycles uint64
}

// SpeedupInsight12 returns the exhaustive/HVF ratio.
func (t TimingRow) SpeedupInsight12() float64 { return ratio(t.SFICycles, t.HVFCycles) }

// SpeedupInsight3 returns the full exhaustive/AVGI ratio (the paper's
// "Insight 3" column).
func (t TimingRow) SpeedupInsight3() float64 { return ratio(t.SFICycles, t.AVGICycles) }

// OrdersOfMagnitude returns log10 of the full speedup.
func (t TimingRow) OrdersOfMagnitude() float64 {
	s := t.SpeedupInsight3()
	if s <= 0 {
		return 0
	}
	return math.Log10(s)
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ThroughputModel converts simulated cycles into wall-clock assessment
// time on a simulation cluster, mirroring the units of Table II (days on
// 192 cores). CyclesPerSecond is the single-core simulation throughput —
// measure it with a timed run, or use the paper's gem5-class default.
type ThroughputModel struct {
	CyclesPerSecond float64
	Cores           int
}

// Days returns the wall-clock days needed to simulate the given cycles.
func (m ThroughputModel) Days(cycles uint64) float64 {
	if m.CyclesPerSecond <= 0 || m.Cores <= 0 {
		return 0
	}
	seconds := float64(cycles) / (m.CyclesPerSecond * float64(m.Cores))
	return seconds / 86400
}
