package core

import (
	"math"
	"sort"

	"avgi/internal/campaign"
)

// ERT is a structure's effective-residency-time stop rule (Section V.A):
// the pessimistic window after fault injection within which any
// architecturally visible manifestation of a fault in that structure
// occurs. Deep-pipeline queue structures (ROB/LQ/SQ) scale with program
// length, so their window is a fraction of total execution; everything
// else uses an absolute cycle count.
type ERT struct {
	// Cycles is the absolute window (valid when !Relative).
	Cycles uint64
	// Frac is the window as a fraction of the workload's total cycles
	// (valid when Relative).
	Frac float64
	// Relative selects between the two forms.
	Relative bool
}

// Window resolves the stop window in cycles for a workload of the given
// total length.
func (e ERT) Window(totalCycles uint64) uint64 {
	if e.Relative {
		w := uint64(e.Frac * float64(totalCycles))
		if w == 0 {
			w = 1
		}
		return w
	}
	return e.Cycles
}

// relativeERTStructures lists structures whose residency scales with
// execution length (the paper's "3% of total cycles" rows of Table II).
var relativeERTStructures = map[string]bool{
	"ROB": true,
	"LQ":  true,
	"SQ":  true,
}

// ertSafety is the default pessimism margin applied on top of the largest
// observed manifestation latency, mirroring the paper's choice of "most
// pessimistic cases paying the price of a bit longer simulation time".
const ertSafety = 1.25

// DeriveERT computes the per-structure windows from HVF (or exhaustive)
// training campaigns with the default safety margin.
func DeriveERT(data map[string]map[string][]campaign.Result, totalCycles map[string]uint64) map[string]ERT {
	return DeriveERTMargin(data, totalCycles, ertSafety)
}

// ertPercentile is the quantile of manifestation latencies the window must
// cover before the safety margin is applied. The paper uses the most
// pessimistic observed case; at this reproduction's scale (workloads of
// 10k-200k cycles instead of 100M-2.2B) a single outlier latency can reach
// a significant fraction of the whole program, so the window covers the
// 99.5th percentile and the margin on top — any residual long-tail
// manifestations read as benign, an error bounded well inside the
// campaign's statistical margin.
const ertPercentile = 0.995

// DeriveERTMargin is DeriveERT with an explicit safety margin, exposed for
// the accuracy-versus-speed ablation: a margin below 1.0 trades IMM
// coverage (late manifestations get cut off and misread as benign) for
// shorter simulations. data[structure][workload] holds results with
// manifestation latencies; totalCycles maps workload to its golden length.
func DeriveERTMargin(data map[string]map[string][]campaign.Result, totalCycles map[string]uint64, margin float64) map[string]ERT {
	if margin <= 0 {
		margin = ertSafety
	}
	out := make(map[string]ERT)
	for structure, perWorkload := range data {
		var lats []uint64
		var fracs []float64
		for workload, results := range perWorkload {
			tc := totalCycles[workload]
			for _, r := range results {
				if !r.Manifested {
					continue
				}
				lats = append(lats, r.ManifestLatency)
				if tc > 0 {
					fracs = append(fracs, float64(r.ManifestLatency)/float64(tc))
				}
			}
		}
		if relativeERTStructures[structure] {
			frac := quantileF(fracs, ertPercentile) * margin
			if frac == 0 {
				frac = 0.03 // the paper's default when unobserved
			}
			if frac > 1 {
				frac = 1
			}
			out[structure] = ERT{Frac: frac, Relative: true}
		} else {
			cyc := uint64(float64(quantileU(lats, ertPercentile)) * margin)
			if cyc == 0 {
				cyc = 1000
			}
			out[structure] = ERT{Cycles: cyc}
		}
	}
	return out
}

// The quantile index rounds up, so small samples degrade gracefully to the
// maximum (full pessimism) and only genuinely large campaigns trim the
// outlier tail.
func quantileU(xs []uint64, p float64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs[quantIdx(len(xs), p)]
}

func quantileF(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	return xs[quantIdx(len(xs), p)]
}

func quantIdx(n int, p float64) int {
	idx := int(math.Ceil(p * float64(n-1)))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// LatencyPercentile returns the p-quantile (0..1) of manifestation
// latencies in results — the measurement behind the Fig. 9 residency
// illustration.
func LatencyPercentile(results []campaign.Result, p float64) uint64 {
	var lats []uint64
	for _, r := range results {
		if r.Manifested {
			lats = append(lats, r.ManifestLatency)
		}
	}
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	// quantIdx (round up), not int(p*(n-1)) (truncate): the ERT
	// derivation indexes its latency samples with quantIdx, so the
	// measurement reported here must select the same sample — on small
	// campaigns truncation under-reports the latency the derived window
	// actually covers.
	return lats[quantIdx(len(lats), p)]
}
