// Package core implements the paper's primary contribution: the AVGI
// microarchitecture-driven vulnerability-assessment methodology
// (Section IV). Its pieces are
//
//   - the per-structure, per-IMM effect weights of Section III.D
//     (weights.go),
//   - the empirical ESC prediction equation of Section IV.D (esc.go),
//   - the effective-residency-time analysis of Section V.A (ert.go),
//   - the five-phase estimator that combines them into a final
//     cross-layer AVF (estimator.go),
//   - FIT-rate computation (fit.go), and
//   - the speedup accounting behind Table II (timing.go).
package core

import (
	"fmt"

	"avgi/internal/campaign"
	"avgi/internal/imm"
	"avgi/internal/stats"
)

// EffectProbs is a probability vector over the final fault effects, indexed
// by imm.Effect (Masked, SDC, Crash).
type EffectProbs [3]float64

// Sum returns the total probability mass.
func (p EffectProbs) Sum() float64 { return p[0] + p[1] + p[2] }

// Weights holds, per hardware structure and IMM class, the probability of
// each final fault effect, averaged (arithmetic mean) across the training
// workloads — the per-structure knob of Section III.D that lets the
// methodology elicit final fault effects from IMM counts alone.
type Weights struct {
	// P[structure][class] = mean effect distribution.
	P map[string]map[imm.IMM]EffectProbs
	// Spread[structure][class] = max standard deviation across workloads
	// over the three effects, reported to validate the uniformity claim
	// (the paper observes 0.1%–2.4%).
	Spread map[string]map[imm.IMM]float64
}

// TrainWeights derives weights from exhaustive ground-truth campaigns.
// data[structure][workload] holds ModeExhaustive results. Per workload the
// conditional distribution P(effect | IMM) is computed, then averaged
// across workloads with at least one sample of that IMM.
func TrainWeights(data map[string]map[string][]campaign.Result) *Weights {
	w := &Weights{
		P:      make(map[string]map[imm.IMM]EffectProbs),
		Spread: make(map[string]map[imm.IMM]float64),
	}
	for structure, perWorkload := range data {
		w.P[structure] = make(map[imm.IMM]EffectProbs)
		w.Spread[structure] = make(map[imm.IMM]float64)
		for _, class := range imm.Classes {
			if class == imm.ESC {
				continue // handled by the ESC model
			}
			// Collect this class's effect distribution per workload.
			var perEffect [3][]float64
			for _, results := range perWorkload {
				var counts [3]int
				total := 0
				for _, res := range results {
					if res.IMM == class && res.HasEffect {
						counts[res.Effect]++
						total++
					}
				}
				if total == 0 {
					continue
				}
				for e := range counts {
					perEffect[e] = append(perEffect[e], float64(counts[e])/float64(total))
				}
			}
			if len(perEffect[0]) == 0 {
				continue
			}
			var probs EffectProbs
			var spread float64
			for e := range perEffect {
				probs[e] = stats.Mean(perEffect[e])
				if sd := stats.StdDev(perEffect[e]); sd > spread {
					spread = sd
				}
			}
			w.P[structure][class] = probs
			w.Spread[structure][class] = spread
		}
	}
	return w
}

// Lookup returns the effect distribution for (structure, class). IMMs never
// observed during training fall back to the conservative prior
// {Masked: 0, SDC: 0.5, Crash: 0.5}, and Benign is Masked by definition.
func (w *Weights) Lookup(structure string, class imm.IMM) EffectProbs {
	if class == imm.Benign {
		return EffectProbs{1, 0, 0}
	}
	if m, ok := w.P[structure]; ok {
		if p, ok := m[class]; ok {
			return p
		}
	}
	return EffectProbs{0, 0.5, 0.5}
}

// Structures lists the structures the weights were trained for.
func (w *Weights) Structures() []string {
	var out []string
	for s := range w.P {
		out = append(out, s)
	}
	return out
}

// Validate checks that every trained distribution is a probability vector.
func (w *Weights) Validate() error {
	for s, m := range w.P {
		for c, p := range m {
			if sum := p.Sum(); sum < 0.999 || sum > 1.001 {
				return fmt.Errorf("core: weights for %s/%v sum to %f", s, c, sum)
			}
		}
	}
	return nil
}
