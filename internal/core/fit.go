package core

// RawFITPerBit is the raw transient-fault rate per storage bit used by the
// paper's Fig. 11 (from Papadimitriou & Gizopoulos, IISWC 2021): failures
// per 10^9 device-hours per bit for the Cortex-A72-class technology node.
const RawFITPerBit = 9.39e-6

// FIT is a Failures-in-Time breakdown for one structure or a whole chip:
// expected failures per 10^9 hours of operation, split by effect class.
type FIT struct {
	SDC   float64
	Crash float64
}

// Total returns the combined FIT rate.
func (f FIT) Total() float64 { return f.SDC + f.Crash }

// Add accumulates another contribution (chip FIT is the sum of its
// structures' FITs).
func (f FIT) Add(o FIT) FIT {
	return FIT{SDC: f.SDC + o.SDC, Crash: f.Crash + o.Crash}
}

// FITOf derates the raw per-bit rate by a structure's bit count and AVF.
func FITOf(avf AVF, bits uint64) FIT {
	base := RawFITPerBit * float64(bits)
	return FIT{
		SDC:   base * avf.SDC,
		Crash: base * avf.Crash,
	}
}
