package imm

import (
	"testing"
	"testing/quick"

	"avgi/internal/isa"
	"avgi/internal/trace"
)

func rec(pc uint64, word uint32, value uint64) trace.Record {
	return trace.Record{Cycle: 100, PC: pc, Word: word, HasDest: true, Dest: 1, Value: value}
}

func dev(kind trace.DeviationKind, g, f trace.Record) trace.Deviation {
	return trace.Deviation{Kind: kind, Index: 5, Cycle: f.Cycle, Golden: g, Faulty: f}
}

func enc(in isa.Inst) uint32 { return isa.Encode(in) }

func TestClassifyIFC(t *testing.T) {
	g := rec(0x1000, enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}), 7)
	f := rec(0x1004, enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}), 7)
	if got := Classify(Inputs{Dev: dev(trace.DevRecord, g, f), Variant: isa.V64}); got != IFC {
		t.Errorf("got %v", got)
	}
}

func TestClassifyIRP(t *testing.T) {
	g := rec(0x1000, enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}), 7)
	f := rec(0x1000, enc(isa.Inst{Op: isa.OpSUB, Rd: 1, Rs1: 2, Rs2: 3}), 1)
	if got := Classify(Inputs{Dev: dev(trace.DevRecord, g, f), Variant: isa.V64}); got != IRP {
		t.Errorf("got %v", got)
	}
	// A corrupted opcode outside the ISA also counts as replacement in
	// the Fig. 2 ordering (the opcode check precedes operand checks).
	fbad := rec(0x1000, 0xEE<<24, 0)
	if got := Classify(Inputs{Dev: dev(trace.DevRecord, g, fbad), Variant: isa.V64}); got != IRP {
		t.Errorf("illegal opcode: got %v", got)
	}
}

func TestClassifyUNO(t *testing.T) {
	g := rec(0x1000, enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}), 7)
	// Same opcode but a register field beyond the architectural file
	// (bit flipped into rd makes it r33 on V64? use r1|32 = 33).
	w := enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}) | (32 << 18)
	f := rec(0x1000, w, 7)
	if got := Classify(Inputs{Dev: dev(trace.DevRecord, g, f), Variant: isa.V64}); got != UNO {
		t.Errorf("got %v", got)
	}
	// On V32, r20 is already unknown to the ISA.
	w32 := enc(isa.Inst{Op: isa.OpADD, Rd: 4, Rs1: 2, Rs2: 3}) | (16 << 18)
	f32 := rec(0x1000, w32, 7)
	g32 := rec(0x1000, enc(isa.Inst{Op: isa.OpADD, Rd: 4, Rs1: 2, Rs2: 3}), 7)
	if got := Classify(Inputs{Dev: dev(trace.DevRecord, g32, f32), Variant: isa.V32}); got != UNO {
		t.Errorf("V32: got %v", got)
	}
}

func TestClassifyOFS(t *testing.T) {
	g := rec(0x1000, enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}), 7)
	f := rec(0x1000, enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 6, Rs2: 3}), 9)
	if got := Classify(Inputs{Dev: dev(trace.DevRecord, g, f), Variant: isa.V64}); got != OFS {
		t.Errorf("got %v", got)
	}
	// A corrupted immediate is also OFS.
	gi := rec(0x1000, enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 2, Imm: 5}), 7)
	fi := rec(0x1000, enc(isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 2, Imm: 21}), 23)
	if got := Classify(Inputs{Dev: dev(trace.DevRecord, gi, fi), Variant: isa.V64}); got != OFS {
		t.Errorf("imm: got %v", got)
	}
}

func TestClassifyDCR(t *testing.T) {
	w := enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3})
	g := rec(0x1000, w, 7)
	f := rec(0x1000, w, 0xBAD)
	if got := Classify(Inputs{Dev: dev(trace.DevRecord, g, f), Variant: isa.V64}); got != DCR {
		t.Errorf("got %v", got)
	}
	// Store with corrupted address is also a content corruption.
	gs := trace.Record{Cycle: 9, PC: 0x1000, Word: enc(isa.Inst{Op: isa.OpSW, Rd: 1, Rs1: 2}), IsStore: true, Addr: 0x100, Value: 5}
	fs := gs
	fs.Addr = 0x180
	if got := Classify(Inputs{Dev: dev(trace.DevRecord, gs, fs), Variant: isa.V64}); got != DCR {
		t.Errorf("store addr: got %v", got)
	}
}

func TestClassifyETE(t *testing.T) {
	w := enc(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3})
	g := rec(0x1000, w, 7)
	f := g
	f.Cycle = 113
	if got := Classify(Inputs{Dev: dev(trace.DevCycle, g, f), Variant: isa.V64}); got != ETE {
		t.Errorf("got %v", got)
	}
}

func TestClassifyRightBranch(t *testing.T) {
	none := trace.Deviation{}
	cases := []struct {
		in   Inputs
		want IMM
	}{
		{Inputs{Dev: none, Crashed: true}, PRE},
		{Inputs{Dev: none, Crashed: false, OutputProduced: false}, PRE},
		{Inputs{Dev: none, OutputProduced: true, OutputMatches: true}, Benign},
		{Inputs{Dev: none, OutputProduced: true, OutputMatches: false}, ESC},
	}
	for i, c := range cases {
		if got := Classify(c.in); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestClassifyExtraCommits(t *testing.T) {
	d := trace.Deviation{Kind: trace.DevExtra, Faulty: rec(0x2000, 0, 0)}
	if got := Classify(Inputs{Dev: d, Variant: isa.V64}); got != IFC {
		t.Errorf("got %v", got)
	}
}

// TestCompletenessAndExclusivity is the property behind Fig. 2: every
// possible observation maps to exactly one class, and the deviating-record
// branch never returns Benign/PRE/ESC while the no-deviation branch never
// returns the trace-derived classes.
func TestCompletenessAndExclusivity(t *testing.T) {
	f := func(gw, fw uint32, gpc, fpc uint16, gval, fval uint64, kindSel uint8,
		crashed, produced, matches, v32 bool) bool {
		v := isa.V64
		if v32 {
			v = isa.V32
		}
		g := trace.Record{Cycle: 50, PC: uint64(gpc), Word: gw, HasDest: true, Value: gval}
		fr := trace.Record{Cycle: 50, PC: uint64(fpc), Word: fw, HasDest: true, Value: fval}
		var d trace.Deviation
		switch kindSel % 4 {
		case 0:
			d = trace.Deviation{} // none
		case 1:
			d = dev(trace.DevRecord, g, fr)
		case 2:
			fr2 := g
			fr2.Cycle = 51
			d = dev(trace.DevCycle, g, fr2)
		case 3:
			d = dev(trace.DevExtra, trace.Record{}, fr)
		}
		got := Classify(Inputs{Dev: d, Crashed: crashed, OutputProduced: produced, OutputMatches: matches, Variant: v})
		if d.Kind == trace.DevNone {
			return got == Benign || got == PRE || got == ESC
		}
		return got == IFC || got == IRP || got == UNO || got == OFS || got == DCR || got == ETE
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestFinalEffect(t *testing.T) {
	cases := []struct {
		crashed, produced, matches bool
		want                       Effect
	}{
		{false, true, true, Masked},
		{false, true, false, SDC},
		{true, false, false, Crash},
		{true, true, true, Crash}, // crash dominates
		{false, false, false, Crash},
	}
	for i, c := range cases {
		if got := FinalEffect(c.crashed, c.produced, c.matches); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestStrings(t *testing.T) {
	names := map[IMM]string{
		Benign: "Benign", IFC: "IFC", IRP: "IRP", UNO: "UNO",
		OFS: "OFS", DCR: "DCR", ETE: "ETE", PRE: "PRE", ESC: "ESC",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d -> %q, want %q", m, m.String(), want)
		}
	}
	if IMM(99).String() != "IMM?" {
		t.Error("unknown IMM string")
	}
	if Masked.String() != "Masked" || SDC.String() != "SDC" || Crash.String() != "Crash" {
		t.Error("effect strings")
	}
	if Effect(9).String() != "Effect?" {
		t.Error("unknown effect string")
	}
	if len(Classes) != 8 {
		t.Errorf("Classes = %d, want 8", len(Classes))
	}
	if len(Effects) != 3 {
		t.Errorf("Effects = %d, want 3", len(Effects))
	}
}
