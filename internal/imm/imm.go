// Package imm implements Table I and Fig. 2 of the paper: the eight
// complete and mutually exclusive ISA Manifestation Models (IMMs) that
// describe how a microarchitectural fault first touches the software layer,
// and the decision procedure that assigns exactly one class to every
// injected fault.
package imm

import (
	"avgi/internal/isa"
	"avgi/internal/trace"
)

// IMM is an ISA Manifestation Model class. Benign is the complement: the
// fault never reached the software layer (hardware masking).
type IMM uint8

const (
	// Benign: the fault was masked by the microarchitecture and never
	// became architecturally visible (not an IMM in the paper's Table I;
	// kept in the enum for bookkeeping).
	Benign IMM = iota
	// IFC — Instruction Flow Change: a different instruction committed
	// due to incorrect instruction fetching (wrong PC).
	IFC
	// IRP — Instruction Replacement: a different instruction committed
	// due to a corrupted opcode at the correct PC.
	IRP
	// UNO — Unknown Operand: one or more operand fields are corrupted
	// and unknown to the ISA.
	UNO
	// OFS — Operand Forced Switch: register operand or immediate fields
	// are corrupted but remain ISA-valid.
	OFS
	// DCR — Data Corruption: the correct resource is used but its
	// contents (register or memory word) are corrupted.
	DCR
	// ETE — Execution Time Error: the correct instruction committed in a
	// wrong clock cycle.
	ETE
	// PRE — Pre-Software Crash: execution crashed before the fault
	// affected the ISA (simulator assertion / machine check, unhandled
	// exception, hang).
	PRE
	// ESC — Escaped: the fault corrupted the program output without ever
	// passing through the program trace (dirty cache lines holding
	// output data, Section IV.D).
	ESC
)

// Classes lists the eight IMMs of Table I in presentation order.
var Classes = []IMM{IFC, IRP, UNO, OFS, DCR, ETE, PRE, ESC}

// String returns the paper's three-letter class name.
func (m IMM) String() string {
	switch m {
	case Benign:
		return "Benign"
	case IFC:
		return "IFC"
	case IRP:
		return "IRP"
	case UNO:
		return "UNO"
	case OFS:
		return "OFS"
	case DCR:
		return "DCR"
	case ETE:
		return "ETE"
	case PRE:
		return "PRE"
	case ESC:
		return "ESC"
	}
	return "IMM?"
}

// Effect is the final fault-effect class of an end-to-end run
// (Section II.B).
type Effect uint8

const (
	// Masked: no observable deviation of the program output.
	Masked Effect = iota
	// SDC: the run finished normally but the output differs.
	SDC
	// Crash: the run ended in a catastrophic event with no output.
	Crash
)

// Effects lists the final fault-effect classes.
var Effects = []Effect{Masked, SDC, Crash}

// String returns the class name.
func (e Effect) String() string {
	switch e {
	case Masked:
		return "Masked"
	case SDC:
		return "SDC"
	case Crash:
		return "Crash"
	}
	return "Effect?"
}

// Inputs collects the observations of one faulty run needed by the Fig. 2
// classification diagram.
type Inputs struct {
	// Dev is the first commit-trace deviation (Kind DevNone if the
	// commit trace matched golden for as long as the run was observed).
	Dev trace.Deviation
	// Crashed reports a catastrophic end (machine check, unhandled
	// exception, watchdog, runaway).
	Crashed bool
	// OutputProduced reports that the run halted normally and produced
	// an output file (only meaningful for end-to-end runs).
	OutputProduced bool
	// OutputMatches reports that the produced output equals the golden
	// output.
	OutputMatches bool
	// Variant is the ISA variant used to decode instruction words.
	Variant isa.Variant
}

// Classify walks the Fig. 2 diagram and returns exactly one class for any
// input combination. The left branch (commit-trace deviation observed)
// distinguishes IFC/IRP/UNO/OFS/DCR/ETE from the deviating record pair; the
// right branch (no deviation) distinguishes PRE/Benign/ESC from the crash
// flag and the output comparison.
func Classify(in Inputs) IMM {
	if in.Dev.Kind != trace.DevNone {
		return classifyDeviation(in.Dev, in.Variant)
	}
	// Commit trace correct.
	if in.Crashed || !in.OutputProduced {
		// A high-level condition was violated before the fault
		// reached the ISA.
		return PRE
	}
	if in.OutputMatches {
		return Benign
	}
	return ESC
}

// classifyDeviation orders its checks exactly as the Fig. 2 diagram: PC,
// then opcode, then operand validity, then operand fields, then contents,
// then commit cycle.
func classifyDeviation(d trace.Deviation, v isa.Variant) IMM {
	if d.Kind == trace.DevCycle {
		return ETE
	}
	if d.Kind == trace.DevExtra {
		// The faulty run committed past the golden end of execution:
		// control flow diverged.
		return IFC
	}
	g, f := d.Golden, d.Faulty
	if f.PC != g.PC {
		return IFC
	}
	gi := isa.Decode(g.Word, v)
	fi := isa.Decode(f.Word, v)
	if fi.Op != gi.Op {
		return IRP
	}
	if fi.Illegal != isa.IllegalNone {
		return UNO
	}
	if operandFieldsDiffer(gi, fi) {
		return OFS
	}
	// Same instruction, same fields: the resource contents are wrong.
	if f.Value != g.Value || f.Addr != g.Addr || f.HasDest != g.HasDest ||
		f.Dest != g.Dest || f.IsStore != g.IsStore {
		return DCR
	}
	// Only the cycle can remain (the comparator classifies that as
	// DevCycle, but be complete).
	return ETE
}

// operandFieldsDiffer compares the encoding fields the instruction's format
// actually uses.
func operandFieldsDiffer(g, f isa.Inst) bool {
	switch isa.OpFormat(g.Op) {
	case isa.FmtNone:
		return false
	case isa.FmtR:
		return g.Rd != f.Rd || g.Rs1 != f.Rs1 || g.Rs2 != f.Rs2
	case isa.FmtI, isa.FmtL, isa.FmtS, isa.FmtB:
		return g.Rd != f.Rd || g.Rs1 != f.Rs1 || g.Imm != f.Imm
	case isa.FmtJ, isa.FmtU:
		return g.Rd != f.Rd || g.Imm != f.Imm
	}
	return false
}

// FinalEffect returns the end-to-end fault-effect class of an exhaustive
// run (Section II.B): Masked if the output was produced and matches, SDC if
// produced and different, Crash otherwise.
func FinalEffect(crashed, outputProduced, outputMatches bool) Effect {
	if crashed || !outputProduced {
		return Crash
	}
	if outputMatches {
		return Masked
	}
	return SDC
}
