package imm_test

import (
	"fmt"

	"avgi/internal/imm"
	"avgi/internal/isa"
	"avgi/internal/trace"
)

// ExampleClassify walks the Fig. 2 diagram for a corrupted-operand commit:
// the golden run committed "add r1, r2, r3" but the faulty run committed
// "add r1, r6, r3" — same PC, same opcode, an ISA-valid but wrong operand.
func ExampleClassify() {
	golden := trace.Record{
		Cycle: 100, PC: 0x1000,
		Word:    isa.Encode(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}),
		HasDest: true, Dest: 1, Value: 7,
	}
	faulty := golden
	faulty.Word = isa.Encode(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 6, Rs2: 3})
	faulty.Value = 99

	class := imm.Classify(imm.Inputs{
		Dev: trace.Deviation{
			Kind:   trace.DevRecord,
			Golden: golden,
			Faulty: faulty,
		},
		Variant: isa.V64,
	})
	fmt.Println(class)
	// Output: OFS
}

// ExampleClassify_rightBranch shows the no-deviation side of the diagram:
// a run whose commit trace matched golden but whose output differs can
// only be an escaped fault.
func ExampleClassify_rightBranch() {
	class := imm.Classify(imm.Inputs{
		OutputProduced: true,
		OutputMatches:  false,
	})
	fmt.Println(class)
	// Output: ESC
}

// ExampleFinalEffect maps run outcomes to the classic SFI effect classes.
func ExampleFinalEffect() {
	fmt.Println(imm.FinalEffect(false, true, true))
	fmt.Println(imm.FinalEffect(false, true, false))
	fmt.Println(imm.FinalEffect(true, false, false))
	// Output:
	// Masked
	// SDC
	// Crash
}
