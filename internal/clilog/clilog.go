// Package clilog builds the slog.Logger behind the CLIs' -log flag: the
// default "text" mode keeps the traditional `prog: message k=v` stderr
// look, while "json" emits one structured object per line for log
// shippers.
package clilog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// New returns a logger writing to w. mode is "text" (or "", the default)
// for the classic `prog: message` lines, or "json" for slog's JSON
// handler with a "prog" attribute; anything else is an error.
func New(w io.Writer, prog, mode string) (*slog.Logger, error) {
	switch mode {
	case "", "text":
		return slog.New(&textHandler{mu: &sync.Mutex{}, w: w, prog: prog}), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)).With("prog", prog), nil
	}
	return nil, fmt.Errorf("clilog: unknown log mode %q (want text or json)", mode)
}

// textHandler prints `prog: message k=v ...` — exactly the lines the CLIs
// used to produce with fmt.Fprintln(os.Stderr, "prog:", ...), so the
// default mode changes nothing a user (or a script scraping stderr) sees.
type textHandler struct {
	mu    *sync.Mutex
	w     io.Writer
	prog  string
	attrs []slog.Attr
}

func (h *textHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= slog.LevelInfo
}

func (h *textHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(h.prog)
	b.WriteString(": ")
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

func (h *textHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &nh
}

// WithGroup is accepted but flattens: the CLIs do not use groups, and a
// flat `k=v` tail keeps the text lines greppable.
func (h *textHandler) WithGroup(string) slog.Handler { return h }
