package clilog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTextModeKeepsClassicLook(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "avgi", "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Error("file not found")
	if got := buf.String(); got != "avgi: file not found\n" {
		t.Errorf("line %q", got)
	}
}

func TestTextModeAttrs(t *testing.T) {
	var buf bytes.Buffer
	l, _ := New(&buf, "avgisim", "")
	l.With("shard", 3).Info("journal resumed", "faults", 40)
	want := "avgisim: journal resumed shard=3 faults=40\n"
	if got := buf.String(); got != want {
		t.Errorf("line %q, want %q", got, want)
	}
}

func TestTextModeDropsDebug(t *testing.T) {
	var buf bytes.Buffer
	l, _ := New(&buf, "avgi", "text")
	l.Debug("noise")
	if buf.Len() != 0 {
		t.Errorf("debug line emitted: %q", buf.String())
	}
}

func TestJSONMode(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "avgi", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Error("boom", "path", "/tmp/x")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.Bytes())
	}
	if rec["msg"] != "boom" || rec["prog"] != "avgi" || rec["path"] != "/tmp/x" {
		t.Errorf("record %v", rec)
	}
	if rec["level"] != "ERROR" {
		t.Errorf("level %v", rec["level"])
	}
}

func TestUnknownMode(t *testing.T) {
	if _, err := New(&bytes.Buffer{}, "avgi", "xml"); err == nil ||
		!strings.Contains(err.Error(), "xml") {
		t.Errorf("unknown mode error %v", err)
	}
}
