package mem

// TLB is a fully associative translation lookaside buffer. Each entry packs
// valid(1) | vpn(12) | ppn(12) into the low 25 bits of a uint64; those 25
// bits per entry are the fault-injection surface of the structure, matching
// the paper's ITLB/DTLB targets.
//
// Replacement state (round-robin pointer) is protected metadata.
type TLB struct {
	name    string
	entries []uint64
	rr      int // round-robin replacement cursor (protected)

	walkLatency uint64

	// Dirty-delta tracking (cursor forks): entries written since the last
	// snapshot/restore sync point. Translate hits are read-only, so only
	// fills and bit flips touch.
	track   bool
	touched []int32
	marked  []bool

	// probe, when non-nil, observes consumption and erasure of the
	// entries covered by an injected fault (see probe.go).
	probe *TLBProbe

	// Accesses and Misses are running statistics (protected).
	Accesses uint64
	Misses   uint64
}

const tlbEntryBits = 1 + 2*pageNumBits

const (
	tlbValidBit = 1 << 24
	tlbVPNShift = 12
	tlbPPNShift = 0
	pageNumMask = (1 << pageNumBits) - 1
)

// NewTLB builds a TLB with n entries. walkLatency is the page-walk cost in
// cycles charged on every miss.
func NewTLB(name string, n int, walkLatency uint64) *TLB {
	return &TLB{name: name, entries: make([]uint64, n), walkLatency: walkLatency}
}

// Name returns the structure name (e.g. "ITLB").
func (t *TLB) Name() string { return t.name }

// BitCount returns the total number of fault-injectable bits.
func (t *TLB) BitCount() uint64 { return uint64(len(t.entries)) * tlbEntryBits }

// FlipBit flips bit i of the entry array.
func (t *TLB) FlipBit(i uint64) {
	entry := i / tlbEntryBits
	bit := i % tlbEntryBits
	t.touch(int(entry))
	t.entries[entry] ^= 1 << bit
}

// Translate maps a virtual address to a physical address, consulting the
// page table pt on a miss. It returns the physical address, the latency in
// cycles added by translation (0 on a hit), and a fault indication for
// unmapped pages.
func (t *TLB) Translate(vaddr uint64, pt *PageTable) (paddr uint64, lat uint64, fault Fault) {
	t.Accesses++
	vpn := (vaddr / PageBytes) & pageNumMask
	off := vaddr % PageBytes
	for i, e := range t.entries {
		if e&tlbValidBit != 0 && (e>>tlbVPNShift)&pageNumMask == vpn {
			if t.probe != nil {
				t.probe.onHit(i)
			}
			ppn := (e >> tlbPPNShift) & pageNumMask
			if ppn >= pt.PhysPages() {
				// A corrupted PPN can point outside RAM; the
				// access raises a page fault exactly as a
				// hardware translation to an unbacked page
				// would. (On a cluster the bound is the whole
				// shared RAM, so a corrupted PPN may legally
				// land in another core's window — physically
				// backed, so no fault, exactly as on hardware.)
				return 0, 0, FaultPage
			}
			return ppn*PageBytes + off, 0, FaultNone
		}
	}
	t.Misses++
	ppn, ok := pt.Walk(vpn)
	if !ok {
		return 0, t.walkLatency, FaultPage
	}
	t.fill(vpn, ppn)
	return ppn*PageBytes + off, t.walkLatency, FaultNone
}

func (t *TLB) fill(vpn, ppn uint64) {
	// Prefer an invalid slot; otherwise round-robin replace.
	victim := -1
	for i, e := range t.entries {
		if e&tlbValidBit == 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = t.rr
		t.rr = (t.rr + 1) % len(t.entries)
	}
	t.touch(victim)
	if t.probe != nil {
		t.probe.onFill(victim)
	}
	t.entries[victim] = tlbValidBit | (vpn&pageNumMask)<<tlbVPNShift | (ppn&pageNumMask)<<tlbPPNShift
}

// Clone deep-copies the TLB.
func (t *TLB) Clone() *TLB {
	c := *t
	c.entries = append([]uint64(nil), t.entries...)
	c.track = false
	c.touched = nil
	c.marked = nil
	c.probe = nil
	return &c
}

// BeginDeltaTracking starts recording the entries written by subsequent
// fills and flips, establishing the current state as a sync point (see
// Cache.BeginDeltaTracking).
func (t *TLB) BeginDeltaTracking() {
	if t.marked == nil {
		t.marked = make([]bool, len(t.entries))
		t.touched = make([]int32, 0, len(t.entries))
	}
	t.resetTouched()
	t.track = true
}

// EndDeltaTracking stops recording and clears the touch list.
func (t *TLB) EndDeltaTracking() {
	if t.track {
		t.resetTouched()
		t.track = false
	}
}

func (t *TLB) touch(entry int) {
	if !t.track || t.marked[entry] {
		return
	}
	t.marked[entry] = true
	t.touched = append(t.touched, int32(entry))
}

func (t *TLB) resetTouched() {
	for _, e := range t.touched {
		t.marked[e] = false
	}
	t.touched = t.touched[:0]
}

// SyncSnapshot re-captures into snap only the entries touched since the
// last sync point, then clears the touch list. Returns the number of entry
// bytes copied.
func (t *TLB) SyncSnapshot(snap *TLBSnap) uint64 {
	return t.syncDelta(snap, true)
}

// SyncRestore rewinds only the entries touched since the last sync point
// back to snap's contents; bit-identical to a full Restore under the sync
// invariant. Returns the number of entry bytes copied.
func (t *TLB) SyncRestore(snap *TLBSnap) uint64 {
	return t.syncDelta(snap, false)
}

func (t *TLB) syncDelta(snap *TLBSnap, capture bool) uint64 {
	if !t.track {
		panic("mem: " + t.name + ": delta sync without tracking")
	}
	if len(snap.entries) != len(t.entries) {
		panic("mem: " + t.name + ": delta sync across geometries")
	}
	for _, e := range t.touched {
		if capture {
			snap.entries[e] = t.entries[e]
		} else {
			t.entries[e] = snap.entries[e]
		}
	}
	if capture {
		snap.rr = t.rr
		snap.accesses = t.Accesses
		snap.misses = t.Misses
	} else {
		t.rr = snap.rr
		t.Accesses = snap.accesses
		t.Misses = snap.misses
	}
	bytes := uint64(len(t.touched)) * 8
	t.resetTouched()
	return bytes
}

// TLBSnap is an immutable capture of a TLB's entry array, replacement
// cursor and statistics; buffers are reused across Snapshot calls.
type TLBSnap struct {
	entries []uint64
	rr      int

	accesses uint64
	misses   uint64
}

// Snapshot copies the TLB state into snap (nil allocates) and returns it.
func (t *TLB) Snapshot(snap *TLBSnap) *TLBSnap {
	if snap == nil {
		snap = &TLBSnap{}
	}
	snap.entries = append(snap.entries[:0], t.entries...)
	snap.rr = t.rr
	snap.accesses = t.Accesses
	snap.misses = t.Misses
	if t.track {
		t.resetTouched()
	}
	return snap
}

// Restore rewinds the TLB to a snapshot without allocating; the snapshot
// is only read and may be restored from concurrently.
func (t *TLB) Restore(snap *TLBSnap) {
	copy(t.entries, snap.entries)
	t.rr = snap.rr
	t.Accesses = snap.accesses
	t.Misses = snap.misses
	if t.track {
		t.resetTouched()
	}
}

// Bytes returns the captured state size, for checkpoint accounting.
func (s *TLBSnap) Bytes() uint64 { return uint64(len(s.entries)) * 8 }
