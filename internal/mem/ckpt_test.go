package mem

import (
	"bytes"
	"sync"
	"testing"
)

func TestRAMSnapshotCOWIsolation(t *testing.T) {
	r := NewRAM(4 * PageBytes)
	r.WriteBlock(100, []byte{1, 2, 3, 4})
	snap := r.Snapshot(nil)

	// Writes after the snapshot privatize pages and must not leak into it.
	r.WriteBlock(100, []byte{9, 9, 9, 9})
	if r.CowPrivatized() == 0 {
		t.Error("post-snapshot write did not privatize a page")
	}
	dst := make([]byte, 4)
	snap.ReadBlock(100, dst)
	if !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
		t.Errorf("snapshot sees % x after source write", dst)
	}

	// Restoring rewinds the source to the captured contents.
	r.RestoreFrom(snap)
	r.ReadBlock(100, dst)
	if !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
		t.Errorf("restored RAM reads % x", dst)
	}

	// And the restored RAM privatizes again before its next write.
	r.WriteBlock(100, []byte{7})
	snap.ReadBlock(100, dst)
	if dst[0] != 1 {
		t.Error("write after restore leaked into snapshot")
	}
}

func TestRAMSnapshotWriteCrossingPages(t *testing.T) {
	r := NewRAM(4 * PageBytes)
	snap := r.Snapshot(nil)
	// A block write straddling a page boundary must privatize both pages.
	data := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	r.WriteBlock(PageBytes-2, data)
	if got := r.CowPrivatized(); got != 2 {
		t.Errorf("privatized %d pages, want 2", got)
	}
	dst := make([]byte, 4)
	r.ReadBlock(PageBytes-2, dst)
	if !bytes.Equal(dst, data) {
		t.Errorf("read back % x", dst)
	}
	snap.ReadBlock(PageBytes-2, dst)
	if !bytes.Equal(dst, make([]byte, 4)) {
		t.Errorf("snapshot corrupted: % x", dst)
	}
}

func TestRAMSnapshotReuse(t *testing.T) {
	r := NewRAM(4 * PageBytes)
	r.WriteBlock(0, []byte{1})
	snap := r.Snapshot(nil)
	r.WriteBlock(0, []byte{2})
	// Re-snapshotting into the same buffer captures the new contents.
	snap = r.Snapshot(snap)
	var b [1]byte
	snap.ReadBlock(0, b[:])
	if b[0] != 2 {
		t.Errorf("reused snapshot reads %d, want 2", b[0])
	}

	defer func() {
		if recover() == nil {
			t.Error("snapshot reuse across sizes should panic")
		}
	}()
	NewRAM(8 * PageBytes).Snapshot(snap)
}

func TestRAMRestoreSizeMismatchPanics(t *testing.T) {
	snap := NewRAM(4 * PageBytes).Snapshot(nil)
	defer func() {
		if recover() == nil {
			t.Error("restore across sizes should panic")
		}
	}()
	NewRAM(8 * PageBytes).RestoreFrom(snap)
}

func TestTLBSnapshotRestore(t *testing.T) {
	pt := NewPageTable(1 << 20)
	tl := NewTLB("DTLB", 4, 20)
	tl.Translate(0x1000, pt)
	tl.Translate(0x2000, pt)
	var snap TLBSnap
	tl.Snapshot(&snap)

	tl.Translate(0x5000, pt)
	tl.FlipBit(3)
	tl.Restore(&snap)

	if tl.Accesses != 2 || tl.Misses != 2 {
		t.Errorf("restored stats %d/%d, want 2/2", tl.Accesses, tl.Misses)
	}
	// The captured translations hit again; state matches a fresh replay.
	if _, lat, f := tl.Translate(0x1000, pt); f != FaultNone || lat != 0 {
		t.Errorf("post-restore translate lat=%d fault=%v", lat, f)
	}
	if snap.Bytes() == 0 {
		t.Error("TLB snapshot reports zero bytes")
	}
}

func TestCacheSnapshotRestore(t *testing.T) {
	ram := NewRAM(1 << 20)
	ram.WriteBlock(0x100, []byte{0x42})
	c := NewCache(CacheConfig{Name: "L1D", Sets: 4, Ways: 2, LineBytes: 64, HitLat: 2, AddrBits: 20},
		&RAMLevel{RAM: ram, ReadLat: 60})

	var buf [1]byte
	c.Access(0x100, 1, false, buf[:])
	c.Access(0x200, 1, true, []byte{0x77}) // leave a dirty line
	var snap CacheSnap
	c.Snapshot(&snap)
	accesses, misses := c.Accesses, c.Misses

	c.Access(0x300, 1, false, buf[:])
	c.TagArray().FlipBit(1)
	c.Restore(&snap)

	if c.Accesses != accesses || c.Misses != misses {
		t.Errorf("restored stats %d/%d, want %d/%d", c.Accesses, c.Misses, accesses, misses)
	}
	c.Access(0x200, 1, false, buf[:])
	if buf[0] != 0x77 {
		t.Errorf("dirty data after restore = %#x", buf[0])
	}
	if snap.Bytes() == 0 {
		t.Error("cache snapshot reports zero bytes")
	}

	defer func() {
		if recover() == nil {
			t.Error("restore across geometries should panic")
		}
	}()
	NewCache(CacheConfig{Name: "X", Sets: 8, Ways: 2, LineBytes: 64, HitLat: 1, AddrBits: 20},
		&RAMLevel{RAM: ram, ReadLat: 60}).Restore(&snap)
}

func TestHierarchySnapshotRestoreRoundTrip(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.Store(0x5000, 8, 111)
	h.Store(0x6000, 8, 222)
	snap := h.Snapshot(nil)
	if snap.Bytes() == 0 {
		t.Error("hierarchy snapshot reports zero bytes")
	}

	// Diverge: overwrite memory, pollute caches and TLBs, flip a bit.
	h.Store(0x5000, 8, 999)
	h.Store(0x7000, 8, 333)
	h.FetchWord(0x8000)
	h.L1D.DataArray().FlipBit(17)

	h.Restore(snap)
	if v, _, _ := h.Load(0x5000, 8); v != 111 {
		t.Errorf("restored load(0x5000) = %d", v)
	}
	if v, _, _ := h.Load(0x6000, 8); v != 222 {
		t.Errorf("restored load(0x6000) = %d", v)
	}
	if v, _, _ := h.Load(0x7000, 8); v != 0 {
		t.Errorf("post-snapshot store survived restore: %d", v)
	}
}

// TestHierarchySnapshotSharedRestore exercises the concurrency contract:
// one immutable snapshot, many machines restoring from it and running in
// parallel. Run under -race this verifies restores never write shared state.
func TestHierarchySnapshotSharedRestore(t *testing.T) {
	golden := NewHierarchy(testConfig())
	golden.Store(0x5000, 8, 111)
	snap := golden.Snapshot(nil)
	golden.Store(0x5000, 8, 999) // source keeps running after capture

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHierarchy(testConfig())
			for i := 0; i < 8; i++ {
				h.Restore(snap)
				if v, _, _ := h.Load(0x5000, 8); v != 111 {
					t.Errorf("worker %d sees %d", w, v)
					return
				}
				h.Store(0x5000, 8, uint64(w)) // private divergence
			}
		}(w)
	}
	wg.Wait()
}
