package mem

import (
	"testing"

	"avgi/internal/engine"
)

type portRequester struct {
	port *engine.Port
}

func (r *portRequester) Name() string { return "requester" }

func testHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		RAMSize:     1 << 20,
		L1I:         CacheConfig{Name: "L1I", Sets: 8, Ways: 2, LineBytes: 64, HitLat: 1, AddrBits: 20},
		L1D:         CacheConfig{Name: "L1D", Sets: 32, Ways: 2, LineBytes: 64, HitLat: 2, AddrBits: 20},
		L2:          CacheConfig{Name: "L2", Sets: 128, Ways: 8, LineBytes: 64, HitLat: 12, AddrBits: 20},
		ITLBEntries: 16,
		DTLBEntries: 16,
		WalkLat:     20,
		DRAMLat:     60,
	}
}

// TestPortAdapterLatencyEquivalence drives the same access sequence through
// a synchronous hierarchy and a port-wrapped twin, asserting that values,
// faults, the reported latency, and the port delivery delay all agree with
// the synchronous lat return (with zero-lat responses arriving on the next
// cycle, per the tick-visibility rule).
func TestPortAdapterLatencyEquivalence(t *testing.T) {
	cfg := testHierarchyConfig()
	sync := NewHierarchy(cfg)
	ported := NewHierarchy(cfg)

	eng := engine.New()
	adapter := NewPortAdapter(eng, ported)
	req := &portRequester{}
	req.port = engine.NewPort(eng, req, "Mem")
	engine.Connect(req.port, adapter.Top)
	eng.Register(adapter)

	// Seed both RAMs identically so loads return real data.
	seed := make([]byte, 4096)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	sync.RAM.WriteBlock(0, seed)
	ported.RAM.WriteBlock(0, seed)

	reqs := []MemReq{
		{Op: OpLoad, Addr: 0x100, Size: 8}, // cold: TLB walk + misses
		{Op: OpLoad, Addr: 0x100, Size: 8}, // hot: L1D hit
		{Op: OpStore, Addr: 0x108, Size: 8, Data: 0xdeadbeef},
		{Op: OpLoad, Addr: 0x108, Size: 8},            // reads the store back
		{Op: OpFetch, Addr: 0x200},                    // instruction side
		{Op: OpFetch, Addr: 0x200},                    // L1I hit
		{Op: OpLoad, Addr: 0x840, Size: 4},            // new line, same page
		{Op: OpLoad, Addr: 3, Size: 4},                // misaligned: fault
		{Op: OpLoad, Addr: cfg.RAMSize + 64, Size: 8}, // unmapped: page fault
	}
	for i, r := range reqs {
		r.ID = uint64(i)

		var want MemResp
		want.ID = r.ID
		switch r.Op {
		case OpFetch:
			want.Word, want.Lat, want.Fault = sync.FetchWord(r.Addr)
		case OpLoad:
			want.Val, want.Lat, want.Fault = sync.Load(r.Addr, r.Size)
		case OpStore:
			want.Lat, want.Fault = sync.Store(r.Addr, r.Size, r.Data)
		}

		req.port.Send(r, 0) // request arrives at the adapter next cycle
		eng.RunCycle()      // adapter processes it, schedules the response
		sent := eng.Now()
		var got MemResp
		waited := uint64(0)
		for req.port.Pending() == 0 {
			eng.RunCycle()
			waited = eng.Now() - sent
			if waited > 1000 {
				t.Fatalf("req %d: no response after 1000 cycles", i)
			}
		}
		got = req.port.Retrieve().(MemResp)

		if got != want {
			t.Fatalf("req %d: response %+v, want %+v", i, got, want)
		}
		wantDelay := want.Lat
		if wantDelay == 0 {
			wantDelay = 1
		}
		if waited != wantDelay {
			t.Fatalf("req %d: response arrived after %d cycles, want %d (lat %d)",
				i, waited, wantDelay, want.Lat)
		}
	}

	// After identical access sequences the two hierarchies hold identical
	// cache and statistic state.
	if sync.L1D.Accesses != ported.L1D.Accesses || sync.L1D.Misses != ported.L1D.Misses {
		t.Fatalf("L1D stats diverged: sync %d/%d, ported %d/%d",
			sync.L1D.Accesses, sync.L1D.Misses, ported.L1D.Accesses, ported.L1D.Misses)
	}
	if sync.L2.Accesses != ported.L2.Accesses || sync.L2.Misses != ported.L2.Misses {
		t.Fatalf("L2 stats diverged: sync %d/%d, ported %d/%d",
			sync.L2.Accesses, sync.L2.Misses, ported.L2.Accesses, ported.L2.Misses)
	}
}

// TestSharedMemWindows checks the multicore physical layout: per-core
// windows are disjoint, translations add the core base, and DrainOutput
// reads the right window.
func TestSharedMemWindows(t *testing.T) {
	cfg := testHierarchyConfig()
	s := NewSharedMem(cfg, 2)

	h0, h1 := s.CoreHierarchy(0), s.CoreHierarchy(1)
	if h0.Base() != 0 || h1.Base() != cfg.RAMSize {
		t.Fatalf("bases = %#x, %#x; want 0, %#x", h0.Base(), h1.Base(), cfg.RAMSize)
	}
	if s.RAM.Size() != 2*cfg.RAMSize {
		t.Fatalf("shared RAM size = %#x, want %#x", s.RAM.Size(), 2*cfg.RAMSize)
	}

	// Same virtual address, different physical windows.
	if _, fault := h0.Store(0x1000, 8, 0x1111); fault != FaultNone {
		t.Fatalf("c0 store fault: %v", fault)
	}
	if _, fault := h1.Store(0x1000, 8, 0x2222); fault != FaultNone {
		t.Fatalf("c1 store fault: %v", fault)
	}
	v0, _, _ := h0.Load(0x1000, 8)
	v1, _, _ := h1.Load(0x1000, 8)
	if v0 != 0x1111 || v1 != 0x2222 {
		t.Fatalf("loads = %#x, %#x; want 0x1111, 0x2222", v0, v1)
	}

	// The shared L2 is literally shared.
	if h0.L2 != s.L2 || h1.L2 != s.L2 {
		t.Fatal("per-core hierarchies do not share the L2")
	}
	// Private L1s are not.
	if h0.L1D == h1.L1D || h0.L1I == h1.L1I {
		t.Fatal("per-core L1s are shared")
	}

	// The grown tag field keeps homonymous lines distinct: after the
	// flushes both values must land in the right physical windows.
	h0.L1D.Flush()
	h1.L1D.Flush()
	s.L2.Flush()
	var buf [8]byte
	s.RAM.ReadBlock(0x1000, buf[:])
	if got := uint64LE(buf[:]); got != 0x1111 {
		t.Fatalf("c0 window holds %#x, want 0x1111", got)
	}
	s.RAM.ReadBlock(cfg.RAMSize+0x1000, buf[:])
	if got := uint64LE(buf[:]); got != 0x2222 {
		t.Fatalf("c1 window holds %#x, want 0x2222", got)
	}

	// Per-core virtual spaces stay [0, RAMSize): the last in-window page
	// maps, one past it faults.
	if _, _, fault := h1.Load(cfg.RAMSize-8, 8); fault != FaultNone {
		t.Fatalf("c1 top-of-window load fault: %v", fault)
	}
	if _, _, fault := h1.Load(cfg.RAMSize, 8); fault != FaultPage {
		t.Fatalf("c1 out-of-window load fault = %v, want page fault", fault)
	}
}

// TestSharedMemClone checks that cloning a shared spine severs all state
// sharing with the original.
func TestSharedMemClone(t *testing.T) {
	cfg := testHierarchyConfig()
	s := NewSharedMem(cfg, 2)
	s.CoreHierarchy(0).Store(0x40, 8, 0xaaaa)
	s.CoreHierarchy(1).Store(0x40, 8, 0xbbbb)

	c := s.Clone()
	c.CoreHierarchy(0).Store(0x40, 8, 0xcccc)

	v, _, _ := s.CoreHierarchy(0).Load(0x40, 8)
	if v != 0xaaaa {
		t.Fatalf("original c0 sees %#x after clone write, want 0xaaaa", v)
	}
	v, _, _ = c.CoreHierarchy(0).Load(0x40, 8)
	if v != 0xcccc {
		t.Fatalf("clone c0 sees %#x, want 0xcccc", v)
	}
	v, _, _ = c.CoreHierarchy(1).Load(0x40, 8)
	if v != 0xbbbb {
		t.Fatalf("clone c1 sees %#x, want 0xbbbb", v)
	}
}
