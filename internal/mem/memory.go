// Package mem models the memory subsystem of the AVGI machine: flat
// physical RAM, instruction and data TLBs, and a two-level write-back cache
// hierarchy (split L1I/L1D over a unified L2).
//
// Every array the paper injects faults into — L1I/L1D/L2 tag and data
// arrays, ITLB and DTLB entry arrays — is held as explicit bit-addressable
// state with FlipBit/BitCount accessors, so a single-bit upset mutates
// exactly the state a real SRAM upset would. Replacement metadata and the
// page table are "protected" (not fault targets), mirroring the paper's
// 12-structure fault model.
package mem

import "fmt"

// PageBytes is the page size used by both TLBs and the page table.
const PageBytes = 4096

// vpn/ppn field widths in TLB entries. Twelve bits of page number cover a
// 16 MiB virtual space while physical RAM is 1 MiB, so corrupted page
// numbers can point at unmapped pages and raise page faults, as on real
// hardware.
const pageNumBits = 12

// Fault is a memory-system exception reported to the core, which raises it
// as a precise exception at commit.
type Fault uint8

const (
	FaultNone Fault = iota
	// FaultPage is an access to an unmapped page.
	FaultPage
	// FaultAlign is a misaligned access.
	FaultAlign
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPage:
		return "page fault"
	case FaultAlign:
		return "alignment fault"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// RAM is flat physical memory. DRAM cells are not one of the paper's 12
// fault targets, so RAM has no FlipBit accessor.
type RAM struct {
	bytes []byte
}

// NewRAM allocates size bytes of zeroed physical memory.
func NewRAM(size uint64) *RAM {
	return &RAM{bytes: make([]byte, size)}
}

// Size returns the RAM size in bytes.
func (r *RAM) Size() uint64 { return uint64(len(r.bytes)) }

// Bytes returns the backing store for direct block access (line fills,
// writebacks, program loading, DMA reads).
func (r *RAM) Bytes() []byte { return r.bytes }

// WriteBlock copies data into RAM at addr.
func (r *RAM) WriteBlock(addr uint64, data []byte) {
	copy(r.bytes[addr:], data)
}

// ReadBlock copies len(dst) bytes from RAM at addr.
func (r *RAM) ReadBlock(addr uint64, dst []byte) {
	copy(dst, r.bytes[addr:])
}

// Clone deep-copies the RAM.
func (r *RAM) Clone() *RAM {
	return &RAM{bytes: append([]byte(nil), r.bytes...)}
}

// PageTable is the identity mapping from virtual to physical pages for all
// pages backed by RAM. It is architectural metadata maintained by
// (hypothetical) system software and is not a fault target.
type PageTable struct {
	numPages uint64
}

// NewPageTable builds the identity page table covering ramSize bytes.
func NewPageTable(ramSize uint64) *PageTable {
	return &PageTable{numPages: ramSize / PageBytes}
}

// Walk translates a virtual page number. The walk itself costs WalkLatency
// cycles, charged by the TLB on a miss.
func (pt *PageTable) Walk(vpn uint64) (ppn uint64, ok bool) {
	if vpn >= pt.numPages {
		return 0, false
	}
	return vpn, true
}

// NumPages returns the number of mapped pages.
func (pt *PageTable) NumPages() uint64 { return pt.numPages }
