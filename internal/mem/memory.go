// Package mem models the memory subsystem of the AVGI machine: flat
// physical RAM, instruction and data TLBs, and a two-level write-back cache
// hierarchy (split L1I/L1D over a unified L2).
//
// Every array the paper injects faults into — L1I/L1D/L2 tag and data
// arrays, ITLB and DTLB entry arrays — is held as explicit bit-addressable
// state with FlipBit/BitCount accessors, so a single-bit upset mutates
// exactly the state a real SRAM upset would. Replacement metadata and the
// page table are "protected" (not fault targets), mirroring the paper's
// 12-structure fault model.
package mem

import "fmt"

// PageBytes is the page size used by the TLBs, the page table, and the
// copy-on-write granularity of RAM forks.
const PageBytes = 4096

// vpn/ppn field widths in TLB entries. Twelve bits of page number cover a
// 16 MiB virtual space while physical RAM is 1 MiB, so corrupted page
// numbers can point at unmapped pages and raise page faults, as on real
// hardware.
const pageNumBits = 12

// Fault is a memory-system exception reported to the core, which raises it
// as a precise exception at commit.
type Fault uint8

const (
	FaultNone Fault = iota
	// FaultPage is an access to an unmapped page.
	FaultPage
	// FaultAlign is a misaligned access.
	FaultAlign
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPage:
		return "page fault"
	case FaultAlign:
		return "alignment fault"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// RAM is flat physical memory held as page-granular storage so checkpoint
// forks are copy-on-write: a fork shares the parent's pages and privatizes
// a page only on first write. DRAM cells are not one of the paper's 12
// fault targets, so RAM has no FlipBit accessor.
//
// Sharing discipline: a page referenced by more than one RAM is never
// written in place. Snapshot marks every page of the source un-owned, so
// both the live machine and the snapshot privatize before their next write;
// a snapshot itself is immutable and may be restored from concurrently.
type RAM struct {
	pages [][]byte
	// owned[i] reports that pages[i] is private to this RAM and may be
	// written in place; un-owned pages are (potentially) shared with a
	// snapshot or fork and are copied on first write.
	owned []bool
	size  uint64

	// cow counts pages privatized by copy-on-write since creation
	// (protected telemetry, not machine state).
	cow uint64
}

// NewRAM allocates size bytes of zeroed physical memory.
func NewRAM(size uint64) *RAM {
	n := numPages(size)
	r := &RAM{
		pages: make([][]byte, n),
		owned: make([]bool, n),
		size:  size,
	}
	// One flat allocation sliced into pages keeps the initial layout
	// contiguous and cheap.
	flat := make([]byte, size)
	for i := range r.pages {
		lo := uint64(i) * PageBytes
		hi := lo + PageBytes
		if hi > size {
			hi = size
		}
		r.pages[i] = flat[lo:hi:hi]
		r.owned[i] = true
	}
	return r
}

func numPages(size uint64) int {
	return int((size + PageBytes - 1) / PageBytes)
}

// Size returns the RAM size in bytes.
func (r *RAM) Size() uint64 { return r.size }

// Bytes materializes the full contents as one contiguous slice. After a
// copy-on-write fork the backing store is fragmented across shared pages,
// so the result is a fresh copy; it is meant for inspection (tests,
// debugging), not the access path.
func (r *RAM) Bytes() []byte {
	flat := make([]byte, r.size)
	r.ReadBlock(0, flat)
	return flat
}

// privatize makes page i writable in place, copying it first if it is
// shared with a fork or snapshot.
func (r *RAM) privatize(i int) {
	if r.owned[i] {
		return
	}
	p := make([]byte, len(r.pages[i]), cap(r.pages[i]))
	copy(p, r.pages[i])
	r.pages[i] = p
	r.owned[i] = true
	r.cow++
}

// WriteBlock copies data into RAM at addr, privatizing every touched page.
func (r *RAM) WriteBlock(addr uint64, data []byte) {
	for len(data) > 0 {
		i := int(addr / PageBytes)
		off := addr % PageBytes
		r.privatize(i)
		n := copy(r.pages[i][off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// ReadBlock copies len(dst) bytes from RAM at addr.
func (r *RAM) ReadBlock(addr uint64, dst []byte) {
	for len(dst) > 0 {
		i := int(addr / PageBytes)
		off := addr % PageBytes
		n := copy(dst, r.pages[i][off:])
		dst = dst[n:]
		addr += uint64(n)
	}
}

// Clone deep-copies the RAM into a fresh, fully-owned flat store (the
// legacy fork primitive; the checkpoint path uses Snapshot/RestoreFrom).
func (r *RAM) Clone() *RAM {
	c := NewRAM(r.size)
	for i, p := range r.pages {
		copy(c.pages[i], p)
	}
	return c
}

// Snapshot captures the current contents as an immutable copy-on-write
// fork: the snapshot shares this RAM's pages, and this RAM privatizes a
// page before its next write to it. The snapshot must never be written;
// it may be restored from concurrently. into, when non-nil, is reused to
// avoid allocation.
func (r *RAM) Snapshot(into *RAM) *RAM {
	s := into
	if s == nil {
		s = &RAM{
			pages: make([][]byte, len(r.pages)),
			owned: make([]bool, len(r.pages)),
		}
	} else if len(s.pages) != len(r.pages) {
		panic(fmt.Sprintf("mem: RAM snapshot reuse across sizes (%d pages into %d)",
			len(r.pages), len(s.pages)))
	}
	s.size = r.size
	copy(s.pages, r.pages)
	for i := range r.owned {
		r.owned[i] = false // the source now shares every page
		s.owned[i] = false
	}
	s.cow = 0
	return s
}

// RestoreFrom rewinds this RAM to a snapshot's contents by adopting its
// pages copy-on-write. Only the receiver is mutated, so any number of
// machines may restore from the same snapshot concurrently.
func (r *RAM) RestoreFrom(snap *RAM) {
	if r.size != snap.size {
		panic(fmt.Sprintf("mem: RAM restore across sizes (%d into %d)", snap.size, r.size))
	}
	copy(r.pages, snap.pages)
	for i := range r.owned {
		r.owned[i] = false
	}
}

// CowPrivatized returns the number of pages this RAM has privatized by
// copy-on-write since creation — the per-fork write footprint the
// checkpoint telemetry reports.
func (r *RAM) CowPrivatized() uint64 { return r.cow }

// PageTable is the linear mapping from virtual to physical pages for one
// core's window of RAM. On a single-core machine it is the identity map; on
// a shared-memory cluster each core's table adds a fixed physical base, so
// every core sees the same virtual layout while owning a disjoint physical
// window. It is architectural metadata maintained by (hypothetical) system
// software and is not a fault target.
type PageTable struct {
	numPages  uint64 // virtual pages this table maps
	basePage  uint64 // physical page backing virtual page 0
	physPages uint64 // physically backed pages in the whole RAM
}

// NewPageTable builds the identity page table covering ramSize bytes.
func NewPageTable(ramSize uint64) *PageTable {
	n := ramSize / PageBytes
	return &PageTable{numPages: n, physPages: n}
}

// NewPageTableAt builds a page table mapping a winSize-byte virtual window
// onto physical pages starting at basePage, inside a RAM backing physPages
// pages in total (used by shared-memory clusters; see SharedMem).
func NewPageTableAt(winSize uint64, basePage, physPages uint64) *PageTable {
	return &PageTable{numPages: winSize / PageBytes, basePage: basePage, physPages: physPages}
}

// Walk translates a virtual page number. The walk itself costs WalkLatency
// cycles, charged by the TLB on a miss.
func (pt *PageTable) Walk(vpn uint64) (ppn uint64, ok bool) {
	if vpn >= pt.numPages {
		return 0, false
	}
	return vpn + pt.basePage, true
}

// NumPages returns the number of mapped pages.
func (pt *PageTable) NumPages() uint64 { return pt.numPages }

// PhysPages returns the number of physically backed pages in the RAM this
// table translates into. A translation at or beyond this bound — reachable
// only through a corrupted TLB entry — faults like an access to an unbacked
// physical page would.
func (pt *PageTable) PhysPages() uint64 { return pt.physPages }

// BasePage returns the physical page backing virtual page 0.
func (pt *PageTable) BasePage() uint64 { return pt.basePage }
