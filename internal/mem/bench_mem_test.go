package mem

import "testing"

// BenchmarkCacheAccess measures the cache's per-access cost on a mixed
// read/write stream over a footprint larger than the cache, so both the
// hit path and the fill/writeback paths are exercised. It justifies the
// precomputed valid/dirty/tmask fields: before hoisting, every access
// recomputed those masks by shifts in split, the hit scan, victim
// selection and fill (before/after numbers in BENCH_faultpath.json).
func BenchmarkCacheAccess(b *testing.B) {
	ram := NewRAM(1 << 20)
	lower := &RAMLevel{RAM: ram, ReadLat: 60}
	c := NewCache(CacheConfig{Name: "L1D", Sets: 32, Ways: 2, LineBytes: 64, HitLat: 2, AddrBits: 20}, lower)
	var buf [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i*64+i*8) & (1<<18 - 1) &^ 7
		c.Access(addr, 8, i&3 == 0, buf[:])
	}
}

// BenchmarkCacheDeltaSyncPair measures one SyncSnapshot+SyncRestore
// re-arm/rewind pair after a realistic smattering of touched sets — the
// per-fault copy cost of the cursor fork path.
func BenchmarkCacheDeltaSyncPair(b *testing.B) {
	ram := NewRAM(1 << 20)
	lower := &RAMLevel{RAM: ram, ReadLat: 60}
	c := NewCache(CacheConfig{Name: "L1D", Sets: 32, Ways: 2, LineBytes: 64, HitLat: 2, AddrBits: 20}, lower)
	var buf [8]byte
	c.BeginDeltaTracking()
	snap := c.Snapshot(nil)
	b.ResetTimer()
	touch := func(base int) {
		for j := 0; j < 8; j++ { // ~8 of 32 sets per phase
			addr := uint64((base+j)*64) & (1<<18 - 1)
			c.Access(addr, 8, true, buf[:])
		}
	}
	for i := 0; i < b.N; i++ {
		touch(i) // golden advance
		c.SyncSnapshot(snap)
		touch(i * 3) // faulty window
		c.SyncRestore(snap)
	}
}
