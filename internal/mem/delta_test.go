package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// equalCache compares every bit of state a CacheSnap round-trip is
// responsible for.
func equalCache(t *testing.T, label string, got, want *Cache) {
	t.Helper()
	if !bytes.Equal(got.data, want.data) {
		t.Fatalf("%s: data arrays differ", label)
	}
	for i := range got.tags {
		if got.tags[i] != want.tags[i] {
			t.Fatalf("%s: tag entry %d differs: %#x vs %#x", label, i, got.tags[i], want.tags[i])
		}
		if got.lru[i] != want.lru[i] {
			t.Fatalf("%s: lru entry %d differs", label, i)
		}
	}
	if got.tick != want.tick || got.Accesses != want.Accesses ||
		got.Misses != want.Misses || got.Writebacks != want.Writebacks {
		t.Fatalf("%s: scalars differ: tick %d/%d acc %d/%d miss %d/%d wb %d/%d",
			label, got.tick, want.tick, got.Accesses, want.Accesses,
			got.Misses, want.Misses, got.Writebacks, want.Writebacks)
	}
}

// mutateCache drives a random mix of reads, writes, bit flips and flushes
// — every operation class that can dirty cache state between sync points.
func mutateCache(c *Cache, rng *rand.Rand, ops int) {
	buf := make([]byte, 8)
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0:
			c.TagArray().FlipBit(uint64(rng.Intn(int(c.TagArray().BitCount()))))
		case 1:
			c.DataArray().FlipBit(uint64(rng.Intn(int(c.DataArray().BitCount()))))
		case 2:
			c.Flush()
		default:
			addr := uint64(rng.Intn(1 << 12))
			addr &^= 7
			if rng.Intn(2) == 0 {
				rng.Read(buf)
				c.Access(addr, 8, true, buf)
			} else {
				c.Access(addr, 8, false, buf)
			}
		}
	}
}

// TestCacheDeltaRestoreEquivalence is the dirty-delta property test: a
// cache mutated arbitrarily after a sync point and then SyncRestored must
// be bit-for-bit identical to the full-copy restore — across many random
// rounds, re-arming the snapshot with SyncSnapshot between rounds exactly
// as a cursor worker does per fault.
func TestCacheDeltaRestoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, _ := newTestCacheOverRAM(10)
	mutateCache(c, rng, 500) // warm state: valid lines, dirty lines, stats

	c.BeginDeltaTracking()
	snap := c.Snapshot(nil) // sync point
	for round := 0; round < 50; round++ {
		// Re-arm: advance the cache (the "golden advance"), capture the
		// delta into the same snapshot buffers.
		mutateCache(c, rng, rng.Intn(200))
		c.SyncSnapshot(snap)

		// ref is the ground truth at the new sync point: a full deep copy.
		ref := c.Clone()

		// The "faulty run": arbitrary divergence, then the delta rewind.
		mutateCache(c, rng, rng.Intn(300))
		c.SyncRestore(snap)
		equalCache(t, "after SyncRestore", c, ref)

		// The rewound cache must also match the snapshot a full Restore
		// would have produced.
		full := ref.Clone()
		full.Restore(snap)
		equalCache(t, "delta vs full restore", c, full)
	}
}

// TestCacheDeltaUntouchedIsFree pins the cost model: with nothing touched
// between sync points, the delta pair moves zero array bytes.
func TestCacheDeltaUntouchedIsFree(t *testing.T) {
	c, _ := newTestCacheOverRAM(10)
	c.BeginDeltaTracking()
	snap := c.Snapshot(nil)
	if n := c.SyncSnapshot(snap); n != 0 {
		t.Errorf("untouched SyncSnapshot copied %d bytes", n)
	}
	if n := c.SyncRestore(snap); n != 0 {
		t.Errorf("untouched SyncRestore copied %d bytes", n)
	}
}

// TestCacheDeltaSyncWithoutTrackingPanics pins the misuse guard.
func TestCacheDeltaSyncWithoutTrackingPanics(t *testing.T) {
	c, _ := newTestCacheOverRAM(10)
	snap := c.Snapshot(nil)
	defer func() {
		if recover() == nil {
			t.Error("SyncRestore without BeginDeltaTracking must panic")
		}
	}()
	c.SyncRestore(snap)
}

// TestTLBDeltaRestoreEquivalence is the TLB (entry-granular) counterpart
// of the cache delta property test.
func TestTLBDeltaRestoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pt := NewPageTable(1 << 20)
	tlb := NewTLB("DTLB", 8, 20)
	mutate := func(ops int) {
		for i := 0; i < ops; i++ {
			if rng.Intn(4) == 0 {
				tlb.FlipBit(uint64(rng.Intn(int(tlb.BitCount()))))
			} else {
				tlb.Translate(uint64(rng.Intn(1<<18)), pt)
			}
		}
	}
	mutate(100)

	tlb.BeginDeltaTracking()
	snap := tlb.Snapshot(nil)
	for round := 0; round < 50; round++ {
		mutate(rng.Intn(40))
		tlb.SyncSnapshot(snap)
		ref := tlb.Clone()

		mutate(rng.Intn(60))
		tlb.SyncRestore(snap)

		if !bytes.Equal(uint64sAsBytes(tlb.entries), uint64sAsBytes(ref.entries)) {
			t.Fatal("entry arrays differ after SyncRestore")
		}
		if tlb.rr != ref.rr || tlb.Accesses != ref.Accesses || tlb.Misses != ref.Misses {
			t.Fatalf("scalars differ: rr %d/%d acc %d/%d miss %d/%d",
				tlb.rr, ref.rr, tlb.Accesses, ref.Accesses, tlb.Misses, ref.Misses)
		}
	}
}

func uint64sAsBytes(v []uint64) []byte {
	out := make([]byte, 0, len(v)*8)
	for _, x := range v {
		for s := 0; s < 64; s += 8 {
			out = append(out, byte(x>>s))
		}
	}
	return out
}

// TestHierarchyDeltaRestoreEquivalence exercises the fan-out: TLBs, all
// three caches and the copy-on-write RAM rewound together through the
// hierarchy-level sync pair must reproduce loads bit-for-bit.
func TestHierarchyDeltaRestoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := NewHierarchy(testConfig())
	drive := func(ops int) {
		for i := 0; i < ops; i++ {
			addr := uint64(rng.Intn(1<<14)) &^ 7
			if rng.Intn(2) == 0 {
				h.Store(addr, 8, rng.Uint64())
			} else {
				h.Load(addr, 8)
			}
		}
	}
	drive(300)

	h.BeginDeltaTracking()
	snap := h.Snapshot(nil) // full capture establishes the sync point
	for round := 0; round < 20; round++ {
		drive(rng.Intn(100))
		h.SyncSnapshot(snap)

		// Record ground truth as observed values at a sample of addresses.
		ref := make(map[uint64]uint64)
		probe := h.Clone()
		for i := 0; i < 64; i++ {
			addr := uint64(rng.Intn(1<<14)) &^ 7
			v, _, _ := probe.Load(addr, 8)
			ref[addr] = v
		}

		drive(rng.Intn(150))
		h.SyncRestore(snap)
		probe2 := h.Clone()
		for addr, want := range ref {
			if v, _, _ := probe2.Load(addr, 8); v != want {
				t.Fatalf("round %d: addr %#x reads %#x after delta restore, want %#x", round, addr, v, want)
			}
		}
	}
}
