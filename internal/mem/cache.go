package mem

import (
	"fmt"
	"math/bits"
)

// Level is a lower memory level a cache fills from and writes back to.
type Level interface {
	// ReadLine fetches a full line at the line-aligned address into dst
	// and returns the access latency in cycles.
	ReadLine(paddr uint64, dst []byte) uint64
	// WriteLine writes a full line at the line-aligned address and
	// returns the latency in cycles (zero if absorbed by a write buffer).
	WriteLine(paddr uint64, src []byte) uint64
}

// RAMLevel adapts RAM as the terminal Level.
type RAMLevel struct {
	RAM     *RAM
	ReadLat uint64
}

// ReadLine implements Level.
func (r *RAMLevel) ReadLine(paddr uint64, dst []byte) uint64 {
	r.RAM.ReadBlock(paddr, dst)
	return r.ReadLat
}

// WriteLine implements Level. Writebacks are absorbed by the memory
// controller's write buffer, so they add no latency to the access path.
func (r *RAMLevel) WriteLine(paddr uint64, src []byte) uint64 {
	r.RAM.WriteBlock(paddr, src)
	return 0
}

// CacheConfig describes the geometry and hit latency of one cache level.
type CacheConfig struct {
	Name      string
	Sets      int
	Ways      int
	LineBytes int
	HitLat    uint64
	// AddrBits is the number of physical address bits the tag must
	// distinguish (log2 of RAM size).
	AddrBits int
}

// SizeBytes returns the data capacity.
func (c CacheConfig) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

// Cache is a set-associative, write-back, write-allocate cache with
// separate bit-addressable tag and data arrays.
type Cache struct {
	cfg      CacheConfig
	setBits  int
	lineBits int
	tagBits  int // tag field width; entry adds valid+dirty

	// Precomputed tag-entry masks. The geometry is fixed at construction,
	// so the valid/dirty bit positions and the tag mask are loaded as
	// fields instead of recomputed by shifts on every access.
	valid uint64
	dirty uint64
	tmask uint64

	// tags packs valid(1) | dirty(1) | tag(tagBits) per way, set-major.
	tags []uint64
	// data holds the line contents, set-major then way-major.
	data []byte

	// lru holds last-touch timestamps (protected replacement metadata).
	lru  []uint64
	tick uint64

	lower Level

	// Dirty-delta tracking (cursor forks): the sets written — or whose
	// replacement state was updated — since the last snapshot/restore sync
	// point. touched is a deduplicated list; marked is its membership set.
	track   bool
	touched []int32
	marked  []bool

	// probe, when non-nil, observes consumption and erasure of the array
	// entries covered by an injected fault (see probe.go). Never survives
	// a Clone and is cleared before the faulty machine is rewound.
	probe *LineProbe

	// Statistics (protected).
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// NewCache builds a cache with the given geometry over the lower level.
func NewCache(cfg CacheConfig, lower Level) *Cache {
	if cfg.Sets&(cfg.Sets-1) != 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("mem: %s: sets and line size must be powers of two", cfg.Name))
	}
	c := &Cache{
		cfg:      cfg,
		setBits:  bits.TrailingZeros(uint(cfg.Sets)),
		lineBits: bits.TrailingZeros(uint(cfg.LineBytes)),
		tags:     make([]uint64, cfg.Sets*cfg.Ways),
		data:     make([]byte, cfg.Sets*cfg.Ways*cfg.LineBytes),
		lru:      make([]uint64, cfg.Sets*cfg.Ways),
		lower:    lower,
	}
	c.tagBits = cfg.AddrBits - c.setBits - c.lineBits
	if c.tagBits <= 0 {
		panic(fmt.Sprintf("mem: %s: geometry larger than address space", cfg.Name))
	}
	c.valid = 1 << (c.tagBits + 1)
	c.dirty = 1 << c.tagBits
	c.tmask = 1<<c.tagBits - 1
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Name implements engine.Component.
func (c *Cache) Name() string { return c.cfg.Name }

func (c *Cache) split(paddr uint64) (set int, tag uint64, off uint64) {
	line := paddr >> c.lineBits
	set = int(line) & (c.cfg.Sets - 1)
	tag = (line >> c.setBits) & c.tmask
	off = paddr & uint64(c.cfg.LineBytes-1)
	return
}

// lineAddr reconstructs the line-aligned physical address of a way's
// contents from its (possibly corrupted) tag.
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return (tag<<c.setBits | uint64(set)) << c.lineBits
}

// Access performs a read (write=false, buf filled) or write (write=true,
// buf consumed) of n bytes at paddr. The access must not cross a line
// boundary — the core enforces natural alignment before translation. The
// returned latency includes any fill from the lower level.
func (c *Cache) Access(paddr uint64, n uint64, write bool, buf []byte) uint64 {
	c.Accesses++
	c.tick++
	set, tag, off := c.split(paddr)
	c.touch(set)
	base := set * c.cfg.Ways
	way := -1
	for w := 0; w < c.cfg.Ways; w++ {
		e := c.tags[base+w]
		if e&c.valid != 0 && e&c.tmask == tag {
			way = w
			break
		}
	}
	if c.probe != nil {
		c.probe.onLookup(c.cfg.Ways, set)
	}
	lat := c.cfg.HitLat
	if way < 0 {
		c.Misses++
		way = c.victim(set)
		lat += c.fill(set, way, tag)
	}
	c.lru[base+way] = c.tick
	idx := (base+way)*c.cfg.LineBytes + int(off)
	if write {
		copy(c.data[idx:idx+int(n)], buf[:n])
		c.tags[base+way] |= c.dirty
	} else {
		copy(buf[:n], c.data[idx:idx+int(n)])
	}
	if c.probe != nil {
		c.probe.onData(base+way, int(off), int(n), write)
	}
	return lat
}

// victim picks the way to replace in set: an invalid way if any, else LRU.
func (c *Cache) victim(set int) int {
	base := set * c.cfg.Ways
	oldest, way := ^uint64(0), 0
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w]&c.valid == 0 {
			return w
		}
		if c.lru[base+w] < oldest {
			oldest = c.lru[base+w]
			way = w
		}
	}
	return way
}

// fill evicts the victim way (writing back a dirty line to the address its
// current — possibly corrupted — tag names) and fetches the new line.
func (c *Cache) fill(set, way int, tag uint64) uint64 {
	base := set * c.cfg.Ways
	e := c.tags[base+way]
	idx := (base + way) * c.cfg.LineBytes
	if c.probe != nil {
		c.probe.onEvict(base+way, e&c.valid != 0, e&c.dirty != 0)
	}
	var lat uint64
	if e&c.valid != 0 && e&c.dirty != 0 {
		c.Writebacks++
		lat += c.lower.WriteLine(c.lineAddr(set, e&c.tmask), c.data[idx:idx+c.cfg.LineBytes])
	}
	lat += c.lower.ReadLine(c.lineAddr(set, tag), c.data[idx:idx+c.cfg.LineBytes])
	c.tags[base+way] = c.valid | tag
	return lat
}

// ReadLine implements Level so an L1 can sit on top of this cache.
func (c *Cache) ReadLine(paddr uint64, dst []byte) uint64 {
	return c.Access(paddr, uint64(len(dst)), false, dst)
}

// WriteLine implements Level.
func (c *Cache) WriteLine(paddr uint64, src []byte) uint64 {
	return c.Access(paddr, uint64(len(src)), true, src)
}

// DirtyLinesInRange counts valid dirty lines whose (tag-derived) physical
// address lies in [lo, hi). It is a pure observation used by the golden
// run's output-exposure profile (the ESC predictor input) and does not
// touch replacement state or statistics.
func (c *Cache) DirtyLinesInRange(lo, hi uint64) int {
	n := 0
	for set := 0; set < c.cfg.Sets; set++ {
		base := set * c.cfg.Ways
		for w := 0; w < c.cfg.Ways; w++ {
			e := c.tags[base+w]
			if e&c.valid == 0 || e&c.dirty == 0 {
				continue
			}
			addr := c.lineAddr(set, e&c.tmask)
			if addr >= lo && addr < hi {
				n++
			}
		}
	}
	return n
}

// Lines returns the total number of lines in the cache.
func (c *Cache) Lines() int { return c.cfg.Sets * c.cfg.Ways }

// Flush writes every dirty line back to the lower level and clears dirty
// bits. Used at halt so the DMA engine observes the program's output in
// physical memory, including any corruption that escaped through dirty
// lines (the ESC path).
func (c *Cache) Flush() {
	for set := 0; set < c.cfg.Sets; set++ {
		base := set * c.cfg.Ways
		for w := 0; w < c.cfg.Ways; w++ {
			e := c.tags[base+w]
			if e&c.valid != 0 && e&c.dirty != 0 {
				idx := (base + w) * c.cfg.LineBytes
				c.Writebacks++
				c.touch(set)
				if c.probe != nil {
					c.probe.onFlush(base + w)
				}
				c.lower.WriteLine(c.lineAddr(set, e&c.tmask), c.data[idx:idx+c.cfg.LineBytes])
				c.tags[base+w] &^= c.dirty
			}
		}
	}
}

// Clone deep-copies the cache. The lower pointer is rebound by the caller
// via SetLower, since the whole hierarchy is cloned together.
func (c *Cache) Clone() *Cache {
	cl := *c
	cl.tags = append([]uint64(nil), c.tags...)
	cl.data = append([]byte(nil), c.data...)
	cl.lru = append([]uint64(nil), c.lru...)
	// Delta tracking and any armed fault probe are properties of a
	// specific cursor machine, not of the state; a clone starts untracked
	// and unprobed with its own buffers.
	cl.track = false
	cl.touched = nil
	cl.marked = nil
	cl.probe = nil
	return &cl
}

// BeginDeltaTracking starts recording the sets touched by subsequent
// accesses, flushes and flips, establishing the current state as a sync
// point. While tracking, SyncSnapshot/SyncRestore move only the touched
// delta between the cache and a snapshot captured at the sync point.
func (c *Cache) BeginDeltaTracking() {
	if c.marked == nil {
		c.marked = make([]bool, c.cfg.Sets)
		c.touched = make([]int32, 0, c.cfg.Sets)
	}
	c.resetTouched()
	c.track = true
}

// EndDeltaTracking stops recording and clears the touch list.
func (c *Cache) EndDeltaTracking() {
	if c.track {
		c.resetTouched()
		c.track = false
	}
}

// touch records set as modified since the last sync point.
func (c *Cache) touch(set int) {
	if !c.track || c.marked[set] {
		return
	}
	c.marked[set] = true
	c.touched = append(c.touched, int32(set))
}

func (c *Cache) resetTouched() {
	for _, s := range c.touched {
		c.marked[s] = false
	}
	c.touched = c.touched[:0]
}

// SyncSnapshot re-captures into snap only the sets touched since the last
// sync point, then clears the touch list — the cheap re-arm of a cursor
// worker's local snapshot between faults. snap must have been fully
// captured from this cache before (same geometry, same sync lineage).
// Returns the number of array bytes copied.
func (c *Cache) SyncSnapshot(snap *CacheSnap) uint64 {
	return c.syncDelta(snap, true)
}

// SyncRestore rewinds only the sets touched since the last sync point back
// to snap's contents, then clears the touch list. With the sync invariant
// (cache == snap at the last sync point, all divergence since is tracked)
// the result is bit-identical to a full Restore. Returns the number of
// array bytes copied.
func (c *Cache) SyncRestore(snap *CacheSnap) uint64 {
	return c.syncDelta(snap, false)
}

func (c *Cache) syncDelta(snap *CacheSnap, capture bool) uint64 {
	if !c.track {
		panic(fmt.Sprintf("mem: %s: delta sync without tracking", c.cfg.Name))
	}
	if len(snap.tags) != len(c.tags) || len(snap.data) != len(c.data) {
		panic(fmt.Sprintf("mem: %s: delta sync across geometries", c.cfg.Name))
	}
	ways := c.cfg.Ways
	lb := c.cfg.LineBytes
	var bytes uint64
	for _, s := range c.touched {
		base := int(s) * ways
		end := base + ways
		db, de := base*lb, end*lb
		if capture {
			copy(snap.tags[base:end], c.tags[base:end])
			copy(snap.lru[base:end], c.lru[base:end])
			copy(snap.data[db:de], c.data[db:de])
		} else {
			copy(c.tags[base:end], snap.tags[base:end])
			copy(c.lru[base:end], snap.lru[base:end])
			copy(c.data[db:de], snap.data[db:de])
		}
		bytes += uint64(ways)*16 + uint64(de-db)
	}
	if capture {
		snap.tick = c.tick
		snap.accesses = c.Accesses
		snap.misses = c.Misses
		snap.writebacks = c.Writebacks
	} else {
		c.tick = snap.tick
		c.Accesses = snap.accesses
		c.Misses = snap.misses
		c.Writebacks = snap.writebacks
	}
	c.resetTouched()
	return bytes
}

// CacheSnap is an immutable capture of one cache's complete state (tag,
// data and replacement arrays plus statistics). Its buffers are reused
// across Snapshot calls so interval checkpointing does not allocate per
// capture after the first.
type CacheSnap struct {
	tags []uint64
	data []byte
	lru  []uint64
	tick uint64

	accesses   uint64
	misses     uint64
	writebacks uint64
}

// Snapshot copies the cache state into snap, reusing its buffers (a nil
// snap allocates fresh ones), and returns it.
func (c *Cache) Snapshot(snap *CacheSnap) *CacheSnap {
	if snap == nil {
		snap = &CacheSnap{}
	}
	snap.tags = append(snap.tags[:0], c.tags...)
	snap.data = append(snap.data[:0], c.data...)
	snap.lru = append(snap.lru[:0], c.lru...)
	snap.tick = c.tick
	snap.accesses = c.Accesses
	snap.misses = c.Misses
	snap.writebacks = c.Writebacks
	if c.track {
		// A full capture leaves cache == snap: a fresh sync point.
		c.resetTouched()
	}
	return snap
}

// Restore rewinds the cache to a snapshot by copying into its existing
// arrays — no allocation. The snapshot is only read, so any number of
// caches may restore from it concurrently. The geometry must match.
func (c *Cache) Restore(snap *CacheSnap) {
	if len(snap.tags) != len(c.tags) || len(snap.data) != len(c.data) {
		panic(fmt.Sprintf("mem: %s: restore across geometries", c.cfg.Name))
	}
	copy(c.tags, snap.tags)
	copy(c.data, snap.data)
	copy(c.lru, snap.lru)
	c.tick = snap.tick
	c.Accesses = snap.accesses
	c.Misses = snap.misses
	c.Writebacks = snap.writebacks
	if c.track {
		// A full restore leaves cache == snap: a fresh sync point.
		c.resetTouched()
	}
}

// Bytes returns the captured state size, for checkpoint accounting.
func (s *CacheSnap) Bytes() uint64 {
	return uint64(len(s.tags))*8 + uint64(len(s.data)) + uint64(len(s.lru))*8
}

// SetLower rebinds the lower level after cloning.
func (c *Cache) SetLower(l Level) { c.lower = l }

// TagArray exposes the tag array as a fault-injection target.
func (c *Cache) TagArray() *CacheTagArray { return &CacheTagArray{c} }

// DataArray exposes the data array as a fault-injection target.
func (c *Cache) DataArray() *CacheDataArray { return &CacheDataArray{c} }

// CacheTagArray is the bit-addressable view of a cache's tag array,
// including valid and dirty bits (tagBits+2 bits per line).
type CacheTagArray struct{ c *Cache }

// Name returns the target name, e.g. "L1D (Tag)".
func (a *CacheTagArray) Name() string { return a.c.cfg.Name + " (Tag)" }

// BitCount returns the number of injectable bits.
func (a *CacheTagArray) BitCount() uint64 {
	return uint64(len(a.c.tags)) * uint64(a.c.tagBits+2)
}

// FlipBit flips bit i of the tag array.
func (a *CacheTagArray) FlipBit(i uint64) {
	per := uint64(a.c.tagBits + 2)
	entry := i / per
	a.c.touch(int(entry) / a.c.cfg.Ways)
	a.c.tags[entry] ^= 1 << (i % per)
}

// CacheDataArray is the bit-addressable view of a cache's data array.
type CacheDataArray struct{ c *Cache }

// Name returns the target name, e.g. "L1D (Data)".
func (a *CacheDataArray) Name() string { return a.c.cfg.Name + " (Data)" }

// BitCount returns the number of injectable bits.
func (a *CacheDataArray) BitCount() uint64 { return uint64(len(a.c.data)) * 8 }

// FlipBit flips bit i of the data array.
func (a *CacheDataArray) FlipBit(i uint64) {
	b := i / 8
	line := int(b) / a.c.cfg.LineBytes
	a.c.touch(line / a.c.cfg.Ways)
	a.c.data[b] ^= 1 << (i % 8)
}
