package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

func testConfig() HierarchyConfig {
	return HierarchyConfig{
		RAMSize:     1 << 20,
		L1I:         CacheConfig{Name: "L1I", Sets: 64, Ways: 2, LineBytes: 64, HitLat: 1, AddrBits: 20},
		L1D:         CacheConfig{Name: "L1D", Sets: 64, Ways: 2, LineBytes: 64, HitLat: 2, AddrBits: 20},
		L2:          CacheConfig{Name: "L2", Sets: 128, Ways: 8, LineBytes: 64, HitLat: 10, AddrBits: 20},
		ITLBEntries: 8, DTLBEntries: 8, WalkLat: 20, DRAMLat: 60,
	}
}

func TestRAMBlockOps(t *testing.T) {
	r := NewRAM(4096)
	if r.Size() != 4096 {
		t.Fatalf("size = %d", r.Size())
	}
	r.WriteBlock(100, []byte{1, 2, 3, 4})
	dst := make([]byte, 4)
	r.ReadBlock(100, dst)
	if !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
		t.Errorf("read back % x", dst)
	}
	c := r.Clone()
	c.WriteBlock(100, []byte{9})
	r.ReadBlock(100, dst)
	if dst[0] != 1 {
		t.Error("clone aliases original")
	}
}

func TestPageTableWalk(t *testing.T) {
	pt := NewPageTable(1 << 20)
	if pt.NumPages() != 256 {
		t.Fatalf("pages = %d", pt.NumPages())
	}
	if ppn, ok := pt.Walk(10); !ok || ppn != 10 {
		t.Errorf("identity walk failed: %d %v", ppn, ok)
	}
	if _, ok := pt.Walk(256); ok {
		t.Error("walk beyond RAM should fail")
	}
}

func TestTLBHitMiss(t *testing.T) {
	pt := NewPageTable(1 << 20)
	tlb := NewTLB("DTLB", 4, 20)
	pa, lat, f := tlb.Translate(0x12345, pt)
	if f != FaultNone || pa != 0x12345 || lat != 20 {
		t.Fatalf("first access: pa=%#x lat=%d f=%v", pa, lat, f)
	}
	pa, lat, f = tlb.Translate(0x12349, pt)
	if f != FaultNone || pa != 0x12349 || lat != 0 {
		t.Fatalf("hit: pa=%#x lat=%d f=%v", pa, lat, f)
	}
	if tlb.Accesses != 2 || tlb.Misses != 1 {
		t.Errorf("stats: %d/%d", tlb.Misses, tlb.Accesses)
	}
}

func TestTLBPageFault(t *testing.T) {
	pt := NewPageTable(1 << 20)
	tlb := NewTLB("DTLB", 4, 20)
	if _, _, f := tlb.Translate(1<<20+4, pt); f != FaultPage {
		t.Errorf("expected page fault, got %v", f)
	}
}

func TestTLBReplacement(t *testing.T) {
	pt := NewPageTable(1 << 20)
	tlb := NewTLB("DTLB", 2, 20)
	for p := uint64(0); p < 4; p++ {
		tlb.Translate(p*PageBytes, pt)
	}
	// All four pages were walked; with 2 entries at least 2 misses beyond
	// the compulsory ones occurred.
	if tlb.Misses != 4 {
		t.Errorf("misses = %d, want 4 (no reuse)", tlb.Misses)
	}
	tlb.Translate(3*PageBytes, pt) // most recent fill must still hit
	if tlb.Misses != 4 {
		t.Errorf("recently filled page missed")
	}
}

func TestTLBBitFlipCorruptsTranslation(t *testing.T) {
	pt := NewPageTable(1 << 20)
	tlb := NewTLB("DTLB", 1, 20)
	tlb.Translate(0, pt) // fill vpn 0 -> ppn 0
	// Flip PPN bit 7: translation of page 0 now points at page 128.
	tlb.FlipBit(7)
	pa, lat, f := tlb.Translate(8, pt)
	if f != FaultNone || lat != 0 {
		t.Fatalf("unexpected fault/lat: %v %d", f, lat)
	}
	if pa != 128*PageBytes+8 {
		t.Errorf("corrupted translation pa=%#x", pa)
	}
	// Flip a high PPN bit so the page exceeds RAM: page fault on use.
	tlb.FlipBit(11)
	if _, _, f := tlb.Translate(8, pt); f != FaultPage {
		t.Errorf("expected page fault from corrupted PPN, got %v", f)
	}
	// Flip the valid bit off: next access misses and refills correctly.
	tlb.FlipBit(24)
	pa, lat, f = tlb.Translate(8, pt)
	if f != FaultNone || pa != 8 || lat != 20 {
		t.Errorf("refill after valid-flip: pa=%#x lat=%d f=%v", pa, lat, f)
	}
}

func TestTLBBitCount(t *testing.T) {
	tlb := NewTLB("ITLB", 16, 20)
	if tlb.BitCount() != 16*25 {
		t.Errorf("BitCount = %d, want %d", tlb.BitCount(), 16*25)
	}
}

func newTestCacheOverRAM(lat uint64) (*Cache, *RAM) {
	ram := NewRAM(1 << 20)
	c := NewCache(CacheConfig{Name: "C", Sets: 4, Ways: 2, LineBytes: 16, HitLat: 1, AddrBits: 20},
		&RAMLevel{RAM: ram, ReadLat: lat})
	return c, ram
}

func TestCacheReadThrough(t *testing.T) {
	c, ram := newTestCacheOverRAM(50)
	ram.WriteBlock(0x100, []byte{0xAA, 0xBB})
	buf := make([]byte, 2)
	lat := c.Access(0x100, 2, false, buf)
	if lat != 51 {
		t.Errorf("miss latency = %d, want 51", lat)
	}
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Errorf("data = % x", buf)
	}
	lat = c.Access(0x100, 2, false, buf)
	if lat != 1 {
		t.Errorf("hit latency = %d, want 1", lat)
	}
	if c.Accesses != 2 || c.Misses != 1 {
		t.Errorf("stats %d/%d", c.Misses, c.Accesses)
	}
}

func TestCacheWriteBack(t *testing.T) {
	c, ram := newTestCacheOverRAM(50)
	c.Access(0x200, 1, true, []byte{0x5A})
	if ram.Bytes()[0x200] == 0x5A {
		t.Fatal("write-back cache must not write through")
	}
	// Evict set of 0x200 by touching two other lines mapping to it.
	// Set index bits are addr[5:4] with 4 sets of 16-byte lines.
	c.Access(0x200+1024, 1, false, make([]byte, 1))
	c.Access(0x200+2048, 1, false, make([]byte, 1))
	if ram.Bytes()[0x200] != 0x5A {
		t.Error("dirty line not written back on eviction")
	}
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Writebacks)
	}
}

func TestCacheFlush(t *testing.T) {
	c, ram := newTestCacheOverRAM(50)
	c.Access(0x300, 1, true, []byte{0x77})
	c.Flush()
	if ram.Bytes()[0x300] != 0x77 {
		t.Error("flush did not write back")
	}
	// Second flush is a no-op (dirty cleared).
	wb := c.Writebacks
	c.Flush()
	if c.Writebacks != wb {
		t.Error("flush wrote back clean lines")
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	c, _ := newTestCacheOverRAM(50)
	// Three lines mapping to set 0 with 2 ways: A, B, A, C -> B evicted.
	a, b2, c3 := uint64(0x000), uint64(0x400), uint64(0x800)
	buf := make([]byte, 1)
	c.Access(a, 1, false, buf)
	c.Access(b2, 1, false, buf)
	c.Access(a, 1, false, buf)
	c.Access(c3, 1, false, buf)
	misses := c.Misses
	c.Access(a, 1, false, buf) // must still hit
	if c.Misses != misses {
		t.Error("LRU evicted the recently used line")
	}
	c.Access(b2, 1, false, buf) // must miss
	if c.Misses != misses+1 {
		t.Error("expected miss on evicted line")
	}
}

func TestCacheDataBitFlipVisible(t *testing.T) {
	c, _ := newTestCacheOverRAM(50)
	c.Access(0, 1, true, []byte{0x00})
	// The line for addr 0 is in set 0; find which way holds it by
	// flipping bit 0 of both ways' first bytes and reading back.
	c.DataArray().FlipBit(0) // way 0, byte 0, bit 0
	buf := make([]byte, 1)
	c.Access(0, 1, false, buf)
	if buf[0] != 0x01 {
		// The line may be in way 1.
		c.DataArray().FlipBit(uint64(c.Config().LineBytes) * 8)
		c.Access(0, 1, false, buf)
		if buf[0] != 0x01 {
			t.Errorf("data flip not visible: %#x", buf[0])
		}
	}
}

func TestCacheTagBitFlipCausesMissAndRefill(t *testing.T) {
	c, ram := newTestCacheOverRAM(50)
	ram.WriteBlock(0x40, []byte{0xCD})
	buf := make([]byte, 1)
	c.Access(0x40, 1, false, buf) // fill clean line
	// Flip tag bit 0 of every way in its set; subsequent access misses
	// and refills the correct data from RAM (hardware masking).
	per := uint64(c.tagBits + 2)
	set, _, _ := c.split(0x40)
	for w := 0; w < c.Config().Ways; w++ {
		c.TagArray().FlipBit(uint64(set*c.Config().Ways+w) * per)
	}
	misses := c.Misses
	c.Access(0x40, 1, false, buf)
	if c.Misses != misses+1 {
		t.Error("corrupted tag should cause a miss")
	}
	if buf[0] != 0xCD {
		t.Errorf("refill returned %#x", buf[0])
	}
}

func TestCacheDirtyTagFlipWritesBackToWrongAddress(t *testing.T) {
	c, ram := newTestCacheOverRAM(50)
	c.Access(0x40, 1, true, []byte{0xEE}) // dirty line at 0x40, set 0...
	set, tag, _ := c.split(0x40)
	base := set * c.Config().Ways
	way := -1
	for w := 0; w < c.Config().Ways; w++ {
		if c.tags[base+w]&c.valid != 0 && c.tags[base+w]&c.tmask == tag {
			way = w
		}
	}
	if way < 0 {
		t.Fatal("line not found")
	}
	// Flip tag bit 0 of that way: the dirty line now names a different
	// address and will be written back there on flush.
	c.TagArray().FlipBit(uint64(base+way) * uint64(c.tagBits+2))
	c.Flush()
	wrong := c.lineAddr(set, (tag ^ 1))
	if ram.Bytes()[wrong] != 0xEE {
		t.Errorf("writeback went to %#x? wrong-addr byte=%#x", wrong, ram.Bytes()[wrong])
	}
	if ram.Bytes()[0x40] == 0xEE {
		t.Error("original address should have stale data")
	}
}

func TestCacheBitCounts(t *testing.T) {
	c, _ := newTestCacheOverRAM(50)
	// 4 sets x 2 ways: tagBits = 20-2-4 = 14, +2 for valid/dirty.
	if got := c.TagArray().BitCount(); got != 8*16 {
		t.Errorf("tag bits = %d, want 128", got)
	}
	if got := c.DataArray().BitCount(); got != 4*2*16*8 {
		t.Errorf("data bits = %d", got)
	}
	if c.TagArray().Name() != "C (Tag)" || c.DataArray().Name() != "C (Data)" {
		t.Errorf("names: %q %q", c.TagArray().Name(), c.DataArray().Name())
	}
}

// TestCacheActsAsMemory drives random accesses through a tiny cache and
// checks, after a final flush, that RAM matches a flat reference model.
func TestCacheActsAsMemory(t *testing.T) {
	c, ram := newTestCacheOverRAM(50)
	ref := make([]byte, 1<<12)
	rng := rand.New(rand.NewSource(42))
	sizes := []uint64{1, 2, 4, 8}
	for i := 0; i < 20000; i++ {
		n := sizes[rng.Intn(len(sizes))]
		addr := (uint64(rng.Intn(len(ref))) / n) * n
		if rng.Intn(2) == 0 {
			buf := make([]byte, n)
			rng.Read(buf)
			c.Access(addr, n, true, buf)
			copy(ref[addr:], buf)
		} else {
			buf := make([]byte, n)
			c.Access(addr, n, false, buf)
			if !bytes.Equal(buf, ref[addr:addr+n]) {
				t.Fatalf("read mismatch at %#x: got % x want % x", addr, buf, ref[addr:addr+n])
			}
		}
	}
	c.Flush()
	if !bytes.Equal(ram.Bytes()[:len(ref)], ref) {
		t.Fatal("RAM does not match reference after flush")
	}
}

func TestDirtyLinesInRange(t *testing.T) {
	c, _ := newTestCacheOverRAM(50)
	if c.Lines() != 8 {
		t.Fatalf("lines = %d", c.Lines())
	}
	// Four distinct sets (sets = line index mod 4, 16-byte lines).
	c.Access(0x100, 1, true, []byte{1})  // set 0, dirty, inside range
	c.Access(0x520, 1, true, []byte{1})  // set 2, dirty, outside range
	c.Access(0x110, 1, false, []byte{0}) // set 1, clean
	c.Access(0x130, 1, false, []byte{0}) // set 3, clean
	if got := c.DirtyLinesInRange(0x100, 0x400); got != 1 {
		t.Errorf("in range = %d, want 1", got)
	}
	if got := c.DirtyLinesInRange(0, 0x10000); got != 2 {
		t.Errorf("all = %d, want 2", got)
	}
	if got := c.DirtyLinesInRange(0x300, 0x400); got != 0 {
		t.Errorf("empty range = %d", got)
	}
	// Observation must not perturb statistics.
	acc := c.Accesses
	c.DirtyLinesInRange(0, 0x10000)
	if c.Accesses != acc {
		t.Error("DirtyLinesInRange counted as an access")
	}
}

func TestHierarchyFetchLoadStore(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.RAM.WriteBlock(0x1000, []byte{0x78, 0x56, 0x34, 0x12})
	w, lat, f := h.FetchWord(0x1000)
	if f != FaultNone || w != 0x12345678 {
		t.Fatalf("fetch: %#x %v", w, f)
	}
	if lat == 0 {
		t.Error("cold fetch should have nonzero latency")
	}
	_, lat2, _ := h.FetchWord(0x1000)
	if lat2 >= lat {
		t.Error("warm fetch should be faster")
	}
	if lat, f := h.Store(0x2000, 8, 0xDEADBEEFCAFEF00D); f != FaultNone || lat == 0 {
		t.Fatalf("store: %d %v", lat, f)
	}
	v, _, f := h.Load(0x2000, 8)
	if f != FaultNone || v != 0xDEADBEEFCAFEF00D {
		t.Fatalf("load: %#x %v", v, f)
	}
	v, _, _ = h.Load(0x2004, 4)
	if v != 0xDEADBEEF {
		t.Errorf("partial load: %#x", v)
	}
}

func TestHierarchyAlignmentFaults(t *testing.T) {
	h := NewHierarchy(testConfig())
	if _, _, f := h.FetchWord(0x1002); f != FaultAlign {
		t.Error("misaligned fetch should fault")
	}
	if _, _, f := h.Load(0x1001, 4); f != FaultAlign {
		t.Error("misaligned load should fault")
	}
	if _, f := h.Store(0x1004, 8, 0); f != FaultAlign {
		t.Error("misaligned 8-byte store should fault")
	}
}

func TestHierarchyPageFault(t *testing.T) {
	h := NewHierarchy(testConfig())
	if _, _, f := h.Load(1<<20, 4); f != FaultPage {
		t.Errorf("expected page fault, got %v", f)
	}
}

func TestHierarchyDrainOutput(t *testing.T) {
	h := NewHierarchy(testConfig())
	out := []byte("hello avgi")
	for i, b := range out {
		h.Store(0x40000+uint64(i), 1, uint64(b))
	}
	h.Store(0x3FFF8, 8, uint64(len(out)))
	got := h.DrainOutput(0x40000, 0x3FFF8, 8)
	if !bytes.Equal(got, out) {
		t.Errorf("drained %q", got)
	}
}

func TestHierarchyDrainOutputBoundsClamp(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.Store(0x3FFF8, 8, 1<<40) // absurd length from a corrupted run
	got := h.DrainOutput(0x40000, 0x3FFF8, 8)
	if uint64(len(got)) != h.RAM.Size()-0x40000 {
		t.Errorf("clamped length = %d", len(got))
	}
	// Near-2^64 lengths must not overflow outBase+n (regression: a
	// corrupted run once stored ^uint64(0) and panicked the drain).
	h.Store(0x3FFF8, 8, ^uint64(0))
	got = h.DrainOutput(0x40000, 0x3FFF8, 8)
	if uint64(len(got)) != h.RAM.Size()-0x40000 {
		t.Errorf("overflow clamp length = %d", len(got))
	}
	// An out-of-RAM base yields no output at all.
	if h.DrainOutput(h.RAM.Size()+4096, 0x3FFF8, 8) != nil {
		t.Error("out-of-RAM base should drain nothing")
	}
}

func TestPrefetchI(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.RAM.WriteBlock(0x2000, []byte{0x11, 0x22, 0x33, 0x44})
	h.PrefetchI(0x2004) // prefetch the line containing 0x2000
	_, lat, f := h.FetchWord(0x2000)
	if f != FaultNone {
		t.Fatal(f)
	}
	if lat != h.Cfg.L1I.HitLat {
		t.Errorf("fetch after prefetch lat = %d, want hit %d", lat, h.Cfg.L1I.HitLat)
	}
	// Unmapped prefetches are dropped silently.
	h.PrefetchI(8 << 20)
}

func TestHierarchyCloneIndependence(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.Store(0x5000, 8, 111)
	c := h.Clone()
	c.Store(0x5000, 8, 222)
	v, _, _ := h.Load(0x5000, 8)
	if v != 111 {
		t.Errorf("original sees %d after clone write", v)
	}
	v, _, _ = c.Load(0x5000, 8)
	if v != 222 {
		t.Errorf("clone sees %d", v)
	}
	// Stats diverge independently.
	c.L1D.DataArray().FlipBit(3)
	vv, _, _ := h.Load(0x5000, 8)
	if vv != 111 {
		t.Error("flip in clone affected original")
	}
}

func TestFaultString(t *testing.T) {
	if FaultNone.String() != "none" || FaultPage.String() != "page fault" || FaultAlign.String() != "alignment fault" {
		t.Error("fault strings")
	}
	if Fault(9).String() == "" {
		t.Error("unknown fault string empty")
	}
}
