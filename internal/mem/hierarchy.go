package mem

// HierarchyConfig collects the geometry of the whole memory system.
type HierarchyConfig struct {
	RAMSize uint64

	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	ITLBEntries int
	DTLBEntries int
	WalkLat     uint64 // page-walk latency charged on TLB misses
	DRAMLat     uint64 // RAM read latency beyond L2
}

// Hierarchy is the assembled memory system seen by one core: split L1s over
// a unified L2 over RAM, with per-side TLBs and a linear page table. On a
// single-core machine the hierarchy owns every level; on a shared-memory
// cluster (see SharedMem) the RAM and L2 are shared between the per-core
// hierarchies and base locates this core's physical window.
type Hierarchy struct {
	Cfg HierarchyConfig

	RAM       *RAM
	PageTable *PageTable
	ITLB      *TLB
	DTLB      *TLB
	L1I       *Cache
	L1D       *Cache
	L2        *Cache

	ramLevel *RAMLevel

	// base is the physical address of this core's RAM window (always 0 on
	// a single-core hierarchy). The page table applies it to translations;
	// physical-side consumers (program loading, output DMA) add it
	// explicitly.
	base uint64

	// name is the engine component name ("" reads as "mem").
	name string
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{Cfg: cfg}
	h.RAM = NewRAM(cfg.RAMSize)
	h.PageTable = NewPageTable(cfg.RAMSize)
	h.ITLB = NewTLB("ITLB", cfg.ITLBEntries, cfg.WalkLat)
	h.DTLB = NewTLB("DTLB", cfg.DTLBEntries, cfg.WalkLat)
	h.ramLevel = &RAMLevel{RAM: h.RAM, ReadLat: cfg.DRAMLat}
	h.L2 = NewCache(cfg.L2, h.ramLevel)
	h.L1I = NewCache(cfg.L1I, h.L2)
	h.L1D = NewCache(cfg.L1D, h.L2)
	return h
}

// Base returns the physical address of this core's RAM window: 0 on a
// single-core hierarchy, core-index × RAMSize on a cluster core.
func (h *Hierarchy) Base() uint64 { return h.base }

// FetchWord reads one 32-bit instruction word through the ITLB and L1I.
func (h *Hierarchy) FetchWord(vaddr uint64) (word uint32, lat uint64, fault Fault) {
	if vaddr%4 != 0 {
		return 0, 0, FaultAlign
	}
	paddr, tlat, fault := h.ITLB.Translate(vaddr, h.PageTable)
	if fault != FaultNone {
		return 0, tlat, fault
	}
	var buf [4]byte
	clat := h.L1I.Access(paddr, 4, false, buf[:])
	return uint32(uint64LE(buf[:4])), tlat + clat, FaultNone
}

// Load reads n bytes (1, 2, 4 or 8; naturally aligned) through the DTLB and
// L1D, returning the zero-extended value.
func (h *Hierarchy) Load(vaddr, n uint64) (val uint64, lat uint64, fault Fault) {
	if vaddr%n != 0 {
		return 0, 0, FaultAlign
	}
	paddr, tlat, fault := h.DTLB.Translate(vaddr, h.PageTable)
	if fault != FaultNone {
		return 0, tlat, fault
	}
	var buf [8]byte
	clat := h.L1D.Access(paddr, n, false, buf[:n])
	return uint64LE(buf[:n]), tlat + clat, FaultNone
}

// Store writes the low n bytes of val through the DTLB and L1D.
func (h *Hierarchy) Store(vaddr, n, val uint64) (lat uint64, fault Fault) {
	if vaddr%n != 0 {
		return 0, FaultAlign
	}
	paddr, tlat, fault := h.DTLB.Translate(vaddr, h.PageTable)
	if fault != FaultNone {
		return tlat, fault
	}
	var buf [8]byte
	for i := uint64(0); i < n; i++ {
		buf[i] = byte(val >> (8 * i))
	}
	clat := h.L1D.Access(paddr, n, true, buf[:n])
	return tlat + clat, FaultNone
}

// PrefetchI fills the line containing vaddr into L1I in the background,
// charging no latency to the fetch stream. It models the next-line
// instruction prefetcher of the Cortex-A72-class front end. Prefetches of
// unmapped addresses are dropped silently.
func (h *Hierarchy) PrefetchI(vaddr uint64) {
	paddr, _, fault := h.ITLB.Translate(vaddr, h.PageTable)
	if fault != FaultNone {
		return
	}
	line := uint64(h.Cfg.L1I.LineBytes)
	var buf [4]byte
	h.L1I.Access(paddr&^(line-1), 4, false, buf[:])
}

// TranslateData exposes a data-side translation without a cache access,
// used by the store queue to pre-translate store addresses.
func (h *Hierarchy) TranslateData(vaddr uint64) (paddr uint64, lat uint64, fault Fault) {
	return h.DTLB.Translate(vaddr, h.PageTable)
}

// DrainOutput models the DMA engine reading the program's output at halt:
// all dirty lines are flushed to RAM (L1D first, then L2) and the output
// region is read directly from physical memory. Corruption sitting in dirty
// cache lines that was never re-read by the program therefore reaches the
// output — the ESC path of the paper.
//
// outLenAddr holds the output byte count (stored by the program as a
// natural-width word); outBase is the start of the output region. The
// returned slice is freshly allocated (page-granular RAM has no stable
// contiguous backing to alias).
func (h *Hierarchy) DrainOutput(outBase, outLenAddr uint64, lenBytes uint64) []byte {
	h.L1D.Flush()
	h.L2.Flush()
	var buf [8]byte
	h.RAM.ReadBlock(h.base+outLenAddr, buf[:lenBytes])
	n := uint64LE(buf[:lenBytes])
	// A faulty run can leave an arbitrary (even near-2^64) length word;
	// clamp to this core's RAM window without overflowing outBase+n.
	if outBase >= h.Cfg.RAMSize {
		return nil
	}
	if max := h.Cfg.RAMSize - outBase; n > max {
		n = max
	}
	out := make([]byte, n)
	h.RAM.ReadBlock(h.base+outBase, out)
	return out
}

// HierarchySnap is an immutable capture of the entire memory system. The
// cache and TLB arrays are copied (they are small); RAM is captured as a
// copy-on-write fork, so the capture cost is pointer-sized per page rather
// than the full RAM image. A snapshot is never mutated after Snapshot
// returns and may be restored from by any number of machines concurrently.
type HierarchySnap struct {
	ram        *RAM
	itlb, dtlb TLBSnap
	l1i, l1d   CacheSnap
	l2         CacheSnap
}

// Snapshot captures the memory system into snap, reusing its buffers (nil
// allocates fresh ones), and returns it. The source hierarchy keeps
// running afterwards: its RAM privatizes pages on subsequent writes.
func (h *Hierarchy) Snapshot(snap *HierarchySnap) *HierarchySnap {
	if snap == nil {
		snap = &HierarchySnap{}
	}
	snap.ram = h.RAM.Snapshot(snap.ram)
	h.ITLB.Snapshot(&snap.itlb)
	h.DTLB.Snapshot(&snap.dtlb)
	h.L1I.Snapshot(&snap.l1i)
	h.L1D.Snapshot(&snap.l1d)
	h.L2.Snapshot(&snap.l2)
	return snap
}

// Restore rewinds the hierarchy to a snapshot in place: cache and TLB
// contents are copied into the existing arrays and RAM adopts the
// snapshot's pages copy-on-write. No allocation, and object identity
// (RAM, cache and level pointers) is preserved. The geometry must match
// the snapshot's.
func (h *Hierarchy) Restore(snap *HierarchySnap) {
	h.RAM.RestoreFrom(snap.ram)
	h.ITLB.Restore(&snap.itlb)
	h.DTLB.Restore(&snap.dtlb)
	h.L1I.Restore(&snap.l1i)
	h.L1D.Restore(&snap.l1d)
	h.L2.Restore(&snap.l2)
}

// BeginDeltaTracking starts dirty-delta tracking on every cache and TLB,
// establishing the current state as a sync point. RAM needs no tracking:
// its copy-on-write pages already privatize at write granularity.
func (h *Hierarchy) BeginDeltaTracking() {
	h.ITLB.BeginDeltaTracking()
	h.DTLB.BeginDeltaTracking()
	h.L1I.BeginDeltaTracking()
	h.L1D.BeginDeltaTracking()
	h.L2.BeginDeltaTracking()
}

// EndDeltaTracking stops dirty-delta tracking everywhere.
func (h *Hierarchy) EndDeltaTracking() {
	h.ITLB.EndDeltaTracking()
	h.DTLB.EndDeltaTracking()
	h.L1I.EndDeltaTracking()
	h.L1D.EndDeltaTracking()
	h.L2.EndDeltaTracking()
}

// SyncSnapshot re-captures into snap only the state touched since the last
// sync point: touched cache sets and TLB entries are copied, RAM is
// re-forked copy-on-write (pointer-sized per page). snap must be a full
// capture of this hierarchy from the current sync lineage. Returns the
// bytes copied.
func (h *Hierarchy) SyncSnapshot(snap *HierarchySnap) uint64 {
	snap.ram = h.RAM.Snapshot(snap.ram)
	bytes := uint64(len(snap.ram.pages)) * 9
	bytes += h.ITLB.SyncSnapshot(&snap.itlb)
	bytes += h.DTLB.SyncSnapshot(&snap.dtlb)
	bytes += h.L1I.SyncSnapshot(&snap.l1i)
	bytes += h.L1D.SyncSnapshot(&snap.l1d)
	bytes += h.L2.SyncSnapshot(&snap.l2)
	return bytes
}

// SyncRestore rewinds only the state touched since the last sync point back
// to snap's contents; bit-identical to a full Restore under the sync
// invariant. Returns the bytes copied.
func (h *Hierarchy) SyncRestore(snap *HierarchySnap) uint64 {
	h.RAM.RestoreFrom(snap.ram)
	bytes := uint64(len(snap.ram.pages)) * 9
	bytes += h.ITLB.SyncRestore(&snap.itlb)
	bytes += h.DTLB.SyncRestore(&snap.dtlb)
	bytes += h.L1I.SyncRestore(&snap.l1i)
	bytes += h.L1D.SyncRestore(&snap.l1d)
	bytes += h.L2.SyncRestore(&snap.l2)
	return bytes
}

// Bytes returns the captured state size in bytes: the copied arrays plus
// the page-pointer table of the RAM fork (the shared page contents are
// not owned by the snapshot and are not counted).
func (s *HierarchySnap) Bytes() uint64 {
	ramPtrs := uint64(len(s.ram.pages)) * 9 // 8-byte pointer + owned flag
	return ramPtrs + s.itlb.Bytes() + s.dtlb.Bytes() +
		s.l1i.Bytes() + s.l1d.Bytes() + s.l2.Bytes()
}

// Name implements engine.Component. Single-core hierarchies are "mem";
// cluster cores are named by SharedMem ("c0.mem", "c1.mem", ...).
func (h *Hierarchy) Name() string {
	if h.name == "" {
		return "mem"
	}
	return h.name
}

// CaptureState implements engine.StateCapturer, mapping the hierarchy's
// buffer-reusing Snapshot machinery onto per-component capture: the token is
// a *HierarchySnap, and passing a prior token back reuses its buffers.
func (h *Hierarchy) CaptureState(prior any) any {
	var snap *HierarchySnap
	if prior != nil {
		snap = prior.(*HierarchySnap)
	}
	return h.Snapshot(snap)
}

// RestoreState implements engine.StateCapturer.
func (h *Hierarchy) RestoreState(state any) {
	h.Restore(state.(*HierarchySnap))
}

// Clone deep-copies the entire memory system.
func (h *Hierarchy) Clone() *Hierarchy {
	c := &Hierarchy{Cfg: h.Cfg}
	c.RAM = h.RAM.Clone()
	c.PageTable = h.PageTable // immutable
	c.ITLB = h.ITLB.Clone()
	c.DTLB = h.DTLB.Clone()
	c.ramLevel = &RAMLevel{RAM: c.RAM, ReadLat: h.ramLevel.ReadLat}
	c.L2 = h.L2.Clone()
	c.L2.SetLower(c.ramLevel)
	c.L1I = h.L1I.Clone()
	c.L1I.SetLower(c.L2)
	c.L1D = h.L1D.Clone()
	c.L1D.SetLower(c.L2)
	return c
}

func uint64LE(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
