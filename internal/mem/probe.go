package mem

// Fault-forensics probes for the memory-side structures (cache tag/data
// arrays and TLBs). A probe is pure observation: it watches the array
// entries covered by one injected fault and reports, through a ProbeSink,
// every event that consumes or erases the corrupted state — so the
// forensics layer (internal/forensics) can attribute the fault's fate
// (overwritten before read, evicted clean, read but logically masked, ...).
//
// Probes are armed after the flip and cleared before the faulty machine is
// rewound, never survive a Clone, and with no probe installed every access
// path takes the exact pre-forensics code (one nil check per access).

// ProbeEvent is one observed interaction with watched corrupted state.
type ProbeEvent uint8

const (
	// ProbeRead: a live watched site was consumed (tag compared, data
	// bytes read, TLB entry hit).
	ProbeRead ProbeEvent = iota
	// ProbeOverwrite: a live watched site was erased by new data (line
	// fill, covering write, TLB refill, register writeback, queue-slot
	// allocation). The site is dead afterwards.
	ProbeOverwrite
	// ProbeEvictClean: a live watched valid, clean line was dropped by a
	// replacement without its data ever leaving the cache. The site is
	// dead afterwards.
	ProbeEvictClean
	// ProbeWriteback: a live watched dirty line was written back to the
	// lower level — the corruption propagated downstream (the ESC-shaped
	// path), which forensics counts as a consumption.
	ProbeWriteback
)

// ProbeSink receives probe events. The CPU-side fault probe implements it,
// stamping each event with the current machine cycle.
type ProbeSink interface {
	ProbeEvent(ev ProbeEvent)
}

// lineSite is one watched cache entry: a flat way index (set*Ways+way)
// and, for data probes, the watched byte range within the line. A site
// dies on its first overwrite or eviction; events from dead sites are
// dropped so multi-site faults attribute each site at most once.
type lineSite struct {
	flat   int
	lo, hi int // inclusive byte range within the line; unused for tag sites
	dead   bool
}

// LineProbe watches the cache entries covered by one injected fault.
type LineProbe struct {
	sink  ProbeSink
	tag   bool // tag-array probe (vs data-array)
	sites []lineSite
	live  int // sites not yet dead
}

// Sites returns the number of watched sites.
func (p *LineProbe) Sites() int { return len(p.sites) }

// LiveSites returns the number of watched sites not yet erased; at arm
// time that is the number of valid lines the fault actually corrupted.
func (p *LineProbe) LiveSites() int { return p.live }

// ArmTagProbe installs a probe over the tag entries covered by flipping
// width bits starting at bit (the CacheTagArray.FlipBit index space) and
// returns it. liveSites counts watched entries that held reachable state —
// an entry invalid both before and after the flip holds no reachable
// corruption until refilled. Liveness is judged against the pre-flip state
// as well as the post-flip one: a flip that clears the valid bit of a live
// line has destroyed reachable state (the line silently vanishes from the
// cache), so the site must count as live even though it now reads invalid —
// both for honest attribution and so the early-exit oracle never treats the
// dropped line as never-latched.
func (c *Cache) ArmTagProbe(bit uint64, width int, sink ProbeSink) *LineProbe {
	per := uint64(c.tagBits + 2)
	first := bit / per
	last := (bit + uint64(width) - 1) / per
	p := &LineProbe{sink: sink, tag: true}
	for flat := first; flat <= last && flat < uint64(len(c.tags)); flat++ {
		s := lineSite{flat: int(flat)}
		cur := c.tags[flat]
		pre := cur ^ entryFlipMask(bit, width, flat, per)
		if cur&c.valid == 0 && pre&c.valid == 0 {
			// Invalid in both worlds: the corrupted bits are unreachable
			// until a fill overwrites them — born dead, like a free queue
			// slot.
			s.dead = true
		} else {
			p.live++
		}
		p.sites = append(p.sites, s)
	}
	c.probe = p
	return p
}

// entryFlipMask returns the in-entry mask of the flipped bits that landed
// on entry flat, given per bits per entry — XORing it onto the post-flip
// entry value reconstructs the pre-flip state.
func entryFlipMask(bit uint64, width int, flat, per uint64) uint64 {
	lo, hi := flat*per, (flat+1)*per
	var m uint64
	for b := bit; b < bit+uint64(width); b++ {
		if b >= lo && b < hi {
			m |= 1 << (b - lo)
		}
	}
	return m
}

// ArmDataProbe installs a probe over the data bytes covered by flipping
// width bits starting at bit (the CacheDataArray.FlipBit index space).
func (c *Cache) ArmDataProbe(bit uint64, width int, sink ProbeSink) *LineProbe {
	byteLo := bit / 8
	byteHi := (bit + uint64(width) - 1) / 8
	lb := uint64(c.cfg.LineBytes)
	p := &LineProbe{sink: sink}
	for line := byteLo / lb; line <= byteHi/lb && line < uint64(c.Lines()); line++ {
		lo, hi := uint64(0), lb-1
		if line == byteLo/lb {
			lo = byteLo % lb
		}
		if line == byteHi/lb {
			hi = byteHi % lb
		}
		s := lineSite{flat: int(line), lo: int(lo), hi: int(hi)}
		if c.tags[line]&c.valid == 0 {
			s.dead = true
		} else {
			p.live++
		}
		p.sites = append(p.sites, s)
	}
	c.probe = p
	return p
}

// ClearProbe detaches any installed probe.
func (c *Cache) ClearProbe() { c.probe = nil }

// onLookup reports tag-compare reads: every access resolving in a set
// compares all its tag entries, so a live watched tag in that set was
// consumed by the hit/miss decision.
func (p *LineProbe) onLookup(ways, set int) {
	if !p.tag {
		return
	}
	for i := range p.sites {
		s := &p.sites[i]
		if !s.dead && s.flat/ways == set {
			p.sink.ProbeEvent(ProbeRead)
		}
	}
}

// onData reports data-array reads and covering overwrites on the accessed
// way. A write must cover the whole watched range to kill the site; a
// partial write leaves some corrupted bits resident, so the site stays
// live (and a write missing the watched bytes is no event at all).
func (p *LineProbe) onData(flat, off, n int, write bool) {
	if p.tag {
		return
	}
	for i := range p.sites {
		s := &p.sites[i]
		if s.dead || s.flat != flat {
			continue
		}
		if write {
			if off <= s.lo && s.hi < off+n {
				s.dead = true
				p.live--
				p.sink.ProbeEvent(ProbeOverwrite)
			}
			continue
		}
		if off <= s.hi && s.lo < off+n {
			p.sink.ProbeEvent(ProbeRead)
		}
	}
}

// onEvict reports the fate of a watched entry displaced by a fill: a dirty
// line propagates its corruption downstream (writeback), a clean valid
// line is silently dropped, and in every case the refill overwrites both
// the tag entry and the line data, killing the site.
func (p *LineProbe) onEvict(flat int, valid, dirty bool) {
	for i := range p.sites {
		s := &p.sites[i]
		if s.dead || s.flat != flat {
			continue
		}
		switch {
		case valid && dirty:
			p.sink.ProbeEvent(ProbeWriteback)
		case valid:
			p.sink.ProbeEvent(ProbeEvictClean)
		}
		s.dead = true
		p.live--
		p.sink.ProbeEvent(ProbeOverwrite)
	}
}

// onFlush reports dirty watched lines leaving through a halt-time flush —
// the corruption reaches physical memory (the ESC path), but the line
// stays resident and live (only its dirty bit clears).
func (p *LineProbe) onFlush(flat int) {
	for i := range p.sites {
		s := &p.sites[i]
		if !s.dead && s.flat == flat {
			p.sink.ProbeEvent(ProbeWriteback)
		}
	}
}

// TLBProbe watches the TLB entries covered by one injected fault.
type TLBProbe struct {
	sink   ProbeSink
	lo, hi int // inclusive watched entry range
	dead   []bool
	liveN  int
}

// Sites returns the number of watched entries.
func (p *TLBProbe) Sites() int { return p.hi - p.lo + 1 }

// LiveSites returns the number of watched entries not yet erased; at arm
// time that is the number of valid entries the fault actually corrupted.
func (p *TLBProbe) LiveSites() int { return p.liveN }

// ArmProbe installs a probe over the entries covered by flipping width
// bits starting at bit (the TLB.FlipBit index space).
func (t *TLB) ArmProbe(bit uint64, width int, sink ProbeSink) *TLBProbe {
	lo := int(bit / tlbEntryBits)
	hi := int((bit + uint64(width) - 1) / tlbEntryBits)
	if hi >= len(t.entries) {
		hi = len(t.entries) - 1
	}
	p := &TLBProbe{sink: sink, lo: lo, hi: hi, dead: make([]bool, hi-lo+1)}
	for e := lo; e <= hi; e++ {
		if t.entries[e]&tlbValidBit == 0 {
			p.dead[e-lo] = true
		} else {
			p.liveN++
		}
	}
	t.probe = p
	return p
}

// ClearProbe detaches any installed probe.
func (t *TLB) ClearProbe() { t.probe = nil }

// onHit reports a translation served by a watched live entry — the
// (possibly corrupted) mapping was consumed.
func (p *TLBProbe) onHit(entry int) {
	if entry >= p.lo && entry <= p.hi && !p.dead[entry-p.lo] {
		p.sink.ProbeEvent(ProbeRead)
	}
}

// onFill reports a refill landing on a watched live entry, erasing it.
func (p *TLBProbe) onFill(entry int) {
	if entry >= p.lo && entry <= p.hi && !p.dead[entry-p.lo] {
		p.dead[entry-p.lo] = true
		p.liveN--
		p.sink.ProbeEvent(ProbeOverwrite)
	}
}
