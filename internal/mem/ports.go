package mem

import "avgi/internal/engine"

// MemOp selects the access kind of a MemReq.
type MemOp uint8

const (
	// OpFetch is an instruction-side word fetch (ITLB + L1I).
	OpFetch MemOp = iota
	// OpLoad is a data-side read (DTLB + L1D).
	OpLoad
	// OpStore is a data-side write (DTLB + L1D).
	OpStore
)

// MemReq is a memory request message sent to a PortAdapter's Top port.
type MemReq struct {
	Op   MemOp
	Addr uint64 // virtual address
	Size uint64 // bytes (loads/stores)
	Data uint64 // store data
	ID   uint64 // caller's correlation tag, echoed in the response
}

// MemResp is the response to a MemReq, delivered back on the requester's
// port Lat cycles after the request was processed (minimum one cycle: a
// same-cycle response would let a component observe its own cycle's work,
// which the tick model forbids).
type MemResp struct {
	ID    uint64
	Word  uint32 // OpFetch result
	Val   uint64 // OpLoad result
	Lat   uint64 // the access latency, identical to the synchronous API's lat
	Fault Fault
}

// PortAdapter exposes a Hierarchy as an engine component with a
// request/response port. Requests retrieved on a cycle are performed
// through the synchronous hierarchy in arrival order, and each response is
// scheduled back Lat cycles out — so the latency a requester observes on
// the port is exactly the lat the synchronous API returns for the same
// access sequence. This is the incremental porting path the engine refactor
// promises: stage logic can move from calling Load/Store/FetchWord directly
// to exchanging messages without changing a single timing.
type PortAdapter struct {
	h *Hierarchy

	// Top is the core-facing port; connect it to the requester's port.
	Top *engine.Port
}

// NewPortAdapter wraps h as a port-driven component on eng. The caller
// registers the adapter (it must tick after the requester registers sends).
func NewPortAdapter(eng *engine.Engine, h *Hierarchy) *PortAdapter {
	a := &PortAdapter{h: h}
	a.Top = engine.NewPort(eng, a, "Top")
	return a
}

// Name implements engine.Component.
func (a *PortAdapter) Name() string { return a.h.Name() }

// Tick implements engine.Ticker: drain this cycle's requests in arrival
// order and schedule their responses.
func (a *PortAdapter) Tick(cycle uint64) {
	for a.Top.Pending() > 0 {
		req := a.Top.Retrieve().(MemReq)
		resp := MemResp{ID: req.ID}
		switch req.Op {
		case OpFetch:
			resp.Word, resp.Lat, resp.Fault = a.h.FetchWord(req.Addr)
		case OpLoad:
			resp.Val, resp.Lat, resp.Fault = a.h.Load(req.Addr, req.Size)
		case OpStore:
			resp.Lat, resp.Fault = a.h.Store(req.Addr, req.Size, req.Data)
		}
		a.Top.Send(resp, resp.Lat)
	}
}
