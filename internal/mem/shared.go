package mem

import (
	"fmt"
	"math/bits"
)

// SharedMem is the memory spine of a multi-core machine: one physical RAM
// and one unified L2 shared by every core, with per-core private L1s and
// TLBs assembled into per-core Hierarchy views.
//
// Physical layout: each core owns a private RAMSize-byte window at
// core_index × RAMSize, mapped by its page table (virtual space per core is
// [0, RAMSize), so programs, the SP convention and output regions are
// unchanged from the single-core machine). The address space grows by
// ceil(log2(cores)) bits, so the shared L2's and the private L1s' tag
// fields widen by the same amount — without that, two cores' homonymous
// lines would alias in the tag match. RAM backs the whole grown address
// space (RAMSize << coreBits bytes) so that corrupted tags and TLB entries
// can reach any line a writeback could name, including the other core's
// window — the cross-core escape path a shared L2 makes physically real.
type SharedMem struct {
	// Cfg is the per-core geometry as configured (AddrBits pre-growth).
	Cfg   HierarchyConfig
	Cores int

	RAM      *RAM
	L2       *Cache
	ramLevel *RAMLevel

	hiers []*Hierarchy
}

// NewSharedMem builds the shared spine and cores per-core hierarchy views
// for a cores-core machine.
func NewSharedMem(cfg HierarchyConfig, cores int) *SharedMem {
	if cores < 2 {
		panic(fmt.Sprintf("mem: shared memory needs >= 2 cores, got %d", cores))
	}
	coreBits := bits.Len(uint(cores - 1))
	totalSize := cfg.RAMSize << coreBits
	if totalSize/PageBytes > 1<<pageNumBits {
		panic(fmt.Sprintf("mem: %d cores x %d bytes exceeds the %d-bit TLB page-number field",
			cores, cfg.RAMSize, pageNumBits))
	}

	s := &SharedMem{Cfg: cfg, Cores: cores}
	s.RAM = NewRAM(totalSize)
	s.ramLevel = &RAMLevel{RAM: s.RAM, ReadLat: cfg.DRAMLat}

	l2cfg := cfg.L2
	l2cfg.AddrBits += coreBits
	s.L2 = NewCache(l2cfg, s.ramLevel)

	for k := 0; k < cores; k++ {
		hcfg := cfg
		hcfg.L1I.AddrBits += coreBits
		hcfg.L1D.AddrBits += coreBits
		hcfg.L2 = l2cfg
		h := &Hierarchy{
			Cfg:  hcfg,
			base: uint64(k) * cfg.RAMSize,
			name: fmt.Sprintf("c%d.mem", k),
		}
		h.RAM = s.RAM
		h.PageTable = NewPageTableAt(cfg.RAMSize, h.base/PageBytes, totalSize/PageBytes)
		h.ITLB = NewTLB("ITLB", cfg.ITLBEntries, cfg.WalkLat)
		h.DTLB = NewTLB("DTLB", cfg.DTLBEntries, cfg.WalkLat)
		h.ramLevel = s.ramLevel
		h.L2 = s.L2
		h.L1I = NewCache(hcfg.L1I, s.L2)
		h.L1D = NewCache(hcfg.L1D, s.L2)
		s.hiers = append(s.hiers, h)
	}
	return s
}

// CoreHierarchy returns core k's view of the memory system: private L1s and
// TLBs over the shared L2 and RAM.
func (s *SharedMem) CoreHierarchy(k int) *Hierarchy { return s.hiers[k] }

// Clone deep-copies the whole shared memory system: the RAM and L2 are
// cloned once, and every per-core hierarchy is rebuilt over the clones.
func (s *SharedMem) Clone() *SharedMem {
	c := &SharedMem{Cfg: s.Cfg, Cores: s.Cores}
	c.RAM = s.RAM.Clone()
	c.ramLevel = &RAMLevel{RAM: c.RAM, ReadLat: s.ramLevel.ReadLat}
	c.L2 = s.L2.Clone()
	c.L2.SetLower(c.ramLevel)
	for _, h := range s.hiers {
		ch := &Hierarchy{Cfg: h.Cfg, base: h.base, name: h.name}
		ch.RAM = c.RAM
		ch.PageTable = h.PageTable // immutable
		ch.ITLB = h.ITLB.Clone()
		ch.DTLB = h.DTLB.Clone()
		ch.ramLevel = c.ramLevel
		ch.L2 = c.L2
		ch.L1I = h.L1I.Clone()
		ch.L1I.SetLower(c.L2)
		ch.L1D = h.L1D.Clone()
		ch.L1D.SetLower(c.L2)
		c.hiers = append(c.hiers, ch)
	}
	return c
}
