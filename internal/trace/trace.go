// Package trace defines architectural commit-trace records, golden-trace
// capture, and the ordered comparison that detects the first deviation
// between a faulty run and the fault-free run. The first deviation — its
// position, kind and both records — is the raw material the IMM classifier
// (package imm) works from.
package trace

// Record captures the architecturally visible facts of one committed
// instruction: when it committed, where it came from, what it was, and what
// it did to architectural state. These are exactly the per-retirement
// parameters the paper's Fig. 2 classifier inspects: committed cycle,
// program counter, opcode, operand fields (via the raw instruction word),
// and register/memory contents.
type Record struct {
	Cycle uint64
	PC    uint64
	Word  uint32 // raw instruction word as fetched/decoded

	// HasDest marks instructions writing a destination register; Dest
	// and Value record the architectural register and its new contents.
	HasDest bool
	Dest    uint8
	Value   uint64

	// IsStore marks stores; Addr and Value record the effective address
	// and stored data (Value is reused for store data).
	IsStore bool
	Addr    uint64
}

// Same reports whether two records are architecturally identical, including
// their timing.
func (r Record) Same(o Record) bool {
	return r == o
}

// SameIgnoringCycle reports whether two records are architecturally
// identical apart from the commit cycle (the ETE condition).
func (r Record) SameIgnoringCycle(o Record) bool {
	r.Cycle = 0
	o.Cycle = 0
	return r == o
}

// packed folds the record's sub-word fields (instruction word, destination
// register, flags) into one 64-bit lane so the whole record compares as
// five 8-byte words.
func (r *Record) packed() uint64 {
	w := uint64(r.Word) | uint64(r.Dest)<<32
	if r.HasDest {
		w |= 1 << 40
	}
	if r.IsStore {
		w |= 1 << 41
	}
	return w
}

// same8 is the word-stride equality check on the comparator's hot path:
// the five 64-bit lanes are XOR-folded into a single branch instead of a
// field-by-field comparison with one branch per field. Callers fall back
// to the field-granular checks only on mismatch, so the first-divergence
// classification (DevRecord vs DevCycle) is untouched.
func (r *Record) same8(g *Record) bool {
	return (r.Cycle^g.Cycle)|(r.PC^g.PC)|(r.Value^g.Value)|
		(r.Addr^g.Addr)|(r.packed()^g.packed()) == 0
}

// Sink receives commit records during simulation.
type Sink interface {
	// OnCommit is called for every committed instruction in order. If it
	// returns false the machine stops simulating (used by HVF runs that
	// only need the first deviation).
	OnCommit(Record) bool
}

// Capture is a Sink that records the full commit trace (the golden run).
type Capture struct {
	Records []Record
}

// OnCommit implements Sink.
func (c *Capture) OnCommit(r Record) bool {
	c.Records = append(c.Records, r)
	return true
}

// DeviationKind describes how a faulty record first diverged from golden.
type DeviationKind uint8

const (
	// DevNone means no deviation was observed.
	DevNone DeviationKind = iota
	// DevRecord means the record differs in PC, instruction word,
	// destination, value or address.
	DevRecord
	// DevCycle means the record matches but committed in a different
	// cycle.
	DevCycle
	// DevExtra means the faulty run committed more instructions than the
	// golden run (ran past the golden halt).
	DevExtra
)

// Deviation describes the first difference between a faulty commit stream
// and the golden trace.
type Deviation struct {
	Kind   DeviationKind
	Index  int    // commit index at which the deviation occurred
	Cycle  uint64 // faulty commit cycle of the deviating record
	Golden Record
	Faulty Record
}

// Comparator is a Sink that compares a faulty run's commits against a
// golden trace on the fly. It records the first deviation; Stop controls
// whether simulation halts at that point (HVF mode) or continues to the end
// of the program (AVF mode, where the final output comparison still needs
// the run to finish).
type Comparator struct {
	Golden []Record
	// StopAtFirst makes OnCommit return false on the first deviation.
	StopAtFirst bool
	// StopCycle, when non-zero, stops the run at the first commit from a
	// cycle strictly beyond it with no deviation found (the
	// effective-residency-time stop). The observation window is
	// [inject, StopCycle] inclusive: every commit at or before StopCycle
	// is examined, including later commits of the boundary cycle itself.
	StopCycle uint64

	// Dev is the first deviation found, if any.
	Dev Deviation

	next    int
	stopped bool
}

// OnCommit implements Sink.
func (c *Comparator) OnCommit(r Record) bool {
	if c.Dev.Kind == DevNone {
		// Window expiry is decided before the record is examined, with
		// strict inequality: the observation window is [inject, StopCycle]
		// inclusive, so a deviation committing exactly at StopCycle is
		// still a deviation, and only a commit from a strictly later cycle
		// ends the run clean. (The old post-classification `>=` check let
		// a matching commit at StopCycle stop the run before a deviating
		// commit of the same cycle behind it was ever inspected, and
		// conversely counted a deviation arriving strictly after the
		// window as in-window.)
		if c.StopCycle > 0 && r.Cycle > c.StopCycle {
			c.stopped = true
			return false
		}
		if c.next >= len(c.Golden) {
			c.Dev = Deviation{Kind: DevExtra, Index: c.next, Cycle: r.Cycle, Faulty: r}
		} else if g := &c.Golden[c.next]; !r.same8(g) {
			if r.SameIgnoringCycle(*g) {
				c.Dev = Deviation{Kind: DevCycle, Index: c.next, Cycle: r.Cycle, Golden: *g, Faulty: r}
			} else {
				c.Dev = Deviation{Kind: DevRecord, Index: c.next, Cycle: r.Cycle, Golden: *g, Faulty: r}
			}
		}
		if c.Dev.Kind != DevNone && c.StopAtFirst {
			c.stopped = true
			return false
		}
	}
	c.next++
	return true
}

// Reset rearms the comparator for a new faulty run against the same golden
// trace: stop conditions, the recorded deviation and the position are
// cleared, the Golden slice is kept. Campaign workers reuse one comparator
// across all their faults instead of allocating one per fault.
func (c *Comparator) Reset() {
	c.StopAtFirst = false
	c.StopCycle = 0
	c.Dev = Deviation{}
	c.next = 0
	c.stopped = false
}

// StartAt positions the comparator at commit index n. Campaigns use this
// when a faulty run is forked from a checkpoint that has already committed
// n instructions: the deterministic pre-injection prefix is known to match
// the golden trace.
func (c *Comparator) StartAt(n int) { c.next = n }

// Stopped reports whether the comparator asked the machine to stop early.
func (c *Comparator) Stopped() bool { return c.stopped }

// Commits returns the number of records observed so far.
func (c *Comparator) Commits() int { return c.next }
