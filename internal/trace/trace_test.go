package trace

import "testing"

func r(cycle, pc uint64, word uint32, val uint64) Record {
	return Record{Cycle: cycle, PC: pc, Word: word, HasDest: true, Dest: 1, Value: val}
}

func TestRecordSame(t *testing.T) {
	a := r(1, 0x1000, 7, 42)
	if !a.Same(a) {
		t.Error("identical records differ")
	}
	b := a
	b.Cycle = 2
	if a.Same(b) {
		t.Error("cycle difference ignored by Same")
	}
	if !a.SameIgnoringCycle(b) {
		t.Error("SameIgnoringCycle should ignore cycle")
	}
	c := a
	c.Value = 43
	if a.SameIgnoringCycle(c) {
		t.Error("value difference ignored")
	}
}

func TestCaptureCollects(t *testing.T) {
	var c Capture
	for i := uint64(0); i < 5; i++ {
		if !c.OnCommit(r(i, 0x1000+4*i, 1, i)) {
			t.Fatal("capture stopped")
		}
	}
	if len(c.Records) != 5 {
		t.Fatalf("len = %d", len(c.Records))
	}
}

func golden(n int) []Record {
	g := make([]Record, n)
	for i := range g {
		g[i] = r(uint64(10+i), uint64(0x1000+4*i), uint32(i), uint64(i))
	}
	return g
}

func TestComparatorNoDeviation(t *testing.T) {
	g := golden(10)
	c := &Comparator{Golden: g}
	for _, rec := range g {
		if !c.OnCommit(rec) {
			t.Fatal("stopped without deviation")
		}
	}
	if c.Dev.Kind != DevNone || c.Commits() != 10 || c.Stopped() {
		t.Errorf("dev=%v commits=%d stopped=%v", c.Dev.Kind, c.Commits(), c.Stopped())
	}
}

func TestComparatorRecordDeviation(t *testing.T) {
	g := golden(10)
	c := &Comparator{Golden: g, StopAtFirst: true}
	c.OnCommit(g[0])
	bad := g[1]
	bad.Value = 999
	if c.OnCommit(bad) {
		t.Error("should stop at first deviation")
	}
	if c.Dev.Kind != DevRecord || c.Dev.Index != 1 {
		t.Errorf("dev %+v", c.Dev)
	}
	if !c.Stopped() {
		t.Error("Stopped should be true")
	}
}

func TestComparatorCycleDeviation(t *testing.T) {
	g := golden(10)
	c := &Comparator{Golden: g}
	c.OnCommit(g[0])
	late := g[1]
	late.Cycle += 7
	if !c.OnCommit(late) {
		t.Error("non-stopping comparator should continue")
	}
	if c.Dev.Kind != DevCycle {
		t.Errorf("dev %v", c.Dev.Kind)
	}
	// Only the first deviation is recorded.
	worse := g[2]
	worse.PC = 0xDEAD
	c.OnCommit(worse)
	if c.Dev.Kind != DevCycle || c.Dev.Index != 1 {
		t.Errorf("first deviation overwritten: %+v", c.Dev)
	}
}

func TestComparatorExtraCommits(t *testing.T) {
	g := golden(2)
	c := &Comparator{Golden: g}
	c.OnCommit(g[0])
	c.OnCommit(g[1])
	c.OnCommit(r(99, 0x2000, 5, 5))
	if c.Dev.Kind != DevExtra || c.Dev.Index != 2 {
		t.Errorf("dev %+v", c.Dev)
	}
}

func TestComparatorStopCycle(t *testing.T) {
	g := golden(100)
	c := &Comparator{Golden: g, StopCycle: 15}
	i := 0
	for ; i < 100; i++ {
		if !c.OnCommit(g[i]) {
			break
		}
	}
	if !c.Stopped() {
		t.Fatal("never stopped")
	}
	// Records have cycles 10, 11, ...; stop fires at cycle >= 15.
	if g[i].Cycle < 15 {
		t.Errorf("stopped too early at cycle %d", g[i].Cycle)
	}
	if c.Dev.Kind != DevNone {
		t.Error("stop-cycle must not be a deviation")
	}
}

func TestComparatorStartAt(t *testing.T) {
	g := golden(10)
	c := &Comparator{Golden: g}
	c.StartAt(4)
	for _, rec := range g[4:] {
		c.OnCommit(rec)
	}
	if c.Dev.Kind != DevNone {
		t.Errorf("resumed comparator deviated: %+v", c.Dev)
	}
	if c.Commits() != 10 {
		t.Errorf("commits = %d", c.Commits())
	}
}
