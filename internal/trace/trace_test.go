package trace

import "testing"

func r(cycle, pc uint64, word uint32, val uint64) Record {
	return Record{Cycle: cycle, PC: pc, Word: word, HasDest: true, Dest: 1, Value: val}
}

func TestRecordSame(t *testing.T) {
	a := r(1, 0x1000, 7, 42)
	if !a.Same(a) {
		t.Error("identical records differ")
	}
	b := a
	b.Cycle = 2
	if a.Same(b) {
		t.Error("cycle difference ignored by Same")
	}
	if !a.SameIgnoringCycle(b) {
		t.Error("SameIgnoringCycle should ignore cycle")
	}
	c := a
	c.Value = 43
	if a.SameIgnoringCycle(c) {
		t.Error("value difference ignored")
	}
}

func TestCaptureCollects(t *testing.T) {
	var c Capture
	for i := uint64(0); i < 5; i++ {
		if !c.OnCommit(r(i, 0x1000+4*i, 1, i)) {
			t.Fatal("capture stopped")
		}
	}
	if len(c.Records) != 5 {
		t.Fatalf("len = %d", len(c.Records))
	}
}

func golden(n int) []Record {
	g := make([]Record, n)
	for i := range g {
		g[i] = r(uint64(10+i), uint64(0x1000+4*i), uint32(i), uint64(i))
	}
	return g
}

func TestComparatorNoDeviation(t *testing.T) {
	g := golden(10)
	c := &Comparator{Golden: g}
	for _, rec := range g {
		if !c.OnCommit(rec) {
			t.Fatal("stopped without deviation")
		}
	}
	if c.Dev.Kind != DevNone || c.Commits() != 10 || c.Stopped() {
		t.Errorf("dev=%v commits=%d stopped=%v", c.Dev.Kind, c.Commits(), c.Stopped())
	}
}

func TestComparatorRecordDeviation(t *testing.T) {
	g := golden(10)
	c := &Comparator{Golden: g, StopAtFirst: true}
	c.OnCommit(g[0])
	bad := g[1]
	bad.Value = 999
	if c.OnCommit(bad) {
		t.Error("should stop at first deviation")
	}
	if c.Dev.Kind != DevRecord || c.Dev.Index != 1 {
		t.Errorf("dev %+v", c.Dev)
	}
	if !c.Stopped() {
		t.Error("Stopped should be true")
	}
}

func TestComparatorCycleDeviation(t *testing.T) {
	g := golden(10)
	c := &Comparator{Golden: g}
	c.OnCommit(g[0])
	late := g[1]
	late.Cycle += 7
	if !c.OnCommit(late) {
		t.Error("non-stopping comparator should continue")
	}
	if c.Dev.Kind != DevCycle {
		t.Errorf("dev %v", c.Dev.Kind)
	}
	// Only the first deviation is recorded.
	worse := g[2]
	worse.PC = 0xDEAD
	c.OnCommit(worse)
	if c.Dev.Kind != DevCycle || c.Dev.Index != 1 {
		t.Errorf("first deviation overwritten: %+v", c.Dev)
	}
}

func TestComparatorExtraCommits(t *testing.T) {
	g := golden(2)
	c := &Comparator{Golden: g}
	c.OnCommit(g[0])
	c.OnCommit(g[1])
	c.OnCommit(r(99, 0x2000, 5, 5))
	if c.Dev.Kind != DevExtra || c.Dev.Index != 2 {
		t.Errorf("dev %+v", c.Dev)
	}
}

func TestComparatorStopCycle(t *testing.T) {
	g := golden(100)
	c := &Comparator{Golden: g, StopCycle: 15}
	i := 0
	for ; i < 100; i++ {
		if !c.OnCommit(g[i]) {
			break
		}
	}
	if !c.Stopped() {
		t.Fatal("never stopped")
	}
	// Records have cycles 10, 11, ...; stop fires at cycle >= 15.
	if g[i].Cycle < 15 {
		t.Errorf("stopped too early at cycle %d", g[i].Cycle)
	}
	if c.Dev.Kind != DevNone {
		t.Error("stop-cycle must not be a deviation")
	}
}

func TestComparatorStartAt(t *testing.T) {
	g := golden(10)
	c := &Comparator{Golden: g}
	c.StartAt(4)
	for _, rec := range g[4:] {
		c.OnCommit(rec)
	}
	if c.Dev.Kind != DevNone {
		t.Errorf("resumed comparator deviated: %+v", c.Dev)
	}
	if c.Commits() != 10 {
		t.Errorf("commits = %d", c.Commits())
	}
}

// TestComparatorWindowBoundary pins the ERT-window boundary semantics: the
// observation window is [inject, StopCycle] inclusive. A deviation
// committing exactly at StopCycle is a deviation — even when a matching
// commit of the same cycle precedes it in the stream (the superscalar
// multi-commit cycle that the old post-classification >= stop cut short) —
// and a deviation strictly after StopCycle is out of window: the run ends
// clean without the record ever being examined.
func TestComparatorWindowBoundary(t *testing.T) {
	// Golden commits two records in cycle 20 (superscalar pair), then one
	// in 21.
	g := []Record{
		r(20, 0x1000, 1, 1),
		r(20, 0x1004, 2, 2),
		r(21, 0x1008, 3, 3),
	}

	t.Run("deviation at expiry cycle behind a match", func(t *testing.T) {
		c := &Comparator{Golden: g, StopAtFirst: true, StopCycle: 20}
		if !c.OnCommit(g[0]) {
			t.Fatal("stopped on the matching first commit of the boundary cycle")
		}
		bad := g[1]
		bad.Value = 99
		if c.OnCommit(bad) {
			t.Fatal("deviating commit at StopCycle not stopped")
		}
		if c.Dev.Kind != DevRecord || c.Dev.Cycle != 20 {
			t.Fatalf("dev %+v, want DevRecord at cycle 20", c.Dev)
		}
	})

	t.Run("deviation one past expiry is out of window", func(t *testing.T) {
		c := &Comparator{Golden: g, StopAtFirst: true, StopCycle: 20}
		c.OnCommit(g[0])
		c.OnCommit(g[1])
		bad := g[2] // cycle 21 > StopCycle
		bad.Value = 99
		if c.OnCommit(bad) {
			t.Fatal("commit past the window must stop the run")
		}
		if c.Dev.Kind != DevNone {
			t.Fatalf("out-of-window commit classified: %+v", c.Dev)
		}
		if !c.Stopped() {
			t.Fatal("not marked stopped")
		}
	})

	t.Run("deviation inside window still wins", func(t *testing.T) {
		c := &Comparator{Golden: g, StopAtFirst: true, StopCycle: 21}
		bad := g[0]
		bad.Value = 99
		if c.OnCommit(bad) {
			t.Fatal("in-window deviation not stopped")
		}
		if c.Dev.Kind != DevRecord {
			t.Fatalf("dev %+v", c.Dev)
		}
	})
}

// TestSame8MatchesFieldEquality drives the word-stride fast path against
// the field-granular Same across every single-field mutation, so the
// packed lanes can never silently drop a field.
func TestSame8MatchesFieldEquality(t *testing.T) {
	base := Record{Cycle: 7, PC: 0x1000, Word: 0xdeadbeef, HasDest: true,
		Dest: 13, Value: 42, IsStore: true, Addr: 0x2000}
	muts := []func(*Record){
		func(r *Record) { r.Cycle++ },
		func(r *Record) { r.PC++ },
		func(r *Record) { r.Word++ },
		func(r *Record) { r.HasDest = false },
		func(r *Record) { r.Dest++ },
		func(r *Record) { r.Value++ },
		func(r *Record) { r.IsStore = false },
		func(r *Record) { r.Addr++ },
	}
	if b := base; !b.same8(&base) {
		t.Fatal("identical records not same8")
	}
	for i, mut := range muts {
		m := base
		mut(&m)
		if m.same8(&base) {
			t.Errorf("mutation %d invisible to same8", i)
		}
		if m.Same(base) {
			t.Errorf("mutation %d invisible to Same", i)
		}
	}
}

// BenchmarkComparatorMatch measures the all-matching hot path of the
// commit comparator — the cost every committed instruction of every
// faulty run pays.
func BenchmarkComparatorMatch(b *testing.B) {
	g := golden(4096)
	c := &Comparator{Golden: g}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		for j := range g {
			c.OnCommit(g[j])
		}
	}
}
