package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avgi/internal/campaign"
	"avgi/internal/cpu"
	"avgi/internal/journal"
	"avgi/internal/prog"
)

// fakeClock is a settable clock for lease-staleness tests: takeover
// scenarios run instantly instead of sleeping through real TTLs.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// leaserContract runs the semantics every Leaser implementation must share.
func leaserContract(t *testing.T, l Leaser, advance func(time.Duration)) {
	t.Helper()
	const ttl = 10 * time.Second

	// First-writer-wins; a live lease refuses other owners.
	if ok, err := l.TryAcquire("shard.chunk-000000-000010", "alice", ttl); err != nil || !ok {
		t.Fatalf("fresh acquire: ok=%v err=%v", ok, err)
	}
	if ok, err := l.TryAcquire("shard.chunk-000000-000010", "bob", ttl); err != nil || ok {
		t.Fatalf("acquire of a live foreign lease: ok=%v err=%v", ok, err)
	}
	// The holder itself renews.
	if ok, err := l.TryAcquire("shard.chunk-000000-000010", "alice", ttl); err != nil || !ok {
		t.Fatalf("holder re-acquire must renew: ok=%v err=%v", ok, err)
	}
	// Heartbeat by the holder extends; by a stranger against a live lease
	// it fails.
	if err := l.Heartbeat("shard.chunk-000000-000010", "alice", ttl); err != nil {
		t.Fatalf("holder heartbeat: %v", err)
	}
	if err := l.Heartbeat("shard.chunk-000000-000010", "bob", ttl); err == nil {
		t.Fatal("stranger heartbeat against a live lease must fail")
	}

	// Stale takeover: past the TTL the lease is free to anyone.
	advance(ttl + time.Second)
	if ok, err := l.TryAcquire("shard.chunk-000000-000010", "bob", ttl); err != nil || !ok {
		t.Fatalf("stale takeover: ok=%v err=%v", ok, err)
	}
	if ok, _ := l.TryAcquire("shard.chunk-000000-000010", "alice", ttl); ok {
		t.Fatal("the deposed owner must not re-acquire a live stolen lease")
	}

	// Release done=false frees the resource.
	if err := l.Release("shard.chunk-000000-000010", "bob", false); err != nil {
		t.Fatalf("release: %v", err)
	}
	if ok, err := l.TryAcquire("shard.chunk-000000-000010", "alice", ttl); err != nil || !ok {
		t.Fatalf("acquire after release: ok=%v err=%v", ok, err)
	}

	// Release done=true is permanent: no owner may ever claim again.
	if err := l.Release("shard.chunk-000000-000010", "alice", true); err != nil {
		t.Fatalf("done release: %v", err)
	}
	if done, err := l.IsDone("shard.chunk-000000-000010"); err != nil || !done {
		t.Fatalf("IsDone after done release: done=%v err=%v", done, err)
	}
	if ok, _ := l.TryAcquire("shard.chunk-000000-000010", "carol", ttl); ok {
		t.Fatal("a done resource must refuse every acquire")
	}

	// Reset clears both leases and done markers under the prefix — and
	// nothing else.
	if ok, _ := l.TryAcquire("shard.merge", "alice", ttl); !ok {
		t.Fatal("merge lease acquire")
	}
	if err := l.Reset("shard.chunk-"); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if done, _ := l.IsDone("shard.chunk-000000-000010"); done {
		t.Fatal("done marker must not survive Reset of its prefix")
	}
	if ok, _ := l.TryAcquire("shard.chunk-000000-000010", "carol", ttl); !ok {
		t.Fatal("resource must be claimable again after Reset")
	}
	if ok, _ := l.TryAcquire("shard.merge", "bob", ttl); ok {
		t.Fatal("Reset of chunk prefix must not free the merge lease")
	}
}

func TestFileLeaserContract(t *testing.T) {
	clk := newFakeClock()
	l := NewFileLeaser(filepath.Join(t.TempDir(), "leases"))
	l.SetClock(clk.Now)
	leaserContract(t, l, clk.Advance)
}

func TestCoordinatorContract(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator()
	c.SetClock(clk.Now)
	leaserContract(t, c, clk.Advance)
}

func TestHTTPLeaserContract(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator()
	c.SetClock(clk.Now)
	mux := http.NewServeMux()
	c.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	leaserContract(t, NewHTTPLeaser(srv.URL), clk.Advance)
}

func TestFileLeaserTornAndEmptyLeases(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "leases")
	l := NewFileLeaser(dir)
	var expired atomic.Int64
	l.SetHooks(nil, func() { expired.Add(1) })

	for _, body := range []string{"", "{\"owner\":\"ali", "not json at all"} {
		name := fmt.Sprintf("torn-%d", len(body))
		path := l.leasePath(name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		// A torn or empty lease record — a claimant crashed mid-create —
		// is indistinguishable from abandonment and must read as free.
		if ok, err := l.TryAcquire(name, "bob", time.Minute); err != nil || !ok {
			t.Fatalf("lease with body %q: ok=%v err=%v (torn leases must be free)", body, ok, err)
		}
	}
	if expired.Load() != 0 {
		t.Error("torn leases must not count as expired (they never had a valid expiry)")
	}
}

func TestFileLeaserTakeoverHooks(t *testing.T) {
	clk := newFakeClock()
	l := NewFileLeaser(filepath.Join(t.TempDir(), "leases"))
	l.SetClock(clk.Now)
	var stolen, expired atomic.Int64
	l.SetHooks(func() { stolen.Add(1) }, func() { expired.Add(1) })

	if ok, _ := l.TryAcquire("x", "alice", time.Second); !ok {
		t.Fatal("seed acquire")
	}
	clk.Advance(2 * time.Second)
	if ok, _ := l.TryAcquire("x", "bob", time.Second); !ok {
		t.Fatal("stale takeover")
	}
	if stolen.Load() != 1 || expired.Load() != 1 {
		t.Errorf("takeover hooks: stolen=%d expired=%d, want 1/1", stolen.Load(), expired.Load())
	}
}

// TestFileLeaserRace pins the O_EXCL arbitration: many goroutines racing
// one fresh lease yield exactly one winner, and racing one *stale* lease
// (the tombstone-rename path) also yields exactly one winner.
func TestFileLeaserRace(t *testing.T) {
	clk := newFakeClock()
	dir := filepath.Join(t.TempDir(), "leases")

	race := func(name string) int {
		const racers = 16
		var wins atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				l := NewFileLeaser(dir) // one leaser per "process"
				l.SetClock(clk.Now)
				<-start
				if ok, err := l.TryAcquire(name, fmt.Sprintf("racer-%02d", i), time.Minute); err != nil {
					t.Errorf("racer %d: %v", i, err)
				} else if ok {
					wins.Add(1)
				}
			}(i)
		}
		close(start)
		wg.Wait()
		return int(wins.Load())
	}

	if w := race("fresh"); w != 1 {
		t.Errorf("%d winners racing a fresh lease, want exactly 1", w)
	}

	// Seed a stale lease, then race the takeover.
	seed := NewFileLeaser(dir)
	seed.SetClock(clk.Now)
	if ok, _ := seed.TryAcquire("stale", "dead-node", time.Second); !ok {
		t.Fatal("seed stale lease")
	}
	clk.Advance(time.Hour)
	if w := race("stale"); w != 1 {
		t.Errorf("%d winners racing a stale takeover, want exactly 1", w)
	}
}

// TestCoordinatorRestart pins the recovery story: the coordinator holds
// lease state in memory only, and a worker's heartbeat re-creates its
// leases on a restarted (empty) coordinator before any rival can claim.
func TestCoordinatorRestart(t *testing.T) {
	var current atomic.Pointer[http.ServeMux]
	mount := func(c *Coordinator) {
		mux := http.NewServeMux()
		c.Mount(mux)
		current.Store(mux)
	}
	mount(NewCoordinator())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().ServeHTTP(w, r)
	}))
	defer srv.Close()

	l := NewHTTPLeaser(srv.URL)
	if ok, err := l.TryAcquire("shard.chunk-000000-000010", "alice", time.Minute); err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}

	// Coordinator dies and restarts empty mid-campaign.
	mount(NewCoordinator())

	// The worker's next heartbeat re-establishes ownership...
	if err := l.Heartbeat("shard.chunk-000000-000010", "alice", time.Minute); err != nil {
		t.Fatalf("heartbeat against restarted coordinator: %v", err)
	}
	// ...so a rival arriving afterwards is refused exactly as before.
	if ok, _ := l.TryAcquire("shard.chunk-000000-000010", "bob", time.Minute); ok {
		t.Error("restarted coordinator granted a lease its heartbeating owner had re-created")
	}
}

// --- dist.Run integration -------------------------------------------------

func newDistRunner(t *testing.T) *campaign.Runner {
	t.Helper()
	w, err := prog.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.ConfigA72()
	r, err := campaign.NewRunner(cfg, w.Build(cfg.Variant))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func distKey() journal.Key {
	return journal.Key{Structure: "RF", Workload: "crc32", Mode: "hvf"}
}

func distBind(faults int) journal.Binding {
	return journal.Binding{Machine: "a72", Variant: "base", ProgramHash: 0xfeed, Seed: 5, Faults: faults}
}

// runFleet executes one campaign as n concurrent in-process "nodes" —
// goroutines with distinct owners sharing a journal directory — and
// returns each node's view plus the canonical shard bytes after merge.
func runFleet(t *testing.T, r *campaign.Runner, n int) ([]byte, [][]campaign.Result) {
	t.Helper()
	dir := t.TempDir()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	faults := r.FaultList("RF", 24, 5)
	key, bind := distKey(), distBind(len(faults))

	views := make([][]campaign.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			views[node], errs[node] = Run(Config{
				Journal:      j,
				Owner:        fmt.Sprintf("node-%d", node),
				Fleet:        2 * n,
				LocalWorkers: 2,
				TTL:          2 * time.Second,
				Poll:         10 * time.Millisecond,
				Sync:         journal.SyncEvery,
			}, r, faults, key, bind, campaign.ModeHVF, 0)
		}(node)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}

	// The canonical shard must exist, be complete, and stand alone — the
	// merge removes every part.
	if hasParts, err := j.HasParts(key, bind); err != nil || hasParts {
		t.Fatalf("after merge: hasParts=%v err=%v", hasParts, err)
	}
	canon := filepath.Join(dir, filepath.FromSlash(j.ShardID(key, bind)))
	data, err := os.ReadFile(canon)
	if err != nil {
		t.Fatalf("canonical shard: %v", err)
	}
	return data, views
}

// TestDistRunByteIdentity is the tentpole guarantee: the merged canonical
// shard is byte-identical whether the campaign ran on one, two or four
// nodes, and every node's returned results equal the plain in-process run.
func TestDistRunByteIdentity(t *testing.T) {
	r := newDistRunner(t)
	faults := r.FaultList("RF", 24, 5)
	serial := r.Run(faults, campaign.ModeHVF, 0, 2)

	var ref []byte
	for _, nodes := range []int{1, 2, 4} {
		data, views := runFleet(t, r, nodes)
		if ref == nil {
			ref = data
		} else if !bytes.Equal(ref, data) {
			t.Errorf("%d-node canonical shard differs from the 1-node shard (%d vs %d bytes)",
				nodes, len(data), len(ref))
		}
		for node, view := range views {
			if !reflect.DeepEqual(view, serial) {
				t.Errorf("%d-node fleet, node %d: merged view diverges from the serial run", nodes, node)
			}
		}
	}
}

// TestDistRunDeadNodeTakeover is the SIGKILL story: a node that journalled
// part of its work and died (stale leases, orphaned part shard) must not
// stall the fleet — a fresh node takes its chunks over after the TTL and
// the merge still folds the dead node's durable results in byte-identically.
func TestDistRunDeadNodeTakeover(t *testing.T) {
	r := newDistRunner(t)
	faults := r.FaultList("RF", 24, 5)
	key, bind := distKey(), distBind(len(faults))
	serial := r.Run(faults, campaign.ModeHVF, 0, 2)

	dir := t.TempDir()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// The dead node journalled its first chunk before dying...
	pw, err := j.PartWriter(key, bind, "dead-node", false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		pw.Append(i, serial[i])
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and died holding chunk leases that have since gone stale, plus a
	// torn lease from a crash mid-heartbeat.
	past := newFakeClock()
	stale := NewFileLeaser(filepath.Join(dir, "leases"))
	stale.SetClock(past.Now)
	shard := j.ShardID(key, bind)
	if ok, _ := stale.TryAcquire(chunkLease(shard, 0, 3), "dead-node", time.Millisecond); !ok {
		t.Fatal("seed stale lease")
	}
	torn := stale.leasePath(chunkLease(shard, 3, 6))
	if err := os.WriteFile(torn, []byte("{\"owner\":\"dead"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := Run(Config{
		Journal:      j,
		Owner:        "survivor",
		Fleet:        4,
		LocalWorkers: 2,
		TTL:          time.Second,
		Poll:         10 * time.Millisecond,
	}, r, faults, key, bind, campaign.ModeHVF, 0)
	if err != nil {
		t.Fatalf("survivor run: %v", err)
	}
	if !reflect.DeepEqual(got, serial) {
		t.Fatal("survivor's merged view diverges from the serial run")
	}

	canon, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(shard)))
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := runFleet(t, r, 1)
	if !bytes.Equal(canon, ref) {
		t.Error("canonical shard after dead-node takeover differs from a clean single-node run")
	}
}

// TestDistRunCoordinatorLeaser runs a two-node fleet arbitrated by an HTTP
// coordinator instead of lease files — the topology for workers that share
// a journal mount but no coordinator-free consensus.
func TestDistRunCoordinatorLeaser(t *testing.T) {
	r := newDistRunner(t)
	faults := r.FaultList("RF", 24, 5)
	key, bind := distKey(), distBind(len(faults))
	serial := r.Run(faults, campaign.ModeHVF, 0, 2)

	c := NewCoordinator()
	mux := http.NewServeMux()
	c.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	dir := t.TempDir()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	views := make([][]campaign.Result, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			views[node], errs[node] = Run(Config{
				Journal:      j,
				Leaser:       NewHTTPLeaser(srv.URL),
				Owner:        fmt.Sprintf("node-%d", node),
				Fleet:        4,
				LocalWorkers: 2,
				TTL:          2 * time.Second,
				Poll:         10 * time.Millisecond,
			}, r, faults, key, bind, campaign.ModeHVF, 0)
		}(node)
	}
	wg.Wait()
	for node := range errs {
		if errs[node] != nil {
			t.Fatalf("node %d: %v", node, errs[node])
		}
		if !reflect.DeepEqual(views[node], serial) {
			t.Errorf("node %d: coordinator-arbitrated view diverges from the serial run", node)
		}
	}
	ref, _ := runFleet(t, r, 1)
	canon, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(j.ShardID(key, bind))))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, ref) {
		t.Error("coordinator-fleet canonical shard differs from the file-lease fleet's")
	}
}

// TestCoordinatorAnnounceFeed covers the campaign fan-out feed used by
// worker-mode avgid processes.
func TestCoordinatorAnnounceFeed(t *testing.T) {
	c := NewCoordinator()
	mux := http.NewServeMux()
	c.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	l := NewHTTPLeaser(srv.URL)

	if err := l.Register("worker-1"); err != nil {
		t.Fatalf("register: %v", err)
	}
	specA := json.RawMessage(`{"workload":"crc32","structure":"RF"}`)
	specB := json.RawMessage(`{"workload":"matmul","structure":"LSQ"}`)
	idA, err := l.Announce(specA)
	if err != nil || idA == 0 {
		t.Fatalf("announce A: id=%d err=%v", idA, err)
	}
	if again, _ := l.Announce(specA); again != idA {
		t.Errorf("byte-identical re-announce minted a new ID (%d vs %d)", again, idA)
	}
	idB, _ := l.Announce(specB)

	all, err := l.Campaigns(0)
	if err != nil || len(all) != 2 {
		t.Fatalf("campaigns(0): %d entries err=%v, want 2", len(all), err)
	}
	tail, _ := l.Campaigns(idA)
	if len(tail) != 1 || tail[0].ID != idB || string(tail[0].Spec) != string(specB) {
		t.Errorf("campaigns(after=%d) = %+v, want just spec B", idA, tail)
	}

	// The nodes listing reflects registration.
	resp, err := http.Get(srv.URL + "/v1/dist/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var nodes []struct {
		Node string `json:"node"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Node != "worker-1" {
		t.Errorf("nodes = %+v, want worker-1", nodes)
	}
}
