package dist

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"avgi/internal/campaign"
	"avgi/internal/fault"
	"avgi/internal/journal"
	"avgi/internal/obs"
)

// Config describes one node's participation in a distributed campaign
// fleet. The zero value is usable given a Journal: it runs as a one-node
// fleet with a file leaser inside the journal directory.
type Config struct {
	// Journal is the shared result store — the coordination substrate.
	// Required. Distributed campaigns demand a writable journal: a node
	// whose shard writes fail aborts its run (un-journalled results are
	// invisible to the fleet) instead of degrading like a single-process
	// study would.
	Journal *journal.Journal

	// Leaser arbitrates chunk/slot ownership. Nil uses a FileLeaser under
	// <journal>/leases — correct whenever all workers share the journal
	// filesystem. Point it at an HTTPLeaser to use a coordinator instead.
	Leaser Leaser

	// Owner is this node's stable identity: stable across restarts (so a
	// resumed node reclaims its own part shard and leases) and unique
	// across live nodes (two live nodes sharing a name would interleave
	// writes in one part shard). Empty derives "<hostname>-<pid>" — unique
	// but NOT restart-stable; long-lived deployments should set it.
	Owner string

	// Fleet is the cluster-wide worker count — what -workers means in
	// distributed mode. It fixes both the chunk geometry (identical on
	// every node) and the slot pool that bounds fleet-wide concurrency.
	// 0 defaults to LocalWorkers (a one-node fleet).
	Fleet int

	// LocalWorkers caps the worker slots this node may hold at once.
	// 0 defaults to min(Fleet, GOMAXPROCS).
	LocalWorkers int

	// Split is the number of chunks carved per fleet worker (default 4):
	// more chunks than workers lets a fast node absorb a slow node's share
	// at chunk granularity. Every node must use the same value — it is
	// part of the chunk geometry.
	Split int

	// TTL is the lease heartbeat deadline (default 10s): a node silent for
	// TTL forfeits its chunks to the fleet. Heartbeats fire every TTL/3.
	TTL time.Duration

	// Poll is the wait between claim rounds while other nodes hold chunks
	// (default TTL/4).
	Poll time.Duration

	// Sync is the part-shard fsync policy (default journal.SyncChunk; use
	// journal.SyncEvery when another node must be able to take over
	// mid-chunk work with per-fault granularity).
	Sync journal.SyncPolicy

	// Obs receives avgi_dist_* telemetry and progress logging; nil
	// disables both.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Owner == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "node"
		}
		c.Owner = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.LocalWorkers <= 0 {
		c.LocalWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Fleet <= 0 {
		c.Fleet = c.LocalWorkers
	}
	if c.LocalWorkers > c.Fleet {
		c.LocalWorkers = c.Fleet
	}
	if c.Split <= 0 {
		c.Split = 4
	}
	if c.TTL <= 0 {
		c.TTL = 10 * time.Second
	}
	if c.Poll <= 0 {
		c.Poll = c.TTL / 4
	}
	if c.Leaser == nil && c.Journal != nil {
		c.Leaser = NewFileLeaser(filepath.Join(c.Journal.Dir(), "leases"))
	}
	return c
}

// metrics is the node's avgi_dist_* instrument set; nil disables.
type metrics struct {
	faults  *obs.Counter
	rounds  *obs.Counter
	held    *obs.Gauge
	stolen  *obs.Counter
	expired *obs.Counter
	mergeS  *obs.Gauge
}

func newMetrics(o *obs.Observer, node string) *metrics {
	if !o.Enabled() || o.Metrics == nil {
		return nil
	}
	lb := map[string]string{"node": node}
	return &metrics{
		faults: o.Metrics.Counter("avgi_dist_faults_total",
			"faults this node simulated for distributed campaigns (rate = per-node faults/s)", lb),
		rounds: o.Metrics.Counter("avgi_dist_rounds_total",
			"claim rounds this node ran across distributed campaigns", lb),
		held: o.Metrics.Gauge("avgi_dist_leases_held",
			"chunk and slot leases this node currently holds", lb),
		stolen: o.Metrics.Counter("avgi_dist_leases_stolen_total",
			"stale leases this node took over from silent owners", lb),
		expired: o.Metrics.Counter("avgi_dist_leases_expired_total",
			"expired leases this node observed while claiming", lb),
		mergeS: o.Metrics.Gauge("avgi_dist_merge_seconds",
			"wall-clock duration of this node's last shard merge", lb),
	}
}

// heartbeater renews every held lease on a TTL/3 cadence from one
// goroutine, so worker goroutines never block on lease I/O mid-chunk.
type heartbeater struct {
	l     Leaser
	owner string
	ttl   time.Duration
	o     *obs.Observer
	held  *obs.Gauge

	mu    sync.Mutex
	names map[string]struct{}
	stop  chan struct{}
	done  chan struct{}
}

func newHeartbeater(l Leaser, owner string, ttl time.Duration, o *obs.Observer, held *obs.Gauge) *heartbeater {
	h := &heartbeater{l: l, owner: owner, ttl: ttl, o: o, held: held,
		names: make(map[string]struct{}), stop: make(chan struct{}), done: make(chan struct{})}
	go h.run()
	return h
}

func (h *heartbeater) add(name string) {
	h.mu.Lock()
	h.names[name] = struct{}{}
	n := len(h.names)
	h.mu.Unlock()
	if h.held != nil {
		h.held.Set(float64(n))
	}
}

func (h *heartbeater) remove(name string) {
	h.mu.Lock()
	delete(h.names, name)
	n := len(h.names)
	h.mu.Unlock()
	if h.held != nil {
		h.held.Set(float64(n))
	}
}

func (h *heartbeater) run() {
	defer close(h.done)
	interval := h.ttl / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.mu.Lock()
			names := make([]string, 0, len(h.names))
			for n := range h.names {
				names = append(names, n)
			}
			h.mu.Unlock()
			for _, n := range names {
				if err := h.l.Heartbeat(n, h.owner, h.ttl); err != nil {
					h.o.Logf("dist: heartbeat %s: %v", n, err)
				}
			}
		}
	}
}

func (h *heartbeater) close() {
	close(h.stop)
	<-h.done
}

// chunkLease names the lease of one chunk of one shard — identical on
// every node because shardID and the chunk geometry are.
func chunkLease(shard string, lo, hi int) string {
	return fmt.Sprintf("%s.chunk-%06d-%06d", shard, lo, hi)
}

// chunkClaimer adapts the Leaser to campaign.ChunkClaimer for one round.
type chunkClaimer struct {
	l       Leaser
	shard   string
	owner   string
	ttl     time.Duration
	hb      *heartbeater
	wfailed *atomic.Bool
	o       *obs.Observer
}

func (c *chunkClaimer) Claim(lo, hi int) (func(bool), bool) {
	name := chunkLease(c.shard, lo, hi)
	ok, err := c.l.TryAcquire(name, c.owner, c.ttl)
	if err != nil {
		c.o.Logf("dist: claim %s: %v", name, err)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	c.hb.add(name)
	return func(done bool) {
		c.hb.remove(name)
		// A chunk is done only if its results are durable: a sticky shard
		// write error means our appends silently stopped, so the chunk
		// must stay claimable (by us next round, or by another node).
		if c.wfailed.Load() {
			done = false
		}
		if err := c.l.Release(name, c.owner, done); err != nil {
			c.o.Logf("dist: release %s: %v", name, err)
		}
	}, true
}

// partSink journals each freshly simulated chunk into the node's part
// shard at the configured fsync cadence.
type partSink struct {
	w     *journal.Writer
	prior map[int]campaign.Result
	met   *metrics
}

func (ps *partSink) ChunkDone(lo, hi int, results []campaign.Result) {
	var n uint64
	for i := lo; i < hi; i++ {
		if _, ok := ps.prior[i]; ok {
			continue
		}
		ps.w.Append(i, results[i])
		n++
	}
	ps.w.Sync()
	if ps.met != nil && n > 0 {
		ps.met.faults.Add(n)
	}
}

// acquireSlots claims up to want slots of the fleet-wide pool. Slot leases
// are the cluster budget: at most cfg.Fleet slots exist across all nodes
// and campaigns, each heartbeat-renewed while held and forfeited by a dead
// node after TTL.
func acquireSlots(l Leaser, owner string, fleet, want int, ttl time.Duration) []string {
	var held []string
	for i := 0; i < fleet && len(held) < want; i++ {
		name := fmt.Sprintf("slots/slot-%03d", i)
		if ok, err := l.TryAcquire(name, owner, ttl); err == nil && ok {
			held = append(held, name)
		}
	}
	return held
}

// Run executes one campaign as this node's share of a distributed fleet
// and returns the complete, fleet-merged results in fault-list order.
//
// Every node of the fleet calls Run with identical (faults, key, bind,
// mode, window) — derived from the same workload, seed and fault count —
// and any node's Run returns only once the whole campaign is complete and
// merged into the canonical shard, however the work was split. The round
// loop:
//
//  1. LoadAll the shared view (canonical shard + every node's parts).
//  2. Acquire worker slots (the cluster budget), then run the campaign
//     with a lease-backed chunk claimer: chunks another live node holds
//     are skipped, chunks of dead nodes are taken over after TTL.
//  3. Completed chunks are journalled to this node's part shard and
//     marked done; if any chunk was skipped, sleep briefly and repeat —
//     the missing results are either in another node's part shard by the
//     next LoadAll, or their leases have expired and round N+1 claims
//     them.
//  4. When coverage is complete, one node wins the merge lease and folds
//     all parts into the canonical shard (byte-deterministic index
//     order); everyone else observes the finished merge and returns.
//
// A SIGKILLed node is just a resumed study: restart it (or any node) with
// the same journal and the campaign completes; its part shard's torn tail
// is truncated on resume exactly like a single-process crash.
func Run(cfg Config, r *campaign.Runner, faults []fault.Fault,
	key journal.Key, bind journal.Binding, mode campaign.Mode, window uint64) ([]campaign.Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Journal == nil {
		return nil, fmt.Errorf("dist: a shared journal is required")
	}
	if bind.Faults != len(faults) {
		return nil, fmt.Errorf("dist: binding declares %d faults, list has %d", bind.Faults, len(faults))
	}
	j, l := cfg.Journal, cfg.Leaser
	shard := j.ShardID(key, bind)
	total := len(faults)
	met := newMetrics(cfg.Obs, cfg.Owner)
	if fl, ok := l.(*FileLeaser); ok && met != nil {
		fl.SetHooks(func() { met.stolen.Inc() }, func() { met.expired.Inc() })
	}

	var prior map[int]campaign.Result
	for {
		var err error
		prior, err = j.LoadAll(key, bind)
		if err != nil {
			// A mismatched canonical header means the shard belongs to a
			// different configuration; the merge below will rewrite it.
			cfg.Obs.Logf("dist: %s: %v; treating shard as empty", shard, err)
			prior = nil
		}
		if len(prior) >= total {
			break
		}
		slots := acquireSlots(l, cfg.Owner, cfg.Fleet, cfg.LocalWorkers, cfg.TTL)
		if len(slots) == 0 {
			// The whole cluster budget is held elsewhere; wait for a slot
			// to free (or expire).
			time.Sleep(cfg.Poll)
			continue
		}
		if met != nil {
			met.rounds.Inc()
		}
		hb := newHeartbeater(l, cfg.Owner, cfg.TTL, cfg.Obs, heldGauge(met))
		for _, s := range slots {
			hb.add(s)
		}
		pw, err := j.PartWriter(key, bind, cfg.Owner, true)
		if err != nil {
			hb.close()
			releaseSlots(l, cfg.Owner, slots)
			return nil, fmt.Errorf("dist: part shard: %w", err)
		}
		pw.SetSyncPolicy(cfg.Sync)
		var wfailed atomic.Bool
		pw.OnError(func(err error) {
			wfailed.Store(true)
			cfg.Obs.Logf("dist: %s: part write failed: %v", shard, err)
		})
		_, skipped := r.RunCampaign(campaign.RunSpec{
			Faults: faults, Mode: mode, Window: window,
			Budget:      campaign.NewBudget(len(slots)),
			Prior:       prior,
			Sink:        &partSink{w: pw, prior: prior, met: met},
			PlanWorkers: cfg.Fleet * cfg.Split,
			Claimer: &chunkClaimer{l: l, shard: shard, owner: cfg.Owner,
				ttl: cfg.TTL, hb: hb, wfailed: &wfailed, o: cfg.Obs},
		})
		closeErr := pw.Close()
		hb.close()
		releaseSlots(l, cfg.Owner, slots)
		if wfailed.Load() || closeErr != nil {
			// Un-journalled results are invisible to the fleet: fail this
			// node loudly instead of spinning on a broken disk.
			return nil, fmt.Errorf("dist: %s: journal writes failed (%v); node cannot contribute durable results", shard, closeErr)
		}
		if skipped > 0 {
			// Another node owns the rest; let it finish (or its leases
			// expire) before the next round.
			time.Sleep(cfg.Poll)
		}
	}

	if err := mergeShard(cfg, j, l, shard, key, bind, total, met); err != nil {
		return nil, err
	}
	// Re-load the post-merge view if the merge (ours or another node's)
	// could have changed the record set — it cannot, but a final coverage
	// check keeps the guarantee explicit.
	out := make([]campaign.Result, total)
	for i := 0; i < total; i++ {
		res, ok := prior[i]
		if !ok {
			return nil, fmt.Errorf("dist: %s: merged view is missing fault %d", shard, i)
		}
		out[i] = res
	}
	return out, nil
}

func heldGauge(m *metrics) *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.held
}

func releaseSlots(l Leaser, owner string, slots []string) {
	for _, s := range slots {
		l.Release(s, owner, false)
	}
}

// mergeShard consolidates parts into the canonical shard exactly once per
// fleet: one node wins the merge lease and merges; the others poll until
// the parts are gone and the canonical shard is complete. The merge lease
// is pure mutual exclusion (released, never marked done) — whether a merge
// is still needed is re-derived from the filesystem, which also makes a
// crash mid-merge self-healing: canonical-then-unlink ordering in
// journal.Merge means the next winner either redoes the merge from intact
// parts or just removes already-folded stragglers.
func mergeShard(cfg Config, j *journal.Journal, l Leaser, shard string,
	key journal.Key, bind journal.Binding, total int, met *metrics) error {
	mergeName := shard + ".merge"
	for {
		canon, err := j.Load(key, bind)
		if err == nil && len(canon) >= total {
			if hasParts, _ := j.HasParts(key, bind); !hasParts {
				return nil // fully merged (by us or by another node)
			}
		}
		ok, err := l.TryAcquire(mergeName, cfg.Owner, cfg.TTL)
		if err != nil {
			cfg.Obs.Logf("dist: merge lease %s: %v", mergeName, err)
		}
		if !ok {
			time.Sleep(cfg.Poll)
			continue
		}
		all, err := j.LoadAll(key, bind)
		if err != nil || len(all) < total {
			l.Release(mergeName, cfg.Owner, false)
			if err == nil {
				err = fmt.Errorf("coverage shrank to %d/%d", len(all), total)
			}
			return fmt.Errorf("dist: %s: merge pre-check: %w", shard, err)
		}
		t0 := time.Now()
		mergeErr := j.Merge(key, bind, all)
		l.Release(mergeName, cfg.Owner, false)
		if mergeErr != nil {
			return fmt.Errorf("dist: %s: merge: %w", shard, mergeErr)
		}
		if met != nil {
			met.mergeS.Set(time.Since(t0).Seconds())
		}
		// Chunk leases and done markers described the parts; with the
		// parts folded and removed, clear them so the lease directory
		// cannot grow without bound across campaigns.
		if err := l.Reset(shard + ".chunk-"); err != nil {
			cfg.Obs.Logf("dist: reset %s chunk leases: %v", shard, err)
		}
		cfg.Obs.Logf("dist: %s: merged %d results in %s", shard, total, time.Since(t0).Round(time.Millisecond))
		return nil
	}
}
