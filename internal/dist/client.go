package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// HTTPLeaser is the worker-side client of a Coordinator's lease endpoint:
// the same Leaser semantics, reached over the coordinator's obs/avgid mux.
// Transport failures surface as errors; the claim loop treats them as "not
// acquired" and retries, so a coordinator restart (or a network blip)
// stalls a worker briefly instead of failing its campaign.
type HTTPLeaser struct {
	// Base is the coordinator root, e.g. "http://host:9090".
	Base string
	// Client defaults to a 10-second-timeout client.
	Client *http.Client
}

// NewHTTPLeaser returns a leaser talking to the coordinator at base.
func NewHTTPLeaser(base string) *HTTPLeaser {
	return &HTTPLeaser{Base: base, Client: &http.Client{Timeout: 10 * time.Second}}
}

func (h *HTTPLeaser) post(path string, body any, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	cl := h.Client
	if cl == nil {
		cl = http.DefaultClient
	}
	resp, err := cl.Post(h.Base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: coordinator %s: %s", path, resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	return nil
}

func (h *HTTPLeaser) lease(op leaseOp) (bool, error) {
	var rep leaseReply
	if err := h.post("/v1/dist/lease", op, &rep); err != nil {
		return false, err
	}
	if rep.Error != "" {
		return rep.OK, fmt.Errorf("dist: %s", rep.Error)
	}
	return rep.OK, nil
}

// TryAcquire implements Leaser.
func (h *HTTPLeaser) TryAcquire(name, owner string, ttl time.Duration) (bool, error) {
	return h.lease(leaseOp{Op: "acquire", Name: name, Owner: owner, TTLMS: ttl.Milliseconds()})
}

// Heartbeat implements Leaser.
func (h *HTTPLeaser) Heartbeat(name, owner string, ttl time.Duration) error {
	_, err := h.lease(leaseOp{Op: "heartbeat", Name: name, Owner: owner, TTLMS: ttl.Milliseconds()})
	return err
}

// Release implements Leaser.
func (h *HTTPLeaser) Release(name, owner string, done bool) error {
	_, err := h.lease(leaseOp{Op: "release", Name: name, Owner: owner, Done: done})
	return err
}

// IsDone implements Leaser.
func (h *HTTPLeaser) IsDone(name string) (bool, error) {
	return h.lease(leaseOp{Op: "done", Name: name})
}

// Reset implements Leaser.
func (h *HTTPLeaser) Reset(prefix string) error {
	_, err := h.lease(leaseOp{Op: "reset", Name: prefix})
	return err
}

// Register announces this worker to the coordinator's fleet listing.
func (h *HTTPLeaser) Register(node string) error {
	return h.post("/v1/dist/register", map[string]string{"node": node}, nil)
}

// Announce publishes a campaign spec to the coordinator's fan-out feed.
func (h *HTTPLeaser) Announce(spec json.RawMessage) (int, error) {
	var rep map[string]int
	if err := h.post("/v1/dist/campaigns", map[string]json.RawMessage{"spec": spec}, &rep); err != nil {
		return 0, err
	}
	return rep["id"], nil
}

// Campaigns fetches announcements with ID > after.
func (h *HTTPLeaser) Campaigns(after int) ([]Announcement, error) {
	cl := h.Client
	if cl == nil {
		cl = http.DefaultClient
	}
	resp, err := cl.Get(fmt.Sprintf("%s/v1/dist/campaigns?after=%d", h.Base, after))
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: coordinator campaigns: %s", resp.Status)
	}
	var out []Announcement
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	return out, nil
}
