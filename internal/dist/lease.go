// Package dist is the distributed campaign layer: it shards the chunks of
// one fault-injection campaign across N worker processes (and machines)
// with nothing but the shared journal directory — or a tiny coordinator
// endpoint — as the coordination substrate.
//
// The design leans entirely on two properties the rest of the codebase
// already guarantees:
//
//   - Chunk geometry is deterministic and timing-independent
//     (campaign.ChunkSize): every process derives identical [lo, hi)
//     fault ranges from the shared (fault-list length, fleet size) pair,
//     so a lease named "chunk-lo-hi" means the same faults on every node.
//   - Per-fault results are deterministic regardless of which process
//     simulates them, so duplicated simulation — two workers racing a
//     stale lease — is wasted work, never corruption: the merge dedups by
//     fault index and either copy is the copy.
//
// Leases are therefore a performance mechanism, not a safety mechanism.
// Safety (no lost or corrupt results) comes from the journal: each worker
// appends to its own checksummed part shard, the merge step consolidates
// parts into the canonical shard only after verifying full index coverage,
// and a killed worker is just a resumed study. See docs/DISTRIBUTED.md for
// the topology and failure matrix.
package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Leaser is the chunk-ownership arbiter of one campaign fleet. Resource
// names are slash-separated paths ("<shardID>.chunk-0-125", "slots/slot-3");
// owners are stable node identities. Two implementations exist: FileLeaser
// (lease files in the shared journal directory, no server needed) and the
// coordinator pair (Coordinator in-process / HTTPLeaser remote).
//
// Semantics every implementation provides:
//
//   - TryAcquire is first-writer-wins. A lease whose heartbeat expired is
//     free (stale-lease takeover); a torn or empty lease record is free; a
//     resource with a done marker is never acquirable again.
//   - TryAcquire by the current holder renews the lease (a restarted
//     worker with a stable owner name reclaims its own leases instantly).
//   - Heartbeat extends a held lease by ttl. Heartbeating a lease that no
//     longer exists re-creates it — that is what lets workers ride through
//     a coordinator restart (the restarted coordinator has empty state and
//     relearns ownership from the next heartbeat wave).
//   - Release with done=true writes a persistent done marker so every
//     later TryAcquire refuses the resource; done=false frees it for the
//     next claimant.
//   - Reset deletes all lease and done state under a name prefix — called
//     by the merge winner once the canonical shard is durable, so finished
//     chunk markers do not outlive the parts they described.
//
// Errors are transport failures (an unreachable coordinator, an unwritable
// lease directory) — callers treat them as "not acquired" and retry, never
// as campaign failures.
type Leaser interface {
	TryAcquire(name, owner string, ttl time.Duration) (bool, error)
	Heartbeat(name, owner string, ttl time.Duration) error
	Release(name, owner string, done bool) error
	IsDone(name string) (bool, error)
	Reset(prefix string) error
}

// leaseRecord is the JSON body of a lease file (and the wire form of
// coordinator lease state).
type leaseRecord struct {
	Owner string `json:"owner"`
	// Expiry is the heartbeat deadline in Unix nanoseconds; a lease whose
	// expiry has passed is stale and free to take over.
	Expiry int64 `json:"expiry_unix_ns"`
}

// FileLeaser coordinates through atomic lease files under a shared
// directory — the zero-infrastructure mode: point every worker's journal
// at the same (network) filesystem and no server is needed.
//
// Protocol, per resource name:
//
//   - root/<name>.lease — the lease record, created O_CREATE|O_EXCL so
//     exactly one creator wins. Heartbeats rewrite it via temp-file rename
//     (atomic, so readers never see a torn record from a live owner).
//   - root/<name>.done — the persistent done marker.
//   - takeover: a claimant that reads a stale (or torn/empty) lease
//     renames it to a claimant-unique tombstone — exactly one racer's
//     rename succeeds — re-checks staleness on the tombstone, removes it,
//     and O_EXCL-creates a fresh lease. If the tombstone turns out live
//     (the owner heartbeated between read and rename), it is renamed
//     back: the owner keeps working either way, because leases only
//     arbitrate efficiency — a lost lease means duplicated simulation,
//     which the deterministic merge absorbs.
type FileLeaser struct {
	root string
	// now is the clock; a variable so tests can run takeover scenarios
	// without real TTL waits.
	now func() time.Time

	// onSteal/onExpired, when non-nil, observe won takeovers and
	// expired-lease sightings (wired to avgi_dist_* counters).
	onSteal   func()
	onExpired func()
}

// NewFileLeaser returns a leaser rooted at dir (created on demand).
func NewFileLeaser(dir string) *FileLeaser {
	return &FileLeaser{root: dir, now: time.Now}
}

// SetClock replaces the staleness clock (tests).
func (l *FileLeaser) SetClock(now func() time.Time) { l.now = now }

// SetHooks registers observation callbacks for won takeovers and expired
// leases. Call before sharing the leaser between goroutines.
func (l *FileLeaser) SetHooks(onSteal, onExpired func()) {
	l.onSteal, l.onExpired = onSteal, onExpired
}

// sanitizeOwner maps an owner identity onto a filename fragment (used in
// tombstone names, which must be claimant-unique).
func sanitizeOwner(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

func (l *FileLeaser) leasePath(name string) string {
	return filepath.Join(l.root, filepath.FromSlash(name)+".lease")
}

func (l *FileLeaser) donePath(name string) string {
	return filepath.Join(l.root, filepath.FromSlash(name)+".done")
}

// read parses a lease file. ok is false for missing, torn or empty
// records — all of which mean "free" to a claimant.
func (l *FileLeaser) read(path string) (leaseRecord, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return leaseRecord{}, false
	}
	var rec leaseRecord
	if json.Unmarshal(data, &rec) != nil || rec.Owner == "" {
		return leaseRecord{}, false
	}
	return rec, true
}

// write atomically replaces path with a fresh lease record via temp-file
// rename.
func (l *FileLeaser) write(path, owner string, ttl time.Duration) error {
	rec := leaseRecord{Owner: owner, Expiry: l.now().Add(ttl).UnixNano()}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	tmp := path + ".tmp-" + sanitizeOwner(owner)
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dist: %w", err)
	}
	return nil
}

// create attempts the O_EXCL lease creation; ok=false means it already
// exists.
func (l *FileLeaser) create(path, owner string, ttl time.Duration) (bool, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return false, nil
		}
		return false, fmt.Errorf("dist: %w", err)
	}
	rec := leaseRecord{Owner: owner, Expiry: l.now().Add(ttl).UnixNano()}
	data, merr := json.Marshal(rec)
	if merr == nil {
		_, merr = f.Write(data)
	}
	if cerr := f.Close(); merr == nil {
		merr = cerr
	}
	if merr != nil {
		os.Remove(path)
		return false, fmt.Errorf("dist: %w", merr)
	}
	return true, nil
}

// TryAcquire implements Leaser.
func (l *FileLeaser) TryAcquire(name, owner string, ttl time.Duration) (bool, error) {
	if done, err := l.IsDone(name); done || err != nil {
		return false, err
	}
	path := l.leasePath(name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return false, fmt.Errorf("dist: %w", err)
	}
	if ok, err := l.create(path, owner, ttl); ok || err != nil {
		return ok, err
	}
	rec, readable := l.read(path)
	switch {
	case readable && rec.Owner == owner:
		// Our own lease (a restarted process, or the previous round):
		// renew in place.
		return true, l.write(path, owner, ttl)
	case readable && l.now().UnixNano() < rec.Expiry:
		return false, nil // live, someone else's
	}
	if readable && l.onExpired != nil {
		l.onExpired()
	}
	// Stale or torn: tombstone takeover. The rename is the race arbiter —
	// exactly one concurrent claimant moves the file.
	tomb := path + ".tomb-" + sanitizeOwner(owner)
	if err := os.Rename(path, tomb); err != nil {
		return false, nil // another claimant renamed first
	}
	if rec2, ok := l.read(tomb); ok && rec2.Owner != owner && l.now().UnixNano() < rec2.Expiry {
		// The owner heartbeated between our read and our rename: give the
		// (live) lease back. Worst case the owner already recreated it and
		// this rename clobbers a fresher record — duplicated simulation,
		// absorbed by the merge.
		os.Rename(tomb, path)
		return false, nil
	}
	os.Remove(tomb)
	ok, err := l.create(path, owner, ttl)
	if ok && l.onSteal != nil {
		l.onSteal()
	}
	return ok, err
}

// Heartbeat implements Leaser. A heartbeat on a vanished lease re-creates
// it (coordinator-restart symmetry; for files this covers a lease
// directory wiped mid-run).
func (l *FileLeaser) Heartbeat(name, owner string, ttl time.Duration) error {
	path := l.leasePath(name)
	if rec, ok := l.read(path); ok && rec.Owner != owner && l.now().UnixNano() < rec.Expiry {
		return fmt.Errorf("dist: lease %s now held by %s", name, rec.Owner)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	return l.write(path, owner, ttl)
}

// Release implements Leaser.
func (l *FileLeaser) Release(name, owner string, done bool) error {
	if done {
		f, err := os.OpenFile(l.donePath(name), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("dist: %w", err)
		}
		fmt.Fprintf(f, "{\"owner\":%q}\n", owner)
		if err := f.Close(); err != nil {
			return fmt.Errorf("dist: %w", err)
		}
	}
	path := l.leasePath(name)
	if rec, ok := l.read(path); ok && rec.Owner == owner {
		os.Remove(path)
	}
	return nil
}

// IsDone implements Leaser.
func (l *FileLeaser) IsDone(name string) (bool, error) {
	if _, err := os.Stat(l.donePath(name)); err == nil {
		return true, nil
	} else if errors.Is(err, os.ErrNotExist) {
		return false, nil
	} else {
		return false, fmt.Errorf("dist: %w", err)
	}
}

// Reset implements Leaser: every lease, done marker and takeover remnant
// whose name starts with prefix is deleted.
func (l *FileLeaser) Reset(prefix string) error {
	base := filepath.Join(l.root, filepath.FromSlash(prefix))
	dir, stem := filepath.Split(base)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("dist: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), stem) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("dist: %w", err)
		}
	}
	return nil
}
