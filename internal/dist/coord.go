package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Coordinator is the lease-endpoint mode: one process (typically the avgid
// server started with -dist-role=coordinator) arbitrates leases in memory
// and exposes them over the obs/avgid mux, so workers on machines that do
// NOT share a filesystem can still split a campaign — they share only the
// journal directory contents via their own mounts, or run machine-local
// journals that are merged offline.
//
// The coordinator is deliberately stateless across restarts: leases live
// in memory only. A restarted coordinator comes back empty and relearns
// ownership from the workers' next heartbeat wave (Heartbeat re-creates
// unknown leases), and done markers are reconstructed from the journal by
// the workers' own claim loops — a chunk whose results are journalled is
// re-claimed, re-verified as prior-covered, and never re-simulated.
//
// Coordinator implements Leaser directly, so the coordinator process's own
// Service uses it in-process while remote workers reach the same state
// through HTTPLeaser.
type Coordinator struct {
	mu     sync.Mutex
	now    func() time.Time
	leases map[string]leaseRecord
	done   map[string]struct{}

	// nodes maps a registered worker identity to its last-seen time.
	nodes map[string]time.Time

	// campaigns is the announced-work fan-out feed: the coordinator's
	// Service announces each assessment it starts, workers poll the feed
	// and run the same assessments against the shared journal.
	campaigns []Announcement
	nextID    int
}

// Announcement is one fanned-out campaign: an opaque request payload (the
// avgid AssessRequest, but the coordinator does not depend on its shape)
// plus a feed ID workers use to deduplicate.
type Announcement struct {
	ID   int             `json:"id"`
	Spec json.RawMessage `json:"spec"`
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		now:    time.Now,
		leases: make(map[string]leaseRecord),
		done:   make(map[string]struct{}),
		nodes:  make(map[string]time.Time),
	}
}

// SetClock replaces the staleness clock (tests).
func (c *Coordinator) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// TryAcquire implements Leaser.
func (c *Coordinator) TryAcquire(name, owner string, ttl time.Duration) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, done := c.done[name]; done {
		return false, nil
	}
	if rec, ok := c.leases[name]; ok && rec.Owner != owner && c.now().UnixNano() < rec.Expiry {
		return false, nil
	}
	c.leases[name] = leaseRecord{Owner: owner, Expiry: c.now().Add(ttl).UnixNano()}
	return true, nil
}

// Heartbeat implements Leaser. Unknown leases are re-created — the
// coordinator-restart recovery path.
func (c *Coordinator) Heartbeat(name, owner string, ttl time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec, ok := c.leases[name]; ok && rec.Owner != owner && c.now().UnixNano() < rec.Expiry {
		return fmt.Errorf("dist: lease %s now held by %s", name, rec.Owner)
	}
	c.leases[name] = leaseRecord{Owner: owner, Expiry: c.now().Add(ttl).UnixNano()}
	return nil
}

// Release implements Leaser.
func (c *Coordinator) Release(name, owner string, done bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if done {
		c.done[name] = struct{}{}
	}
	if rec, ok := c.leases[name]; ok && rec.Owner == owner {
		delete(c.leases, name)
	}
	return nil
}

// IsDone implements Leaser.
func (c *Coordinator) IsDone(name string) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, done := c.done[name]
	return done, nil
}

// Reset implements Leaser.
func (c *Coordinator) Reset(prefix string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name := range c.leases {
		if strings.HasPrefix(name, prefix) {
			delete(c.leases, name)
		}
	}
	for name := range c.done {
		if strings.HasPrefix(name, prefix) {
			delete(c.done, name)
		}
	}
	return nil
}

// Register records a worker node as part of the fleet (observability and
// the /v1/dist/nodes listing; leases do not require registration).
func (c *Coordinator) Register(node string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[node] = c.now()
}

// Nodes returns the registered workers, sorted, with last-seen ages.
func (c *Coordinator) Nodes() map[string]time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Time, len(c.nodes))
	for n, t := range c.nodes {
		out[n] = t
	}
	return out
}

// Announce publishes one campaign spec to the fan-out feed and returns its
// feed ID. Announcing a spec byte-identical to an already-listed one is a
// no-op returning the existing ID (assessments are idempotent, but a
// duplicate entry would make every worker revisit the journal for it).
func (c *Coordinator) Announce(spec json.RawMessage) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.campaigns {
		if string(a.Spec) == string(spec) {
			return a.ID
		}
	}
	c.nextID++
	c.campaigns = append(c.campaigns, Announcement{ID: c.nextID, Spec: append(json.RawMessage(nil), spec...)})
	return c.nextID
}

// Campaigns returns the announcements with ID > after, in feed order.
func (c *Coordinator) Campaigns(after int) []Announcement {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Announcement
	for _, a := range c.campaigns {
		if a.ID > after {
			out = append(out, a)
		}
	}
	return out
}

// leaseOp is the wire form of one lease-endpoint call.
type leaseOp struct {
	Op    string `json:"op"` // acquire | heartbeat | release | done | reset
	Name  string `json:"name"`
	Owner string `json:"owner"`
	TTLMS int64  `json:"ttl_ms"`
	Done  bool   `json:"done"` // release only
}

type leaseReply struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// Mount registers the coordinator's HTTP endpoints on mux (the same mux
// the obs/avgid server already serves):
//
//	POST /v1/dist/lease     — lease ops (acquire/heartbeat/release/done/reset)
//	POST /v1/dist/register  — {"node": ...} worker registration
//	GET  /v1/dist/campaigns — fan-out feed; ?after=<id> for increments
//	POST /v1/dist/campaigns — {"spec": ...} announce one campaign
//	GET  /v1/dist/nodes     — registered workers and last-seen ages
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/v1/dist/lease", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var op leaseOp
		if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ttl := time.Duration(op.TTLMS) * time.Millisecond
		var rep leaseReply
		var err error
		switch op.Op {
		case "acquire":
			rep.OK, err = c.TryAcquire(op.Name, op.Owner, ttl)
		case "heartbeat":
			err = c.Heartbeat(op.Name, op.Owner, ttl)
			rep.OK = err == nil
		case "release":
			err = c.Release(op.Name, op.Owner, op.Done)
			rep.OK = err == nil
		case "done":
			rep.OK, err = c.IsDone(op.Name)
		case "reset":
			err = c.Reset(op.Name)
			rep.OK = err == nil
		default:
			http.Error(w, "unknown op "+op.Op, http.StatusBadRequest)
			return
		}
		if err != nil {
			rep.Error = err.Error()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	mux.HandleFunc("/v1/dist/register", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var body struct {
			Node string `json:"node"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Node == "" {
			http.Error(w, "need {\"node\": ...}", http.StatusBadRequest)
			return
		}
		c.Register(body.Node)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(leaseReply{OK: true})
	})
	mux.HandleFunc("/v1/dist/campaigns", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			after := 0
			fmt.Sscanf(r.URL.Query().Get("after"), "%d", &after)
			w.Header().Set("Content-Type", "application/json")
			list := c.Campaigns(after)
			if list == nil {
				list = []Announcement{}
			}
			json.NewEncoder(w).Encode(list)
		case http.MethodPost:
			var body struct {
				Spec json.RawMessage `json:"spec"`
			}
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body.Spec) == 0 {
				http.Error(w, "need {\"spec\": ...}", http.StatusBadRequest)
				return
			}
			id := c.Announce(body.Spec)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]int{"id": id})
		default:
			http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/v1/dist/nodes", func(w http.ResponseWriter, r *http.Request) {
		nodes := c.Nodes()
		names := make([]string, 0, len(nodes))
		for n := range nodes {
			names = append(names, n)
		}
		sort.Strings(names)
		type nodeView struct {
			Node     string  `json:"node"`
			AgeSec   float64 `json:"age_sec"`
			LastSeen string  `json:"last_seen"`
		}
		out := make([]nodeView, 0, len(names))
		c.mu.Lock()
		now := c.now()
		c.mu.Unlock()
		for _, n := range names {
			out = append(out, nodeView{Node: n, AgeSec: now.Sub(nodes[n]).Seconds(), LastSeen: nodes[n].UTC().Format(time.RFC3339)})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
}
