package archinj

import (
	"math"
	"testing"

	"avgi/internal/campaign"
	"avgi/internal/core"
	"avgi/internal/cpu"
	"avgi/internal/imm"
	"avgi/internal/prog"
)

func TestCampaignPartitions(t *testing.T) {
	w, err := prog.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(cpu.ConfigA72().Variant)
	sum, results, err := Campaign(p, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 100 || len(results) != 100 {
		t.Fatalf("total %d, results %d", sum.Total, len(results))
	}
	if sum.Masked+sum.SDC+sum.Crash != sum.Total {
		t.Errorf("effects don't partition: %+v", sum)
	}
	for _, r := range results {
		if r.Reg == 0 {
			t.Error("injected into the zero register")
		}
	}
	// Architecture-level injection must produce some non-masked effects
	// (it has no hardware masking to hide behind).
	if sum.SDC+sum.Crash == 0 {
		t.Error("no visible effects at all is implausible")
	}
	if sum.PVF() <= 0 || sum.PVF() > 1 {
		t.Errorf("PVF = %f", sum.PVF())
	}
}

func TestCampaignDeterministic(t *testing.T) {
	w, _ := prog.ByName("bitcount")
	p := w.Build(cpu.ConfigA72().Variant)
	a, _, err := Campaign(p, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Campaign(p, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestDivergesFromMicroarchAVF reproduces the paper's motivating claim
// (Section I / VIII, demonstrated in ISCA 2021 [14]): ISA-level injection
// overstates register vulnerability relative to microarchitecture-level
// AVF, because it cannot see hardware masking — free physical registers,
// overwrites, squashed wrong-path state.
func TestDivergesFromMicroarchAVF(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns in -short mode")
	}
	cfg := cpu.ConfigA72()
	w, _ := prog.ByName("sha")
	p := w.Build(cfg.Variant)

	archSum, _, err := Campaign(p, 150, 1)
	if err != nil {
		t.Fatal(err)
	}

	r, err := campaign.NewRunner(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run(r.FaultList("RF", 150, 1), campaign.ModeExhaustive, 0, 0)
	avf := core.AVFFromEffects(campaign.Summarize(res))

	if archSum.PVF() <= avf.Total() {
		t.Errorf("architecture-level PVF %.3f should exceed microarch AVF %.3f",
			archSum.PVF(), avf.Total())
	}
	// The divergence should be substantial (the paper's point), not a
	// rounding artifact.
	if math.Abs(archSum.PVF()-avf.Total()) < 0.02 {
		t.Errorf("divergence suspiciously small: PVF %.3f vs AVF %.3f",
			archSum.PVF(), avf.Total())
	}
	t.Logf("ISA-level PVF %.3f vs microarch AVF %.3f (masked: arch %d/%d)",
		archSum.PVF(), avf.Total(), archSum.Masked, archSum.Total)
	_ = imm.Masked
}
