// Package archinj implements an architecture-level (ISA-level) fault
// injector of the kind the paper's introduction warns about: bit flips are
// injected into architectural registers between instructions of a
// functional execution, with no microarchitecture underneath. Such
// injectors are fast — no pipeline, no caches — but they start from the
// wrong fault population: every injected fault is architecturally visible
// by construction, so hardware masking (benign faults, the majority of all
// real upsets) is invisible to them.
//
// The package exists as the comparison point for that claim (demonstrated
// in ISCA 2021 [14] and reproduced here): the register-file vulnerability
// it reports diverges systematically from the microarchitecture-level AVF
// of the same workload, which is why the AVGI methodology insists on
// microarchitecture-driven assessment.
package archinj

import (
	"bytes"
	"math/rand"

	"avgi/internal/asm"
	"avgi/internal/imm"
	"avgi/internal/iss"
)

// Result is the outcome of one architecture-level injection.
type Result struct {
	Reg    uint8
	Bit    uint
	AtInst uint64
	Effect imm.Effect
}

// Summary aggregates a campaign.
type Summary struct {
	Total  int
	Masked int
	SDC    int
	Crash  int
}

// PVF returns the program-vulnerability-factor style estimate: the
// fraction of injections that affected the output (SDC + Crash over
// total). Note this is conditioned on the fault being architecturally
// visible, which is exactly the methodological gap versus AVF.
func (s Summary) PVF() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.SDC+s.Crash) / float64(s.Total)
}

// Campaign injects n single-bit flips into uniformly random architectural
// registers at uniformly random dynamic instruction positions of the
// program, running each injection functionally to completion. goldenInsts
// and goldenOut come from a fault-free functional run.
func Campaign(p *asm.Program, n int, seed int64) (Summary, []Result, error) {
	golden := iss.New(p)
	gres, err := golden.Run(100_000_000)
	if err != nil {
		return Summary{}, nil, err
	}

	rng := rand.New(rand.NewSource(seed))
	numRegs := p.Variant.NumArchRegs()
	width := p.Variant.Width()

	var sum Summary
	results := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		r := Result{
			Reg:    uint8(rng.Intn(numRegs-1) + 1),
			Bit:    uint(rng.Intn(width)),
			AtInst: uint64(rng.Int63n(int64(gres.Insts))),
		}
		m := iss.New(p)
		if err := m.RunN(r.AtInst); err != nil {
			return Summary{}, nil, err
		}
		m.FlipReg(r.Reg, r.Bit)
		budget := gres.Insts*4 + 10_000
		err := m.RunN(budget - m.Insts())
		switch {
		case err != nil || !m.Halted():
			r.Effect = imm.Crash
		case bytes.Equal(m.Output(), gres.Output):
			r.Effect = imm.Masked
		default:
			r.Effect = imm.SDC
		}
		sum.Total++
		switch r.Effect {
		case imm.Masked:
			sum.Masked++
		case imm.SDC:
			sum.SDC++
		case imm.Crash:
			sum.Crash++
		}
		results = append(results, r)
	}
	return sum, results, nil
}
