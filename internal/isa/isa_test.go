package isa

import (
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func TestVariantProperties(t *testing.T) {
	if V64.Width() != 64 || V32.Width() != 32 {
		t.Fatalf("widths: %d %d", V64.Width(), V32.Width())
	}
	if V64.NumArchRegs() != 32 || V32.NumArchRegs() != 16 {
		t.Fatalf("regs: %d %d", V64.NumArchRegs(), V32.NumArchRegs())
	}
	if V64.Mask() != ^uint64(0) || V32.Mask() != 0xFFFFFFFF {
		t.Fatalf("masks wrong")
	}
	if V64.WordBytes() != 8 || V32.WordBytes() != 4 {
		t.Fatalf("word bytes wrong")
	}
	if V64.String() != "AVG64" || V32.String() != "AVG32" {
		t.Fatalf("names: %q %q", V64.String(), V32.String())
	}
}

func TestSignExtend(t *testing.T) {
	if got := V32.SignExtend(0x80000000); got != -0x80000000 {
		t.Errorf("V32 sign extend: got %d", got)
	}
	if got := V32.SignExtend(0x7FFFFFFF); got != 0x7FFFFFFF {
		t.Errorf("V32 positive: got %d", got)
	}
	if got := V64.SignExtend(0xFFFFFFFFFFFFFFFF); got != -1 {
		t.Errorf("V64 sign extend: got %d", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpNOP},
		{Op: OpHALT},
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSUB, Rd: 15, Rs1: 14, Rs2: 13},
		{Op: OpADDI, Rd: 5, Rs1: 6, Imm: -2048},
		{Op: OpADDI, Rd: 5, Rs1: 6, Imm: 2047},
		{Op: OpORI, Rd: 5, Rs1: 6, Imm: 4095},
		{Op: OpANDI, Rd: 1, Rs1: 1, Imm: 0},
		{Op: OpLUI, Rd: 7, Imm: 131071},
		{Op: OpLUI, Rd: 7, Imm: -131072},
		{Op: OpLW, Rd: 3, Rs1: 4, Imm: -4},
		{Op: OpSW, Rd: 3, Rs1: 4, Imm: 124},
		{Op: OpBEQ, Rd: 1, Rs1: 2, Imm: -100},
		{Op: OpBNE, Rd: 1, Rs1: 2, Imm: 100},
		{Op: OpJAL, Rd: 13, Imm: -5000},
		{Op: OpJALR, Rd: 0, Rs1: 13, Imm: 0},
	}
	for _, v := range []Variant{V64, V32} {
		for _, in := range cases {
			w := Encode(in)
			out := Decode(w, v)
			if out.Illegal != IllegalNone {
				t.Fatalf("%s decode of %s illegal: %v", v, Disasm(in), out.Illegal)
			}
			if out.Op != in.Op || out.Rd != in.Rd || out.Rs1 != in.Rs1 || out.Imm != in.Imm {
				t.Errorf("%s round trip mismatch: in=%+v out=%+v", v, in, out)
			}
			if OpFormat(in.Op) == FmtR && out.Rs2 != in.Rs2 {
				t.Errorf("%s rs2 mismatch: in=%+v out=%+v", v, in, out)
			}
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("reg", func() { Encode(Inst{Op: OpADD, Rd: 64}) })
	mustPanic("imm12 high", func() { Encode(Inst{Op: OpADDI, Imm: 2048}) })
	mustPanic("imm12 low", func() { Encode(Inst{Op: OpADDI, Imm: -2049}) })
	mustPanic("uimm12 neg", func() { Encode(Inst{Op: OpORI, Imm: -1}) })
	mustPanic("uimm12 high", func() { Encode(Inst{Op: OpORI, Imm: 4096}) })
	mustPanic("imm18", func() { Encode(Inst{Op: OpLUI, Imm: 1 << 17}) })
}

func TestDecodeIllegalOpcode(t *testing.T) {
	for _, v := range []Variant{V64, V32} {
		inst := Decode(0xFF<<24|0x12345, v)
		if inst.Illegal != IllegalOpcode {
			t.Errorf("%s: expected IllegalOpcode, got %v", v, inst.Illegal)
		}
		if Classify(inst) != ClassIllegal {
			t.Errorf("%s: expected ClassIllegal", v)
		}
	}
}

func TestDecodeIllegalRegister(t *testing.T) {
	// r40 is illegal under both variants; r20 only under V32.
	w := Encode(Inst{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3})
	w40 := w&^uint32(regMask<<rdShift) | 40<<rdShift
	for _, v := range []Variant{V64, V32} {
		if got := Decode(w40, v).Illegal; got != IllegalReg {
			t.Errorf("%s: r40 expected IllegalReg, got %v", v, got)
		}
	}
	w20 := w&^uint32(regMask<<rdShift) | 20<<rdShift
	if got := Decode(w20, V64).Illegal; got != IllegalNone {
		t.Errorf("V64: r20 should be legal, got %v", got)
	}
	if got := Decode(w20, V32).Illegal; got != IllegalReg {
		t.Errorf("V32: r20 expected IllegalReg, got %v", got)
	}
}

func TestVariantOnlyOpcodes(t *testing.T) {
	for _, op := range []Op{OpLD, OpSD, OpLWU} {
		if !ValidOp(op, V64) {
			t.Errorf("%s should be valid on V64", OpName(op))
		}
		if ValidOp(op, V32) {
			t.Errorf("%s should be invalid on V32", OpName(op))
		}
	}
	var inst Inst
	if inst = Decode(Encode(Inst{Op: OpLD, Rd: 1, Rs1: 2}), V32); inst.Illegal != IllegalOpcode {
		t.Errorf("LD on V32: expected IllegalOpcode, got %v", inst.Illegal)
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(word uint32, which bool) bool {
		v := V64
		if which {
			v = V32
		}
		inst := Decode(word, v)
		_ = Disasm(inst)
		_ = Classify(inst)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeFieldExtractionMatchesEncoding(t *testing.T) {
	// Property: for any legal instruction built from valid fields,
	// Encode/Decode is the identity on the fields the format uses.
	f := func(rd, rs1, rs2 uint8, rawImm int16, opIdx uint8) bool {
		ops := AllOps(V64)
		op := ops[int(opIdx)%len(ops)]
		in := Inst{Op: op, Rd: rd % 16, Rs1: rs1 % 16, Rs2: rs2 % 16}
		switch OpFormat(op) {
		case FmtI, FmtL, FmtS, FmtB:
			if zeroExtImm(op) {
				in.Imm = int32(uint16(rawImm) % 4096)
			} else {
				in.Imm = int32(rawImm % 2048)
			}
		case FmtJ, FmtU:
			in.Imm = int32(rawImm) // int16 always fits imm18
		}
		out := Decode(Encode(in), V64)
		if out.Op != in.Op || out.Illegal != IllegalNone {
			return false
		}
		switch OpFormat(op) {
		case FmtR:
			return out.Rd == in.Rd && out.Rs1 == in.Rs1 && out.Rs2 == in.Rs2
		case FmtI, FmtL, FmtS, FmtB:
			return out.Rd == in.Rd && out.Rs1 == in.Rs1 && out.Imm == in.Imm
		case FmtJ, FmtU:
			return out.Rd == in.Rd && out.Imm == in.Imm
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestEvalALUBasics(t *testing.T) {
	type tc struct {
		op   Op
		a, b uint64
		v    Variant
		want uint64
	}
	cases := []tc{
		{OpADD, 2, 3, V64, 5},
		{OpADD, 0xFFFFFFFF, 1, V32, 0},
		{OpSUB, 3, 5, V32, 0xFFFFFFFE},
		{OpAND, 0xF0, 0x3C, V64, 0x30},
		{OpOR, 0xF0, 0x0F, V64, 0xFF},
		{OpXOR, 0xFF, 0x0F, V64, 0xF0},
		{OpSLL, 1, 4, V64, 16},
		{OpSLL, 1, 31, V32, 0x80000000},
		{OpSRL, 0x80000000, 31, V32, 1},
		{OpSRA, 0x80000000, 31, V32, 0xFFFFFFFF},
		{OpSRA, 1 << 63, 63, V64, ^uint64(0)},
		{OpMUL, 7, 6, V64, 42},
		{OpSLT, ^uint64(0), 0, V64, 1}, // -1 < 0 signed
		{OpSLTU, ^uint64(0), 0, V64, 0},
		{OpDIV, 42, 6, V64, 7},
		{OpDIV, 7, 0, V64, ^uint64(0)},                   // div-by-zero -> all ones
		{OpDIV, 7, 0, V32, 0xFFFFFFFF},                   // masked
		{OpREM, 7, 0, V64, 7},                            // rem-by-zero -> dividend
		{OpREM, 43, 6, V64, 1},                           //
		{OpDIV, 0x80000000, ^uint64(0), V32, 0x80000000}, // overflow -> dividend
		{OpLUI, 0, 3, V64, 3 << LUIShift},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b, c.v); got != c.want {
			t.Errorf("%s(%#x,%#x,%s) = %#x, want %#x", OpName(c.op), c.a, c.b, c.v, got, c.want)
		}
	}
}

func TestEvalALUSignedDivision(t *testing.T) {
	if got := EvalALU(OpDIV, uint64(0xFFFFFFFFFFFFFFF9), 3, V64); got != uint64(0xFFFFFFFFFFFFFFFE) {
		t.Errorf("-7/3 = %d, want -2", int64(got))
	}
	if got := EvalALU(OpREM, uint64(0xFFFFFFFFFFFFFFF9), 3, V64); int64(got) != -1 {
		t.Errorf("-7%%3 = %d, want -1", int64(got))
	}
}

func TestMULHMatchesBigInt(t *testing.T) {
	f := func(a, b int64) bool {
		got := EvalALU(OpMULH, uint64(a), uint64(b), V64)
		prod := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		want := uint64(prod.Rsh(prod, 64).Int64())
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	f32 := func(a, b int32) bool {
		got := EvalALU(OpMULH, uint64(uint32(a)), uint64(uint32(b)), V32)
		want := uint64(uint32((int64(a) * int64(b)) >> 32))
		return got == want
	}
	if err := quick.Check(f32, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBranchTaken(t *testing.T) {
	neg := uint64(0xFFFFFFFF) // -1 in V32
	cases := []struct {
		op   Op
		a, b uint64
		v    Variant
		want bool
	}{
		{OpBEQ, 5, 5, V64, true},
		{OpBEQ, 5, 6, V64, false},
		{OpBNE, 5, 6, V64, true},
		{OpBLT, neg, 0, V32, true}, // -1 < 0 signed
		{OpBLTU, neg, 0, V32, false},
		{OpBGE, 0, neg, V32, true},
		{OpBGEU, neg, 0, V32, true},
		{OpBLT, 1 << 63, 0, V64, true},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b, c.v); got != c.want {
			t.Errorf("%s(%#x,%#x,%s) = %v, want %v", OpName(c.op), c.a, c.b, c.v, got, c.want)
		}
	}
	if BranchTaken(OpADD, 1, 1, V64) {
		t.Error("non-branch opcode should never be taken")
	}
}

func TestEvalALUWidthClosure(t *testing.T) {
	// Property: results always fit in the variant width.
	f := func(a, b uint64, opIdx uint8, which bool) bool {
		v := V64
		if which {
			v = V32
		}
		ops := AllOps(v)
		op := ops[int(opIdx)%len(ops)]
		return EvalALU(op, a&v.Mask(), b&v.Mask(), v)&^v.Mask() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestDisasm(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpNOP}, "nop"},
		{Inst{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpADDI, Rd: 1, Rs1: 0, Imm: -7}, "addi r1, r0, -7"},
		{Inst{Op: OpLW, Rd: 2, Rs1: 14, Imm: 8}, "lw r2, 8(r14)"},
		{Inst{Op: OpSW, Rd: 2, Rs1: 14, Imm: 8}, "sw r2, 8(r14)"},
		{Inst{Op: OpBEQ, Rd: 1, Rs1: 2, Imm: -3}, "beq r1, r2, -3"},
		{Inst{Op: OpJAL, Rd: 13, Imm: 40}, "jal r13, 40"},
	}
	for _, c := range cases {
		if got := Disasm(c.in); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := DisasmWord(0xFF<<24, V64); !strings.Contains(got, "illegal") {
		t.Errorf("illegal disasm = %q", got)
	}
	if got := Disasm(Decode(Encode(Inst{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3})|40<<rdShift, V32)); !strings.Contains(got, "illegal register") {
		t.Errorf("illegal reg disasm = %q", got)
	}
}

func TestOpNameAndFormat(t *testing.T) {
	if OpName(OpADD) != "add" {
		t.Errorf("OpName(OpADD) = %q", OpName(OpADD))
	}
	if OpName(Op(0xEE)) != "op_ee" {
		t.Errorf("OpName undefined = %q", OpName(Op(0xEE)))
	}
	if OpFormat(Op(0xEE)) != FmtNone {
		t.Error("undefined opcode should report FmtNone")
	}
}

func TestMemBytes(t *testing.T) {
	want := map[Op]uint64{
		OpLB: 1, OpLBU: 1, OpSB: 1,
		OpLH: 2, OpLHU: 2, OpSH: 2,
		OpLW: 4, OpLWU: 4, OpSW: 4,
		OpLD: 8, OpSD: 8,
		OpADD: 0, OpBEQ: 0,
	}
	for op, n := range want {
		if got := MemBytes(op); got != n {
			t.Errorf("MemBytes(%s) = %d, want %d", OpName(op), got, n)
		}
	}
}

func TestAllOpsCounts(t *testing.T) {
	n64, n32 := len(AllOps(V64)), len(AllOps(V32))
	if n64 <= n32 {
		t.Errorf("V64 should define more opcodes: %d vs %d", n64, n32)
	}
	if n32 != n64-3 { // LD, SD, LWU are V64-only
		t.Errorf("expected exactly 3 V64-only opcodes, got %d vs %d", n64, n32)
	}
	for _, op := range AllOps(V32) {
		if !ValidOp(op, V64) {
			t.Errorf("op %s valid on V32 but not V64", OpName(op))
		}
	}
}

func TestClassifyCoverage(t *testing.T) {
	want := map[Op]Class{
		OpNOP: ClassNop, OpHALT: ClassHalt,
		OpADD: ClassALU, OpADDI: ClassALU, OpLUI: ClassALU,
		OpMUL: ClassMul, OpDIV: ClassMul, OpREM: ClassMul, OpMULH: ClassMul,
		OpLW: ClassLoad, OpLD: ClassLoad, OpLBU: ClassLoad,
		OpSW: ClassStore, OpSB: ClassStore,
		OpBEQ: ClassBranch, OpBGEU: ClassBranch,
		OpJAL: ClassJump, OpJALR: ClassJump,
	}
	for op, cl := range want {
		if got := Classify(Inst{Op: op}); got != cl {
			t.Errorf("Classify(%s) = %v, want %v", OpName(op), got, cl)
		}
	}
}
