package isa

import "math/bits"

// EvalALU computes the result of a register-register or register-immediate
// ALU operation under the given variant's width. Operands a and b are
// register values already masked to the variant width; for immediate forms
// the caller passes the (sign- or zero-extended) immediate as b. The result
// is masked to the variant width.
//
// Division follows the RISC-V convention: division by zero yields all ones
// (DIV) or the dividend (REM) and signed overflow (MinInt / -1) yields the
// dividend (DIV) or zero (REM); neither traps. This keeps arithmetic total,
// so data corruption in divisor registers manifests as wrong values (DCR)
// rather than machine-specific traps.
func EvalALU(op Op, a, b uint64, v Variant) uint64 {
	w := uint(v.Width())
	mask := v.Mask()
	shiftAmt := func(x uint64) uint { return uint(x) & (w - 1) }
	var r uint64
	switch op {
	case OpADD, OpADDI:
		r = a + b
	case OpSUB:
		r = a - b
	case OpAND, OpANDI:
		r = a & b
	case OpOR, OpORI:
		r = a | b
	case OpXOR, OpXORI:
		r = a ^ b
	case OpSLL, OpSLLI:
		r = a << shiftAmt(b)
	case OpSRL, OpSRLI:
		r = (a & mask) >> shiftAmt(b)
	case OpSRA, OpSRAI:
		r = uint64(v.SignExtend(a&mask) >> shiftAmt(b))
	case OpMUL:
		r = a * b
	case OpMULH:
		if v == V32 {
			r = uint64(uint32(int64(v.SignExtend(a))*int64(v.SignExtend(b))>>32) & 0xFFFFFFFF)
		} else {
			hi, _ := bits.Mul64(uint64(v.SignExtend(a)), uint64(v.SignExtend(b)))
			// Adjust for signed high multiply.
			if v.SignExtend(a) < 0 {
				hi -= b
			}
			if v.SignExtend(b) < 0 {
				hi -= a
			}
			r = hi
		}
	case OpDIV:
		sa, sb := v.SignExtend(a&mask), v.SignExtend(b&mask)
		switch {
		case sb == 0:
			r = mask
		case sa == minInt(v) && sb == -1:
			r = a
		default:
			r = uint64(sa / sb)
		}
	case OpREM:
		sa, sb := v.SignExtend(a&mask), v.SignExtend(b&mask)
		switch {
		case sb == 0:
			r = a
		case sa == minInt(v) && sb == -1:
			r = 0
		default:
			r = uint64(sa % sb)
		}
	case OpSLT, OpSLTI:
		if v.SignExtend(a&mask) < v.SignExtend(b&mask) {
			r = 1
		}
	case OpSLTU:
		if a&mask < b&mask {
			r = 1
		}
	case OpLUI:
		r = b << LUIShift
	default:
		r = 0
	}
	return r & mask
}

func minInt(v Variant) int64 {
	if v == V32 {
		return int64(int32(-1 << 31))
	}
	return -1 << 63
}

// BranchTaken evaluates a conditional branch with operand values a and b
// (masked register values) under variant v.
func BranchTaken(op Op, a, b uint64, v Variant) bool {
	a &= v.Mask()
	b &= v.Mask()
	switch op {
	case OpBEQ:
		return a == b
	case OpBNE:
		return a != b
	case OpBLT:
		return v.SignExtend(a) < v.SignExtend(b)
	case OpBGE:
		return v.SignExtend(a) >= v.SignExtend(b)
	case OpBLTU:
		return a < b
	case OpBGEU:
		return a >= b
	}
	return false
}
