// Package isa defines the AVG instruction set: a synthetic fixed-width
// 32-bit RISC encoding used by the AVGI reproduction as a stand-in for the
// paper's Armv8 and Armv7 ISAs.
//
// Two variants exist. V64 models a 64-bit ISA with 32 architectural
// registers (the paper's Armv8 / Cortex-A72 setting) and V32 models a 32-bit
// ISA with 16 architectural registers (the paper's Armv7 / Cortex-A15
// setting). Both share the same 32-bit instruction word layout, so the same
// workloads assemble for either variant as long as they stay within the
// common register subset.
//
// The encoding deliberately leaves large parts of the opcode and register
// spaces undefined: single-bit flips in instruction words can therefore
// produce valid-but-different instructions (IRP), ISA-invalid operand fields
// (UNO), or changed-but-valid operands (OFS), which is exactly the behaviour
// the paper's IMM taxonomy classifies.
package isa

import "fmt"

// Variant selects the data-path width and architectural register count.
type Variant uint8

const (
	// V64 is the 64-bit variant: 64-bit registers, 32 architectural
	// registers. It stands in for the paper's Armv8 ISA.
	V64 Variant = iota
	// V32 is the 32-bit variant: 32-bit registers, 16 architectural
	// registers. It stands in for the paper's Armv7 ISA.
	V32
)

// String returns the conventional name of the variant.
func (v Variant) String() string {
	if v == V32 {
		return "AVG32"
	}
	return "AVG64"
}

// Width returns the register width in bits.
func (v Variant) Width() int {
	if v == V32 {
		return 32
	}
	return 64
}

// NumArchRegs returns the number of architectural registers. Register 0 is
// hard-wired to zero in both variants.
func (v Variant) NumArchRegs() int {
	if v == V32 {
		return 16
	}
	return 32
}

// Mask returns the value mask for the variant's register width.
func (v Variant) Mask() uint64 {
	if v == V32 {
		return 0xFFFFFFFF
	}
	return ^uint64(0)
}

// SignExtend sign-extends an already-masked register value to 64 bits
// according to the variant width, for signed comparisons.
func (v Variant) SignExtend(x uint64) int64 {
	if v == V32 {
		return int64(int32(uint32(x)))
	}
	return int64(x)
}

// WordBytes returns the natural word size in bytes (8 for V64, 4 for V32).
func (v Variant) WordBytes() uint64 {
	if v == V32 {
		return 4
	}
	return 8
}

// Op identifies an operation. The numeric value is the 8-bit opcode field.
type Op uint8

// Opcode assignments. The values are spread across the 8-bit space so that
// single-bit corruption of an opcode lands on an undefined encoding with
// realistic probability.
const (
	OpInvalid Op = 0x00

	OpNOP  Op = 0x01
	OpHALT Op = 0x02

	// Register-register ALU (format R).
	OpADD  Op = 0x10
	OpSUB  Op = 0x11
	OpAND  Op = 0x12
	OpOR   Op = 0x13
	OpXOR  Op = 0x14
	OpSLL  Op = 0x15
	OpSRL  Op = 0x16
	OpSRA  Op = 0x17
	OpMUL  Op = 0x18
	OpMULH Op = 0x19
	OpDIV  Op = 0x1A
	OpREM  Op = 0x1B
	OpSLT  Op = 0x1C
	OpSLTU Op = 0x1D

	// Register-immediate ALU (format I). Logical immediates are
	// zero-extended; ADDI/SLTI immediates are sign-extended.
	OpADDI Op = 0x20
	OpANDI Op = 0x21
	OpORI  Op = 0x22
	OpXORI Op = 0x23
	OpSLLI Op = 0x24
	OpSRLI Op = 0x25
	OpSRAI Op = 0x26
	OpSLTI Op = 0x27
	// OpLUI loads imm18<<14 into rd (format U).
	OpLUI Op = 0x28

	// Loads (format L: rd, rs1, imm12; address = rs1+imm).
	OpLB  Op = 0x30
	OpLBU Op = 0x31
	OpLH  Op = 0x32
	OpLHU Op = 0x33
	OpLW  Op = 0x34
	OpLWU Op = 0x35 // V64 only
	OpLD  Op = 0x36 // V64 only

	// Stores (format S: value reg in the rd slot, base in rs1, imm12).
	OpSB Op = 0x38
	OpSH Op = 0x39
	OpSW Op = 0x3A
	OpSD Op = 0x3B // V64 only

	// Branches (format B: rsA in the rd slot, rsB in rs1, imm12 word
	// offset relative to the branch).
	OpBEQ  Op = 0x40
	OpBNE  Op = 0x41
	OpBLT  Op = 0x42
	OpBGE  Op = 0x43
	OpBLTU Op = 0x44
	OpBGEU Op = 0x45

	// Jumps. JAL is format J (rd, imm18 word offset); JALR is format I
	// (rd, rs1, imm12 byte offset).
	OpJAL  Op = 0x48
	OpJALR Op = 0x49
)

// Format describes which encoding fields an opcode uses.
type Format uint8

const (
	FmtNone Format = iota // opcode only (NOP, HALT)
	FmtR                  // rd, rs1, rs2
	FmtI                  // rd, rs1, imm12
	FmtL                  // rd, rs1, imm12 (load)
	FmtS                  // rv (rd slot), rs1, imm12 (store)
	FmtB                  // ra (rd slot), rb (rs1 slot), imm12
	FmtJ                  // rd, imm18
	FmtU                  // rd, imm18
)

type opInfo struct {
	name   string
	format Format
	v64    bool // valid on V64
	v32    bool // valid on V32
}

// opTable is indexed directly by the 8-bit opcode; entries with an empty
// name are undefined encodings. An array (not a map) because Decode is the
// hottest function in the simulator.
var opTable [256]opInfo

var opDefs = map[Op]opInfo{
	OpNOP:  {"nop", FmtNone, true, true},
	OpHALT: {"halt", FmtNone, true, true},
	OpADD:  {"add", FmtR, true, true},
	OpSUB:  {"sub", FmtR, true, true},
	OpAND:  {"and", FmtR, true, true},
	OpOR:   {"or", FmtR, true, true},
	OpXOR:  {"xor", FmtR, true, true},
	OpSLL:  {"sll", FmtR, true, true},
	OpSRL:  {"srl", FmtR, true, true},
	OpSRA:  {"sra", FmtR, true, true},
	OpMUL:  {"mul", FmtR, true, true},
	OpMULH: {"mulh", FmtR, true, true},
	OpDIV:  {"div", FmtR, true, true},
	OpREM:  {"rem", FmtR, true, true},
	OpSLT:  {"slt", FmtR, true, true},
	OpSLTU: {"sltu", FmtR, true, true},
	OpADDI: {"addi", FmtI, true, true},
	OpANDI: {"andi", FmtI, true, true},
	OpORI:  {"ori", FmtI, true, true},
	OpXORI: {"xori", FmtI, true, true},
	OpSLLI: {"slli", FmtI, true, true},
	OpSRLI: {"srli", FmtI, true, true},
	OpSRAI: {"srai", FmtI, true, true},
	OpSLTI: {"slti", FmtI, true, true},
	OpLUI:  {"lui", FmtU, true, true},
	OpLB:   {"lb", FmtL, true, true},
	OpLBU:  {"lbu", FmtL, true, true},
	OpLH:   {"lh", FmtL, true, true},
	OpLHU:  {"lhu", FmtL, true, true},
	OpLW:   {"lw", FmtL, true, true},
	OpLWU:  {"lwu", FmtL, true, false},
	OpLD:   {"ld", FmtL, true, false},
	OpSB:   {"sb", FmtS, true, true},
	OpSH:   {"sh", FmtS, true, true},
	OpSW:   {"sw", FmtS, true, true},
	OpSD:   {"sd", FmtS, true, false},
	OpBEQ:  {"beq", FmtB, true, true},
	OpBNE:  {"bne", FmtB, true, true},
	OpBLT:  {"blt", FmtB, true, true},
	OpBGE:  {"bge", FmtB, true, true},
	OpBLTU: {"bltu", FmtB, true, true},
	OpBGEU: {"bgeu", FmtB, true, true},
	OpJAL:  {"jal", FmtJ, true, true},
	OpJALR: {"jalr", FmtI, true, true},
}

func init() {
	for op, info := range opDefs {
		opTable[op] = info
	}
}

// ValidOp reports whether op is a defined opcode under the given variant.
func ValidOp(op Op, v Variant) bool {
	info := &opTable[op]
	if info.name == "" {
		return false
	}
	if v == V32 {
		return info.v32
	}
	return info.v64
}

// OpName returns the mnemonic for op, or "op_XX" for undefined opcodes.
func OpName(op Op) string {
	if info := &opTable[op]; info.name != "" {
		return info.name
	}
	return fmt.Sprintf("op_%02x", uint8(op))
}

// OpFormat returns the encoding format of op. Undefined opcodes report
// FmtNone.
func OpFormat(op Op) Format {
	return opTable[op].format
}

// Encoding field boundaries within the 32-bit instruction word.
const (
	opcodeShift = 24
	rdShift     = 18
	rs1Shift    = 12
	rs2Shift    = 6
	regMask     = 0x3F
	imm12Mask   = 0xFFF
	imm18Mask   = 0x3FFFF

	// LUIShift is the left shift applied to the LUI immediate.
	LUIShift = 14
)

// Encode assembles the fields of inst into a 32-bit instruction word. It
// panics on out-of-range fields; the assembler validates inputs, so a panic
// indicates a programming error in a workload definition.
func Encode(inst Inst) uint32 {
	w := uint32(inst.Op) << opcodeShift
	switch OpFormat(inst.Op) {
	case FmtNone:
	case FmtR:
		checkReg(inst.Rd)
		checkReg(inst.Rs1)
		checkReg(inst.Rs2)
		w |= uint32(inst.Rd)<<rdShift | uint32(inst.Rs1)<<rs1Shift | uint32(inst.Rs2)<<rs2Shift
	case FmtI, FmtL:
		checkReg(inst.Rd)
		checkReg(inst.Rs1)
		checkImm12(inst.Imm, inst.Op)
		w |= uint32(inst.Rd)<<rdShift | uint32(inst.Rs1)<<rs1Shift | uint32(inst.Imm)&imm12Mask
	case FmtS:
		checkReg(inst.Rd) // value register travels in the rd slot
		checkReg(inst.Rs1)
		checkImm12(inst.Imm, inst.Op)
		w |= uint32(inst.Rd)<<rdShift | uint32(inst.Rs1)<<rs1Shift | uint32(inst.Imm)&imm12Mask
	case FmtB:
		checkReg(inst.Rd)
		checkReg(inst.Rs1)
		checkImm12(inst.Imm, inst.Op)
		w |= uint32(inst.Rd)<<rdShift | uint32(inst.Rs1)<<rs1Shift | uint32(inst.Imm)&imm12Mask
	case FmtJ, FmtU:
		checkReg(inst.Rd)
		if inst.Imm < -(1<<17) || inst.Imm >= 1<<17 {
			panic(fmt.Sprintf("isa: imm18 out of range for %s: %d", OpName(inst.Op), inst.Imm))
		}
		w |= uint32(inst.Rd)<<rdShift | uint32(inst.Imm)&imm18Mask
	}
	return w
}

func checkReg(r uint8) {
	if r > regMask {
		panic(fmt.Sprintf("isa: register field out of range: %d", r))
	}
}

func checkImm12(imm int32, op Op) {
	if zeroExtImm(op) {
		if imm < 0 || imm > imm12Mask {
			panic(fmt.Sprintf("isa: unsigned imm12 out of range for %s: %d", OpName(op), imm))
		}
		return
	}
	if imm < -2048 || imm > 2047 {
		panic(fmt.Sprintf("isa: signed imm12 out of range for %s: %d", OpName(op), imm))
	}
}

// zeroExtImm reports whether op's 12-bit immediate is zero-extended (logical
// and shift immediates) rather than sign-extended.
func zeroExtImm(op Op) bool {
	switch op {
	case OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI:
		return true
	}
	return false
}

// Inst is a decoded instruction. For undefined encodings, Op retains the raw
// opcode field and Illegal explains why the encoding is invalid.
type Inst struct {
	Op  Op
	Rd  uint8 // destination (R/I/L/J/U); value register (S); first source (B)
	Rs1 uint8 // first source; base register for loads/stores; second source (B)
	Rs2 uint8 // second source (R)
	Imm int32 // sign- or zero-extended immediate (12- or 18-bit)

	// Illegal is the reason the encoding is undefined under the decoding
	// variant, or IllegalNone for a well-formed instruction.
	Illegal IllegalKind
}

// IllegalKind categorises why a decoded encoding is undefined.
type IllegalKind uint8

const (
	// IllegalNone marks a well-formed instruction.
	IllegalNone IllegalKind = iota
	// IllegalOpcode marks an opcode undefined under the variant.
	IllegalOpcode
	// IllegalReg marks a register operand field outside the variant's
	// architectural register file (the UNO condition).
	IllegalReg
)

// Decode splits a 32-bit instruction word into fields under the rules of
// variant v. Decoding never fails: undefined encodings come back with a
// non-zero Illegal kind so the pipeline can raise a precise
// undefined-instruction exception at commit, which is how corrupted
// encodings become architecturally visible to the IMM classifier.
func Decode(word uint32, v Variant) Inst {
	inst := Inst{Op: Op(word >> opcodeShift)}
	if !ValidOp(inst.Op, v) {
		inst.Illegal = IllegalOpcode
		// Still extract the generic fields so the classifier and
		// disassembler can inspect them.
		inst.Rd = uint8(word>>rdShift) & regMask
		inst.Rs1 = uint8(word>>rs1Shift) & regMask
		inst.Rs2 = uint8(word>>rs2Shift) & regMask
		inst.Imm = int32(word & imm12Mask)
		return inst
	}
	n := uint8(v.NumArchRegs())
	switch OpFormat(inst.Op) {
	case FmtNone:
	case FmtR:
		inst.Rd = uint8(word>>rdShift) & regMask
		inst.Rs1 = uint8(word>>rs1Shift) & regMask
		inst.Rs2 = uint8(word>>rs2Shift) & regMask
		if inst.Rd >= n || inst.Rs1 >= n || inst.Rs2 >= n {
			inst.Illegal = IllegalReg
		}
	case FmtI, FmtL, FmtS, FmtB:
		inst.Rd = uint8(word>>rdShift) & regMask
		inst.Rs1 = uint8(word>>rs1Shift) & regMask
		inst.Imm = decodeImm12(word, inst.Op)
		if inst.Rd >= n || inst.Rs1 >= n {
			inst.Illegal = IllegalReg
		}
	case FmtJ, FmtU:
		inst.Rd = uint8(word>>rdShift) & regMask
		imm := int32(word & imm18Mask)
		if imm&(1<<17) != 0 {
			imm -= 1 << 18
		}
		inst.Imm = imm
		if inst.Rd >= n {
			inst.Illegal = IllegalReg
		}
	}
	return inst
}

func decodeImm12(word uint32, op Op) int32 {
	imm := int32(word & imm12Mask)
	if !zeroExtImm(op) && imm&(1<<11) != 0 {
		imm -= 1 << 12
	}
	return imm
}

// Class groups opcodes by pipeline behaviour.
type Class uint8

const (
	ClassNop Class = iota
	ClassALU
	ClassMul // multi-cycle integer ops (MUL/MULH/DIV/REM)
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassHalt
	ClassIllegal
)

// Classify returns the pipeline class of a decoded instruction.
func Classify(inst Inst) Class {
	if inst.Illegal != IllegalNone {
		return ClassIllegal
	}
	switch inst.Op {
	case OpNOP:
		return ClassNop
	case OpHALT:
		return ClassHalt
	case OpMUL, OpMULH, OpDIV, OpREM:
		return ClassMul
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLWU, OpLD:
		return ClassLoad
	case OpSB, OpSH, OpSW, OpSD:
		return ClassStore
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return ClassBranch
	case OpJAL, OpJALR:
		return ClassJump
	default:
		return ClassALU
	}
}

// MemBytes returns the access size in bytes for a load or store opcode, and
// zero for anything else.
func MemBytes(op Op) uint64 {
	switch op {
	case OpLB, OpLBU, OpSB:
		return 1
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLW, OpLWU, OpSW:
		return 4
	case OpLD, OpSD:
		return 8
	}
	return 0
}

// AllOps returns every defined opcode, in ascending numeric order, for the
// given variant. Useful for exhaustive tests.
func AllOps(v Variant) []Op {
	ops := make([]Op, 0, len(opTable))
	for op := Op(0); ; op++ {
		if ValidOp(op, v) {
			ops = append(ops, op)
		}
		if op == 0xFF {
			break
		}
	}
	return ops
}
