package isa

import "fmt"

// Disasm renders a decoded instruction as assembly text. Undefined
// encodings render with a marker so corrupted instruction words remain
// legible in fault-injection logs.
func Disasm(inst Inst) string {
	if inst.Illegal == IllegalOpcode {
		return fmt.Sprintf(".illegal opcode=0x%02x", uint8(inst.Op))
	}
	name := OpName(inst.Op)
	suffix := ""
	if inst.Illegal == IllegalReg {
		suffix = " ; illegal register operand"
	}
	switch OpFormat(inst.Op) {
	case FmtNone:
		return name
	case FmtR:
		return fmt.Sprintf("%s r%d, r%d, r%d%s", name, inst.Rd, inst.Rs1, inst.Rs2, suffix)
	case FmtI:
		return fmt.Sprintf("%s r%d, r%d, %d%s", name, inst.Rd, inst.Rs1, inst.Imm, suffix)
	case FmtL:
		return fmt.Sprintf("%s r%d, %d(r%d)%s", name, inst.Rd, inst.Imm, inst.Rs1, suffix)
	case FmtS:
		return fmt.Sprintf("%s r%d, %d(r%d)%s", name, inst.Rd, inst.Imm, inst.Rs1, suffix)
	case FmtB:
		return fmt.Sprintf("%s r%d, r%d, %d%s", name, inst.Rd, inst.Rs1, inst.Imm, suffix)
	case FmtJ:
		return fmt.Sprintf("%s r%d, %d%s", name, inst.Rd, inst.Imm, suffix)
	case FmtU:
		return fmt.Sprintf("%s r%d, 0x%x%s", name, inst.Rd, uint32(inst.Imm)&imm18Mask, suffix)
	}
	return name
}

// DisasmWord decodes and renders a raw instruction word under variant v.
func DisasmWord(word uint32, v Variant) string {
	return Disasm(Decode(word, v))
}
