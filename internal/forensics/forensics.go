// Package forensics attributes the fate of every injected fault. Where the
// campaign layer labels a fault's end-to-end outcome (Masked / SDC / Crash
// and its IMM class), forensics explains the *mechanism*: the fault probe
// (internal/cpu, internal/mem) observes each consumption and erasure of
// the corrupted state during the faulty run, and Attribute folds those
// observations into one of six causes — turning the paper's low ROB/LQ/SQ
// AVF numbers from statistics into explanations.
package forensics

import (
	"encoding/json"
	"fmt"

	"avgi/internal/cpu"
	"avgi/internal/trace"
)

// Cause is the attributed fate of one injected fault.
type Cause uint8

const (
	// CauseOverwritten: every corrupted site was erased by fresh data
	// (register writeback, queue-slot allocation, line refill, TLB
	// refill) before anything consumed it.
	CauseOverwritten Cause = iota
	// CauseSquashed: the corrupted in-flight state was discarded by a
	// misprediction squash before it could reach commit.
	CauseSquashed
	// CauseEvictedClean: the corrupted line was dropped by a replacement
	// while clean, so the corruption never left the cache.
	CauseEvictedClean
	// CauseLogicallyMasked: corrupted state *was* consumed (operand read,
	// tag compare, TLB hit, dirty writeback) yet the architectural
	// commit stream never deviated — the program logically masked it.
	CauseLogicallyMasked
	// CauseNeverRead: corrupted state was still resident and untouched
	// when the observation window ended.
	CauseNeverRead
	// CauseVisible: the fault became architecturally visible — a commit
	// deviation or a pre-software crash.
	CauseVisible
	// CauseNeverLatched: the flip landed entirely on free/invalid entries
	// and nothing ever latched it — masked at the injection site itself,
	// before any reachable state was corrupted. (New causes append here so
	// older shard labels keep their decoding.)
	CauseNeverLatched

	// NumCauses is the number of attribution causes.
	NumCauses = int(CauseNeverLatched) + 1
)

var causeNames = [NumCauses]string{
	"overwritten-before-read",
	"squashed-in-flight",
	"evicted-clean",
	"read-but-logically-masked",
	"never-read-in-window",
	"architecturally-visible",
	"never-latched",
}

// Causes lists all attribution causes in declaration order.
var Causes = [NumCauses]Cause{
	CauseOverwritten, CauseSquashed, CauseEvictedClean,
	CauseLogicallyMasked, CauseNeverRead, CauseVisible, CauseNeverLatched,
}

// String returns the cause's stable label (used as the JSON encoding and
// the `cause` metric label).
func (c Cause) String() string {
	if int(c) < NumCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// MarshalJSON encodes the cause as its label.
func (c Cause) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON decodes a cause label; unknown labels are an error so a
// journal written by a newer build fails loudly instead of silently
// shifting counts.
func (c *Cause) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range causeNames {
		if n == s {
			*c = Cause(i)
			return nil
		}
	}
	return fmt.Errorf("forensics: unknown cause %q", s)
}

// Divergence is the first-divergence capture of a visible fault.
type Divergence struct {
	// CycleDelta is the distance in cycles from injection to the first
	// mismatching commit (or the crash).
	CycleDelta uint64 `json:"cycle_delta"`
	// PC is the program counter of the first mismatching commit.
	PC uint64 `json:"pc,omitempty"`
	// CommitIndex is the position of that commit in the golden trace.
	CommitIndex int `json:"commit_index,omitempty"`
	// Kind names how the run diverged: "record", "cycle", "extra"
	// (commit-stream deviations), "crash" (pre-software crash with no
	// prior deviation) or "escape" (corrupted output through a dirty
	// line, no trace deviation at all).
	Kind string `json:"kind"`
}

// Record is the per-fault attribution persisted alongside the campaign
// Result (a backward-compatible journal extension: absent in old shards).
type Record struct {
	Cause Cause `json:"cause"`
	// Latency is the cycle distance from injection to the event that
	// decided the attribution: the first consumption for logically-masked
	// faults, the last erasure for masked-by-erasure faults, the first
	// divergence for visible ones. Zero when nothing was observed.
	Latency uint64 `json:"latency,omitempty"`
	// Reads counts consumptions of live corrupted state in the window.
	Reads uint64 `json:"reads,omitempty"`
	// Sites and LiveSites describe the fault's footprint: watched array
	// entries, and how many held reachable state at injection.
	Sites     int `json:"sites,omitempty"`
	LiveSites int `json:"live_sites,omitempty"`
	// Divergence is set for visible faults that deviated in the commit
	// stream (crash-only visibility carries just Latency and Kind).
	Divergence *Divergence `json:"divergence,omitempty"`
}

// Outcome is what the campaign layer knows about the faulty run's ending —
// the architectural verdict the probe facts are attributed against.
type Outcome struct {
	// Visible means the run manifested: a commit-stream deviation or a
	// pre-software crash.
	Visible bool
	// ManifestLatency is the campaign's injection-to-manifestation cycle
	// distance (0 when not visible).
	ManifestLatency uint64
	// Dev is the first commit-stream deviation, if any.
	Dev trace.Deviation
	// Escaped marks an ESC fault: corruption reached the program output
	// through a dirty line without ever deviating the commit stream.
	Escaped bool
}

// devKindNames maps trace deviation kinds to Divergence.Kind labels.
var devKindNames = map[trace.DeviationKind]string{
	trace.DevRecord: "record",
	trace.DevCycle:  "cycle",
	trace.DevExtra:  "extra",
}

// Attribute folds one faulty run's probe observations and architectural
// outcome into a cause attribution.
//
// Decision order: visibility wins outright; then any consumption of live
// corrupted state means the program read it and masked it logically; then
// a fully erased footprint is attributed to the most specific erasure
// mechanism (squash — the state was discarded in flight — over clean
// eviction — it was dropped by replacement — over plain overwrite); a flip
// that landed entirely on free/invalid entries never latched at all; and
// what remains is corruption still resident when the window closed.
func Attribute(f cpu.ProbeFacts, out Outcome) Record {
	rec := Record{Sites: f.Sites, LiveSites: f.LiveSites, Reads: f.Reads}
	switch {
	case out.Visible:
		rec.Cause = CauseVisible
		rec.Latency = out.ManifestLatency
		if kind, ok := devKindNames[out.Dev.Kind]; ok {
			d := &Divergence{
				PC:          out.Dev.Faulty.PC,
				CommitIndex: out.Dev.Index,
				Kind:        kind,
			}
			if out.Dev.Cycle > f.InjectCycle {
				d.CycleDelta = out.Dev.Cycle - f.InjectCycle
			}
			rec.Divergence = d
		} else {
			kind := "crash"
			if out.Escaped {
				kind = "escape"
			}
			rec.Divergence = &Divergence{CycleDelta: out.ManifestLatency, Kind: kind}
		}
	case f.Reads > 0:
		rec.Cause = CauseLogicallyMasked
		rec.Latency = sinceInjection(f.FirstRead, f.InjectCycle)
	case f.LiveSites > 0 && f.Killed >= f.LiveSites:
		rec.Latency = sinceInjection(f.LastKill, f.InjectCycle)
		switch {
		case f.Squashes > 0:
			rec.Cause = CauseSquashed
		case f.EvictsClean > 0:
			rec.Cause = CauseEvictedClean
		default:
			rec.Cause = CauseOverwritten
		}
	case f.LiveSites == 0:
		// The flip landed entirely on free/invalid entries: nothing ever
		// latched, masked at the injection site itself. Distinct from
		// CauseOverwritten — no erasure event ever fired, and the
		// early-exit oracle firing here means "never corrupted", not
		// "corruption erased".
		rec.Cause = CauseNeverLatched
	default:
		rec.Cause = CauseNeverRead
	}
	return rec
}

// Converged is the early-exit termination predicate: the probe facts prove
// the fault can no longer affect the run. Nothing ever consumed a live
// corrupted site (so no deviation has been seeded into the pipeline), and
// every site that latched the flip has since been erased by golden-valued
// writes — the machine state is bit-identical to the fault-free run, so
// the remaining window cannot produce anything the full window would not.
// LiveSites == 0 (a never-latched flip) converges trivially. This mirrors
// the in-core check the probe runs each cycle (cpu.FaultProbe.Converged).
func Converged(f cpu.ProbeFacts) bool {
	return f.Reads == 0 && f.Killed >= f.LiveSites
}

func sinceInjection(cycle, inject uint64) uint64 {
	if cycle > inject {
		return cycle - inject
	}
	return 0
}
