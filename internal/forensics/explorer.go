package forensics

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"avgi/internal/fault"
)

// maxSamples bounds the per-entry divergence sample list. Samples are kept
// by smallest fault ID, so the retained set is deterministic regardless of
// worker interleaving or resume order.
const maxSamples = 8

// Sample is one retained divergence example.
type Sample struct {
	FaultID    int    `json:"fault_id"`
	Bit        uint64 `json:"bit"`
	Cycle      uint64 `json:"cycle"`
	CycleDelta uint64 `json:"cycle_delta"`
	PC         uint64 `json:"pc,omitempty"`
	Kind       string `json:"kind"`
}

// Entry is the aggregated forensics of one (structure, workload, mode)
// campaign.
type Entry struct {
	Structure string `json:"structure"`
	Workload  string `json:"workload"`
	Mode      string `json:"mode"`

	// Faults counts every attributed-or-not fault folded in; Sampled
	// counts the ones carrying an attribution (equal under -forensics-
	// sample 1).
	Faults  uint64 `json:"faults"`
	Sampled uint64 `json:"sampled"`

	// Causes maps cause label to count; the labels are the Cause strings.
	Causes map[string]uint64 `json:"causes"`

	// Divergence-latency aggregate over visible sampled faults.
	DivCount uint64 `json:"divergence_count"`
	DivSum   uint64 `json:"divergence_cycles_sum"`
	DivMin   uint64 `json:"divergence_cycles_min,omitempty"`
	DivMax   uint64 `json:"divergence_cycles_max,omitempty"`

	// Samples holds up to maxSamples example divergences (smallest fault
	// IDs).
	Samples []Sample `json:"samples,omitempty"`
}

type entryKey struct{ structure, workload, mode string }

// Explorer aggregates per-fault attributions across a whole study: the
// masking-source breakdown behind the report tables and the observer's
// /forensics.json endpoint. Safe for concurrent use.
type Explorer struct {
	mu      sync.Mutex
	entries map[entryKey]*entry
}

type entry struct {
	faults  uint64
	sampled uint64
	causes  [NumCauses]uint64

	divCount, divSum, divMin, divMax uint64

	samples []Sample // sorted by FaultID, capped at maxSamples
}

// NewExplorer builds an empty explorer.
func NewExplorer() *Explorer {
	return &Explorer{entries: make(map[entryKey]*entry)}
}

// Record folds one fault into the breakdown. rec may be nil for faults the
// sampler skipped — they count toward the campaign total but carry no
// attribution.
func (e *Explorer) Record(structure, workload, mode string, f fault.Fault, rec *Record) {
	if e == nil {
		return
	}
	k := entryKey{structure, workload, mode}
	e.mu.Lock()
	defer e.mu.Unlock()
	en := e.entries[k]
	if en == nil {
		en = &entry{}
		e.entries[k] = en
	}
	en.faults++
	if rec == nil {
		return
	}
	en.sampled++
	if int(rec.Cause) < NumCauses {
		en.causes[rec.Cause]++
	}
	if d := rec.Divergence; d != nil {
		en.divCount++
		en.divSum += d.CycleDelta
		if en.divCount == 1 || d.CycleDelta < en.divMin {
			en.divMin = d.CycleDelta
		}
		if d.CycleDelta > en.divMax {
			en.divMax = d.CycleDelta
		}
		en.addSample(Sample{
			FaultID:    f.ID,
			Bit:        f.Bit,
			Cycle:      f.Cycle,
			CycleDelta: d.CycleDelta,
			PC:         d.PC,
			Kind:       d.Kind,
		})
	}
}

// addSample keeps the maxSamples divergences with the smallest fault IDs,
// sorted — a deterministic retained set under any arrival order.
func (en *entry) addSample(s Sample) {
	i := sort.Search(len(en.samples), func(i int) bool {
		return en.samples[i].FaultID >= s.FaultID
	})
	if i < len(en.samples) && en.samples[i].FaultID == s.FaultID {
		return // resumed fault already folded in
	}
	if len(en.samples) == maxSamples {
		if i == maxSamples {
			return
		}
		en.samples = en.samples[:maxSamples-1]
	}
	en.samples = append(en.samples, Sample{})
	copy(en.samples[i+1:], en.samples[i:])
	en.samples[i] = s
}

// Snapshot returns the aggregated entries sorted by (structure, workload,
// mode).
func (e *Explorer) Snapshot() []Entry {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]entryKey, 0, len(e.entries))
	for k := range e.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.structure != b.structure {
			return a.structure < b.structure
		}
		if a.workload != b.workload {
			return a.workload < b.workload
		}
		return a.mode < b.mode
	})
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		en := e.entries[k]
		ce := Entry{
			Structure: k.structure,
			Workload:  k.workload,
			Mode:      k.mode,
			Faults:    en.faults,
			Sampled:   en.sampled,
			Causes:    make(map[string]uint64, NumCauses),
			DivCount:  en.divCount,
			DivSum:    en.divSum,
			DivMin:    en.divMin,
			DivMax:    en.divMax,
			Samples:   append([]Sample(nil), en.samples...),
		}
		for _, c := range Causes {
			if n := en.causes[c]; n > 0 {
				ce.Causes[c.String()] = n
			}
		}
		out = append(out, ce)
	}
	return out
}

// WriteJSON writes the breakdown as one JSON document — the body of the
// observer's /forensics.json endpoint.
func (e *Explorer) WriteJSON(w io.Writer) error {
	doc := struct {
		Causes  []string `json:"causes"`
		Entries []Entry  `json:"entries"`
	}{Entries: e.Snapshot()}
	for _, c := range Causes {
		doc.Causes = append(doc.Causes, c.String())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
