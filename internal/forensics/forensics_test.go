package forensics

import (
	"encoding/json"
	"testing"

	"avgi/internal/cpu"
	"avgi/internal/trace"
)

func TestCauseJSONRoundTrip(t *testing.T) {
	for _, c := range Causes {
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		var back Cause
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if back != c {
			t.Errorf("round trip %v -> %s -> %v", c, b, back)
		}
	}
	var c Cause
	if err := json.Unmarshal([]byte(`"no-such-cause"`), &c); err == nil {
		t.Error("unknown cause label accepted")
	}
}

func TestAttribute(t *testing.T) {
	cases := []struct {
		name string
		f    cpu.ProbeFacts
		out  Outcome
		want Cause
	}{
		{
			name: "visible wins over everything",
			f:    cpu.ProbeFacts{Sites: 1, LiveSites: 1, Reads: 3, Killed: 1},
			out: Outcome{Visible: true, ManifestLatency: 42,
				Dev: trace.Deviation{Kind: trace.DevRecord, Cycle: 142, Index: 7,
					Faulty: trace.Record{PC: 0x100}}},
			want: CauseVisible,
		},
		{
			name: "any read of live state is logical masking",
			f:    cpu.ProbeFacts{Sites: 1, LiveSites: 1, Reads: 2, FirstRead: 130, InjectCycle: 100},
			want: CauseLogicallyMasked,
		},
		{
			name: "fully erased, plain overwrite",
			f:    cpu.ProbeFacts{Sites: 1, LiveSites: 1, Killed: 1, Overwrites: 1, LastKill: 150, InjectCycle: 100},
			want: CauseOverwritten,
		},
		{
			name: "squash outranks overwrite",
			f:    cpu.ProbeFacts{Sites: 1, LiveSites: 1, Killed: 1, Overwrites: 1, Squashes: 1},
			want: CauseSquashed,
		},
		{
			name: "clean eviction outranks overwrite",
			f:    cpu.ProbeFacts{Sites: 2, LiveSites: 2, Killed: 2, Overwrites: 2, EvictsClean: 1},
			want: CauseEvictedClean,
		},
		{
			// Distinct from CauseOverwritten: nothing was erased because
			// nothing ever latched — no kill event fired at all.
			name: "flip on free entries never latched",
			f:    cpu.ProbeFacts{Sites: 1, LiveSites: 0},
			want: CauseNeverLatched,
		},
		{
			name: "still resident at window end",
			f:    cpu.ProbeFacts{Sites: 1, LiveSites: 1},
			want: CauseNeverRead,
		},
		{
			name: "partially erased is still resident",
			f:    cpu.ProbeFacts{Sites: 2, LiveSites: 2, Killed: 1, Overwrites: 1},
			want: CauseNeverRead,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := Attribute(tc.f, tc.out)
			if rec.Cause != tc.want {
				t.Fatalf("cause %v, want %v", rec.Cause, tc.want)
			}
		})
	}
}

func TestAttributeDivergenceCapture(t *testing.T) {
	rec := Attribute(cpu.ProbeFacts{InjectCycle: 100, Sites: 1, LiveSites: 1},
		Outcome{Visible: true, ManifestLatency: 42,
			Dev: trace.Deviation{Kind: trace.DevRecord, Cycle: 142, Index: 7,
				Faulty: trace.Record{PC: 0x2a0}}})
	d := rec.Divergence
	if d == nil {
		t.Fatal("no divergence on a deviating visible fault")
	}
	if d.Kind != "record" || d.CycleDelta != 42 || d.PC != 0x2a0 || d.CommitIndex != 7 {
		t.Errorf("divergence %+v", *d)
	}

	// Crash with no deviation: latency-only capture.
	rec = Attribute(cpu.ProbeFacts{InjectCycle: 100},
		Outcome{Visible: true, ManifestLatency: 9})
	if d := rec.Divergence; d == nil || d.Kind != "crash" || d.CycleDelta != 9 {
		t.Errorf("crash divergence %+v", rec.Divergence)
	}

	// ESC: escape through a dirty line.
	rec = Attribute(cpu.ProbeFacts{},
		Outcome{Visible: true, Escaped: true, ManifestLatency: 500})
	if d := rec.Divergence; d == nil || d.Kind != "escape" {
		t.Errorf("escape divergence %+v", rec.Divergence)
	}
}

func TestAttributeLatencies(t *testing.T) {
	rec := Attribute(cpu.ProbeFacts{InjectCycle: 100, LiveSites: 1, Reads: 1, FirstRead: 130}, Outcome{})
	if rec.Latency != 30 {
		t.Errorf("logical-mask latency %d, want 30", rec.Latency)
	}
	rec = Attribute(cpu.ProbeFacts{InjectCycle: 100, LiveSites: 1, Killed: 1, Overwrites: 1, LastKill: 170}, Outcome{})
	if rec.Latency != 70 {
		t.Errorf("erasure latency %d, want 70", rec.Latency)
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	in := Record{Cause: CauseVisible, Latency: 12, Reads: 3, Sites: 2, LiveSites: 1,
		Divergence: &Divergence{CycleDelta: 12, PC: 0x40, CommitIndex: 5, Kind: "record"}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Record
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cause != in.Cause || out.Latency != in.Latency || *out.Divergence != *in.Divergence {
		t.Errorf("round trip: %+v vs %+v", out, in)
	}
}

// TestConverged pins the early-exit predicate against the attribution it
// implies: a converged fact set must attribute to an erasure cause (or
// never-latched), never to logical masking or residency, and any read or
// surviving site must block convergence.
func TestConverged(t *testing.T) {
	cases := []struct {
		name string
		f    cpu.ProbeFacts
		want bool
	}{
		{"never latched converges at arm", cpu.ProbeFacts{Sites: 1, LiveSites: 0}, true},
		{"fully erased unread converges", cpu.ProbeFacts{Sites: 2, LiveSites: 2, Killed: 2, Overwrites: 2}, true},
		{"any read blocks", cpu.ProbeFacts{Sites: 1, LiveSites: 1, Killed: 1, Reads: 1}, false},
		{"surviving site blocks", cpu.ProbeFacts{Sites: 2, LiveSites: 2, Killed: 1}, false},
		{"untouched resident blocks", cpu.ProbeFacts{Sites: 1, LiveSites: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Converged(tc.f); got != tc.want {
				t.Fatalf("Converged(%+v) = %v, want %v", tc.f, got, tc.want)
			}
			if !tc.want {
				return
			}
			// A converged, non-visible fault must attribute to an erasure
			// mechanism or never-latched — the causes the oracle may end a
			// clean window on.
			switch c := Attribute(tc.f, Outcome{}).Cause; c {
			case CauseOverwritten, CauseSquashed, CauseEvictedClean, CauseNeverLatched:
			default:
				t.Fatalf("converged facts attributed to %v", c)
			}
		})
	}
}
