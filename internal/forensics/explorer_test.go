package forensics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"avgi/internal/fault"
)

func visRecord(delta uint64) *Record {
	return &Record{Cause: CauseVisible,
		Divergence: &Divergence{CycleDelta: delta, Kind: "record"}}
}

func TestExplorerAggregation(t *testing.T) {
	ex := NewExplorer()
	ex.Record("RF", "sha", "exhaustive", fault.Fault{ID: 0}, &Record{Cause: CauseOverwritten})
	ex.Record("RF", "sha", "exhaustive", fault.Fault{ID: 1}, visRecord(10))
	ex.Record("RF", "sha", "exhaustive", fault.Fault{ID: 2}, nil) // sampler skipped
	ex.Record("ROB", "sha", "exhaustive", fault.Fault{ID: 0}, &Record{Cause: CauseSquashed})

	s := ex.Snapshot()
	if len(s) != 2 {
		t.Fatalf("%d entries", len(s))
	}
	rf := s[0]
	if rf.Structure != "RF" || rf.Faults != 3 || rf.Sampled != 2 {
		t.Errorf("RF entry %+v", rf)
	}
	if rf.Causes["overwritten-before-read"] != 1 || rf.Causes["architecturally-visible"] != 1 {
		t.Errorf("RF causes %v", rf.Causes)
	}
	if rf.DivCount != 1 || rf.DivSum != 10 || len(rf.Samples) != 1 {
		t.Errorf("RF divergence %+v", rf)
	}
	if s[1].Structure != "ROB" {
		t.Errorf("entries not sorted: %s second", s[1].Structure)
	}
}

// The retained divergence samples must not depend on worker arrival order:
// any permutation of the same faults yields the same snapshot.
func TestExplorerDeterministicUnderArrivalOrder(t *testing.T) {
	build := func(perm []int) []Entry {
		ex := NewExplorer()
		for _, id := range perm {
			ex.Record("RF", "sha", "avgi", fault.Fault{ID: id, Bit: uint64(id)},
				visRecord(uint64(100+id)))
		}
		return ex.Snapshot()
	}
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = i
	}
	want := build(ids)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(40)
		got := build(perm)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("snapshot differs under permutation %v", perm)
		}
	}
	if n := len(want[0].Samples); n != maxSamples {
		t.Fatalf("%d samples retained, want %d", n, maxSamples)
	}
	for i, s := range want[0].Samples {
		if s.FaultID != i {
			t.Errorf("sample %d has fault ID %d; want the smallest IDs", i, s.FaultID)
		}
	}
}

// A resumed fault folded in twice must not duplicate its sample.
func TestExplorerSampleDedup(t *testing.T) {
	ex := NewExplorer()
	ex.Record("RF", "sha", "avgi", fault.Fault{ID: 3}, visRecord(5))
	ex.Record("RF", "sha", "avgi", fault.Fault{ID: 3}, visRecord(5))
	s := ex.Snapshot()
	if len(s[0].Samples) != 1 {
		t.Errorf("%d samples after duplicate record", len(s[0].Samples))
	}
}

func TestExplorerWriteJSON(t *testing.T) {
	ex := NewExplorer()
	ex.Record("LQ", "crc32", "hvf", fault.Fault{ID: 9}, &Record{Cause: CauseNeverRead})
	var buf bytes.Buffer
	if err := ex.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Causes  []string `json:"causes"`
		Entries []Entry  `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.Causes) != NumCauses {
		t.Errorf("%d causes listed", len(doc.Causes))
	}
	if len(doc.Entries) != 1 || doc.Entries[0].Causes["never-read-in-window"] != 1 {
		t.Errorf("entries %+v", doc.Entries)
	}
}

func TestExplorerNilSafe(t *testing.T) {
	var ex *Explorer
	ex.Record("RF", "sha", "avgi", fault.Fault{}, nil) // must not panic
	if s := ex.Snapshot(); s != nil {
		t.Errorf("nil explorer snapshot %v", s)
	}
}
