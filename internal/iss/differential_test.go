package iss

import (
	"bytes"
	"math/rand"
	"testing"

	"avgi/internal/asm"
	"avgi/internal/cpu"
	"avgi/internal/isa"
)

// genProgram builds a random but well-formed program: seeded registers, a
// straight-line body of ALU/memory operations over a scratch buffer, and
// an epilogue dumping every architectural register to the output region.
// No control flow, so termination is guaranteed by construction.
func genProgram(rng *rand.Rand, v isa.Variant) *asm.Program {
	b := asm.NewBuilder("fuzz", v)
	scratch := b.Reserve("scratch", 256)

	nregs := uint8(13) // r1..r12 participate
	for r := uint8(1); r < nregs; r++ {
		b.Li(r, rng.Uint64())
	}
	b.Li(15, scratch)

	aluOps := []isa.Op{
		isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpMUL, isa.OpMULH,
		isa.OpDIV, isa.OpREM, isa.OpSLT, isa.OpSLTU,
	}
	immOps := []isa.Op{
		isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
		isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpSLTI,
	}
	reg := func() uint8 { return uint8(rng.Intn(int(nregs)-1) + 1) }
	for i := 0; i < 120; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			b.R(aluOps[rng.Intn(len(aluOps))], reg(), reg(), reg())
		case 2:
			op := immOps[rng.Intn(len(immOps))]
			imm := int32(rng.Intn(2048))
			if op == isa.OpADDI || op == isa.OpSLTI {
				imm -= 1024
			}
			b.I(op, reg(), reg(), imm)
		case 3:
			// Aligned store into the scratch buffer.
			off := int32(rng.Intn(31)) * 8
			b.StoreW(reg(), 15, off)
		case 4:
			off := int32(rng.Intn(31)) * 8
			b.LoadW(reg(), 15, off)
		}
	}

	// Dump the registers as the program output.
	b.Li(14, asm.DefaultOutBase) // repurpose SP: no calls, no stack
	wb := int32(v.WordBytes())
	for r := uint8(1); r < nregs; r++ {
		b.StoreW(r, 14, int32(r-1)*wb)
	}
	b.Li(1, asm.DefaultOutLenAddr)
	b.Li(2, uint64(int32(nregs-1)*wb))
	b.StoreW(2, 1, 0)
	b.Halt()
	return b.MustAssemble()
}

// TestDifferentialRandomPrograms runs randomly generated programs on both
// the atomic ISS and the detailed out-of-order pipeline and requires
// byte-identical outputs and identical retirement counts — a differential
// check that the two independent implementations agree on the
// architecture.
func TestDifferentialRandomPrograms(t *testing.T) {
	for _, v := range []isa.Variant{isa.V64, isa.V32} {
		cfg := cpu.ConfigA72()
		if v == isa.V32 {
			cfg = cpu.ConfigA15()
		}
		rng := rand.New(rand.NewSource(20260705))
		n := 25
		if testing.Short() {
			n = 5
		}
		for i := 0; i < n; i++ {
			p := genProgram(rng, v)
			res, err := New(p).Run(10_000_000)
			if err != nil {
				t.Fatalf("%s #%d: iss error: %v", v, i, err)
			}
			m := cpu.New(cfg, p)
			pipe := m.Run(cpu.RunOptions{MaxCycles: 5_000_000})
			if pipe.Status != cpu.StatusHalted {
				t.Fatalf("%s #%d: pipeline %v/%v", v, i, pipe.Status, pipe.Crash)
			}
			if res.Insts != pipe.Commits {
				t.Fatalf("%s #%d: retirement mismatch iss=%d pipe=%d", v, i, res.Insts, pipe.Commits)
			}
			if !bytes.Equal(res.Output, pipe.Output) {
				t.Fatalf("%s #%d: outputs differ", v, i)
			}
		}
	}
}
