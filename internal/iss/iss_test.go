package iss

import (
	"bytes"
	"strings"
	"testing"

	"avgi/internal/asm"
	"avgi/internal/cpu"
	"avgi/internal/isa"
	"avgi/internal/prog"
)

func build(t *testing.T, v isa.Variant, f func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder("t", v)
	f(b)
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBasicExecution(t *testing.T) {
	p := build(t, isa.V64, func(b *asm.Builder) {
		b.Li(1, 6)
		b.Li(2, 7)
		b.Mul(3, 1, 2)
		b.Halt()
	})
	m := New(p)
	res, err := m.Run(1000)
	if err != nil || !res.Halted {
		t.Fatal(err, res)
	}
	if m.Reg(3) != 42 {
		t.Errorf("r3 = %d", m.Reg(3))
	}
	if res.Insts != 4 {
		t.Errorf("insts = %d", res.Insts)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	p := build(t, isa.V32, func(b *asm.Builder) {
		b.Addi(0, 0, 99)
		b.Halt()
	})
	m := New(p)
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0) != 0 {
		t.Error("r0 mutated")
	}
}

func TestMemoryAndBranches(t *testing.T) {
	p := build(t, isa.V64, func(b *asm.Builder) {
		arr := b.DataWords("a", []uint64{5, 10, 15})
		b.Li(1, arr)
		b.Li(2, 0) // sum
		b.Li(3, 0) // i
		b.Label("loop")
		b.Slli(4, 3, 3)
		b.Add(4, 4, 1)
		b.LoadW(5, 4, 0)
		b.Add(2, 2, 5)
		b.Addi(3, 3, 1)
		b.Slti(6, 3, 3)
		b.Bne(6, 0, "loop")
		b.Halt()
	})
	m := New(p)
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Reg(2) != 30 {
		t.Errorf("sum = %d", m.Reg(2))
	}
}

func TestErrors(t *testing.T) {
	misaligned := build(t, isa.V64, func(b *asm.Builder) {
		b.Li(1, 0x8001)
		b.Lw(2, 1, 0)
		b.Halt()
	})
	if _, err := New(misaligned).Run(100); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Errorf("misaligned: %v", err)
	}
	oob := build(t, isa.V64, func(b *asm.Builder) {
		b.Li(1, 2<<20)
		b.Lw(2, 1, 0)
		b.Halt()
	})
	if _, err := New(oob).Run(100); err == nil || !strings.Contains(err.Error(), "beyond RAM") {
		t.Errorf("oob: %v", err)
	}
	p := build(t, isa.V64, func(b *asm.Builder) { b.Nop() })
	p.Text = append(p.Text, 0xEE<<24)
	if _, err := New(p).Run(100); err == nil || !strings.Contains(err.Error(), "illegal") {
		t.Errorf("illegal: %v", err)
	}
	spin := build(t, isa.V64, func(b *asm.Builder) {
		b.Label("s")
		b.Jump("s")
	})
	if _, err := New(spin).Run(50); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("budget: %v", err)
	}
}

// TestCrossValidationAgainstPipeline is the load-bearing test of this
// package: for every workload on both variants, the atomic ISS and the
// detailed out-of-order pipeline must retire exactly the same number of
// instructions and produce byte-identical output.
func TestCrossValidationAgainstPipeline(t *testing.T) {
	for _, w := range prog.All() {
		for _, v := range []isa.Variant{isa.V64, isa.V32} {
			w, v := w, v
			t.Run(w.Name+"/"+v.String(), func(t *testing.T) {
				t.Parallel()
				p := w.Build(v)
				res, err := New(p).Run(50_000_000)
				if err != nil {
					t.Fatal(err)
				}
				cfg := cpu.ConfigA72()
				if v == isa.V32 {
					cfg = cpu.ConfigA15()
				}
				m := cpu.New(cfg, w.Build(v))
				pipe := m.Run(cpu.RunOptions{MaxCycles: 20_000_000})
				if pipe.Status != cpu.StatusHalted {
					t.Fatalf("pipeline: %v/%v", pipe.Status, pipe.Crash)
				}
				if res.Insts != pipe.Commits {
					t.Errorf("instruction counts differ: iss %d vs pipeline %d", res.Insts, pipe.Commits)
				}
				if !bytes.Equal(res.Output, pipe.Output) {
					t.Error("outputs differ between ISS and pipeline")
				}
				if !bytes.Equal(res.Output, w.Ref(v)) {
					t.Error("ISS output differs from the reference model")
				}
			})
		}
	}
}
