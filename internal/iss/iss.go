// Package iss is a functional (atomic) instruction-set simulator for the
// AVG ISA: no pipeline, no caches, no timing — one instruction per step
// over flat memory. It plays the role gem5's atomic simple CPU plays next
// to the detailed O3 model: an independent, much simpler executable
// definition of the architecture used to cross-validate the detailed
// machine. The test suite requires, for every workload on both variants,
// that the ISS and the out-of-order pipeline retire the same instruction
// count and produce byte-identical output.
package iss

import (
	"fmt"

	"avgi/internal/asm"
	"avgi/internal/isa"
)

// Result summarises a functional run.
type Result struct {
	// Halted reports a clean HALT.
	Halted bool
	// Insts is the number of executed (retired) instructions, including
	// the final HALT.
	Insts uint64
	// Output is the program output (the output region up to the length
	// word), nil unless halted.
	Output []byte
	// PC is the final program counter.
	PC uint64
}

// Machine is the functional simulator state.
type Machine struct {
	v    isa.Variant
	prog *asm.Program

	pc   uint64
	regs [64]uint64
	mem  []byte

	insts  uint64
	halted bool
}

// New loads a program image.
func New(p *asm.Program) *Machine {
	m := &Machine{v: p.Variant, prog: p, pc: p.TextBase, mem: make([]byte, p.RAMSize)}
	for i, w := range p.Text {
		off := p.TextBase + uint64(i)*4
		m.mem[off] = byte(w)
		m.mem[off+1] = byte(w >> 8)
		m.mem[off+2] = byte(w >> 16)
		m.mem[off+3] = byte(w >> 24)
	}
	copy(m.mem[p.DataBase:], p.Data)
	m.regs[asm.SP] = (p.RAMSize - 16) & p.Variant.Mask()
	return m
}

// Reg returns an architectural register value.
func (m *Machine) Reg(r uint8) uint64 {
	if r == 0 {
		return 0
	}
	return m.regs[r] & m.v.Mask()
}

func (m *Machine) setReg(r uint8, val uint64) {
	if r != 0 {
		m.regs[r] = val & m.v.Mask()
	}
}

// Run executes until HALT, an architectural error, or the instruction
// budget is exhausted.
func (m *Machine) Run(maxInsts uint64) (Result, error) {
	if err := m.RunN(maxInsts - m.insts); err != nil {
		return Result{Insts: m.insts, PC: m.pc}, err
	}
	res := Result{Halted: m.halted, Insts: m.insts, PC: m.pc}
	if !m.halted {
		return res, fmt.Errorf("iss: instruction budget exhausted at pc %#x", m.pc)
	}
	res.Output = m.output()
	return res, nil
}

// RunN executes up to n further instructions, stopping early at HALT. It
// is the positioning primitive for architecture-level fault injection.
func (m *Machine) RunN(n uint64) error {
	for i := uint64(0); i < n && !m.halted; i++ {
		if err := m.step(); err != nil {
			return err
		}
	}
	return nil
}

// Halted reports a clean HALT.
func (m *Machine) Halted() bool { return m.halted }

// Insts returns the retired instruction count so far.
func (m *Machine) Insts() uint64 { return m.insts }

// Output returns the program output of a halted machine.
func (m *Machine) Output() []byte {
	if !m.halted {
		return nil
	}
	return m.output()
}

// FlipReg flips one bit of an architectural register — the
// architecture-level fault model that software/ISA-level SFI tools start
// from. Flips of the hard-wired zero register are ignored.
func (m *Machine) FlipReg(r uint8, bit uint) {
	if r == 0 {
		return
	}
	m.regs[r] = (m.regs[r] ^ 1<<bit) & m.v.Mask()
}

func (m *Machine) output() []byte {
	n := m.load(m.prog.OutLenAddr, m.v.WordBytes())
	if m.prog.OutBase >= uint64(len(m.mem)) {
		return nil
	}
	if max := uint64(len(m.mem)) - m.prog.OutBase; n > max {
		n = max
	}
	return append([]byte(nil), m.mem[m.prog.OutBase:m.prog.OutBase+n]...)
}

func (m *Machine) load(addr, n uint64) uint64 {
	var v uint64
	for i := n; i > 0; i-- {
		v = v<<8 | uint64(m.mem[addr+i-1])
	}
	return v
}

func (m *Machine) store(addr, n, val uint64) {
	for i := uint64(0); i < n; i++ {
		m.mem[addr+i] = byte(val >> (8 * i))
	}
}

func (m *Machine) checkAccess(addr, n uint64) error {
	if addr%n != 0 {
		return fmt.Errorf("iss: misaligned %d-byte access at %#x (pc %#x)", n, addr, m.pc)
	}
	if addr+n > uint64(len(m.mem)) {
		return fmt.Errorf("iss: access beyond RAM at %#x (pc %#x)", addr, m.pc)
	}
	return nil
}

// extend applies the opcode's sign/zero extension to a raw loaded value.
func extend(op isa.Op, raw uint64, v isa.Variant) uint64 {
	switch op {
	case isa.OpLB:
		raw = uint64(int64(int8(raw)))
	case isa.OpLH:
		raw = uint64(int64(int16(raw)))
	case isa.OpLW:
		raw = uint64(int64(int32(raw)))
	}
	return raw & v.Mask()
}

// step executes one instruction.
func (m *Machine) step() error {
	if m.pc%4 != 0 || m.pc+4 > uint64(len(m.mem)) {
		return fmt.Errorf("iss: bad fetch pc %#x", m.pc)
	}
	word := uint32(m.load(m.pc, 4))
	in := isa.Decode(word, m.v)
	if in.Illegal != isa.IllegalNone {
		return fmt.Errorf("iss: illegal instruction %#08x at pc %#x", word, m.pc)
	}
	m.insts++
	next := m.pc + 4
	switch isa.Classify(in) {
	case isa.ClassNop:
	case isa.ClassHalt:
		m.halted = true
	case isa.ClassALU, isa.ClassMul:
		var a, b uint64
		switch isa.OpFormat(in.Op) {
		case isa.FmtR:
			a, b = m.Reg(in.Rs1), m.Reg(in.Rs2)
		case isa.FmtI:
			a, b = m.Reg(in.Rs1), uint64(int64(in.Imm))
		case isa.FmtU:
			b = uint64(int64(in.Imm))
		}
		m.setReg(in.Rd, isa.EvalALU(in.Op, a, b, m.v))
	case isa.ClassLoad:
		addr := (m.Reg(in.Rs1) + uint64(int64(in.Imm))) & m.v.Mask()
		n := isa.MemBytes(in.Op)
		if err := m.checkAccess(addr, n); err != nil {
			return err
		}
		raw := m.load(addr, n)
		m.setReg(in.Rd, extend(in.Op, raw, m.v))
	case isa.ClassStore:
		addr := (m.Reg(in.Rs1) + uint64(int64(in.Imm))) & m.v.Mask()
		n := isa.MemBytes(in.Op)
		if err := m.checkAccess(addr, n); err != nil {
			return err
		}
		m.store(addr, n, m.Reg(in.Rd))
	case isa.ClassBranch:
		if isa.BranchTaken(in.Op, m.Reg(in.Rd), m.Reg(in.Rs1), m.v) {
			next = m.pc + uint64(int64(in.Imm))*4
		}
	case isa.ClassJump:
		link := (m.pc + 4) & m.v.Mask()
		if in.Op == isa.OpJAL {
			next = m.pc + uint64(int64(in.Imm))*4
		} else {
			next = (m.Reg(in.Rs1) + uint64(int64(in.Imm))) & m.v.Mask() &^ uint64(3)
		}
		m.setReg(in.Rd, link)
	}
	m.pc = next
	return nil
}
