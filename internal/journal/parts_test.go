package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSyncPolicyParse(t *testing.T) {
	for _, p := range []SyncPolicy{SyncChunk, SyncEvery, SyncOff} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseSyncPolicy(%q) = (%v, %v), want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParseSyncPolicy("always"); err == nil {
		t.Error("ParseSyncPolicy must reject unknown spellings")
	}
}

// TestSeverAllPointsUnderPolicies is the satellite crash-safety sweep: a
// shard written under fsync policy `every` and `chunk` is severed at EVERY
// byte offset, and each torn shard must resume to a study identical to the
// untorn one. Three invariants per sever point: Load never returns a
// record that differs from the true result, the resume writer heals the
// shard completely, and a header tear degrades to a clean from-scratch
// shard rather than an error.
func TestSeverAllPointsUnderPolicies(t *testing.T) {
	results := testResults()
	for _, policy := range []SyncPolicy{SyncEvery, SyncChunk} {
		t.Run(policy.String(), func(t *testing.T) {
			j, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key, bind := testKey(), testBinding(4)
			w, err := j.Writer(key, bind, false)
			if err != nil {
				t.Fatal(err)
			}
			w.SetSyncPolicy(policy)
			for i, r := range results {
				w.Append(i, r)
				if policy == SyncChunk {
					w.Sync() // the ChunkSink cadence
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			path := j.shardPath(key, bind)
			whole, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			for cut := 1; cut < len(whole); cut++ {
				if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				prior, err := j.Load(key, bind)
				if err != nil && err != ErrMismatch {
					t.Fatalf("cut=%d: Load error %v", cut, err)
				}
				for i, got := range prior {
					if !reflect.DeepEqual(got, results[i]) {
						t.Fatalf("cut=%d: surviving record %d corrupted", cut, i)
					}
				}
				// Resume and re-append everything the tear lost.
				rw, err := j.Writer(key, bind, true)
				if err != nil {
					t.Fatalf("cut=%d: resume writer: %v", cut, err)
				}
				rw.SetSyncPolicy(policy)
				for i, r := range results {
					if _, ok := prior[i]; !ok {
						rw.Append(i, r)
					}
				}
				if err := rw.Close(); err != nil {
					t.Fatalf("cut=%d: close: %v", cut, err)
				}
				healed, err := j.Load(key, bind)
				if err != nil {
					t.Fatalf("cut=%d: healed shard: %v", cut, err)
				}
				if len(healed) != len(results) {
					t.Fatalf("cut=%d: healed shard has %d records, want %d", cut, len(healed), len(results))
				}
				for i, want := range results {
					if !reflect.DeepEqual(healed[i], want) {
						t.Fatalf("cut=%d: record %d differs after heal", cut, i)
					}
				}
			}
		})
	}
}

// TestSyncOffStillFlushesOnClose pins the SyncOff contract: no fsync, but
// Close still flushes the userspace buffer, so a cleanly-exited process
// loses nothing.
func TestSyncOffStillFlushesOnClose(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, bind := testKey(), testBinding(4)
	w, err := j.Writer(key, bind, false)
	if err != nil {
		t.Fatal(err)
	}
	w.SetSyncPolicy(SyncOff)
	for i, r := range testResults() {
		w.Append(i, r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	prior, err := j.Load(key, bind)
	if err != nil || len(prior) != 4 {
		t.Fatalf("SyncOff shard after clean Close: %d records (%v), want 4", len(prior), err)
	}
}

// TestPartWriterLoadAll drives the distributed resume view: results spread
// over the canonical shard and two worker parts must merge by index, with
// duplicate indices resolved deterministically and damaged parts skipped
// rather than poisoning the campaign.
func TestPartWriterLoadAll(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, bind := testKey(), testBinding(4)
	results := testResults()

	// Canonical shard holds record 0 (a prior partial merge).
	w, err := j.Writer(key, bind, false)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(0, results[0])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Worker a holds 1 and a duplicate of 0; worker b holds 2 and 3.
	wa, err := j.PartWriter(key, bind, "worker-a", false)
	if err != nil {
		t.Fatal(err)
	}
	wa.Append(1, results[1])
	wa.Append(0, results[0])
	if err := wa.Close(); err != nil {
		t.Fatal(err)
	}
	wb, err := j.PartWriter(key, bind, "worker-b", false)
	if err != nil {
		t.Fatal(err)
	}
	wb.Append(2, results[2])
	wb.Append(3, results[3])
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}

	all, err := j.LoadAll(key, bind)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("LoadAll merged %d records, want 4", len(all))
	}
	for i, want := range results {
		if !reflect.DeepEqual(all[i], want) {
			t.Errorf("merged record %d: got %+v, want %+v", i, all[i], want)
		}
	}

	// Plain Load must NOT see the parts — the canonical shard alone is the
	// service cache's source of truth until a merge lands.
	only, err := j.Load(key, bind)
	if err != nil || len(only) != 1 {
		t.Fatalf("Load leaked part records: %d (%v), want 1", len(only), err)
	}

	// A header-damaged part is skipped, not fatal.
	pp := j.partPath(key, bind, "worker-b")
	data, err := os.ReadFile(pp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pp, bytes.Replace(data, []byte(`"seed":7`), []byte(`"seed":9`), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	all, err = j.LoadAll(key, bind)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("LoadAll with a damaged part merged %d records, want 2", len(all))
	}
}

// TestMergeByteIdentity is the tentpole guarantee in miniature: however the
// campaign's records were sharded across workers, Merge writes a canonical
// shard whose bytes are identical, and the parts are gone afterwards.
func TestMergeByteIdentity(t *testing.T) {
	results := testResults()
	shard := func(t *testing.T, split func(j *Journal, key Key, bind Binding)) []byte {
		t.Helper()
		j, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		key, bind := testKey(), testBinding(4)
		split(j, key, bind)
		all, err := j.LoadAll(key, bind)
		if err != nil || len(all) != 4 {
			t.Fatalf("LoadAll before merge: %d records (%v)", len(all), err)
		}
		if err := j.Merge(key, bind, all); err != nil {
			t.Fatal(err)
		}
		if parts, _ := j.parts(key, bind); len(parts) != 0 {
			t.Fatalf("%d part shards survived the merge", len(parts))
		}
		got, err := j.Load(key, bind)
		if err != nil || len(got) != 4 {
			t.Fatalf("merged shard: %d records (%v)", len(got), err)
		}
		data, err := os.ReadFile(j.shardPath(key, bind))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	appendAll := func(t *testing.T, w *Writer, idx ...int) {
		t.Helper()
		for _, i := range idx {
			w.Append(i, results[i])
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// One process, no parts at all.
	single := shard(t, func(j *Journal, key Key, bind Binding) {
		w, err := j.Writer(key, bind, false)
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, w, 0, 1, 2, 3)
	})
	// Two workers, out-of-order appends, a duplicated index.
	double := shard(t, func(j *Journal, key Key, bind Binding) {
		wa, err := j.PartWriter(key, bind, "a", false)
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, wa, 3, 0)
		wb, err := j.PartWriter(key, bind, "b", false)
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, wb, 2, 1, 3)
	})
	// Four workers, one record each.
	quad := shard(t, func(j *Journal, key Key, bind Binding) {
		for i, owner := range []string{"w0", "w1", "w2", "w3"} {
			w, err := j.PartWriter(key, bind, owner, false)
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, w, i)
		}
	})
	if !bytes.Equal(single, double) {
		t.Error("2-worker merged shard bytes differ from single-process shard")
	}
	if !bytes.Equal(single, quad) {
		t.Error("4-worker merged shard bytes differ from single-process shard")
	}
}

// TestPartWriterResume verifies a restarted worker resumes its own part
// shard: the torn tail is truncated, prior records survive.
func TestPartWriterResume(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, bind := testKey(), testBinding(4)
	results := testResults()
	w, err := j.PartWriter(key, bind, "node1", false)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(0, results[0])
	w.Append(1, results[1])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	pp := j.partPath(key, bind, "node1")
	data, err := os.ReadFile(pp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pp, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	w, err = j.PartWriter(key, bind, "node1", true)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1, results[1])
	w.Append(2, results[2])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	all, err := j.LoadAll(key, bind)
	if err != nil || len(all) != 3 {
		t.Fatalf("resumed part: %d records (%v), want 3", len(all), err)
	}
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(all[i], results[i]) {
			t.Errorf("record %d corrupted across part resume", i)
		}
	}
}

// TestShardIDStable pins that ShardID is journal-relative (two journals at
// different roots agree on it) and slash-normalized.
func TestShardIDStable(t *testing.T) {
	j1, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, bind := testKey(), testBinding(4)
	a, b := j1.ShardID(key, bind), j2.ShardID(key, bind)
	if a == "" || a != b {
		t.Fatalf("ShardID not root-independent: %q vs %q", a, b)
	}
	if filepath.IsAbs(a) {
		t.Fatalf("ShardID %q is absolute", a)
	}
	other := testBinding(4)
	other.Seed = 99
	if j1.ShardID(key, other) == a {
		t.Error("different bindings must yield different ShardIDs")
	}
}
