// Package journal is the durable result store of the fault-injection
// campaigns: completed per-fault Results are appended as NDJSON shards, one
// shard per single-flight campaign key (structure, workload, mode, ERT
// window), so a study killed mid-run — a crash, an OOM kill, a pre-empted
// node — can be restarted and resume from the first missing fault instead
// of re-simulating days of work. Fault injectors must tolerate faults:
// this is the same per-injection checkpoint/journal discipline CHAOS and
// InjectV apply at the paper's 726k-injection scale.
//
// Shard layout (see docs/ROBUSTNESS.md):
//
//   - line 1: a checksummed header binding the shard to its exact campaign
//     configuration — machine config name and ISA variant, a hash of the
//     assembled program image, the sampling seed, and the fault count. A
//     shard whose binding does not match is never resumed from: results
//     from a different seed or a different build would silently corrupt
//     the campaign's statistics.
//   - following lines: one record per completed fault, {"i": index,
//     "r": Result}, in completion order (not index order — concurrent
//     chunks interleave).
//
// Appends are buffered and fsynced per completed chunk (the campaign
// runner's ChunkSink granularity), bounding loss on a crash to the chunks
// still in flight. Loading tolerates a torn final line — the signature of
// a crash mid-append — by discarding everything from the first undecodable
// line onward.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"avgi/internal/asm"
	"avgi/internal/campaign"
)

// Key identifies one campaign shard — the same quadruple the study's
// single-flight scheduler deduplicates executions on.
type Key struct {
	Structure string `json:"structure"`
	Workload  string `json:"workload"`
	Mode      string `json:"mode"`
	Window    uint64 `json:"window"`
}

// Binding pins a shard to the exact campaign configuration that produced
// it. Every field participates in the header checksum; a mismatch on any
// of them makes Load refuse the shard.
type Binding struct {
	Machine     string `json:"machine"`
	Variant     string `json:"variant"`
	ProgramHash uint64 `json:"program_hash"`
	Seed        int64  `json:"seed"`
	Faults      int    `json:"faults"`
}

const (
	headerMagic   = "avgi-journal"
	headerVersion = 1
)

// header is the first NDJSON line of every shard.
type header struct {
	Magic    string  `json:"magic"`
	Version  int     `json:"version"`
	Key      Key     `json:"key"`
	Binding  Binding `json:"binding"`
	Checksum uint64  `json:"checksum"`
}

// checksum binds key and binding into one FNV-1a value, so a truncated or
// hand-edited header cannot pass for a valid one.
func checksum(k Key, b Binding) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%d\x00%s\x00%s\x00%d\x00%d\x00%d",
		k.Structure, k.Workload, k.Mode, k.Window,
		b.Machine, b.Variant, b.ProgramHash, b.Seed, b.Faults)
	return h.Sum64()
}

// record is one completed fault.
type record struct {
	Index  int             `json:"i"`
	Result campaign.Result `json:"r"`
}

// ErrMismatch is returned by Load when a shard exists but its header does
// not bind to the requested key/binding (different seed, build, machine,
// or a corrupt header). The caller must re-simulate from scratch.
var ErrMismatch = errors.New("journal: shard header does not match the campaign binding")

// HashProgram digests an assembled program image — name, variant, text,
// data and memory layout — for the shard binding. Two programs with equal
// hashes produce identical golden runs, so their journalled results are
// interchangeable.
func HashProgram(p *asm.Program) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d\x00%d\x00%d\x00%d\x00",
		p.Name, p.Variant, p.TextBase, p.DataBase, p.OutBase, p.OutLenAddr, p.RAMSize)
	var w [4]byte
	for _, inst := range p.Text {
		w[0], w[1], w[2], w[3] = byte(inst), byte(inst>>8), byte(inst>>16), byte(inst>>24)
		h.Write(w[:])
	}
	h.Write(p.Data)
	return h.Sum64()
}

// SyncPolicy selects when a Writer fsyncs its shard — the
// durability/throughput trade of docs/ROBUSTNESS.md. Loss bounds on a
// crash (a torn tail is always recovered from, whatever the policy):
//
//   - SyncChunk (default): Sync is called once per completed campaign
//     chunk; loss is bounded to the chunks still in flight.
//   - SyncEvery: every Append flushes and fsyncs — per-fault durability,
//     the right setting for distributed workers whose chunks another node
//     must be able to take over mid-flight.
//   - SyncOff: never fsync (buffered writes reach the OS at Sync/Close);
//     a crash can lose everything since the last page-cache writeback.
type SyncPolicy uint8

const (
	SyncChunk SyncPolicy = iota
	SyncEvery
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncChunk:
		return "chunk"
	case SyncEvery:
		return "every"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParseSyncPolicy resolves the -fsync flag spelling.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "chunk":
		return SyncChunk, nil
	case "every":
		return SyncEvery, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want every, chunk or off)", s)
}

// Journal is a directory of campaign shards. All methods are safe for
// concurrent use across distinct shards (the study runs one writer per
// in-flight campaign); a single shard must not have two concurrent
// writers, which the single-flight scheduler already guarantees.
type Journal struct {
	dir string
}

// Open creates (if needed) and returns the journal rooted at dir.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// shardPath derives a shard's file path. Shards are namespaced by machine
// and variant (two studies over the same workloads on different machine
// models must not contend for one file), named readably after the key, and
// suffixed with the binding checksum so incompatible configurations get
// distinct files instead of truncating each other's work.
func (j *Journal) shardPath(k Key, b Binding) string {
	sub := sanitize(b.Machine + "-" + b.Variant)
	name := fmt.Sprintf("%s__%s__%s__%d-%016x.ndjson",
		sanitize(k.Structure), sanitize(k.Workload), sanitize(k.Mode), k.Window, checksum(k, b))
	return filepath.Join(j.dir, sub, name)
}

// ShardID is a shard's journal-relative identity — the machine-variant
// subdirectory plus the checksummed shard filename. It is the stable
// resource name distributed workers lease chunks of (see internal/dist):
// two processes agreeing on (key, binding) agree on the ShardID, and two
// different bindings can never collide on one (the binding checksum is
// part of the name).
func (j *Journal) ShardID(k Key, b Binding) string {
	rel, _ := filepath.Rel(j.dir, j.shardPath(k, b))
	return filepath.ToSlash(rel)
}

// partPath derives the worker-private sibling of a shard: the same
// checksummed NDJSON format under the same directory, suffixed with the
// owning worker's name so concurrent workers of one distributed campaign
// never share a file descriptor. The merge step folds parts back into the
// canonical shard (see Merge).
func (j *Journal) partPath(k Key, b Binding, owner string) string {
	return j.shardPath(k, b) + ".part-" + sanitize(owner)
}

// sanitize maps a key component onto a portable filename fragment.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// Load reads a shard's journalled results, keyed by fault-list index. A
// missing shard yields (nil, nil). A shard whose header fails validation
// yields ErrMismatch. A torn final line (crash mid-append) is discarded
// silently; any record after the first undecodable line is ignored, as is
// any record whose index lies outside [0, binding.Faults).
//
// Load is strictly read-only: it never creates, truncates or locks the
// shard, so a long-running service can answer cache lookups against a
// journal directory (len(prior) == binding.Faults is a full hit) without
// opening a Writer or contending with one owned by an in-flight campaign.
func (j *Journal) Load(k Key, b Binding) (map[int]campaign.Result, error) {
	prior, _, err := j.load(k, b)
	return prior, err
}

// LoadAll reads the canonical shard plus every worker part shard of a
// distributed campaign, merged by fault index — the resume view of a
// sharded campaign, where completed work may be spread over the canonical
// shard (a finished merge), this worker's own part, and the parts of
// every other live or dead worker. Duplicate indices (two workers raced a
// stale lease and both simulated a chunk) are harmless: chunk results are
// deterministic, so either record is the record. Parts that fail header
// validation are skipped (they cannot occur under the checksummed naming
// scheme unless hand-damaged); a canonical-shard mismatch is surfaced as
// ErrMismatch exactly like Load.
func (j *Journal) LoadAll(k Key, b Binding) (map[int]campaign.Result, error) {
	prior, err := j.Load(k, b)
	if err != nil {
		return nil, err
	}
	if prior == nil {
		prior = make(map[int]campaign.Result)
	}
	parts, err := j.parts(k, b)
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		rec, _, err := j.loadPath(p, k, b)
		if err != nil {
			continue // damaged part: its records are unverifiable, skip
		}
		for i, r := range rec {
			if _, ok := prior[i]; !ok {
				prior[i] = r
			}
		}
	}
	if len(prior) == 0 {
		return nil, nil
	}
	return prior, nil
}

// HasParts reports whether any worker part shards exist for this campaign
// — the signal that a distributed merge still has consolidation to do
// (e.g. after a crash that landed between the canonical fsync and the part
// removal).
func (j *Journal) HasParts(k Key, b Binding) (bool, error) {
	parts, err := j.parts(k, b)
	return len(parts) > 0, err
}

// parts lists the worker part shards of one campaign, sorted by path so
// LoadAll's merge order (and therefore a merge race's winner for
// duplicate indices) is deterministic.
func (j *Journal) parts(k Key, b Binding) ([]string, error) {
	matches, err := filepath.Glob(j.shardPath(k, b) + ".part-*")
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	sort.Strings(matches)
	return matches, nil
}

// load is Load plus the byte offset just past the last valid record — the
// truncation point a resuming Writer appends from, so a torn tail can never
// merge with the first fresh record.
func (j *Journal) load(k Key, b Binding) (map[int]campaign.Result, int64, error) {
	return j.loadPath(j.shardPath(k, b), k, b)
}

// loadPath is load against an explicit file (the canonical shard or one
// worker part — both carry the same checksummed header).
func (j *Journal) loadPath(path string, k Key, b Binding) (map[int]campaign.Result, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		return nil, 0, ErrMismatch // empty or unreadable header
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, 0, ErrMismatch
	}
	if h.Magic != headerMagic || h.Version != headerVersion ||
		h.Key != k || h.Binding != b || h.Checksum != checksum(k, b) {
		return nil, 0, ErrMismatch
	}
	// The writer emits plain \n-terminated lines, so each scanned line
	// occupies len(bytes)+1 bytes of the file.
	valid := int64(len(sc.Bytes())) + 1

	prior := make(map[int]campaign.Result)
	lastIdx, lastLen := -1, int64(0)
	for sc.Scan() {
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn tail: trust nothing at or past the first bad line
		}
		if rec.Index < 0 || rec.Index >= b.Faults {
			break
		}
		prior[rec.Index] = rec.Result
		lastIdx, lastLen = rec.Index, int64(len(sc.Bytes()))
		valid += lastLen + 1
	}
	// A crash can cut the file exactly at the end of a line's JSON, before
	// its newline: the line still parses but the counted offset overshoots
	// the file. Drop that record so a resume truncates to a clean boundary.
	if fi, err := f.Stat(); err == nil && valid > fi.Size() {
		if lastIdx < 0 {
			return nil, 0, ErrMismatch // the header itself lost its newline
		}
		delete(prior, lastIdx)
		valid -= lastLen + 1
		if valid > fi.Size() {
			return nil, 0, ErrMismatch
		}
	}
	return prior, valid, nil
}

// Writer appends records to one shard. Safe for concurrent Append/Sync
// from multiple campaign workers. I/O errors are sticky: the first one is
// remembered, later appends become no-ops, and Close reports it — a
// failing disk degrades the journal, never the campaign. Set OnError to
// observe the first error the moment it happens instead of at Close: a
// dying disk used to journal nothing for an entire campaign with no sign
// of trouble until the final Close call.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	buf      *bufio.Writer
	policy   SyncPolicy
	appended uint64
	err      error
	errFired bool
	onError  func(error)
}

// SetSyncPolicy selects the writer's fsync discipline (default SyncChunk).
// Call before sharing the writer between goroutines.
func (w *Writer) SetSyncPolicy(p SyncPolicy) { w.policy = p }

// OnError registers a callback invoked exactly once, with the writer's
// first sticky I/O error, at the moment the writer degrades to a no-op.
// The callback runs with the writer's lock held — it must not call back
// into the writer. Call before sharing the writer between goroutines.
func (w *Writer) OnError(fn func(error)) { w.onError = fn }

// fail records the first sticky error and fires the OnError hook once.
// Caller holds w.mu.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	if !w.errFired && w.onError != nil {
		w.errFired = true
		w.onError(w.err)
	}
	return w.err
}

// Writer opens a shard for appending. With resume false the shard is
// truncated and a fresh header written — the caller wants a from-scratch
// run. With resume true an existing shard with a valid matching header is
// truncated to its last intact record and appended from there (the caller
// has already Loaded those records), so a torn tail from a crash can never
// merge with the first fresh append; a missing or invalid shard falls back
// to a from-scratch truncation.
func (j *Journal) Writer(k Key, b Binding, resume bool) (*Writer, error) {
	return j.writerAt(j.shardPath(k, b), k, b, resume)
}

// PartWriter opens a worker-private part shard for appending — the shard a
// distributed campaign worker journals its leased chunks into, sibling to
// the canonical shard and in the identical checksummed format. owner must
// be stable across a worker's restarts (the resume path truncates the
// worker's own torn tail and appends from there) and unique across live
// workers (two live writers on one part file would interleave). The merge
// step (Merge) folds all parts back into the canonical shard.
func (j *Journal) PartWriter(k Key, b Binding, owner string, resume bool) (*Writer, error) {
	return j.writerAt(j.partPath(k, b, owner), k, b, resume)
}

func (j *Journal) writerAt(path string, k Key, b Binding, resume bool) (*Writer, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var off int64
	if resume {
		if _, o, err := j.loadPath(path, k, b); err != nil || o == 0 {
			resume = false // missing or mismatched: start over
		} else {
			off = o
		}
	}
	flags := os.O_CREATE | os.O_WRONLY
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if resume {
		err := f.Truncate(off)
		if err == nil {
			_, err = f.Seek(off, io.SeekStart)
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	w := &Writer{f: f, buf: bufio.NewWriter(f)}
	if !resume {
		h := header{Magic: headerMagic, Version: headerVersion, Key: k, Binding: b, Checksum: checksum(k, b)}
		if err := w.writeLine(h); err != nil {
			f.Close()
			return nil, err
		}
		// The header hits the disk before any result does: a crash
		// right after creation leaves a valid, resumable empty shard
		// rather than a headerless file.
		if err := w.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

func (w *Writer) writeLine(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := w.buf.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := w.buf.WriteByte('\n'); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Append journals one completed fault. Errors are sticky; use Err or Close
// to observe them.
func (w *Writer) Append(i int, res campaign.Result) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if err := w.writeLine(record{Index: i, Result: res}); err != nil {
		w.fail(err)
		return
	}
	w.appended++
	if w.policy == SyncEvery {
		w.syncLocked()
	}
}

// Sync flushes buffered records and, unless the policy is SyncOff, fsyncs
// the shard — called once per completed campaign chunk, which under the
// default SyncChunk policy bounds crash loss to in-flight chunks without
// paying an fsync per fault.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if w.err != nil {
		return w.err
	}
	if err := w.buf.Flush(); err != nil {
		return w.fail(fmt.Errorf("journal: %w", err))
	}
	if w.policy == SyncOff {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(fmt.Errorf("journal: %w", err))
	}
	return nil
}

// Appended returns the number of records journalled so far.
func (w *Writer) Appended() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// Close flushes, fsyncs (policy permitting) and closes the shard,
// returning the first error encountered over the writer's lifetime.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("journal: %w", cerr)
	}
	return err
}

// Merge consolidates a distributed campaign's results into the canonical
// shard and removes the worker part shards. Records are written in fault-
// index order, so the merged shard's bytes are a pure function of (key,
// binding, results) — the byte-identity guarantee of docs/DISTRIBUTED.md:
// however many workers ran, however chunks were leased or stolen, the
// merged file is identical to a single-process run's merged file. results
// should be the complete LoadAll view (the caller has verified coverage);
// Merge itself only requires the indices to be in-range.
//
// Crash ordering: the canonical shard is rewritten and fsynced before any
// part is unlinked, so a crash mid-merge leaves either the old parts (the
// merge reruns) or the new canonical shard plus some parts (LoadAll yields
// the same view; the rerun merge removes the stragglers). No interleaving
// loses a record.
func (j *Journal) Merge(k Key, b Binding, results map[int]campaign.Result) error {
	w, err := j.Writer(k, b, false)
	if err != nil {
		return err
	}
	idx := make([]int, 0, len(results))
	for i := range results {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		w.Append(i, results[i])
	}
	if err := w.Close(); err != nil {
		return err
	}
	parts, err := j.parts(k, b)
	if err != nil {
		return err
	}
	for _, p := range parts {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("journal: %w", err)
		}
	}
	return nil
}
