package journal

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"avgi/internal/campaign"
	"avgi/internal/cpu"
	"avgi/internal/fault"
	"avgi/internal/imm"
	"avgi/internal/prog"
)

func testKey() Key {
	return Key{Structure: "RF", Workload: "sha", Mode: "exhaustive", Window: 0}
}

func testBinding(faults int) Binding {
	return Binding{Machine: "avgi-a72", Variant: "AVG64", ProgramHash: 0xfeedface, Seed: 7, Faults: faults}
}

// testResults covers every Result field class the journal must round-trip:
// a plain classified fault, a crash with latency, a runaway, and a
// quarantined fault with an error string.
func testResults() []campaign.Result {
	return []campaign.Result{
		{
			Fault:     fault.Fault{ID: 0, Structure: "RF", Bit: 12, Cycle: 100},
			IMM:       imm.DCR,
			Effect:    imm.SDC,
			HasEffect: true, Manifested: true, ManifestLatency: 42, SimCycles: 9000,
		},
		{
			Fault: fault.Fault{ID: 1, Structure: "RF", Bit: 7, Cycle: 200, Width: 2},
			IMM:   imm.PRE, Manifested: true, ManifestLatency: 5,
			SimCycles: 5, Crash: cpu.CrashPageFault,
		},
		{
			Fault: fault.Fault{ID: 2, Structure: "RF", Bit: 3, Cycle: 300},
			IMM:   imm.PRE, SimCycles: 100000, Runaway: true,
		},
		{
			Fault:       fault.Fault{ID: 3, Structure: "RF", Bit: 1, Cycle: 400},
			Quarantined: true, Err: "campaign: fault #3 wraps past the end of RF (2048 bits)",
		},
	}
}

func TestRoundTrip(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, bind := testKey(), testBinding(4)
	results := testResults()

	w, err := j.Writer(key, bind, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		w.Append(i, r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Appended() != 4 {
		t.Errorf("appended = %d", w.Appended())
	}

	prior, err := j.Load(key, bind)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != len(results) {
		t.Fatalf("loaded %d records, want %d", len(prior), len(results))
	}
	for i, want := range results {
		if got, ok := prior[i]; !ok || !reflect.DeepEqual(got, want) {
			t.Errorf("record %d: got %+v, want %+v", i, prior[i], want)
		}
	}
}

func TestMissingShard(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prior, err := j.Load(testKey(), testBinding(4))
	if err != nil || prior != nil {
		t.Fatalf("missing shard: got (%v, %v), want (nil, nil)", prior, err)
	}
}

func TestBindingMismatch(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey()
	w, err := j.Writer(key, testBinding(4), false)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(0, testResults()[0])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Same key, different seed: distinct shard file, so no records — and
	// no cross-contamination of the original shard.
	other := testBinding(4)
	other.Seed = 99
	if prior, err := j.Load(key, other); err != nil || len(prior) != 0 {
		t.Errorf("different binding must map to a different (missing) shard, got (%v, %v)", prior, err)
	}

	// A shard whose header was corrupted in place must be refused.
	path := j.shardPath(key, testBinding(4))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(data), "\n", 2)
	mangled := strings.Replace(lines[0], `"seed":7`, `"seed":99`, 1) + "\n" + lines[1]
	if mangled == string(data) {
		t.Fatal("test setup: header mangle had no effect")
	}
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Load(key, testBinding(4)); err != ErrMismatch {
		t.Errorf("corrupt header: err = %v, want ErrMismatch", err)
	}
}

// TestTornTail simulates a SIGKILL mid-append: the final line is cut short
// and must be discarded on load without failing the whole shard.
func TestTornTail(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, bind := testKey(), testBinding(4)
	w, err := j.Writer(key, bind, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range testResults() {
		w.Append(i, r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	path := j.shardPath(key, bind)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-way through the final record's line.
	cut := len(data) - 17
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	prior, err := j.Load(key, bind)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 3 {
		t.Fatalf("torn shard loaded %d records, want 3", len(prior))
	}
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(prior[i], testResults()[i]) {
			t.Errorf("record %d corrupted by torn tail", i)
		}
	}
}

// TestResumeAppends verifies that a resume-mode writer extends an existing
// shard rather than truncating it, and that a non-resume writer starts
// over.
func TestResumeAppends(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, bind := testKey(), testBinding(4)
	results := testResults()

	w, err := j.Writer(key, bind, false)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(0, results[0])
	w.Append(1, results[1])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w, err = j.Writer(key, bind, true)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(2, results[2])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	prior, err := j.Load(key, bind)
	if err != nil || len(prior) != 3 {
		t.Fatalf("after resume append: %d records (%v), want 3", len(prior), err)
	}

	w, err = j.Writer(key, bind, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	prior, err = j.Load(key, bind)
	if err != nil || len(prior) != 0 {
		t.Fatalf("non-resume writer must truncate: %d records (%v)", len(prior), err)
	}
}

// TestResumeTruncatesTornTail is the regression test for torn-tail resume:
// appending after a crash must first truncate the shard to its last intact
// record, or the fresh append would concatenate onto the torn half-line and
// corrupt both records forever.
func TestResumeTruncatesTornTail(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, bind := testKey(), testBinding(4)
	results := testResults()
	w, err := j.Writer(key, bind, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w.Append(i, results[i])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record mid-line, then resume and append the two
	// missing results.
	path := j.shardPath(key, bind)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-13], 0o644); err != nil {
		t.Fatal(err)
	}
	w, err = j.Writer(key, bind, true)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(2, results[2])
	w.Append(3, results[3])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The shard must now be whole: four intact records, no torn remnant.
	prior, err := j.Load(key, bind)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 4 {
		t.Fatalf("resumed shard has %d records, want 4", len(prior))
	}
	for i, want := range results {
		if !reflect.DeepEqual(prior[i], want) {
			t.Errorf("record %d corrupted across the torn-tail resume", i)
		}
	}
}

// TestHashProgram asserts the binding hash is sensitive to the program
// image: same workload+variant hashes stably, text and data changes are
// detected.
func TestHashProgram(t *testing.T) {
	w, err := prog.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.ConfigA72()
	p1, p2 := w.Build(cfg.Variant), w.Build(cfg.Variant)
	if HashProgram(p1) != HashProgram(p2) {
		t.Error("identical builds must hash identically")
	}
	p2.Text = append([]uint32(nil), p2.Text...)
	p2.Text[0] ^= 1
	if HashProgram(p1) == HashProgram(p2) {
		t.Error("a text change must change the hash")
	}
	p3 := w.Build(cpu.ConfigA15().Variant)
	if HashProgram(p1) == HashProgram(p3) {
		t.Error("different variants must hash differently")
	}
}

// TestTornShardSeverPoints drives the torn-tail recovery across the three
// distinct places a crash can sever the shard: inside a record's payload,
// exactly at a record's closing brace with the newline lost, and inside the
// header's checksum field. Each case must load exactly the intact prefix
// (or refuse the shard outright when the header itself is torn), and a
// resume writer must leave a shard whose records are identical to an
// untorn study.
func TestTornShardSeverPoints(t *testing.T) {
	results := testResults()
	// sever returns the truncation point for one scenario given the whole
	// shard; wantErr/wantLoaded describe the post-sever Load, appendFrom
	// the index resume must restart at to rebuild the full study.
	cases := []struct {
		name       string
		sever      func(data []byte) int
		wantErr    error
		wantLoaded int
		appendFrom int
	}{
		{
			name: "mid-payload",
			// Cut a few bytes into the final record's Result object: the
			// remnant {"i":3,"r" is undecodable and must be discarded.
			sever: func(data []byte) int {
				lastNL := lastLineStart(data)
				return lastNL + 10
			},
			wantLoaded: 3, appendFrom: 3,
		},
		{
			name: "json-complete-newline-lost",
			// Cut exactly past the final record's closing brace, before
			// its newline: the line parses, but the record must still be
			// dropped so resume truncates to a clean line boundary.
			sever:      func(data []byte) int { return len(data) - 1 },
			wantLoaded: 3, appendFrom: 3,
		},
		{
			name: "header-mid-checksum",
			// Sever inside the header's trailing checksum field: the
			// whole shard is untrustworthy and must be refused; resume
			// falls back to a from-scratch shard.
			sever:      func(data []byte) int { return bytes.IndexByte(data, '\n') - 3 },
			wantErr:    ErrMismatch,
			wantLoaded: 0, appendFrom: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key, bind := testKey(), testBinding(4)
			w, err := j.Writer(key, bind, false)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range results {
				w.Append(i, r)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			path := j.shardPath(key, bind)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cut := tc.sever(data)
			if cut <= 0 || cut >= len(data) {
				t.Fatalf("test setup: sever point %d outside shard (%d bytes)", cut, len(data))
			}
			if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}

			prior, err := j.Load(key, bind)
			if err != tc.wantErr {
				t.Fatalf("Load on torn shard: err = %v, want %v", err, tc.wantErr)
			}
			if len(prior) != tc.wantLoaded {
				t.Fatalf("torn shard loaded %d records, want %d", len(prior), tc.wantLoaded)
			}
			for i := 0; i < tc.wantLoaded; i++ {
				if !reflect.DeepEqual(prior[i], results[i]) {
					t.Errorf("record %d corrupted by the torn tail", i)
				}
			}

			// Resume across the tear and rebuild the missing suffix: the
			// healed shard must hold the identical full study.
			w, err = j.Writer(key, bind, true)
			if err != nil {
				t.Fatal(err)
			}
			for i := tc.appendFrom; i < len(results); i++ {
				w.Append(i, results[i])
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			prior, err = j.Load(key, bind)
			if err != nil {
				t.Fatal(err)
			}
			if len(prior) != len(results) {
				t.Fatalf("healed shard has %d records, want %d", len(prior), len(results))
			}
			for i, want := range results {
				if !reflect.DeepEqual(prior[i], want) {
					t.Errorf("record %d differs from the untorn study after resume", i)
				}
			}
		})
	}
}

// lastLineStart returns the offset of the final \n-terminated line's first
// byte.
func lastLineStart(data []byte) int {
	return bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
}

// TestShardPathSanitizeCollision pins the checksum-suffix guarantee: two
// keys whose human-readable components sanitize to the same filename
// fragment ("L1D (Tag)" and "L1D_(Tag)" both become "L1D__Tag_") must still
// land in distinct shard files, because the binding checksum — computed
// over the raw, unsanitized strings — differs. Without the suffix the
// second campaign would silently truncate the first one's work.
func TestShardPathSanitizeCollision(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bind := testBinding(1)
	a := Key{Structure: "L1D (Tag)", Workload: "sha", Mode: "exhaustive"}
	b := Key{Structure: "L1D_(Tag)", Workload: "sha", Mode: "exhaustive"}
	if sanitize(a.Structure) != sanitize(b.Structure) {
		t.Fatalf("test setup: %q and %q no longer sanitize identically", a.Structure, b.Structure)
	}
	pa, pb := j.shardPath(a, bind), j.shardPath(b, bind)
	if pa == pb {
		t.Fatalf("colliding sanitized keys share one shard path %s", pa)
	}

	// End to end: write both shards, load both back, no cross-talk.
	ra := testResults()[0]
	rb := testResults()[1]
	rb.Fault.Structure = b.Structure
	for _, wr := range []struct {
		k Key
		r campaign.Result
	}{{a, ra}, {b, rb}} {
		w, err := j.Writer(wr.k, bind, false)
		if err != nil {
			t.Fatal(err)
		}
		w.Append(0, wr.r)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := j.Load(a, bind)
	if err != nil || !reflect.DeepEqual(got[0], ra) {
		t.Errorf("shard A corrupted by its sanitize-collision sibling (%v)", err)
	}
	got, err = j.Load(b, bind)
	if err != nil || !reflect.DeepEqual(got[0], rb) {
		t.Errorf("shard B corrupted by its sanitize-collision sibling (%v)", err)
	}
}

// TestWriterErrorHookFiresOnce proves a dying disk is visible immediately:
// the first sticky I/O error fires OnError exactly once, later appends are
// silent no-ops, and Close still reports the original error.
func TestWriterErrorHookFiresOnce(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, bind := testKey(), testBinding(4)
	w, err := j.Writer(key, bind, false)
	if err != nil {
		t.Fatal(err)
	}
	var fired []error
	w.OnError(func(err error) { fired = append(fired, err) })

	// Simulate the disk dying under the writer: close the file out from
	// underneath it, so the next flush-inducing operation errors.
	w.f.Close()
	w.Append(0, testResults()[0])
	if err := w.Sync(); err == nil {
		t.Fatal("Sync on a closed file must error")
	}
	w.Append(1, testResults()[1]) // sticky: silently dropped
	w.Sync()

	if len(fired) != 1 {
		t.Fatalf("OnError fired %d times, want exactly once", len(fired))
	}
	if cerr := w.Close(); cerr == nil || !strings.Contains(cerr.Error(), "journal:") {
		t.Errorf("Close must report the sticky error, got %v", cerr)
	}
}
