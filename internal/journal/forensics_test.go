package journal

import (
	"encoding/json"
	"reflect"
	"testing"

	"avgi/internal/campaign"
	"avgi/internal/fault"
	"avgi/internal/forensics"
	"avgi/internal/imm"
)

// The forensics attribution rides the journal record as a backward-
// compatible extension: it must survive a write/load round-trip intact,
// and shards written before the field existed must still load.
func TestRoundTripForensics(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, bind := testKey(), testBinding(3)
	results := []campaign.Result{
		{
			Fault: fault.Fault{ID: 0, Structure: "RF", Bit: 12, Cycle: 100},
			IMM:   imm.Benign, Effect: imm.Masked, HasEffect: true, SimCycles: 9000,
			Forensics: &forensics.Record{
				Cause: forensics.CauseOverwritten, Latency: 7, Sites: 1, LiveSites: 1,
			},
		},
		{
			Fault: fault.Fault{ID: 1, Structure: "RF", Bit: 7, Cycle: 200},
			IMM:   imm.DCR, Effect: imm.SDC, HasEffect: true,
			Manifested: true, ManifestLatency: 42, SimCycles: 9000,
			Forensics: &forensics.Record{
				Cause: forensics.CauseVisible, Latency: 42, Reads: 2, Sites: 1, LiveSites: 1,
				Divergence: &forensics.Divergence{
					CycleDelta: 42, PC: 0x1a4, CommitIndex: 31, Kind: "record",
				},
			},
		},
		// A fault outside the forensics sample: no attribution.
		{
			Fault: fault.Fault{ID: 2, Structure: "RF", Bit: 3, Cycle: 300},
			IMM:   imm.Benign, Effect: imm.Masked, HasEffect: true, SimCycles: 9000,
		},
	}

	w, err := j.Writer(key, bind, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		w.Append(i, r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	prior, err := j.Load(key, bind)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range results {
		got, ok := prior[i]
		if !ok || !reflect.DeepEqual(got, want) {
			t.Errorf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if prior[2].Forensics != nil {
		t.Error("unsampled fault grew an attribution through the journal")
	}
}

// A record serialized before the Forensics field existed (no such key in
// the JSON) must decode with a nil attribution — old shards stay loadable.
func TestOldRecordWithoutForensicsLoads(t *testing.T) {
	line := `{"Fault":{"ID":0,"Structure":"RF","Bit":12,"Cycle":100},"IMM":1,"SimCycles":9000}`
	var res campaign.Result
	if err := json.Unmarshal([]byte(line), &res); err != nil {
		t.Fatal(err)
	}
	if res.Forensics != nil {
		t.Errorf("forensics %+v from a pre-forensics record", res.Forensics)
	}
	if res.SimCycles != 9000 {
		t.Errorf("record fields lost: %+v", res)
	}
}
