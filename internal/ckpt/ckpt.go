// Package ckpt is the checkpoint subsystem of the fault-injection campaign:
// a read-only Store of interval snapshots recorded along the golden run,
// and a Pool of reusable scratch machines that workers rewind per fault.
//
// Together they replace the clone-everything fork model: instead of every
// worker advancing a private "mother" machine from cycle 0 and deep-copying
// it per fault, the golden prefix is simulated once while recording a
// snapshot every Interval cycles; each worker then seeks to the nearest
// checkpoint at or before a fault's injection cycle, restores a pooled
// scratch machine in place, and re-simulates at most Interval-1 cycles.
// This is the checkpoint-accelerated flow of the paper's Section IV.B,
// where campaign throughput comes from cheap fork/restore rather than
// faithful per-fault machine construction.
package ckpt

import (
	"sort"
	"sync"

	"avgi/internal/asm"
	"avgi/internal/cpu"
)

// MinInterval is the floor on the checkpoint interval: below this the
// store's memory footprint grows faster than the re-simulation it saves.
const MinInterval = 512

// intervalDivisor bounds the number of checkpoints per golden run (at most
// goldenCycles/DefaultInterval ≈ 64 plus the cycle-0 snapshot).
const intervalDivisor = 64

// DefaultInterval derives the checkpoint interval from the golden run
// length: goldenCycles/64, floored at MinInterval. Short programs get a
// single cycle-0 checkpoint; long ones get at most ~64 evenly spaced ones,
// capping both store memory and the worst-case re-simulation distance.
func DefaultInterval(goldenCycles uint64) uint64 {
	if v := goldenCycles / intervalDivisor; v > MinInterval {
		return v
	}
	return MinInterval
}

// Store is an immutable sequence of machine snapshots taken every Interval
// cycles along the golden run, starting at cycle 0. After Record returns
// the store is read-only and safe for concurrent Seek/Restore from any
// number of workers.
type Store struct {
	interval uint64
	cycles   []uint64 // capture cycles, ascending; cycles[0] == 0
	snaps    []*cpu.Snapshot
	bytes    uint64
}

// Record replays the golden run from cycle 0 and captures a snapshot at
// cycle 0 and then every interval cycles until the machine halts or
// goldenCycles is reached. An interval of 0 selects
// DefaultInterval(goldenCycles).
func Record(cfg cpu.Config, p *asm.Program, goldenCycles, interval uint64) *Store {
	if interval == 0 {
		interval = DefaultInterval(goldenCycles)
	}
	s := &Store{interval: interval}
	m := cpu.New(cfg, p)
	s.add(m)
	for m.Cycle()+interval <= goldenCycles && m.Status() == cpu.StatusRunning {
		m.Run(cpu.RunOptions{
			StopAtCycle: m.Cycle() + interval,
			MaxCycles:   goldenCycles + 1,
		})
		if m.Status() != cpu.StatusRunning {
			break // halted (or crashed) before the next boundary
		}
		s.add(m)
	}
	return s
}

func (s *Store) add(m *cpu.Machine) {
	snap := m.Snapshot(nil)
	s.cycles = append(s.cycles, snap.Cycle())
	s.snaps = append(s.snaps, snap)
	s.bytes += snap.Bytes()
}

// Seek returns the latest snapshot captured at or before cycle, plus the
// re-simulation distance (cycle minus the snapshot's cycle). The cycle-0
// snapshot guarantees a result for any cycle.
func (s *Store) Seek(cycle uint64) (snap *cpu.Snapshot, distance uint64) {
	// First index with cycles[i] > cycle; the predecessor is the answer.
	i := sort.Search(len(s.cycles), func(i int) bool { return s.cycles[i] > cycle })
	snap = s.snaps[i-1]
	return snap, cycle - s.cycles[i-1]
}

// Interval returns the checkpoint spacing in cycles.
func (s *Store) Interval() uint64 { return s.interval }

// Count returns the number of checkpoints held.
func (s *Store) Count() int { return len(s.snaps) }

// Bytes returns the total captured bytes across all checkpoints, as
// reported by each snapshot's own accounting.
func (s *Store) Bytes() uint64 { return s.bytes }

// Pool hands out scratch machines for fault runs and recycles them, so a
// campaign allocates roughly one machine per concurrently active worker
// rather than one per fault. Machines come back from Get positioned
// wherever their previous fault run left them; the caller must Restore a
// snapshot before use.
type Pool struct {
	cfg  cpu.Config
	prog *asm.Program
	pool sync.Pool
}

// NewPool builds a pool producing machines for cfg and prog.
func NewPool(cfg cpu.Config, p *asm.Program) *Pool {
	return &Pool{cfg: cfg, prog: p}
}

// Get returns a scratch machine, reporting whether it was recycled from a
// previous Put (reused=false means a fresh machine was allocated).
func (p *Pool) Get() (m *cpu.Machine, reused bool) {
	if v := p.pool.Get(); v != nil {
		return v.(*cpu.Machine), true
	}
	return cpu.New(p.cfg, p.prog), false
}

// Put returns a machine to the pool for reuse. Delta tracking is switched
// off so the next user — possibly a different fork policy — never inherits
// a stale sync lineage.
func (p *Pool) Put(m *cpu.Machine) {
	m.SetSink(nil)
	m.EndDeltaTracking()
	p.pool.Put(m)
}
