package ckpt

import (
	"bytes"
	"sync"
	"testing"

	"avgi/internal/cpu"
	"avgi/internal/prog"
)

func TestDefaultInterval(t *testing.T) {
	if got := DefaultInterval(1000); got != MinInterval {
		t.Errorf("short golden interval = %d, want %d", got, MinInterval)
	}
	if got := DefaultInterval(640_000); got != 10_000 {
		t.Errorf("long golden interval = %d, want 10000", got)
	}
}

func goldenFor(t *testing.T, cfg cpu.Config, name string) (p cpu.Result, w prog.Workload) {
	t.Helper()
	wl, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(cfg, wl.Build(cfg.Variant))
	res := m.Run(cpu.RunOptions{})
	if res.Status != cpu.StatusHalted {
		t.Fatalf("golden run ended %v", res.Status)
	}
	return res, wl
}

func TestStoreRecordAndSeek(t *testing.T) {
	cfg := cpu.ConfigA72()
	golden, wl := goldenFor(t, cfg, "sha")
	interval := uint64(1000)
	st := Record(cfg, wl.Build(cfg.Variant), golden.Cycles, interval)

	if st.Interval() != interval {
		t.Errorf("interval = %d", st.Interval())
	}
	want := int(golden.Cycles/interval) + 1
	if st.Count() != want {
		t.Errorf("count = %d, want %d", st.Count(), want)
	}
	if st.Bytes() == 0 {
		t.Error("store reports zero bytes")
	}

	// cycles are 0, K, 2K, ... and Seek lands on the floor checkpoint.
	for _, tc := range []struct{ cycle, wantSnap, wantDist uint64 }{
		{0, 0, 0},
		{1, 0, 1},
		{999, 0, 999},
		{1000, 1000, 0},
		{1001, 1000, 1},
		{2500, 2000, 500},
		{golden.Cycles, golden.Cycles / interval * interval, golden.Cycles % interval},
	} {
		snap, dist := st.Seek(tc.cycle)
		if snap.Cycle() != tc.wantSnap || dist != tc.wantDist {
			t.Errorf("Seek(%d) = snap@%d dist %d, want snap@%d dist %d",
				tc.cycle, snap.Cycle(), dist, tc.wantSnap, tc.wantDist)
		}
	}
}

func TestStoreZeroIntervalUsesDefault(t *testing.T) {
	cfg := cpu.ConfigA72()
	golden, wl := goldenFor(t, cfg, "bitcount")
	st := Record(cfg, wl.Build(cfg.Variant), golden.Cycles, 0)
	if st.Interval() != DefaultInterval(golden.Cycles) {
		t.Errorf("interval = %d, want %d", st.Interval(), DefaultInterval(golden.Cycles))
	}
}

// TestStoreRestoreMatchesFreshRun proves a checkpoint seek+restore+advance
// reaches exactly the state a fresh machine run from cycle 0 reaches.
func TestStoreRestoreMatchesFreshRun(t *testing.T) {
	cfg := cpu.ConfigA72()
	golden, wl := goldenFor(t, cfg, "crc32")
	p := wl.Build(cfg.Variant)
	st := Record(cfg, p, golden.Cycles, 1000)

	pool := NewPool(cfg, p)
	for _, cycle := range []uint64{1, 777, 1000, 2421, golden.Cycles - 1} {
		snap, dist := st.Seek(cycle)
		m, _ := pool.Get()
		m.Restore(snap)
		if dist > 0 {
			m.Run(cpu.RunOptions{StopAtCycle: cycle, MaxCycles: golden.Cycles + 1})
		}
		if m.Cycle() != cycle {
			t.Fatalf("seek+advance to %d landed at %d", cycle, m.Cycle())
		}
		res := m.Run(cpu.RunOptions{})
		if res.Status != cpu.StatusHalted || res.Cycles != golden.Cycles {
			t.Errorf("run from checkpoint@%d: %v after %d cycles, want halt at %d",
				cycle, res.Status, res.Cycles, golden.Cycles)
		}
		if !bytes.Equal(res.Output, golden.Output) {
			t.Errorf("output from checkpoint@%d diverged", cycle)
		}
		pool.Put(m)
	}
}

// TestStoreConcurrentWorkers exercises the shared-store contract under the
// race detector: many workers seeking and restoring from one store.
func TestStoreConcurrentWorkers(t *testing.T) {
	cfg := cpu.ConfigA72()
	golden, wl := goldenFor(t, cfg, "sha")
	p := wl.Build(cfg.Variant)
	st := Record(cfg, p, golden.Cycles, 1000)
	pool := NewPool(cfg, p)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				cycle := uint64(w*1500 + i*700 + 1)
				if cycle > golden.Cycles {
					cycle = golden.Cycles
				}
				snap, _ := st.Seek(cycle)
				m, _ := pool.Get()
				m.Restore(snap)
				res := m.Run(cpu.RunOptions{})
				if !bytes.Equal(res.Output, golden.Output) {
					t.Errorf("worker %d fault %d diverged", w, i)
				}
				pool.Put(m)
			}
		}(w)
	}
	wg.Wait()
}

func TestPoolReuse(t *testing.T) {
	cfg := cpu.ConfigA72()
	wl, err := prog.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(cfg, wl.Build(cfg.Variant))
	m1, reused := pool.Get()
	if reused {
		t.Error("first Get reported reuse")
	}
	pool.Put(m1)
	m2, reused := pool.Get()
	if !reused || m2 != m1 {
		t.Error("Put machine was not recycled")
	}
}
