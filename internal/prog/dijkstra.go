package prog

import (
	"avgi/internal/asm"
	"avgi/internal/isa"
)

// dijkstra computes single-source shortest paths on a dense 48-node graph
// with an O(V^2) scan (no heap), as in the MiBench network suite. Output:
// the distance vector (48 natural words).

const (
	djV    = 48
	djSeed = 0xD1357A99
	djInf  = 1 << 28
)

func init() {
	register(Workload{
		Name:  "dijkstra",
		Suite: "mibench",
		Build: buildDijkstra,
		Ref:   refDijkstra,
	})
}

// djAdj generates the dense weight matrix: adj[i][j] in 1..255, 0 on the
// diagonal.
func djAdj() []uint64 {
	r := xorshift32(djSeed)
	m := make([]uint64, djV*djV)
	for i := 0; i < djV; i++ {
		for j := 0; j < djV; j++ {
			if i == j {
				continue
			}
			m[i*djV+j] = uint64(r()%255 + 1)
		}
	}
	return m
}

func refDijkstra(v isa.Variant) []byte {
	adj := djAdj()
	dist := make([]uint64, djV)
	visited := make([]bool, djV)
	for i := 1; i < djV; i++ {
		dist[i] = djInf
	}
	for iter := 0; iter < djV; iter++ {
		best := uint64(djInf + 1)
		bi := 0
		for i := 0; i < djV; i++ {
			if !visited[i] && dist[i] < best {
				best = dist[i]
				bi = i
			}
		}
		visited[bi] = true
		for j := 0; j < djV; j++ {
			if visited[j] {
				continue
			}
			nd := dist[bi] + adj[bi*djV+j]
			if nd < dist[j] {
				dist[j] = nd
			}
		}
	}
	wb := wordBytes(v)
	var out []byte
	for _, d := range dist {
		out = putWord(out, d, wb)
	}
	return out
}

func buildDijkstra(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("dijkstra", v)
	adj := b.DataWords("adj", djAdj())
	wb := int32(v.WordBytes())
	sh := b.WordShift()
	dist := b.Reserve("dist", djV*int(wb))
	visited := b.Reserve("visited", djV)

	// r1 adj, r2 dist, r3 visited, r4 iter, r5 best, r6 bestIdx,
	// r7 loop idx, r8..r12,r15 temps.
	b.Li(1, adj)
	b.Li(2, dist)
	b.Li(3, visited)

	// Initialise dist[0]=0 (Reserve zero-fills) and dist[1..]=INF.
	b.Li(7, 1)
	b.Li(8, djV)
	b.Li(9, djInf)
	b.Label("init")
	b.Slli(10, 7, sh)
	b.Add(10, 10, 2)
	b.StoreW(9, 10, 0)
	b.Addi(7, 7, 1)
	b.Blt(7, 8, "init")

	b.Li(4, 0) // iter
	b.Label("outer")
	// Select the unvisited node with the minimum distance.
	b.Li(5, djInf+1)
	b.Li(6, 0)
	b.Li(7, 0)
	b.Label("scan")
	b.Add(9, 3, 7)
	b.Lbu(9, 9, 0)
	b.Bne(9, 0, "scannext")
	b.Slli(10, 7, sh)
	b.Add(10, 10, 2)
	b.LoadW(10, 10, 0)
	b.Bgeu(10, 5, "scannext")
	b.Mov(5, 10)
	b.Mov(6, 7)
	b.Label("scannext")
	b.Addi(7, 7, 1)
	b.Li(9, djV)
	b.Blt(7, 9, "scan")

	// Mark visited and relax every unvisited neighbour.
	b.Add(9, 3, 6)
	b.Li(10, 1)
	b.Sb(10, 9, 0)
	// r8 = adj row base = adj + bestIdx*V*wb; r5 = dist[best].
	b.Li(9, djV)
	b.Mul(8, 6, 9)
	b.Slli(8, 8, sh)
	b.Add(8, 8, 1)
	b.Slli(9, 6, sh)
	b.Add(9, 9, 2)
	b.LoadW(5, 9, 0)
	b.Li(7, 0)
	b.Label("relax")
	b.Add(9, 3, 7)
	b.Lbu(9, 9, 0)
	b.Bne(9, 0, "relaxnext")
	b.Slli(10, 7, sh)
	b.Add(11, 10, 8)
	b.LoadW(11, 11, 0) // weight
	b.Add(11, 11, 5)   // candidate distance
	b.Add(12, 10, 2)
	b.LoadW(9, 12, 0) // dist[j]
	b.Bgeu(11, 9, "relaxnext")
	b.StoreW(11, 12, 0)
	b.Label("relaxnext")
	b.Addi(7, 7, 1)
	b.Li(9, djV)
	b.Blt(7, 9, "relax")

	b.Addi(4, 4, 1)
	b.Li(9, djV)
	b.Blt(4, 9, "outer")

	// Copy dist to the output region.
	b.Li(7, 0)
	b.Li(8, djV)
	b.Li(11, asm.DefaultOutBase)
	b.Label("emit")
	b.Slli(10, 7, sh)
	b.Add(9, 10, 2)
	b.LoadW(9, 9, 0)
	b.Add(10, 10, 11)
	b.StoreW(9, 10, 0)
	b.Addi(7, 7, 1)
	b.Blt(7, 8, "emit")

	b.Li(4, uint64(djV)*uint64(wb))
	epilogue(b, 4, 15)
	return b.MustAssemble()
}
