package prog

import (
	"avgi/internal/asm"
	"avgi/internal/isa"
)

// nas-mg is a 1-D multigrid V-cycle kernel in the style of NAS MG: two
// V-cycles of Gauss-Seidel smoothing, pairwise restriction to two coarser
// grids, and interpolation back with correction, over a 1024-point grid of
// 15-bit fixed-point values. The grid routines are real subroutines invoked
// through the call/return path, so the workload also exercises JAL/JALR.
// Output: the final fine grid as 16-bit values (2 KiB) — large output.

const (
	mgN     = 1024
	mgSeed  = 0x36C36C11
	mgVCyls = 2
)

func init() {
	register(Workload{
		Name:  "mg",
		Suite: "nas",
		Build: buildMG,
		Ref:   refMG,
	})
}

func mgInput() []int32 {
	r := xorshift32(mgSeed)
	g := make([]int32, mgN)
	for i := range g {
		g[i] = int32(r() % 32768)
	}
	return g
}

// The reference model mirrors the machine subroutines exactly.

func mgSmooth(a []int32) {
	for i := 1; i < len(a)-1; i++ {
		a[i] = (a[i-1] + 2*a[i] + a[i+1]) >> 2
	}
}

func mgRestrict(dst, src []int32) {
	for i := range dst {
		dst[i] = (src[2*i] + src[2*i+1]) >> 1
	}
}

func mgProlong(dst, src []int32) {
	for i := range src {
		dst[2*i] = (dst[2*i] + src[i]) >> 1
		dst[2*i+1] = (dst[2*i+1] + src[i]) >> 1
	}
}

func refMG(v isa.Variant) []byte {
	fine := mgInput()
	mid := make([]int32, mgN/2)
	coarse := make([]int32, mgN/4)
	for c := 0; c < mgVCyls; c++ {
		mgSmooth(fine)
		mgSmooth(fine)
		mgRestrict(mid, fine)
		mgSmooth(mid)
		mgSmooth(mid)
		mgRestrict(coarse, mid)
		mgSmooth(coarse)
		mgSmooth(coarse)
		mgProlong(mid, coarse)
		mgSmooth(mid)
		mgProlong(fine, mid)
		mgSmooth(fine)
	}
	out := make([]byte, 0, mgN*2)
	for _, x := range fine {
		out = append(out, byte(x), byte(x>>8))
	}
	return out
}

func buildMG(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("mg", v)
	fine := b.DataWords32("fine", i32words(mgInput()))
	mid := b.Reserve("mid", mgN/2*4)
	coarse := b.Reserve("coarse", mgN/4*4)

	// Calling convention: r1 = array (or dst), r2 = n, r3 = src;
	// subroutines clobber r9..r12, r15. r4 = V-cycle counter.
	b.Li(4, mgVCyls)
	b.Label("vcycle")
	call2 := func(fn string, arr uint64, n int) {
		b.Li(1, arr)
		b.Li(2, uint64(n))
		b.Call(fn)
	}
	call3 := func(fn string, dst uint64, n int, src uint64) {
		b.Li(1, dst)
		b.Li(2, uint64(n))
		b.Li(3, src)
		b.Call(fn)
	}
	call2("smooth", fine, mgN)
	call2("smooth", fine, mgN)
	call3("restrict", mid, mgN/2, fine)
	call2("smooth", mid, mgN/2)
	call2("smooth", mid, mgN/2)
	call3("restrict", coarse, mgN/4, mid)
	call2("smooth", coarse, mgN/4)
	call2("smooth", coarse, mgN/4)
	call3("prolong", mid, mgN/4, coarse)
	call2("smooth", mid, mgN/2)
	call3("prolong", fine, mgN/2, mid)
	call2("smooth", fine, mgN)
	b.Addi(4, 4, -1)
	b.Bne(4, 0, "vcycle")

	// Emit the fine grid as halfwords.
	b.Li(1, fine)
	b.Li(2, mgN)
	b.Li(3, asm.DefaultOutBase)
	b.Li(9, 0)
	b.Label("emit")
	b.Slli(10, 9, 2)
	b.Add(10, 10, 1)
	b.Lw(11, 10, 0)
	b.Slli(12, 9, 1)
	b.Add(12, 12, 3)
	b.Sh(11, 12, 0)
	b.Addi(9, 9, 1)
	b.Blt(9, 2, "emit")
	b.Li(4, mgN*2)
	epilogue(b, 4, 15)

	// smooth(a=r1, n=r2): Gauss-Seidel 3-point smoothing.
	b.Label("smooth")
	b.Li(9, 1) // i
	b.Addi(10, 2, -1)
	b.Label("sm_loop")
	b.Bge(9, 10, "sm_done")
	b.Slli(11, 9, 2)
	b.Add(11, 11, 1) // &a[i]
	b.Lw(12, 11, -4) // a[i-1]
	b.Lw(15, 11, 0)  // a[i]
	b.Add(15, 15, 15)
	b.Add(12, 12, 15)
	b.Lw(15, 11, 4) // a[i+1]
	b.Add(12, 12, 15)
	b.Srai(12, 12, 2)
	b.Sw(12, 11, 0)
	b.Addi(9, 9, 1)
	b.Jump("sm_loop")
	b.Label("sm_done")
	b.Ret()

	// restrict(dst=r1, n=r2, src=r3): dst[i] = (src[2i]+src[2i+1])>>1.
	b.Label("restrict")
	b.Li(9, 0)
	b.Label("rs_loop")
	b.Bge(9, 2, "rs_done")
	b.Slli(11, 9, 3)
	b.Add(11, 11, 3) // &src[2i]
	b.Lw(12, 11, 0)
	b.Lw(15, 11, 4)
	b.Add(12, 12, 15)
	b.Srai(12, 12, 1)
	b.Slli(11, 9, 2)
	b.Add(11, 11, 1)
	b.Sw(12, 11, 0)
	b.Addi(9, 9, 1)
	b.Jump("rs_loop")
	b.Label("rs_done")
	b.Ret()

	// prolong(dst=r1, n=r2, src=r3): n is the SOURCE length;
	// dst[2i] = (dst[2i]+src[i])>>1 and likewise for 2i+1.
	b.Label("prolong")
	b.Li(9, 0)
	b.Label("pl_loop")
	b.Bge(9, 2, "pl_done")
	b.Slli(11, 9, 2)
	b.Add(11, 11, 3)
	b.Lw(12, 11, 0) // src[i]
	b.Slli(11, 9, 3)
	b.Add(11, 11, 1) // &dst[2i]
	b.Lw(15, 11, 0)
	b.Add(15, 15, 12)
	b.Srai(15, 15, 1)
	b.Sw(15, 11, 0)
	b.Lw(15, 11, 4)
	b.Add(15, 15, 12)
	b.Srai(15, 15, 1)
	b.Sw(15, 11, 4)
	b.Addi(9, 9, 1)
	b.Jump("pl_loop")
	b.Label("pl_done")
	b.Ret()

	return b.MustAssemble()
}
