package prog

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"avgi/internal/isa"
)

func TestXorshiftDeterministicNonZero(t *testing.T) {
	a, b := xorshift32(1), xorshift32(1)
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		x, y := a(), b()
		if x != y {
			t.Fatal("same seed diverged")
		}
		if x == 0 {
			t.Fatal("xorshift produced zero (would stick)")
		}
		seen[x] = true
	}
	if len(seen) < 990 {
		t.Errorf("only %d distinct values in 1000", len(seen))
	}
}

func TestRandWordsMasked(t *testing.T) {
	for _, w := range randWords(7, 100, isa.V32) {
		if w>>32 != 0 {
			t.Fatal("V32 word exceeds 32 bits")
		}
	}
}

func TestCRCTableMatchesStdlibPolynomial(t *testing.T) {
	// Spot-check the classic IEEE value: CRC32("123456789") = 0xCBF43926.
	tbl := crcTable()
	crc := uint32(0xFFFFFFFF)
	for _, b := range []byte("123456789") {
		crc = tbl[byte(crc)^b] ^ (crc >> 8)
	}
	if crc^0xFFFFFFFF != 0xCBF43926 {
		t.Errorf("check value %#x", crc^0xFFFFFFFF)
	}
}

func TestHorspoolAgainstNaive(t *testing.T) {
	f := func(textSeed uint32, patOff, patLen uint8) bool {
		text := randBytes(textSeed|1, 300)
		m := int(patLen%12) + 2
		off := int(patOff) % (len(text) - m)
		pat := text[off : off+m]
		got := horspool(text, pat)
		want := uint64(bytes.Index(text, pat))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if horspool([]byte("abc"), []byte("zzz")) != ^uint64(0) {
		t.Error("missing pattern should return all-ones")
	}
}

func TestRjSboxIsPermutation(t *testing.T) {
	s := rjSbox()
	seen := make([]bool, 256)
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate sbox value %d", v)
		}
		seen[v] = true
	}
}

func TestRjShiftIsPermutation(t *testing.T) {
	seen := make([]bool, 16)
	for _, v := range rjShift {
		if seen[v] {
			t.Fatalf("duplicate shift index %d", v)
		}
		seen[v] = true
	}
}

func TestFftRevIsInvolution(t *testing.T) {
	rev := fftRev()
	for i := 0; i < fftN; i++ {
		if int(rev[rev[i]]) != i {
			t.Fatalf("rev not an involution at %d", i)
		}
	}
}

func TestFftTwiddleMagnitudes(t *testing.T) {
	wr, wi := fftTwiddles()
	for k := range wr {
		if wr[k] > 16384 || wr[k] < -16384 || wi[k] > 16384 || wi[k] < -16384 {
			t.Fatalf("twiddle %d out of Q14 range: %d %d", k, wr[k], wi[k])
		}
	}
	if wr[0] != 16384 || wi[0] != 0 {
		t.Errorf("w^0 = (%d, %d)", wr[0], wi[0])
	}
}

func TestQsortRefIsSorted(t *testing.T) {
	out := refQsort(isa.V64)
	prev := uint64(0)
	for i := 0; i < qsN; i++ {
		var v uint64
		for b := 7; b >= 0; b-- {
			v = v<<8 | uint64(out[i*8+b])
		}
		if i > 0 && v < prev {
			t.Fatalf("not sorted at %d", i)
		}
		prev = v
	}
	// And it must be a permutation of the input.
	in := randWords(qsSeed, qsN, isa.V64)
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	var first uint64
	for b := 7; b >= 0; b-- {
		first = first<<8 | uint64(out[b])
	}
	if first != in[0] {
		t.Error("sorted output is not a permutation of the input")
	}
}

func TestDijkstraRefTriangleInequality(t *testing.T) {
	adj := djAdj()
	out := refDijkstra(isa.V64)
	dist := make([]uint64, djV)
	for i := range dist {
		for b := 7; b >= 0; b-- {
			dist[i] = dist[i]<<8 | uint64(out[i*8+b])
		}
	}
	if dist[0] != 0 {
		t.Fatal("source distance not zero")
	}
	for u := 0; u < djV; u++ {
		for v := 0; v < djV; v++ {
			if u == v {
				continue
			}
			if dist[v] > dist[u]+adj[u*djV+v] {
				t.Fatalf("triangle inequality violated: d[%d]=%d > d[%d]+w=%d",
					v, dist[v], u, dist[u]+adj[u*djV+v])
			}
		}
	}
}

func TestMgSmoothPreservesBounds(t *testing.T) {
	f := func(seed uint32) bool {
		r := xorshift32(seed | 1)
		a := make([]int32, 64)
		for i := range a {
			a[i] = int32(r() % 32768)
		}
		mgSmooth(a)
		for _, v := range a {
			if v < 0 || v >= 32768 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlowfishRefInvertibleStructure(t *testing.T) {
	// Feistel ciphertexts must differ from plaintexts and be length-
	// preserving.
	out := refBlowfish(isa.V64)
	if len(out) != bfMsgLen {
		t.Fatalf("ciphertext length %d", len(out))
	}
	msg := randBytes(bfSeedVal^0xDD, bfMsgLen)
	if bytes.Equal(out, msg) {
		t.Error("ciphertext equals plaintext")
	}
}

func TestISRefIsValidRanking(t *testing.T) {
	out := refIS(isa.V64)
	keys := isKeyData()
	ranks := make([]int, len(keys))
	seen := make([]bool, len(keys))
	for i := range keys {
		r := int(out[i*2]) | int(out[i*2+1])<<8
		ranks[i] = r
		if r >= len(keys) || seen[r] {
			t.Fatalf("rank %d invalid or duplicated", r)
		}
		seen[r] = true
	}
	// Ranks must order the keys.
	for i := range keys {
		for j := range keys {
			if keys[i] < keys[j] && ranks[i] > ranks[j] {
				t.Fatalf("ranking inverted for keys %d,%d", keys[i], keys[j])
			}
		}
	}
}
