package prog

import (
	"avgi/internal/asm"
	"avgi/internal/isa"
)

// blowfish encrypts a 3 KiB buffer with a Blowfish-style 16-round Feistel
// network: an 18-entry P-array and four 256-entry S-boxes drive the round
// function F(x) = ((S0[a]+S1[b]) ^ S2[c]) + S3[d] over 32-bit halves.
// Output: the 3 KiB ciphertext — a large-output workload with high ESC
// probability, mirroring the paper's blowfish discussion in Section IV.D.

const (
	bfMsgLen  = 3072
	bfSeedVal = 0xB10F158
)

func init() {
	register(Workload{
		Name:  "blowfish",
		Suite: "mibench",
		Build: buildBlowfish,
		Ref:   refBlowfish,
	})
}

func bfKeys() (p []uint32, s [][]uint32) {
	r := xorshift32(bfSeedVal)
	p = make([]uint32, 18)
	for i := range p {
		p[i] = r()
	}
	s = make([][]uint32, 4)
	for k := range s {
		s[k] = make([]uint32, 256)
		for i := range s[k] {
			s[k][i] = r()
		}
	}
	return
}

func bfF(x uint32, s [][]uint32) uint32 {
	a := x >> 24
	b2 := (x >> 16) & 0xFF
	c := (x >> 8) & 0xFF
	d := x & 0xFF
	return ((s[0][a] + s[1][b2]) ^ s[2][c]) + s[3][d]
}

func refBlowfish(v isa.Variant) []byte {
	msg := randBytes(bfSeedVal^0xDD, bfMsgLen)
	p, s := bfKeys()
	out := make([]byte, bfMsgLen)
	for o := 0; o < bfMsgLen; o += 8 {
		l := uint32(msg[o]) | uint32(msg[o+1])<<8 | uint32(msg[o+2])<<16 | uint32(msg[o+3])<<24
		r := uint32(msg[o+4]) | uint32(msg[o+5])<<8 | uint32(msg[o+6])<<16 | uint32(msg[o+7])<<24
		for i := 0; i < 16; i++ {
			l ^= p[i]
			r ^= bfF(l, s)
			l, r = r, l
		}
		l, r = r, l
		r ^= p[16]
		l ^= p[17]
		out[o] = byte(l)
		out[o+1] = byte(l >> 8)
		out[o+2] = byte(l >> 16)
		out[o+3] = byte(l >> 24)
		out[o+4] = byte(r)
		out[o+5] = byte(r >> 8)
		out[o+6] = byte(r >> 16)
		out[o+7] = byte(r >> 24)
	}
	return out
}

func buildBlowfish(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("blowfish", v)
	msg := b.DataBytes("msg", randBytes(bfSeedVal^0xDD, bfMsgLen))
	b.Align(4)
	p, s := bfKeys()
	pArr := b.DataWords32("p", p)
	sArr := make([]uint64, 4)
	for k := 0; k < 4; k++ {
		sArr[k] = b.DataWords32("", s[k])
	}

	// r1 msg ptr, r2 out ptr, r3 mask32, r4 L, r5 R, r6 round/idx,
	// r7 blocks left, r8 P base, r9..r12,r15 temps. S-box bases are
	// materialised per use from constants (r10).
	b.Li(1, msg)
	b.Li(2, asm.DefaultOutBase)
	b.Li(3, 0xFFFFFFFF)
	b.Li(7, bfMsgLen/8)
	b.Li(8, pArr)

	// F(x in r11) -> r12, clobbers r9, r10, r15.
	F := func() {
		// a = x>>24
		b.Srli(9, 11, 24)
		b.Slli(9, 9, 2)
		b.Li(10, sArr[0])
		b.Add(9, 9, 10)
		b.Lw(12, 9, 0)
		// + S1[(x>>16)&255]
		b.Srli(9, 11, 16)
		b.Andi(9, 9, 0xFF)
		b.Slli(9, 9, 2)
		b.Li(10, sArr[1])
		b.Add(9, 9, 10)
		b.Lw(15, 9, 0)
		b.Add(12, 12, 15)
		// ^ S2[(x>>8)&255]
		b.Srli(9, 11, 8)
		b.Andi(9, 9, 0xFF)
		b.Slli(9, 9, 2)
		b.Li(10, sArr[2])
		b.Add(9, 9, 10)
		b.Lw(15, 9, 0)
		b.Xor(12, 12, 15)
		// + S3[x&255]
		b.Andi(9, 11, 0xFF)
		b.Slli(9, 9, 2)
		b.Li(10, sArr[3])
		b.Add(9, 9, 10)
		b.Lw(15, 9, 0)
		b.Add(12, 12, 15)
		b.And(12, 12, 3)
	}

	b.Label("block")
	b.Lw(4, 1, 0) // L
	b.Lw(5, 1, 4) // R
	b.And(4, 4, 3)
	b.And(5, 5, 3)
	// 16 rounds, unrolled in pairs to avoid the swap.
	for i := 0; i < 16; i += 2 {
		// L ^= P[i]; R ^= F(L)
		b.Lw(9, 8, int32(i*4))
		b.Xor(4, 4, 9)
		b.And(4, 4, 3)
		b.Mov(11, 4)
		F()
		b.Xor(5, 5, 12)
		// (swap) then: R' ^= P[i+1]; L' ^= F(R')
		b.Lw(9, 8, int32((i+1)*4))
		b.Xor(5, 5, 9)
		b.And(5, 5, 3)
		b.Mov(11, 5)
		F()
		b.Xor(4, 4, 12)
	}
	// After 8 unrolled pairs, register r4 holds the reference's r-half
	// and r5 its l-half (the reference's final un-swap). Post-whitening:
	// r ^= P[16], l ^= P[17]; the l-half is stored first.
	b.Lw(9, 8, 16*4)
	b.Xor(4, 4, 9)
	b.Lw(9, 8, 17*4)
	b.Xor(5, 5, 9)
	b.And(4, 4, 3)
	b.And(5, 5, 3)
	b.Sw(5, 2, 0)
	b.Sw(4, 2, 4)

	b.Addi(1, 1, 8)
	b.Addi(2, 2, 8)
	b.Addi(7, 7, -1)
	b.Bne(7, 0, "block")

	b.Li(4, bfMsgLen)
	epilogue(b, 4, 15)
	return b.MustAssemble()
}
