package prog

import (
	"avgi/internal/asm"
	"avgi/internal/isa"
)

// basicmath exercises integer math kernels in the style of MiBench
// automotive/basicmath: Euclid GCDs, Newton integer square roots, cube
// roots by binary search, and a trial-division prime count. All four use
// the multi-cycle divide unit heavily. Output: 89 natural words.

const (
	bmSeed       = 0xBA51C3A7
	bmGCDs       = 32
	bmSqrts      = 32
	bmCbrts      = 24
	bmPrimeLimit = 300
	bmIters      = 20
)

func init() {
	register(Workload{
		Name:  "basicmath",
		Suite: "mibench",
		Build: buildBasicmath,
		Ref:   refBasicmath,
	})
}

func bmInputs() (gcdA, gcdB, sqrtN, cbrtN []uint64) {
	r := xorshift32(bmSeed)
	for i := 0; i < bmGCDs; i++ {
		gcdA = append(gcdA, uint64(r()%(1<<20)+1))
		gcdB = append(gcdB, uint64(r()%(1<<20)+1))
	}
	for i := 0; i < bmSqrts; i++ {
		sqrtN = append(sqrtN, uint64(r()%(1<<28)+1))
	}
	for i := 0; i < bmCbrts; i++ {
		cbrtN = append(cbrtN, uint64(r()%(1<<30)+1))
	}
	return
}

func refBasicmath(v isa.Variant) []byte {
	gcdA, gcdB, sqrtN, cbrtN := bmInputs()
	wb := wordBytes(v)
	var out []byte
	for i := range gcdA {
		a, b := gcdA[i], gcdB[i]
		for b != 0 {
			a, b = b, a%b
		}
		out = putWord(out, a, wb)
	}
	for _, n := range sqrtN {
		x := n
		for k := 0; k < bmIters; k++ {
			x = (x + n/x) / 2
		}
		out = putWord(out, x, wb)
	}
	for _, n := range cbrtN {
		lo, hi := uint64(0), uint64(1<<10)
		for k := 0; k < bmIters; k++ {
			mid := (lo + hi) / 2
			if mid*mid*mid <= n {
				lo = mid
			} else {
				hi = mid
			}
		}
		out = putWord(out, lo, wb)
	}
	count := uint64(0)
	for i := 2; i < bmPrimeLimit; i++ {
		prime := true
		for j := 2; j*j <= i; j++ {
			if i%j == 0 {
				prime = false
				break
			}
		}
		if prime {
			count++
		}
	}
	out = putWord(out, count, wb)
	return out
}

func buildBasicmath(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("basicmath", v)
	gcdA, gcdB, sqrtN, cbrtN := bmInputs()
	aArr := b.DataWords("gcdA", gcdA)
	bArr := b.DataWords("gcdB", gcdB)
	sArr := b.DataWords("sqrtN", sqrtN)
	cArr := b.DataWords("cbrtN", cbrtN)
	sh := b.WordShift()
	wb := int32(v.WordBytes())

	// r1 out ptr, r2 index, r3 limit, r4..r12,r15 temps.
	b.Li(1, asm.DefaultOutBase)

	// GCDs: a,b = b, a%b until b == 0 (unsigned via REM on positive
	// inputs).
	b.Li(2, 0)
	b.Li(3, bmGCDs)
	b.Label("gcd")
	b.Slli(9, 2, sh)
	b.Li(10, aArr)
	b.Add(10, 10, 9)
	b.LoadW(4, 10, 0)
	b.Li(10, bArr)
	b.Add(10, 10, 9)
	b.LoadW(5, 10, 0)
	b.Label("euclid")
	b.Beq(5, 0, "gcddone")
	b.Rem(6, 4, 5)
	b.Mov(4, 5)
	b.Mov(5, 6)
	b.Jump("euclid")
	b.Label("gcddone")
	b.StoreW(4, 1, 0)
	b.Addi(1, 1, wb)
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "gcd")

	// Integer square roots by a fixed Newton iteration count.
	b.Li(2, 0)
	b.Li(3, bmSqrts)
	b.Label("isq")
	b.Slli(9, 2, sh)
	b.Li(10, sArr)
	b.Add(10, 10, 9)
	b.LoadW(4, 10, 0) // n
	b.Mov(5, 4)       // x = n
	b.Li(6, bmIters)
	b.Label("newton")
	b.Div(7, 4, 5)
	b.Add(7, 7, 5)
	b.Srli(5, 7, 1)
	b.Addi(6, 6, -1)
	b.Bne(6, 0, "newton")
	b.StoreW(5, 1, 0)
	b.Addi(1, 1, wb)
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "isq")

	// Cube roots by binary search over a fixed iteration count.
	b.Li(2, 0)
	b.Li(3, bmCbrts)
	b.Label("cbr")
	b.Slli(9, 2, sh)
	b.Li(10, cArr)
	b.Add(10, 10, 9)
	b.LoadW(4, 10, 0) // n
	b.Li(5, 0)        // lo
	b.Li(6, 1<<10)    // hi
	b.Li(7, bmIters)
	b.Label("bisect")
	b.Add(8, 5, 6)
	b.Srli(8, 8, 1) // mid
	b.Mul(9, 8, 8)
	b.Mul(9, 9, 8) // mid^3
	b.Bltu(4, 9, "chigh")
	b.Mov(5, 8) // mid^3 <= n: lo = mid
	b.Jump("cnext")
	b.Label("chigh")
	b.Mov(6, 8)
	b.Label("cnext")
	b.Addi(7, 7, -1)
	b.Bne(7, 0, "bisect")
	b.StoreW(5, 1, 0)
	b.Addi(1, 1, wb)
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "cbr")

	// Prime count below bmPrimeLimit by trial division.
	b.Li(4, 0) // count
	b.Li(2, 2) // i
	b.Li(3, bmPrimeLimit)
	b.Label("pi")
	b.Li(5, 2) // j
	b.Label("pj")
	b.Mul(9, 5, 5)
	b.Blt(2, 9, "isprime") // j*j > i
	b.Rem(9, 2, 5)
	b.Beq(9, 0, "notprime")
	b.Addi(5, 5, 1)
	b.Jump("pj")
	b.Label("isprime")
	b.Addi(4, 4, 1)
	b.Label("notprime")
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "pi")
	b.StoreW(4, 1, 0)
	b.Addi(1, 1, wb)

	b.Li(4, uint64(bmGCDs+bmSqrts+bmCbrts+1)*uint64(wb))
	epilogue(b, 4, 15)
	return b.MustAssemble()
}
