package prog

import (
	"avgi/internal/asm"
	"avgi/internal/isa"
)

// stringsearch finds the first occurrence of eight patterns in a 2 KiB text
// using the Boyer-Moore-Horspool algorithm (bad-character shift table),
// mirroring the MiBench office/stringsearch kernel. Six patterns are drawn
// from the text (guaranteed hits); two are random (expected misses).
// Output: eight natural-width match positions (NOT-FOUND encodes as the
// all-ones word).

const (
	ssTextLen  = 2048
	ssSeed     = 0x57A1165E
	ssPatterns = 8
	ssPatLen   = 10
)

func init() {
	register(Workload{
		Name:  "stringsearch",
		Suite: "mibench",
		Build: buildStringsearch,
		Ref:   refStringsearch,
	})
}

func ssText() []byte { return randBytes(ssSeed, ssTextLen) }

// ssPats returns the eight fixed-length patterns.
func ssPats() [][]byte {
	text := ssText()
	r := xorshift32(ssSeed ^ 0xFACE)
	pats := make([][]byte, ssPatterns)
	for i := 0; i < 6; i++ {
		off := int(r()) % (ssTextLen - ssPatLen)
		pats[i] = append([]byte(nil), text[off:off+ssPatLen]...)
	}
	for i := 6; i < ssPatterns; i++ {
		pats[i] = randBytes(r(), ssPatLen)
	}
	return pats
}

// horspool mirrors the machine algorithm bit for bit.
func horspool(text, pat []byte) uint64 {
	m := len(pat)
	var tbl [256]int
	for i := range tbl {
		tbl[i] = m
	}
	for i := 0; i < m-1; i++ {
		tbl[pat[i]] = m - 1 - i
	}
	pos := 0
	for pos+m <= len(text) {
		j := m - 1
		for j >= 0 && text[pos+j] == pat[j] {
			j--
		}
		if j < 0 {
			return uint64(pos)
		}
		pos += tbl[text[pos+m-1]]
	}
	return ^uint64(0)
}

func refStringsearch(v isa.Variant) []byte {
	text := ssText()
	wb := wordBytes(v)
	var out []byte
	for _, p := range ssPats() {
		out = putWord(out, horspool(text, p)&v.Mask(), wb)
	}
	return out
}

func buildStringsearch(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("stringsearch", v)
	text := b.DataBytes("text", ssText())
	var patAddrs []uint64
	for i, p := range ssPats() {
		patAddrs = append(patAddrs, b.DataBytes("", p))
		_ = i
	}
	b.Align(8)
	pats := b.DataWords("pats", patAddrs)
	tbl := b.Reserve("tbl", 256)
	wb := int32(v.WordBytes())
	sh := b.WordShift()

	// r1 text, r2 pattern ptr, r3 table, r4 pos, r5 pattern index,
	// r6 out ptr, r7 m-1, r8..r12,r15 temps.
	b.Li(1, text)
	b.Li(3, tbl)
	b.Li(6, asm.DefaultOutBase)
	b.Li(5, 0)

	b.Label("patloop")
	b.Li(9, pats)
	b.Slli(10, 5, sh)
	b.Add(9, 9, 10)
	b.LoadW(2, 9, 0) // pattern address

	// Build the bad-character table: tbl[c]=m, then tbl[pat[i]]=m-1-i
	// for i<m-1.
	b.Li(9, 0)
	b.Li(10, ssPatLen)
	b.Label("tfill")
	b.Add(11, 3, 9)
	b.Sb(10, 11, 0)
	b.Addi(9, 9, 1)
	b.Li(11, 256)
	b.Blt(9, 11, "tfill")
	b.Li(9, 0)
	b.Li(7, ssPatLen-1)
	b.Label("tpat")
	b.Add(11, 2, 9)
	b.Lbu(11, 11, 0)
	b.Add(11, 11, 3)
	b.Sub(12, 7, 9) // m-1-i
	b.Sb(12, 11, 0)
	b.Addi(9, 9, 1)
	b.Blt(9, 7, "tpat")

	// Horspool scan.
	b.Li(4, 0) // pos
	b.Label("scan")
	b.Li(9, ssTextLen-ssPatLen)
	b.Blt(9, 4, "notfound")
	// Compare backwards from j = m-1.
	b.Mov(10, 7) // j
	b.Label("cmp")
	b.Blt(10, 0, "found")
	b.Add(11, 4, 10)
	b.Add(11, 11, 1)
	b.Lbu(11, 11, 0) // text[pos+j]
	b.Add(12, 2, 10)
	b.Lbu(12, 12, 0) // pat[j]
	b.Bne(11, 12, "shift")
	b.Addi(10, 10, -1)
	b.Jump("cmp")
	b.Label("shift")
	b.Add(11, 4, 7)
	b.Add(11, 11, 1)
	b.Lbu(11, 11, 0) // text[pos+m-1]
	b.Add(11, 11, 3)
	b.Lbu(11, 11, 0) // tbl lookup
	b.Add(4, 4, 11)
	b.Jump("scan")

	b.Label("notfound")
	b.Li(4, ^uint64(0))
	b.Label("found")
	b.StoreW(4, 6, 0)
	b.Addi(6, 6, wb)
	b.Addi(5, 5, 1)
	b.Li(9, ssPatterns)
	b.Blt(5, 9, "patloop")

	b.Li(4, uint64(ssPatterns)*uint64(wb))
	epilogue(b, 4, 15)
	return b.MustAssemble()
}
