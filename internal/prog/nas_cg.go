package prog

import (
	"avgi/internal/asm"
	"avgi/internal/isa"
)

// nas-cg is a sparse iterative kernel in the style of NAS CG: twelve
// fixed-point power iterations of y = A·x over a CSR matrix (64 rows, 8
// nonzeros per row) with a shift normalisation between iterations. Output:
// the final vector plus a checksum (65 natural words).

const (
	cgRows  = 64
	cgNNZ   = 8
	cgIters = 12
	cgShift = 10
	cgSeed  = 0xC6C6C6C6
)

func init() {
	register(Workload{
		Name:  "cg",
		Suite: "nas",
		Build: buildCG,
		Ref:   refCG,
	})
}

func cgData() (cols []uint16, vals, x0 []uint64) {
	r := xorshift32(cgSeed)
	cols = make([]uint16, cgRows*cgNNZ)
	vals = make([]uint64, cgRows*cgNNZ)
	for i := range cols {
		cols[i] = uint16(r() % cgRows)
		vals[i] = uint64(r()%255 + 1)
	}
	x0 = make([]uint64, cgRows)
	for i := range x0 {
		x0[i] = uint64(r()%255 + 1)
	}
	return
}

func refCG(v isa.Variant) []byte {
	cols, vals, x := cgData()
	y := make([]uint64, cgRows)
	mask := v.Mask()
	var checksum uint64
	for it := 0; it < cgIters; it++ {
		for i := 0; i < cgRows; i++ {
			var sum uint64
			for k := 0; k < cgNNZ; k++ {
				idx := i*cgNNZ + k
				sum = (sum + vals[idx]*x[cols[idx]]) & mask
			}
			y[i] = sum
		}
		checksum = 0
		for i := 0; i < cgRows; i++ {
			checksum = (checksum + y[i]) & mask
			x[i] = y[i] >> cgShift
		}
	}
	wb := wordBytes(v)
	var out []byte
	for _, xi := range x {
		out = putWord(out, xi, wb)
	}
	out = putWord(out, checksum, wb)
	return out
}

func buildCG(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("cg", v)
	cols, vals, x0 := cgData()
	colRaw := make([]byte, len(cols)*2)
	for i, c := range cols {
		colRaw[i*2] = byte(c)
		colRaw[i*2+1] = byte(c >> 8)
	}
	colArr := b.DataBytes("cols", colRaw)
	b.Align(8)
	valArr := b.DataWords("vals", vals)
	xArr := b.DataWords("x", x0)
	yArr := b.Reserve("y", cgRows*int(v.WordBytes()))
	sh := b.WordShift()
	wb := int32(v.WordBytes())

	// r1 cols, r2 vals, r3 x, r4 y, r5 iter, r6 row, r7 k, r8 sum,
	// r9..r12,r15 temps, r13 checksum.
	b.Li(1, colArr)
	b.Li(2, valArr)
	b.Li(3, xArr)
	b.Li(4, yArr)
	b.Li(5, cgIters)

	b.Label("iter")
	b.Li(6, 0)
	b.Label("row")
	b.Li(8, 0) // sum
	b.Li(7, 0) // k
	b.Label("nnz")
	// idx = row*NNZ + k
	b.Slli(9, 6, 3) // NNZ = 8
	b.Add(9, 9, 7)
	b.Slli(10, 9, 1)
	b.Add(10, 10, 1)
	b.Lhu(10, 10, 0) // col
	b.Slli(10, 10, sh)
	b.Add(10, 10, 3)
	b.LoadW(10, 10, 0) // x[col]
	b.Slli(11, 9, sh)
	b.Add(11, 11, 2)
	b.LoadW(11, 11, 0) // vals[idx]
	b.Mul(10, 10, 11)
	b.Add(8, 8, 10)
	b.Addi(7, 7, 1)
	b.Li(9, cgNNZ)
	b.Blt(7, 9, "nnz")
	// y[row] = sum
	b.Slli(9, 6, sh)
	b.Add(9, 9, 4)
	b.StoreW(8, 9, 0)
	b.Addi(6, 6, 1)
	b.Li(9, cgRows)
	b.Blt(6, 9, "row")
	// checksum and normalise: x[i] = y[i] >> shift.
	b.Li(13, 0)
	b.Li(6, 0)
	b.Label("norm")
	b.Slli(9, 6, sh)
	b.Add(10, 9, 4)
	b.LoadW(11, 10, 0)
	b.Add(13, 13, 11)
	b.Srli(11, 11, cgShift)
	b.Add(10, 9, 3)
	b.StoreW(11, 10, 0)
	b.Addi(6, 6, 1)
	b.Li(9, cgRows)
	b.Blt(6, 9, "norm")
	b.Addi(5, 5, -1)
	b.Bne(5, 0, "iter")

	// Emit x then the checksum.
	b.Li(6, 0)
	b.Li(11, asm.DefaultOutBase)
	b.Label("emit")
	b.Slli(9, 6, sh)
	b.Add(10, 9, 3)
	b.LoadW(10, 10, 0)
	b.Add(9, 9, 11)
	b.StoreW(10, 9, 0)
	b.Addi(6, 6, 1)
	b.Li(9, cgRows)
	b.Blt(6, 9, "emit")
	b.Slli(9, 6, sh)
	b.Add(9, 9, 11)
	b.StoreW(13, 9, 0)

	b.Li(4, uint64(cgRows+1)*uint64(wb))
	epilogue(b, 4, 15)
	return b.MustAssemble()
}
