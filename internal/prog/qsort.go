package prog

import (
	"avgi/internal/asm"
	"avgi/internal/isa"
)

// qsort sorts 512 random natural-width words in place in the output region
// using shellsort with the Knuth gap sequence (the MiBench qsort slot; see
// DESIGN.md for the substitution note). The full sorted array is the
// output — one of the large-output workloads that feed the ESC model.

const (
	qsN    = 512
	qsSeed = 0x9507AB1D
)

var qsGaps = []uint64{121, 40, 13, 4, 1}

func init() {
	register(Workload{
		Name:  "qsort",
		Suite: "mibench",
		Build: buildQsort,
		Ref:   refQsort,
	})
}

func refQsort(v isa.Variant) []byte {
	a := randWords(qsSeed, qsN, v)
	// Mirror the machine algorithm exactly (unsigned shellsort).
	for _, gap := range qsGaps {
		g := int(gap)
		for i := g; i < qsN; i++ {
			val := a[i]
			j := i
			for j >= g && a[j-g] > val {
				a[j] = a[j-g]
				j -= g
			}
			a[j] = val
		}
	}
	wb := wordBytes(v)
	var out []byte
	for _, x := range a {
		out = putWord(out, x, wb)
	}
	return out
}

func buildQsort(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("qsort", v)
	src := b.DataWords("src", randWords(qsSeed, qsN, v))
	gaps := b.DataWords("gaps", qsGaps)
	sh := b.WordShift()
	wb := int32(v.WordBytes())

	// r1 array base (output region), r2 gap, r3 i, r4 j, r5 val,
	// r6 n(bytes), r7 gap bytes, r8 gap index, r9..r12,r15 temps.
	// Copy the input into the output region, then sort there.
	b.Li(1, asm.DefaultOutBase)
	b.Li(9, src)
	b.Li(10, 0)
	b.Li(11, qsN)
	b.Label("copy")
	b.Slli(12, 10, sh)
	b.Add(15, 12, 9)
	b.LoadW(15, 15, 0)
	b.Add(12, 12, 1)
	b.StoreW(15, 12, 0)
	b.Addi(10, 10, 1)
	b.Blt(10, 11, "copy")

	b.Li(6, uint64(qsN)*uint64(wb)) // n in bytes
	b.Li(8, 0)                      // gap index
	b.Label("gaploop")
	b.Li(9, gaps)
	b.Slli(10, 8, sh)
	b.Add(9, 9, 10)
	b.LoadW(2, 9, 0) // gap (elements)
	b.Slli(7, 2, sh) // gap in bytes
	b.Mov(3, 7)      // i = gap (bytes)
	b.Label("insloop")
	b.Bge(3, 6, "insend")
	b.Add(9, 1, 3)
	b.LoadW(5, 9, 0) // val = a[i]
	b.Mov(4, 3)      // j = i
	b.Label("shift")
	b.Blt(4, 7, "place") // j < gap
	b.Sub(9, 4, 7)
	b.Add(10, 1, 9)
	b.LoadW(11, 10, 0) // a[j-gap]
	b.Bgeu(5, 11, "place")
	b.Add(12, 1, 4)
	b.StoreW(11, 12, 0) // a[j] = a[j-gap]
	b.Mov(4, 9)         // j -= gap
	b.Jump("shift")
	b.Label("place")
	b.Add(9, 1, 4)
	b.StoreW(5, 9, 0) // a[j] = val
	b.Addi(3, 3, wb)  // i++
	b.Jump("insloop")
	b.Label("insend")
	b.Addi(8, 8, 1)
	b.Li(9, int64Const(len(qsGaps)))
	b.Blt(8, 9, "gaploop")

	b.Li(4, uint64(qsN)*uint64(wb))
	epilogue(b, 4, 15)
	return b.MustAssemble()
}

func int64Const(n int) uint64 { return uint64(n) }
