// Package prog defines the 13 workloads of the AVGI study: ten
// MiBench-like kernels (sha, bitcount, crc32, qsort, dijkstra,
// stringsearch, blowfish, rijndael, fft, basicmath) and three NAS-like
// kernels (is, cg, mg), written against the asm builder so one definition
// assembles for both ISA variants.
//
// Each workload carries a Go reference model that computes the exact
// expected output bytes; the test suite runs every workload end-to-end on
// both machine models and compares the DMA-drained output against the
// reference. Output sizes deliberately span the paper's range: under 1 KB
// for sha and bitcount (zero ESC probability) up to several KB for
// blowfish, rijndael, qsort, is and mg (high ESC probability), scaled with
// the machine geometry per DESIGN.md §5.
package prog

import (
	"fmt"
	"sort"

	"avgi/internal/asm"
	"avgi/internal/isa"
)

// Workload is one benchmark: an assembler recipe plus a reference model.
type Workload struct {
	Name string
	// Suite is "mibench" or "nas".
	Suite string
	// Build assembles the workload for the given ISA variant.
	Build func(v isa.Variant) *asm.Program
	// Ref returns the expected output bytes for the given variant.
	Ref func(v isa.Variant) []byte
}

var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("prog: duplicate workload " + w.Name)
	}
	registry[w.Name] = w
}

// All returns the 13 workloads sorted by name.
func All() []Workload {
	ws := make([]Workload, 0, len(registry))
	for _, w := range registry {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Name < ws[j].Name })
	return ws
}

// MiBench returns the ten MiBench-like workloads, sorted by name.
func MiBench() []Workload {
	var ws []Workload
	for _, w := range All() {
		if w.Suite == "mibench" {
			ws = append(ws, w)
		}
	}
	return ws
}

// NAS returns the three NAS-like workloads, sorted by name.
func NAS() []Workload {
	var ws []Workload
	for _, w := range All() {
		if w.Suite == "nas" {
			ws = append(ws, w)
		}
	}
	return ws
}

// ByName looks up one workload.
func ByName(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("prog: unknown workload %q", name)
	}
	return w, nil
}

// Names returns all workload names sorted.
func Names() []string {
	var ns []string
	for _, w := range All() {
		ns = append(ns, w.Name)
	}
	return ns
}

// xorshift32 is the deterministic PRNG used to generate workload inputs.
// Inputs are baked into the data section at assembly time, so the machine
// never executes nondeterministic code.
func xorshift32(seed uint32) func() uint32 {
	x := seed
	return func() uint32 {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		return x
	}
}

// randWords generates n word-sized values (masked to the variant width)
// from seed.
func randWords(seed uint32, n int, v isa.Variant) []uint64 {
	r := xorshift32(seed)
	out := make([]uint64, n)
	for i := range out {
		w := uint64(r())<<32 | uint64(r())
		out[i] = w & v.Mask()
	}
	return out
}

// randBytes generates n bytes from seed.
func randBytes(seed uint32, n int) []byte {
	r := xorshift32(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r())
	}
	return out
}

// epilogue stores the output length (already in rLen) to the output-length
// cell and halts. rTmp is clobbered.
func epilogue(b *asm.Builder, rLen, rTmp uint8) {
	b.Li(rTmp, asm.DefaultOutLenAddr)
	b.StoreW(rLen, rTmp, 0)
	b.Halt()
}

// putWord appends a natural-width little-endian word to out.
func putWord(out []byte, v uint64, width int) []byte {
	for i := 0; i < width; i++ {
		out = append(out, byte(v>>(8*i)))
	}
	return out
}

// wordBytes returns the variant's natural word size in bytes.
func wordBytes(v isa.Variant) int { return int(v.WordBytes()) }
