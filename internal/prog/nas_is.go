package prog

import (
	"avgi/internal/asm"
	"avgi/internal/isa"
)

// nas-is is an Integer Sort kernel in the style of NAS IS: counting sort
// (bucket histogram, exclusive prefix sum, rank assignment) over 1536 keys
// in [0, 512). Output: the rank of every key as 16-bit values (3 KiB) — a
// large-output, memory-bound workload.

const (
	isKeys    = 1536
	isBuckets = 512
	isSeed    = 0x15A5B33F
)

func init() {
	register(Workload{
		Name:  "is",
		Suite: "nas",
		Build: buildIS,
		Ref:   refIS,
	})
}

func isKeyData() []uint16 {
	r := xorshift32(isSeed)
	keys := make([]uint16, isKeys)
	for i := range keys {
		keys[i] = uint16(r() % isBuckets)
	}
	return keys
}

func refIS(v isa.Variant) []byte {
	keys := isKeyData()
	counts := make([]uint32, isBuckets)
	for _, k := range keys {
		counts[k]++
	}
	sum := uint32(0)
	for i := range counts {
		c := counts[i]
		counts[i] = sum
		sum += c
	}
	out := make([]byte, 0, isKeys*2)
	for _, k := range keys {
		rank := counts[k]
		counts[k]++
		out = append(out, byte(rank), byte(rank>>8))
	}
	return out
}

func buildIS(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("is", v)
	keys := isKeyData()
	raw := make([]byte, isKeys*2)
	for i, k := range keys {
		raw[i*2] = byte(k)
		raw[i*2+1] = byte(k >> 8)
	}
	keyArr := b.DataBytes("keys", raw)
	b.Align(4)
	counts := b.Reserve("counts", isBuckets*4)

	// r1 keys, r2 counts, r3 out, r4 i, r5 limit, r9..r12,r15 temps.
	b.Li(1, keyArr)
	b.Li(2, counts)
	b.Li(3, asm.DefaultOutBase)

	// Histogram.
	b.Li(4, 0)
	b.Li(5, isKeys)
	b.Label("hist")
	b.Slli(9, 4, 1)
	b.Add(9, 9, 1)
	b.Lhu(9, 9, 0) // key
	b.Slli(9, 9, 2)
	b.Add(9, 9, 2)
	b.Lw(10, 9, 0)
	b.Addi(10, 10, 1)
	b.Sw(10, 9, 0)
	b.Addi(4, 4, 1)
	b.Blt(4, 5, "hist")

	// Exclusive prefix sum.
	b.Li(4, 0)
	b.Li(5, isBuckets)
	b.Li(6, 0) // running sum
	b.Label("scan")
	b.Slli(9, 4, 2)
	b.Add(9, 9, 2)
	b.Lw(10, 9, 0)
	b.Sw(6, 9, 0)
	b.Add(6, 6, 10)
	b.Addi(4, 4, 1)
	b.Blt(4, 5, "scan")

	// Rank assignment.
	b.Li(4, 0)
	b.Li(5, isKeys)
	b.Label("rank")
	b.Slli(9, 4, 1)
	b.Add(9, 9, 1)
	b.Lhu(9, 9, 0) // key
	b.Slli(9, 9, 2)
	b.Add(9, 9, 2)
	b.Lw(10, 9, 0) // rank
	b.Addi(11, 10, 1)
	b.Sw(11, 9, 0)
	b.Slli(12, 4, 1)
	b.Add(12, 12, 3)
	b.Sh(10, 12, 0)
	b.Addi(4, 4, 1)
	b.Blt(4, 5, "rank")

	b.Li(4, isKeys*2)
	epilogue(b, 4, 15)
	return b.MustAssemble()
}
