package prog

import (
	"math/bits"

	"avgi/internal/asm"
	"avgi/internal/isa"
)

// bitcount counts set bits in an array of random words with three methods
// (Kernighan clearing, nibble table lookup, shift-and-add), mirroring the
// MiBench bitcount kernel's multi-algorithm structure. Output: four natural
// words (three per-method totals plus their sum) — a sub-100-byte output,
// one of the paper's "zero ESC probability" workloads.

const bcWords = 128
const bcSeed = 0xB17C0047

var bcNibbleTable = []byte{0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4}

func init() {
	register(Workload{
		Name:  "bitcount",
		Suite: "mibench",
		Build: buildBitcount,
		Ref:   refBitcount,
	})
}

func buildBitcount(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("bitcount", v)
	arr := b.DataWords("arr", randWords(bcSeed, bcWords, v))
	tbl := b.DataBytes("nibbles", bcNibbleTable)
	sh := b.WordShift()
	wb := int32(v.WordBytes())

	b.Li(1, arr)
	b.Li(10, tbl)
	b.Li(3, bcWords)
	b.Li(5, 0) // Kernighan total
	b.Li(6, 0) // table total
	b.Li(7, 0) // shift total
	b.Li(2, 0) // index

	b.Label("loop")
	b.Slli(15, 2, sh)
	b.Add(15, 15, 1)
	b.LoadW(4, 15, 0)

	// Method 1: Kernighan — clear lowest set bit until zero.
	b.Mov(8, 4)
	b.Label("k")
	b.Beq(8, 0, "kend")
	b.Addi(9, 8, -1)
	b.And(8, 8, 9)
	b.Addi(5, 5, 1)
	b.Jump("k")
	b.Label("kend")

	// Method 2: nibble-table lookup.
	b.Mov(8, 4)
	b.Label("n")
	b.Beq(8, 0, "nend")
	b.Andi(9, 8, 15)
	b.Add(9, 9, 10)
	b.Lbu(9, 9, 0)
	b.Add(6, 6, 9)
	b.Srli(8, 8, 4)
	b.Jump("n")
	b.Label("nend")

	// Method 3: shift-and-add.
	b.Mov(8, 4)
	b.Label("s")
	b.Beq(8, 0, "send")
	b.Andi(9, 8, 1)
	b.Add(7, 7, 9)
	b.Srli(8, 8, 1)
	b.Jump("s")
	b.Label("send")

	b.Addi(2, 2, 1)
	b.Blt(2, 3, "loop")

	b.Li(11, asm.DefaultOutBase)
	b.StoreW(5, 11, 0)
	b.StoreW(6, 11, wb)
	b.StoreW(7, 11, 2*wb)
	b.Add(12, 5, 6)
	b.Add(12, 12, 7)
	b.StoreW(12, 11, 3*wb)
	b.Li(4, uint64(4*wb))
	epilogue(b, 4, 15)
	return b.MustAssemble()
}

func refBitcount(v isa.Variant) []byte {
	words := randWords(bcSeed, bcWords, v)
	var total uint64
	for _, w := range words {
		total += uint64(bits.OnesCount64(w))
	}
	wb := wordBytes(v)
	var out []byte
	mask := v.Mask()
	// All three methods count the same population; totals are equal.
	out = putWord(out, total&mask, wb)
	out = putWord(out, total&mask, wb)
	out = putWord(out, total&mask, wb)
	out = putWord(out, (3*total)&mask, wb)
	return out
}
