package prog

import (
	"bytes"
	"testing"

	"avgi/internal/cpu"
	"avgi/internal/isa"
)

func machineFor(v isa.Variant) cpu.Config {
	if v == isa.V32 {
		return cpu.ConfigA15()
	}
	return cpu.ConfigA72()
}

// TestWorkloadsEndToEnd runs every registered workload on both machine
// models and compares the DMA-drained output with the Go reference model.
func TestWorkloadsEndToEnd(t *testing.T) {
	for _, w := range All() {
		for _, v := range []isa.Variant{isa.V64, isa.V32} {
			w, v := w, v
			t.Run(w.Name+"/"+v.String(), func(t *testing.T) {
				t.Parallel()
				p := w.Build(v)
				m := cpu.New(machineFor(v), p)
				res := m.Run(cpu.RunOptions{MaxCycles: 20_000_000})
				if res.Status != cpu.StatusHalted {
					t.Fatalf("status %v (crash %v) after %d cycles, %d commits",
						res.Status, res.Crash, res.Cycles, res.Commits)
				}
				want := w.Ref(v)
				if !bytes.Equal(res.Output, want) {
					n := len(res.Output)
					if len(want) < n {
						n = len(want)
					}
					diffAt := -1
					for i := 0; i < n; i++ {
						if res.Output[i] != want[i] {
							diffAt = i
							break
						}
					}
					t.Fatalf("output mismatch: got %d bytes want %d, first diff at %d",
						len(res.Output), len(want), diffAt)
				}
				t.Logf("%s/%s: %d cycles, %d commits, IPC %.2f, output %d bytes",
					w.Name, v, res.Cycles, res.Commits,
					float64(res.Commits)/float64(res.Cycles), len(res.Output))
			})
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("no workloads registered")
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate %q", w.Name)
		}
		seen[w.Name] = true
		if w.Suite != "mibench" && w.Suite != "nas" {
			t.Errorf("%s: bad suite %q", w.Name, w.Suite)
		}
		if w.Build == nil || w.Ref == nil {
			t.Errorf("%s: nil Build/Ref", w.Name)
		}
	}
	if _, err := ByName("bitcount"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown workload")
	}
	if len(Names()) != len(all) {
		t.Error("Names length mismatch")
	}
	if len(MiBench())+len(NAS()) != len(all) {
		t.Error("suite partition broken")
	}
}

func TestOutputSizeSpread(t *testing.T) {
	// The ESC model depends on output sizes spanning small to large.
	if len(All()) < 13 {
		t.Skip("full workload set not yet registered")
	}
	var small, large int
	for _, w := range All() {
		n := len(w.Ref(isa.V64))
		if n == 0 {
			t.Errorf("%s: empty output", w.Name)
		}
		if n <= 128 {
			small++
		}
		if n >= 2048 {
			large++
		}
	}
	if small < 2 {
		t.Errorf("need at least 2 small-output workloads, have %d", small)
	}
	if large < 3 {
		t.Errorf("need at least 3 large-output workloads, have %d", large)
	}
}

func TestDeterministicBuilds(t *testing.T) {
	for _, w := range All() {
		a := w.Build(isa.V64)
		b := w.Build(isa.V64)
		if len(a.Text) != len(b.Text) {
			t.Errorf("%s: nondeterministic text", w.Name)
			continue
		}
		for i := range a.Text {
			if a.Text[i] != b.Text[i] {
				t.Errorf("%s: text differs at %d", w.Name, i)
				break
			}
		}
		if !bytes.Equal(a.Data, b.Data) {
			t.Errorf("%s: nondeterministic data", w.Name)
		}
	}
}
