package prog

import (
	"math"

	"avgi/internal/asm"
	"avgi/internal/isa"
)

// fft runs an in-place iterative radix-2 FFT over 256 complex points in
// Q14 fixed-point arithmetic with per-stage scaling, as in the MiBench
// telecomm FFT. Twiddle factors and the bit-reversal permutation are baked
// into the data section. Output: the full spectrum (256 re + 256 im 32-bit
// words, 2 KiB) — a medium/large-output workload.

const (
	fftN    = 256
	fftLogN = 8
	fftSeed = 0xFF7A
)

func init() {
	register(Workload{
		Name:  "fft",
		Suite: "mibench",
		Build: buildFFT,
		Ref:   refFFT,
	})
}

// fftInput generates the random Q14 input samples in [-8192, 8191].
func fftInput() (re, im []int32) {
	r := xorshift32(fftSeed)
	re = make([]int32, fftN)
	im = make([]int32, fftN)
	for i := 0; i < fftN; i++ {
		re[i] = int32(r()%16384) - 8192
		im[i] = int32(r()%16384) - 8192
	}
	return
}

// fftTwiddles returns the Q14 twiddle factor tables for k = 0..N/2-1.
func fftTwiddles() (wr, wi []int32) {
	wr = make([]int32, fftN/2)
	wi = make([]int32, fftN/2)
	for k := 0; k < fftN/2; k++ {
		ang := -2 * math.Pi * float64(k) / fftN
		wr[k] = int32(math.Round(math.Cos(ang) * 16384))
		wi[k] = int32(math.Round(math.Sin(ang) * 16384))
	}
	return
}

// fftRev returns the bit-reversal permutation table.
func fftRev() []byte {
	rev := make([]byte, fftN)
	for i := 0; i < fftN; i++ {
		r := 0
		for b := 0; b < fftLogN; b++ {
			r = r<<1 | (i>>b)&1
		}
		rev[i] = byte(r)
	}
	return rev
}

// fftRun mirrors the machine algorithm exactly in int32 arithmetic.
func fftRun(re, im []int32) {
	rev := fftRev()
	for i := 0; i < fftN; i++ {
		j := int(rev[i])
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	twr, twi := fftTwiddles()
	for length := 2; length <= fftN; length <<= 1 {
		half := length / 2
		step := fftN / length
		for i := 0; i < fftN; i += length {
			for j := 0; j < half; j++ {
				k := j * step
				xr, xi := re[i+j+half], im[i+j+half]
				wr, wi := twr[k], twi[k]
				tr := (wr*xr - wi*xi) >> 14
				ti := (wr*xi + wi*xr) >> 14
				ur, ui := re[i+j], im[i+j]
				re[i+j] = (ur + tr) >> 1
				im[i+j] = (ui + ti) >> 1
				re[i+j+half] = (ur - tr) >> 1
				im[i+j+half] = (ui - ti) >> 1
			}
		}
	}
}

func refFFT(v isa.Variant) []byte {
	re, im := fftInput()
	fftRun(re, im)
	var out []byte
	for _, x := range re {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	for _, x := range im {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}

func i32words(xs []int32) []uint32 {
	out := make([]uint32, len(xs))
	for i, x := range xs {
		out[i] = uint32(x)
	}
	return out
}

func buildFFT(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("fft", v)
	reIn, imIn := fftInput()
	twrV, twiV := fftTwiddles()
	re := b.DataWords32("re", i32words(reIn))
	im := b.DataWords32("im", i32words(imIn))
	twr := b.DataWords32("twr", i32words(twrV))
	twi := b.DataWords32("twi", i32words(twiV))
	rev := b.DataBytes("rev", fftRev())

	// Register plan: r1 re, r2 im, r3 twr, r4 twi, r5 len (elements),
	// r6 step bytes, r7 i (elements), r8 half bytes, r13 cb (byte offset
	// of the upper butterfly input), r14 twiddle byte offset (no calls,
	// no stack: SP is repurposed), r9..r12,r15 temps.
	b.Li(1, re)
	b.Li(2, im)
	b.Li(3, twr)
	b.Li(4, twi)

	// Bit-reversal permutation: swap when rev[i] > i.
	b.Li(7, 0)
	b.Label("rv")
	b.Li(9, rev)
	b.Add(9, 9, 7)
	b.Lbu(9, 9, 0) // j
	b.Bge(7, 9, "rvnext")
	b.Slli(10, 7, 2) // i*4
	b.Slli(11, 9, 2) // j*4
	// swap re[i], re[j]
	b.Add(12, 10, 1)
	b.Add(13, 11, 1)
	b.Lw(9, 12, 0)
	b.Lw(15, 13, 0)
	b.Sw(15, 12, 0)
	b.Sw(9, 13, 0)
	// swap im[i], im[j]
	b.Add(12, 10, 2)
	b.Add(13, 11, 2)
	b.Lw(9, 12, 0)
	b.Lw(15, 13, 0)
	b.Sw(15, 12, 0)
	b.Sw(9, 13, 0)
	b.Label("rvnext")
	b.Addi(7, 7, 1)
	b.Li(9, fftN)
	b.Blt(7, 9, "rv")

	// Stage loop.
	b.Li(5, 2)        // len
	b.Li(6, fftN*4/2) // step bytes = (N/len)*4
	b.Label("stage")
	b.Slli(8, 5, 1) // half bytes = len*4/2
	b.Li(7, 0)      // i
	b.Label("iloop")
	b.Slli(13, 7, 2)
	b.Add(13, 13, 8) // cb = i*4 + halfBytes
	b.Li(14, 0)      // twiddle offset
	b.Label("bfly")
	// Load twiddles wr -> r11, wi -> r12.
	b.Add(15, 14, 3)
	b.Lw(11, 15, 0)
	b.Add(15, 14, 4)
	b.Lw(12, 15, 0)
	// Load x: xr -> r9, xi -> r10.
	b.Add(15, 13, 1)
	b.Lw(9, 15, 0)
	b.Add(15, 13, 2)
	b.Lw(10, 15, 0)
	// tr -> r15, ti -> r9 (see package comment for the Q14 math).
	b.Mul(15, 11, 9)  // wr*xr
	b.Mul(9, 12, 9)   // wi*xr
	b.Mul(12, 12, 10) // wi*xi
	b.Mul(10, 11, 10) // wr*xi
	b.Sub(15, 15, 12)
	b.Srai(15, 15, 14) // tr
	b.Add(9, 10, 9)
	b.Srai(9, 9, 14) // ti
	// re side: ur -> r12 at addr r10 = re + (cb - halfBytes).
	b.Sub(11, 13, 8)
	b.Add(10, 11, 1)
	b.Lw(12, 10, 0)
	b.Add(11, 12, 15)
	b.Srai(11, 11, 1)
	b.Sw(11, 10, 0) // re[u] = (ur+tr)>>1
	b.Sub(11, 12, 15)
	b.Srai(11, 11, 1)
	b.Add(12, 13, 1)
	b.Sw(11, 12, 0) // re[x] = (ur-tr)>>1
	// im side: ui -> r12 at addr r10 = im + (cb - halfBytes).
	b.Sub(11, 13, 8)
	b.Add(10, 11, 2)
	b.Lw(12, 10, 0)
	b.Add(11, 12, 9)
	b.Srai(11, 11, 1)
	b.Sw(11, 10, 0) // im[u] = (ui+ti)>>1
	b.Sub(11, 12, 9)
	b.Srai(11, 11, 1)
	b.Add(12, 13, 2)
	b.Sw(11, 12, 0) // im[x] = (ui-ti)>>1
	// Advance the butterfly: cb += 4, twoff += stepBytes; the twiddle
	// offset sweeps exactly [0, N*2) bytes per i-group.
	b.Addi(13, 13, 4)
	b.Add(14, 14, 6)
	b.Li(15, fftN*2)
	b.Bltu(14, 15, "bfly")
	// i += len
	b.Add(7, 7, 5)
	b.Li(15, fftN)
	b.Blt(7, 15, "iloop")
	// len <<= 1; step bytes >>= 1
	b.Slli(5, 5, 1)
	b.Srli(6, 6, 1)
	b.Li(15, fftN)
	b.Bge(15, 5, "stage")

	// Emit re then im to the output region.
	b.Li(7, 0)
	b.Li(11, asm.DefaultOutBase)
	b.Label("emit")
	b.Slli(10, 7, 2)
	b.Add(9, 10, 1)
	b.Lw(9, 9, 0)
	b.Add(12, 10, 11)
	b.Sw(9, 12, 0)
	b.Slli(10, 7, 2)
	b.Add(9, 10, 2)
	b.Lw(9, 9, 0)
	b.Add(12, 10, 11)
	b.Sw(9, 12, fftN*4)
	b.Addi(7, 7, 1)
	b.Li(9, fftN)
	b.Blt(7, 9, "emit")

	b.Li(4, fftN*8)
	epilogue(b, 4, 15)
	return b.MustAssemble()
}
