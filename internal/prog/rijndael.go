package prog

import (
	"avgi/internal/asm"
	"avgi/internal/isa"
)

// rijndael encrypts a 3 KiB buffer with an AES-structured block cipher on
// 16-byte blocks: AddRoundKey, then four rounds of SubBytes (random S-box),
// ShiftRows, a linear MixColumns variant, and AddRoundKey. Output: the 3 KiB
// ciphertext — the paper's second large-output workload.

const (
	rjMsgLen = 3072
	rjSeed   = 0x41354E5
	rjRounds = 4
)

func init() {
	register(Workload{
		Name:  "rijndael",
		Suite: "mibench",
		Build: buildRijndael,
		Ref:   refRijndael,
	})
}

// rjSbox is a deterministic random permutation of 0..255.
func rjSbox() []byte {
	s := make([]byte, 256)
	for i := range s {
		s[i] = byte(i)
	}
	r := xorshift32(rjSeed)
	for i := 255; i > 0; i-- {
		j := int(r()) % (i + 1)
		s[i], s[j] = s[j], s[i]
	}
	return s
}

// rjShift is the ShiftRows permutation over the 4x4 byte state in
// column-major order: output byte i comes from input position rjShift[i].
var rjShift = [16]int{0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11}

// rjRoundKeys returns the five 16-byte round keys.
func rjRoundKeys() []byte { return randBytes(0x4E57C0DE, (rjRounds+1)*16) }

func rjEncryptBlock(blk, sbox, keys []byte) []byte {
	st := make([]byte, 16)
	tmp := make([]byte, 16)
	for i := 0; i < 16; i++ {
		st[i] = blk[i] ^ keys[i]
	}
	for r := 1; r <= rjRounds; r++ {
		for i := 0; i < 16; i++ {
			st[i] = sbox[st[i]]
		}
		for i := 0; i < 16; i++ {
			tmp[i] = st[rjShift[i]]
		}
		for c := 0; c < 4; c++ {
			b0, b1, b2, b3 := tmp[c*4], tmp[c*4+1], tmp[c*4+2], tmp[c*4+3]
			t := b0 ^ b1 ^ b2 ^ b3
			st[c*4] = b0 ^ b1 ^ t
			st[c*4+1] = b1 ^ b2 ^ t
			st[c*4+2] = b2 ^ b3 ^ t
			st[c*4+3] = b3 ^ b0 ^ t
		}
		for i := 0; i < 16; i++ {
			st[i] ^= keys[r*16+i]
		}
	}
	return st
}

func refRijndael(v isa.Variant) []byte {
	msg := randBytes(rjSeed^0xD47A, rjMsgLen)
	sbox := rjSbox()
	keys := rjRoundKeys()
	var out []byte
	for o := 0; o < rjMsgLen; o += 16 {
		out = append(out, rjEncryptBlock(msg[o:o+16], sbox, keys)...)
	}
	return out
}

func buildRijndael(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("rijndael", v)
	msg := b.DataBytes("msg", randBytes(rjSeed^0xD47A, rjMsgLen))
	sbox := b.DataBytes("sbox", rjSbox())
	keys := b.DataBytes("keys", rjRoundKeys())
	st := b.Reserve("state", 16)
	tmp := b.Reserve("tmp", 16)

	// Register plan: r1 msg ptr, r2 out ptr, r3 blocks left, r4 state,
	// r5 tmp, r6 sbox, r7 keys, r8 round, r9..r13,r15 temps (r13/LR is
	// free: the workload makes no calls).
	b.Li(1, msg)
	b.Li(2, asm.DefaultOutBase)
	b.Li(3, rjMsgLen/16)
	b.Li(4, st)
	b.Li(5, tmp)
	b.Li(6, sbox)
	b.Li(7, keys)

	b.Label("block")
	// st = blk ^ key0
	for i := int32(0); i < 16; i++ {
		b.Lbu(9, 1, i)
		b.Lbu(10, 7, i)
		b.Xor(9, 9, 10)
		b.Sb(9, 4, i)
	}
	b.Li(8, 1) // round counter
	b.Label("round")
	// SubBytes: st[i] = sbox[st[i]].
	for i := int32(0); i < 16; i++ {
		b.Lbu(9, 4, i)
		b.Add(9, 9, 6)
		b.Lbu(9, 9, 0)
		b.Sb(9, 4, i)
	}
	// ShiftRows into tmp.
	for i := int32(0); i < 16; i++ {
		b.Lbu(9, 4, int32(rjShift[i]))
		b.Sb(9, 5, i)
	}
	// MixColumns variant back into st.
	for c := int32(0); c < 4; c++ {
		b.Lbu(9, 5, c*4)    // b0
		b.Lbu(10, 5, c*4+1) // b1
		b.Lbu(11, 5, c*4+2) // b2
		b.Lbu(12, 5, c*4+3) // b3
		b.Xor(15, 9, 10)
		b.Xor(15, 15, 11)
		b.Xor(15, 15, 12) // t
		b.Xor(13, 9, 10)
		b.Xor(13, 13, 15)
		b.Sb(13, 4, c*4) // b0^b1^t
		b.Xor(13, 10, 11)
		b.Xor(13, 13, 15)
		b.Sb(13, 4, c*4+1) // b1^b2^t
		b.Xor(13, 11, 12)
		b.Xor(13, 13, 15)
		b.Sb(13, 4, c*4+2) // b2^b3^t
		b.Xor(13, 12, 9)
		b.Xor(13, 13, 15)
		b.Sb(13, 4, c*4+3) // b3^b0^t
	}
	// AddRoundKey: st[i] ^= keys[round*16+i].
	b.Slli(13, 8, 4)
	b.Add(13, 13, 7)
	for i := int32(0); i < 16; i++ {
		b.Lbu(9, 13, i)
		b.Lbu(10, 4, i)
		b.Xor(9, 9, 10)
		b.Sb(9, 4, i)
	}
	b.Addi(8, 8, 1)
	b.Li(9, rjRounds)
	b.Bge(9, 8, "round")

	// Copy the state to the output and advance.
	for i := int32(0); i < 16; i++ {
		b.Lbu(9, 4, i)
		b.Sb(9, 2, i)
	}
	b.Addi(1, 1, 16)
	b.Addi(2, 2, 16)
	b.Addi(3, 3, -1)
	b.Bne(3, 0, "block")

	b.Li(4, rjMsgLen)
	epilogue(b, 4, 15)
	return b.MustAssemble()
}
