package prog

import (
	"avgi/internal/asm"
	"avgi/internal/isa"
)

// crc32 computes table-driven CRC-32 (reflected, polynomial 0xEDB88320)
// over a 4 KiB message, one checksum per 256-byte chunk. Output: 16 32-bit
// checksums (64 bytes) — small output, memory-bound table lookups.

const (
	crcMsgLen   = 4096
	crcChunk    = 256
	crcSeed     = 0xC3C32019
	crcPoly     = 0xEDB88320
	crcInitUint = 0xFFFFFFFF
)

func init() {
	register(Workload{
		Name:  "crc32",
		Suite: "mibench",
		Build: buildCRC32,
		Ref:   refCRC32,
	})
}

func crcTable() []uint32 {
	t := make([]uint32, 256)
	for i := range t {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = crcPoly ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		t[i] = c
	}
	return t
}

func refCRC32(v isa.Variant) []byte {
	msg := randBytes(crcSeed, crcMsgLen)
	tbl := crcTable()
	var out []byte
	for c := 0; c < crcMsgLen/crcChunk; c++ {
		crc := uint32(crcInitUint)
		for _, by := range msg[c*crcChunk : (c+1)*crcChunk] {
			crc = tbl[byte(crc)^by] ^ (crc >> 8)
		}
		crc ^= crcInitUint
		out = append(out, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	}
	return out
}

func buildCRC32(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("crc32", v)
	msg := b.DataBytes("msg", randBytes(crcSeed, crcMsgLen))
	b.Align(4)
	tbl := b.DataWords32("tbl", crcTable())

	// r1 msg ptr, r2 chunk count, r3 mask32, r4 crc, r5 byte index,
	// r6 table base, r7 out ptr, r8..r12,r15 temps.
	b.Li(1, msg)
	b.Li(2, crcMsgLen/crcChunk)
	b.Li(3, 0xFFFFFFFF)
	b.Li(6, tbl)
	b.Li(7, asm.DefaultOutBase)

	b.Label("chunk")
	b.Mov(4, 3) // crc = 0xFFFFFFFF
	b.Li(5, 0)
	b.Label("byte")
	b.Add(8, 1, 5)
	b.Lbu(8, 8, 0) // message byte
	b.Xor(9, 4, 8) // crc ^ byte
	b.Andi(9, 9, 0xFF)
	b.Slli(9, 9, 2)
	b.Add(9, 9, 6)
	b.Lw(9, 9, 0) // table entry
	b.And(9, 9, 3)
	b.Srli(10, 4, 8) // crc >> 8 (crc is 32-bit clean)
	b.Xor(4, 9, 10)
	b.Addi(5, 5, 1)
	b.Slti(10, 5, crcChunk)
	b.Bne(10, 0, "byte")
	b.Xor(4, 4, 3) // final complement
	b.Sw(4, 7, 0)
	b.Addi(7, 7, 4)
	b.Addi(1, 1, crcChunk)
	b.Addi(2, 2, -1)
	b.Bne(2, 0, "chunk")

	b.Li(4, crcMsgLen/crcChunk*4)
	epilogue(b, 4, 15)
	return b.MustAssemble()
}
