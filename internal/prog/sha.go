package prog

import (
	"avgi/internal/asm"
	"avgi/internal/isa"
)

// sha implements a SHA-1-style compression over a 2 KiB message: 64-byte
// blocks, a 20-word message schedule with rotate-by-one extension, and 20
// mixing rounds per block over five 32-bit chaining values. The algorithm
// works in 32-bit arithmetic on both variants (values are masked on the
// 64-bit machine). Output: the 20-byte digest — the paper's canonical
// small-output workload (ESC probability zero).

const (
	shaMsgLen = 2048
	shaSeed   = 0x5AA17EE7
	shaRounds = 20
)

func init() {
	register(Workload{
		Name:  "sha",
		Suite: "mibench",
		Build: buildSHA,
		Ref:   refSHA,
	})
}

// shaF is the round function: (b AND c) XOR ((NOT b) AND d), with the
// round constant 0x5A827999.
func shaMix(h [5]uint32, w [shaRounds]uint32) [5]uint32 {
	a, b, c, d, e := h[0], h[1], h[2], h[3], h[4]
	for r := 0; r < shaRounds; r++ {
		f := (b & c) ^ (^b & d)
		t := rotl32(a, 5) + f + e + w[r] + 0x5A827999
		e, d, c, b, a = d, c, rotl32(b, 30), a, t
	}
	h[0] += a
	h[1] += b
	h[2] += c
	h[3] += d
	h[4] += e
	return h
}

func rotl32(x uint32, s uint) uint32 { return x<<s | x>>(32-s) }

func refSHA(v isa.Variant) []byte {
	msg := randBytes(shaSeed, shaMsgLen)
	h := [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	for blk := 0; blk < shaMsgLen/64; blk++ {
		var w [shaRounds]uint32
		for i := 0; i < 16; i++ {
			o := blk*64 + i*4
			w[i] = uint32(msg[o]) | uint32(msg[o+1])<<8 | uint32(msg[o+2])<<16 | uint32(msg[o+3])<<24
		}
		for i := 16; i < shaRounds; i++ {
			w[i] = rotl32(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1)
		}
		h = shaMix(h, w)
	}
	var out []byte
	for _, x := range h {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}

func buildSHA(v isa.Variant) *asm.Program {
	b := asm.NewBuilder("sha", v)
	msg := b.DataBytes("msg", randBytes(shaSeed, shaMsgLen))
	b.Align(8)
	hArr := b.DataWords32("h", []uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0})
	wScratch := b.Reserve("w", shaRounds*4)

	// Register plan (no calls, so r13 is a free pointer):
	//  r1 block pointer   r2 blocks remaining  r3 0xFFFFFFFF mask
	//  r4..r8 a..e        r9..r12,r15 temps    r13 w-scratch base
	b.Li(1, msg)
	b.Li(2, shaMsgLen/64)
	b.Li(3, 0xFFFFFFFF)
	b.Li(13, wScratch)

	mask := func(r uint8) { b.And(r, r, 3) }
	// rotl32(dst, src, s): dst = ((src<<s) | (src>>(32-s))) & mask,
	// clobbering r15. src must already be 32-bit clean.
	rotl := func(dst, src uint8, s int32) {
		b.Slli(15, src, s)
		b.Srli(dst, src, 32-s)
		b.Or(dst, dst, 15)
		mask(dst)
	}

	b.Label("block")
	// Load 16 message words into the schedule scratch.
	b.Li(9, 0)
	b.Label("ld")
	b.Slli(10, 9, 2)
	b.Add(11, 10, 1)
	b.Lw(12, 11, 0)
	mask(12) // lw sign-extends on the 64-bit variant
	b.Add(11, 10, 13)
	b.Sw(12, 11, 0)
	b.Addi(9, 9, 1)
	b.Slti(10, 9, 16)
	b.Bne(10, 0, "ld")
	// Extend words 16..19: w[i] = rotl1(w[i-3]^w[i-8]^w[i-14]^w[i-16]).
	b.Label("ext")
	b.Slli(10, 9, 2)
	b.Add(10, 10, 13)
	b.Lw(11, 10, -3*4)
	b.Lw(12, 10, -8*4)
	b.Xor(11, 11, 12)
	b.Lw(12, 10, -14*4)
	b.Xor(11, 11, 12)
	b.Lw(12, 10, -16*4)
	b.Xor(11, 11, 12)
	mask(11)
	rotl(12, 11, 1)
	b.Sw(12, 10, 0)
	b.Addi(9, 9, 1)
	b.Slti(10, 9, shaRounds)
	b.Bne(10, 0, "ext")

	// Load chaining values a..e.
	b.Li(9, hArr)
	b.Lw(4, 9, 0)
	b.Lw(5, 9, 4)
	b.Lw(6, 9, 8)
	b.Lw(7, 9, 12)
	b.Lw(8, 9, 16)
	mask(4)
	mask(5)
	mask(6)
	mask(7)
	mask(8)

	b.Li(9, 0) // round counter
	b.Label("round")
	// f = (b&c) ^ (~b & d)
	b.And(10, 5, 6)
	b.Xor(11, 5, 3) // ~b within 32 bits
	b.And(11, 11, 7)
	b.Xor(10, 10, 11)
	// t = rotl(a,5) + f + e + w[r] + K
	rotl(11, 4, 5)
	b.Add(11, 11, 10)
	b.Add(11, 11, 8)
	b.Slli(12, 9, 2)
	b.Add(12, 12, 13)
	b.Lw(12, 12, 0)
	b.Add(11, 11, 12)
	b.Li(12, 0x5A827999)
	b.Add(11, 11, 12)
	mask(11)
	// rotate the registers: e=d d=c c=rotl(b,30) b=a a=t
	b.Mov(8, 7)
	b.Mov(7, 6)
	rotl(6, 5, 30)
	b.Mov(5, 4)
	b.Mov(4, 11)
	b.Addi(9, 9, 1)
	b.Slti(10, 9, shaRounds)
	b.Bne(10, 0, "round")

	// Fold back into h[].
	b.Li(9, hArr)
	for i, r := range []uint8{4, 5, 6, 7, 8} {
		b.Lw(10, 9, int32(i*4))
		b.Add(10, 10, r)
		mask(10)
		b.Sw(10, 9, int32(i*4))
	}

	// Next block.
	b.Addi(1, 1, 64)
	b.Addi(2, 2, -1)
	b.Bne(2, 0, "block")

	// Emit the digest to the output region.
	b.Li(9, hArr)
	b.Li(10, asm.DefaultOutBase)
	for i := 0; i < 5; i++ {
		b.Lw(11, 9, int32(i*4))
		b.Sw(11, 10, int32(i*4))
	}
	b.Li(4, 20)
	epilogue(b, 4, 15)
	return b.MustAssemble()
}
