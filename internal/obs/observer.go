package obs

import "io"

// JSONSource is anything that can serve itself as one JSON document —
// the shape of the forensics explorer, kept as an interface so obs does
// not import the packages it observes.
type JSONSource interface {
	WriteJSON(w io.Writer) error
}

// Observer bundles the telemetry components a study threads through the
// stack. Any field may be nil to disable that component; a nil *Observer
// disables everything. The helper methods below are nil-safe so
// instrumented code does not need guard clauses.
type Observer struct {
	Metrics  *Registry
	Progress *Progress
	Trace    *Tracer

	// Forensics, when set, is served at /forensics.json (typically a
	// *forensics.Explorer).
	Forensics JSONSource
}

// New returns an Observer with all three components enabled. Progress log
// lines go to logw (nil for silent).
func New(logw io.Writer) *Observer {
	return &Observer{
		Metrics:  NewRegistry(),
		Progress: NewProgress(logw),
		Trace:    NewTracer(),
	}
}

// Span opens a trace span and returns its ref; nil-safe (returns a no-op
// ref when tracing is disabled).
func (o *Observer) Span(name, cat string, attrs map[string]string) *SpanRef {
	if o == nil || o.Trace == nil {
		return nil
	}
	return o.Trace.StartSpan(name, cat, attrs)
}

// Logf writes one line through the progress reporter and records it as a
// trace instant; nil-safe.
func (o *Observer) Logf(format string, a ...any) {
	if o == nil {
		return
	}
	if o.Progress != nil {
		o.Progress.Logf(format, a...)
	}
}

// Enabled reports whether any component is active.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Metrics != nil || o.Progress != nil || o.Trace != nil)
}
