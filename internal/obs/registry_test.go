package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>, rewriting the file
// when -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// All workers hammer the same series as well as per-worker
			// ones, exercising first-use registration races.
			shared := r.Counter("shared_total", "shared", nil)
			own := r.Counter("shared_total", "shared", map[string]string{"w": string(rune('a' + w))})
			g := r.Gauge("level", "gauge", nil)
			h := r.Histogram("lat", "hist", []float64{1, 2, 4}, nil)
			for i := 0; i < perWorker; i++ {
				shared.Inc()
				own.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 5))
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("shared_total", "", nil).Value(); got != workers*perWorker {
		t.Errorf("shared counter %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		lbl := map[string]string{"w": string(rune('a' + w))}
		if got := r.Counter("shared_total", "", lbl).Value(); got != perWorker {
			t.Errorf("worker %d counter %d, want %d", w, got, perWorker)
		}
	}
	if got := r.Gauge("level", "", nil).Value(); got != 0 {
		t.Errorf("gauge %v, want 0", got)
	}
	h := r.Histogram("lat", "", nil, nil)
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count %d, want %d", got, workers*perWorker)
	}
	// Each worker observes 0..4 cyclically: mean 2 per observation.
	if want := 2.0 * workers * perWorker; h.Sum() != want {
		t.Errorf("histogram sum %v, want %v", h.Sum(), want)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("m", "", nil)
}

// populate builds a deterministic registry exercising every metric kind,
// label rendering and the cumulative-bucket math.
func populate() *Registry {
	r := NewRegistry()
	r.Counter("avgi_campaign_faults_total", "injected faults simulated",
		map[string]string{"structure": "RF", "workload": "sha", "mode": "exhaustive"}).Add(400)
	r.Counter("avgi_campaign_faults_total", "injected faults simulated",
		map[string]string{"structure": "ROB", "workload": "sha", "mode": "avgi"}).Add(120)
	r.Gauge("avgi_golden_cycles", "golden run length in cycles",
		map[string]string{"workload": "sha", "machine": "A72"}).Set(51234)
	h := r.Histogram("avgi_campaign_fault_sim_cycles", "cycles per fault",
		[]float64{1e3, 1e4, 1e5}, map[string]string{"mode": "avgi"})
	for _, v := range []float64{500, 1500, 2500, 20000, 2e5} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := populate().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := populate().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", buf.Bytes())
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{10, 20})
	h.Observe(5)  // bucket le=10
	h.Observe(10) // boundary lands in le=10 (SearchFloat64s: first bound >= v)
	h.Observe(15) // le=20
	h.Observe(25) // +Inf
	want := []uint64{2, 1, 1}
	for i := range want {
		if got := h.buckets[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != 4 || h.Sum() != 55 {
		t.Errorf("count %d sum %v", h.Count(), h.Sum())
	}
}
