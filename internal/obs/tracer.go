package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one recorded phase of a study: a named interval with a category
// and free-form attributes. Instant events are spans with zero duration
// and Instant set.
type Span struct {
	Name    string            `json:"name"`
	Cat     string            `json:"cat,omitempty"`
	StartUS int64             `json:"start_us"` // microseconds since trace start
	DurUS   int64             `json:"dur_us"`
	Instant bool              `json:"instant,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`

	open bool
}

// Tracer records study phases (golden runs, campaigns, estimator
// train/assess) as spans, exportable as NDJSON or as Chrome trace_event
// JSON loadable in chrome://tracing. Safe for concurrent use. The zero
// value is not usable; call NewTracer.
type Tracer struct {
	mu    sync.Mutex
	now   func() time.Time
	start time.Time
	spans []Span
}

// NewTracer returns an empty tracer; its clock starts at the first
// recorded span.
func NewTracer() *Tracer {
	return &Tracer{now: time.Now}
}

// SetClock replaces the time source (tests).
func (t *Tracer) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.start = time.Time{}
}

func (t *Tracer) sinceStartLocked() int64 {
	n := t.now()
	if t.start.IsZero() {
		t.start = n
	}
	return n.Sub(t.start).Microseconds()
}

// SpanRef ends a span started with StartSpan. A nil SpanRef is a valid
// no-op, so callers can end unconditionally.
type SpanRef struct {
	t   *Tracer
	idx int
}

// StartSpan opens a span; call End on the returned ref to close it.
func (t *Tracer) StartSpan(name, cat string, attrs map[string]string) *SpanRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{
		Name:    name,
		Cat:     cat,
		StartUS: t.sinceStartLocked(),
		Attrs:   copyAttrs(attrs),
		open:    true,
	})
	return &SpanRef{t: t, idx: len(t.spans) - 1}
}

// End closes the span, fixing its duration.
func (s *SpanRef) End() {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	sp := &s.t.spans[s.idx]
	if !sp.open {
		return
	}
	sp.open = false
	sp.DurUS = s.t.sinceStartLocked() - sp.StartUS
}

// Instant records a zero-duration event.
func (t *Tracer) Instant(name, cat string, attrs map[string]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{
		Name:    name,
		Cat:     cat,
		StartUS: t.sinceStartLocked(),
		Instant: true,
		Attrs:   copyAttrs(attrs),
	})
}

func copyAttrs(attrs map[string]string) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	cp := make(map[string]string, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	return cp
}

// Spans returns a copy of the recorded spans in start order; still-open
// spans get their duration extended to now.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		if out[i].open {
			out[i].DurUS = t.sinceStartLocked() - out[i].StartUS
		}
	}
	return out
}

// WriteNDJSON exports one JSON object per span, in recording order.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range t.Spans() {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports the spans as Chrome trace_event JSON: complete
// ("X") events for spans, instant ("i") events for instants. Overlapping
// spans are packed onto distinct tracks (tids) greedily so every span is
// visible in chrome://tracing; tracks are deterministic for a given span
// sequence.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	// Greedy interval packing: assign each span (in start order) the first
	// track whose previous occupant has ended.
	type track struct{ busyUntil int64 }
	var tracks []track
	tids := make([]int, len(spans))
	for i, sp := range spans {
		assigned := -1
		for ti := range tracks {
			if tracks[ti].busyUntil <= sp.StartUS {
				assigned = ti
				break
			}
		}
		if assigned < 0 {
			tracks = append(tracks, track{})
			assigned = len(tracks) - 1
		}
		end := sp.StartUS + sp.DurUS
		if sp.Instant {
			end = sp.StartUS
		}
		if end > tracks[assigned].busyUntil {
			tracks[assigned].busyUntil = end
		}
		tids[i] = assigned + 1
	}

	events := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]string{"name": "avgi study"},
	}}
	for i, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name, Cat: sp.Cat, TS: sp.StartUS,
			PID: 1, TID: tids[i], Args: sp.Attrs,
		}
		if sp.Cat == "" {
			ev.Cat = "avgi"
		}
		if sp.Instant {
			ev.Ph = "i"
			ev.S = "g"
		} else {
			ev.Ph = "X"
			ev.Dur = sp.DurUS
		}
		events = append(events, ev)
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
