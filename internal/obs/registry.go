// Package obs is the telemetry layer of the AVGI reproduction: a
// stdlib-only metrics registry (counters, gauges, fixed-bucket histograms),
// a live campaign Progress reporter, and a span/event Tracer with NDJSON
// and Chrome trace_event export. Every layer of the stack — cpu.Machine,
// campaign.Runner and Study — feeds it, so a ~726k-simulation study is
// observable while it runs instead of being a black box until the final
// tables print.
//
// The package deliberately mirrors the Prometheus data model (metric
// families with label sets, cumulative histogram buckets) so the text
// renderer is scrape-compatible, but it has no dependencies: everything is
// the standard library.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram, safe for concurrent
// use. Bounds are upper bucket bounds in increasing order; an implicit
// +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric kinds
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labelled instance of a metric family.
type series struct {
	labels map[string]string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups all series of one metric name.
type family struct {
	name, help, kind string
	bounds           []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series // by label signature
	order  []string
}

// Registry is a concurrent-safe collection of metric families. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSignature canonicalises a label set into a map key.
func labelSignature(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\xff')
		b.WriteString(labels[k])
		b.WriteByte('\xfe')
	}
	return b.String()
}

func (r *Registry) familyFor(name, help, kind string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds,
			series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

func (f *family) seriesFor(labels map[string]string) *series {
	sig := labelSignature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[sig]
	if !ok {
		cp := make(map[string]string, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		s = &series{labels: cp}
		switch f.kind {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = newHistogram(f.bounds)
		}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns (registering on first use) the counter with the given
// name and labels. Calling with a name already registered as a different
// kind panics.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	return r.familyFor(name, help, kindCounter, nil).seriesFor(labels).ctr
}

// Gauge returns (registering on first use) the gauge with the given name
// and labels.
func (r *Registry) Gauge(name, help string, labels map[string]string) *Gauge {
	return r.familyFor(name, help, kindGauge, nil).seriesFor(labels).gauge
}

// Histogram returns (registering on first use) the histogram with the
// given name, bucket bounds and labels. The bounds of the first
// registration win for the whole family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels map[string]string) *Histogram {
	return r.familyFor(name, help, kindHistogram, bounds).seriesFor(labels).hist
}

// SeriesSnapshot is one labelled series in a Snapshot.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`

	// Counter value (counters only).
	Value uint64 `json:"value,omitempty"`
	// Gauge value (gauges only).
	GaugeValue float64 `json:"gauge_value,omitempty"`

	// Histogram fields (histograms only): cumulative counts per bound.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
}

// FamilySnapshot is a point-in-time copy of one metric family.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot returns a consistent-enough point-in-time copy of every family,
// families in registration order, series in first-use order.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		f.mu.Lock()
		sigs := append([]string(nil), f.order...)
		srs := make([]*series, 0, len(sigs))
		for _, sig := range sigs {
			srs = append(srs, f.series[sig])
		}
		f.mu.Unlock()
		for _, s := range srs {
			ss := SeriesSnapshot{Labels: s.labels}
			switch f.kind {
			case kindCounter:
				ss.Value = s.ctr.Value()
			case kindGauge:
				ss.GaugeValue = s.gauge.Value()
			case kindHistogram:
				ss.Bounds = append([]float64(nil), s.hist.bounds...)
				ss.Buckets = make([]uint64, len(s.hist.buckets))
				var cum uint64
				for i := range s.hist.buckets {
					cum += s.hist.buckets[i].Load()
					ss.Buckets[i] = cum
				}
				ss.Count = s.hist.Count()
				ss.Sum = s.hist.Sum()
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders a label set as {k="v",...}, keys sorted; extra
// appends additional pre-rendered pairs (used for histogram le).
func labelString(labels map[string]string, extra ...string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, 0, len(keys)+len(extra))
	for _, k := range keys {
		pairs = append(pairs, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	pairs = append(pairs, extra...)
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			switch f.Kind {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, labelString(s.Labels), s.Value); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(s.Labels), formatFloat(s.GaugeValue)); err != nil {
					return err
				}
			case kindHistogram:
				for i, b := range s.Bounds {
					le := fmt.Sprintf("le=%q", formatFloat(b))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelString(s.Labels, le), s.Buckets[i]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelString(s.Labels, `le="+Inf"`), s.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, labelString(s.Labels), formatFloat(s.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelString(s.Labels), s.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
