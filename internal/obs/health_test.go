package obs

import (
	"testing"
	"time"
)

func TestStartHealthPublishesGauges(t *testing.T) {
	o := &Observer{Metrics: NewRegistry()}
	stop := o.StartHealth(time.Hour) // ticker never fires; the sync sample must
	defer stop()
	want := map[string]bool{
		"avgi_process_goroutines":             true,
		"avgi_process_heap_inuse_bytes":       true,
		"avgi_process_gc_pause_seconds_total": true,
		"avgi_process_gomaxprocs":             true,
	}
	for _, fam := range o.Metrics.Snapshot() {
		if want[fam.Name] {
			delete(want, fam.Name)
			if len(fam.Series) != 1 {
				t.Errorf("%s: %d series", fam.Name, len(fam.Series))
			}
		}
	}
	if len(want) != 0 {
		t.Errorf("gauges missing from registry: %v", want)
	}
	g := o.Metrics.Gauge("avgi_process_goroutines", "", nil)
	if g.Value() < 1 {
		t.Errorf("goroutines gauge %v", g.Value())
	}
	mp := o.Metrics.Gauge("avgi_process_gomaxprocs", "", nil)
	if mp.Value() < 1 {
		t.Errorf("gomaxprocs gauge %v", mp.Value())
	}
	stop()
	stop() // idempotent
}

func TestStartHealthNilSafe(t *testing.T) {
	var o *Observer
	o.StartHealth(time.Second)() // must not panic
	(&Observer{}).StartHealth(0)()
}
