package obs

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr
}

func TestHandlerUnknownPath404s(t *testing.T) {
	h := New(nil).Handler()
	for _, path := range []string{"/nope", "/metrics/extra", "/metricsjson"} {
		if rr := get(t, h, path); rr.Code != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, rr.Code)
		}
	}
}

func TestHandlerDisabledComponentBodies(t *testing.T) {
	// An all-nil observer still serves the index but reports every
	// component as disabled.
	h := (&Observer{}).Handler()
	for path, want := range map[string]string{
		"/metrics":        "metrics disabled",
		"/metrics.json":   "metrics disabled",
		"/progress.json":  "progress disabled",
		"/trace.json":     "tracing disabled",
		"/forensics.json": "forensics disabled",
	} {
		rr := get(t, h, path)
		if rr.Code != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, rr.Code)
		}
		if got := strings.TrimSpace(rr.Body.String()); got != want {
			t.Errorf("GET %s: body %q, want %q", path, got, want)
		}
	}
}

func TestHandlerContentTypes(t *testing.T) {
	o := New(io.Discard)
	o.Forensics = jsonSourceFunc(func(w io.Writer) error {
		_, err := io.WriteString(w, `{"entries":[]}`)
		return err
	})
	h := o.Handler()
	for path, want := range map[string]string{
		"/":               "text/html; charset=utf-8",
		"/metrics":        "text/plain; version=0.0.4; charset=utf-8",
		"/metrics.json":   "application/json",
		"/progress.json":  "application/json",
		"/trace.json":     "application/json",
		"/forensics.json": "application/json",
	} {
		rr := get(t, h, path)
		if rr.Code != http.StatusOK {
			t.Errorf("GET %s: %d", path, rr.Code)
		}
		if got := rr.Header().Get("Content-Type"); got != want {
			t.Errorf("GET %s: Content-Type %q, want %q", path, got, want)
		}
	}
}

type jsonSourceFunc func(io.Writer) error

func (f jsonSourceFunc) WriteJSON(w io.Writer) error { return f(w) }

func TestHandlerServesForensicsBody(t *testing.T) {
	o := &Observer{Forensics: jsonSourceFunc(func(w io.Writer) error {
		_, err := io.WriteString(w, `{"causes":[],"entries":[]}`)
		return err
	})}
	rr := get(t, o.Handler(), "/forensics.json")
	if rr.Body.String() != `{"causes":[],"entries":[]}` {
		t.Errorf("body %q", rr.Body.String())
	}
}

// TestCloseDrainsInFlightRequest is the regression test for the hard-drop
// shutdown: Server.Close used to call http.Server.Close, which severed
// in-flight responses (a /metrics scrape mid-body) with an ECONNRESET.
// With graceful drain the client must receive the complete body and Close
// must still return promptly once the handler finishes.
func TestCloseDrainsInFlightRequest(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, err := NewServer("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "drained-ok")
	}))
	if err != nil {
		t.Fatal(err)
	}

	type reply struct {
		body string
		err  error
	}
	got := make(chan reply, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/")
		if err != nil {
			got <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- reply{body: string(b), err: err}
	}()

	<-entered // the request is now in flight
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// Close must wait for the handler, not kill the connection.
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while a request was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	// New connections are refused once shutdown begins.
	waitRefused(t, srv.Addr())

	close(release)
	if err := <-closed; err != nil {
		t.Errorf("Close: %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed across Close: %v", r.err)
	}
	if r.body != "drained-ok" {
		t.Errorf("in-flight body = %q, want %q", r.body, "drained-ok")
	}
}

// waitRefused polls until dialing addr fails — the listener closes
// asynchronously relative to Shutdown's return, so a single probe races.
func waitRefused(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			return
		}
		c.Close()
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("listener still accepting connections after Shutdown began")
}

// TestCloseHardDropsAfterDrainTimeout: a handler that never returns must
// not wedge Close forever — after the drain deadline the connections are
// dropped hard and Close returns.
func TestCloseHardDropsAfterDrainTimeout(t *testing.T) {
	entered := make(chan struct{})
	stuck := make(chan struct{})
	srv, err := NewServer("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-stuck
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer close(stuck)
	srv.SetDrainTimeout(50 * time.Millisecond)

	go http.Get("http://" + srv.Addr() + "/")
	<-entered

	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged on a handler that never returns")
	}
}

func TestHandlerMountsPprof(t *testing.T) {
	h := (&Observer{}).Handler()
	rr := get(t, h, "/debug/pprof/")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
	if rr := get(t, h, "/debug/pprof/goroutine"); rr.Code != http.StatusOK {
		t.Errorf("GET /debug/pprof/goroutine: %d", rr.Code)
	}
}
