package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr
}

func TestHandlerUnknownPath404s(t *testing.T) {
	h := New(nil).Handler()
	for _, path := range []string{"/nope", "/metrics/extra", "/metricsjson"} {
		if rr := get(t, h, path); rr.Code != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, rr.Code)
		}
	}
}

func TestHandlerDisabledComponentBodies(t *testing.T) {
	// An all-nil observer still serves the index but reports every
	// component as disabled.
	h := (&Observer{}).Handler()
	for path, want := range map[string]string{
		"/metrics":        "metrics disabled",
		"/metrics.json":   "metrics disabled",
		"/progress.json":  "progress disabled",
		"/trace.json":     "tracing disabled",
		"/forensics.json": "forensics disabled",
	} {
		rr := get(t, h, path)
		if rr.Code != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, rr.Code)
		}
		if got := strings.TrimSpace(rr.Body.String()); got != want {
			t.Errorf("GET %s: body %q, want %q", path, got, want)
		}
	}
}

func TestHandlerContentTypes(t *testing.T) {
	o := New(io.Discard)
	o.Forensics = jsonSourceFunc(func(w io.Writer) error {
		_, err := io.WriteString(w, `{"entries":[]}`)
		return err
	})
	h := o.Handler()
	for path, want := range map[string]string{
		"/":               "text/html; charset=utf-8",
		"/metrics":        "text/plain; version=0.0.4; charset=utf-8",
		"/metrics.json":   "application/json",
		"/progress.json":  "application/json",
		"/trace.json":     "application/json",
		"/forensics.json": "application/json",
	} {
		rr := get(t, h, path)
		if rr.Code != http.StatusOK {
			t.Errorf("GET %s: %d", path, rr.Code)
		}
		if got := rr.Header().Get("Content-Type"); got != want {
			t.Errorf("GET %s: Content-Type %q, want %q", path, got, want)
		}
	}
}

type jsonSourceFunc func(io.Writer) error

func (f jsonSourceFunc) WriteJSON(w io.Writer) error { return f(w) }

func TestHandlerServesForensicsBody(t *testing.T) {
	o := &Observer{Forensics: jsonSourceFunc(func(w io.Writer) error {
		_, err := io.WriteString(w, `{"causes":[],"entries":[]}`)
		return err
	})}
	rr := get(t, o.Handler(), "/forensics.json")
	if rr.Body.String() != `{"causes":[],"entries":[]}` {
		t.Errorf("body %q", rr.Body.String())
	}
}

func TestHandlerMountsPprof(t *testing.T) {
	h := (&Observer{}).Handler()
	rr := get(t, h, "/debug/pprof/")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
	if rr := get(t, h, "/debug/pprof/goroutine"); rr.Code != http.StatusOK {
		t.Errorf("GET /debug/pprof/goroutine: %d", rr.Code)
	}
}
