package obs

import "avgi/internal/engine"

// PublishEngineStats folds one engine run's telemetry (cpu.Result.Engine)
// into the registry:
//
//   - avgi_engine_events_total: discrete events fired (port deliveries,
//     scheduled callbacks), accumulated across published runs
//   - avgi_engine_cycles_total: engine cycles executed, accumulated
//   - avgi_engine_components: ticking components registered on the run's
//     engine (a shape gauge: 1 on a single-core machine, n on a cluster)
//   - avgi_engine_component_ticks_total: per-component Tick calls, with the
//     component's name as a label
//
// labels carry the run's identity (workload, machine) and are shared by
// every series; the per-component counter adds a "component" label on top.
// A nil registry is a no-op, matching the rest of the obs surface.
func PublishEngineStats(reg *Registry, labels map[string]string, s engine.Stats) {
	if reg == nil {
		return
	}
	reg.Counter("avgi_engine_events_total",
		"discrete events fired by the deterministic event engine", labels).
		Add(s.Events)
	reg.Counter("avgi_engine_cycles_total",
		"cycles executed by the deterministic event engine", labels).
		Add(s.Cycles)
	reg.Gauge("avgi_engine_components",
		"ticking components registered on the engine", labels).
		Set(float64(len(s.Components)))
	for _, c := range s.Components {
		lb := make(map[string]string, len(labels)+1)
		for k, v := range labels {
			lb[k] = v
		}
		lb["component"] = c.Name
		reg.Counter("avgi_engine_component_ticks_total",
			"Tick calls delivered to one engine component", lb).
			Add(c.Ticks)
	}
}
