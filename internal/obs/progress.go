package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// PairProgress is the completion state of one (structure, workload, mode)
// campaign.
type PairProgress struct {
	Structure string `json:"structure"`
	Workload  string `json:"workload"`
	Mode      string `json:"mode"`
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	SimCycles uint64 `json:"sim_cycles"`
}

// ProgressSnapshot is a point-in-time view of a running study, serialised
// on the /progress.json endpoint and rendered by Line.
type ProgressSnapshot struct {
	ElapsedSec  float64 `json:"elapsed_sec"`
	FaultsDone  int64   `json:"faults_done"`
	FaultsTotal int64   `json:"faults_total"`

	// FaultsPerSec and SimCyclesPerSec are whole-run averages.
	FaultsPerSec    float64 `json:"faults_per_sec"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`

	// SpeedupVsExhaustive is the ratio of the estimated exhaustive-mode
	// simulation cost of the completed faults to the cycles actually
	// simulated for them — the live view of the paper's Table II claim.
	SpeedupVsExhaustive float64 `json:"speedup_vs_exhaustive"`

	// ETASec extrapolates the remaining faults at the current rate
	// (negative when no campaign has been announced yet).
	ETASec float64 `json:"eta_sec"`

	// DupAnnounces counts StartCampaign calls dropped because the same
	// (structure, workload, mode) triple was already in flight — always 0
	// once the study-level single-flight executor is doing its job.
	DupAnnounces int64 `json:"dup_announces,omitempty"`

	Pairs []PairProgress `json:"pairs"`
}

// Progress aggregates per-fault completion events from campaign workers
// into live throughput, completion and ETA figures. All methods are safe
// for concurrent use. The zero value is not usable; call NewProgress.
type Progress struct {
	mu    sync.Mutex
	now   func() time.Time
	out   io.Writer
	start time.Time

	pairs map[string]*PairProgress
	order []string

	faultsDone   int64
	faultsTotal  int64
	simCycles    uint64
	exhCycles    uint64
	dupAnnounces int64
}

// NewProgress returns a reporter whose Logf lines and ticker output go to
// out (pass io.Discard to keep it silent).
func NewProgress(out io.Writer) *Progress {
	if out == nil {
		out = io.Discard
	}
	p := &Progress{now: time.Now, out: out, pairs: make(map[string]*PairProgress)}
	p.start = p.now()
	return p
}

// SetClock replaces the time source (tests).
func (p *Progress) SetClock(now func() time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.now = now
	p.start = now()
}

// StartCampaign announces a campaign of total faults for one
// (structure, workload, mode) triple. Announcements are idempotent while a
// previous campaign on the same triple is still draining: a duplicate
// announcement arriving before the outstanding total completes is dropped
// (and counted in DupAnnounces), so concurrent re-runs of one pair can
// never inflate its total beyond the fault-list size. Once a pair has
// fully drained, a new announcement accumulates as a genuine re-run (e.g.
// the multi-bit ablation revisits the same triple with fresh fault lists).
func (p *Progress) StartCampaign(structure, workload, mode string, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pp := p.pair(structure, workload, mode)
	if pp.Done < pp.Total {
		p.dupAnnounces++
		return
	}
	pp.Total += total
	p.faultsTotal += int64(total)
}

func (p *Progress) pair(structure, workload, mode string) *PairProgress {
	key := structure + "|" + workload + "|" + mode
	pp, ok := p.pairs[key]
	if !ok {
		pp = &PairProgress{Structure: structure, Workload: workload, Mode: mode}
		p.pairs[key] = pp
		p.order = append(p.order, key)
	}
	return pp
}

// FaultDone records the completion of one injected fault. simCycles is the
// number of cycles actually simulated for it; exhaustiveCycles is the
// estimated cost the same fault would have had under end-to-end SFI (used
// for the live speedup figure).
func (p *Progress) FaultDone(structure, workload, mode string, simCycles, exhaustiveCycles uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pp := p.pair(structure, workload, mode)
	pp.Done++
	pp.SimCycles += simCycles
	p.faultsDone++
	p.simCycles += simCycles
	p.exhCycles += exhaustiveCycles
	// A dropped duplicate announcement can leave completions outrunning
	// the announced total (two genuinely distinct campaigns racing on one
	// triple); grow the total so the pair never reads above 100%.
	if pp.Done > pp.Total {
		pp.Total = pp.Done
		p.faultsTotal++
	}
}

// SkipFaults retracts n announced-but-never-simulated faults from a
// campaign's totals — the distributed claim loop announces the full fault
// list up front and only then discovers that another process owns some of
// its chunks, so the skipped share must leave the denominator or the pair
// would never read 100%. Totals never drop below the completions already
// recorded.
func (p *Progress) SkipFaults(structure, workload, mode string, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pp := p.pair(structure, workload, mode)
	if n > pp.Total-pp.Done {
		n = pp.Total - pp.Done
	}
	if n <= 0 {
		return
	}
	pp.Total -= n
	p.faultsTotal -= int64(n)
}

// Snapshot returns the current progress state.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	el := p.now().Sub(p.start).Seconds()
	s := ProgressSnapshot{
		ElapsedSec:   el,
		FaultsDone:   p.faultsDone,
		FaultsTotal:  p.faultsTotal,
		DupAnnounces: p.dupAnnounces,
	}
	if el > 0 {
		s.FaultsPerSec = float64(p.faultsDone) / el
		s.SimCyclesPerSec = float64(p.simCycles) / el
	}
	if p.simCycles > 0 {
		s.SpeedupVsExhaustive = float64(p.exhCycles) / float64(p.simCycles)
	}
	if remaining := p.faultsTotal - p.faultsDone; remaining > 0 && s.FaultsPerSec > 0 {
		s.ETASec = float64(remaining) / s.FaultsPerSec
	}
	keys := append([]string(nil), p.order...)
	sort.Strings(keys)
	for _, k := range keys {
		s.Pairs = append(s.Pairs, *p.pairs[k])
	}
	return s
}

// WriteJSON serialises a snapshot as indented JSON.
func (p *Progress) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Snapshot())
}

// Line renders a one-line live summary of the snapshot.
func (s ProgressSnapshot) Line() string {
	pct := 0.0
	if s.FaultsTotal > 0 {
		pct = 100 * float64(s.FaultsDone) / float64(s.FaultsTotal)
	}
	line := fmt.Sprintf("faults %d/%d (%.1f%%) | %.1f faults/s | %s simcycles/s | speedup vs exhaustive %.1fx",
		s.FaultsDone, s.FaultsTotal, pct, s.FaultsPerSec, humanCount(s.SimCyclesPerSec), s.SpeedupVsExhaustive)
	if s.ETASec > 0 {
		line += " | ETA " + (time.Duration(s.ETASec * float64(time.Second))).Round(time.Second).String()
	}
	return line
}

// Line renders the current one-line live summary.
func (p *Progress) Line() string { return p.Snapshot().Line() }

// Logf writes one timestamped line to the progress writer — the shared
// code path for phase announcements that used to be ad-hoc stderr prints.
func (p *Progress) Logf(format string, a ...any) {
	p.mu.Lock()
	el := p.now().Sub(p.start)
	out := p.out
	p.mu.Unlock()
	fmt.Fprintf(out, "[%8s] %s\n", el.Round(time.Millisecond), fmt.Sprintf(format, a...))
}

// StartTicker renders Line to the progress writer every interval until the
// returned stop function is called; stop writes one final line. A
// non-positive interval defaults to 2s.
func (p *Progress) StartTicker(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				p.Logf("%s", p.Line())
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			p.Logf("%s", p.Line())
		})
	}
}

// humanCount renders a rate with an engineering suffix.
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}
