package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProgressSnapshot(t *testing.T) {
	p := NewProgress(io.Discard)
	clk := newFakeClock()
	p.SetClock(clk.now)

	p.StartCampaign("RF", "sha", "avgi", 100)
	p.StartCampaign("ROB", "sha", "avgi", 50)
	clk.advance(10 * time.Second)
	for i := 0; i < 30; i++ {
		p.FaultDone("RF", "sha", "avgi", 1000, 10000) // 10x speedup each
	}

	s := p.Snapshot()
	if s.FaultsDone != 30 || s.FaultsTotal != 150 {
		t.Fatalf("done/total %d/%d, want 30/150", s.FaultsDone, s.FaultsTotal)
	}
	if s.FaultsPerSec != 3 {
		t.Errorf("rate %v, want 3", s.FaultsPerSec)
	}
	if s.SimCyclesPerSec != 3000 {
		t.Errorf("cycle rate %v, want 3000", s.SimCyclesPerSec)
	}
	if s.SpeedupVsExhaustive != 10 {
		t.Errorf("speedup %v, want 10", s.SpeedupVsExhaustive)
	}
	if want := 120.0 / 3; s.ETASec != want {
		t.Errorf("ETA %v, want %v", s.ETASec, want)
	}
	if len(s.Pairs) != 2 {
		t.Fatalf("%d pairs", len(s.Pairs))
	}
	// Pairs sort by structure|workload|mode key: RF before ROB ('F' < 'O').
	if s.Pairs[0].Structure != "RF" || s.Pairs[0].Done != 30 || s.Pairs[0].Total != 100 {
		t.Errorf("pair 0 = %+v", s.Pairs[0])
	}
	if s.Pairs[1].Structure != "ROB" || s.Pairs[1].Done != 0 || s.Pairs[1].Total != 50 {
		t.Errorf("pair 1 = %+v", s.Pairs[1])
	}

	line := s.Line()
	want := "faults 30/150 (20.0%) | 3.0 faults/s | 3.0k simcycles/s | speedup vs exhaustive 10.0x | ETA 40s"
	if line != want {
		t.Errorf("Line() = %q\n          want %q", line, want)
	}
}

// TestSkipFaults covers the distributed-claim retraction: skipped faults
// leave the totals so a striped campaign still converges to 100%, and the
// retraction clamps at the completions already recorded.
func TestSkipFaults(t *testing.T) {
	p := NewProgress(io.Discard)
	p.StartCampaign("RF", "sha", "avgi", 100)
	for i := 0; i < 10; i++ {
		p.FaultDone("RF", "sha", "avgi", 1000, 1000)
	}
	p.SkipFaults("RF", "sha", "avgi", 40)
	s := p.Snapshot()
	if s.FaultsDone != 10 || s.FaultsTotal != 60 {
		t.Fatalf("after skip: done/total %d/%d, want 10/60", s.FaultsDone, s.FaultsTotal)
	}
	// Over-retraction clamps: total can never drop below done.
	p.SkipFaults("RF", "sha", "avgi", 999)
	if s := p.Snapshot(); s.FaultsTotal != 10 {
		t.Fatalf("clamped skip left total %d, want 10", s.FaultsTotal)
	}
	// A skip on an unknown pair is harmless.
	p.SkipFaults("ROB", "sha", "avgi", 5)
	if s := p.Snapshot(); s.FaultsTotal != 10 {
		t.Fatalf("skip on a fresh pair changed total to %d", s.FaultsTotal)
	}
}

func TestStartCampaignIdempotentWhileInFlight(t *testing.T) {
	p := NewProgress(io.Discard)
	const n = 80 // the fault-list size
	p.StartCampaign("RF", "sha", "exhaustive", n)
	// Duplicate announcements for an in-flight pair (the old cache race)
	// must be dropped: the total never exceeds the fault-list size.
	p.StartCampaign("RF", "sha", "exhaustive", n)
	p.StartCampaign("RF", "sha", "exhaustive", n)
	for i := 0; i < n; i++ {
		p.FaultDone("RF", "sha", "exhaustive", 10, 10)
		if s := p.Snapshot(); s.FaultsTotal > n || s.Pairs[0].Total > n {
			t.Fatalf("total inflated beyond fault-list size: %d/%d (pair %d)",
				s.FaultsDone, s.FaultsTotal, s.Pairs[0].Total)
		}
	}
	s := p.Snapshot()
	if s.FaultsDone != n || s.FaultsTotal != n || s.Pairs[0].Total != n {
		t.Fatalf("done/total %d/%d pair total %d, want all %d", s.FaultsDone, s.FaultsTotal, s.Pairs[0].Total, n)
	}
	if s.DupAnnounces != 2 {
		t.Errorf("DupAnnounces = %d, want 2", s.DupAnnounces)
	}

	// Once the pair has drained, a genuine re-run (same triple, fresh
	// fault list — e.g. the multi-bit ablation) accumulates again.
	p.StartCampaign("RF", "sha", "exhaustive", n)
	if s := p.Snapshot(); s.FaultsTotal != 2*n {
		t.Errorf("post-drain announcement: total %d, want %d", s.FaultsTotal, 2*n)
	}
}

func TestFaultDoneGrowsTotalWhenOutrun(t *testing.T) {
	// Two distinct campaigns racing on one triple can leave completions
	// outrunning the announced total after the duplicate announcement was
	// dropped; the pair must clamp to 100%, never read above it.
	p := NewProgress(io.Discard)
	p.StartCampaign("RF", "sha", "exhaustive", 2)
	p.StartCampaign("RF", "sha", "exhaustive", 2) // dropped
	for i := 0; i < 4; i++ {
		p.FaultDone("RF", "sha", "exhaustive", 1, 1)
	}
	s := p.Snapshot()
	if s.Pairs[0].Done != 4 || s.Pairs[0].Total != 4 || s.FaultsTotal != 4 {
		t.Fatalf("pair %d/%d total %d, want 4/4 total 4", s.Pairs[0].Done, s.Pairs[0].Total, s.FaultsTotal)
	}
}

func TestProgressConcurrent(t *testing.T) {
	p := NewProgress(io.Discard)
	const workers = 8
	const perWorker = 500
	p.StartCampaign("RF", "sha", "exhaustive", workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.FaultDone("RF", "sha", "exhaustive", 10, 10)
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	if s.FaultsDone != workers*perWorker || s.Pairs[0].Done != workers*perWorker {
		t.Fatalf("done %d / pair %d, want %d", s.FaultsDone, s.Pairs[0].Done, workers*perWorker)
	}
}

func TestLogfFormat(t *testing.T) {
	var buf strings.Builder
	p := NewProgress(&buf)
	clk := newFakeClock()
	p.SetClock(clk.now)
	clk.advance(1500 * time.Millisecond)
	p.Logf("hello %d", 7)
	if got, want := buf.String(), "[    1.5s] hello 7\n"; got != want {
		t.Errorf("Logf wrote %q, want %q", got, want)
	}
}

func TestStartTickerStopWritesFinalLine(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(b []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(b)
	})
	p := NewProgress(w)
	stop := p.StartTicker(time.Hour) // never ticks during the test
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "faults 0/0") {
		t.Errorf("final line missing, got %q", out)
	}
	if n := strings.Count(out, "\n"); n != 1 {
		t.Errorf("%d lines after double stop, want 1", n)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }

func TestHumanCount(t *testing.T) {
	cases := map[float64]string{
		12:     "12",
		3400:   "3.4k",
		2.5e6:  "2.50M",
		7.25e9: "7.25G",
	}
	for v, want := range cases {
		if got := humanCount(v); got != want {
			t.Errorf("humanCount(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	o := New(io.Discard)
	o.Metrics.Counter("avgi_test_total", "test", nil).Add(3)
	o.Progress.StartCampaign("RF", "sha", "avgi", 10)
	sp := o.Span("phase", "test", nil)
	sp.End()

	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "avgi_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}

	body, _ = get("/progress.json")
	var ps ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &ps); err != nil {
		t.Fatalf("/progress.json: %v", err)
	}
	if ps.FaultsTotal != 10 {
		t.Errorf("/progress.json total %d, want 10", ps.FaultsTotal)
	}

	body, _ = get("/trace.json")
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace.json: %v", err)
	}
	if len(doc.TraceEvents) != 2 { // metadata + 1 span
		t.Errorf("/trace.json %d events, want 2", len(doc.TraceEvents))
	}

	body, _ = get("/")
	if !strings.Contains(body, "/progress.json") {
		t.Errorf("index page missing links:\n%s", body)
	}
}

func TestHandlerDisabledComponents(t *testing.T) {
	o := &Observer{} // everything nil
	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/metrics.json", "/progress.json", "/trace.json"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with nil components: %s, want 404", path, resp.Status)
		}
	}
}

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Error("nil observer reports enabled")
	}
	o.Logf("ignored")          // must not panic
	o.Span("x", "", nil).End() // must not panic
}
