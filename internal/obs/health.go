package obs

import (
	"runtime"
	"time"
)

// StartHealth publishes process-health gauges into the observer's registry
// and refreshes them on a background ticker every interval (values are also
// published synchronously once before it returns, so even a short-lived
// process exposes them). It returns a stop function; stopping is idempotent.
// Nil-safe: with no registry it is a no-op.
//
//	avgi_process_goroutines              live goroutine count
//	avgi_process_heap_inuse_bytes        bytes in in-use heap spans
//	avgi_process_gc_pause_seconds_total  cumulative stop-the-world GC pause
//	avgi_process_gomaxprocs              scheduler parallelism limit
func (o *Observer) StartHealth(interval time.Duration) (stop func()) {
	if o == nil || o.Metrics == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	goroutines := o.Metrics.Gauge("avgi_process_goroutines",
		"live goroutine count", nil)
	heapInuse := o.Metrics.Gauge("avgi_process_heap_inuse_bytes",
		"bytes in in-use heap spans", nil)
	gcPause := o.Metrics.Gauge("avgi_process_gc_pause_seconds_total",
		"cumulative stop-the-world GC pause seconds", nil)
	maxprocs := o.Metrics.Gauge("avgi_process_gomaxprocs",
		"scheduler parallelism limit (GOMAXPROCS)", nil)

	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapInuse.Set(float64(ms.HeapInuse))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		maxprocs.Set(float64(runtime.GOMAXPROCS(0)))
	}
	sample()

	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(done)
		}
	}
}
