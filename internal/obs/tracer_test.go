package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for deterministic renders.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// sampleTrace records a study-shaped span sequence: an outer phase with
// two nested children (forcing extra tracks), then a second phase and an
// instant.
func sampleTrace() (*Tracer, *fakeClock) {
	tr := NewTracer()
	clk := newFakeClock()
	tr.SetClock(clk.now)

	golden := tr.StartSpan("golden runs", "golden", map[string]string{"workloads": "2"})
	sha := tr.StartSpan("golden sha", "golden", nil)
	clk.advance(5 * time.Millisecond)
	sha.End()
	crc := tr.StartSpan("golden crc32", "golden", nil)
	clk.advance(3 * time.Millisecond)
	crc.End()
	golden.End()

	clk.advance(1 * time.Millisecond)
	camp := tr.StartSpan("campaign exhaustive RF sha", "campaign",
		map[string]string{"structure": "RF", "faults": "400"})
	clk.advance(40 * time.Millisecond)
	camp.End()
	tr.Instant("estimator trained", "estimator", nil)
	return tr, clk
}

func TestWriteChromeTraceGolden(t *testing.T) {
	tr, _ := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must be valid JSON of the documented shape regardless of
	// the golden file.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 6 { // metadata + 4 spans + 1 instant
		t.Fatalf("%d trace events, want 6", len(doc.TraceEvents))
	}
	checkGolden(t, "trace.json", buf.Bytes())
}

func TestWriteNDJSONGolden(t *testing.T) {
	tr, _ := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.ndjson", buf.Bytes())
}

func TestTrackPacking(t *testing.T) {
	// The outer "golden runs" span overlaps both children, so the children
	// must land on a second track; the later campaign span reuses track 1.
	tr, _ := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tid := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" || ev.Ph == "i" {
			tid[ev.Name] = ev.TID
		}
	}
	if tid["golden runs"] != 1 {
		t.Errorf("outer span on track %d, want 1", tid["golden runs"])
	}
	if tid["golden sha"] != 2 || tid["golden crc32"] != 2 {
		t.Errorf("children on tracks %d/%d, want 2/2", tid["golden sha"], tid["golden crc32"])
	}
	if tid["campaign exhaustive RF sha"] != 1 {
		t.Errorf("campaign on track %d, want 1", tid["campaign exhaustive RF sha"])
	}
}

func TestOpenSpanExtendsToNow(t *testing.T) {
	tr := NewTracer()
	clk := newFakeClock()
	tr.SetClock(clk.now)
	tr.StartSpan("open", "", nil)
	clk.advance(7 * time.Millisecond)
	sp := tr.Spans()
	if len(sp) != 1 || sp[0].DurUS != 7000 {
		t.Fatalf("open span dur %dµs, want 7000", sp[0].DurUS)
	}
}

func TestNilSpanRefEnd(t *testing.T) {
	var s *SpanRef
	s.End() // must not panic
}
