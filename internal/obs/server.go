package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the observer's state:
//
//	/metrics         Prometheus text exposition
//	/metrics.json    registry snapshot as JSON
//	/progress.json   live ProgressSnapshot
//	/trace.json      Chrome trace_event JSON of the spans so far
//	/forensics.json  masking-source breakdown (when Forensics is set)
//	/debug/pprof/    live Go profiling (heap, goroutine, CPU, ...)
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>avgi telemetry</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/metrics.json">/metrics.json</a></li>
<li><a href="/progress.json">/progress.json</a></li>
<li><a href="/trace.json">/trace.json</a> (chrome://tracing)</li>
<li><a href="/forensics.json">/forensics.json</a> (masking-source breakdown)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> (live profiling)</li>
</ul></body></html>`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Metrics == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Metrics == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.Metrics.WriteJSON(w)
	})
	mux.HandleFunc("/progress.json", func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Progress == nil {
			http.Error(w, "progress disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.Progress.WriteJSON(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Trace == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.Trace.WriteChromeTrace(w)
	})
	mux.HandleFunc("/forensics.json", func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Forensics == nil {
			http.Error(w, "forensics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.Forensics.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DefaultDrainTimeout is how long Close waits for in-flight requests to
// finish before dropping the connections hard.
const DefaultDrainTimeout = 5 * time.Second

// Server is a running telemetry (or service) endpoint.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	drain time.Duration
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetDrainTimeout overrides DefaultDrainTimeout for Close. Call before
// sharing the server between goroutines.
func (s *Server) SetDrainTimeout(d time.Duration) {
	if d > 0 {
		s.drain = d
	}
}

// Close shuts the server down gracefully: the listener stops accepting
// immediately, in-flight requests (a Prometheus scrape mid-render, a
// progress stream mid-line) get up to the drain timeout to complete, and
// only then are surviving connections dropped hard. http.Server.Close was
// the old behaviour and it severed live scrapes mid-body; the avgid
// service reuses this path as its drain-on-SIGTERM.
func (s *Server) Close() error {
	d := s.drain
	if d <= 0 {
		d = DefaultDrainTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		// Deadline expired with requests still running: drop them.
		return s.srv.Close()
	}
	return nil
}

// Shutdown drains the server under the caller's context (no hard close on
// expiry — the caller decides what a blown deadline means).
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// NewServer binds addr (e.g. "localhost:9090" or ":0" for an ephemeral
// port) and serves h in a background goroutine — the plumbing under
// Observer.Serve, exported so servers with their own mux (cmd/avgid) share
// the bind/drain lifecycle.
func NewServer(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Serve starts an HTTP server for the observer on addr and returns once
// the listener is bound; requests are served in a background goroutine.
func (o *Observer) Serve(addr string) (*Server, error) {
	return NewServer(addr, o.Handler())
}
