package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the observer's state:
//
//	/metrics         Prometheus text exposition
//	/metrics.json    registry snapshot as JSON
//	/progress.json   live ProgressSnapshot
//	/trace.json      Chrome trace_event JSON of the spans so far
//	/forensics.json  masking-source breakdown (when Forensics is set)
//	/debug/pprof/    live Go profiling (heap, goroutine, CPU, ...)
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>avgi telemetry</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/metrics.json">/metrics.json</a></li>
<li><a href="/progress.json">/progress.json</a></li>
<li><a href="/trace.json">/trace.json</a> (chrome://tracing)</li>
<li><a href="/forensics.json">/forensics.json</a> (masking-source breakdown)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> (live profiling)</li>
</ul></body></html>`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Metrics == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Metrics == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.Metrics.WriteJSON(w)
	})
	mux.HandleFunc("/progress.json", func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Progress == nil {
			http.Error(w, "progress disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.Progress.WriteJSON(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Trace == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.Trace.WriteChromeTrace(w)
	})
	mux.HandleFunc("/forensics.json", func(w http.ResponseWriter, r *http.Request) {
		if o == nil || o.Forensics == nil {
			http.Error(w, "forensics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.Forensics.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP server for the observer on addr (e.g.
// "localhost:9090" or ":0" for an ephemeral port) and returns once the
// listener is bound; requests are served in a background goroutine.
func (o *Observer) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}
