package obs

import (
	"testing"

	"avgi/internal/engine"
)

func TestPublishEngineStats(t *testing.T) {
	r := NewRegistry()
	lb := map[string]string{"workload": "sha", "machine": "A72-like"}
	s := engine.Stats{
		Cycles: 1000,
		Events: 250,
		Components: []engine.ComponentStats{
			{Name: "c0", Ticks: 1000},
			{Name: "c1", Ticks: 900},
		},
	}
	PublishEngineStats(r, lb, s)
	// Publishing a second run accumulates the counters.
	PublishEngineStats(r, lb, s)

	if got := r.Counter("avgi_engine_events_total", "", lb).Value(); got != 500 {
		t.Errorf("events_total = %d, want 500", got)
	}
	if got := r.Counter("avgi_engine_cycles_total", "", lb).Value(); got != 2000 {
		t.Errorf("cycles_total = %d, want 2000", got)
	}
	if got := r.Gauge("avgi_engine_components", "", lb).Value(); got != 2 {
		t.Errorf("components = %v, want 2", got)
	}
	c1 := map[string]string{"workload": "sha", "machine": "A72-like", "component": "c1"}
	if got := r.Counter("avgi_engine_component_ticks_total", "", c1).Value(); got != 1800 {
		t.Errorf("c1 ticks_total = %d, want 1800", got)
	}
}

func TestPublishEngineStatsNilRegistry(t *testing.T) {
	PublishEngineStats(nil, nil, engine.Stats{Cycles: 1}) // must not panic
}
