package fault

import (
	"sort"
	"strings"
	"testing"
)

func TestListUniformAndSorted(t *testing.T) {
	fs := List("RF", 5000, 6144, 100000, 42)
	if len(fs) != 5000 {
		t.Fatalf("len = %d", len(fs))
	}
	if !sort.SliceIsSorted(fs, func(i, j int) bool { return fs[i].Cycle < fs[j].Cycle }) {
		t.Error("list not sorted by cycle")
	}
	var bitSum, cycSum float64
	ids := map[int]bool{}
	for _, f := range fs {
		if f.Bit >= 6144 {
			t.Fatalf("bit out of range: %d", f.Bit)
		}
		if f.Cycle < 1 || f.Cycle > 100000 {
			t.Fatalf("cycle out of range: %d", f.Cycle)
		}
		if f.Structure != "RF" {
			t.Fatalf("structure %q", f.Structure)
		}
		ids[f.ID] = true
		bitSum += float64(f.Bit)
		cycSum += float64(f.Cycle)
	}
	if len(ids) != 5000 {
		t.Error("IDs not unique")
	}
	// Uniformity sanity: means within 5% of the midpoint.
	if m := bitSum / 5000; m < 6144/2*0.95 || m > 6144/2*1.05 {
		t.Errorf("bit mean %f suspicious", m)
	}
	if m := cycSum / 5000; m < 50000*0.95 || m > 50000*1.05 {
		t.Errorf("cycle mean %f suspicious", m)
	}
}

func TestListDeterministic(t *testing.T) {
	a := List("RF", 100, 1000, 1000, 7)
	b := List("RF", 100, 1000, 1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different lists")
		}
	}
	c := List("RF", 100, 1000, 1000, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical lists")
	}
}

func TestListEmptyInputs(t *testing.T) {
	if List("RF", 10, 0, 100, 1) != nil {
		t.Error("zero bits should return nil")
	}
	if List("RF", 10, 100, 0, 1) != nil {
		t.Error("zero cycles should return nil")
	}
}

func TestListMultiBitNoWrap(t *testing.T) {
	// Start bits must be capped at bitCount-width: a multi-bit fault near
	// the top of the array must never wrap around to bit 0 (wrapped bits
	// are not spatial neighbours, Section VII.A).
	for _, width := range []int{2, 4, 8} {
		const bitCount = 64
		fs := ListMultiBit("RF", 5000, width, bitCount, 1000, 42)
		if len(fs) != 5000 {
			t.Fatalf("width %d: len = %d", width, len(fs))
		}
		top := uint64(0)
		for _, f := range fs {
			if f.Bits() != width {
				t.Fatalf("width %d: Bits() = %d", width, f.Bits())
			}
			last := f.Bit + uint64(f.Bits()) - 1
			if last >= bitCount {
				t.Fatalf("width %d: fault %s wraps past bit %d", width, f, bitCount-1)
			}
			if last > top {
				top = last
			}
		}
		// The cap must not truncate the population: with 5000 samples over
		// 64-width+1 start bits, the very last bit should still be hit.
		if top != bitCount-1 {
			t.Errorf("width %d: top flipped bit %d, want %d reachable", width, top, bitCount-1)
		}
	}
}

func TestListMultiBitDegenerateWidths(t *testing.T) {
	// Width <= 1 must behave exactly like the single-bit generator.
	a := List("RF", 50, 128, 1000, 9)
	b := ListMultiBit("RF", 50, 1, 128, 1000, 9)
	for i := range a {
		if a[i].Bit != b[i].Bit || a[i].Cycle != b[i].Cycle {
			t.Fatal("width-1 multi-bit list diverges from single-bit list")
		}
	}
	// Width wider than the array has no valid placement.
	if fs := ListMultiBit("RF", 10, 9, 8, 1000, 1); fs != nil {
		t.Errorf("width > bitCount should yield nil, got %d faults", len(fs))
	}
	// Width == bitCount has exactly one placement: bit 0.
	for _, f := range ListMultiBit("RF", 10, 8, 8, 1000, 1) {
		if f.Bit != 0 {
			t.Errorf("width == bitCount must pin start bit to 0, got %d", f.Bit)
		}
	}
}

func TestSeedStable(t *testing.T) {
	a := Seed("RF", "sha", 1)
	if a != Seed("RF", "sha", 1) {
		t.Error("Seed not stable")
	}
	if a == Seed("RF", "crc32", 1) || a == Seed("ROB", "sha", 1) {
		t.Error("Seed collisions across inputs")
	}
	if Seed("RFx", "y", 1) == Seed("RF", "xy", 1) {
		t.Error("separator not effective")
	}
	if a < 0 {
		t.Error("seed should be non-negative")
	}
}

func TestFaultString(t *testing.T) {
	s := Fault{ID: 3, Structure: "ROB", Bit: 17, Cycle: 999}.String()
	for _, want := range []string{"#3", "ROB", "17", "999"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}
