// Package fault defines the single-bit transient-fault model and the
// statistical fault-list generation of the AVGI study: faults are sampled
// uniformly over the (bit, cycle) space of a hardware structure, following
// the SFI formulation of Leveugle et al. that the paper adopts (Section
// II.D). No fault in the generated list is ever pruned — the paper's
// methodology analyses every sampled fault, which is what preserves the
// statistical error margin.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
)

// Fault is one transient upset: Width adjacent bits starting at Bit of
// structure Structure flip at cycle Cycle. Width 0 or 1 is the classic
// single-bit model; larger widths model the spatial multi-bit upsets of
// the paper's Section VII.A (neighbouring cells struck by one particle).
type Fault struct {
	ID        int
	Structure string
	Bit       uint64
	Cycle     uint64
	Width     int
}

// Bits returns the number of bits the fault flips (at least 1).
func (f Fault) Bits() int {
	if f.Width < 1 {
		return 1
	}
	return f.Width
}

// String renders a fault for logs.
func (f Fault) String() string {
	if f.Bits() > 1 {
		return fmt.Sprintf("#%d %s bits %d..%d @ cycle %d", f.ID, f.Structure, f.Bit, f.Bit+uint64(f.Bits())-1, f.Cycle)
	}
	return fmt.Sprintf("#%d %s bit %d @ cycle %d", f.ID, f.Structure, f.Bit, f.Cycle)
}

// List generates n faults for a structure with bitCount injectable bits.
// The temporal population is the *golden* (fault-free) run: totalCycles
// must be the golden cycle count, and every sampled injection cycle lies
// in [1, totalCycles] — a fault can only be injected into machine state
// the fault-free execution actually reaches. Bits and cycles are sampled
// uniformly and independently; the list is sorted by injection cycle so a
// campaign can walk the golden execution forward, forking at each
// injection point.
//
// The generator is deterministic in seed.
func List(structure string, n int, bitCount, totalCycles uint64, seed int64) []Fault {
	if bitCount == 0 || totalCycles == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = Fault{
			ID:        i,
			Structure: structure,
			Bit:       uint64(rng.Int63n(int64(bitCount))),
			Cycle:     uint64(rng.Int63n(int64(totalCycles))) + 1,
		}
	}
	sort.Slice(faults, func(i, j int) bool {
		if faults[i].Cycle != faults[j].Cycle {
			return faults[i].Cycle < faults[j].Cycle
		}
		return faults[i].ID < faults[j].ID
	})
	return faults
}

// ListMultiBit generates n spatial multi-bit faults of the given width
// (adjacent bits), sampled like List. Used for the Section VII.A
// multi-bit-upset analysis.
//
// Start bits are sampled from [0, bitCount-width] so the flipped range
// [Bit, Bit+width) never runs past the end of the array: a fault sampled
// near the top must not wrap around and "adjacently" flip bit 0, which is
// not a spatial neighbour of the last cell. Widths larger than the array
// yield no faults.
func ListMultiBit(structure string, n, width int, bitCount, totalCycles uint64, seed int64) []Fault {
	if width < 1 {
		width = 1
	}
	if uint64(width) > bitCount {
		return nil
	}
	faults := List(structure, n, bitCount-uint64(width)+1, totalCycles, seed)
	for i := range faults {
		faults[i].Width = width
	}
	return faults
}

// Seed derives a stable per-(structure, workload) seed so campaigns are
// reproducible run to run without coordination.
func Seed(structure, workload string, base int64) int64 {
	h := uint64(base)
	for _, s := range []string{structure, "\x00", workload} {
		for _, c := range []byte(s) {
			h = h*1099511628211 + uint64(c) // FNV-1a style mix
		}
	}
	return int64(h & (1<<62 - 1))
}
