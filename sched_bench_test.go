package avgi

import (
	"testing"

	"avgi/internal/campaign"
)

// Scheduler benchmarks: study-level throughput of the serial pair-by-pair
// driving style (each campaign runs alone, workers idle between pairs)
// against Prefetch/RunAll (campaigns overlap, the shared budget stays
// saturated across pair boundaries), under both fork policies.
//
// Reproduce with:
//
//	go test -run='^$' -bench=StudyGrid -benchtime=3x .
//
// Each iteration builds a fresh Study (fresh single-flight cache) so every
// campaign genuinely executes; golden runs are the per-iteration setup cost
// either way, so the delta isolates the scheduling policy.

func newSchedBenchStudy(b *testing.B, policy ForkPolicy) *Study {
	b.Helper()
	var wl []Workload
	for _, n := range []string{"sha", "crc32"} {
		w, err := WorkloadByName(n)
		if err != nil {
			b.Fatal(err)
		}
		wl = append(wl, w)
	}
	s, err := NewStudy(StudyConfig{
		Machine:            ConfigA72(),
		Workloads:          wl,
		Structures:         []string{"RF", "ROB"},
		FaultsPerStructure: 32,
		Workers:            4,
		SeedBase:           7,
		ForkPolicy:         policy,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchStudyGrid(b *testing.B, policy ForkPolicy, scheduled bool) {
	b.ReportAllocs()
	faults := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := newSchedBenchStudy(b, policy)
		b.StartTimer()
		if scheduled {
			s.RunAll(ModeExhaustive)
		}
		for _, structure := range s.Cfg.Structures {
			for _, w := range s.WorkloadNames() {
				faults += len(s.Exhaustive(structure, w))
			}
		}
	}
	b.ReportMetric(float64(faults)/b.Elapsed().Seconds(), "faults/s")
}

func BenchmarkStudyGridSerialSnapshot(b *testing.B) { benchStudyGrid(b, campaign.ForkSnapshot, false) }
func BenchmarkStudyGridScheduledSnapshot(b *testing.B) {
	benchStudyGrid(b, campaign.ForkSnapshot, true)
}
func BenchmarkStudyGridSerialClone(b *testing.B) { benchStudyGrid(b, campaign.ForkLegacyClone, false) }
func BenchmarkStudyGridScheduledClone(b *testing.B) {
	benchStudyGrid(b, campaign.ForkLegacyClone, true)
}
