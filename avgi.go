// Package avgi is a from-scratch Go reproduction of "AVGI:
// Microarchitecture-Driven, Fast and Accurate Vulnerability Assessment"
// (Papadimitriou & Gizopoulos, HPCA 2023).
//
// The package is the public facade over the full stack built for the
// reproduction:
//
//   - a detailed out-of-order CPU model with two configurations standing in
//     for the paper's Arm Cortex-A72 (64-bit) and Cortex-A15 (32-bit)
//     machines,
//   - the thirteen MiBench/NAS-style workloads of the study,
//   - a GeFIN-style statistical fault-injection framework over the twelve
//     hardware structures of Table II,
//   - the IMM classifier of Table I / Fig. 2, and
//   - the AVGI methodology itself: IMM weights, the ESC equation,
//     effective-residency-time windows, and the five-phase estimator.
//
// # Quick start
//
//	cfg := avgi.ConfigA72()
//	r, _ := avgi.NewRunner(cfg, "sha")
//	faults := r.FaultList("RF", 400, 1)
//	truth := campaign.Summarize(r.Run(faults, avgi.ModeExhaustive, 0, 0))
//
// For the full methodology, build a Study over several workloads, train an
// Estimator on exhaustive campaigns, and Assess new workloads with fast
// AVGI runs only. See examples/ and cmd/avgi.
package avgi

import (
	"io"

	"avgi/internal/ace"
	"avgi/internal/archinj"
	"avgi/internal/asm"
	"avgi/internal/campaign"
	"avgi/internal/core"
	"avgi/internal/cpu"
	"avgi/internal/fault"
	"avgi/internal/forensics"
	"avgi/internal/imm"
	"avgi/internal/isa"
	"avgi/internal/obs"
	"avgi/internal/prog"
	"avgi/internal/report"
	"avgi/internal/stats"
)

// Re-exported types: the facade exposes the internal packages' types under
// one import path.
type (
	// MachineConfig describes one microarchitecture model.
	MachineConfig = cpu.Config
	// Machine is a simulated CPU with a loaded program.
	Machine = cpu.Machine
	// Cluster is a multi-core machine: private L1s/TLBs per core over a
	// shared L2 and RAM, driven by one deterministic serial engine.
	Cluster = cpu.Cluster
	// Workload is one of the thirteen benchmarks.
	Workload = prog.Workload
	// Program is an assembled workload image.
	Program = asm.Program
	// Runner executes fault-injection campaigns for one
	// (machine, workload) pair.
	Runner = campaign.Runner
	// CampaignResult is the outcome of one injected fault.
	CampaignResult = campaign.Result
	// CampaignSummary aggregates campaign results.
	CampaignSummary = campaign.Summary
	// Mode selects how far faulty runs simulate.
	Mode = campaign.Mode
	// ForkPolicy selects how per-fault runs fork off the golden prefix
	// (checkpoint snapshots vs. legacy deep clones).
	ForkPolicy = campaign.ForkPolicy
	// Fault is one single-bit transient fault.
	Fault = fault.Fault
	// IMM is an ISA Manifestation Model class (Table I).
	IMM = imm.IMM
	// Effect is a final fault-effect class (Masked/SDC/Crash).
	Effect = imm.Effect
	// AVF is a cross-layer vulnerability breakdown.
	AVF = core.AVF
	// FIT is a Failures-in-Time breakdown.
	FIT = core.FIT
	// Estimator is the trained AVGI methodology.
	Estimator = core.Estimator
	// Assessment is the output of the five-phase AVGI flow.
	Assessment = core.Assessment
	// ERT is an effective-residency-time stop rule.
	ERT = core.ERT
	// RunOptions controls a direct Machine.Run invocation.
	RunOptions = cpu.RunOptions
	// RunResult summarises a direct machine run.
	RunResult = cpu.Result
	// Table is a renderable result table.
	Table = report.Table
	// Variant selects the ISA width.
	Variant = isa.Variant

	// Observer is the telemetry bundle (metrics registry, live progress,
	// span tracer) a Study or Runner reports into; see docs/OBSERVABILITY.md.
	Observer = obs.Observer
	// MetricsRegistry holds counters, gauges and histograms with
	// Prometheus-text and JSON renderers.
	MetricsRegistry = obs.Registry
	// Progress is the live campaign progress reporter.
	Progress = obs.Progress
	// ProgressSnapshot is a point-in-time progress view.
	ProgressSnapshot = obs.ProgressSnapshot
	// Tracer records study-phase spans for NDJSON / chrome://tracing
	// export.
	Tracer = obs.Tracer

	// Explorer aggregates per-fault forensic attributions into the
	// masking-source breakdown behind report.MaskingSources and the
	// observer's /forensics.json endpoint.
	Explorer = forensics.Explorer
	// ForensicRecord is one fault's attribution (cause, latency,
	// first-divergence capture); carried on CampaignResult.Forensics.
	ForensicRecord = forensics.Record

	// Budget is a study-wide worker pool shared by all concurrently
	// executing campaigns; see docs/SCHEDULING.md. Runner.RunBudget draws
	// workers from one, and Study.Budget exposes the study's own.
	Budget = campaign.Budget
)

// NewBudget returns a worker budget of the given size (0 = all CPUs), for
// running ad-hoc campaigns under a shared concurrency cap via
// Runner.RunBudget.
func NewBudget(workers int) *Budget { return campaign.NewBudget(workers) }

// NewExplorer returns an empty forensics explorer, to be set as
// StudyConfig.Forensics (or Runner.Forensics) and, optionally, as the
// observer's Forensics source for /forensics.json.
func NewExplorer() *Explorer { return forensics.NewExplorer() }

// MaskingSources renders an explorer's per-structure masking-cause
// breakdown as a table.
func MaskingSources(ex *Explorer) *Table { return report.MaskingSources(ex.Snapshot()) }

// Re-exported constants.
const (
	ModeExhaustive = campaign.ModeExhaustive
	ModeHVF        = campaign.ModeHVF
	ModeAVGI       = campaign.ModeAVGI

	// ForkCursor (the default) advances a per-worker golden cursor once
	// through its chunk and re-arms a local snapshot per fault with
	// dirty-delta copies; ForkSnapshot rewinds pooled scratch machines
	// from shared interval checkpoints; ForkLegacyClone deep-copies a
	// mother machine per fault. See docs/CHECKPOINTING.md and
	// docs/PERFORMANCE.md.
	ForkCursor      = campaign.ForkCursor
	ForkSnapshot    = campaign.ForkSnapshot
	ForkLegacyClone = campaign.ForkLegacyClone

	// RawFITPerBit is the raw failure rate used for FIT derating.
	RawFITPerBit = core.RawFITPerBit
)

// ConfigA72 returns the 64-bit machine model (Armv8 / Cortex-A72-like).
func ConfigA72() MachineConfig { return cpu.ConfigA72() }

// ConfigA15 returns the 32-bit machine model (Armv7 / Cortex-A15-like).
func ConfigA15() MachineConfig { return cpu.ConfigA15() }

// Structures lists the twelve fault-target hardware structures in the
// paper's Table II order.
func Structures() []string {
	return append([]string(nil), cpu.StructureNames...)
}

// Workloads returns all thirteen workloads sorted by name.
func Workloads() []Workload { return prog.All() }

// MiBenchWorkloads returns the ten MiBench-like workloads.
func MiBenchWorkloads() []Workload { return prog.MiBench() }

// NASWorkloads returns the three NAS-like workloads.
func NASWorkloads() []Workload { return prog.NAS() }

// WorkloadByName looks up one workload.
func WorkloadByName(name string) (Workload, error) { return prog.ByName(name) }

// NewRunner builds a campaign runner: it assembles the named workload for
// the config's ISA variant and performs the golden run.
func NewRunner(cfg MachineConfig, workload string) (*Runner, error) {
	w, err := prog.ByName(workload)
	if err != nil {
		return nil, err
	}
	return campaign.NewRunner(cfg, w.Build(cfg.Variant))
}

// NewRunnerCores builds a campaign runner over an n-core shared-L2
// cluster (cores <= 1 is equivalent to NewRunner). Cluster fault targets
// carry a core prefix: "c1/RF" is core 1's register file.
func NewRunnerCores(cfg MachineConfig, workload string, cores int) (*Runner, error) {
	w, err := prog.ByName(workload)
	if err != nil {
		return nil, err
	}
	return campaign.NewRunnerCores(cfg, w.Build(cfg.Variant), cores)
}

// NewMachine builds a bare machine with the named workload loaded, for
// direct simulation (see cmd/avgisim).
func NewMachine(cfg MachineConfig, workload string) (*Machine, error) {
	w, err := prog.ByName(workload)
	if err != nil {
		return nil, err
	}
	return cpu.New(cfg, w.Build(cfg.Variant)), nil
}

// NewCluster builds an n-core shared-L2 cluster with the named workload
// loaded into every core's physical window.
func NewCluster(cfg MachineConfig, workload string, cores int) (*Cluster, error) {
	w, err := prog.ByName(workload)
	if err != nil {
		return nil, err
	}
	return cpu.NewCluster(cfg, w.Build(cfg.Variant), cores), nil
}

// SampleSize returns the Leveugle sample size for an error margin and
// confidence z-score (see internal/stats).
func SampleSize(population uint64, margin, z float64) uint64 {
	return stats.SampleSize(population, margin, z, 0.5)
}

// ErrorMargin returns the achieved margin of a campaign of n faults over a
// population at z confidence.
func ErrorMargin(n, population uint64, z float64) float64 {
	return stats.ErrorMargin(n, population, z, 0.5)
}

// Z-scores for confidence levels.
const (
	Z95 = stats.Z95
	Z99 = stats.Z99
)

// ACEAnalyzeRF runs the ACE-analysis baseline (Fig. 1 comparator) on a
// runner's golden trace and returns the estimated register-file AVF.
func ACEAnalyzeRF(r *Runner) float64 {
	return ace.AnalyzeRF(r.Golden.Trace, r.Cfg.Variant, r.Cfg.PhysRegs).AVF
}

// ArchInjSummary is the outcome of an architecture-level (ISA-level)
// injection campaign — the fast-but-misleading baseline of the paper's
// introduction.
type ArchInjSummary = archinj.Summary

// ArchLevelCampaign injects n single-bit flips into architectural
// registers of a functional execution of the named workload (no
// microarchitecture involved) and reports the effect summary. Compare its
// PVF against the microarchitecture-level register-file AVF to reproduce
// the paper's motivation: high-level injection misleads.
func ArchLevelCampaign(cfg MachineConfig, workload string, n int, seed int64) (ArchInjSummary, error) {
	w, err := prog.ByName(workload)
	if err != nil {
		return ArchInjSummary{}, err
	}
	sum, _, err := archinj.Campaign(w.Build(cfg.Variant), n, seed)
	return sum, err
}

// SaveEstimator persists a trained estimator as JSON — the methodology's
// reusable artefact: train once per microarchitecture, assess anywhere.
func SaveEstimator(w io.Writer, est *Estimator) error { return est.Save(w) }

// LoadEstimator reads an estimator written by SaveEstimator.
func LoadEstimator(r io.Reader) (*Estimator, error) { return core.LoadEstimator(r) }

// NewObserver returns an Observer with metrics, progress and tracing all
// enabled; progress log lines go to logw (nil for silent). Attach it via
// StudyConfig.Obs or Runner.Obs.
func NewObserver(logw io.Writer) *Observer { return obs.New(logw) }

// ValidateStructure returns a descriptive error for structure names that
// are not one of the twelve Table II fault targets.
func ValidateStructure(name string) error { return cpu.ValidateStructure(name) }

// validateStructure keeps the historical internal name.
func validateStructure(name string) error { return cpu.ValidateStructure(name) }
