package avgi

// Determinism gates for the serial event engine (internal/engine): the same
// machine built twice and run through the engine must finish on the same
// cycle, with the same commit count and the same output digest — the
// repeatability contract every other subsystem (trace comparison, journal
// resume, the golden-cursor fault path) is built on. The harness follows
// the build-twice/run/compare idiom of deterministic event-driven
// simulators: no tolerance, any divergence is a hard failure.
//
// The cluster gates additionally run under -race in CI: the engine is
// serial by design, so a data-race report here means a component broke the
// single-goroutine discipline, not that a tolerance needs loosening.

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"avgi/internal/cpu"
)

// runFingerprint is the divergence-sensitive digest of one run.
type runFingerprint struct {
	status  cpu.Status
	cycles  uint64
	commits uint64
	digest  [32]byte
}

func (f runFingerprint) String() string {
	return fmt.Sprintf("status=%v cycles=%d commits=%d output=%x", f.status, f.cycles, f.commits, f.digest[:8])
}

func machineFingerprint(t *testing.T, cfg MachineConfig, workload string) runFingerprint {
	t.Helper()
	m, err := NewMachine(cfg, workload)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(RunOptions{MaxCycles: 50_000_000})
	return runFingerprint{res.Status, res.Cycles, res.Commits, sha256.Sum256(res.Output)}
}

func clusterFingerprint(t *testing.T, cfg MachineConfig, workload string, cores int) runFingerprint {
	t.Helper()
	cl, err := NewCluster(cfg, workload, cores)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run(RunOptions{MaxCycles: 50_000_000})
	return runFingerprint{res.Status, res.Cycles, res.Commits, sha256.Sum256(res.Output)}
}

// TestEngineDeterminismAllWorkloads is the full gate: all thirteen
// workloads on both machine variants (AVG64/A72 and AVG32/A15), each built
// twice and run through the engine.
func TestEngineDeterminismAllWorkloads(t *testing.T) {
	for _, cfg := range []MachineConfig{ConfigA72(), ConfigA15()} {
		for _, w := range Workloads() {
			t.Run(cfg.Name+"/"+w.Name, func(t *testing.T) {
				a := machineFingerprint(t, cfg, w.Name)
				b := machineFingerprint(t, cfg, w.Name)
				if a != b {
					t.Fatalf("same-seed runs diverged:\n  first  %v\n  second %v", a, b)
				}
				if a.status != cpu.StatusHalted {
					t.Fatalf("golden run did not halt: %v", a)
				}
			})
		}
	}
}

// TestClusterDeterminism is the multi-core gate: the 2-core shared-L2
// cluster, built twice and run through the engine, on both variants. The
// cluster output must also be exactly two copies of the single-core
// output — cores in disjoint physical windows running the same program
// must not perturb each other through the shared L2 in a fault-free run.
func TestClusterDeterminism(t *testing.T) {
	for _, cfg := range []MachineConfig{ConfigA72(), ConfigA15()} {
		for _, name := range []string{"sha", "crc32", "qsort"} {
			t.Run(cfg.Name+"/"+name, func(t *testing.T) {
				a := clusterFingerprint(t, cfg, name, 2)
				b := clusterFingerprint(t, cfg, name, 2)
				if a != b {
					t.Fatalf("same-seed cluster runs diverged:\n  first  %v\n  second %v", a, b)
				}
				if a.status != cpu.StatusHalted {
					t.Fatalf("cluster golden run did not halt: %v", a)
				}

				single, err := NewMachine(cfg, name)
				if err != nil {
					t.Fatal(err)
				}
				sres := single.Run(RunOptions{MaxCycles: 50_000_000})
				want := sha256.Sum256(append(append([]byte(nil), sres.Output...), sres.Output...))
				if a.digest != want {
					t.Fatalf("cluster output is not two copies of the single-core output")
				}
				if a.commits != 2*sres.Commits {
					t.Fatalf("cluster commits %d, want %d", a.commits, 2*sres.Commits)
				}
			})
		}
	}
}

// TestClusterDeterminismFourCores widens the arbitration surface: four
// cores contending on one L2 must still be perfectly repeatable.
func TestClusterDeterminismFourCores(t *testing.T) {
	cfg := ConfigA72()
	a := clusterFingerprint(t, cfg, "sha", 4)
	b := clusterFingerprint(t, cfg, "sha", 4)
	if a != b {
		t.Fatalf("4-core runs diverged:\n  first  %v\n  second %v", a, b)
	}
	if a.status != cpu.StatusHalted {
		t.Fatalf("4-core golden run did not halt: %v", a)
	}
}
