package avgi

import (
	"bytes"
	"strings"
	"testing"
)

func TestArchLevelCampaignFacade(t *testing.T) {
	sum, err := ArchLevelCampaign(ConfigA72(), "bitcount", 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 60 || sum.Masked+sum.SDC+sum.Crash != 60 {
		t.Errorf("summary %+v", sum)
	}
	if _, err := ArchLevelCampaign(ConfigA72(), "nope", 10, 1); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestMotivationTable(t *testing.T) {
	s := getStudy(t)
	tab := s.Motivation()
	if len(tab.Rows) != len(s.WorkloadNames()) {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Title, "PVF") {
		t.Errorf("title %q", tab.Title)
	}
}

func TestERTMarginAblationTable(t *testing.T) {
	s := getStudy(t)
	tab := s.ERTMarginAblation(0.5, 1.25)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Windows scale with the margin: row 0 (0.5) must be shorter than
	// row 1 (1.25).
	if tab.Rows[0][1] == tab.Rows[1][1] {
		t.Errorf("windows identical across margins: %v", tab.Rows)
	}
}

func TestEstimatorSaveLoadFacade(t *testing.T) {
	s := getStudy(t)
	est := s.TrainEstimator()
	var buf bytes.Buffer
	if err := SaveEstimator(&buf, est); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded estimator must produce identical assessments.
	results, window := s.AVGIRun(est, "RF", "sha")
	a := est.AssessResults(s.Runner("sha"), "RF", results, window)
	b := loaded.AssessResults(s.Runner("sha"), "RF", results, window)
	if a.AVF != b.AVF {
		t.Errorf("assessments differ after reload: %+v vs %+v", a.AVF, b.AVF)
	}
	if loaded.WindowFor("RF", 100000) != est.WindowFor("RF", 100000) {
		t.Error("windows differ after reload")
	}
}

func TestIMMDistributionMeansNormalised(t *testing.T) {
	s := getStudy(t)
	labels, values := s.IMMDistributionMeans("RF")
	if len(labels) != 7 || len(values) != 7 {
		t.Fatalf("%d labels %d values", len(labels), len(values))
	}
	var sum float64
	for _, v := range values {
		if v < 0 || v > 1 {
			t.Errorf("fraction out of range: %f", v)
		}
		sum += v
	}
	if sum > 1.0001 {
		t.Errorf("distribution sums to %f", sum)
	}
}

func TestMultiBitAblationTable(t *testing.T) {
	s := getStudy(t)
	tab := s.MultiBitAblation(1, 4)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "1" || tab.Rows[1][0] != "4" {
		t.Errorf("width column: %v %v", tab.Rows[0][0], tab.Rows[1][0])
	}
}
