module avgi

go 1.22
