// Command avgisim runs a single workload on one of the machine models for
// inspection: golden execution with pipeline statistics, program
// disassembly, or a single targeted fault injection with its IMM and final
// effect classification.
//
// Usage:
//
//	avgisim [flags] <workload>
//
// Examples:
//
//	avgisim sha                         # golden run + stats
//	avgisim -machine a15 -disasm crc32  # disassemble the 32-bit image
//	avgisim -inject "RF:100:5000" sha   # flip RF bit 100 at cycle 5000
//	avgisim -cores 2 sha                # 2-core shared-L2 cluster golden run
//	avgisim -cores 2 -inject "c1/RF:100:5000" sha  # flip core 1's RF
//
// Like cmd/avgi, AVGI-mode windows end early once the injected corruption
// is provably erased; -early-exit=false forces full ERT windows
// (docs/PERFORMANCE.md).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"avgi"
	"avgi/internal/asm"
	"avgi/internal/campaign"
	"avgi/internal/cliflags"
	"avgi/internal/clilog"
	"avgi/internal/cpu"
	"avgi/internal/fault"
	"avgi/internal/isa"
	"avgi/internal/journal"
)

var (
	flagMachine = flag.String("machine", "a72", "machine model: a72 (64-bit) or a15 (32-bit)")
	flagCores   = flag.Int("cores", 1, "number of cores: 1 = single-core machine, N >= 2 = shared-L2 cluster (fault targets take a core prefix, e.g. -inject \"c1/RF:100:5000\")")
	flagDisasm  = flag.Bool("disasm", false, "print the program disassembly and exit")
	flagInject  = flag.String("inject", "", "inject one fault: STRUCTURE:BIT:CYCLE")
	flagTrace   = flag.Int("trace", 0, "print the first N commit-trace records (core 0 on a cluster)")
	flagStats   = flag.Bool("stats", false, "print pipeline and memory-system counters (single-core only)")
	flagRunAsm  = flag.Bool("s", false, "treat the argument as an assembly source file (.s) instead of a workload name")

	// Shared campaign/telemetry/profiling flags (see internal/cliflags).
	common = cliflags.Register(flag.CommandLine, 1)
)

// logger carries diagnostics to stderr per -log; set in main before any use.
var logger *slog.Logger

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: avgisim [flags] <workload>   (see -h)")
		os.Exit(2)
	}
	var err error
	logger, err = clilog.New(os.Stderr, "avgisim", common.Log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avgisim:", err)
		os.Exit(2)
	}
	if common.DistRole != "" {
		logger.Error("-dist-role: avgisim runs one targeted fault; distribution applies to campaigns (use avgi or avgid)")
		os.Exit(2)
	}
	if _, err := common.SyncPolicy(); err != nil {
		logger.Error(err.Error())
		os.Exit(2)
	}
	stopProf, err := common.StartProfiles(func(msg string) { logger.Error(msg) })
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	defer stopProf()
	obsv := avgi.NewObserver(os.Stderr)
	if common.Progress {
		stop := obsv.Progress.StartTicker(2 * time.Second)
		defer stop()
	}
	if common.MetricsAddr != "" {
		srv, err := obsv.Serve(common.MetricsAddr)
		if err != nil {
			logger.Error(err.Error())
			os.Exit(1)
		}
		defer srv.Close()
		stopHealth := obsv.StartHealth(10 * time.Second)
		defer stopHealth()
		obsv.Logf("telemetry: http://%s/ (/metrics, /progress.json, /debug/pprof/)", srv.Addr())
	}
	if err := run(flag.Arg(0), obsv); err != nil {
		stopProf()
		logger.Error(err.Error())
		os.Exit(1)
	}
}

func machineConfig() (avgi.MachineConfig, error) {
	switch *flagMachine {
	case "a72":
		return avgi.ConfigA72(), nil
	case "a15":
		return avgi.ConfigA15(), nil
	}
	return avgi.MachineConfig{}, fmt.Errorf("unknown machine %q", *flagMachine)
}

func run(name string, obsv *avgi.Observer) error {
	cfg, err := machineConfig()
	if err != nil {
		return err
	}
	var p *avgi.Program
	var ref []byte
	if *flagRunAsm {
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		p, err = asm.Parse(name, string(src), cfg.Variant)
		if err != nil {
			return err
		}
	} else {
		w, err := avgi.WorkloadByName(name)
		if err != nil {
			return err
		}
		p = w.Build(cfg.Variant)
		ref = w.Ref(cfg.Variant)
	}

	if *flagDisasm {
		for i, word := range p.Text {
			fmt.Printf("%06x:  %08x  %s\n", p.TextBase+uint64(i*4), word, isa.DisasmWord(word, cfg.Variant))
		}
		return nil
	}

	if *flagCores < 1 {
		return fmt.Errorf("-cores %d: want >= 1", *flagCores)
	}
	r, err := campaign.NewRunnerCores(cfg, p, *flagCores)
	if err != nil {
		return err
	}
	r.Obs = obsv
	if r.ForkPolicy, err = common.ForkPolicy(); err != nil {
		return err
	}
	r.CheckpointInterval = common.CkptInterval
	r.EarlyExit = common.EarlyExit
	if common.Forensics {
		r.Forensics = avgi.NewExplorer()
		r.ForensicsSample = 1
	}
	r.PublishGolden()
	if *flagCores > 1 {
		fmt.Printf("workload  %s (%s, %d cores, shared L2)\n", name, cfg.Name, *flagCores)
	} else {
		fmt.Printf("workload  %s (%s)\n", name, cfg.Name)
	}
	fmt.Printf("golden    %d cycles, %d commits, IPC %.2f\n",
		r.Golden.Cycles, r.Golden.Commits,
		float64(r.Golden.Commits)/float64(r.Golden.Cycles))
	fmt.Printf("output    %d bytes\n", len(r.Golden.Output))

	if *flagStats {
		if *flagCores > 1 {
			return fmt.Errorf("-stats is single-core only (drop -cores)")
		}
		m := cpu.New(cfg, p)
		m.Run(avgi.RunOptions{MaxCycles: r.Golden.Cycles + 10})
		fmt.Print(m.StatsReport())
	}

	if *flagTrace > 0 {
		goldenTrace := r.Golden.Trace
		if *flagCores > 1 {
			goldenTrace = r.CoreGolden[0].Trace
		}
		n := *flagTrace
		if n > len(goldenTrace) {
			n = len(goldenTrace)
		}
		for _, rec := range goldenTrace[:n] {
			fmt.Printf("  cyc %6d  pc %06x  %-28s", rec.Cycle, rec.PC, isa.DisasmWord(rec.Word, cfg.Variant))
			if rec.HasDest {
				fmt.Printf("  r%d=%#x", rec.Dest, rec.Value)
			}
			if rec.IsStore {
				fmt.Printf("  [%#x]=%#x", rec.Addr, rec.Value)
			}
			fmt.Println()
		}
	}

	if *flagInject != "" {
		parts := strings.Split(*flagInject, ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -inject %q, want STRUCTURE:BIT:CYCLE", *flagInject)
		}
		bit, err1 := strconv.ParseUint(parts[1], 10, 64)
		cyc, err2 := strconv.ParseUint(parts[2], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad -inject numbers in %q", *flagInject)
		}
		f := fault.Fault{Structure: parts[0], Bit: bit, Cycle: cyc}
		if err := cpu.ValidateStructure(f.Structure); err != nil {
			return err
		}
		// Catch the shape mismatch here with a usable message instead of
		// letting the campaign panic on a structure with no bits.
		_, _, prefixed := cpu.SplitCoreTarget(f.Structure)
		if *flagCores > 1 && !prefixed {
			return fmt.Errorf("-cores %d needs a per-core target: -inject %q", *flagCores,
				"c0/"+*flagInject)
		}
		if *flagCores == 1 && prefixed {
			return fmt.Errorf("core-prefixed target %q needs -cores >= 2", f.Structure)
		}
		res, err := injectJournalled(r, f, name, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("fault     %s\n", f)
		fmt.Printf("IMM       %s\n", res.IMM)
		fmt.Printf("effect    %s", res.Effect)
		if res.Crash != 0 {
			fmt.Printf(" (%s)", res.Crash)
		}
		fmt.Println()
		if res.Manifested {
			fmt.Printf("manifest  %d cycles after injection\n", res.ManifestLatency)
		} else {
			fmt.Println("manifest  never (no commit-trace deviation)")
		}
		if fr := res.Forensics; fr != nil {
			fmt.Printf("cause     %s (sites %d, live %d, reads %d, latency %d)\n",
				fr.Cause, fr.Sites, fr.LiveSites, fr.Reads, fr.Latency)
			if d := fr.Divergence; d != nil {
				fmt.Printf("diverge   %s, +%d cycles", d.Kind, d.CycleDelta)
				if d.PC != 0 {
					fmt.Printf(", pc %#x (commit %d)", d.PC, d.CommitIndex)
				}
				fmt.Println()
			}
		}
		return nil
	}

	// Plain golden run: show a digest of the output.
	return goldenDigest(r, ref)
}

// injectJournalled runs one targeted injection through the durable journal
// when -journal is set: with -resume a journalled result for the exact
// same fault is reused, otherwise the fresh result is appended. The shard
// is keyed like a one-fault exhaustive campaign of the study scheduler.
func injectJournalled(r *avgi.Runner, f fault.Fault, workload string, cfg avgi.MachineConfig) (campaign.Result, error) {
	run := func() campaign.Result {
		return r.Run([]fault.Fault{f}, campaign.ModeExhaustive, 0, common.Workers)[0]
	}
	if common.Journal == "" {
		if common.Resume {
			return campaign.Result{}, fmt.Errorf("-resume requires -journal DIR")
		}
		return run(), nil
	}
	j, err := journal.Open(common.Journal)
	if err != nil {
		return campaign.Result{}, err
	}
	key := journal.Key{Structure: f.Structure, Workload: workload, Mode: campaign.ModeExhaustive.String(), Window: 0}
	bind := journal.Binding{
		Machine:     cfg.Name,
		Variant:     cfg.Variant.String(),
		ProgramHash: journal.HashProgram(r.Prog),
		Seed:        0, // targeted injection: no sampled list
		Faults:      1,
	}
	if common.Resume {
		prior, err := j.Load(key, bind)
		if err == nil {
			// The shard is keyed by (structure, workload); the record
			// must also carry the exact same fault, or a previous
			// -inject with different BIT:CYCLE would be replayed.
			if pr, ok := prior[0]; ok && pr.Fault == f {
				fmt.Printf("journal   hit (result loaded from %s)\n", j.Dir())
				return pr, nil
			}
		}
	}
	res := run()
	w, err := j.Writer(key, bind, false)
	if err != nil {
		return res, nil // journal is best-effort; the result stands
	}
	if sync, err := common.SyncPolicy(); err == nil {
		w.SetSyncPolicy(sync)
	}
	w.Append(0, res)
	if err := w.Close(); err == nil {
		fmt.Printf("journal   result appended under %s\n", j.Dir())
	}
	return res, nil
}

// goldenDigest prints the golden-output head and verifies it against the
// reference model. On a cluster every core runs the same program, so the
// expected output is the reference repeated once per core.
func goldenDigest(r *avgi.Runner, ref []byte) error {
	out := r.Golden.Output
	if len(out) > 32 {
		out = out[:32]
	}
	fmt.Printf("head      % x%s\n", out, map[bool]string{true: " ...", false: ""}[len(r.Golden.Output) > 32])
	if ref != nil {
		if r.Cores > 1 {
			ref = bytes.Repeat(ref, r.Cores)
		}
		if !bytes.Equal(r.Golden.Output, ref) {
			return fmt.Errorf("golden output does not match the reference model")
		}
		fmt.Println("verified  output matches the reference model")
	}
	return nil
}
