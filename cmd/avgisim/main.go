// Command avgisim runs a single workload on one of the machine models for
// inspection: golden execution with pipeline statistics, program
// disassembly, or a single targeted fault injection with its IMM and final
// effect classification.
//
// Usage:
//
//	avgisim [flags] <workload>
//
// Examples:
//
//	avgisim sha                         # golden run + stats
//	avgisim -machine a15 -disasm crc32  # disassemble the 32-bit image
//	avgisim -inject "RF:100:5000" sha   # flip RF bit 100 at cycle 5000
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"avgi"
	"avgi/internal/asm"
	"avgi/internal/campaign"
	"avgi/internal/clilog"
	"avgi/internal/cpu"
	"avgi/internal/fault"
	"avgi/internal/isa"
	"avgi/internal/journal"
)

var (
	flagMachine = flag.String("machine", "a72", "machine model: a72 (64-bit) or a15 (32-bit)")
	flagDisasm  = flag.Bool("disasm", false, "print the program disassembly and exit")
	flagInject  = flag.String("inject", "", "inject one fault: STRUCTURE:BIT:CYCLE")
	flagTrace   = flag.Int("trace", 0, "print the first N commit-trace records")
	flagStats   = flag.Bool("stats", false, "print pipeline and memory-system counters")
	flagRunAsm  = flag.Bool("s", false, "treat the argument as an assembly source file (.s) instead of a workload name")

	flagProgress    = flag.Bool("progress", false, "print live campaign progress lines to stderr")
	flagMetricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /progress.json on this address for the duration of the run")

	flagFork         = flag.String("fork", "cursor", "per-fault fork policy: cursor (golden cursor + dirty-delta), snapshot (checkpoint store) or clone (legacy deep copy)")
	flagCkptInterval = flag.Uint64("ckpt-interval", 0, "checkpoint spacing in cycles for the cursor/snapshot fork policies (0 = derive from golden length)")
	flagWorkers      = flag.Int("workers", 1, "worker budget for the injection run (0 = all CPUs; see docs/SCHEDULING.md)")

	flagCPUProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file (see docs/OBSERVABILITY.md)")
	flagMemProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")

	flagJournal = flag.String("journal", "", "journal the -inject result as an NDJSON shard under this directory (see docs/ROBUSTNESS.md)")
	flagResume  = flag.Bool("resume", false, "with -journal: reuse a journalled result for the same fault instead of re-simulating")

	flagForensics = flag.Bool("forensics", false, "with -inject: probe the faulty run and print the fault's forensic attribution (masking source / first divergence)")
	flagLog       = flag.String("log", "text", "stderr log format: text (classic `avgisim: msg` lines) or json")
)

// logger carries diagnostics to stderr per -log; set in main before any use.
var logger *slog.Logger

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: avgisim [flags] <workload>   (see -h)")
		os.Exit(2)
	}
	var err error
	logger, err = clilog.New(os.Stderr, "avgisim", *flagLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avgisim:", err)
		os.Exit(2)
	}
	stopProf, err := startProfiles(*flagCPUProfile, *flagMemProfile)
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	defer stopProf()
	obsv := avgi.NewObserver(os.Stderr)
	if *flagProgress {
		stop := obsv.Progress.StartTicker(2 * time.Second)
		defer stop()
	}
	if *flagMetricsAddr != "" {
		srv, err := obsv.Serve(*flagMetricsAddr)
		if err != nil {
			logger.Error(err.Error())
			os.Exit(1)
		}
		defer srv.Close()
		stopHealth := obsv.StartHealth(10 * time.Second)
		defer stopHealth()
		obsv.Logf("telemetry: http://%s/ (/metrics, /progress.json, /debug/pprof/)", srv.Addr())
	}
	if err := run(flag.Arg(0), obsv); err != nil {
		stopProf()
		logger.Error(err.Error())
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arms a heap-profile dump, per the
// -cpuprofile/-memprofile flags. The returned stop function is idempotent
// and must run before process exit for either profile to be complete.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				logger.Error("memprofile: " + err.Error())
				return
			}
			runtime.GC() // materialize final live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				logger.Error("memprofile: " + err.Error())
			}
			f.Close()
		}
	}, nil
}

func machineConfig() (avgi.MachineConfig, error) {
	switch *flagMachine {
	case "a72":
		return avgi.ConfigA72(), nil
	case "a15":
		return avgi.ConfigA15(), nil
	}
	return avgi.MachineConfig{}, fmt.Errorf("unknown machine %q", *flagMachine)
}

func run(name string, obsv *avgi.Observer) error {
	cfg, err := machineConfig()
	if err != nil {
		return err
	}
	var p *avgi.Program
	var ref []byte
	if *flagRunAsm {
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		p, err = asm.Parse(name, string(src), cfg.Variant)
		if err != nil {
			return err
		}
	} else {
		w, err := avgi.WorkloadByName(name)
		if err != nil {
			return err
		}
		p = w.Build(cfg.Variant)
		ref = w.Ref(cfg.Variant)
	}

	if *flagDisasm {
		for i, word := range p.Text {
			fmt.Printf("%06x:  %08x  %s\n", p.TextBase+uint64(i*4), word, isa.DisasmWord(word, cfg.Variant))
		}
		return nil
	}

	r, err := campaign.NewRunner(cfg, p)
	if err != nil {
		return err
	}
	r.Obs = obsv
	switch *flagFork {
	case "cursor":
		r.ForkPolicy = campaign.ForkCursor
	case "snapshot":
		r.ForkPolicy = campaign.ForkSnapshot
	case "clone":
		r.ForkPolicy = campaign.ForkLegacyClone
	default:
		return fmt.Errorf("unknown -fork policy %q (want cursor, snapshot or clone)", *flagFork)
	}
	r.CheckpointInterval = *flagCkptInterval
	if *flagForensics {
		r.Forensics = avgi.NewExplorer()
		r.ForensicsSample = 1
	}
	r.PublishGolden()
	fmt.Printf("workload  %s (%s)\n", name, cfg.Name)
	fmt.Printf("golden    %d cycles, %d commits, IPC %.2f\n",
		r.Golden.Cycles, r.Golden.Commits,
		float64(r.Golden.Commits)/float64(r.Golden.Cycles))
	fmt.Printf("output    %d bytes\n", len(r.Golden.Output))

	if *flagStats {
		m := cpu.New(cfg, p)
		m.Run(avgi.RunOptions{MaxCycles: r.Golden.Cycles + 10})
		fmt.Print(m.StatsReport())
	}

	if *flagTrace > 0 {
		n := *flagTrace
		if n > len(r.Golden.Trace) {
			n = len(r.Golden.Trace)
		}
		for _, rec := range r.Golden.Trace[:n] {
			fmt.Printf("  cyc %6d  pc %06x  %-28s", rec.Cycle, rec.PC, isa.DisasmWord(rec.Word, cfg.Variant))
			if rec.HasDest {
				fmt.Printf("  r%d=%#x", rec.Dest, rec.Value)
			}
			if rec.IsStore {
				fmt.Printf("  [%#x]=%#x", rec.Addr, rec.Value)
			}
			fmt.Println()
		}
	}

	if *flagInject != "" {
		parts := strings.Split(*flagInject, ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -inject %q, want STRUCTURE:BIT:CYCLE", *flagInject)
		}
		bit, err1 := strconv.ParseUint(parts[1], 10, 64)
		cyc, err2 := strconv.ParseUint(parts[2], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad -inject numbers in %q", *flagInject)
		}
		f := fault.Fault{Structure: parts[0], Bit: bit, Cycle: cyc}
		if err := cpu.ValidateStructure(f.Structure); err != nil {
			return err
		}
		res, err := injectJournalled(r, f, name, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("fault     %s\n", f)
		fmt.Printf("IMM       %s\n", res.IMM)
		fmt.Printf("effect    %s", res.Effect)
		if res.Crash != 0 {
			fmt.Printf(" (%s)", res.Crash)
		}
		fmt.Println()
		if res.Manifested {
			fmt.Printf("manifest  %d cycles after injection\n", res.ManifestLatency)
		} else {
			fmt.Println("manifest  never (no commit-trace deviation)")
		}
		if fr := res.Forensics; fr != nil {
			fmt.Printf("cause     %s (sites %d, live %d, reads %d, latency %d)\n",
				fr.Cause, fr.Sites, fr.LiveSites, fr.Reads, fr.Latency)
			if d := fr.Divergence; d != nil {
				fmt.Printf("diverge   %s, +%d cycles", d.Kind, d.CycleDelta)
				if d.PC != 0 {
					fmt.Printf(", pc %#x (commit %d)", d.PC, d.CommitIndex)
				}
				fmt.Println()
			}
		}
		return nil
	}

	// Plain golden run: show a digest of the output.
	return goldenDigest(r, ref)
}

// injectJournalled runs one targeted injection through the durable journal
// when -journal is set: with -resume a journalled result for the exact
// same fault is reused, otherwise the fresh result is appended. The shard
// is keyed like a one-fault exhaustive campaign of the study scheduler.
func injectJournalled(r *avgi.Runner, f fault.Fault, workload string, cfg avgi.MachineConfig) (campaign.Result, error) {
	run := func() campaign.Result {
		return r.Run([]fault.Fault{f}, campaign.ModeExhaustive, 0, *flagWorkers)[0]
	}
	if *flagJournal == "" {
		if *flagResume {
			return campaign.Result{}, fmt.Errorf("-resume requires -journal DIR")
		}
		return run(), nil
	}
	j, err := journal.Open(*flagJournal)
	if err != nil {
		return campaign.Result{}, err
	}
	key := journal.Key{Structure: f.Structure, Workload: workload, Mode: campaign.ModeExhaustive.String(), Window: 0}
	bind := journal.Binding{
		Machine:     cfg.Name,
		Variant:     cfg.Variant.String(),
		ProgramHash: journal.HashProgram(r.Prog),
		Seed:        0, // targeted injection: no sampled list
		Faults:      1,
	}
	if *flagResume {
		prior, err := j.Load(key, bind)
		if err == nil {
			// The shard is keyed by (structure, workload); the record
			// must also carry the exact same fault, or a previous
			// -inject with different BIT:CYCLE would be replayed.
			if pr, ok := prior[0]; ok && pr.Fault == f {
				fmt.Printf("journal   hit (result loaded from %s)\n", j.Dir())
				return pr, nil
			}
		}
	}
	res := run()
	w, err := j.Writer(key, bind, false)
	if err != nil {
		return res, nil // journal is best-effort; the result stands
	}
	w.Append(0, res)
	if err := w.Close(); err == nil {
		fmt.Printf("journal   result appended under %s\n", j.Dir())
	}
	return res, nil
}

// goldenDigest prints the golden-output head and verifies it against the
// reference model.
func goldenDigest(r *avgi.Runner, ref []byte) error {
	out := r.Golden.Output
	if len(out) > 32 {
		out = out[:32]
	}
	fmt.Printf("head      % x%s\n", out, map[bool]string{true: " ...", false: ""}[len(r.Golden.Output) > 32])
	if ref != nil {
		if !bytes.Equal(r.Golden.Output, ref) {
			return fmt.Errorf("golden output does not match the reference model")
		}
		fmt.Println("verified  output matches the reference model")
	}
	return nil
}
