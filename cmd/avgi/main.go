// Command avgi is the experiment harness of the AVGI reproduction: one
// subcommand per table/figure of the paper's evaluation, each of which
// builds (or reuses) a study — golden runs plus fault-injection campaigns —
// and prints the corresponding table.
//
// Usage:
//
//	avgi [flags] <experiment>
//
// Experiments: fig1 fig3 fig4 fig5 fig7 fig8 fig9 table2 fig10 fig11 fig12
// all list
//
// Examples:
//
//	avgi -faults 200 fig3
//	avgi -workloads sha,crc32,qsort -faults 100 table2
//	avgi -csv fig10 > fig10.csv
//	avgi -early-exit=false -faults 200 fig3   # force full ERT windows
//
// AVGI-mode campaigns end each faulty window as soon as the injected
// corruption is provably erased (see docs/PERFORMANCE.md); the
// classification is identical to a full-window run, only faster.
// -early-exit=false disables the oracle, e.g. to compare simulated-cycle
// costs against the paper's full-window accounting.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"avgi"
	"avgi/internal/campaign"
	"avgi/internal/cliflags"
	"avgi/internal/clilog"
	"avgi/internal/core"
	"avgi/internal/imm"
	"avgi/internal/report"
)

var (
	flagFaults     = flag.Int("faults", 400, "faults per (structure, workload) pair")
	flagWorkloads  = flag.String("workloads", "", "comma-separated workload subset (default: all 13)")
	flagStructures = flag.String("structures", "", "comma-separated structure subset (default: all 12)")
	flagSeed       = flag.Int64("seed", 1, "seed base for fault sampling")
	flagCSV        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flagBars       = flag.Bool("bars", false, "also render distribution figures as terminal bar charts")
	flagCores      = flag.Int("cores", 192, "cluster cores for the Table II days model")

	flagMode   = flag.String("mode", "hvf", "campaign mode for the campaign experiment: exhaustive, hvf or avgi")
	flagWindow = flag.Uint64("window", 0, "ERT stop window in cycles for the campaign experiment (required for -mode avgi, forbidden otherwise)")

	flagTraceOut = flag.String("trace-out", "", "write a Chrome trace_event JSON of the study phases to this file (open in chrome://tracing)")
	flagTraceND  = flag.String("trace-ndjson", "", "write the study-phase spans as NDJSON to this file")

	flagForensicsSample = flag.Int("forensics-sample", 1, "with -forensics: probe every Nth fault by fault ID (1 = all)")

	// Shared campaign/telemetry/profiling flags (see internal/cliflags).
	common = cliflags.Register(flag.CommandLine, 0)
)

// logger carries harness diagnostics to stderr per -log; set in main
// before any use.
var logger *slog.Logger

// explorer aggregates forensic attributions when -forensics is on.
var explorer *avgi.Explorer

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	if cmd == "list" {
		listWorkloads()
		return
	}
	var err error
	logger, err = clilog.New(os.Stderr, "avgi", common.Log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avgi:", err)
		os.Exit(2)
	}
	stopProf, err := common.StartProfiles(func(msg string) { logger.Error(msg) })
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	defer stopProf()
	obsv := avgi.NewObserver(os.Stderr)
	if common.Forensics {
		explorer = avgi.NewExplorer()
		obsv.Forensics = explorer
	}
	if common.Progress {
		stop := obsv.Progress.StartTicker(2 * time.Second)
		defer stop()
	}
	if common.MetricsAddr != "" {
		srv, err := obsv.Serve(common.MetricsAddr)
		if err != nil {
			logger.Error(err.Error())
			os.Exit(1)
		}
		defer srv.Close()
		stopHealth := obsv.StartHealth(10 * time.Second)
		defer stopHealth()
		obsv.Logf("telemetry: http://%s/ (/metrics, /progress.json, /trace.json, /forensics.json, /debug/pprof/)", srv.Addr())
	}
	err = run(cmd, os.Stdout, obsv)
	if terr := writeTraces(obsv); err == nil {
		err = terr
	}
	if err != nil {
		stopProf()
		logger.Error(err.Error())
		os.Exit(1)
	}
}

// writeTraces exports the recorded spans to the files requested by
// -trace-out (Chrome trace_event JSON) and -trace-ndjson.
func writeTraces(obsv *avgi.Observer) error {
	write := func(path string, render func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		obsv.Logf("trace written to %s", path)
		return nil
	}
	if err := write(*flagTraceOut, obsv.Trace.WriteChromeTrace); err != nil {
		return err
	}
	return write(*flagTraceND, obsv.Trace.WriteNDJSON)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: avgi [flags] <experiment>

experiments:
  fig1    RF AVF: exhaustive SFI vs ACE analysis
  fig3    IMM breakdown per structure per workload
  fig4    P(effect | IMM) for the L1I data array
  fig5    trained IMM weights per structure
  fig7    ESC faults: real vs predicted
  fig8    IMM distribution inclusive vs exclusive (ERT stop)
  fig9    manifestation-latency percentiles and ERT windows
  table2  assessment cost and speedups (AVGI vs accelerated SFI)
  fig10   AVF accuracy per structure (leave-one-out)
  fig11   FIT rates per structure and whole chip
  fig12   Armv7-like (A15) case study
  motivation  ISA-level PVF vs microarch AVF (the intro's pitfall)
  multibit    Section VII.A multi-bit-upset ablation
  ertablation ERT safety-margin sweep (cost vs accuracy)
  campaign    raw campaigns of the selected grid in one -mode (with
              -dist-role=worker: this process's share of a fleet)
  all     everything above, in order
  list    list workloads and structures

telemetry (see docs/OBSERVABILITY.md):
  -progress          live faults/s, simcycles/s, speedup and ETA on stderr
  -metrics-addr A    serve Prometheus /metrics, /progress.json,
                     /forensics.json and /debug/pprof/ on A
  -trace-out F       Chrome trace_event JSON of study phases (chrome://tracing)
  -trace-ndjson F    the same spans as NDJSON
  -cpuprofile F      pprof CPU profile of the whole run (go tool pprof F)
  -memprofile F      pprof heap profile captured at exit
  -forensics         attribute each fault's fate (overwritten, squashed,
                     evicted clean, logically masked, never read, visible)
                     and append the masking-sources table to the output
  -forensics-sample N  probe every Nth fault (by fault ID) to bound overhead
  -log FMT           stderr log format: text (default) or json

performance (see docs/PERFORMANCE.md):
  -fork P            cursor (default; per-worker golden cursor with
                     dirty-delta snapshot/restore), snapshot (shared
                     checkpoint store), or clone (legacy deep copy)

scheduling (see docs/SCHEDULING.md):
  -workers N         global worker budget; campaigns of one experiment
                     overlap across (structure, workload) pairs and share
                     these N workers, so one campaign's tail is filled
                     with the next campaign's head

fault tolerance (see docs/ROBUSTNESS.md):
  -journal DIR       append completed per-fault results as durable NDJSON
                     shards (fsynced per chunk), one shard per campaign
  -resume            consult the journal before simulating: fully
                     journalled campaigns load, partial ones resume from
                     the first missing fault — byte-identical results
  -fsync MODE        shard fsync cadence: chunk (default), every, off

distribution (see docs/DISTRIBUTED.md):
  -dist-role worker  join a fleet: processes sharing -journal DIR split
                     each campaign chunk-by-chunk via leases and merge a
                     byte-identical canonical shard; -workers means the
                     fleet-wide worker count
  -coordinator URL   lease through an avgid coordinator instead of files
  -dist-owner NAME   stable node identity (default <hostname>-<pid>)
  -lease-ttl D       silent-node takeover delay (default 10s)

flags:
`)
	flag.PrintDefaults()
}

func listWorkloads() {
	fmt.Println("workloads:")
	for _, w := range avgi.Workloads() {
		p := w.Build(avgi.ConfigA72().Variant)
		fmt.Printf("  %-14s %-8s text %4d insts, output %5d bytes\n",
			w.Name, w.Suite, len(p.Text), len(w.Ref(avgi.ConfigA72().Variant)))
	}
	fmt.Println("structures:")
	for _, s := range avgi.Structures() {
		fmt.Printf("  %s\n", s)
	}
}

func selectedWorkloads() ([]avgi.Workload, error) {
	if *flagWorkloads == "" {
		return avgi.Workloads(), nil
	}
	var out []avgi.Workload
	for _, name := range strings.Split(*flagWorkloads, ",") {
		w, err := avgi.WorkloadByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func selectedStructures() []string {
	if *flagStructures == "" {
		return avgi.Structures()
	}
	var out []string
	for _, s := range strings.Split(*flagStructures, ",") {
		out = append(out, strings.TrimSpace(s))
	}
	return out
}

func buildStudy(machine avgi.MachineConfig, workloads []avgi.Workload, obsv *avgi.Observer) (*avgi.Study, error) {
	policy, err := common.ForkPolicy()
	if err != nil {
		return nil, err
	}
	if common.Resume && common.Journal == "" {
		return nil, fmt.Errorf("-resume requires -journal DIR")
	}
	fsync, err := common.SyncPolicy()
	if err != nil {
		return nil, err
	}
	if err := common.ValidateDist(); err != nil {
		return nil, err
	}
	var distCfg *avgi.DistConfig
	workers := common.Workers
	if common.DistRole == "worker" {
		// In a fleet, -workers is the cluster-wide count: it fixes the
		// shared chunk geometry and the slot budget. Local parallelism is
		// bounded by this process's CPUs (Workers 0) and by the slot
		// leases it can win.
		distCfg = &avgi.DistConfig{
			Fleet:       common.Workers,
			Owner:       common.DistOwner,
			Coordinator: common.Coordinator,
			LeaseTTL:    common.LeaseTTL,
		}
		workers = 0
	}
	obsv.Logf("building study: %s, %d workloads, %d structures, %d faults each...",
		machine.Name, len(workloads), len(selectedStructures()), *flagFaults)
	start := time.Now()
	s, err := avgi.NewStudy(avgi.StudyConfig{
		Machine:            machine,
		Workloads:          workloads,
		Structures:         selectedStructures(),
		FaultsPerStructure: *flagFaults,
		Workers:            workers,
		SeedBase:           *flagSeed,
		Obs:                obsv,
		ForkPolicy:         policy,
		CheckpointInterval: common.CkptInterval,
		JournalDir:         common.Journal,
		Resume:             common.Resume,
		Fsync:              fsync,
		Dist:               distCfg,
		Forensics:          explorer,
		ForensicsSample:    *flagForensicsSample,
		EarlyExit:          common.EarlyExit,
	})
	if err != nil {
		return nil, err
	}
	obsv.Logf("golden runs done in %v", time.Since(start))
	return s, nil
}

func emit(w io.Writer, tables ...*avgi.Table) {
	for _, t := range tables {
		if *flagCSV {
			t.CSV(w)
		} else {
			t.Render(w)
		}
		fmt.Fprintln(w)
	}
}

func run(cmd string, w io.Writer, obsv *avgi.Observer) error {
	workloads, err := selectedWorkloads()
	if err != nil {
		return err
	}

	var s *avgi.Study
	study := func() (*avgi.Study, error) {
		if s == nil {
			s, err = buildStudy(avgi.ConfigA72(), workloads, obsv)
		}
		return s, err
	}

	switch cmd {
	case "campaign":
		st, err := study()
		if err != nil {
			return err
		}
		return runCampaignCmd(st, w)
	case "fig1":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.Fig1())
	case "fig3":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.Fig3()...)
		if *flagBars {
			for _, structure := range avgi.Fig3Structures {
				labels, values := st.IMMDistributionMeans(structure)
				report.Bars(w, "IMM mean distribution, "+structure, labels, values, 40)
				fmt.Fprintln(w)
			}
		}
	case "fig4":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.Fig4()...)
	case "fig5":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.Fig5()...)
	case "fig7":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.Fig7()...)
	case "fig8":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.Fig8(st.TrainEstimator()))
	case "fig9":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.Fig9(st.TrainEstimator()))
	case "table2":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.Table2(st.TrainEstimator(), measureThroughput(st, *flagCores)))
	case "fig10":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.Fig10()...)
	case "fig11":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.Fig11())
	case "fig12":
		st, err := caseStudy15(obsv)
		if err != nil {
			return err
		}
		emit(w, avgi.Fig12(st)...)
	case "motivation":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.Motivation())
	case "multibit":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.MultiBitAblation())
	case "ertablation":
		st, err := study()
		if err != nil {
			return err
		}
		emit(w, st.ERTMarginAblation())
	case "all":
		st, err := study()
		if err != nil {
			return err
		}
		est := st.TrainEstimator()
		emit(w, st.Fig1())
		emit(w, st.Fig3()...)
		emit(w, st.Fig4()...)
		emit(w, st.Fig5()...)
		emit(w, st.Fig7()...)
		emit(w, st.Fig8(est))
		emit(w, st.Fig9(est))
		emit(w, st.Table2(est, measureThroughput(st, *flagCores)))
		emit(w, st.Fig10()...)
		emit(w, st.Fig11())
		emit(w, st.Motivation())
		emit(w, st.MultiBitAblation())
		st15, err := caseStudy15(obsv)
		if err != nil {
			return err
		}
		emit(w, avgi.Fig12(st15)...)
	default:
		return fmt.Errorf("unknown experiment %q (see -h)", cmd)
	}
	if explorer != nil {
		emit(w, avgi.MaskingSources(explorer))
	}
	return nil
}

// runCampaignCmd is the campaign experiment: run (or resume, or join as a
// fleet worker — see -dist-role) the raw campaigns of the selected
// (structure, workload) grid in one mode and print per-pair summaries.
// Every fleet process invokes the identical command line against the shared
// journal; whichever chunks each one simulates, the merged results and the
// printed table are byte-identical.
func runCampaignCmd(st *avgi.Study, w io.Writer) error {
	var mode avgi.Mode
	switch strings.ToLower(*flagMode) {
	case "exhaustive":
		mode = avgi.ModeExhaustive
	case "hvf":
		mode = avgi.ModeHVF
	case "avgi":
		mode = avgi.ModeAVGI
	default:
		return fmt.Errorf("unknown -mode %q (want exhaustive, hvf or avgi)", *flagMode)
	}
	if mode == avgi.ModeAVGI && *flagWindow == 0 {
		return fmt.Errorf("-mode avgi requires -window CYCLES")
	}
	if mode != avgi.ModeAVGI && *flagWindow != 0 {
		return fmt.Errorf("-window is only meaningful with -mode avgi")
	}
	structures := selectedStructures()
	workloads := st.WorkloadNames()
	// Overlap the grid under the budget; pairs load for free afterwards.
	if mode == avgi.ModeAVGI {
		for _, structure := range structures {
			for _, wl := range workloads {
				st.Campaign(structure, wl, mode, *flagWindow)
			}
		}
	} else {
		st.Prefetch(structures, workloads, mode)
	}
	// HVF campaigns stop at the first architectural corruption, so they
	// carry no end-to-end effect split; exhaustive/avgi campaigns do.
	t := &avgi.Table{
		Title:   fmt.Sprintf("campaign summaries (%s mode, %d faults/pair)", *flagMode, st.Cfg.FaultsPerStructure),
		Columns: []string{"structure", "workload", "faults", "benign", "corrupted", "masked", "sdc", "crash", "vuln"},
	}
	for _, structure := range structures {
		for _, wl := range workloads {
			sum := campaign.Summarize(st.Campaign(structure, wl, mode, *flagWindow))
			masked, sdc, crash, vuln := "-", "-", "-", float64(sum.Corruptions)/float64(max(sum.Total, 1))
			if mode != avgi.ModeHVF {
				masked = fmt.Sprint(sum.ByEffect[imm.Masked])
				sdc = fmt.Sprint(sum.ByEffect[imm.SDC])
				crash = fmt.Sprint(sum.ByEffect[imm.Crash])
				vuln = core.AVFFromEffects(sum).Total()
			}
			t.AddRow(structure, wl, fmt.Sprint(sum.Total),
				fmt.Sprint(sum.Benign), fmt.Sprint(sum.Corruptions),
				masked, sdc, crash, fmt.Sprintf("%.4f", vuln))
		}
	}
	emit(w, t)
	return nil
}

func caseStudy15(obsv *avgi.Observer) (*avgi.Study, error) {
	return buildStudy(avgi.ConfigA15(), avgi.MiBenchWorkloads(), obsv)
}

// measureThroughput times one golden re-run to convert simulated cycles
// into the wall-clock "days" units of Table II.
func measureThroughput(s *avgi.Study, cores int) core.ThroughputModel {
	name := s.WorkloadNames()[0]
	r := s.Runner(name)
	m, err := avgi.NewMachine(s.Cfg.Machine, name)
	if err != nil || r == nil {
		return core.ThroughputModel{CyclesPerSecond: 1e6, Cores: cores}
	}
	start := time.Now()
	m.Run(avgi.RunOptions{MaxCycles: r.Golden.Cycles + 10})
	el := time.Since(start).Seconds()
	if el <= 0 {
		el = 1e-9
	}
	return core.ThroughputModel{CyclesPerSecond: float64(r.Golden.Cycles) / el, Cores: cores}
}
