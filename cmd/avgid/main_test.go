package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"avgi"
)

func newTestServer(t *testing.T, journalDir string) (*httptest.Server, *avgi.Service) {
	t.Helper()
	obsv := avgi.NewObserver(io.Discard)
	svc, err := avgi.NewService(avgi.ServiceConfig{
		Workers:    4,
		JournalDir: journalDir,
		Obs:        obsv,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(svc, obsv, nil, nil))
	t.Cleanup(ts.Close)
	return ts, svc
}

const assessBody = `{"structure":"RF","workload":"crc32","mode":"hvf","faults":16,"seed":7}`

// envelope mirrors avgi.AssessResponse with the result kept raw, so tests
// can compare the cache-independent payload byte-for-byte.
type envelope struct {
	ID     uint64          `json:"id"`
	Result json.RawMessage `json:"result"`
	Meta   avgi.AssessMeta `json:"meta"`
}

func postAssess(t *testing.T, url, body string) (envelope, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/assess", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
	}
	return env, resp.StatusCode
}

// TestServerSequentialHitByteIdentical is the tentpole e2e acceptance
// test over real HTTP: the second identical POST must be served from the
// journal with zero simulated faults, and its result payload must be
// byte-identical to the freshly simulated first response.
func TestServerSequentialHitByteIdentical(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir())
	first, code := postAssess(t, ts.URL, assessBody)
	if code != http.StatusOK {
		t.Fatalf("first POST: %d", code)
	}
	if first.Meta.JournalHit || first.Meta.SimulatedFaults != 16 {
		t.Fatalf("first response meta %+v, want a 16-fault fresh simulation", first.Meta)
	}
	second, code := postAssess(t, ts.URL, assessBody)
	if code != http.StatusOK {
		t.Fatalf("second POST: %d", code)
	}
	if !second.Meta.JournalHit || second.Meta.SimulatedFaults != 0 {
		t.Errorf("second response meta %+v, want a zero-simulation journal hit", second.Meta)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Errorf("cache-hit result bytes diverge from fresh simulation:\n first: %s\nsecond: %s",
			first.Result, second.Result)
	}
}

// TestServerConcurrentRequestsCoalesce fires identical requests
// concurrently over HTTP at an uncached server: at least one must report
// coalescing onto another's execution, and every result must be
// byte-identical.
func TestServerConcurrentRequestsCoalesce(t *testing.T) {
	ts, svc := newTestServer(t, "")
	const n = 4
	envs := make([]envelope, n)
	codes := make([]int, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			envs[i], codes[i] = postAssess(t, ts.URL, assessBody)
		}(i)
	}
	close(start)
	wg.Wait()

	coalesced := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if envs[i].Meta.Coalesced {
			coalesced++
		}
		if !bytes.Equal(envs[0].Result, envs[i].Result) {
			t.Errorf("request %d result diverges", i)
		}
	}
	if coalesced == 0 {
		t.Error("no concurrent request coalesced: single-flight not engaged over HTTP")
	}
	if svc.Budget().InUse() != 0 {
		t.Errorf("worker budget not drained: %d", svc.Budget().InUse())
	}
}

func TestServerValidationErrorsAreJSON(t *testing.T) {
	ts, _ := newTestServer(t, "")
	for _, body := range []string{
		`{"structure":"RF","workload":"crc32","mode":"bogus"}`,
		`{"structure":"NOPE","workload":"crc32","mode":"hvf"}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/assess", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", body, resp.StatusCode)
		}
		var je struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &je); err != nil || je.Error == "" {
			t.Errorf("POST %s: body %q is not a JSON error", body, raw)
		}
	}
}

func TestServerRequestRegistryAndTelemetry(t *testing.T) {
	ts, _ := newTestServer(t, "")
	env, code := postAssess(t, ts.URL, assessBody)
	if code != http.StatusOK {
		t.Fatal(code)
	}

	resp, err := http.Get(fmt.Sprintf("%s/v1/requests/%d", ts.URL, env.ID))
	if err != nil {
		t.Fatal(err)
	}
	var info avgi.RequestInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.State != avgi.StateDone {
		t.Errorf("request %d state %q, want done", env.ID, info.State)
	}

	if resp, err = http.Get(ts.URL + "/v1/requests/999999"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown request id: status %d, want 404", resp.StatusCode)
	}

	// The observer's telemetry shares the mux: server metrics are visible
	// on the same port as the API.
	if resp, err = http.Get(ts.URL + "/metrics"); err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "avgi_server_requests_total") {
		t.Errorf("/metrics (status %d) does not expose avgi_server_requests_total", resp.StatusCode)
	}
}

// TestServerWatchStreams drives one assessment while a watcher tails its
// /watch stream; the stream must end with a terminal-state frame.
func TestServerWatchStreams(t *testing.T) {
	ts, svc := newTestServer(t, "")
	done := make(chan envelope, 1)
	go func() {
		env, _ := postAssess(t, ts.URL, `{"structure":"RF","workload":"sha","mode":"exhaustive","faults":24}`)
		done <- env
	}()

	// Find the request's ID via the registry once it is registered.
	var id uint64
	deadline := time.Now().Add(10 * time.Second)
	for id == 0 && time.Now().Before(deadline) {
		if reqs := svc.Requests(); len(reqs) > 0 {
			id = reqs[0].ID
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if id == 0 {
		t.Fatal("request never appeared in the registry")
	}

	resp, err := http.Get(fmt.Sprintf("%s/v1/requests/%d/watch", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("watch Content-Type %q", ct)
	}
	var last watchFrame
	frames := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("frame %d: %v (%s)", frames, err, sc.Bytes())
		}
		frames++
	}
	if frames == 0 {
		t.Fatal("watch stream delivered no frames")
	}
	if last.State != avgi.StateDone {
		t.Errorf("final frame state %q, want done", last.State)
	}
	if last.ID != id {
		t.Errorf("final frame id %d, want %d", last.ID, id)
	}
	<-done
}

func TestRecoverJSONTurnsPanicInto500(t *testing.T) {
	h := recoverJSON(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(errors.New("campaign invariant violated"))
	}), nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/assess", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rr.Code)
	}
	var je struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &je); err != nil || !strings.Contains(je.Error, "campaign invariant") {
		t.Errorf("panic body %q is not the JSON error", rr.Body.String())
	}
}

// TestServerCoordinatorWorkerFleet is the end-to-end distributed topology:
// an avgid coordinator (in-process lease arbiter mounted on its own mux)
// and an avgid-style worker polling its campaign feed share one journal
// directory. A single POST to the coordinator fans out over /v1/dist/*,
// both nodes run fleet shares, and the answer is byte-identical to a
// standalone server's.
func TestServerCoordinatorWorkerFleet(t *testing.T) {
	dir := t.TempDir()
	coord := avgi.NewDistCoordinator()
	coordDist := &avgi.DistConfig{Fleet: 4, Owner: "coord-node", LeaseTTL: 2 * time.Second}
	coordDist.UseCoordinator(coord)
	obsv := avgi.NewObserver(io.Discard)
	coordSvc, err := avgi.NewService(avgi.ServiceConfig{
		Workers: 2, JournalDir: dir, Fsync: avgi.SyncEvery, Dist: coordDist, Obs: obsv,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(coordSvc, obsv, coord, nil))
	defer ts.Close()

	workerSvc, err := avgi.NewService(avgi.ServiceConfig{
		Workers: 2, JournalDir: dir, Fsync: avgi.SyncEvery,
		Dist: &avgi.DistConfig{Fleet: 4, Owner: "worker-node", Coordinator: ts.URL, LeaseTTL: 2 * time.Second},
		Obs:  avgi.NewObserver(io.Discard),
	})
	if err != nil {
		t.Fatal(err)
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	stop := startWorkerPoll(workerSvc, ts.URL, "worker-node", 500*time.Millisecond, quiet)
	defer stop()

	env, code := postAssess(t, ts.URL, assessBody)
	if code != http.StatusOK {
		t.Fatalf("coordinator assess status %d", code)
	}
	if env.Meta.JournalHit {
		t.Fatalf("first distributed assessment reported a journal hit: %+v", env.Meta)
	}

	// The worker registered on the coordinator's node roster.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/dist/nodes")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if bytes.Contains(raw, []byte("worker-node")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never registered; roster: %s", raw)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Byte-identity against a standalone server over a fresh journal.
	ref, refCode := func() (envelope, int) {
		rts, _ := newTestServer(t, t.TempDir())
		return postAssess(t, rts.URL, assessBody)
	}()
	if refCode != http.StatusOK {
		t.Fatalf("reference assess status %d", refCode)
	}
	if !bytes.Equal(env.Result, ref.Result) {
		t.Error("distributed fleet payload diverges from the standalone server's")
	}
}
