// Command avgid is the assessment-as-a-service daemon: a long-running
// HTTP server that answers vulnerability-assessment requests over the
// durable journal cache. A request that is fully journalled is answered
// straight from shard loads with zero simulation; concurrent identical
// requests coalesce onto one execution; cache misses simulate under the
// requesting tenant's share of one global worker budget, so a single
// tenant's 100k-fault campaign can never starve everyone else's
// cache-miss traffic. See docs/SERVICE.md for the API and semantics.
//
// Usage:
//
//	avgid [flags]
//
// Endpoints:
//
//	POST /v1/assess             run (or answer from cache) one assessment
//	GET  /v1/requests           request registry, newest first
//	GET  /v1/requests/{id}      one registry entry
//	GET  /v1/requests/{id}/watch  NDJSON live progress until the request ends
//	GET  /metrics, /progress.json, /trace.json, /debug/pprof/, ...  telemetry
//
// Example:
//
//	avgid -addr :8080 -journal /var/cache/avgid &
//	curl -s localhost:8080/v1/assess -d '{"structure":"RF","workload":"sha","mode":"hvf","faults":200}'
//
// SIGTERM or SIGINT drains gracefully: the listener closes immediately,
// in-flight assessments get -drain-timeout to finish, then the process
// exits.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"avgi"
	"avgi/internal/cliflags"
	"avgi/internal/clilog"
	"avgi/internal/obs"
)

var serverFlags = cliflags.RegisterServer(flag.CommandLine)

func main() {
	flag.Parse()
	logger, err := clilog.New(os.Stderr, "avgid", serverFlags.Log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avgid:", err)
		os.Exit(2)
	}
	if err := serverFlags.ValidateDist(); err != nil {
		logger.Error(err.Error())
		os.Exit(2)
	}
	fsync, err := serverFlags.SyncPolicy()
	if err != nil {
		logger.Error(err.Error())
		os.Exit(2)
	}
	// Both distributed roles run their own campaigns as fleet shares:
	// -workers means the fleet-wide worker count, the coordinator leases
	// in-process while workers lease through its /v1/dist endpoints.
	var coord *avgi.DistCoordinator
	var distCfg *avgi.DistConfig
	switch serverFlags.DistRole {
	case "coordinator":
		coord = avgi.NewDistCoordinator()
		distCfg = &avgi.DistConfig{Fleet: serverFlags.Workers, Owner: serverFlags.DistOwner,
			LeaseTTL: serverFlags.LeaseTTL}
		distCfg.UseCoordinator(coord)
	case "worker":
		distCfg = &avgi.DistConfig{Fleet: serverFlags.Workers, Owner: serverFlags.DistOwner,
			Coordinator: serverFlags.Coordinator, LeaseTTL: serverFlags.LeaseTTL}
	}
	obsv := avgi.NewObserver(os.Stderr)
	svc, err := avgi.NewService(avgi.ServiceConfig{
		Workers:           serverFlags.Workers,
		TenantWorkers:     serverFlags.TenantWorkers,
		JournalDir:        serverFlags.Journal,
		ShardCacheEntries: serverFlags.ShardCache,
		Fsync:             fsync,
		Dist:              distCfg,
		Obs:               obsv,
	})
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	srv, err := obs.NewServer(serverFlags.Addr, newHandler(svc, obsv, coord, logger))
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	srv.SetDrainTimeout(serverFlags.DrainTimeout)
	stopHealth := obsv.StartHealth(10 * time.Second)
	defer stopHealth()
	stopWorker := func() {}
	if serverFlags.DistRole == "worker" {
		stopWorker = startWorkerPoll(svc, serverFlags.Coordinator, workerOwner(), serverFlags.LeaseTTL, logger)
	}
	role := serverFlags.DistRole
	if role == "" {
		role = "standalone"
	}
	// The bound address goes to stdout (not the log) so scripts starting
	// the server on :0 can read the ephemeral port.
	fmt.Printf("avgid listening on http://%s/ (workers %d, tenant cap %d, journal %q, role %s)\n",
		srv.Addr(), svc.Budget().Cap(), svc.TenantCap(), serverFlags.Journal, role)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	logger.Info("draining", slog.String("signal", got.String()),
		slog.Duration("timeout", serverFlags.DrainTimeout))
	stopWorker()
	if err := srv.Close(); err != nil {
		logger.Error("drain: " + err.Error())
		os.Exit(1)
	}
}

// workerOwner derives this process's fleet identity when -dist-owner is
// unset, mirroring the dist layer's default.
func workerOwner() string {
	if serverFlags.DistOwner != "" {
		return serverFlags.DistOwner
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "avgid"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// startWorkerPoll launches the worker-mode fan-out loop: register with the
// coordinator, poll its campaign feed, and run every announced assessment
// against the shared journal — the worker's dist-configured Service then
// claims chunk leases through the same coordinator, so N workers polling
// one feed split each campaign instead of each running all of it. The
// returned stop function ends the loop and waits for it to exit (in-flight
// assessments keep running; the server drain handles those).
func startWorkerPoll(svc *avgi.Service, coordinator, owner string, ttl time.Duration, logger *slog.Logger) func() {
	interval := ttl / 2
	if interval < 500*time.Millisecond {
		interval = 500 * time.Millisecond
	}
	client := avgi.NewDistClient(coordinator)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		after := 0
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			// Registration doubles as the node's liveness heartbeat in the
			// coordinator's /v1/dist/nodes listing.
			if err := client.Register(owner); err != nil {
				logger.Debug("dist: register: " + err.Error())
			}
			anns, err := client.Campaigns(after)
			if err != nil {
				logger.Debug("dist: poll: " + err.Error())
			}
			for _, a := range anns {
				after = a.ID
				var req avgi.AssessRequest
				if err := json.Unmarshal(a.Spec, &req); err != nil {
					logger.Warn("dist: undecodable announcement", slog.Int("id", a.ID), slog.String("err", err.Error()))
					continue
				}
				go func(id int, req avgi.AssessRequest) {
					if _, err := svc.Assess(req); err != nil {
						logger.Warn("dist: announced assessment failed",
							slog.Int("id", id), slog.String("err", err.Error()))
					}
				}(a.ID, req)
			}
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
		}
	}()
	return func() { close(stop); <-done }
}

// jsonError is the uniform error body of every non-2xx API response.
type jsonError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, jsonError{Error: err.Error()})
}

// newHandler assembles the avgid mux: the assessment API in front, the
// observer's telemetry endpoints (/metrics, /progress.json, /trace.json,
// /debug/pprof/, ...) as the fallback — one server, one port.
func newHandler(svc *avgi.Service, obsv *avgi.Observer, coord *avgi.DistCoordinator, logger *slog.Logger) http.Handler {
	mux := http.NewServeMux()
	if coord != nil {
		coord.Mount(mux)
	}
	mux.HandleFunc("POST /v1/assess", func(w http.ResponseWriter, r *http.Request) {
		var req avgi.AssessRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if coord != nil {
			// Fan the campaign out before running our own share: polling
			// workers see it on the feed and start claiming chunks while
			// this request's assessment is still in flight. The spec is the
			// re-marshalled decoded request, so retries of byte-different
			// but semantically identical bodies dedup on the feed.
			if spec, err := json.Marshal(req); err == nil {
				coord.Announce(spec)
			}
		}
		resp, err := svc.Assess(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/requests", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Requests())
	})
	mux.HandleFunc("GET /v1/requests/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := requestByPath(svc, r)
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such request"))
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("GET /v1/requests/{id}/watch", func(w http.ResponseWriter, r *http.Request) {
		info, ok := requestByPath(svc, r)
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such request"))
			return
		}
		watchRequest(svc, obsv, info.ID, w, r)
	})
	mux.Handle("/", obsv.Handler())
	return recoverJSON(mux, logger)
}

func requestByPath(svc *avgi.Service, r *http.Request) (avgi.RequestInfo, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		return avgi.RequestInfo{}, false
	}
	return svc.Request(id)
}

// watchFrame is one NDJSON line of a /watch stream: the request's current
// registry state plus the live progress of its campaign pair (present
// while the pair is announced; journal hits may never announce one).
type watchFrame struct {
	ID    uint64            `json:"id"`
	State avgi.RequestState `json:"state"`
	Error string            `json:"error,omitempty"`
	Pair  *obs.PairProgress `json:"pair,omitempty"`
	Study *watchTotals      `json:"totals,omitempty"`
}

// watchTotals is the service-wide fault completion state shown alongside
// the watched pair.
type watchTotals struct {
	FaultsDone  int64 `json:"faultsDone"`
	FaultsTotal int64 `json:"faultsTotal"`
}

// watchPollInterval paces /watch streams; short enough to feel live, long
// enough that a watcher costs nothing next to a campaign.
const watchPollInterval = 200 * time.Millisecond

// watchRequest streams one frame per poll until the watched request leaves
// the running state (one final frame carries the terminal state), the
// client goes away, or the server drains.
func watchRequest(svc *avgi.Service, obsv *avgi.Observer, id uint64, w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(watchPollInterval)
	defer ticker.Stop()
	for {
		info, ok := svc.Request(id)
		if !ok {
			return
		}
		frame := watchFrame{ID: info.ID, State: info.State, Error: info.Error}
		if obsv != nil && obsv.Progress != nil {
			snap := obsv.Progress.Snapshot()
			req := info.Request
			for i := range snap.Pairs {
				p := snap.Pairs[i]
				if p.Structure == req.Structure && p.Workload == req.Workload && p.Mode == req.Mode {
					frame.Pair = &p
					break
				}
			}
			frame.Study = &watchTotals{
				FaultsDone:  snap.FaultsDone,
				FaultsTotal: snap.FaultsTotal,
			}
		}
		if err := enc.Encode(frame); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if info.State != avgi.StateRunning {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// recoverJSON converts handler panics (a campaign invariant violation, a
// broken runner) into JSON 500s instead of killing the connection with a
// bare stack trace, and logs them.
func recoverJSON(next http.Handler, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				if logger != nil {
					logger.Error("panic serving request",
						slog.String("path", r.URL.Path), slog.String("panic", fmt.Sprint(p)))
				}
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", p))
			}
		}()
		next.ServeHTTP(w, r)
	})
}
