// Command avgid is the assessment-as-a-service daemon: a long-running
// HTTP server that answers vulnerability-assessment requests over the
// durable journal cache. A request that is fully journalled is answered
// straight from shard loads with zero simulation; concurrent identical
// requests coalesce onto one execution; cache misses simulate under the
// requesting tenant's share of one global worker budget, so a single
// tenant's 100k-fault campaign can never starve everyone else's
// cache-miss traffic. See docs/SERVICE.md for the API and semantics.
//
// Usage:
//
//	avgid [flags]
//
// Endpoints:
//
//	POST /v1/assess             run (or answer from cache) one assessment
//	GET  /v1/requests           request registry, newest first
//	GET  /v1/requests/{id}      one registry entry
//	GET  /v1/requests/{id}/watch  NDJSON live progress until the request ends
//	GET  /metrics, /progress.json, /trace.json, /debug/pprof/, ...  telemetry
//
// Example:
//
//	avgid -addr :8080 -journal /var/cache/avgid &
//	curl -s localhost:8080/v1/assess -d '{"structure":"RF","workload":"sha","mode":"hvf","faults":200}'
//
// SIGTERM or SIGINT drains gracefully: the listener closes immediately,
// in-flight assessments get -drain-timeout to finish, then the process
// exits.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"avgi"
	"avgi/internal/cliflags"
	"avgi/internal/clilog"
	"avgi/internal/obs"
)

var serverFlags = cliflags.RegisterServer(flag.CommandLine)

func main() {
	flag.Parse()
	logger, err := clilog.New(os.Stderr, "avgid", serverFlags.Log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avgid:", err)
		os.Exit(2)
	}
	obsv := avgi.NewObserver(os.Stderr)
	svc, err := avgi.NewService(avgi.ServiceConfig{
		Workers:       serverFlags.Workers,
		TenantWorkers: serverFlags.TenantWorkers,
		JournalDir:    serverFlags.Journal,
		Obs:           obsv,
	})
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	srv, err := obs.NewServer(serverFlags.Addr, newHandler(svc, obsv, logger))
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	srv.SetDrainTimeout(serverFlags.DrainTimeout)
	stopHealth := obsv.StartHealth(10 * time.Second)
	defer stopHealth()
	// The bound address goes to stdout (not the log) so scripts starting
	// the server on :0 can read the ephemeral port.
	fmt.Printf("avgid listening on http://%s/ (workers %d, tenant cap %d, journal %q)\n",
		srv.Addr(), svc.Budget().Cap(), svc.TenantCap(), serverFlags.Journal)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	logger.Info("draining", slog.String("signal", got.String()),
		slog.Duration("timeout", serverFlags.DrainTimeout))
	if err := srv.Close(); err != nil {
		logger.Error("drain: " + err.Error())
		os.Exit(1)
	}
}

// jsonError is the uniform error body of every non-2xx API response.
type jsonError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, jsonError{Error: err.Error()})
}

// newHandler assembles the avgid mux: the assessment API in front, the
// observer's telemetry endpoints (/metrics, /progress.json, /trace.json,
// /debug/pprof/, ...) as the fallback — one server, one port.
func newHandler(svc *avgi.Service, obsv *avgi.Observer, logger *slog.Logger) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/assess", func(w http.ResponseWriter, r *http.Request) {
		var req avgi.AssessRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		resp, err := svc.Assess(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/requests", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Requests())
	})
	mux.HandleFunc("GET /v1/requests/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := requestByPath(svc, r)
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such request"))
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("GET /v1/requests/{id}/watch", func(w http.ResponseWriter, r *http.Request) {
		info, ok := requestByPath(svc, r)
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no such request"))
			return
		}
		watchRequest(svc, obsv, info.ID, w, r)
	})
	mux.Handle("/", obsv.Handler())
	return recoverJSON(mux, logger)
}

func requestByPath(svc *avgi.Service, r *http.Request) (avgi.RequestInfo, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		return avgi.RequestInfo{}, false
	}
	return svc.Request(id)
}

// watchFrame is one NDJSON line of a /watch stream: the request's current
// registry state plus the live progress of its campaign pair (present
// while the pair is announced; journal hits may never announce one).
type watchFrame struct {
	ID    uint64            `json:"id"`
	State avgi.RequestState `json:"state"`
	Error string            `json:"error,omitempty"`
	Pair  *obs.PairProgress `json:"pair,omitempty"`
	Study *watchTotals      `json:"totals,omitempty"`
}

// watchTotals is the service-wide fault completion state shown alongside
// the watched pair.
type watchTotals struct {
	FaultsDone  int64 `json:"faultsDone"`
	FaultsTotal int64 `json:"faultsTotal"`
}

// watchPollInterval paces /watch streams; short enough to feel live, long
// enough that a watcher costs nothing next to a campaign.
const watchPollInterval = 200 * time.Millisecond

// watchRequest streams one frame per poll until the watched request leaves
// the running state (one final frame carries the terminal state), the
// client goes away, or the server drains.
func watchRequest(svc *avgi.Service, obsv *avgi.Observer, id uint64, w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(watchPollInterval)
	defer ticker.Stop()
	for {
		info, ok := svc.Request(id)
		if !ok {
			return
		}
		frame := watchFrame{ID: info.ID, State: info.State, Error: info.Error}
		if obsv != nil && obsv.Progress != nil {
			snap := obsv.Progress.Snapshot()
			req := info.Request
			for i := range snap.Pairs {
				p := snap.Pairs[i]
				if p.Structure == req.Structure && p.Workload == req.Workload && p.Mode == req.Mode {
					frame.Pair = &p
					break
				}
			}
			frame.Study = &watchTotals{
				FaultsDone:  snap.FaultsDone,
				FaultsTotal: snap.FaultsTotal,
			}
		}
		if err := enc.Encode(frame); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if info.State != avgi.StateRunning {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// recoverJSON converts handler panics (a campaign invariant violation, a
// broken runner) into JSON 500s instead of killing the connection with a
// bare stack trace, and logs them.
func recoverJSON(next http.Handler, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p)
				}
				if logger != nil {
					logger.Error("panic serving request",
						slog.String("path", r.URL.Path), slog.String("panic", fmt.Sprint(p)))
				}
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", p))
			}
		}()
		next.ServeHTTP(w, r)
	})
}
