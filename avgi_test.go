package avgi

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"avgi/internal/campaign"
	"avgi/internal/core"
	"avgi/internal/imm"
)

// smallStudy builds a cached study over a few workloads and structures
// with small fault counts, shared across tests via a package-level
// variable (campaigns are the expensive part).
var testStudy *Study

func getStudy(t *testing.T) *Study {
	t.Helper()
	if testStudy != nil {
		return testStudy
	}
	wl := pick(t, "sha", "crc32", "bitcount", "qsort")
	s, err := NewStudy(StudyConfig{
		Machine:            ConfigA72(),
		Workloads:          wl,
		Structures:         []string{"RF", "L1I (Data)", "L1D (Data)", "ROB", "L2 (Data)", "L1D (Tag)"},
		FaultsPerStructure: 80,
		SeedBase:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	testStudy = s
	return s
}

func pick(t *testing.T, names ...string) []Workload {
	t.Helper()
	var out []Workload
	for _, n := range names {
		w, err := WorkloadByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

func TestPublicSurface(t *testing.T) {
	if len(Structures()) != 12 {
		t.Errorf("structures: %d", len(Structures()))
	}
	if len(Workloads()) != 13 {
		t.Errorf("workloads: %d", len(Workloads()))
	}
	if len(MiBenchWorkloads()) != 10 || len(NASWorkloads()) != 3 {
		t.Error("suite split")
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Error("unknown workload must error")
	}
	if _, err := NewRunner(ConfigA72(), "nope"); err == nil {
		t.Error("unknown runner workload must error")
	}
	if n := SampleSize(1<<30, 0.0288, Z99); n < 1900 || n > 2100 {
		t.Errorf("sample size %d", n)
	}
	if e := ErrorMargin(2000, 1<<30, Z99); e > 0.03 {
		t.Errorf("margin %f", e)
	}
	m, err := NewMachine(ConfigA15(), "sha")
	if err != nil || m == nil {
		t.Fatal(err)
	}
}

func TestStudyValidatesStructures(t *testing.T) {
	_, err := NewStudy(StudyConfig{
		Machine:    ConfigA72(),
		Workloads:  pick(t, "sha"),
		Structures: []string{"BogusArray"},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown structure") {
		t.Fatalf("err = %v", err)
	}
}

func TestStudyDefaults(t *testing.T) {
	cfg := StudyConfig{Machine: ConfigA72(), Workloads: pick(t, "sha")}
	cfg.fill()
	if len(cfg.Structures) != 12 || cfg.FaultsPerStructure != 400 || cfg.SeedBase != 1 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestStudyCaching(t *testing.T) {
	s := getStudy(t)
	a := s.Exhaustive("RF", "sha")
	b := s.Exhaustive("RF", "sha")
	if &a[0] != &b[0] {
		t.Error("exhaustive results not cached")
	}
	if len(a) != 80 {
		t.Errorf("%d results", len(a))
	}
}

func TestTrainEstimatorAndAssess(t *testing.T) {
	s := getStudy(t)
	est := s.TrainEstimator()
	if err := est.Weights.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(est.ERT) == 0 {
		t.Fatal("no ERT windows derived")
	}
	// ROB windows are relative; RF absolute.
	if !est.ERT["ROB"].Relative {
		t.Error("ROB ERT should be relative")
	}
	if est.ERT["RF"].Relative {
		t.Error("RF ERT should be absolute")
	}
	// The RF window must be far below the longest workload.
	longest := uint64(0)
	for _, w := range s.WorkloadNames() {
		if c := s.Runner(w).Golden.Cycles; c > longest {
			longest = c
		}
	}
	if est.ERT["RF"].Cycles >= longest {
		t.Errorf("RF ERT %d not below longest run %d", est.ERT["RF"].Cycles, longest)
	}

	results, window := s.AVGIRun(est, "RF", "sha")
	a := est.AssessResults(s.Runner("sha"), "RF", results, window)
	truth := s.GroundTruthAVF("RF", "sha")
	if d := math.Abs(a.AVF.Total() - truth.Total()); d > 0.20 {
		t.Errorf("AVGI estimate off by %.3f (est %.3f truth %.3f)", d, a.AVF.Total(), truth.Total())
	}
}

func TestLeaveOneOutExcludes(t *testing.T) {
	s := getStudy(t)
	td := s.TrainingData([]string{"RF"}, "sha")
	if _, ok := td.Results["RF"]["sha"]; ok {
		t.Error("excluded workload present in training data")
	}
	if _, ok := td.OutputSize["sha"]; ok {
		t.Error("excluded workload present in output sizes")
	}
	if _, ok := td.Results["RF"]["crc32"]; !ok {
		t.Error("non-excluded workload missing")
	}
}

func TestFig1ACEAboveSFI(t *testing.T) {
	s := getStudy(t)
	tab := s.Fig1()
	if len(tab.Rows) != len(s.WorkloadNames()) {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	for _, w := range s.WorkloadNames() {
		sfi := s.GroundTruthAVF("RF", w).Total()
		aceAVF := ACEAnalyzeRF(s.Runner(w))
		if aceAVF < sfi {
			t.Errorf("%s: ACE %.4f < SFI %.4f", w, aceAVF, sfi)
		}
	}
}

func TestFig3ROBIsAllPRE(t *testing.T) {
	s := getStudy(t)
	dist := s.IMMDistribution("ROB")
	for w, d := range dist {
		for c, f := range d {
			if c != imm.PRE && f > 0 {
				t.Errorf("%s: ROB corruption class %v = %.2f, want only PRE", w, c, f)
			}
		}
	}
	tabs := s.Fig3("ROB", "RF")
	if len(tabs) != 2 {
		t.Fatalf("tables %d", len(tabs))
	}
	var buf bytes.Buffer
	tabs[0].Render(&buf)
	if !strings.Contains(buf.String(), "AVG") {
		t.Error("missing AVG row")
	}
}

func TestFig3RFDominatedByDCR(t *testing.T) {
	s := getStudy(t)
	dist := s.IMMDistribution("RF")
	var dcr, rest float64
	for _, d := range dist {
		for c, f := range d {
			if c == imm.DCR {
				dcr += f
			} else {
				rest += f
			}
		}
	}
	if dcr <= rest {
		t.Errorf("RF: DCR %.2f not dominant over rest %.2f", dcr, rest)
	}
}

func TestFig4And5Render(t *testing.T) {
	s := getStudy(t)
	f4 := s.Fig4()
	if len(f4) != 3 {
		t.Fatalf("fig4 tables %d", len(f4))
	}
	f5 := s.Fig5()
	if len(f5) != len(s.Cfg.Structures) {
		t.Fatalf("fig5 tables %d", len(f5))
	}
	var buf bytes.Buffer
	for _, tab := range append(f4, f5...) {
		tab.Render(&buf)
		tab.CSV(&buf)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
}

func TestFig7PredictionsNonNegative(t *testing.T) {
	s := getStudy(t)
	for _, tab := range s.Fig7() {
		if len(tab.Rows) != len(s.WorkloadNames())+1 {
			t.Errorf("%s: rows %d", tab.Title, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if strings.HasPrefix(row[3], "-") && row[3] != "-" {
				t.Errorf("negative prediction in %s: %v", tab.Title, row)
			}
		}
	}
}

func TestFig8InclusiveExclusiveAgree(t *testing.T) {
	s := getStudy(t)
	est := s.TrainEstimator()
	tab := s.Fig8(est)
	if len(tab.Rows) != 2*len(s.WorkloadNames()) {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Check distribution agreement numerically: inclusive vs exclusive
	// IMM fractions for L1I data within a loose tolerance at this sample
	// size.
	for _, w := range s.WorkloadNames() {
		inc := campaign.Summarize(s.Exhaustive("L1I (Data)", w)).IMMFractions()
		res, _ := s.AVGIRun(est, "L1I (Data)", w)
		exc := campaign.Summarize(res).IMMFractions()
		for c, f := range inc {
			if math.Abs(f-exc[c]) > 0.30 {
				t.Errorf("%s/%v: inclusive %.2f vs exclusive %.2f", w, c, f, exc[c])
			}
		}
	}
}

func TestFig9AndTable2(t *testing.T) {
	s := getStudy(t)
	est := s.TrainEstimator()
	f9 := s.Fig9(est)
	if len(f9.Rows) != len(s.Cfg.Structures) {
		t.Fatalf("fig9 rows %d", len(f9.Rows))
	}
	rows := s.TimingRows(est)
	var totalSFI, totalAVGI uint64
	for _, r := range rows {
		totalSFI += r.SFICycles
		totalAVGI += r.AVGICycles
		if r.AVGICycles > r.SFICycles {
			t.Errorf("%s: AVGI cost %d above SFI %d", r.Structure, r.AVGICycles, r.SFICycles)
		}
		if r.HVFCycles > r.SFICycles {
			t.Errorf("%s: HVF cost above SFI", r.Structure)
		}
	}
	if totalAVGI*2 > totalSFI {
		t.Errorf("overall speedup too small: SFI %d vs AVGI %d", totalSFI, totalAVGI)
	}
	tab := s.Table2(est, core.ThroughputModel{CyclesPerSecond: 1e6, Cores: 192})
	if len(tab.Rows) != len(rows)+1 {
		t.Fatalf("table2 rows %d", len(tab.Rows))
	}
	if tab.Rows[len(tab.Rows)-1][0] != "Total" {
		t.Error("missing Total row")
	}
}

func TestFig10AccuracyWithinTolerance(t *testing.T) {
	s := getStudy(t)
	tabs := s.Fig10("RF")
	if len(tabs) != 1 || len(tabs[0].Rows) != len(s.WorkloadNames()) {
		t.Fatalf("fig10 shape")
	}
	// Numeric check: leave-one-out AVGI total AVF within 0.25 of truth at
	// this small sample size.
	for _, w := range s.WorkloadNames() {
		truth := s.GroundTruthAVF("RF", w)
		est := s.TrainEstimator(w)
		results, window := s.AVGIRun(est, "RF", w)
		a := est.AssessResults(s.Runner(w), "RF", results, window)
		if d := math.Abs(a.AVF.Total() - truth.Total()); d > 0.25 {
			t.Errorf("%s: |dAVF| = %.3f", w, d)
		}
	}
}

func TestFig11ChipFIT(t *testing.T) {
	s := getStudy(t)
	tab := s.Fig11()
	if tab.Rows[len(tab.Rows)-1][0] != "CHIP" {
		t.Fatal("missing CHIP row")
	}
	if len(tab.Rows) != len(s.Cfg.Structures)+1 {
		t.Errorf("rows %d", len(tab.Rows))
	}
}

func TestFig12CaseStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("second study in -short mode")
	}
	s, err := NewStudy(StudyConfig{
		Machine:            ConfigA15(),
		Workloads:          pick(t, "sha", "crc32", "bitcount"),
		Structures:         Fig12Structures,
		FaultsPerStructure: 60,
		SeedBase:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tabs := Fig12(s)
	if len(tabs) != len(Fig12Structures) {
		t.Fatalf("tables %d", len(tabs))
	}
	for _, tab := range tabs {
		if !strings.Contains(tab.Title, "A15 case study") {
			t.Errorf("title %q", tab.Title)
		}
	}
}
