package avgi

import (
	"sync"
	"testing"
	"time"
)

func TestFlightMapCoalescesAndRetains(t *testing.T) {
	m := newFlightMap[string](true)
	var execs int
	res, coalesced := m.do("k", func() []CampaignResult {
		execs++
		return make([]CampaignResult, 3)
	})
	if coalesced || len(res) != 3 {
		t.Fatalf("first do: coalesced=%v len=%d", coalesced, len(res))
	}
	res, coalesced = m.do("k", func() []CampaignResult {
		execs++
		return nil
	})
	if !coalesced || len(res) != 3 || execs != 1 {
		t.Errorf("retained flight not served: coalesced=%v len=%d execs=%d", coalesced, len(res), execs)
	}
	if m.len() != 1 {
		t.Errorf("retained map holds %d entries, want 1", m.len())
	}
}

func TestFlightMapEvictsWhenNotRetaining(t *testing.T) {
	m := newFlightMap[string](false)
	var execs int
	exec := func() []CampaignResult { execs++; return make([]CampaignResult, 1) }
	m.do("k", exec)
	if m.len() != 0 {
		t.Fatalf("non-retaining map holds %d entries after completion, want 0", m.len())
	}
	m.do("k", exec)
	if execs != 2 {
		t.Errorf("second do after eviction ran exec %d times total, want 2", execs)
	}
}

// TestFlightMapPanicDoesNotPoison is the regression test for the poisoned
// flight cache: do() used to insert the flight before executing and only
// close(done) on panic, so the failed flight stayed in the map forever and
// every later caller for that key got its nil result instead of
// re-executing. A panicking exec must be evicted so the next caller runs
// exec again and succeeds.
func TestFlightMapPanicDoesNotPoison(t *testing.T) {
	m := newFlightMap[string](true)
	var execs int
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("exec panic must propagate to the do caller")
			}
		}()
		m.do("k", func() []CampaignResult {
			execs++
			panic("campaign blew up")
		})
	}()
	if m.len() != 0 {
		t.Fatalf("panicked flight still in the map (%d entries)", m.len())
	}
	res, coalesced := m.do("k", func() []CampaignResult {
		execs++
		return make([]CampaignResult, 2)
	})
	if coalesced {
		t.Error("second call coalesced onto the panicked flight")
	}
	if len(res) != 2 || execs != 2 {
		t.Errorf("second call after panic: len=%d execs=%d, want 2/2", len(res), execs)
	}
}

// TestFlightMapPanicUnblocksWaiters: callers already coalesced onto a
// flight whose leader panics must be released (with a nil result), not
// hang forever on a done channel nobody will close.
func TestFlightMapPanicUnblocksWaiters(t *testing.T) {
	m := newFlightMap[string](true)
	entered := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }()
		m.do("k", func() []CampaignResult {
			close(entered)
			<-release
			panic("leader failed")
		})
	}()
	<-entered

	var waiterRes []CampaignResult
	var waiterCoalesced bool
	started := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		waiterRes, waiterCoalesced = m.do("k", func() []CampaignResult {
			// Only reachable if the waiter raced past the leader's eviction
			// — i.e. it never coalesced. Valid single-flight behaviour, but
			// not the interleaving this test is about.
			return make([]CampaignResult, 9)
		})
	}()
	// The leader parks in exec until release, so the waiter finds its entry
	// in the map for as long as we wait here; give it time to block on the
	// done channel before the leader panics.
	<-started
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if !waiterCoalesced {
		t.Error("waiter did not coalesce onto the leader")
	}
	if waiterRes != nil {
		t.Errorf("waiter got %d results from a panicked leader, want nil", len(waiterRes))
	}
	if m.len() != 0 {
		t.Error("panicked flight still in the map")
	}
}
