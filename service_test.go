package avgi

import (
	"encoding/json"
	"sync"
	"testing"
)

const svcFaults = 16

func svcRequest() AssessRequest {
	return AssessRequest{
		Structure: "RF",
		Workload:  "crc32",
		Mode:      "hvf",
		Faults:    svcFaults,
		Seed:      7,
	}
}

func newTestService(t *testing.T, journalDir string) *Service {
	t.Helper()
	s, err := NewService(ServiceConfig{
		Workers:    4,
		JournalDir: journalDir,
		Obs:        NewObserver(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func resultBytes(t *testing.T, resp *AssessResponse) string {
	t.Helper()
	b, err := json.Marshal(resp.Result)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServiceSequentialHitByteIdentical is the cache-semantics acceptance
// test: the second identical request must be answered entirely from the
// journal — zero faults simulated — and its result payload must be
// byte-identical to the freshly simulated first answer.
func TestServiceSequentialHitByteIdentical(t *testing.T) {
	s := newTestService(t, t.TempDir())
	first, err := s.Assess(svcRequest())
	if err != nil {
		t.Fatal(err)
	}
	if first.Meta.JournalHit || first.Meta.Coalesced {
		t.Fatalf("first request served from a cold cache reported meta %+v", first.Meta)
	}
	if first.Meta.SimulatedFaults != svcFaults {
		t.Errorf("first request simulated %d faults, want %d", first.Meta.SimulatedFaults, svcFaults)
	}

	second, err := s.Assess(svcRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Meta.JournalHit {
		t.Error("second identical request was not a journal hit")
	}
	if second.Meta.SimulatedFaults != 0 {
		t.Errorf("second request simulated %d faults, want 0", second.Meta.SimulatedFaults)
	}
	if second.Meta.ResumedFaults != svcFaults {
		t.Errorf("second request resumed %d faults, want %d", second.Meta.ResumedFaults, svcFaults)
	}
	if a, b := resultBytes(t, first), resultBytes(t, second); a != b {
		t.Errorf("journal-hit result diverges from fresh simulation:\n first: %s\nsecond: %s", a, b)
	}
	if hits := counterValue(t, s.Cfg.Obs.Metrics, "avgi_server_requests_total",
		map[string]string{"tenant": "default", "outcome": "hit"}); hits != 1 {
		t.Errorf("hit counter = %d, want 1", hits)
	}
}

// TestServiceConcurrentRequestsCoalesce fires identical requests
// concurrently at an uncached service: they must coalesce onto a bounded
// number of executions and all return byte-identical results.
func TestServiceConcurrentRequestsCoalesce(t *testing.T) {
	s := newTestService(t, "") // no journal: every leader simulates
	const n = 4
	resps := make([]*AssessResponse, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resps[i], errs[i] = s.Assess(svcRequest())
		}(i)
	}
	close(start)
	wg.Wait()

	var misses, coalesced int
	ref := ""
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if resps[i].Meta.Coalesced {
			coalesced++
		} else {
			misses++
		}
		b := resultBytes(t, resps[i])
		if ref == "" {
			ref = b
		} else if b != ref {
			t.Errorf("request %d result diverges from the others", i)
		}
	}
	if coalesced == 0 {
		t.Errorf("no request coalesced (%d misses): single-flight not engaged", misses)
	}
	if misses+coalesced != n {
		t.Errorf("outcomes: %d misses + %d coalesced != %d requests", misses, coalesced, n)
	}
	if s.flights.len() != 0 {
		t.Errorf("service retained %d completed flights, want 0 (journal is the durable cache)", s.flights.len())
	}
}

// TestServiceJournalNamespacing: requests differing only in seed or sample
// size must not truncate each other's shards — a rerun of the first
// configuration stays a full journal hit.
func TestServiceJournalNamespacing(t *testing.T) {
	s := newTestService(t, t.TempDir())
	reqA := svcRequest()
	reqB := svcRequest()
	reqB.Seed = 8
	if _, err := s.Assess(reqA); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assess(reqB); err != nil {
		t.Fatal(err)
	}
	again, err := s.Assess(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Meta.JournalHit || again.Meta.SimulatedFaults != 0 {
		t.Errorf("seed-8 run clobbered the seed-7 shard: meta %+v", again.Meta)
	}
}

func TestServiceValidation(t *testing.T) {
	s := newTestService(t, "")
	base := svcRequest()
	for name, mutate := range map[string]func(*AssessRequest){
		"unknown machine":   func(r *AssessRequest) { r.Machine = "m1" },
		"unknown structure": func(r *AssessRequest) { r.Structure = "TLB9" },
		"unknown workload":  func(r *AssessRequest) { r.Workload = "doom" },
		"unknown mode":      func(r *AssessRequest) { r.Mode = "fast" },
		"avgi needs window": func(r *AssessRequest) { r.Mode = "avgi"; r.Window = 0 },
		"stray window":      func(r *AssessRequest) { r.Window = 99 },
		"oversized sample":  func(r *AssessRequest) { r.Faults = maxFaultsPerRequest + 1 },
		"negative sample":   func(r *AssessRequest) { r.Faults = -4 },
	} {
		req := base
		mutate(&req)
		if _, err := s.Assess(req); err == nil {
			t.Errorf("%s: accepted %+v", name, req)
		}
	}
	if n := counterValue(t, s.Cfg.Obs.Metrics, "avgi_server_requests_total",
		map[string]string{"tenant": "default", "outcome": "error"}); n == 0 {
		t.Error("validation failures not counted as error outcomes")
	}
}

func TestServiceDefaultsNormalized(t *testing.T) {
	s := newTestService(t, "")
	resp, err := s.Assess(AssessRequest{Structure: "RF", Workload: "crc32", Mode: "HVF", Faults: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := resp.Request
	if r.Machine != "a72" || r.Seed != 1 || r.Tenant != "default" || r.Mode != "hvf" {
		t.Errorf("defaults not filled: %+v", r)
	}
	if len(resp.Result.Results) != 8 {
		t.Errorf("got %d results, want 8", len(resp.Result.Results))
	}
}

func TestServiceTenantCap(t *testing.T) {
	for _, tc := range []struct {
		workers, tenant, want int
	}{
		{4, 0, 3}, // derived 3/4 share
		{4, 9, 3}, // explicit cap clamped to W-1
		{2, 0, 1}, // smallest multi-worker budget still leaves one slot free
		{1, 0, 1}, // single worker: no headroom to reserve
		{4, 2, 2}, // explicit cap respected
	} {
		s, err := NewService(ServiceConfig{Workers: tc.workers, TenantWorkers: tc.tenant})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.TenantCap(); got != tc.want {
			t.Errorf("workers=%d tenantWorkers=%d: cap %d, want %d", tc.workers, tc.tenant, got, tc.want)
		}
	}
	// Distinct tenants get distinct carves off the same global budget.
	s, _ := NewService(ServiceConfig{Workers: 4})
	a, b := s.tenantBudget("a"), s.tenantBudget("b")
	if a == b {
		t.Error("tenants share one carved budget")
	}
	if a != s.tenantBudget("a") {
		t.Error("tenant budget not cached")
	}
	if a.Cap() != s.TenantCap() {
		t.Errorf("tenant budget cap %d, want %d", a.Cap(), s.TenantCap())
	}
}

// TestServiceTwoTenantsProgress: with the global budget saturated-capable
// by one tenant, a second tenant's request still completes (end-to-end
// face of TestBudgetCarveNoStarvation).
func TestServiceTwoTenantsProgress(t *testing.T) {
	s, err := NewService(ServiceConfig{Workers: 2, Obs: NewObserver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	big := svcRequest()
	big.Tenant = "big"
	big.Faults = 32
	small := svcRequest()
	small.Tenant = "small"
	small.Workload = "sha"
	small.Faults = 8

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = s.Assess(big) }()
	go func() { defer wg.Done(); _, errs[1] = s.Assess(small) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("tenant %d: %v", i, err)
		}
	}
	if s.Budget().InUse() != 0 {
		t.Errorf("global budget not drained: %d", s.Budget().InUse())
	}
}

func TestServiceRequestRegistry(t *testing.T) {
	s := newTestService(t, "")
	resp, err := s.Assess(AssessRequest{Structure: "RF", Workload: "crc32", Mode: "hvf", Faults: 4})
	if err != nil {
		t.Fatal(err)
	}
	info, ok := s.Request(resp.ID)
	if !ok {
		t.Fatalf("request %d missing from registry", resp.ID)
	}
	if info.State != StateDone || info.EndedAt == nil {
		t.Errorf("completed request state %+v", info)
	}
	// A failed request is recorded as failed, and does not block later ones.
	if _, err := s.Assess(AssessRequest{Structure: "RF", Workload: "crc32", Mode: "bogus"}); err == nil {
		t.Fatal("bogus mode accepted")
	}
	all := s.Requests()
	if len(all) != 1 {
		// Validation failures are rejected before registration.
		t.Errorf("registry has %d entries, want 1 (validation errors are not registered)", len(all))
	}
	if all[0].ID != resp.ID {
		t.Errorf("registry order: first entry ID %d, want %d", all[0].ID, resp.ID)
	}
}
