package avgi

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"avgi/internal/campaign"
	"avgi/internal/core"
	"avgi/internal/imm"
	"avgi/internal/report"
	"avgi/internal/stats"
)

// This file regenerates every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index). Each function returns
// renderable tables; cmd/avgi prints them and EXPERIMENTS.md records the
// shape comparison against the paper.

// immOrder is the presentation order of trace-identifiable IMM classes.
var immOrder = []IMM{imm.IFC, imm.IRP, imm.UNO, imm.OFS, imm.DCR, imm.ETE, imm.PRE}

// Fig1 reproduces Fig. 1: register-file AVF from exhaustive SFI versus the
// ACE-analysis baseline, per workload. ACE must always be the larger.
func (s *Study) Fig1() *Table {
	t := &Table{
		Title:   "Fig. 1 — RF AVF: exhaustive SFI vs ACE analysis",
		Columns: []string{"Workload", "SFI AVF", "ACE AVF", "ACE/SFI"},
	}
	s.Prefetch([]string{"RF"}, s.WorkloadNames(), campaign.ModeExhaustive)
	for _, w := range s.WorkloadNames() {
		sfi := s.GroundTruthAVF("RF", w).Total()
		aceAVF := ACEAnalyzeRF(s.Runner(w))
		ratio := math.Inf(1)
		if sfi > 0 {
			ratio = aceAVF / sfi
		}
		t.AddRow(w, report.Pct(sfi), report.Pct(aceAVF), report.F2(ratio))
	}
	return t
}

// Fig3Structures are the structures shown in Fig. 3.
var Fig3Structures = []string{"L1I (Data)", "L1D (Data)", "RF", "ROB", "LQ", "SQ"}

// Fig3 reproduces Fig. 3: the IMM breakdown (over corruptions) per
// workload for each structure, with the cross-workload arithmetic mean as
// the final row. The paper's insight: rows of one table are near-uniform.
func (s *Study) Fig3(structures ...string) []*Table {
	if len(structures) == 0 {
		structures = Fig3Structures
	}
	var out []*Table
	for _, structure := range structures {
		t := &Table{
			Title:   fmt.Sprintf("Fig. 3 — IMM breakdown, %s", structure),
			Columns: append([]string{"Workload"}, immNames()...),
		}
		dist := s.IMMDistribution(structure)
		avg := make(map[IMM][]float64)
		for _, w := range s.WorkloadNames() {
			row := []string{w}
			for _, c := range immOrder {
				f := dist[w][c]
				avg[c] = append(avg[c], f)
				row = append(row, report.Pct(f))
			}
			t.AddRow(row...)
		}
		row := []string{"AVG"}
		for _, c := range immOrder {
			row = append(row, report.Pct(stats.Mean(avg[c])))
		}
		t.AddRow(row...)
		out = append(out, t)
	}
	return out
}

// IMMDistributionMeans returns the cross-workload mean IMM distribution of
// a structure as parallel label/value slices, for bar-chart rendering.
func (s *Study) IMMDistributionMeans(structure string) ([]string, []float64) {
	dist := s.IMMDistribution(structure)
	labels := immNames()
	values := make([]float64, len(immOrder))
	for _, d := range dist {
		for i, c := range immOrder {
			values[i] += d[c]
		}
	}
	n := float64(len(dist))
	if n > 0 {
		for i := range values {
			values[i] /= n
		}
	}
	return labels, values
}

func immNames() []string {
	var ns []string
	for _, c := range immOrder {
		ns = append(ns, c.String())
	}
	return ns
}

// Fig4 reproduces Fig. 4: for the L1I data array, the probability of each
// final effect conditioned on the IMM class, per workload — three tables
// (Masked, Crash, SDC). The paper's insight: columns are near-uniform
// across workloads (stddev 0.1%–2.4%).
func (s *Study) Fig4() []*Table {
	const structure = "L1I (Data)"
	per := s.EffectPerIMM(structure)
	var out []*Table
	for _, eff := range []Effect{imm.Masked, imm.Crash, imm.SDC} {
		t := &Table{
			Title:   fmt.Sprintf("Fig. 4 — P(%s | IMM), %s", eff, structure),
			Columns: append([]string{"Workload"}, immNames()...),
		}
		cols := make(map[IMM][]float64)
		for _, w := range s.WorkloadNames() {
			row := []string{w}
			for _, c := range immOrder {
				if p, ok := per[w][c]; ok {
					cols[c] = append(cols[c], p[eff])
					row = append(row, report.Pct(p[eff]))
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
		sdRow := []string{"STDDEV"}
		for _, c := range immOrder {
			sdRow = append(sdRow, report.Pct(stats.StdDev(cols[c])))
		}
		t.AddRow(sdRow...)
		out = append(out, t)
	}
	return out
}

// Fig5 reproduces Fig. 5: the trained per-structure IMM weights (the
// arithmetic means Fig. 4 motivates), one table per structure.
func (s *Study) Fig5() []*Table {
	w := core.TrainWeights(s.TrainingData(s.Cfg.Structures).Results)
	var out []*Table
	for _, structure := range s.Cfg.Structures {
		t := &Table{
			Title:   fmt.Sprintf("Fig. 5 — IMM weights, %s", structure),
			Columns: []string{"IMM", "Masked", "Crash", "SDC", "spread"},
		}
		for _, c := range immOrder {
			p, ok := w.P[structure][c]
			if !ok {
				continue
			}
			t.AddRow(c.String(), report.Pct(p[imm.Masked]), report.Pct(p[imm.Crash]),
				report.Pct(p[imm.SDC]), report.Pct(w.Spread[structure][c]))
		}
		out = append(out, t)
	}
	return out
}

// Fig7Structures are the cache arrays where escapes can occur.
var Fig7Structures = []string{"L1D (Tag)", "L1D (Data)", "L2 (Data)"}

// Fig7 reproduces Fig. 7: real versus predicted ESC fault counts per
// workload for the data-holding cache arrays, with the Pearson correlation
// as the accuracy summary. The prediction uses the exposure-calibrated
// model; the paper's raw output-size equation is shown alongside for
// comparison (see esc.go for why the calibrated input differs).
func (s *Study) Fig7() []*Table {
	td := s.TrainingData(Fig7Structures)
	model := core.TrainESC(td.Results, td.Exposure)
	var out []*Table
	for _, structure := range Fig7Structures {
		t := &Table{
			Title:   fmt.Sprintf("Fig. 7 — ESC faults real vs predicted, %s", structure),
			Columns: []string{"Workload", "OutBytes", "Exposure", "Real", "Predicted"},
		}
		var real, pred []float64
		for _, w := range s.WorkloadNames() {
			sum := campaign.Summarize(s.Exhaustive(structure, w))
			r := float64(sum.ByIMM[imm.ESC])
			exp := td.Exposure[structure][w]
			p := model.Predict(structure, exp, sum.Total, sum.Benign)
			real = append(real, r)
			pred = append(pred, p)
			t.AddRow(w, fmt.Sprintf("%d", td.OutputSize[w]), report.Pct(exp),
				fmt.Sprintf("%.0f", r), report.F2(p))
		}
		t.AddRow("PEARSON", "", "", "", report.F2(stats.Pearson(real, pred)))
		out = append(out, t)
	}
	return out
}

// Fig8 reproduces Fig. 8: the IMM distribution of the L1I data array when
// observing the entire execution (inclusive) versus only the ERT window
// (exclusive) — the two must be virtually identical.
func (s *Study) Fig8(est *Estimator) *Table {
	const structure = "L1I (Data)"
	t := &Table{
		Title:   "Fig. 8 — L1I (Data) IMM distribution: inclusive vs exclusive (ERT stop)",
		Columns: append([]string{"Workload", "Mode"}, immNames()...),
	}
	s.Prefetch([]string{structure}, s.WorkloadNames(), campaign.ModeExhaustive)
	s.PrefetchAVGI(est, []string{structure}, s.WorkloadNames())
	for _, w := range s.WorkloadNames() {
		inc := campaign.Summarize(s.Exhaustive(structure, w)).IMMFractions()
		avgiResults, _ := s.AVGIRun(est, structure, w)
		exc := campaign.Summarize(avgiResults).IMMFractions()
		rowI := []string{w, "inclusive"}
		rowE := []string{w, "exclusive"}
		for _, c := range immOrder {
			rowI = append(rowI, report.Pct(inc[c]))
			rowE = append(rowE, report.Pct(exc[c]))
		}
		t.AddRow(rowI...)
		t.AddRow(rowE...)
	}
	return t
}

// Fig9 reproduces the effective-residency-time analysis of Fig. 9 /
// Section V.A: manifestation-latency percentiles per structure across all
// workloads, and the derived pessimistic stop window.
func (s *Study) Fig9(est *Estimator) *Table {
	t := &Table{
		Title:   "Fig. 9 — manifestation latency after injection (cycles) and derived ERT window",
		Columns: []string{"Structure", "p50", "p90", "p99", "max", "ERT window"},
	}
	s.RunAll(campaign.ModeExhaustive)
	for _, structure := range s.Cfg.Structures {
		var all []CampaignResult
		for _, w := range s.WorkloadNames() {
			all = append(all, s.Exhaustive(structure, w)...)
		}
		ert := est.ERT[structure]
		desc := report.Cycles(ert.Cycles)
		if ert.Relative {
			desc = fmt.Sprintf("%.1f%% of exec", ert.Frac*100)
		}
		t.AddRow(structure,
			report.Cycles(core.LatencyPercentile(all, 0.50)),
			report.Cycles(core.LatencyPercentile(all, 0.90)),
			report.Cycles(core.LatencyPercentile(all, 0.99)),
			report.Cycles(core.LatencyPercentile(all, 1.0)),
			desc)
	}
	return t
}

// Table2 reproduces Table II: per structure, the ERT window, the total
// simulated post-injection cycles of the three flows across all workloads,
// the speedups attributed to Insights 1&2 and 3, and the orders of
// magnitude; plus a Total row. The throughput model converts simulated
// cycles into single-core wall-clock seconds (the paper's absolute unit is
// days on 192 cores; the ratios are what reproduce).
func (s *Study) Table2(est *Estimator, tm core.ThroughputModel) *Table {
	t := &Table{
		Title: "Table II — AVF assessment cost: AVGI vs accelerated traditional SFI",
		Columns: []string{"Structure", "Max Sim Window", "AVGI cycles", "SFI cycles",
			"AVGI (core-s)", "SFI (core-s)", "Insight 1&2", "Insight 3", "Orders"},
	}
	coreSeconds := func(c uint64) string {
		if tm.CyclesPerSecond <= 0 {
			return "-"
		}
		return report.F2(float64(c) / tm.CyclesPerSecond)
	}
	rows := s.TimingRows(est)
	var totalSFI, totalAVGI uint64
	for _, row := range rows {
		totalSFI += row.SFICycles
		totalAVGI += row.AVGICycles
		t.AddRow(row.Structure, row.WindowDesc,
			report.Cycles(row.AVGICycles), report.Cycles(row.SFICycles),
			coreSeconds(row.AVGICycles), coreSeconds(row.SFICycles),
			report.F1x(row.SpeedupInsight12()), report.F1x(row.SpeedupInsight3()),
			report.F2(row.OrdersOfMagnitude()))
	}
	t.AddRow("Total", "", report.Cycles(totalAVGI), report.Cycles(totalSFI),
		coreSeconds(totalAVGI), coreSeconds(totalSFI),
		"", report.F1x(ratio64(totalSFI, totalAVGI)), "")
	return t
}

func ratio64(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// TimingRows computes the per-structure Table II cost rows (in simulated
// cycles), sorted by descending full speedup as in the paper. All three
// flows are dispatched together up front so the short HVF/AVGI campaigns
// fill worker slots the long exhaustive campaigns leave idle in their
// tails.
func (s *Study) TimingRows(est *Estimator) []core.TimingRow {
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { defer wg.Done(); s.RunAll(campaign.ModeExhaustive) }()
	go func() { defer wg.Done(); s.RunAll(campaign.ModeHVF) }()
	go func() { defer wg.Done(); s.PrefetchAVGI(est, s.Cfg.Structures, s.WorkloadNames()) }()
	wg.Wait()
	var rows []core.TimingRow
	for _, structure := range s.Cfg.Structures {
		row := core.TimingRow{Structure: structure}
		ert := est.ERT[structure]
		if ert.Relative {
			row.WindowDesc = fmt.Sprintf("%.1f%%", ert.Frac*100)
		} else {
			row.WindowDesc = report.Cycles(ert.Cycles)
		}
		for _, w := range s.WorkloadNames() {
			row.SFICycles += campaign.Summarize(s.Exhaustive(structure, w)).SimCycles
			row.HVFCycles += campaign.Summarize(s.HVF(structure, w)).SimCycles
			avgiResults, _ := s.AVGIRun(est, structure, w)
			row.AVGICycles += campaign.Summarize(avgiResults).SimCycles
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].SpeedupInsight3() > rows[j].SpeedupInsight3()
	})
	return rows
}

// Fig10 reproduces Fig. 10: per structure, the exhaustive ("Real") AVF
// breakdown versus the AVGI estimate per workload. Estimates use
// leave-one-out training — the assessed workload is excluded from weight
// training, matching the paper's "unknown workload" claim.
func (s *Study) Fig10(structures ...string) []*Table {
	if len(structures) == 0 {
		structures = s.Cfg.Structures
	}
	// The leave-one-out loop below revisits the exhaustive grid once per
	// assessed workload; dispatch the whole grid concurrently first.
	s.Prefetch(s.Cfg.Structures, s.WorkloadNames(), campaign.ModeExhaustive)
	var out []*Table
	for _, structure := range structures {
		t := &Table{
			Title: fmt.Sprintf("Fig. 10 — AVF accuracy, %s (leave-one-out)", structure),
			Columns: []string{"Workload",
				"Real Masked", "Real SDC", "Real Crash",
				"AVGI Masked", "AVGI SDC", "AVGI Crash", "|dAVF|"},
		}
		for _, w := range s.WorkloadNames() {
			truth := s.GroundTruthAVF(structure, w)
			est := s.TrainEstimator(w)
			results, window := s.AVGIRun(est, structure, w)
			a := est.AssessResults(s.Runner(w), structure, results, window)
			t.AddRow(w,
				report.Pct(truth.Masked), report.Pct(truth.SDC), report.Pct(truth.Crash),
				report.Pct(a.AVF.Masked), report.Pct(a.AVF.SDC), report.Pct(a.AVF.Crash),
				report.Pct(math.Abs(a.AVF.Total()-truth.Total())))
		}
		out = append(out, t)
	}
	return out
}

// Fig11 reproduces Fig. 11: FIT rates per structure (averaged over
// workloads) for the exhaustive ground truth and the AVGI estimate, plus
// the whole-chip total as the sum over structures.
func (s *Study) Fig11() *Table {
	t := &Table{
		Title:   "Fig. 11 — FIT rates per structure and whole chip (avg across workloads)",
		Columns: []string{"Structure", "Bits", "Real FIT", "AVGI FIT", "diff"},
	}
	est := s.TrainEstimator()
	s.PrefetchAVGI(est, s.Cfg.Structures, s.WorkloadNames())
	var chipReal, chipAVGI core.FIT
	anyRunner := s.Runner(s.WorkloadNames()[0])
	for _, structure := range s.Cfg.Structures {
		bits := anyRunner.BitCounts[structure]
		var realSum, estSum core.FIT
		n := 0.0
		for _, w := range s.WorkloadNames() {
			truth := s.GroundTruthAVF(structure, w)
			results, window := s.AVGIRun(est, structure, w)
			a := est.AssessResults(s.Runner(w), structure, results, window)
			realSum = realSum.Add(core.FITOf(truth, bits))
			estSum = estSum.Add(core.FITOf(a.AVF, bits))
			n++
		}
		realAvg := core.FIT{SDC: realSum.SDC / n, Crash: realSum.Crash / n}
		estAvg := core.FIT{SDC: estSum.SDC / n, Crash: estSum.Crash / n}
		chipReal = chipReal.Add(realAvg)
		chipAVGI = chipAVGI.Add(estAvg)
		t.AddRow(structure, fmt.Sprintf("%d", bits),
			fmt.Sprintf("%.4f", realAvg.Total()), fmt.Sprintf("%.4f", estAvg.Total()),
			relDiff(realAvg.Total(), estAvg.Total()))
	}
	t.AddRow("CHIP", "", fmt.Sprintf("%.4f", chipReal.Total()),
		fmt.Sprintf("%.4f", chipAVGI.Total()), relDiff(chipReal.Total(), chipAVGI.Total()))
	return t
}

func relDiff(a, b float64) string {
	if a == 0 {
		return "-"
	}
	return report.Pct(math.Abs(a-b) / a)
}

// Motivation reproduces the paper's introductory claim (demonstrated in
// the authors' ISCA 2021 study [14]): architecture-level fault injection —
// fast, microarchitecture-agnostic — systematically diverges from the true
// microarchitecture-level AVF, because it cannot observe hardware masking.
// The table compares the ISA-level PVF with the exhaustive register-file
// AVF per workload.
func (s *Study) Motivation() *Table {
	t := &Table{
		Title:   "Motivation — ISA-level injection (PVF) vs microarchitecture-level AVF (RF)",
		Columns: []string{"Workload", "ISA-level PVF", "Microarch AVF", "overestimate"},
	}
	for _, w := range s.WorkloadNames() {
		sum, err := ArchLevelCampaign(s.Cfg.Machine, w, s.Cfg.FaultsPerStructure, s.Cfg.SeedBase)
		if err != nil {
			continue
		}
		avf := s.GroundTruthAVF("RF", w).Total()
		ratio := "-"
		if avf > 0 {
			ratio = report.F2(sum.PVF() / avf)
		}
		t.AddRow(w, report.Pct(sum.PVF()), report.Pct(avf), ratio)
	}
	return t
}

// MultiBitAblation compares single-bit against spatial multi-bit upsets
// (Section VII.A): per width, the corruption fraction and final AVF of the
// register file averaged over the study's workloads.
func (s *Study) MultiBitAblation(widths ...int) *Table {
	if len(widths) == 0 {
		widths = []int{1, 2, 4}
	}
	t := &Table{
		Title:   "Section VII.A — multi-bit upsets, RF (avg across workloads)",
		Columns: []string{"Width", "Corruption rate", "AVF (SDC+Crash)"},
	}
	for _, width := range widths {
		// These campaigns are not study-cached (the width varies), but
		// they still draw from the study's worker budget and overlap
		// across workloads like any scheduled campaign.
		names := s.WorkloadNames()
		sums := make([]campaign.Summary, len(names))
		var wg sync.WaitGroup
		for i, w := range names {
			wg.Add(1)
			go func(i int, w string) {
				defer wg.Done()
				r := s.Runner(w)
				faults := r.MultiBitFaultList("RF", s.Cfg.FaultsPerStructure, width, s.Cfg.SeedBase)
				sums[i] = campaign.Summarize(r.RunBudget(faults, campaign.ModeExhaustive, 0, s.budget))
			}(i, w)
		}
		wg.Wait()
		var corr, avf []float64
		for _, sum := range sums {
			corr = append(corr, float64(sum.Corruptions)/float64(sum.Total))
			avf = append(avf, core.AVFFromEffects(sum).Total())
		}
		t.AddRow(fmt.Sprintf("%d", width), report.Pct(stats.Mean(corr)), report.Pct(stats.Mean(avf)))
	}
	return t
}

// ERTMarginAblation sweeps the ERT safety margin (DESIGN.md's
// accuracy-versus-speed ablation): smaller margins shorten the observation
// windows — cheaper campaigns, but late manifestations get misread as
// benign. Reported per margin: the register file's window, total AVGI
// simulated cycles across workloads, and the worst AVF error versus the
// exhaustive ground truth.
func (s *Study) ERTMarginAblation(margins ...float64) *Table {
	if len(margins) == 0 {
		margins = []float64{0.25, 0.5, 1.0, 1.25}
	}
	t := &Table{
		Title:   "Ablation — ERT safety margin (RF): window vs cost vs accuracy",
		Columns: []string{"Margin", "RF window", "AVGI cycles", "worst |dAVF|"},
	}
	td := s.TrainingData(s.Cfg.Structures)
	for _, margin := range margins {
		est := core.TrainWithMargin(td, margin)
		s.PrefetchAVGI(est, []string{"RF"}, s.WorkloadNames())
		var cost uint64
		var worst float64
		for _, w := range s.WorkloadNames() {
			results, window := s.AVGIRun(est, "RF", w)
			a := est.AssessResults(s.Runner(w), "RF", results, window)
			truth := s.GroundTruthAVF("RF", w)
			cost += campaign.Summarize(results).SimCycles
			if d := math.Abs(a.AVF.Total() - truth.Total()); d > worst {
				worst = d
			}
		}
		t.AddRow(report.F2(margin), report.Cycles(est.ERT["RF"].Cycles),
			report.Cycles(cost), report.Pct(worst))
	}
	return t
}

// Fig12Structures are the case-study structures of Section VI.
var Fig12Structures = []string{"L1I (Data)", "L1D (Data)", "RF"}

// Fig12 reproduces the Section VI case study: the same accuracy evaluation
// on the 32-bit Armv7-like machine over the MiBench workloads. The caller
// provides a Study built with ConfigA15.
func Fig12(s *Study) []*Table {
	tables := s.Fig10(Fig12Structures...)
	for _, t := range tables {
		t.Title = "Fig. 12 (A15 case study) — " + t.Title[len("Fig. 10 — "):]
	}
	return tables
}
